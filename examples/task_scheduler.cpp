// Prioritized task scheduler — the application domain the paper's
// introduction motivates (k-LSM descends from task-scheduling work,
// Wimmer et al. [29]) — driven the way a real scheduler is driven:
// by an open-loop arrival process (src/service/), not by workers
// re-submitting as fast as they can.
//
// A submitter thread follows a precomputed Poisson arrival schedule and
// injects jobs at the offered rate whether or not the workers are
// keeping up; a fixed pool of workers executes jobs ordered by priority
// (deadline).  Each job is stamped with its *arrival* time, so the
// printed latency is arrival-to-completion — queueing delay included,
// coordinated omission excluded.  The k-LSM's relaxation lets workers
// grab *a* high-priority job without fighting over *the*
// highest-priority job; its local ordering guarantee means a worker's
// self-scheduled follow-up jobs still run in its intended order.
//
//   ./build/examples/task_scheduler [workers] [jobs] [k] [rate]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "klsm/k_lsm.hpp"
#include "service/arrival_schedule.hpp"
#include "stats/latency_histogram.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

struct job_log {
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> spawned{0};
    std::atomic<std::uint64_t> priority_sum{0};
};

} // namespace

int main(int argc, char **argv) {
    const unsigned workers =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
    const std::uint64_t jobs =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 200000;
    const std::size_t k =
        argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 256;
    const double rate =
        argc > 4 ? std::atof(argv[4]) : 400000.0; // arrivals per second

    // key = priority (smaller = more urgent), value = job id.
    klsm::k_lsm<std::uint64_t, std::uint64_t> queue{k};
    job_log log;
    std::atomic<std::int64_t> outstanding{0};
    std::atomic<bool> submitting{true};

    // Arrival stamps, indexed by job id.  Ids are reserved with a
    // fetch_add capped at `jobs`, shared between the submitter and the
    // follow-up-spawning workers.
    std::vector<std::atomic<std::uint64_t>> arrival_ns(jobs);
    std::atomic<std::uint64_t> next_id{0};

    // The submitter's schedule: a Poisson stream offering roughly
    // jobs/2 arrivals at the configured rate (the other half of the id
    // space is left for worker-spawned follow-ups).
    klsm::service::arrival_config acfg;
    acfg.kind = klsm::service::arrival_kind::poisson;
    acfg.rate = rate;
    acfg.duration_s = static_cast<double>(jobs / 2) / rate;
    acfg.threads = 1;
    acfg.seed = 123;
    const auto schedule = klsm::service::make_arrival_schedule(acfg);

    klsm::wall_timer timer;
    const std::uint64_t t0 = klsm::now_ns();

    std::thread submitter([&] {
        klsm::xoroshiro128 rng{123};
        for (const auto offset : schedule[0]) {
            const std::uint64_t due = t0 + offset;
            while (klsm::now_ns() < due)
                std::this_thread::yield();
            const std::uint64_t id =
                next_id.fetch_add(1, std::memory_order_relaxed);
            if (id >= jobs)
                break;
            // Stamp the intended arrival (the schedule entry, not "now")
            // so a slow submitter cannot hide queueing delay either.
            arrival_ns[id].store(due, std::memory_order_relaxed);
            outstanding.fetch_add(1, std::memory_order_acq_rel);
            log.spawned.fetch_add(1, std::memory_order_relaxed);
            queue.insert(rng.bounded(1 << 20), id);
        }
        submitting.store(false, std::memory_order_release);
    });

    std::vector<klsm::stats::latency_histogram> latency(workers);
    std::vector<std::thread> pool;
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            klsm::xoroshiro128 rng{1000 + w};
            std::uint64_t prio, id;
            for (;;) {
                if (!queue.try_delete_min(prio, id)) {
                    if (!submitting.load(std::memory_order_acquire) &&
                        outstanding.load(std::memory_order_acquire) == 0)
                        return;
                    continue;
                }
                // "Execute" the job and book arrival-to-completion.
                log.executed.fetch_add(1, std::memory_order_relaxed);
                log.priority_sum.fetch_add(prio,
                                           std::memory_order_relaxed);
                const std::uint64_t arrived =
                    arrival_ns[id].load(std::memory_order_relaxed);
                const std::uint64_t done = klsm::now_ns();
                if (done > arrived)
                    latency[w].record(done - arrived);
                // Some jobs spawn a follow-up with higher urgency —
                // local ordering guarantees THIS worker sees its own
                // follow-ups in order.  Follow-ups arrive "now": their
                // latency clock starts at spawn time.
                if (rng.bounded(2) == 0) {
                    const std::uint64_t follow =
                        next_id.fetch_add(1, std::memory_order_relaxed);
                    if (follow < jobs) {
                        arrival_ns[follow].store(
                            done, std::memory_order_relaxed);
                        outstanding.fetch_add(1,
                                              std::memory_order_acq_rel);
                        log.spawned.fetch_add(1,
                                              std::memory_order_relaxed);
                        queue.insert(prio / 2, follow);
                    }
                }
                outstanding.fetch_sub(1, std::memory_order_acq_rel);
            }
        });
    }
    submitter.join();
    for (auto &t : pool)
        t.join();

    const double secs = timer.elapsed_s();
    const std::uint64_t executed = log.executed.load();
    klsm::stats::latency_histogram merged;
    for (const auto &h : latency)
        merged.merge(h);
    std::printf("executed %lu jobs on %u workers in %.3f s (%.0f jobs/s, "
                "offered %.0f jobs/s)\n",
                static_cast<unsigned long>(executed), workers, secs,
                executed / secs, rate);
    std::printf("jobs spawned in total: %lu (scheduled arrivals + "
                "follow-ups), mean executed priority: %.1f\n",
                static_cast<unsigned long>(log.spawned.load()),
                static_cast<double>(log.priority_sum.load()) / executed);
    std::printf("arrival-to-completion latency: p50 %lu ns, p99 %lu ns, "
                "max %lu ns over %lu jobs\n",
                static_cast<unsigned long>(merged.percentile(50)),
                static_cast<unsigned long>(merged.percentile(99)),
                static_cast<unsigned long>(merged.max()),
                static_cast<unsigned long>(merged.count()));
    // Every spawned job must have been executed exactly once.
    return log.spawned.load() == executed ? 0 : 1;
}
