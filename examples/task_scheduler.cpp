// Prioritized task scheduler — the application domain the paper's
// introduction motivates (k-LSM descends from task-scheduling work,
// Wimmer et al. [29]).
//
// A fixed pool of workers executes jobs ordered by priority (deadline).
// The k-LSM's relaxation lets workers grab *a* high-priority job without
// fighting over *the* highest-priority job; its local ordering guarantee
// means a worker's self-scheduled follow-up jobs still run in its
// intended order.
//
//   ./build/examples/task_scheduler [workers] [jobs] [k]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "klsm/k_lsm.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

struct job_log {
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> spawned{0};
    std::atomic<std::uint64_t> priority_sum{0};
};

} // namespace

int main(int argc, char **argv) {
    const unsigned workers =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
    const std::uint64_t jobs =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 200000;
    const std::size_t k =
        argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 256;

    // key = priority (smaller = more urgent), value = job payload id.
    klsm::k_lsm<std::uint64_t, std::uint64_t> queue{k};
    job_log log;
    std::atomic<std::int64_t> outstanding{0};

    // Seed the queue with an initial batch of jobs.
    {
        klsm::xoroshiro128 rng{123};
        const std::uint64_t initial = jobs / 2;
        outstanding.store(static_cast<std::int64_t>(initial));
        for (std::uint64_t j = 0; j < initial; ++j)
            queue.insert(rng.bounded(1 << 20), j);
        log.spawned.fetch_add(initial);
    }

    klsm::wall_timer timer;
    std::vector<std::thread> pool;
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            klsm::xoroshiro128 rng{1000 + w};
            std::uint64_t prio, payload;
            for (;;) {
                if (!queue.try_delete_min(prio, payload)) {
                    if (outstanding.load(std::memory_order_acquire) == 0)
                        return;
                    continue;
                }
                // "Execute" the job.
                log.executed.fetch_add(1, std::memory_order_relaxed);
                log.priority_sum.fetch_add(prio,
                                           std::memory_order_relaxed);
                // Some jobs spawn a follow-up with higher urgency —
                // local ordering guarantees THIS worker sees its own
                // follow-ups in order.
                if (log.spawned.load(std::memory_order_relaxed) < jobs &&
                    rng.bounded(2) == 0) {
                    outstanding.fetch_add(1, std::memory_order_acq_rel);
                    log.spawned.fetch_add(1, std::memory_order_relaxed);
                    queue.insert(prio / 2, payload ^ 0xdeadbeef);
                }
                outstanding.fetch_sub(1, std::memory_order_acq_rel);
            }
        });
    }
    for (auto &t : pool)
        t.join();

    const double secs = timer.elapsed_s();
    const std::uint64_t executed = log.executed.load();
    std::printf("executed %lu jobs on %u workers in %.3f s (%.0f jobs/s)\n",
                static_cast<unsigned long>(executed), workers, secs,
                executed / secs);
    std::printf("jobs spawned in total: %lu (initial batch %lu + "
                "follow-ups), mean executed priority: %.1f\n",
                static_cast<unsigned long>(log.spawned.load()),
                static_cast<unsigned long>(jobs / 2),
                static_cast<double>(log.priority_sum.load()) / executed);
    // Every spawned job must have been executed exactly once.
    return log.spawned.load() == executed ? 0 : 1;
}
