// Parallel single-source shortest paths — the paper's flagship
// application (Section 6, Figure 4).
//
// Demonstrates:
//   * the lazy-deletion extension (Section 4.5): superseded (distance,
//     node) entries are dropped when the k-LSM rebuilds blocks, standing
//     in for decrease-key;
//   * that relaxation affects the amount of work, never correctness —
//     the result is verified against sequential Dijkstra.
//
//   ./build/examples/sssp_shortest_paths [nodes] [threads] [k]

#include <cstdio>
#include <cstdlib>

#include "graph/dijkstra.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/parallel_sssp.hpp"
#include "klsm/k_lsm.hpp"
#include "util/timer.hpp"

int main(int argc, char **argv) {
    const std::uint32_t nodes =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 2000;
    const unsigned threads =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;
    const std::size_t k =
        argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 256;

    klsm::erdos_renyi_params params;
    params.nodes = nodes;
    params.edge_probability = 0.05;
    params.max_weight = 100000000;
    params.seed = 7;
    const klsm::graph g = klsm::make_erdos_renyi(params);
    std::printf("graph: %u nodes, %zu arcs\n", g.num_nodes(),
                g.num_edges());

    klsm::wall_timer seq_timer;
    const auto ref = klsm::dijkstra(g, 0);
    std::printf("sequential Dijkstra: %.3f s, %lu nodes settled\n",
                seq_timer.elapsed_s(),
                static_cast<unsigned long>(ref.settled));

    klsm::sssp_state state{g.num_nodes()};
    klsm::k_lsm<std::uint64_t, std::uint32_t, klsm::sssp_lazy> queue{
        k, klsm::sssp_lazy{&state}};

    klsm::wall_timer par_timer;
    const auto stats = klsm::parallel_sssp(queue, g, 0, threads, state);
    const double par_s = par_timer.elapsed_s();

    std::uint64_t mismatches = 0;
    for (std::uint32_t u = 0; u < g.num_nodes(); ++u)
        mismatches += (state.dist(u) != ref.dist[u]);

    std::printf("parallel (T=%u, k=%zu): %.3f s\n", threads, k, par_s);
    std::printf("  expansions: %lu (extra vs sequential: %lu)\n",
                static_cast<unsigned long>(stats.expansions),
                static_cast<unsigned long>(stats.expansions -
                                           ref.settled));
    std::printf("  stale pops avoided by lazy deletion show up as "
                "dropped entries; stale pops seen: %lu\n",
                static_cast<unsigned long>(stats.stale_pops));
    std::printf("  distance mismatches vs Dijkstra: %lu\n",
                static_cast<unsigned long>(mismatches));
    return mismatches == 0 ? 0 : 1;
}
