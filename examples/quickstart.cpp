// Quickstart: the k-LSM relaxed priority queue in five minutes.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <thread>
#include <vector>

#include "klsm/k_lsm.hpp"

int main() {
    // A k-LSM with relaxation parameter k = 16: try_delete_min may
    // return any of the (T*16 + 1) smallest keys, where T is the number
    // of threads using the queue.  Keys inserted and deleted by the SAME
    // thread always come back in exact order.
    klsm::k_lsm<std::uint32_t, std::uint64_t> queue{16};

    // Single-threaded usage looks exactly like any priority queue.
    queue.insert(30, 300);
    queue.insert(10, 100);
    queue.insert(20, 200);

    std::uint32_t key;
    std::uint64_t value;
    while (queue.try_delete_min(key, value))
        std::printf("single thread: key=%u value=%lu\n", key,
                    static_cast<unsigned long>(value));
    // Prints 10, 20, 30 — exact, because one thread implies rho = 0 for
    // its own items (local ordering semantics).

    // Concurrent usage: producers and consumers share the queue without
    // locks; relaxation spreads delete-min contention.
    constexpr int producers = 2, consumers = 2, per_producer = 10000;
    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&queue, p] {
            for (std::uint32_t i = 0; i < per_producer; ++i)
                queue.insert(i, static_cast<std::uint64_t>(p));
        });
    }
    std::vector<std::uint64_t> consumed(consumers, 0);
    for (int c = 0; c < consumers; ++c) {
        threads.emplace_back([&queue, &consumed, c] {
            std::uint32_t k;
            std::uint64_t v;
            int misses = 0;
            while (misses < 100) {
                if (queue.try_delete_min(k, v)) {
                    ++consumed[c];
                    misses = 0;
                } else {
                    // try_delete_min may fail spuriously; only repeated
                    // failure means the queue is (still) empty.
                    ++misses;
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();

    std::uint64_t total = 0;
    for (auto c : consumed)
        total += c;
    // Drain the rest (producers may have outpaced the consumers).
    while (queue.try_delete_min(key, value))
        ++total;
    std::printf("concurrent: %lu items consumed of %d inserted\n",
                static_cast<unsigned long>(total),
                producers * per_producer);
    std::printf("size hint after drain: %zu\n", queue.size_hint());
    return total == producers * per_producer ? 0 : 1;
}
