// Best-first branch-and-bound (0/1 knapsack) on the k-LSM — the second
// classic priority-queue application named in the paper's abstract
// ("Dijkstra's single-source shortest path algorithm, branch-and-bound
// algorithms, and prioritized schedulers").
//
// Subproblems are explored best-bound-first: the queue key is the
// negated optimistic bound (smaller key = more promising).  Relaxation
// means a worker may expand a slightly less promising node — harmless
// for correctness (bounding still prunes), and far more scalable than
// fighting over the single best node.
//
//   ./build/examples/branch_and_bound [items] [threads] [k]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "klsm/k_lsm.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

struct knapsack {
    std::vector<std::uint32_t> weight;
    std::vector<std::uint32_t> value;
    std::uint64_t capacity;
};

// Subproblem: decided items [0, depth), remaining capacity, value so far.
struct subproblem {
    std::uint32_t depth;
    std::uint32_t pad = 0;
    std::uint64_t remaining;
    std::uint64_t value;
};

// Fractional (LP) bound: greedy by density over the undecided suffix.
std::uint64_t upper_bound(const knapsack &ks,
                          const std::vector<std::uint32_t> &order,
                          const subproblem &sp) {
    double bound = static_cast<double>(sp.value);
    std::uint64_t cap = sp.remaining;
    for (std::uint32_t i = sp.depth; i < order.size(); ++i) {
        const std::uint32_t it = order[i];
        if (ks.weight[it] <= cap) {
            cap -= ks.weight[it];
            bound += ks.value[it];
        } else {
            bound += static_cast<double>(ks.value[it]) * cap /
                     ks.weight[it];
            break;
        }
    }
    return static_cast<std::uint64_t>(bound) + 1;
}

std::uint64_t solve_sequential_dp(const knapsack &ks) {
    // Reference: classic DP over capacity (capacity kept small enough).
    std::vector<std::uint64_t> best(ks.capacity + 1, 0);
    for (std::size_t i = 0; i < ks.weight.size(); ++i)
        for (std::uint64_t c = ks.capacity; c >= ks.weight[i]; --c)
            best[c] = std::max(best[c], best[c - ks.weight[i]] +
                                            ks.value[i]);
    return best[ks.capacity];
}

} // namespace

int main(int argc, char **argv) {
    const std::uint32_t items =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 26;
    const unsigned threads =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;
    const std::size_t k =
        argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 64;

    knapsack ks;
    klsm::xoroshiro128 rng{2024};
    std::uint64_t total_weight = 0;
    for (std::uint32_t i = 0; i < items; ++i) {
        ks.weight.push_back(
            static_cast<std::uint32_t>(rng.range(5, 120)));
        ks.value.push_back(
            static_cast<std::uint32_t>(rng.range(10, 200)));
        total_weight += ks.weight.back();
    }
    ks.capacity = total_weight / 3;

    // Density order for the bound.
    std::vector<std::uint32_t> order(items);
    for (std::uint32_t i = 0; i < items; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](auto a, auto b) {
        return static_cast<double>(ks.value[a]) / ks.weight[a] >
               static_cast<double>(ks.value[b]) / ks.weight[b];
    });

    const std::uint64_t reference = solve_sequential_dp(ks);

    // Best-first search.  Key = ~bound so the best bound pops first;
    // values index a grow-only subproblem arena.
    constexpr std::uint64_t key_flip = ~std::uint64_t{0};
    klsm::k_lsm<std::uint64_t, std::uint64_t> queue{k};
    std::mutex arena_mutex;
    std::deque<subproblem> arena;
    std::atomic<std::uint64_t> incumbent{0};
    std::atomic<std::int64_t> outstanding{0};
    std::atomic<std::uint64_t> expanded{0};

    auto push = [&](const subproblem &sp) {
        const std::uint64_t bound = upper_bound(ks, order, sp);
        if (bound <= incumbent.load(std::memory_order_relaxed))
            return; // pruned at generation time
        std::uint64_t idx;
        {
            std::lock_guard<std::mutex> g(arena_mutex);
            idx = arena.size();
            arena.push_back(sp);
        }
        outstanding.fetch_add(1, std::memory_order_acq_rel);
        queue.insert(key_flip - bound, idx);
    };

    klsm::wall_timer timer;
    std::vector<std::thread> pool;
    std::atomic<bool> seeded{false};
    for (unsigned w = 0; w < threads; ++w) {
        pool.emplace_back([&, w] {
            if (w == 0) {
                push(subproblem{0, 0, ks.capacity, 0});
                seeded.store(true, std::memory_order_release);
            }
            std::uint64_t key, idx;
            for (;;) {
                if (!queue.try_delete_min(key, idx)) {
                    if (seeded.load(std::memory_order_acquire) &&
                        outstanding.load(std::memory_order_acquire) == 0)
                        return;
                    continue;
                }
                subproblem sp;
                {
                    std::lock_guard<std::mutex> g(arena_mutex);
                    sp = arena[idx];
                }
                const std::uint64_t bound = key_flip - key;
                if (bound > incumbent.load(std::memory_order_relaxed) &&
                    sp.depth < items) {
                    expanded.fetch_add(1, std::memory_order_relaxed);
                    const std::uint32_t it = order[sp.depth];
                    // Branch 1: take the item (if it fits).
                    if (ks.weight[it] <= sp.remaining) {
                        subproblem take = sp;
                        ++take.depth;
                        take.remaining -= ks.weight[it];
                        take.value += ks.value[it];
                        // Update the incumbent with the feasible value.
                        std::uint64_t inc =
                            incumbent.load(std::memory_order_relaxed);
                        while (take.value > inc &&
                               !incumbent.compare_exchange_weak(
                                   inc, take.value))
                            ;
                        push(take);
                    }
                    // Branch 2: skip the item.
                    subproblem skip = sp;
                    ++skip.depth;
                    push(skip);
                }
                outstanding.fetch_sub(1, std::memory_order_acq_rel);
            }
        });
    }
    for (auto &t : pool)
        t.join();

    const double secs = timer.elapsed_s();
    std::printf("knapsack: %u items, capacity %lu\n", items,
                static_cast<unsigned long>(ks.capacity));
    std::printf("branch-and-bound (T=%u, k=%zu): best=%lu in %.3f s, "
                "%lu nodes expanded\n",
                threads, k,
                static_cast<unsigned long>(incumbent.load()), secs,
                static_cast<unsigned long>(expanded.load()));
    std::printf("dynamic-programming reference: %lu -> %s\n",
                static_cast<unsigned long>(reference),
                incumbent.load() == reference ? "MATCH" : "MISMATCH");
    return incumbent.load() == reference ? 0 : 1;
}
