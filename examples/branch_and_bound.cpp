// Best-first branch-and-bound (0/1 knapsack) on the k-LSM — the second
// classic priority-queue application named in the paper's abstract
// ("Dijkstra's single-source shortest path algorithm, branch-and-bound
// algorithms, and prioritized schedulers").
//
// Subproblems are explored best-bound-first: the queue key is the
// negated optimistic bound (smaller key = more promising).  Relaxation
// means a worker may expand a slightly less promising node — harmless
// for correctness (bounding still prunes), and far more scalable than
// fighting over the single best node.
//
// The search itself lives in src/workloads/bnb.hpp, where klsm_bench
// runs it across every structure (`--workload bnb`); this example is
// the minimal k-LSM-only invocation.
//
//   ./build/examples/branch_and_bound [items] [threads] [k]

#include <cstdio>
#include <cstdlib>

#include "klsm/k_lsm.hpp"
#include "workloads/bnb.hpp"

int main(int argc, char **argv) {
    const std::uint32_t items =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 26;
    const unsigned threads =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;
    const std::size_t k =
        argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 64;

    const auto ks = klsm::workloads::make_knapsack(items, 2024);

    klsm::k_lsm<std::uint64_t, std::uint64_t> queue{k};
    klsm::workloads::bnb_params params;
    params.threads = threads;
    const auto res = klsm::workloads::run_bnb(queue, ks, params);

    std::printf("knapsack: %u items, capacity %lu\n", items,
                static_cast<unsigned long>(ks.capacity));
    std::printf("branch-and-bound (T=%u, k=%zu): best=%lu in %.3f s, "
                "%lu nodes expanded (%lu wasted, %lu pruned pops)\n",
                threads, k, static_cast<unsigned long>(res.best),
                res.elapsed_s, static_cast<unsigned long>(res.expanded),
                static_cast<unsigned long>(res.wasted_expansions),
                static_cast<unsigned long>(res.pruned_pops));
    std::printf("dynamic-programming reference: %lu -> %s\n",
                static_cast<unsigned long>(ks.optimum),
                res.best == ks.optimum ? "MATCH" : "MISMATCH");
    return res.best == ks.optimum ? 0 : 1;
}
