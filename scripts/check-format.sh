#!/usr/bin/env bash
# Check-only clang-format pass over C++ sources.  Never rewrites files.
#
#   scripts/check-format.sh              # check the whole tree
#   scripts/check-format.sh <base-ref>   # check only files changed since
#                                        # base-ref (what CI does on PRs,
#                                        # so the seed is never judged)
set -euo pipefail

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" > /dev/null; then
    echo "error: $CLANG_FORMAT not found" >&2
    exit 2
fi

if [[ $# -ge 1 ]]; then
    mapfile -t files < <(git diff --name-only --diff-filter=ACMR "$1"... \
        -- '*.hpp' '*.cpp')
else
    mapfile -t files < <(git ls-files '*.hpp' '*.cpp')
fi

if [[ ${#files[@]} -eq 0 ]]; then
    echo "no C++ files to check"
    exit 0
fi

"$CLANG_FORMAT" --dry-run --Werror "${files[@]}"
echo "format check passed (${#files[@]} files)"
