#!/usr/bin/env python3
"""Validate the `memory` and `memory_timeline` telemetry in klsm_bench JSON.

Schema (README "Memory placement" / "Memory reclamation & soak
testing"): when a report was produced with --alloc-stats, every record
of a k-LSM-family structure (klsm, dlsm, numa_klsm) must carry

    "memory": {
      "policy": "none" | "bind" | "firsttouch",
      "resident_queried": bool,
      "pools": {
        "items":         {chunks, bytes, reuse_hits, fresh_allocs,
                          reuse_hit_rate, growth_beyond_bound,
                          bound_chunks, prefaulted_chunks,
                          freelist_hits, freelist_drops,
                          freelist_hit_rate, reclaimed_chunks,
                          released_bytes, shrink_events,
                          reactivated_chunks, huge_chunks, thp_chunks
                          [, resident_nodes, resident_unknown_pages]},
        "dist_blocks":   {same fields},
        "shared_blocks": {same fields}
      }
    }

with internally consistent values (rates in [0, 1], bound/prefaulted/
reclaimed counts never exceeding chunks, released bytes never exceeding
chunk bytes, resident_nodes only when queried).

Records produced by `--workload churn` additionally carry

    "memory_timeline": {
      rss_reliable, shrink_events, rss_high_water_bytes,
      steady_rss_high_water_bytes, final_rss_bytes,
      pool_high_water_bytes, plateau_tolerance, plateau_ratio,
      plateau_ok,
      "phases":  [{index, name, insert_percent, bursty, start_t_ns,
                   end_t_ns, inserts, deletes, failed_deletes}, ...],
      "samples": [{t_ns, rss_bytes, pool_bytes, released_bytes,
                   reclaimed_chunks, shrink_events, freelist_hits,
                   phase}, ...]
    }

with monotone sample timestamps, monotone cumulative shrink_events,
released_bytes <= pool_bytes per sample, and phase windows ordered.

Usage:
    check_memory_schema.py report.json [report2.json ...]
    check_memory_schema.py --bench path/to/klsm_bench
    check_memory_schema.py --bench-churn path/to/klsm_bench [--smoke]

--bench runs the allocation-telemetry acceptance command end to end
(--structure numa_klsm --pin compact --smoke --alloc-stats
--numa-alloc bind --json-out -) and validates its stdout.

--bench-churn runs the soak acceptance command (--workload churn
--alloc-stats --json-out -) and additionally *enforces* the soak
verdicts: at least one shrink event, and — when RSS is reliable and the
run was not a --smoke miniature — final RSS on the steady-phase plateau
(plateau_ok).  CTest invokes both so `ctest -L tier1` covers the JSON
wiring.
"""

import json
import subprocess
import sys

FAMILY = ("klsm", "dlsm", "numa_klsm")
POLICIES = ("none", "bind", "firsttouch")
RECLAIM_POLICIES = ("none", "freelist", "shrink", "full")
COUNTER_FIELDS = ("chunks", "bytes", "reuse_hits", "fresh_allocs",
                  "growth_beyond_bound", "bound_chunks",
                  "prefaulted_chunks", "freelist_hits", "freelist_drops",
                  "reclaimed_chunks", "released_bytes", "shrink_events",
                  "reactivated_chunks", "huge_chunks", "thp_chunks")
TIMELINE_SCALARS = ("shrink_events", "rss_high_water_bytes",
                    "steady_rss_high_water_bytes", "final_rss_bytes",
                    "pool_high_water_bytes")
SAMPLE_FIELDS = ("t_ns", "rss_bytes", "pool_bytes", "released_bytes",
                 "reclaimed_chunks", "shrink_events", "freelist_hits",
                 "phase")
PHASE_FIELDS = ("index", "insert_percent", "start_t_ns", "end_t_ns",
                "inserts", "deletes", "failed_deletes")


def check_pool(where, pool, resident_queried):
    for field in COUNTER_FIELDS:
        assert field in pool, f"{where}.{field} missing"
        value = pool[field]
        assert isinstance(value, int) and value >= 0, \
            f"{where}.{field} = {value!r} is not a non-negative integer"
    for rate_field in ("reuse_hit_rate", "freelist_hit_rate"):
        rate = pool.get(rate_field)
        assert isinstance(rate, (int, float)) and 0.0 <= rate <= 1.0, \
            f"{where}.{rate_field} = {rate!r} outside [0, 1]"
    assert pool["bound_chunks"] <= pool["chunks"], \
        f"{where}: bound_chunks exceeds chunks"
    assert pool["prefaulted_chunks"] <= pool["chunks"], \
        f"{where}: prefaulted_chunks exceeds chunks"
    # Reclamation invariants: the released gauges can never exceed what
    # exists (reclaimed chunks are a subset of chunks, released bytes a
    # subset of chunk bytes), and a chunk is huge or THP-advised, never
    # both.
    assert pool["reclaimed_chunks"] <= pool["chunks"], \
        f"{where}: reclaimed_chunks exceeds chunks"
    assert pool["released_bytes"] <= pool["bytes"], \
        f"{where}: released_bytes exceeds bytes"
    assert pool["huge_chunks"] + pool["thp_chunks"] <= pool["chunks"], \
        f"{where}: huge + thp chunks exceed chunks"
    if pool["chunks"] > 0:
        assert pool["bytes"] > 0, f"{where}: chunks without bytes"
    if resident_queried:
        assert "resident_nodes" in pool, \
            f"{where}.resident_nodes missing despite resident_queried"
        for entry in pool["resident_nodes"]:
            assert (isinstance(entry, list) and len(entry) == 2
                    and all(isinstance(x, int) and x >= 0
                            for x in entry)), \
                f"{where}.resident_nodes entry {entry!r} malformed"
        assert pool.get("resident_unknown_pages", 0) >= 0
    else:
        assert "resident_nodes" not in pool, \
            f"{where}: resident_nodes present without a query"


def check_timeline(where, tl):
    assert isinstance(tl.get("rss_reliable"), bool), \
        f"{where}.rss_reliable missing"
    assert isinstance(tl.get("plateau_ok"), bool), \
        f"{where}.plateau_ok missing"
    for field in TIMELINE_SCALARS:
        value = tl.get(field)
        assert isinstance(value, int) and value >= 0, \
            f"{where}.{field} = {value!r} is not a non-negative integer"
    for field in ("plateau_tolerance", "plateau_ratio"):
        value = tl.get(field)
        assert isinstance(value, (int, float)) and value >= 0, \
            f"{where}.{field} = {value!r} is not a non-negative number"
    assert tl["steady_rss_high_water_bytes"] <= \
        tl["rss_high_water_bytes"], \
        f"{where}: steady high-water exceeds the overall high-water"

    samples = tl.get("samples")
    assert isinstance(samples, list) and samples, \
        f"{where}.samples missing or empty"
    prev_t = -1
    prev_shrinks = -1
    for i, s in enumerate(samples):
        sw = f"{where}.samples[{i}]"
        for field in SAMPLE_FIELDS:
            value = s.get(field)
            assert isinstance(value, int) and value >= 0, \
                f"{sw}.{field} = {value!r} is not a non-negative integer"
        assert s["t_ns"] >= prev_t, f"{sw}: timestamps must be monotone"
        assert s["shrink_events"] >= prev_shrinks, \
            f"{sw}: cumulative shrink_events went backwards"
        assert s["released_bytes"] <= s["pool_bytes"], \
            f"{sw}: released_bytes exceeds pool_bytes"
        prev_t = s["t_ns"]
        prev_shrinks = s["shrink_events"]
    assert tl["shrink_events"] == samples[-1]["shrink_events"], \
        f"{where}: derived shrink_events disagrees with the last sample"

    phases = tl.get("phases")
    assert isinstance(phases, list) and phases, \
        f"{where}.phases missing or empty"
    prev_end = 0
    for i, p in enumerate(phases):
        pw = f"{where}.phases[{i}]"
        assert isinstance(p.get("name"), str) and p["name"], \
            f"{pw}.name missing"
        assert isinstance(p.get("bursty"), bool), f"{pw}.bursty missing"
        for field in PHASE_FIELDS:
            value = p.get(field)
            assert isinstance(value, int) and value >= 0, \
                f"{pw}.{field} = {value!r} is not a non-negative integer"
        assert p["index"] == i, f"{pw}: phase indices must be dense"
        assert p["start_t_ns"] <= p["end_t_ns"], \
            f"{pw}: phase window inverted"
        assert p["start_t_ns"] >= prev_end, \
            f"{pw}: phase windows must not overlap"
        prev_end = p["end_t_ns"]


def check_report(report, path, require_timeline=False):
    assert report.get("alloc_stats") is True, \
        f"{path}: alloc_stats meta flag missing or false"
    assert report.get("numa_alloc") in POLICIES, \
        f"{path}: numa_alloc meta = {report.get('numa_alloc')!r}"
    assert report.get("reclaim") in RECLAIM_POLICIES, \
        f"{path}: reclaim meta = {report.get('reclaim')!r}"
    checked = 0
    timelines = 0
    for record in report.get("records", []):
        structure = record.get("structure")
        if "memory_timeline" in record:
            check_timeline(f"{path}:{structure}.memory_timeline",
                           record["memory_timeline"])
            timelines += 1
        if structure not in FAMILY:
            assert "memory" not in record, \
                f"{path}: {structure} has no pools but emits memory"
            continue
        assert "memory" in record, \
            f"{path}: {structure} record lacks the memory object"
        memory = record["memory"]
        assert memory.get("policy") == report["numa_alloc"], \
            f"{path}: memory.policy disagrees with the meta flag"
        resident_queried = memory.get("resident_queried")
        assert isinstance(resident_queried, bool), \
            f"{path}: memory.resident_queried missing"
        pools = memory.get("pools")
        assert isinstance(pools, dict), f"{path}: memory.pools missing"
        for name in ("items", "dist_blocks", "shared_blocks"):
            assert name in pools, f"{path}: memory.pools.{name} missing"
            check_pool(f"{path}:{structure}.memory.pools.{name}",
                       pools[name], resident_queried)
        # The paper's four-blocks-per-level bound is structural for the
        # DistLSM pools; the shared pools' safety valve is exempt.
        assert pools["dist_blocks"]["growth_beyond_bound"] == 0, \
            f"{path}: {structure} DistLSM pool grew beyond the bound"
        checked += 1
    assert checked, f"{path}: no k-LSM-family records with memory data"
    if require_timeline:
        assert timelines, f"{path}: no memory_timeline records"
    return checked


def check_soak_verdicts(report, path, enforce_plateau):
    """The churn-soak acceptance gates, beyond schema validity."""
    for record in report.get("records", []):
        if record.get("structure") not in FAMILY:
            continue
        tl = record["memory_timeline"]
        where = f"{path}:{record['structure']}"
        assert tl["shrink_events"] >= 1, \
            f"{where}: the soak must observe at least one shrink event"
        if enforce_plateau and tl["rss_reliable"]:
            assert tl["plateau_ok"], (
                f"{where}: final RSS {tl['final_rss_bytes']} is "
                f"{tl['plateau_ratio']:.2f}x the steady-phase high-water "
                f"{tl['steady_rss_high_water_bytes']} "
                f"(tolerance {tl['plateau_tolerance']})")


def main(argv):
    if len(argv) >= 2 and argv[0] == "--bench":
        cmd = [argv[1], "--structure", "numa_klsm", "--pin", "compact",
               "--smoke", "--alloc-stats", "--numa-alloc", "bind",
               "--json-out", "-"]
        out = subprocess.run(cmd, stdout=subprocess.PIPE, check=True)
        checked = check_report(json.loads(out.stdout), "<bench stdout>")
        print(f"memory schema OK: acceptance run, {checked} record(s)")
        return 0
    if len(argv) >= 2 and argv[0] == "--bench-churn":
        smoke = "--smoke" in argv[2:]
        cmd = [argv[1], "--workload", "churn", "--structure", "klsm",
               "--threads", "4", "--alloc-stats", "--json-out", "-"]
        if smoke:
            cmd.append("--smoke")
        out = subprocess.run(cmd, stdout=subprocess.PIPE, check=True)
        report = json.loads(out.stdout)
        checked = check_report(report, "<bench stdout>",
                               require_timeline=True)
        # Smoke miniatures are too small for a meaningful RSS plateau
        # (process overheads dominate); schema and shrink-event gates
        # still apply.
        check_soak_verdicts(report, "<bench stdout>",
                            enforce_plateau=not smoke)
        print(f"memory timeline OK: churn acceptance run, "
              f"{checked} record(s)")
        return 0
    if not argv:
        print(__doc__)
        return 2
    for path in argv:
        with open(path) as f:
            report = json.load(f)
        checked = check_report(report, path)
        print(f"memory schema OK: {path} ({checked} record(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
