#!/usr/bin/env python3
"""Validate the `memory` allocation-telemetry object in klsm_bench JSON.

Schema (README "Memory placement"): when a report was produced with
--alloc-stats, every record of a k-LSM-family structure (klsm, dlsm,
numa_klsm) must carry

    "memory": {
      "policy": "none" | "bind" | "firsttouch",
      "resident_queried": bool,
      "pools": {
        "items":         {chunks, bytes, reuse_hits, fresh_allocs,
                          reuse_hit_rate, growth_beyond_bound,
                          bound_chunks, prefaulted_chunks
                          [, resident_nodes, resident_unknown_pages]},
        "dist_blocks":   {same fields},
        "shared_blocks": {same fields}
      }
    }

with internally consistent values (rates in [0, 1], bound/prefaulted
counts never exceeding chunks, resident_nodes only when queried).

Usage:
    check_memory_schema.py report.json [report2.json ...]
    check_memory_schema.py --bench path/to/klsm_bench

The --bench mode runs the ISSUE's acceptance command end to end
(--structure numa_klsm --pin compact --smoke --alloc-stats
--numa-alloc bind --json-out -) and validates its stdout; CTest invokes
it so the JSON wiring is covered by `ctest -L tier1`.
"""

import json
import subprocess
import sys

FAMILY = ("klsm", "dlsm", "numa_klsm")
POLICIES = ("none", "bind", "firsttouch")
COUNTER_FIELDS = ("chunks", "bytes", "reuse_hits", "fresh_allocs",
                  "growth_beyond_bound", "bound_chunks",
                  "prefaulted_chunks")


def check_pool(where, pool, resident_queried):
    for field in COUNTER_FIELDS:
        assert field in pool, f"{where}.{field} missing"
        value = pool[field]
        assert isinstance(value, int) and value >= 0, \
            f"{where}.{field} = {value!r} is not a non-negative integer"
    rate = pool.get("reuse_hit_rate")
    assert isinstance(rate, (int, float)) and 0.0 <= rate <= 1.0, \
        f"{where}.reuse_hit_rate = {rate!r} outside [0, 1]"
    assert pool["bound_chunks"] <= pool["chunks"], \
        f"{where}: bound_chunks exceeds chunks"
    assert pool["prefaulted_chunks"] <= pool["chunks"], \
        f"{where}: prefaulted_chunks exceeds chunks"
    if pool["chunks"] > 0:
        assert pool["bytes"] > 0, f"{where}: chunks without bytes"
    if resident_queried:
        assert "resident_nodes" in pool, \
            f"{where}.resident_nodes missing despite resident_queried"
        for entry in pool["resident_nodes"]:
            assert (isinstance(entry, list) and len(entry) == 2
                    and all(isinstance(x, int) and x >= 0
                            for x in entry)), \
                f"{where}.resident_nodes entry {entry!r} malformed"
        assert pool.get("resident_unknown_pages", 0) >= 0
    else:
        assert "resident_nodes" not in pool, \
            f"{where}: resident_nodes present without a query"


def check_report(report, path):
    assert report.get("alloc_stats") is True, \
        f"{path}: alloc_stats meta flag missing or false"
    assert report.get("numa_alloc") in POLICIES, \
        f"{path}: numa_alloc meta = {report.get('numa_alloc')!r}"
    checked = 0
    for record in report.get("records", []):
        structure = record.get("structure")
        if structure not in FAMILY:
            assert "memory" not in record, \
                f"{path}: {structure} has no pools but emits memory"
            continue
        assert "memory" in record, \
            f"{path}: {structure} record lacks the memory object"
        memory = record["memory"]
        assert memory.get("policy") == report["numa_alloc"], \
            f"{path}: memory.policy disagrees with the meta flag"
        resident_queried = memory.get("resident_queried")
        assert isinstance(resident_queried, bool), \
            f"{path}: memory.resident_queried missing"
        pools = memory.get("pools")
        assert isinstance(pools, dict), f"{path}: memory.pools missing"
        for name in ("items", "dist_blocks", "shared_blocks"):
            assert name in pools, f"{path}: memory.pools.{name} missing"
            check_pool(f"{path}:{structure}.memory.pools.{name}",
                       pools[name], resident_queried)
        # The paper's four-blocks-per-level bound is structural for the
        # DistLSM pools; the shared pools' safety valve is exempt.
        assert pools["dist_blocks"]["growth_beyond_bound"] == 0, \
            f"{path}: {structure} DistLSM pool grew beyond the bound"
        checked += 1
    assert checked, f"{path}: no k-LSM-family records with memory data"
    return checked


def main(argv):
    if len(argv) >= 2 and argv[0] == "--bench":
        cmd = [argv[1], "--structure", "numa_klsm", "--pin", "compact",
               "--smoke", "--alloc-stats", "--numa-alloc", "bind",
               "--json-out", "-"]
        out = subprocess.run(cmd, stdout=subprocess.PIPE, check=True)
        checked = check_report(json.loads(out.stdout), "<bench stdout>")
        print(f"memory schema OK: acceptance run, {checked} record(s)")
        return 0
    if not argv:
        print(__doc__)
        return 2
    for path in argv:
        with open(path) as f:
            report = json.load(f)
        checked = check_report(report, path)
        print(f"memory schema OK: {path} ({checked} record(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
