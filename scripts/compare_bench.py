#!/usr/bin/env python3
"""Diff two klsm_bench JSON reports and flag perf regressions.

The primitive the CI perf lane is built from:

    scripts/compare_bench.py baseline.json candidate.json

compares every record the two reports share — matched on
(benchmark, structure, pin, threads) — and exits nonzero when the
candidate regresses beyond the configured thresholds:

  * throughput workload: ops_per_sec dropping by more than
    --throughput-tolerance (fraction, default 0.25);
  * sssp workload: time_s growing by more than the same tolerance;
  * any workload with a `latency` object: insert / delete_min
    percentiles (--percentiles, default p50,p99,max) growing by more
    than --latency-tolerance (default 0.50) AND by more than
    --latency-floor-ns (default 500ns, so nanosecond jitter on fast
    paths never trips the gate);
  * service workload: the `service` object's achieved_rate dropping by
    more than --throughput-tolerance, intended-start percentiles (the
    coordinated-omission-correct distribution) growing past the latency
    thresholds, and the `slo` verdict flipping pass -> fail (a flip is
    always a regression; both sides already failing only warns);
  * bnb workload: the search-quality scalars — time_to_optimum_s and
    the expanded-node count — growing by more than --search-tolerance
    (default 1.0: search-order noise is large, so only a blowup past
    2x trips the gate), and the `match` verdict flipping true -> false
    (always a regression: relaxation may waste work but must never
    lose the optimum);
  * des workload: events_per_sec dropping like throughput (enforcing),
    and the `budget_ok` verdict flipping true -> false (a flip is
    always a regression; both sides already over budget only warns);
  * churn workload: ops_per_sec like throughput, plus the
    `memory_timeline` footprint — rss_high_water_bytes growing by more
    than --rss-tolerance (default 0.5) is an enforcing regression when
    BOTH reports sampled RSS reliably (rss_reliable true; sanitizer and
    non-Linux runs only warn), and a plateau verdict flipping
    ok -> FAIL regresses like an SLO flip;
  * any record with a `timeseries` block (--metrics-interval runs):
    the cumulative `ops` counter is differenced into per-interval
    rates, bucketed into four run phases, and each phase's mean rate is
    compared under --phase-tolerance (default 0.40, looser than the
    whole-run gate because a quarter of the samples is noisier).  This
    catches phase-localized regressions — a warm-up stall or an
    end-of-run collapse — that the run-wide ops_per_sec mean averages
    away.  Records without a timeseries on either side (all baselines
    predating --metrics-interval) skip this comparison silently.

`--sweep` additionally bucket-merges every matched record of a
(benchmark, structure) group — across threads and pin policies — and
compares percentiles re-derived from the merged buckets, so a whole
sweep is judged as one distribution.  The merge is exact (the bucket
layout is shared, identical to the C++ merge), which is what the sparse
`buckets` export exists for.

`--warn-only` prints the same comparison but always exits 0 — the
advisory mode CI uses on pull requests, where runner-to-runner noise
makes a hard gate unfair.  `--self-test` runs the built-in check suite
(no input files needed); CTest invokes it so the gate's own logic is
covered by `ctest -L tier1`.

`--head-to-head` takes ONE report and diffs structures against each
other *within* it instead of diffing a baseline against a candidate:
records are paired on (pin, threads) between the two structures named
by --h2h (default klsm,multiqueue — the paper's queue vs the
engineered-MultiQueue rival), and each pair prints a relative verdict:
ops_per_sec ratio for throughput/churn/service/des, time_s for sssp,
expanded nodes for bnb, and mean/max rank error (with each side's rho
bound when present) for quality.  The mode is informational — it exits nonzero only when the
report contains no matchable pairs, never on a losing ratio.

The latency schema (README "Latency metrics"): percentiles are
precomputed by the C++ side, and the sparse `buckets` array plus
`sub_bucket_bits` fully determine the histogram layout.  This script
re-derives percentiles from the buckets when asked (--recompute), which
doubles as a cross-check that the exported buckets are self-consistent.
"""

import argparse
import json
import sys

DEFAULT_PERCENTILES = "p50,p99,max"
OPS = ("insert", "delete_min")


# ---------------------------------------------------------------------------
# Histogram bucket math — mirrors src/stats/latency_histogram.hpp.

def bucket_lower(index, sub_bits):
    sub_count = 1 << sub_bits
    group = index >> sub_bits
    if group == 0:
        return index
    shift = group - 1
    sub = index & (sub_count - 1)
    return (sub_count + sub) << shift


def bucket_upper(index, sub_bits):
    group = index >> sub_bits
    if group == 0:
        return index
    shift = group - 1
    return bucket_lower(index, sub_bits) + (1 << shift) - 1


def percentile_from_buckets(op_stats, sub_bits, p):
    """Re-derive a percentile from the sparse bucket array, matching the
    C++ definition: upper edge of the bucket holding the sample of rank
    round(p/100 * count), clamped to the recorded max."""
    count = op_stats["count"]
    if count == 0:
        return 0
    rank = max(1, min(count, int(p / 100.0 * count + 0.5)))
    seen = 0
    for index, bucket_count in op_stats["buckets"]:
        seen += bucket_count
        if seen >= rank:
            return min(bucket_upper(index, sub_bits), op_stats["max"])
    return op_stats["max"]


def merge_op_stats(op_stats_list):
    """Exact bucket-wise merge of several per-op latency objects (the
    same addition the C++ merge performs, so whole-sweep percentiles can
    be re-derived from the result).  Empty inputs merge to a count-0
    stub."""
    merged = {"count": 0, "min": None, "max": 0, "mean": 0.0,
              "dropped_intervals": 0, "buckets": []}
    buckets = {}
    total_sum = 0.0
    for op_stats in op_stats_list:
        count = op_stats.get("count", 0)
        if count == 0:
            continue
        merged["count"] += count
        total_sum += op_stats.get("mean", 0.0) * count
        merged["max"] = max(merged["max"], op_stats.get("max", 0))
        op_min = op_stats.get("min", 0)
        merged["min"] = op_min if merged["min"] is None else min(
            merged["min"], op_min)
        merged["dropped_intervals"] += op_stats.get("dropped_intervals", 0)
        for index, bucket_count in op_stats.get("buckets", []):
            buckets[index] = buckets.get(index, 0) + bucket_count
    merged["min"] = merged["min"] or 0
    if merged["count"]:
        merged["mean"] = total_sum / merged["count"]
    merged["buckets"] = sorted(buckets.items())
    return merged


def merge_latency(records):
    """Merge the `latency` objects of several records into one aggregate
    per op kind.  Returns (merged_by_op, sub_bits) or (None, reason) when
    the records cannot be merged (no latency data, or mixed bucket
    layouts)."""
    sub_bits = None
    per_op = {op: [] for op in OPS}
    for record in records:
        lat = record.get("latency")
        if not lat:
            continue
        bits = lat.get("sub_bucket_bits", 5)
        if sub_bits is None:
            sub_bits = bits
        elif bits != sub_bits:
            return None, "mixed sub_bucket_bits across records"
        for op in OPS:
            if lat.get(op):
                per_op[op].append(lat[op])
    if sub_bits is None:
        return None, "no latency data in any record"
    return {op: merge_op_stats(stats) for op, stats in per_op.items()}, \
        sub_bits


# ---------------------------------------------------------------------------
# Report access.

def load_report(path):
    with open(path) as f:
        return json.load(f)


def record_key(report, record):
    # Records carry their own workload name since the registry allowed
    # comma selections ("bnb,des"); fall back to the report meta for
    # reports predating the field.
    return (
        record.get("workload", report.get("benchmark", "?")),
        record.get("structure", "?"),
        record.get("pin", "?"),
        record.get("threads", "?"),
    )


def index_records(report):
    out = {}
    for record in report.get("records", []):
        out[record_key(report, record)] = record
    return out


def fmt_key(key):
    benchmark, structure, pin, threads = key
    return f"{benchmark} {structure}/pin={pin}/t={threads}"


def fmt_value(value, unit):
    if unit == "ops/s":
        return f"{value:,.0f} ops/s"
    if unit == "B":
        return f"{value / (1024.0 * 1024.0):,.1f} MB"
    if unit == "rank":
        return f"{value:,.1f}"
    return f"{value:,.0f} ns"


# ---------------------------------------------------------------------------
# Comparison core.  Each finding is (severity, message) with severity in
# {"ok", "warn", "regression"}.

def compare_metric(findings, key, metric, base, cand, tolerance,
                   higher_is_worse, unit, floor=0,
                   regression_severity="regression"):
    if base is None or cand is None:
        return
    if higher_is_worse:
        degraded = cand > base * (1 + tolerance) and cand - base > floor
        change = (cand - base) / base if base else 0.0
    else:
        degraded = cand < base * (1 - tolerance)
        change = (cand - base) / base if base else 0.0
    severity = regression_severity if degraded else "ok"
    findings.append((
        severity,
        f"{fmt_key(key)} {metric}: {fmt_value(base, unit)} -> "
        f"{fmt_value(cand, unit)} ({change:+.1%}, tolerance "
        f"{'+' if higher_is_worse else '-'}{tolerance:.0%})",
    ))


def compare_latency(findings, key, base_lat, cand_lat, percentiles,
                    tolerance, floor, recompute,
                    regression_severity="regression", op_prefix=""):
    for op in OPS:
        base_op = base_lat.get(op)
        cand_op = cand_lat.get(op)
        if not base_op or not cand_op:
            continue
        if base_op["count"] == 0 or cand_op["count"] == 0:
            findings.append((
                "warn",
                f"{fmt_key(key)} {op_prefix}{op}: empty latency "
                f"histogram (base count {base_op['count']}, candidate "
                f"count {cand_op['count']}); skipping",
            ))
            continue
        for pct in percentiles:
            if recompute and pct.startswith("p"):
                p = float(pct[1:].replace("_", "."))
                if pct == "p999":
                    p = 99.9
                base_value = percentile_from_buckets(
                    base_op, base_lat.get("sub_bucket_bits", 5), p)
                cand_value = percentile_from_buckets(
                    cand_op, cand_lat.get("sub_bucket_bits", 5), p)
            else:
                base_value = base_op.get(pct)
                cand_value = cand_op.get(pct)
            compare_metric(findings, key, f"{op_prefix}{op} {pct}",
                           base_value, cand_value, tolerance, True, "ns",
                           floor, regression_severity)


def _service_latency_view(svc, which):
    """Shape a service record's intended/completion block like a
    `latency` object so compare_latency's machinery (recompute included)
    applies unchanged."""
    view = dict(svc.get(which) or {})
    view["sub_bucket_bits"] = svc.get("sub_bucket_bits", 5)
    return view


def compare_service(findings, key, base_record, cand_record, args):
    base_svc = base_record.get("service")
    cand_svc = cand_record.get("service")
    if not base_svc or not cand_svc:
        side = "baseline" if not base_svc else "candidate"
        findings.append((
            "warn", f"{fmt_key(key)}: {side} record has no service "
            f"object; skipping"))
        return
    if base_svc.get("arrival") != cand_svc.get("arrival"):
        findings.append((
            "warn",
            f"{fmt_key(key)}: arrival process changed "
            f"({base_svc.get('arrival')} -> {cand_svc.get('arrival')}); "
            f"skipping"))
        return
    # Achieved rate is the overload signal (catch-up semantics never
    # shed load, so a shortfall means the queue fell behind).  Always
    # enforcing, even under --latency-warn-only.
    compare_metric(findings, key, "achieved_rate",
                   base_svc.get("achieved_rate"),
                   cand_svc.get("achieved_rate"),
                   args.throughput_tolerance, False, "ops/s")
    # The intended-start distribution is the one that sees coordinated
    # omission; it is the distribution worth gating on.  Percentile
    # findings demote under --latency-warn-only like every other
    # latency comparison.
    compare_latency(findings, key,
                    _service_latency_view(base_svc, "intended"),
                    _service_latency_view(cand_svc, "intended"),
                    args.percentile_list, args.latency_tolerance,
                    args.latency_floor_ns, args.recompute,
                    latency_severity(args), op_prefix="intended ")
    base_slo = base_record.get("slo") or {}
    cand_slo = cand_record.get("slo") or {}
    if "pass" in base_slo and "pass" in cand_slo:
        if base_slo["pass"] and not cand_slo["pass"]:
            detail = []
            if not cand_slo.get("latency_ok", True):
                detail.append(
                    f"p99 {cand_slo.get('observed_p99_ns', 0):,.0f}ns > "
                    f"{cand_slo.get('p99_threshold_ns', 0):,.0f}ns")
            if not cand_slo.get("rate_ok", True):
                detail.append(
                    f"achieved {cand_slo.get('achieved_rate', 0):,.0f} < "
                    f"{cand_slo.get('min_achieved_fraction', 0):.0%} of "
                    f"offered {cand_slo.get('offered_rate', 0):,.0f}")
            findings.append((
                "regression",
                f"{fmt_key(key)} slo: verdict flipped pass -> FAIL "
                f"({'; '.join(detail) or 'see record'})"))
        elif not base_slo["pass"] and not cand_slo["pass"]:
            findings.append((
                "warn",
                f"{fmt_key(key)} slo: fails on both sides (baseline "
                f"was already failing)"))


def compare_churn(findings, key, base_record, cand_record, args):
    """Churn soak comparison: throughput like any closed-loop workload,
    plus the memory footprint.  The RSS high-water gate is enforcing
    only when both runs sampled RSS reliably — under sanitizers (shadow
    memory dominates RSS) or off-Linux the samples are marked
    unreliable at the source and the comparison demotes to a warning."""
    compare_metric(findings, key, "ops_per_sec",
                   base_record.get("ops_per_sec"),
                   cand_record.get("ops_per_sec"),
                   args.throughput_tolerance, False, "ops/s")
    base_tl = base_record.get("memory_timeline")
    cand_tl = cand_record.get("memory_timeline")
    if not base_tl or not cand_tl:
        side = "baseline" if not base_tl else "candidate"
        findings.append((
            "warn", f"{fmt_key(key)}: {side} record has no "
            f"memory_timeline; skipping"))
        return
    both_reliable = (base_tl.get("rss_reliable")
                     and cand_tl.get("rss_reliable"))
    compare_metric(findings, key, "rss_high_water_bytes",
                   base_tl.get("rss_high_water_bytes"),
                   cand_tl.get("rss_high_water_bytes"),
                   args.rss_tolerance, True, "B",
                   regression_severity="regression" if both_reliable
                   else "warn")
    if not both_reliable:
        findings.append((
            "warn",
            f"{fmt_key(key)}: RSS sampling unreliable on at least one "
            f"side; footprint comparison is advisory"))
    if (both_reliable and base_tl.get("plateau_ok")
            and cand_tl.get("plateau_ok") is False):
        findings.append((
            "regression",
            f"{fmt_key(key)} plateau: verdict flipped ok -> FAIL "
            f"(ratio {cand_tl.get('plateau_ratio', 0):.2f} over "
            f"tolerance {cand_tl.get('plateau_tolerance', 0):.2f})"))


def compare_bnb(findings, key, base_record, cand_record, args):
    """Branch-and-bound comparison: the search-quality scalars under
    the loose --search-tolerance (relaxed pop order makes expansion
    counts noisy run to run), and the optimum-match verdict, which is
    binary and always enforcing."""
    base_t = base_record.get("time_to_optimum_s")
    cand_t = cand_record.get("time_to_optimum_s")
    if base_t is not None and cand_t is not None \
            and base_t >= 0 and cand_t >= 0:
        # 10ms floor: smoke instances reach the optimum in microseconds
        # and scheduler jitter alone is a multiple of that.
        compare_metric(findings, key, "time_to_optimum_s",
                       base_t * 1e9, cand_t * 1e9,
                       args.search_tolerance, True, "ns", floor=1e7)
    base_bnb = base_record.get("bnb") or {}
    cand_bnb = cand_record.get("bnb") or {}
    compare_metric(findings, key, "expanded",
                   base_record.get("expanded", base_bnb.get("expanded")),
                   cand_record.get("expanded", cand_bnb.get("expanded")),
                   args.search_tolerance, True, "rank")
    if base_bnb.get("match") and cand_bnb.get("match") is False:
        findings.append((
            "regression",
            f"{fmt_key(key)} match: verdict flipped true -> FALSE "
            f"(best {cand_bnb.get('best')} != optimum "
            f"{cand_bnb.get('optimum')} — the search lost the optimum)"))


def compare_des(findings, key, base_record, cand_record, args):
    """Discrete-event-simulation comparison: commit rate enforces like
    throughput, and the violation-budget verdict enforces like an SLO
    flip — the workload's contract is 'events/sec at a fixed
    causality-violation budget', so losing either side regresses."""
    compare_metric(findings, key, "events_per_sec",
                   base_record.get("events_per_sec"),
                   cand_record.get("events_per_sec"),
                   args.throughput_tolerance, False, "ops/s")
    base_des = base_record.get("des") or {}
    cand_des = cand_record.get("des") or {}
    if "budget_ok" not in base_des or "budget_ok" not in cand_des:
        return
    if base_des["budget_ok"] and not cand_des["budget_ok"]:
        findings.append((
            "regression",
            f"{fmt_key(key)} budget: verdict flipped ok -> OVER "
            f"(violation fraction "
            f"{cand_des.get('violation_fraction', 0):.4f} > budget "
            f"{cand_des.get('budget', 0):.4f})"))
    elif not base_des["budget_ok"] and not cand_des["budget_ok"]:
        findings.append((
            "warn",
            f"{fmt_key(key)} budget: over on both sides (baseline was "
            f"already over budget)"))


def timeseries_phase_rates(ts, column="ops", phases=4):
    """Difference a timeseries' cumulative counter column into
    per-interval rates and average them over `phases` equal time
    buckets.  Returns a list of per-phase mean rates (None for a phase
    that caught no interval), or None when the record carries no usable
    series — no timeseries at all, no `ops` counter column, or too few
    rows to populate the buckets."""
    if not isinstance(ts, dict):
        return None
    columns = ts.get("columns") or []
    col = next((i for i, c in enumerate(columns)
                if isinstance(c, dict) and c.get("name") == column
                and c.get("kind") == "counter"), None)
    if col is None:
        return None
    samples = ts.get("samples") or []
    if len(samples) < phases + 1:
        return None
    t_end = samples[-1][0]
    if not t_end or t_end <= 0:
        return None
    sums = [0.0] * phases
    hits = [0] * phases
    for prev, row in zip(samples, samples[1:]):
        dt = row[0] - prev[0]
        if dt <= 0:
            continue
        rate = (row[col + 1] - prev[col + 1]) / dt
        midpoint = (row[0] + prev[0]) / 2.0
        bucket = min(phases - 1, int(midpoint / t_end * phases))
        sums[bucket] += rate
        hits[bucket] += 1
    return [sums[i] / hits[i] if hits[i] else None
            for i in range(phases)]


def compare_timeseries(findings, key, base_record, cand_record, args):
    """Phase-localized throughput comparison over the in-run metrics
    series.  Silent when either side lacks a usable series: baselines
    recorded before --metrics-interval existed have none, and that must
    not degrade the gate's verdict."""
    base_rates = timeseries_phase_rates(base_record.get("timeseries"))
    cand_rates = timeseries_phase_rates(cand_record.get("timeseries"))
    if base_rates is None or cand_rates is None:
        return
    phases = len(base_rates)
    for i, (base_rate, cand_rate) in enumerate(
            zip(base_rates, cand_rates)):
        if base_rate is None or cand_rate is None or base_rate <= 0:
            continue
        compare_metric(findings, key,
                       f"ops rate phase {i + 1}/{phases}",
                       base_rate, cand_rate, args.phase_tolerance,
                       False, "ops/s")


def latency_severity(args):
    """Latency findings demote to warnings under --latency-warn-only —
    the mode the CI baseline gate uses: throughput is enforced, but
    latency percentiles recorded on different hardware stay advisory."""
    return "warn" if args.latency_warn_only else "regression"


def compare_reports(base, cand, args):
    findings = []
    base_records = index_records(base)
    cand_records = index_records(cand)

    for key in base_records.keys() - cand_records.keys():
        findings.append(
            ("warn", f"{fmt_key(key)}: in baseline but not in candidate"))
    for key in cand_records.keys() - base_records.keys():
        findings.append(
            ("warn", f"{fmt_key(key)}: in candidate but not in baseline"))

    for key in sorted(base_records.keys() & cand_records.keys(),
                      key=fmt_key):
        base_record = base_records[key]
        cand_record = cand_records[key]
        benchmark = key[0]
        if benchmark == "throughput":
            compare_metric(findings, key, "ops_per_sec",
                           base_record.get("ops_per_sec"),
                           cand_record.get("ops_per_sec"),
                           args.throughput_tolerance, False, "ops/s")
        elif benchmark == "sssp":
            base_time = base_record.get("time_s")
            cand_time = cand_record.get("time_s")
            if base_time is not None and cand_time is not None:
                compare_metric(findings, key, "time_s",
                               base_time * 1e9, cand_time * 1e9,
                               args.throughput_tolerance, True, "ns")
        elif benchmark == "service":
            compare_service(findings, key, base_record, cand_record,
                            args)
        elif benchmark == "churn":
            compare_churn(findings, key, base_record, cand_record,
                          args)
        elif benchmark == "bnb":
            compare_bnb(findings, key, base_record, cand_record, args)
        elif benchmark == "des":
            compare_des(findings, key, base_record, cand_record, args)
        compare_timeseries(findings, key, base_record, cand_record,
                           args)
        base_lat = base_record.get("latency")
        cand_lat = cand_record.get("latency")
        if base_lat and cand_lat:
            compare_latency(findings, key, base_lat, cand_lat,
                            args.percentile_list, args.latency_tolerance,
                            args.latency_floor_ns, args.recompute,
                            latency_severity(args))
        elif base_lat and not cand_lat:
            findings.append((
                "warn",
                f"{fmt_key(key)}: baseline has latency data, candidate "
                f"does not (run with --latency-sample)",
            ))

    if args.sweep:
        compare_sweeps(findings, base_records, cand_records, args)
    return findings


def compare_sweeps(findings, base_records, cand_records, args):
    """Whole-sweep latency comparison: bucket-merge every matched record
    of a (benchmark, structure) group on each side, then compare
    percentiles re-derived from the merged buckets.  This is how a sweep
    over threads/pins is judged as one distribution instead of
    record-by-record (where per-point noise dominates)."""
    groups = {}
    for key in base_records.keys() & cand_records.keys():
        groups.setdefault((key[0], key[1]), []).append(key)
    for (benchmark, structure), keys in sorted(groups.items()):
        base_merged, base_bits = merge_latency(
            [base_records[k] for k in keys])
        cand_merged, cand_bits = merge_latency(
            [cand_records[k] for k in keys])
        label = (benchmark, structure, "sweep",
                 f"x{len(keys)}")
        if base_merged is None or cand_merged is None:
            findings.append((
                "warn",
                f"{fmt_key(label)}: cannot merge "
                f"({base_bits if base_merged is None else cand_bits})",
            ))
            continue
        if base_bits != cand_bits:
            findings.append((
                "warn",
                f"{fmt_key(label)}: sub_bucket_bits differ "
                f"({base_bits} vs {cand_bits}); skipping",
            ))
            continue
        for op in OPS:
            base_op = base_merged[op]
            cand_op = cand_merged[op]
            if base_op["count"] == 0 or cand_op["count"] == 0:
                continue
            for pct in args.percentile_list:
                if pct.startswith("p"):
                    p = 99.9 if pct == "p999" else float(
                        pct[1:].replace("_", "."))
                    base_value = percentile_from_buckets(
                        base_op, base_bits, p)
                    cand_value = percentile_from_buckets(
                        cand_op, cand_bits, p)
                else:
                    base_value = base_op.get(pct)
                    cand_value = cand_op.get(pct)
                compare_metric(findings, label, f"{op} {pct}",
                               base_value, cand_value,
                               args.latency_tolerance, True, "ns",
                               args.latency_floor_ns,
                               latency_severity(args))


def head_to_head(report, left, right):
    """Pair `left` vs `right` structure records within one report on
    (pin, threads) and render a relative verdict per pair.  Returns
    (pair_count, lines); informational only — callers decide whether an
    empty pairing is an error."""
    benchmark = report.get("benchmark", "?")
    by_struct = {}
    for record in report.get("records", []):
        by_struct.setdefault(record.get("structure", "?"), {})[
            (record.get("workload", benchmark), record.get("pin", "?"),
             record.get("threads", "?"))] = record
    left_recs = by_struct.get(left, {})
    right_recs = by_struct.get(right, {})
    lines = []

    def ratio_line(label, metric, a, b, unit, lower_is_better):
        va, vb = a.get(metric), b.get(metric)
        if va is None or vb is None or not vb:
            return
        ratio = va / vb
        ahead = left if (ratio <= 1) == lower_is_better else right
        lines.append(
            f"{label} {metric}: {left} {fmt_value(va, unit)} vs "
            f"{right} {fmt_value(vb, unit)} ({ratio:.2f}x, {ahead} "
            f"ahead)")

    for key in sorted(left_recs.keys() & right_recs.keys(),
                      key=lambda k: tuple(str(part) for part in k)):
        a, b = left_recs[key], right_recs[key]
        workload, pin, threads = key
        label = f"{workload} pin={pin}/t={threads}"
        if workload == "sssp":
            va, vb = a.get("time_s"), b.get("time_s")
            if va is not None and vb:
                ratio_line(label, "time_s",
                           {"time_s": va * 1e9}, {"time_s": vb * 1e9},
                           "ns", True)
        elif workload == "bnb":
            # Search quality: fewer expansions and a faster route to
            # the optimum both mean a tighter pop order.
            ratio_line(label, "expanded", a, b, "rank", True)
        elif workload == "quality":
            # Rank error: lower is better; each side's bound (when the
            # record carries one) contextualizes how much of the
            # relaxation budget was actually spent.
            ratio_line(label, "mean_rank", a, b, "rank", True)
            ratio_line(label, "max_rank", a, b, "rank", True)
            bounds = []
            for name, record in ((left, a), (right, b)):
                if record.get("rho") is not None:
                    extra = record.get("buffer_total")
                    bounds.append(
                        f"{name} rho={record['rho']}" +
                        (f" (buffer_total={extra})" if extra else ""))
            if bounds:
                lines.append(f"{label} bounds: {'; '.join(bounds)}")
        else:
            # throughput, churn, service all report ops_per_sec.
            ratio_line(label, "ops_per_sec", a, b, "ops/s", False)
    return len(left_recs.keys() & right_recs.keys()), lines


def print_findings(findings, verbose):
    tags = {"ok": "[ok]  ", "warn": "[warn]", "regression": "[REGR]"}
    for severity, message in findings:
        if severity == "ok" and not verbose:
            continue
        print(f"{tags[severity]} {message}")


# ---------------------------------------------------------------------------
# Self-test: synthetic reports through the real comparison path.

def _report(benchmark, ops_per_sec=None, latency=None, time_s=None,
            structure="klsm"):
    record = {"structure": structure, "pin": "none", "threads": 2}
    if ops_per_sec is not None:
        record["ops_per_sec"] = ops_per_sec
    if time_s is not None:
        record["time_s"] = time_s
    if latency is not None:
        record["latency"] = latency
    return {"benchmark": benchmark, "records": [record]}


def _latency(p50, p99, mx, count=1000):
    op = {"count": count, "mean": p50, "min": 1, "p50": p50, "p90": p99,
          "p99": p99, "p999": mx, "max": mx, "buckets": []}
    return {"unit": "ns", "sample_stride": 4, "sub_bucket_bits": 5,
            "insert": dict(op), "delete_min": dict(op)}


def self_test(args_factory):
    failures = []

    def check(name, findings, expect_regression):
        got = any(s == "regression" for s, _ in findings)
        status = "pass" if got == expect_regression else "FAIL"
        print(f"self-test {status}: {name}")
        if got != expect_regression:
            failures.append(name)

    args = args_factory([])

    base = _report("throughput", ops_per_sec=1e6,
                   latency=_latency(100, 500, 10000))
    check("identical reports are clean",
          compare_reports(base, base, args), False)

    slower = _report("throughput", ops_per_sec=0.5e6,
                     latency=_latency(100, 500, 10000))
    check("halved throughput regresses",
          compare_reports(base, slower, args), True)

    wiggle = _report("throughput", ops_per_sec=0.9e6,
                     latency=_latency(110, 520, 11000))
    check("noise within tolerance is clean",
          compare_reports(base, wiggle, args), False)

    lat_regr = _report("throughput", ops_per_sec=1e6,
                       latency=_latency(100, 5000, 10000))
    check("10x p99 latency regresses",
          compare_reports(base, lat_regr, args), True)

    tiny = _report("throughput", ops_per_sec=1e6,
                   latency=_latency(100, 500, 10000))
    tiny_base = _report("throughput", ops_per_sec=1e6,
                        latency=_latency(20, 60, 10000))
    # 20ns -> 100ns is a 5x blowup but under the 500ns absolute floor.
    check("sub-floor nanosecond jitter is clean",
          compare_reports(tiny_base, tiny, args), False)

    faster = _report("throughput", ops_per_sec=2e6,
                     latency=_latency(50, 250, 5000))
    check("improvement is clean",
          compare_reports(base, faster, args), False)

    missing = {"benchmark": "throughput", "records": []}
    findings = compare_reports(base, missing, args)
    check("missing record warns but does not regress", findings, False)
    if not any(s == "warn" for s, _ in findings):
        print("self-test FAIL: missing record produced no warning")
        failures.append("missing-record-warning")

    sssp_base = _report("sssp", time_s=0.1)
    sssp_slow = _report("sssp", time_s=0.5)
    check("5x sssp time regresses",
          compare_reports(sssp_base, sssp_slow, args), True)
    check("sssp self-comparison is clean",
          compare_reports(sssp_base, sssp_base, args), False)

    warn_args = args_factory(["--warn-only"])
    assert warn_args.warn_only

    # --latency-warn-only: a 10x p99 blowup only warns, but a halved
    # throughput in the same reports still regresses.
    lat_warn_args = args_factory(["--latency-warn-only"])
    lat_only = _report("throughput", ops_per_sec=1e6,
                       latency=_latency(100, 5000, 10000))
    findings = compare_reports(base, lat_only, lat_warn_args)
    check("latency-warn-only demotes latency regressions",
          findings, False)
    if not any(s == "warn" for s, _ in findings):
        print("self-test FAIL: latency-warn-only produced no warning")
        failures.append("latency-warn-only-warning")
    both = _report("throughput", ops_per_sec=0.4e6,
                   latency=_latency(100, 5000, 10000))
    check("latency-warn-only still enforces throughput",
          compare_reports(base, both, lat_warn_args), True)

    # Service records: achieved_rate enforces like throughput, intended
    # percentiles enforce like latency, and an SLO pass -> fail flip is
    # a regression on its own.
    def _service_report(achieved, intended_p99, slo_pass,
                        latency_ok=True, rate_ok=True):
        op = {"count": 1000, "mean": 100.0, "min": 10, "p50": 100,
              "p90": intended_p99, "p99": intended_p99,
              "p999": intended_p99, "max": intended_p99, "buckets": []}
        fast = {"count": 1000, "mean": 50.0, "min": 10, "p50": 50,
                "p90": 60, "p99": 60, "p999": 60, "max": 60,
                "buckets": []}
        record = {
            "structure": "klsm", "pin": "none", "threads": 2,
            "ops_per_sec": achieved,
            "service": {
                "arrival": "poisson", "nominal_rate": 1e6,
                "offered_rate": 1e6, "achieved_rate": achieved,
                "scheduled_ops": 1000, "completed_ops": 1000,
                "late_ops": 0, "backlog_max": 0, "unit": "ns",
                "sub_bucket_bits": 5,
                "intended": {"insert": dict(op),
                             "delete_min": dict(op)},
                "completion": {"insert": dict(fast),
                               "delete_min": dict(fast)}},
            "slo": {"metric": "intended_p99_ns",
                    "p99_threshold_ns": 100000,
                    "min_achieved_fraction": 0.9,
                    "offered_rate": 1e6, "achieved_rate": achieved,
                    "observed_p99_ns": intended_p99,
                    "latency_ok": latency_ok, "rate_ok": rate_ok,
                    "pass": slo_pass}}
        return {"benchmark": "service", "records": [record]}

    svc_base = _service_report(1e6, 5000, True)
    check("service self-comparison is clean",
          compare_reports(svc_base, svc_base, args), False)

    svc_slow = _service_report(0.5e6, 5000, True)
    check("halved achieved_rate regresses",
          compare_reports(svc_base, svc_slow, args), True)

    svc_flip = _service_report(1e6, 200000, False, latency_ok=False)
    check("slo pass -> fail flip regresses",
          compare_reports(svc_base, svc_flip, args), True)

    svc_fail_base = _service_report(1e6, 200000, False, latency_ok=False)
    findings = compare_reports(svc_fail_base, svc_fail_base, args)
    check("slo failing on both sides does not regress", findings, False)
    if not any(s == "warn" for s, _ in findings):
        print("self-test FAIL: both-sides slo failure produced no "
              "warning")
        failures.append("slo-both-fail-warning")

    # --latency-warn-only: a 50x intended p99 blowup demotes to a
    # warning, but a halved achieved_rate in the same report still
    # regresses (overload is never advisory).
    svc_lat = _service_report(1e6, 250000, True)
    findings = compare_reports(svc_base, svc_lat, lat_warn_args)
    check("latency-warn-only demotes intended-p99 regressions",
          findings, False)
    if not any(s == "warn" for s, _ in findings):
        print("self-test FAIL: intended-p99 warn-only produced no "
              "warning")
        failures.append("intended-warn-only-warning")
    svc_both = _service_report(0.4e6, 250000, True)
    check("latency-warn-only still enforces achieved_rate",
          compare_reports(svc_base, svc_both, lat_warn_args), True)

    # Churn records: throughput enforces, the RSS high-water gate
    # enforces only when both sides sampled RSS reliably, and a
    # plateau ok -> FAIL flip is a regression on its own.
    def _churn_report(ops_per_sec, rss_hw, reliable=True,
                      plateau_ok=True):
        record = {
            "structure": "klsm", "pin": "none", "threads": 2,
            "ops_per_sec": ops_per_sec,
            "memory_timeline": {
                "rss_reliable": reliable,
                "shrink_events": 3,
                "rss_high_water_bytes": rss_hw,
                "steady_rss_high_water_bytes": rss_hw,
                "final_rss_bytes": rss_hw // 2,
                "pool_high_water_bytes": rss_hw // 2,
                "plateau_tolerance": 0.25,
                "plateau_ratio": 2.0 if not plateau_ok else 0.5,
                "plateau_ok": plateau_ok,
                "phases": [], "samples": []}}
        return {"benchmark": "churn", "records": [record]}

    churn_base = _churn_report(1e6, 100 << 20)
    check("churn self-comparison is clean",
          compare_reports(churn_base, churn_base, args), False)
    check("halved churn throughput regresses",
          compare_reports(churn_base, _churn_report(0.4e6, 100 << 20),
                          args), True)
    check("doubled RSS high-water regresses",
          compare_reports(churn_base, _churn_report(1e6, 200 << 20),
                          args), True)
    check("RSS growth within tolerance is clean",
          compare_reports(churn_base, _churn_report(1e6, 120 << 20),
                          args), False)
    findings = compare_reports(
        churn_base, _churn_report(1e6, 200 << 20, reliable=False), args)
    check("unreliable RSS demotes the footprint gate", findings, False)
    if not any(s == "warn" for s, _ in findings):
        print("self-test FAIL: unreliable RSS produced no warning")
        failures.append("churn-unreliable-warning")
    check("plateau ok -> FAIL flip regresses",
          compare_reports(churn_base,
                          _churn_report(1e6, 100 << 20,
                                        plateau_ok=False), args), True)

    # bnb records: the search scalars only regress past the loose
    # --search-tolerance, and losing the optimum is always a
    # regression.  Records carry their own `workload` field, so a
    # combined "bnb,des" report keys each record by its workload.
    def _bnb_report(expanded, t_opt, match=True, benchmark="bnb"):
        record = {"workload": "bnb", "structure": "klsm",
                  "pin": "none", "threads": 2,
                  "expanded": expanded, "time_to_optimum_s": t_opt,
                  "ops_per_sec": 1e6,
                  "bnb": {"items": 30, "capacity": 7000,
                          "optimum": 5000,
                          "best": 5000 if match else 4990,
                          "match": match, "expanded": expanded,
                          "wasted_expansions": expanded // 2,
                          "pruned_pops": 100, "pushed": expanded + 100,
                          "failed_pops": 0,
                          "time_to_optimum_s": t_opt}}
        return {"benchmark": benchmark, "records": [record]}

    bnb_base = _bnb_report(1000, 0.1)
    check("bnb self-comparison is clean",
          compare_reports(bnb_base, bnb_base, args), False)
    check("3x expanded nodes regresses",
          compare_reports(bnb_base, _bnb_report(3000, 0.1), args), True)
    check("expanded growth within search tolerance is clean",
          compare_reports(bnb_base, _bnb_report(1800, 0.1), args),
          False)
    check("3x time-to-optimum regresses",
          compare_reports(bnb_base, _bnb_report(1000, 0.3), args), True)
    check("match true -> false flip regresses",
          compare_reports(bnb_base, _bnb_report(1000, 0.1, match=False),
                          args), True)

    # des records: commit rate enforces like throughput; the violation
    # budget flipping ok -> over is a regression on its own.
    def _des_report(events_per_sec, budget_ok=True,
                    benchmark="des"):
        record = {"workload": "des", "structure": "klsm",
                  "pin": "none", "threads": 2,
                  "ops_per_sec": events_per_sec,
                  "events_per_sec": events_per_sec,
                  "des": {"lps": 256, "population": 8192,
                          "target_events": 200000,
                          "committed": 200000, "scheduled": 200000,
                          "failed_pops": 0,
                          "violations": 1000 if budget_ok else 80000,
                          "violation_fraction":
                              0.005 if budget_ok else 0.4,
                          "lookahead": 0, "mean_delay": 64,
                          "budget": 0.15, "budget_ok": budget_ok,
                          "max_lag": 100, "virtual_time": 10 ** 7}}
        return {"benchmark": benchmark, "records": [record]}

    des_base = _des_report(1e6)
    check("des self-comparison is clean",
          compare_reports(des_base, des_base, args), False)
    check("halved events/sec regresses",
          compare_reports(des_base, _des_report(0.5e6), args), True)
    check("budget ok -> over flip regresses",
          compare_reports(des_base, _des_report(1e6, budget_ok=False),
                          args), True)
    des_fail = _des_report(1e6, budget_ok=False)
    findings = compare_reports(des_fail, des_fail, args)
    check("budget over on both sides does not regress", findings, False)
    if not any(s == "warn" for s, _ in findings):
        print("self-test FAIL: both-sides budget failure produced no "
              "warning")
        failures.append("des-both-over-warning")

    # Combined-selection keying: a "bnb,des" report pairs each record
    # with its same-workload twin, so a des rate collapse is found even
    # though the report-level benchmark string matches neither record.
    combined_base = {"benchmark": "bnb,des",
                     "records": [_bnb_report(1000, 0.1)["records"][0],
                                 _des_report(1e6)["records"][0]]}
    combined_slow = {"benchmark": "bnb,des",
                     "records": [_bnb_report(1000, 0.1)["records"][0],
                                 _des_report(0.4e6)["records"][0]]}
    check("combined bnb,des reports key records by workload",
          compare_reports(combined_base, combined_slow, args), True)
    check("combined bnb,des self-comparison is clean",
          compare_reports(combined_base, combined_base, args), False)

    # Timeseries phase gate: cumulative-ops series differenced into
    # per-phase rates; a collapse confined to one quarter of the run
    # regresses even though the run-wide ops_per_sec mean barely moves,
    # and records without a series skip the gate silently.
    def _ts_report(phase_rates, ops_per_sec=1e6):
        samples = [[0.0, 0.0]]
        t, ops = 0.0, 0.0
        for rate in phase_rates:
            for _ in range(5):
                t += 0.1
                ops += rate * 0.1
                samples.append([round(t, 6), ops])
        record = {"structure": "klsm", "pin": "none", "threads": 2,
                  "ops_per_sec": ops_per_sec,
                  "timeseries": {"requested_interval_ms": 100.0,
                                 "interval_ms": 100.0,
                                 "columns": [{"name": "ops",
                                              "kind": "counter"}],
                                 "samples": samples}}
        return {"benchmark": "throughput", "records": [record]}

    rates = timeseries_phase_rates(
        _ts_report([1e6, 2e6, 3e6, 4e6])["records"][0]["timeseries"])
    ok = (rates is not None and len(rates) == 4
          and all(abs(r - e) < 1.0
                  for r, e in zip(rates, (1e6, 2e6, 3e6, 4e6))))
    print(f"self-test {'pass' if ok else 'FAIL'}: phase rates re-derive "
          f"from the cumulative counter")
    if not ok:
        failures.append("phase-rates")

    ts_base = _ts_report([1e6, 1e6, 1e6, 1e6])
    check("timeseries self-comparison is clean",
          compare_reports(ts_base, ts_base, args), False)
    # Whole-run mean drops only 17% (within the 25% throughput gate);
    # the last quarter alone dropped 70%.
    ts_tail = _ts_report([1e6, 1e6, 1e6, 0.3e6], ops_per_sec=0.83e6)
    check("phase-localized collapse regresses",
          compare_reports(ts_base, ts_tail, args), True)
    ts_wiggle = _ts_report([0.9e6, 1.05e6, 0.95e6, 0.8e6],
                           ops_per_sec=0.92e6)
    check("per-phase noise within tolerance is clean",
          compare_reports(ts_base, ts_wiggle, args), False)
    no_ts = _report("throughput", ops_per_sec=1e6)
    findings = compare_reports(ts_base, no_ts, args)
    check("candidate without a timeseries skips the phase gate",
          findings, False)
    if any("phase" in message for _, message in findings):
        print("self-test FAIL: missing timeseries still produced phase "
              "findings")
        failures.append("phase-silent-skip")

    # Bucket math round-trip against the C++ layout: every index in the
    # first few groups maps back into its own [lower, upper] range.
    for sub_bits in (1, 5, 8):
        for index in range(0, (1 << sub_bits) * 8):
            lo = bucket_lower(index, sub_bits)
            hi = bucket_upper(index, sub_bits)
            if not (lo <= hi):
                print(f"self-test FAIL: bucket {index} empty range")
                failures.append("bucket-range")
                break

    # Percentile re-derivation: a histogram with 100 width-1 samples.
    op = {"count": 100, "max": 99,
          "buckets": [[i, 1] for i in range(100)]}
    for p, expect in ((1, 0), (50, 49), (100, 99)):
        got = percentile_from_buckets(op, 5, p)
        # width-1 buckets only exist below 2^(sub_bits+1); above that the
        # upper edge is coarser, hence <=.
        if not (expect <= got <= bucket_upper(got, 5)):
            print(f"self-test FAIL: p{p} -> {got}, expected ~{expect}")
            failures.append(f"percentile-p{p}")

    # Bucket merge: two disjoint halves must re-derive the same
    # percentiles as the all-in-one histogram (the C++ merge oracle).
    half_a = {"count": 50, "mean": 24.5, "min": 0, "max": 49,
              "buckets": [[i, 1] for i in range(50)]}
    half_b = {"count": 50, "mean": 74.5, "min": 50, "max": 99,
              "buckets": [[i, 1] for i in range(50, 100)]}
    merged = merge_op_stats([half_a, half_b])
    ok = (merged["count"] == 100 and merged["min"] == 0
          and merged["max"] == 99
          and abs(merged["mean"] - 49.5) < 1e-9)
    for p in (1, 50, 100):
        if percentile_from_buckets(merged, 5, p) != \
                percentile_from_buckets(op, 5, p):
            ok = False
    # Overlapping buckets must add counts, not duplicate entries.
    overlap = merge_op_stats([half_a, half_a])
    if overlap["count"] != 100 or overlap["buckets"] != \
            [(i, 2) for i in range(50)]:
        ok = False
    print(f"self-test {'pass' if ok else 'FAIL'}: bucket merge matches "
          f"the all-in-one oracle")
    if not ok:
        failures.append("bucket-merge")

    # Whole-sweep comparison: per-record percentiles are identical (and
    # clean), but the merged distribution shifted an octave — only
    # --sweep sees it.
    def _sweep_report(bucket_index):
        records = []
        for threads in (1, 2):
            rec_op = {"count": 100, "mean": 50.0, "min": 1, "p50": 1,
                      "p90": 1, "p99": 1, "p999": 1, "max": 40000,
                      "buckets": [[bucket_index, 100]]}
            records.append({
                "structure": "klsm", "pin": "none", "threads": threads,
                "latency": {"unit": "ns", "sample_stride": 4,
                            "sub_bucket_bits": 5,
                            "insert": dict(rec_op),
                            "delete_min": dict(rec_op)}})
        return {"benchmark": "throughput", "records": records}

    sweep_args = args_factory(["--sweep"])
    sweep_base = _sweep_report(10)     # ~10ns bucket
    sweep_slow = _sweep_report(200)    # ~1.3us bucket
    check("sweep self-comparison is clean",
          compare_reports(sweep_base, sweep_base, sweep_args), False)
    check("sweep-merged octave shift regresses",
          compare_reports(sweep_base, sweep_slow, sweep_args), True)
    check("without --sweep the same shift passes record checks",
          compare_reports(sweep_base, sweep_slow, args), False)

    # Head-to-head: klsm and multiqueue records in ONE report pair on
    # (pin, threads); every workload renders its metric; a report with
    # no rival records yields zero pairs.
    h2h_report = {"benchmark": "throughput", "records": [
        {"structure": "klsm", "pin": "none", "threads": 2,
         "ops_per_sec": 2e6},
        {"structure": "multiqueue", "pin": "none", "threads": 2,
         "ops_per_sec": 1e6},
        {"structure": "klsm", "pin": "none", "threads": 4,
         "ops_per_sec": 3e6},
    ]}
    pairs, lines = head_to_head(h2h_report, "klsm", "multiqueue")
    ok = (pairs == 1 and len(lines) == 1 and "2.00x" in lines[0]
          and "klsm ahead" in lines[0])
    print(f"self-test {'pass' if ok else 'FAIL'}: head-to-head "
          f"throughput pairing")
    if not ok:
        failures.append("h2h-throughput")

    h2h_quality = {"benchmark": "quality", "records": [
        {"structure": "klsm", "pin": "none", "threads": 2,
         "mean_rank": 4.0, "max_rank": 40, "rho": 224,
         "buffer_total": 20},
        {"structure": "multiqueue", "pin": "none", "threads": 2,
         "mean_rank": 8.0, "max_rank": 400},
    ]}
    pairs, lines = head_to_head(h2h_quality, "klsm", "multiqueue")
    ok = (pairs == 1 and len(lines) == 3
          and any("mean_rank" in l and "klsm ahead" in l for l in lines)
          and any("rho=224" in l and "buffer_total=20" in l
                  for l in lines))
    print(f"self-test {'pass' if ok else 'FAIL'}: head-to-head quality "
          f"pairing carries bounds")
    if not ok:
        failures.append("h2h-quality")

    pairs, _ = head_to_head(h2h_quality, "klsm", "linden")
    ok = pairs == 0
    print(f"self-test {'pass' if ok else 'FAIL'}: head-to-head with no "
          f"rival records pairs nothing")
    if not ok:
        failures.append("h2h-empty")

    if failures:
        print(f"self-test: {len(failures)} failure(s)")
        return 1
    print("self-test: all checks passed")
    return 0


# ---------------------------------------------------------------------------

def build_parser():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.ArgumentDefaultsHelpFormatter)
    parser.add_argument("baseline", nargs="?",
                        help="baseline klsm_bench JSON report")
    parser.add_argument("candidate", nargs="?",
                        help="candidate klsm_bench JSON report")
    parser.add_argument("--throughput-tolerance", type=float, default=0.25,
                        help="allowed fractional ops_per_sec drop "
                             "(also the sssp time_s growth budget)")
    parser.add_argument("--latency-tolerance", type=float, default=0.50,
                        help="allowed fractional latency percentile growth")
    parser.add_argument("--latency-floor-ns", type=float, default=500,
                        help="latency growth below this many ns never "
                             "counts as a regression")
    parser.add_argument("--phase-tolerance", type=float, default=0.40,
                        help="allowed fractional per-phase ops-rate "
                             "drop in the `timeseries` comparison "
                             "(records lacking a timeseries skip it)")
    parser.add_argument("--search-tolerance", type=float, default=1.0,
                        help="allowed fractional growth of the bnb "
                             "search scalars (time_to_optimum_s and "
                             "expanded nodes) — loose because relaxed "
                             "pop order makes them noisy run to run")
    parser.add_argument("--rss-tolerance", type=float, default=0.5,
                        help="allowed fractional growth of the churn "
                             "soak's RSS high-water mark (enforced only "
                             "when both reports sampled RSS reliably)")
    parser.add_argument("--percentiles", default=DEFAULT_PERCENTILES,
                        help="comma-separated latency metrics to compare")
    parser.add_argument("--recompute", action="store_true",
                        help="re-derive percentiles from the raw buckets "
                             "instead of trusting the precomputed fields")
    parser.add_argument("--sweep", action="store_true",
                        help="additionally bucket-merge all matched "
                             "records per (benchmark, structure) and "
                             "compare whole-sweep percentiles")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but always exit 0")
    parser.add_argument("--latency-warn-only", action="store_true",
                        help="latency percentile regressions warn "
                             "instead of failing (throughput and sssp "
                             "time stay enforcing)")
    parser.add_argument("--head-to-head", action="store_true",
                        help="diff two structures against each other "
                             "within ONE report (informational; pairs "
                             "records on pin+threads)")
    parser.add_argument("--h2h", default="klsm,multiqueue",
                        help="the two structures --head-to-head pairs, "
                             "as left,right")
    parser.add_argument("--verbose", action="store_true",
                        help="also print non-regressed comparisons")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in check suite and exit")
    return parser


def parse_args(argv):
    parser = build_parser()
    args = parser.parse_args(argv)
    args.percentile_list = [p.strip() for p in args.percentiles.split(",")
                            if p.strip()]
    return args


def main(argv):
    args = parse_args(argv)
    if args.self_test:
        return self_test(parse_args)
    if args.head_to_head:
        if not args.baseline or args.candidate:
            build_parser().error(
                "--head-to-head takes exactly one report")
        left, _, right = args.h2h.partition(",")
        if not left or not right:
            build_parser().error("--h2h must name two structures")
        pairs, lines = head_to_head(load_report(args.baseline),
                                    left.strip(), right.strip())
        for line in lines:
            print(f"[h2h]  {line}")
        if not pairs:
            print(f"compare_bench: no ({left}, {right}) record pairs "
                  f"in {args.baseline}")
            return 1
        print(f"compare_bench: head-to-head over {pairs} pair(s)")
        return 0
    if not args.baseline or not args.candidate:
        build_parser().error("baseline and candidate reports are required")

    base = load_report(args.baseline)
    cand = load_report(args.candidate)
    findings = compare_reports(base, cand, args)
    print_findings(findings, args.verbose)

    regressions = sum(1 for s, _ in findings if s == "regression")
    compared = len(findings)
    if regressions:
        print(f"compare_bench: {regressions} regression(s) across "
              f"{compared} comparison(s)"
              + (" [warn-only: exiting 0]" if args.warn_only else ""))
        return 0 if args.warn_only else 1
    print(f"compare_bench: no regressions across {compared} "
          f"comparison(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
