#!/usr/bin/env python3
"""Summarize a klsm_bench Chrome-trace JSON (--trace output) on the
terminal: what ran, where the time went, and what the controllers did.

Sections:

  * per-subsystem event counts — the `cat` buckets the kind table in
    src/trace/trace_event.hpp assigns (dist_lsm, shared_lsm, adapt,
    mm, service, bench), broken down by event name;
  * span latency percentiles — p50/p90/p99/max of the `dur` of every
    ph:"X" event, per name (merge/publish latency distributions);
  * k-controller timeline — every k.grow/k.shrink/k.budget decision
    with its timestamp and k transition;
  * counter summary — min/mean/max of every ph:"C" track the metrics
    sampler exported.

Usage:
    trace_report.py trace.json [trace2.json ...]
    trace_report.py --self-test

Exits nonzero on a malformed document, so CI can use it as a
smoke-level loadability check on top of check_trace_schema.py.
"""

import json
import sys

K_EVENTS = ("k.grow", "k.shrink", "k.budget")


def percentile(sorted_vals, p):
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1,
              int(p / 100.0 * len(sorted_vals)))
    return sorted_vals[idx]


def analyze(doc, path):
    if not isinstance(doc, dict) or \
            not isinstance(doc.get("traceEvents"), list):
        raise ValueError(f"{path}: not a Chrome-trace document")
    events = doc["traceEvents"]

    by_cat = {}
    spans = {}
    decisions = []
    counters = {}
    for ev in events:
        if not isinstance(ev, dict):
            raise ValueError(f"{path}: non-object trace event")
        ph = ev.get("ph")
        name = ev.get("name", "?")
        if ph == "M":
            continue
        if ph == "C":
            value = ev.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                raise ValueError(f"{path}: counter {name} without "
                                 f"numeric value")
            counters.setdefault(name, []).append(value)
            continue
        cat = ev.get("cat", "misc")
        by_cat.setdefault(cat, {}).setdefault(name, [0])[0] += 1
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{path}: span {name} with bad dur")
            spans.setdefault(name, []).append(dur)
        if name in K_EVENTS:
            args = ev.get("args", {})
            decisions.append((ev.get("ts", 0), name,
                              args.get("from"), args.get("to")))
    return by_cat, spans, decisions, counters


def report(doc, path):
    by_cat, spans, decisions, counters = analyze(doc, path)
    other = doc.get("otherData", {})
    print(f"== {path} ==")
    print(f"  events: {other.get('recorded_events', '?')} recorded, "
          f"{other.get('dropped_events', '?')} dropped, "
          f"{other.get('threads', '?')} thread(s)")

    print("  events by subsystem:")
    for cat in sorted(by_cat):
        total = sum(n for (n,) in by_cat[cat].values())
        print(f"    {cat:<12} {total:>10}")
        for name in sorted(by_cat[cat]):
            print(f"      {name:<24} {by_cat[cat][name][0]:>8}")

    if spans:
        print("  span durations (us):")
        print(f"    {'name':<24} {'count':>8} {'p50':>9} {'p90':>9} "
              f"{'p99':>9} {'max':>9}")
        for name in sorted(spans):
            vals = sorted(spans[name])
            print(f"    {name:<24} {len(vals):>8} "
                  f"{percentile(vals, 50):>9.2f} "
                  f"{percentile(vals, 90):>9.2f} "
                  f"{percentile(vals, 99):>9.2f} "
                  f"{vals[-1]:>9.2f}")

    if decisions:
        print("  k-controller timeline:")
        for ts, name, k_from, k_to in sorted(decisions):
            print(f"    {ts / 1e3:>10.2f} ms  {name:<10} "
                  f"k: {k_from} -> {k_to}")

    if counters:
        print("  counters:")
        for name in sorted(counters):
            vals = counters[name]
            print(f"    {name:<40} min {min(vals):>12.4g}  "
                  f"mean {sum(vals) / len(vals):>12.4g}  "
                  f"max {max(vals):>12.4g}")


def self_test():
    doc = {
        "traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "ts": 0, "args": {"name": "klsm_bench"}},
            {"name": "dist.publish", "cat": "dist_lsm", "ph": "X",
             "pid": 1, "tid": 0, "ts": 1.0, "dur": 2.5,
             "args": {"merged_blocks": 3}},
            {"name": "dist.publish", "cat": "dist_lsm", "ph": "X",
             "pid": 1, "tid": 1, "ts": 2.0, "dur": 7.5,
             "args": {"merged_blocks": 1}},
            {"name": "dist.spill", "cat": "dist_lsm", "ph": "i",
             "s": "t", "pid": 1, "tid": 0, "ts": 3.0,
             "args": {"level": 2, "items": 128}},
            {"name": "k.grow", "cat": "adapt", "ph": "i", "s": "t",
             "pid": 1, "tid": 0, "ts": 4.0,
             "args": {"from": 256, "to": 512}},
            {"name": "klsm/none/t2 ops_per_sec", "cat": "metrics",
             "ph": "C", "pid": 1, "tid": 0, "ts": 5.0,
             "args": {"value": 1e6}},
        ],
        "otherData": {"recorded_events": 4, "dropped_events": 0,
                      "threads": 2},
    }
    by_cat, spans, decisions, counters = analyze(doc, "<self-test>")
    assert by_cat["dist_lsm"]["dist.publish"][0] == 2
    assert by_cat["dist_lsm"]["dist.spill"][0] == 1
    assert sorted(spans["dist.publish"]) == [2.5, 7.5]
    assert percentile([2.5, 7.5], 50) == 7.5
    assert percentile([2.5, 7.5], 99) == 7.5
    assert percentile([], 99) == 0.0
    assert decisions == [(4.0, "k.grow", 256, 512)]
    assert counters["klsm/none/t2 ops_per_sec"] == [1e6]
    # Malformed documents must raise, not half-report.
    for bad in ({}, {"traceEvents": 3},
                {"traceEvents": [{"ph": "X", "name": "x"}]},
                {"traceEvents": [{"ph": "C", "name": "c",
                                  "args": {}}]}):
        try:
            analyze(bad, "<bad>")
        except ValueError:
            pass
        else:
            raise AssertionError(f"malformed doc accepted: {bad!r}")
    report(doc, "<self-test>")
    print("trace_report self-test OK")


def main(argv):
    if not argv:
        print(__doc__)
        return 2
    if argv[0] == "--self-test":
        self_test()
        return 0
    for path in argv:
        with open(path) as f:
            doc = json.load(f)
        report(doc, path)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except (ValueError, AssertionError, json.JSONDecodeError) as e:
        print(f"trace_report FAIL: {e}", file=sys.stderr)
        sys.exit(1)
