#!/usr/bin/env bash
# CI smoke stage: run every example binary and `klsm_bench --smoke` for
# every structure x workload, failing on the first nonzero exit.
#
#   scripts/smoke.sh [build-dir]    (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
if [[ ! -x "$BUILD_DIR/bench/klsm_bench" ]]; then
    echo "error: $BUILD_DIR/bench/klsm_bench not found; build first" >&2
    exit 2
fi

echo "== examples =="
"$BUILD_DIR/examples/quickstart" > /dev/null
"$BUILD_DIR/examples/task_scheduler" > /dev/null
"$BUILD_DIR/examples/sssp_shortest_paths" 500 4 256 > /dev/null
"$BUILD_DIR/examples/branch_and_bound" > /dev/null
echo "examples OK"

echo "== klsm_bench --smoke =="
json="$(mktemp)"
trap 'rm -f "$json"' EXIT
for s in klsm dlsm multiqueue linden spraylist heap centralized hybrid; do
    for w in throughput quality sssp; do
        "$BUILD_DIR/bench/klsm_bench" --smoke --workload "$w" \
            --structure "$s" --threads 1,2 --json-out "$json" > /dev/null
        [[ -s "$json" ]] || { echo "empty JSON report: $s/$w" >&2; exit 1; }
        if command -v python3 > /dev/null; then
            python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$json"
        fi
        echo "smoke OK: $s/$w"
    done
done
echo "smoke stage passed"
