#!/usr/bin/env bash
# CI smoke stage: run every example binary, `klsm_bench --smoke` for
# every structure x workload, and a pinning-policy pass, failing on the
# first nonzero exit.  JSON reports are kept under $REPORT_DIR so CI can
# upload them as workflow artifacts.
#
#   scripts/smoke.sh [build-dir] [report-dir]
#   (defaults: build, <build-dir>/smoke-reports)
set -euo pipefail

BUILD_DIR="${1:-build}"
REPORT_DIR="${2:-$BUILD_DIR/smoke-reports}"
if [[ ! -x "$BUILD_DIR/bench/klsm_bench" ]]; then
    echo "error: $BUILD_DIR/bench/klsm_bench not found; build first" >&2
    exit 2
fi
mkdir -p "$REPORT_DIR"

check_json() {
    [[ -s "$1" ]] || { echo "empty JSON report: $1" >&2; exit 1; }
    if command -v python3 > /dev/null; then
        python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$1"
    fi
}

# Smoke runs capture per-op latency by default; every record must carry
# the full latency schema (README "Latency metrics").
check_latency() {
    command -v python3 > /dev/null || return 0
    python3 - "$1" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
for record in report["records"]:
    lat = record["latency"]
    for op in ("insert", "delete_min"):
        for field in ("count", "p50", "p99", "max", "buckets"):
            assert field in lat[op], f"latency.{op}.{field} missing"
EOF
}

echo "== examples =="
"$BUILD_DIR/examples/quickstart" > /dev/null
"$BUILD_DIR/examples/task_scheduler" > /dev/null
"$BUILD_DIR/examples/sssp_shortest_paths" 500 4 256 > /dev/null
"$BUILD_DIR/examples/branch_and_bound" > /dev/null
echo "examples OK"

echo "== klsm_bench --smoke =="
for s in klsm dlsm multiqueue linden spraylist heap centralized hybrid \
         numa_klsm; do
    for w in throughput quality sssp; do
        json="$REPORT_DIR/$s-$w.json"
        "$BUILD_DIR/bench/klsm_bench" --smoke --workload "$w" \
            --structure "$s" --threads 1,2 --json-out "$json" > /dev/null
        check_json "$json"
        echo "smoke OK: $s/$w"
    done
done

echo "== klsm_bench --smoke pinning policies =="
# Every placement policy, on the structures that care most about
# placement; on a single-node runner this exercises the topology
# fallback path end to end.
for p in none compact scatter numa_fill; do
    json="$REPORT_DIR/pin-$p.json"
    "$BUILD_DIR/bench/klsm_bench" --smoke --workload throughput \
        --structure klsm,numa_klsm --threads 2 --pin "$p" \
        --json-out "$json" > /dev/null
    check_json "$json"
    echo "smoke OK: pin=$p"
done
# The acceptance shape: a multi-policy sweep in one invocation.
json="$REPORT_DIR/pin-sweep.json"
"$BUILD_DIR/bench/klsm_bench" --smoke --workload throughput \
    --structure numa_klsm --pin compact,scatter --threads 1,2 \
    --json-out "$json" > /dev/null
check_json "$json"
check_latency "$json"
echo "smoke OK: pin sweep"

echo "== pinned sweeps: compact + scatter across every workload =="
# ROADMAP's pinned-CI item: keep the placement paths exercised on every
# push, for all three workloads, not just throughput.
for w in throughput quality sssp; do
    json="$REPORT_DIR/pin-sweep-$w.json"
    "$BUILD_DIR/bench/klsm_bench" --smoke --workload "$w" \
        --structure klsm,numa_klsm --pin compact,scatter --threads 2 \
        --json-out "$json" > /dev/null
    check_json "$json"
    check_latency "$json"
    echo "smoke OK: pinned sweep $w"
done
echo "smoke stage passed (reports in $REPORT_DIR)"
