#!/usr/bin/env bash
# CI smoke stage: run every example binary, `klsm_bench --smoke` for
# every structure x workload, and a pinning-policy pass, failing on the
# first nonzero exit.  JSON reports are kept under $REPORT_DIR so CI
# can upload them as workflow artifacts.
#
#   scripts/smoke.sh [build-dir] [report-dir] \
#       [--memory-only|--service-only|--soak-only|--workloads-only]
#   (defaults: build, <build-dir>/smoke-reports)
#
# --memory-only runs the memory-placement section instead — what the CI
# `memory-placement` job invokes (in parallel with the smoke job), so
# the sweep and its schema validator have exactly one definition and
# run exactly once per pipeline.  --service-only does the same for the
# open-loop service section (the CI `service-smoke` job), --soak-only
# for the churn/reclamation section (the CI `soak-smoke` job), and
# --workloads-only for the bnb/des application workloads (the CI
# `workload-smoke` job).
set -euo pipefail

BUILD_DIR="${1:-build}"
REPORT_DIR="${2:-$BUILD_DIR/smoke-reports}"
MODE="${3:-full}"
if [[ ! -x "$BUILD_DIR/bench/klsm_bench" ]]; then
    echo "error: $BUILD_DIR/bench/klsm_bench not found; build first" >&2
    exit 2
fi
mkdir -p "$REPORT_DIR"

check_json() {
    [[ -s "$1" ]] || { echo "empty JSON report: $1" >&2; exit 1; }
    if command -v python3 > /dev/null; then
        python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$1"
    fi
}

# Smoke runs capture per-op latency by default; every record must carry
# the full latency schema (README "Latency metrics").
check_latency() {
    command -v python3 > /dev/null || return 0
    python3 - "$1" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
for record in report["records"]:
    lat = record["latency"]
    for op in ("insert", "delete_min"):
        for field in ("count", "p50", "p99", "max", "dropped_intervals",
                      "buckets"):
            assert field in lat[op], f"latency.{op}.{field} missing"
EOF
}

# Adaptive runs must carry the full `adaptation` schema on every
# dynamic-k record (README "Adaptive relaxation"): a well-formed
# k_trajectory inside [k_min, k_max] with monotone ticks, the
# contention telemetry block, and per-shard decision logs.
check_adaptation() {
    command -v python3 > /dev/null || return 0
    python3 - "$1" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["adaptive"] is True, "adaptive meta flag missing"
checked = 0
for record in report["records"]:
    if record["structure"] not in ("klsm", "numa_klsm"):
        continue
    a = record["adaptation"]
    for field in ("k_min", "k_max", "ticks", "shards", "k_initial",
                  "k_final", "k_max_seen", "k_trajectory", "contention",
                  "shard_decisions"):
        assert field in a, f"adaptation.{field} missing"
    traj = a["k_trajectory"]
    assert traj and traj[0][0] == 0, "trajectory must start at tick 0"
    last_tick = -1
    for tick, k in traj:
        assert tick > last_tick, "trajectory ticks must be monotone"
        assert a["k_min"] <= k <= a["k_max"], f"k {k} outside bounds"
        last_tick = tick
    assert a["k_max_seen"] == max(k for _, k in traj)
    for field in ("publishes", "publish_retries", "fail_rate_ewma",
                  "shared_hits", "local_hits", "spies"):
        assert field in a["contention"], f"contention.{field} missing"
    assert len(a["shard_decisions"]) == a["shards"]
    checked += 1
assert checked, "no adaptation objects found in an adaptive report"
EOF
}

# Allocation-telemetry schema (README "Memory placement"): every
# k-LSM-family record of an --alloc-stats report must carry the full
# `memory` object.  The field-level checks live in
# scripts/check_memory_schema.py so the CTest wiring test and the CI
# memory-placement job validate against the same definition.
check_memory() {
    command -v python3 > /dev/null || return 0
    python3 "$(dirname "$0")/check_memory_schema.py" "$1" > /dev/null
}

# Memory placement: node-bound pools behind --numa-alloc, telemetry
# behind --alloc-stats.  On a single-node runner `bind` exercises the
# documented fallback path end to end.  Run ONLY via --memory-only (the
# dedicated CI memory-placement job, in parallel with the smoke job) —
# appending it to the full flow too would execute the identical sweep
# twice per pipeline.
memory_section() {
    echo "== memory placement: --numa-alloc x --alloc-stats =="
    # The CI memory-placement sweep: every structure under the bind
    # policy; the validator checks the k-LSM family's memory objects
    # and that the others emit none.
    local json="$REPORT_DIR/memory-bind-all.json"
    "$BUILD_DIR/bench/klsm_bench" --smoke --workload throughput \
        --structure klsm,dlsm,multiqueue,linden,spraylist,heap,centralized,hybrid,numa_klsm \
        --threads 1,2 --alloc-stats --numa-alloc bind \
        --json-out "$json" > /dev/null
    check_json "$json"
    check_memory "$json"
    echo "smoke OK: memory bind, all structures"
    # Every policy through the placement-aware structures.
    for mp in none bind firsttouch; do
        json="$REPORT_DIR/memory-$mp.json"
        "$BUILD_DIR/bench/klsm_bench" --smoke --workload throughput \
            --structure klsm,dlsm,numa_klsm --threads 2 \
            --alloc-stats --numa-alloc "$mp" \
            --json-out "$json" > /dev/null
        check_json "$json"
        check_memory "$json"
        echo "smoke OK: memory policy=$mp"
    done
    # The acceptance shape: numa_klsm pinned compact, bind, telemetry.
    json="$REPORT_DIR/memory-accept.json"
    "$BUILD_DIR/bench/klsm_bench" --structure numa_klsm --pin compact \
        --smoke --alloc-stats --numa-alloc bind \
        --json-out "$json" > /dev/null
    check_json "$json"
    check_memory "$json"
    check_latency "$json"
    echo "smoke OK: memory acceptance shape"
}

# Service-mode schema (README "Service mode & SLOs"): every record of a
# --workload service report must carry schema-valid `service` + `slo`
# objects with the intended >= completion percentile ordering.  The
# field-level checks live in scripts/check_service_schema.py so the
# CTest wiring test and the CI service-smoke job validate against the
# same definition.
check_service() {
    command -v python3 > /dev/null || return 0
    python3 "$(dirname "$0")/check_service_schema.py" "$1" > /dev/null
}

# Open-loop service mode: arrival-driven traffic with SLO verdicts.
# Run ONLY via --service-only (the dedicated CI service-smoke job, in
# parallel with the smoke job), mirroring the memory section's split.
service_section() {
    echo "== service mode: arrival processes x SLO verdicts =="
    # Every arrival process through the k-LSM family.
    local json
    for a in steady poisson spike diurnal; do
        json="$REPORT_DIR/service-$a.json"
        "$BUILD_DIR/bench/klsm_bench" --smoke --workload service \
            --structure klsm,numa_klsm --arrival "$a" --rate 200000 \
            --threads 2 --json-out "$json" > /dev/null
        check_json "$json"
        check_service "$json"
        echo "smoke OK: service arrival=$a"
    done
    # The ISSUE's acceptance shape: poisson at 500k ops/s.
    json="$REPORT_DIR/service-accept.json"
    "$BUILD_DIR/bench/klsm_bench" --workload service \
        --structure klsm,numa_klsm --arrival poisson --rate 500000 \
        --smoke --json-out "$json" > /dev/null
    check_json "$json"
    check_service "$json"
    check_latency "$json"
    echo "smoke OK: service acceptance shape"
    # Identity diff through compare_bench's service path: the SLO
    # verdict and achieved-rate machinery must hold on a self-compare.
    if command -v python3 > /dev/null; then
        python3 "$(dirname "$0")/compare_bench.py" \
            "$json" "$json" > /dev/null
        echo "smoke OK: service self-diff clean"
    fi
    # The sustainable-rate search with a latency objective: probes must
    # converge and emit the sustainable_rate + probes fields.
    json="$REPORT_DIR/service-sustainable.json"
    "$BUILD_DIR/bench/klsm_bench" --smoke --workload service \
        --structure klsm --arrival poisson --rate 100000 --threads 2 \
        --find-sustainable --slo-p99-us 50000 \
        --json-out "$json" > /dev/null
    check_json "$json"
    check_service "$json"
    echo "smoke OK: service --find-sustainable"
}

# Churn soak: the reclamation tier under phase-shifted workloads.  Run
# ONLY via --soak-only (the dedicated CI soak-smoke job), mirroring the
# other sections' split.  Everything here is at --smoke scale: the
# schema and shrink-event gates are enforced, the RSS-plateau verdict is
# not (process overheads dominate a miniature run); the real-duration
# plateau enforcement lives in the nightly soak.
soak_section() {
    echo "== churn soak: reclamation policies x structures =="
    # Every reclamation policy through the k-LSM family.  `none` must
    # keep the seed behavior (no freelist, no shrink); the schema
    # checker verifies the counters stay zero-consistent either way.
    local json
    for rp in none freelist shrink full; do
        json="$REPORT_DIR/churn-$rp.json"
        "$BUILD_DIR/bench/klsm_bench" --smoke --workload churn \
            --structure klsm,dlsm,numa_klsm --threads 2 \
            --reclaim "$rp" --alloc-stats --json-out "$json" > /dev/null
        check_json "$json"
        check_memory "$json"
        echo "smoke OK: churn reclaim=$rp"
    done
    # Churn must also run green on the non-pool baselines (no timeline
    # enforcement; they have no pools to shrink).
    json="$REPORT_DIR/churn-baselines.json"
    "$BUILD_DIR/bench/klsm_bench" --smoke --workload churn \
        --structure linden,heap --threads 2 --json-out "$json" \
        > /dev/null
    check_json "$json"
    echo "smoke OK: churn baselines"
    # Huge-page request with graceful decay: on runners without
    # hugetlbfs reservations this exercises the THP-madvise and plain
    # fallbacks end to end.
    json="$REPORT_DIR/churn-huge.json"
    "$BUILD_DIR/bench/klsm_bench" --smoke --workload churn \
        --structure klsm --threads 2 --huge-pages --alloc-stats \
        --json-out "$json" > /dev/null
    check_json "$json"
    check_memory "$json"
    echo "smoke OK: churn --huge-pages"
    # The acceptance shape through the enforcing checker (schema +
    # shrink events; plateau stays advisory at smoke scale).
    if command -v python3 > /dev/null; then
        python3 "$(dirname "$0")/check_memory_schema.py" \
            --bench-churn "$BUILD_DIR/bench/klsm_bench" --smoke \
            > /dev/null
        echo "smoke OK: churn acceptance gates"
        # Identity diff through compare_bench's churn path: the RSS
        # high-water and plateau machinery must hold on a self-compare.
        python3 "$(dirname "$0")/compare_bench.py" \
            "$REPORT_DIR/churn-full.json" "$REPORT_DIR/churn-full.json" \
            > /dev/null
        echo "smoke OK: churn self-diff clean"
    fi
}

# Application-workload schema (README "Application workloads"): every
# record of a --workload bnb/des report must carry the full `bnb`/`des`
# accounting block with match/budget verdicts intact.  The field-level
# checks live in scripts/check_workload_schema.py so the CTest wiring
# test and the CI workload-smoke job validate against the same
# definition.
check_workloads() {
    command -v python3 > /dev/null || return 0
    python3 "$(dirname "$0")/check_workload_schema.py" "$1" > /dev/null
}

# Application workloads: branch-and-bound and discrete-event
# simulation through the registry.  Run ONLY via --workloads-only (the
# dedicated CI workload-smoke job), mirroring the other sections'
# split.
workloads_section() {
    echo "== application workloads: bnb + des =="
    # The ISSUE's acceptance shapes: each workload through the paper's
    # queue and the engineered rival.
    local json
    for w in bnb des; do
        json="$REPORT_DIR/workload-$w.json"
        "$BUILD_DIR/bench/klsm_bench" --workload "$w" \
            --structure klsm,multiqueue --smoke \
            --json-out "$json" > /dev/null
        check_json "$json"
        check_workloads "$json"
        check_latency "$json"
        echo "smoke OK: workload $w"
    done
    # Combined selection: one report, records attributed per workload.
    json="$REPORT_DIR/workload-combined.json"
    "$BUILD_DIR/bench/klsm_bench" --workload bnb,des \
        --structure klsm,heap --threads 1,2 --smoke \
        --json-out "$json" > /dev/null
    check_json "$json"
    check_workloads "$json"
    echo "smoke OK: workload bnb,des combined"
    # Adaptive k through both searches: the controller must move k and
    # emit the full adaptation schema while the workloads run.
    for w in bnb des; do
        json="$REPORT_DIR/workload-adaptive-$w.json"
        "$BUILD_DIR/bench/klsm_bench" --smoke --workload "$w" \
            --structure klsm --threads 2 --adaptive \
            --k-min 16 --k-max 4096 --json-out "$json" > /dev/null
        check_json "$json"
        check_adaptation "$json"
        check_workloads "$json"
        echo "smoke OK: adaptive $w"
    done
    if command -v python3 > /dev/null; then
        # Identity diff through compare_bench's bnb/des paths: the
        # match/budget verdict machinery must hold on a self-compare.
        python3 "$(dirname "$0")/compare_bench.py" \
            "$REPORT_DIR/workload-combined.json" \
            "$REPORT_DIR/workload-combined.json" > /dev/null
        echo "smoke OK: workload self-diff clean"
        # klsm vs multiqueue head-to-head inside each report.
        python3 "$(dirname "$0")/compare_bench.py" --head-to-head \
            "$REPORT_DIR/workload-bnb.json" > /dev/null
        python3 "$(dirname "$0")/compare_bench.py" --head-to-head \
            "$REPORT_DIR/workload-des.json" > /dev/null
        echo "smoke OK: workload head-to-head"
    fi
}

if [[ "$MODE" == "--memory-only" ]]; then
    memory_section
    echo "memory placement stage passed (reports in $REPORT_DIR)"
    exit 0
fi
if [[ "$MODE" == "--service-only" ]]; then
    service_section
    echo "service stage passed (reports in $REPORT_DIR)"
    exit 0
fi
if [[ "$MODE" == "--soak-only" ]]; then
    soak_section
    echo "soak stage passed (reports in $REPORT_DIR)"
    exit 0
fi
if [[ "$MODE" == "--workloads-only" ]]; then
    workloads_section
    echo "workloads stage passed (reports in $REPORT_DIR)"
    exit 0
fi

echo "== examples =="
"$BUILD_DIR/examples/quickstart" > /dev/null
"$BUILD_DIR/examples/task_scheduler" > /dev/null
"$BUILD_DIR/examples/sssp_shortest_paths" 500 4 256 > /dev/null
"$BUILD_DIR/examples/branch_and_bound" > /dev/null
echo "examples OK"

echo "== klsm_bench --smoke =="
for s in klsm dlsm multiqueue linden spraylist heap centralized hybrid \
         numa_klsm; do
    for w in throughput quality sssp; do
        json="$REPORT_DIR/$s-$w.json"
        "$BUILD_DIR/bench/klsm_bench" --smoke --workload "$w" \
            --structure "$s" --threads 1,2 --json-out "$json" > /dev/null
        check_json "$json"
        echo "smoke OK: $s/$w"
    done
done

echo "== klsm_bench --smoke pinning policies =="
# Every placement policy, on the structures that care most about
# placement; on a single-node runner this exercises the topology
# fallback path end to end.
for p in none compact scatter numa_fill; do
    json="$REPORT_DIR/pin-$p.json"
    "$BUILD_DIR/bench/klsm_bench" --smoke --workload throughput \
        --structure klsm,numa_klsm --threads 2 --pin "$p" \
        --json-out "$json" > /dev/null
    check_json "$json"
    echo "smoke OK: pin=$p"
done
# The acceptance shape: a multi-policy sweep in one invocation.
json="$REPORT_DIR/pin-sweep.json"
"$BUILD_DIR/bench/klsm_bench" --smoke --workload throughput \
    --structure numa_klsm --pin compact,scatter --threads 1,2 \
    --json-out "$json" > /dev/null
check_json "$json"
check_latency "$json"
echo "smoke OK: pin sweep"

echo "== adaptive relaxation: one sweep per workload =="
# Adaptive k (src/adapt/): the controller must run green on every
# workload and emit schema-complete k_trajectory + contention objects.
for w in throughput quality sssp; do
    json="$REPORT_DIR/adaptive-$w.json"
    "$BUILD_DIR/bench/klsm_bench" --smoke --workload "$w" \
        --structure klsm,numa_klsm --threads 2 --adaptive \
        --k-min 16 --k-max 4096 --json-out "$json" > /dev/null
    check_json "$json"
    check_adaptation "$json"
    echo "smoke OK: adaptive $w"
done
# The acceptance shape (--benchmark alias included): adaptive vs the
# same structure fixed, diffed advisorily as a whole sweep.
json="$REPORT_DIR/adaptive-accept.json"
"$BUILD_DIR/bench/klsm_bench" --benchmark throughput \
    --structure klsm,numa_klsm --adaptive --k-min 16 --k-max 4096 \
    --threads 1,2 --smoke --json-out "$json" > /dev/null
check_json "$json"
check_adaptation "$json"
check_latency "$json"
if command -v python3 > /dev/null; then
    python3 "$(dirname "$0")/compare_bench.py" \
        "$REPORT_DIR/klsm-throughput.json" "$json" \
        --warn-only --sweep > /dev/null
fi
echo "smoke OK: adaptive acceptance sweep"

echo "== buffered handles: engineered multiqueue vs buffered k-LSM =="
# The PR-8 acceptance shape: both rivals in one report, insert buffers
# and the MultiQueue handle buffers on.  The quality workload enforces
# the extended bound rho = (T+1)*k + T*buffer_total internally (it
# fails the run on violation), and compare_bench's head-to-head mode
# diffs the klsm-vs-multiqueue pairs within the single report.
json="$REPORT_DIR/buffered-quality.json"
"$BUILD_DIR/bench/klsm_bench" --smoke --workload quality \
    --structure klsm,multiqueue --threads 2 \
    --insert-buffer 16 --peek-cache 4 --mq-stickiness 8 --mq-buffer 16 \
    --json-out "$json" > /dev/null
check_json "$json"
echo "smoke OK: buffered quality (extended rho enforced)"
json="$REPORT_DIR/buffered-throughput.json"
"$BUILD_DIR/bench/klsm_bench" --smoke --workload throughput \
    --structure klsm,multiqueue --threads 1,2 \
    --insert-buffer 16 --peek-cache 4 --mq-stickiness 8 --mq-buffer 16 \
    --json-out "$json" > /dev/null
check_json "$json"
check_latency "$json"
echo "smoke OK: buffered throughput"
if command -v python3 > /dev/null; then
    python3 "$(dirname "$0")/compare_bench.py" --head-to-head \
        "$REPORT_DIR/buffered-quality.json" > /dev/null
    python3 "$(dirname "$0")/compare_bench.py" --head-to-head \
        "$REPORT_DIR/buffered-throughput.json" > /dev/null
    echo "smoke OK: klsm-vs-multiqueue head-to-head"
fi
# Adaptive with the buffer knob engaged: the adaptation object must
# carry the buffer {initial, final, max_seen} block.
json="$REPORT_DIR/buffered-adaptive.json"
"$BUILD_DIR/bench/klsm_bench" --smoke --workload throughput \
    --structure klsm --threads 2 --adaptive --k-min 16 --k-max 4096 \
    --insert-buffer 16 --json-out "$json" > /dev/null
check_json "$json"
check_adaptation "$json"
if command -v python3 > /dev/null; then
    python3 - "$json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
checked = 0
for record in report["records"]:
    if record["structure"] != "klsm":
        continue
    buf = record["adaptation"]["buffer"]
    for field in ("initial", "final", "max_seen"):
        assert field in buf, f"adaptation.buffer.{field} missing"
    assert buf["initial"] == 16, "buffer initial != configured depth"
    assert buf["max_seen"] >= buf["initial"]
    checked += 1
assert checked, "no buffered adaptation objects found"
EOF
fi
echo "smoke OK: adaptive buffer knob"

echo "== pinned sweeps: compact + scatter across every workload =="
# ROADMAP's pinned-CI item: keep the placement paths exercised on every
# push, for all three workloads, not just throughput.
for w in throughput quality sssp; do
    json="$REPORT_DIR/pin-sweep-$w.json"
    "$BUILD_DIR/bench/klsm_bench" --smoke --workload "$w" \
        --structure klsm,numa_klsm --pin compact,scatter --threads 2 \
        --json-out "$json" > /dev/null
    check_json "$json"
    check_latency "$json"
    echo "smoke OK: pinned sweep $w"
done
echo "smoke stage passed (reports in $REPORT_DIR)"
