#!/usr/bin/env python3
"""Validate klsm_bench trace artifacts: Chrome-trace JSON and the
per-record `timeseries` block.

Trace schema (README "Observability"): --trace writes one JSON
document loadable by chrome://tracing and ui.perfetto.dev:

    {"traceEvents": [ {name, cat, pid, tid, ph, ts [, dur, s, args]},
                      ... ],
     "displayTimeUnit": "ms",
     "otherData": {recorded_events, dropped_events, threads}}

with the invariants the exporter promises:

  * every event names a phase in {X, i, I, C, M, b, e}; this exporter
    only emits X (spans), i (instants), C (counters), M (metadata);
  * timestamps are microseconds relative to the tracer's enable()
    base: non-negative, and nondecreasing in array order across all
    non-metadata events;
  * X events carry a non-negative dur, and ts + dur never precedes
    the tracer base (spans cannot start before tracing began);
  * otherData.recorded_events equals the number of exported span +
    instant events, and dropped_events counts ring overwrites.

Timeseries schema (--metrics-interval): each record of the bench JSON
gains

    "timeseries": {"requested_interval_ms", "interval_ms",
                   "columns": [{"name", "kind": "counter"|"gauge"},..],
                   "samples": [[t_s, v0, v1, ...], ...]}

where t_s is strictly increasing from 0, every row has one value per
column, and counter columns are monotone nondecreasing (they are
cumulative; consumers derive rates).

Usage:
    check_trace_schema.py --trace trace.json [trace2.json ...]
    check_trace_schema.py --report report.json [--min-samples N]
    check_trace_schema.py --bench path/to/klsm_bench

The --bench mode runs the ISSUE's acceptance command end to end
(--workload throughput --trace --metrics-interval ... --json-out -)
plus an adaptive quality run, validates both artifacts, and asserts
the stdout-purity satellite: with tracing on, `--json-out -` stdout
parses as exactly one JSON document.  CTest invokes this mode so the
wiring is covered by `ctest -L tier1`.
"""

import json
import math
import os
import subprocess
import sys
import tempfile

PHASES = ("X", "i", "I", "C", "M", "b", "e")
EXPORTER_PHASES = ("X", "i", "C", "M")
INSTANT_SCOPES = ("t", "p", "g")
KINDS = ("counter", "gauge")


def fail(msg):
    raise AssertionError(msg)


def is_num(v):
    return isinstance(v, (int, float)) and math.isfinite(v)


def check_trace(doc, path):
    assert isinstance(doc, dict), f"{path}: top level is not an object"
    events = doc.get("traceEvents")
    assert isinstance(events, list) and events, \
        f"{path}: traceEvents missing or empty"
    other = doc.get("otherData")
    assert isinstance(other, dict), f"{path}: otherData missing"
    for field in ("recorded_events", "dropped_events", "threads"):
        assert isinstance(other.get(field), int) \
            and other[field] >= 0, \
            f"{path}: otherData.{field} missing or negative"

    last_ts = None
    runtime_events = 0
    counter_events = 0
    for i, ev in enumerate(events):
        where = f"{path}:traceEvents[{i}]"
        assert isinstance(ev, dict), f"{where}: not an object"
        assert isinstance(ev.get("name"), str) and ev["name"], \
            f"{where}: name missing"
        ph = ev.get("ph")
        assert ph in PHASES, f"{where}: ph = {ph!r} invalid"
        assert ph in EXPORTER_PHASES, \
            f"{where}: ph = {ph!r} is legal Chrome-trace but not " \
            f"something this exporter emits"
        assert isinstance(ev.get("pid"), int), f"{where}: pid missing"
        assert isinstance(ev.get("tid"), int), f"{where}: tid missing"
        ts = ev.get("ts")
        assert is_num(ts) and ts >= 0, \
            f"{where}: ts = {ts!r} is not a non-negative number"
        if ph == "M":
            continue
        if last_ts is not None:
            assert ts >= last_ts, \
                f"{where}: ts {ts} < previous {last_ts} (events must " \
                f"be time-sorted)"
        last_ts = ts
        if ph == "X":
            dur = ev.get("dur")
            assert is_num(dur) and dur >= 0, \
                f"{where}: X event dur = {dur!r} invalid"
            runtime_events += 1
        elif ph == "i":
            assert ev.get("s") in INSTANT_SCOPES, \
                f"{where}: instant scope s = {ev.get('s')!r} invalid"
            runtime_events += 1
        elif ph == "C":
            args = ev.get("args")
            assert isinstance(args, dict) and is_num(
                args.get("value")), \
                f"{where}: counter without a numeric args.value"
            counter_events += 1
    assert runtime_events == other["recorded_events"], \
        f"{path}: otherData.recorded_events = " \
        f"{other['recorded_events']} but {runtime_events} span/" \
        f"instant events exported"
    return runtime_events, counter_events


def check_timeseries(ts, where, min_samples=0):
    assert isinstance(ts, dict), f"{where}: not an object"
    for field in ("requested_interval_ms", "interval_ms"):
        assert is_num(ts.get(field)) and ts[field] > 0, \
            f"{where}.{field} missing or non-positive"
    assert ts["interval_ms"] <= ts["requested_interval_ms"] + 1e-9, \
        f"{where}: effective interval exceeds the requested one"
    columns = ts.get("columns")
    assert isinstance(columns, list) and columns, \
        f"{where}.columns missing or empty"
    for c, col in enumerate(columns):
        assert isinstance(col, dict) \
            and isinstance(col.get("name"), str) and col["name"] \
            and col.get("kind") in KINDS, \
            f"{where}.columns[{c}] = {col!r} malformed"
    samples = ts.get("samples")
    assert isinstance(samples, list), f"{where}.samples missing"
    assert len(samples) >= min_samples, \
        f"{where}: {len(samples)} samples < required {min_samples}"
    prev_t = None
    prev_row = None
    for r, row in enumerate(samples):
        assert isinstance(row, list) \
            and len(row) == len(columns) + 1, \
            f"{where}.samples[{r}]: row length {len(row)} != " \
            f"1 + {len(columns)} columns"
        assert all(is_num(v) for v in row), \
            f"{where}.samples[{r}]: non-finite value"
        t = row[0]
        assert t >= 0, f"{where}.samples[{r}]: negative timestamp"
        if prev_t is not None:
            assert t > prev_t, \
                f"{where}.samples[{r}]: t {t} not strictly after " \
                f"{prev_t}"
            for c, col in enumerate(columns):
                if col["kind"] == "counter":
                    assert row[c + 1] >= prev_row[c + 1], \
                        f"{where}.samples[{r}].{col['name']}: " \
                        f"counter went backwards " \
                        f"({prev_row[c + 1]} -> {row[c + 1]})"
        prev_t, prev_row = t, row
    return len(samples)


def check_report(report, path, min_samples):
    records = report.get("records", [])
    assert records, f"{path}: no records"
    checked = 0
    for record in records:
        structure = record.get("structure", "?")
        ts = record.get("timeseries")
        assert ts is not None, f"{path}:{structure}: no timeseries"
        check_timeseries(ts, f"{path}:{structure}.timeseries",
                         min_samples)
        checked += 1
    return checked


def run_bench(bench, args, trace_out):
    cmd = [bench] + args + ["--trace", "--trace-out", trace_out,
                            "--json-out", "-"]
    out = subprocess.run(cmd, stdout=subprocess.PIPE,
                         stderr=subprocess.DEVNULL, check=True)
    # Stdout purity: with tracing armed, `--json-out -` stdout must be
    # exactly one JSON document — no table rows, no trace diagnostics.
    text = out.stdout.decode()
    report = json.loads(text)
    assert text.strip().startswith("{") and text.strip().endswith("}"), \
        "bench stdout is not a single JSON object"
    return report


def bench_mode(bench):
    with tempfile.TemporaryDirectory() as tmp:
        # The acceptance command at smoke scale: traced throughput with
        # in-run sampling.  Smoke runs ~50 ms; the driver clamps the
        # period so the series still carries >= 10 rows.
        trace1 = os.path.join(tmp, "throughput.trace.json")
        report = run_bench(bench, [
            "--workload", "throughput", "--structure", "klsm",
            "--threads", "2", "--smoke",
            "--metrics-interval", "50ms"], trace1)
        assert report.get("trace") is True, "meta.trace missing"
        assert is_num(report.get("metrics_interval_ms")), \
            "meta.metrics_interval_ms missing"
        n = check_report(report, "<throughput stdout>", min_samples=10)
        with open(trace1) as f:
            spans, counters = check_trace(json.load(f), trace1)
        assert spans > 0, "traced throughput run recorded no events"
        assert counters > 0, \
            "metrics sampling on but no counter tracks exported"
        print(f"trace schema OK: throughput acceptance run "
              f"({n} record(s), {spans} events, {counters} counter "
              f"points)")

        # Adaptive quality: exercises the controller-decision and
        # online-rank probes through the same validators.
        trace2 = os.path.join(tmp, "quality.trace.json")
        report = run_bench(bench, [
            "--workload", "quality", "--structure", "klsm",
            "--threads", "2", "--smoke", "--adaptive",
            "--metrics-interval", "2ms"], trace2)
        n = check_report(report, "<quality stdout>", min_samples=2)
        with open(trace2) as f:
            spans, _ = check_trace(json.load(f), trace2)
        assert spans > 0, "traced quality run recorded no events"
        print(f"trace schema OK: adaptive quality run "
              f"({n} record(s), {spans} events)")
    return 0


def main(argv):
    if not argv:
        print(__doc__)
        return 2
    if argv[0] == "--bench":
        assert len(argv) >= 2, "--bench needs the binary path"
        return bench_mode(argv[1])
    if argv[0] == "--trace":
        for path in argv[1:]:
            with open(path) as f:
                spans, counters = check_trace(json.load(f), path)
            print(f"trace schema OK: {path} ({spans} events, "
                  f"{counters} counter points)")
        return 0
    if argv[0] == "--report":
        min_samples = 0
        paths = []
        rest = argv[1:]
        while rest:
            if rest[0] == "--min-samples":
                min_samples = int(rest[1])
                rest = rest[2:]
            else:
                paths.append(rest[0])
                rest = rest[1:]
        for path in paths:
            with open(path) as f:
                n = check_report(json.load(f), path, min_samples)
            print(f"timeseries schema OK: {path} ({n} record(s))")
        return 0
    print(__doc__)
    return 2


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except AssertionError as e:
        print(f"trace schema FAIL: {e}", file=sys.stderr)
        sys.exit(1)
