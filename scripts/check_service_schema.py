#!/usr/bin/env python3
"""Validate the `service` and `slo` objects in klsm_bench JSON.

Schema (README "Service mode & SLOs"): every record of a
--workload service report must carry

    "service": {
      "arrival": "steady" | "poisson" | "spike" | "diurnal",
      "nominal_rate", "offered_rate", "achieved_rate", "duration_s",
      "scheduled_ops", "completed_ops", "late_ops", "late_grace_ns",
      "max_lateness_ns", "mean_lateness_ns", "backlog_max",
      "unit": "ns", "sub_bucket_bits",
      "intended":   {"insert": {count, mean, min, p50, p90, p99, p999,
                                max, dropped_intervals, buckets},
                     "delete_min": {same}},
      "completion": {same shape}
    },
    "slo": {
      "metric": "intended_p99_ns", "p99_threshold_ns",
      "min_achieved_fraction", "offered_rate", "achieved_rate",
      "observed_p99_ns", "latency_ok", "rate_ok", "pass"
      [, "sustainable_rate", "probes"]
    }

with the open-loop invariants that make the telemetry trustworthy:

  * scheduled_ops == completed_ops (catch-up semantics never shed
    load — a shortfall would mean the harness silently dropped
    arrivals, which is exactly the coordinated omission it exists to
    prevent);
  * per op kind, intended and completion histograms hold the same
    number of samples, and every intended percentile >= its completion
    twin (each intended sample dominates its completion sample
    pointwise: arrival <= op start);
  * slo.observed_p99_ns equals the worst per-op intended p99, and
    slo.pass == latency_ok && rate_ok.

Usage:
    check_service_schema.py report.json [report2.json ...]
    check_service_schema.py --bench path/to/klsm_bench

The --bench mode runs the ISSUE's acceptance command end to end
(--workload service --structure klsm,numa_klsm --arrival poisson
--rate 500000 --smoke --json-out -) and validates its stdout; CTest
invokes it so the JSON wiring is covered by `ctest -L tier1`.
"""

import json
import subprocess
import sys

ARRIVALS = ("steady", "poisson", "spike", "diurnal")
OPS = ("insert", "delete_min")
PERCENTILE_FIELDS = ("p50", "p90", "p99", "p999")
OP_FIELDS = ("count", "mean", "min", "max",
             "dropped_intervals") + PERCENTILE_FIELDS
RATE_FIELDS = ("nominal_rate", "offered_rate", "achieved_rate")
COUNTER_FIELDS = ("scheduled_ops", "completed_ops", "late_ops",
                  "late_grace_ns", "max_lateness_ns", "backlog_max")


def check_op_stats(where, op_stats):
    for field in OP_FIELDS:
        assert field in op_stats, f"{where}.{field} missing"
        value = op_stats[field]
        assert isinstance(value, (int, float)) and value >= 0, \
            f"{where}.{field} = {value!r} is not a non-negative number"
    if op_stats["count"] > 0:
        assert op_stats["min"] <= op_stats["max"], \
            f"{where}: min exceeds max"
        prev = op_stats["min"]
        for pct in PERCENTILE_FIELDS:
            assert prev <= op_stats[pct] <= op_stats["max"], \
                f"{where}.{pct} = {op_stats[pct]} outside " \
                f"[{prev}, {op_stats['max']}] (percentiles must be " \
                f"monotone)"
            prev = op_stats[pct]
    for entry in op_stats.get("buckets", []):
        assert (isinstance(entry, list) and len(entry) == 2
                and all(isinstance(x, int) and x >= 0 for x in entry)), \
            f"{where}.buckets entry {entry!r} malformed"


def check_service(where, svc):
    assert svc.get("arrival") in ARRIVALS, \
        f"{where}.arrival = {svc.get('arrival')!r}"
    for field in RATE_FIELDS + ("duration_s", "mean_lateness_ns"):
        value = svc.get(field)
        assert isinstance(value, (int, float)) and value >= 0, \
            f"{where}.{field} = {value!r} is not a non-negative number"
    for field in COUNTER_FIELDS:
        value = svc.get(field)
        assert isinstance(value, int) and value >= 0, \
            f"{where}.{field} = {value!r} is not a non-negative integer"
    assert svc.get("unit") == "ns", f"{where}.unit != 'ns'"
    assert isinstance(svc.get("sub_bucket_bits"), int), \
        f"{where}.sub_bucket_bits missing"
    # Catch-up semantics: every scheduled arrival is served, always.
    assert svc["completed_ops"] == svc["scheduled_ops"], \
        f"{where}: completed_ops {svc['completed_ops']} != " \
        f"scheduled_ops {svc['scheduled_ops']} (open-loop harness " \
        f"shed load)"
    assert svc["late_ops"] <= svc["scheduled_ops"], \
        f"{where}: more late ops than scheduled ops"
    assert svc["backlog_max"] <= svc["scheduled_ops"], \
        f"{where}: backlog deeper than the whole schedule"
    if svc["late_ops"] > 0:
        assert svc["max_lateness_ns"] >= svc["late_grace_ns"], \
            f"{where}: late ops recorded but max lateness is within " \
            f"the grace window"
        assert svc["mean_lateness_ns"] <= svc["max_lateness_ns"], \
            f"{where}: mean lateness exceeds max"
    for which in ("intended", "completion"):
        block = svc.get(which)
        assert isinstance(block, dict), f"{where}.{which} missing"
        for op in OPS:
            assert op in block, f"{where}.{which}.{op} missing"
            check_op_stats(f"{where}.{which}.{op}", block[op])
    for op in OPS:
        intended = svc["intended"][op]
        completion = svc["completion"][op]
        # Both recorders see exactly the served ops, stride 1.
        assert intended["count"] == completion["count"], \
            f"{where}.{op}: intended count {intended['count']} != " \
            f"completion count {completion['count']}"
        if intended["count"] == 0:
            continue
        # Arrival-to-completion dominates start-to-completion pointwise
        # (arrival <= op start), so every percentile is ordered — the
        # coordinated-omission signal the mode exists to expose.
        for pct in PERCENTILE_FIELDS + ("max", "min"):
            assert intended[pct] >= completion[pct], \
                f"{where}.{op}.{pct}: intended {intended[pct]} < " \
                f"completion {completion[pct]} (intended-start must " \
                f"dominate service time)"


def check_slo(where, slo, svc):
    assert slo.get("metric") == "intended_p99_ns", \
        f"{where}.metric = {slo.get('metric')!r}"
    for field in ("p99_threshold_ns", "min_achieved_fraction",
                  "offered_rate", "achieved_rate", "observed_p99_ns"):
        value = slo.get(field)
        assert isinstance(value, (int, float)) and value >= 0, \
            f"{where}.{field} = {value!r} is not a non-negative number"
    assert 0 < slo["min_achieved_fraction"] <= 1, \
        f"{where}.min_achieved_fraction outside (0, 1]"
    for field in ("latency_ok", "rate_ok", "pass"):
        assert isinstance(slo.get(field), bool), \
            f"{where}.{field} missing or not a bool"
    assert slo["pass"] == (slo["latency_ok"] and slo["rate_ok"]), \
        f"{where}: pass disagrees with latency_ok && rate_ok"
    worst = max((svc["intended"][op]["p99"] for op in OPS
                 if svc["intended"][op]["count"] > 0), default=0)
    assert slo["observed_p99_ns"] == worst, \
        f"{where}.observed_p99_ns = {slo['observed_p99_ns']} but the " \
        f"worst per-op intended p99 is {worst}"
    if "sustainable_rate" in slo:
        assert isinstance(slo["sustainable_rate"], (int, float)) \
            and slo["sustainable_rate"] >= 0
        probes = slo.get("probes")
        assert isinstance(probes, list) and probes, \
            f"{where}: sustainable_rate without probes"
        passing = [r for r, ok in probes if ok]
        assert slo["sustainable_rate"] == (max(passing) if passing
                                           else 0), \
            f"{where}: sustainable_rate is not the best passing probe"


def check_report(report, path):
    assert report.get("benchmark") == "service", \
        f"{path}: benchmark meta = {report.get('benchmark')!r}"
    assert report.get("arrival") in ARRIVALS, \
        f"{path}: arrival meta = {report.get('arrival')!r}"
    checked = 0
    for record in report.get("records", []):
        structure = record.get("structure", "?")
        where = f"{path}:{structure}"
        assert "service" in record, f"{where}: no service object"
        assert "slo" in record, f"{where}: no slo object"
        svc = record["service"]
        check_service(f"{where}.service", svc)
        check_slo(f"{where}.slo", record["slo"], svc)
        assert svc["arrival"] == report["arrival"], \
            f"{where}: record arrival disagrees with the meta"
        checked += 1
    assert checked, f"{path}: no service records"
    return checked


def main(argv):
    if len(argv) >= 2 and argv[0] == "--bench":
        cmd = [argv[1], "--workload", "service", "--structure",
               "klsm,numa_klsm", "--arrival", "poisson", "--rate",
               "500000", "--smoke", "--json-out", "-"]
        out = subprocess.run(cmd, stdout=subprocess.PIPE,
                             stderr=subprocess.DEVNULL, check=True)
        checked = check_report(json.loads(out.stdout), "<bench stdout>")
        print(f"service schema OK: acceptance run, {checked} record(s)")
        return 0
    if not argv:
        print(__doc__)
        return 2
    for path in argv:
        with open(path) as f:
            report = json.load(f)
        checked = check_report(report, path)
        print(f"service schema OK: {path} ({checked} record(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
