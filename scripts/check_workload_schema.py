#!/usr/bin/env python3
"""Validate the `bnb` and `des` objects in klsm_bench JSON.

Schema (README "Application workloads"): every record of a
--workload bnb report carries

    "workload": "bnb", "expanded", "time_to_optimum_s",
    "bnb": {
      "items", "capacity", "optimum", "best", "match",
      "expanded", "wasted_expansions", "pruned_pops", "pushed",
      "failed_pops", "time_to_optimum_s"
    }

and every record of a --workload des report carries

    "workload": "des", "events_per_sec",
    "des": {
      "lps", "population", "target_events", "committed", "scheduled",
      "failed_pops", "violations", "violation_fraction", "lookahead",
      "mean_delay", "budget", "budget_ok", "max_lag", "virtual_time"
    }

with the accounting invariants that make the scalars trustworthy:

  * bnb: best == optimum (match true — relaxation may only waste work,
    never lose the optimum), wasted_expansions <= expanded, every push
    was popped (pushed == expanded + pruned_pops), and the
    time-to-optimum stamp exists (>= 0);
  * des: committed >= target_events, violations <= committed,
    violation_fraction == violations / committed, and budget_ok is
    exactly violation_fraction <= budget.

Usage:
    check_workload_schema.py report.json [report2.json ...]
    check_workload_schema.py --bench path/to/klsm_bench

The --bench mode runs the ISSUE's acceptance commands end to end
(--workload bnb / des --structure klsm,multiqueue --smoke --json-out -,
plus a combined bnb,des invocation), validates their stdout, and then
probes k-sensitivity: at k=16 vs k=4096 the k-LSM's expanded-node
count (bnb) and causality-violation count (des) must measurably
differ.  CTest invokes it so the wiring is covered by `ctest -L tier1`.
"""

import json
import subprocess
import sys

BNB_COUNTERS = ("items", "capacity", "optimum", "best", "expanded",
                "wasted_expansions", "pruned_pops", "pushed",
                "failed_pops")
DES_COUNTERS = ("lps", "population", "target_events", "committed",
                "scheduled", "failed_pops", "violations", "lookahead",
                "mean_delay", "max_lag", "virtual_time")


def check_bnb(where, record):
    block = record.get("bnb")
    assert isinstance(block, dict), f"{where}: no bnb object"
    for field in BNB_COUNTERS:
        value = block.get(field)
        assert isinstance(value, int) and value >= 0, \
            f"{where}.bnb.{field} = {value!r} is not a non-negative " \
            f"integer"
    assert isinstance(block.get("match"), bool), \
        f"{where}.bnb.match missing or not a bool"
    assert block["match"] and block["best"] == block["optimum"], \
        f"{where}: best {block['best']} != optimum {block['optimum']} " \
        f"(relaxation may only waste work, never lose the optimum)"
    assert block["wasted_expansions"] <= block["expanded"], \
        f"{where}: more wasted expansions than expansions"
    assert block["pushed"] == block["expanded"] + block["pruned_pops"], \
        f"{where}: pushed {block['pushed']} != expanded + pruned_pops " \
        f"{block['expanded'] + block['pruned_pops']} (drain leaked " \
        f"subproblems)"
    t_opt = block.get("time_to_optimum_s")
    assert isinstance(t_opt, (int, float)) and t_opt >= 0, \
        f"{where}.bnb.time_to_optimum_s = {t_opt!r} (never reached " \
        f"the optimum?)"
    # The record-level scalars mirror the block (the block is printed
    # at lower float precision, so the time check is approximate).
    assert record.get("expanded") == block["expanded"], \
        f"{where}: record.expanded disagrees with bnb.expanded"
    rec_t = record.get("time_to_optimum_s")
    assert isinstance(rec_t, (int, float)) and \
        abs(rec_t - t_opt) <= 1e-4 + 1e-3 * max(rec_t, t_opt), \
        f"{where}: record.time_to_optimum_s {rec_t} disagrees with " \
        f"the block's {t_opt}"


def check_des(where, record):
    block = record.get("des")
    assert isinstance(block, dict), f"{where}: no des object"
    for field in DES_COUNTERS:
        value = block.get(field)
        assert isinstance(value, int) and value >= 0, \
            f"{where}.des.{field} = {value!r} is not a non-negative " \
            f"integer"
    for field in ("violation_fraction", "budget"):
        value = block.get(field)
        assert isinstance(value, (int, float)) and 0 <= value <= 1, \
            f"{where}.des.{field} = {value!r} outside [0, 1]"
    assert isinstance(block.get("budget_ok"), bool), \
        f"{where}.des.budget_ok missing or not a bool"
    assert block["committed"] >= block["target_events"], \
        f"{where}: committed {block['committed']} below the " \
        f"target {block['target_events']}"
    assert block["violations"] <= block["committed"], \
        f"{where}: more violations than commits"
    frac = block["violations"] / block["committed"]
    assert abs(block["violation_fraction"] - frac) < 1e-6, \
        f"{where}: violation_fraction {block['violation_fraction']} " \
        f"!= violations/committed {frac}"
    assert block["budget_ok"] == (
        block["violation_fraction"] <= block["budget"]), \
        f"{where}: budget_ok disagrees with fraction <= budget"
    if block["violations"] > 0:
        assert block["max_lag"] > 0, \
            f"{where}: violations recorded but max_lag is zero"
    eps = record.get("events_per_sec")
    assert isinstance(eps, (int, float)) and eps > 0, \
        f"{where}: events_per_sec = {eps!r}"


def check_report(report, path, expect=None):
    """Validate every record; returns {workload: count} checked."""
    workloads = report.get("benchmark", "").split(",")
    if expect is not None:
        assert workloads == expect, \
            f"{path}: benchmark meta {report.get('benchmark')!r}, " \
            f"expected {','.join(expect)!r}"
    checked = {}
    for record in report.get("records", []):
        wl = record.get("workload")
        assert wl in workloads, \
            f"{path}: record workload {wl!r} not in the meta's " \
            f"selection {workloads}"
        where = f"{path}:{record.get('structure', '?')}:{wl}"
        if wl == "bnb":
            check_bnb(where, record)
        elif wl == "des":
            check_des(where, record)
        checked[wl] = checked.get(wl, 0) + 1
    for wl in ("bnb", "des"):
        if wl in workloads:
            assert checked.get(wl), f"{path}: no {wl} records"
    return checked


def run_bench(bench, *extra):
    cmd = [bench, "--smoke", "--json-out", "-", *extra]
    out = subprocess.run(cmd, stdout=subprocess.PIPE,
                         stderr=subprocess.DEVNULL, check=True)
    return json.loads(out.stdout)


def klsm_block(report, workload):
    for record in report["records"]:
        if (record.get("structure") == "klsm"
                and record.get("workload") == workload):
            return record[workload]
    raise AssertionError(f"no klsm {workload} record")


def probe_k_sensitivity(bench):
    """Relaxation must be visible: at k=4096 the klsm must expand more
    bnb nodes and commit more des violations than at k=16.  Individual
    seeds can be noisy (the container has one CPU and scheduling
    quanta drive the interleaving), so several seeds are tried and the
    direction only has to hold for one — but equality across *all*
    seeds means k is not wired through, which is the bug this guards.
    """
    for seed in (1, 7, 13):
        tight = run_bench(bench, "--workload", "bnb,des", "--structure",
                          "klsm", "--k", "16", "--seed", str(seed))
        loose = run_bench(bench, "--workload", "bnb,des", "--structure",
                          "klsm", "--k", "4096", "--seed", str(seed))
        bnb_t = klsm_block(tight, "bnb")["expanded"]
        bnb_l = klsm_block(loose, "bnb")["expanded"]
        des_t = klsm_block(tight, "des")["violation_fraction"]
        des_l = klsm_block(loose, "des")["violation_fraction"]
        print(f"  seed {seed}: bnb expanded {bnb_t} -> {bnb_l}, "
              f"des violation fraction {des_t:.4f} -> {des_l:.4f}")
        if bnb_l > bnb_t and des_l > des_t:
            return
    raise AssertionError(
        "k=16 and k=4096 are indistinguishable across every probe "
        "seed: relaxation is not reaching the workloads")


def main(argv):
    if len(argv) >= 2 and argv[0] == "--bench":
        bench = argv[1]
        for selection in ("bnb", "des"):
            report = run_bench(bench, "--workload", selection,
                               "--structure", "klsm,multiqueue")
            check_report(report, f"<{selection} stdout>",
                         expect=[selection])
        combined = run_bench(bench, "--workload", "bnb,des",
                             "--structure", "klsm")
        checked = check_report(combined, "<bnb,des stdout>",
                               expect=["bnb", "des"])
        print(f"workload schema OK: acceptance runs, combined "
              f"{checked}")
        probe_k_sensitivity(bench)
        print("workload schema OK: k-sensitivity probe")
        return 0
    if not argv:
        print(__doc__)
        return 2
    for path in argv:
        with open(path) as f:
            report = json.load(f)
        checked = check_report(report, path)
        print(f"workload schema OK: {path} ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
