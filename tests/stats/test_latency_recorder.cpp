#include "stats/latency_recorder.hpp"
#include "stats/latency_report.hpp"

#include "util/rng.hpp"

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace klsm {
namespace stats {
namespace {

TEST(LatencyRecorder, DisabledSetRecordsNothing) {
    latency_recorder_set recs{4, 0};
    EXPECT_FALSE(recs.enabled());
    // op_sample must be a no-op against a disabled or null set.
    op_sample a{&recs, 0, op_kind::insert};
    a.commit();
    op_sample b{nullptr, 0, op_kind::delete_min};
    b.commit();
    EXPECT_EQ(recs.merged(op_kind::insert).count(), 0u);
    EXPECT_EQ(recs.merged(op_kind::delete_min).count(), 0u);
}

TEST(LatencyRecorder, StrideSamplesEveryNth) {
    latency_recorder_set recs{1, 4};
    ASSERT_TRUE(recs.enabled());
    for (int i = 0; i < 100; ++i) {
        op_sample s{&recs, 0, op_kind::insert};
        s.commit();
    }
    // Stride 4 over 100 attempts: exactly 25 samples.
    EXPECT_EQ(recs.merged(op_kind::insert).count(), 25u);
    EXPECT_EQ(recs.merged(op_kind::delete_min).count(), 0u);
}

TEST(LatencyRecorder, UncommittedSamplesAreDropped) {
    latency_recorder_set recs{1, 1};
    for (int i = 0; i < 10; ++i) {
        op_sample s{&recs, 0, op_kind::delete_min};
        if (i % 2 == 0)
            s.commit(); // odd iterations model failed delete-mins
    }
    EXPECT_EQ(recs.merged(op_kind::delete_min).count(), 5u);
}

TEST(LatencyRecorder, OpKindsAreIndependent) {
    latency_recorder_set recs{1, 1};
    recs.slot(0).record(op_kind::insert, 100);
    recs.slot(0).record(op_kind::insert, 200);
    recs.slot(0).record(op_kind::delete_min, 999);
    EXPECT_EQ(recs.merged(op_kind::insert).count(), 2u);
    EXPECT_EQ(recs.merged(op_kind::delete_min).count(), 1u);
    EXPECT_EQ(recs.merged(op_kind::delete_min).max(), 999u);
}

TEST(LatencyRecorder, SlotsAreCacheLineAligned) {
    static_assert(alignof(thread_latency_slot) >= cache_line_size);
    latency_recorder_set recs{3, 1};
    for (unsigned t = 0; t < 3; ++t)
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&recs.slot(t)) %
                      cache_line_size,
                  0u);
}

TEST(LatencyRecorder, ConcurrentRecordingMergesExactly) {
    // The share-nothing claim, exercised: T threads hammer their own
    // slots concurrently; the merge must account for every recorded
    // sample with the exact per-thread sums.
    constexpr unsigned threads = 8;
    constexpr std::uint64_t per_thread = 20000;
    latency_recorder_set recs{threads, 1};
    std::vector<std::uint64_t> sums(threads);
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < threads; ++t) {
        ts.emplace_back([&, t] {
            xoroshiro128 rng{1000 + t};
            std::uint64_t sum = 0;
            for (std::uint64_t i = 0; i < per_thread; ++i) {
                const std::uint64_t v = rng() % 1000000;
                const op_kind op = (i % 2) ? op_kind::delete_min
                                           : op_kind::insert;
                recs.slot(t).record(op, v);
                sum += v;
            }
            sums[t] = sum;
        });
    }
    for (auto &th : ts)
        th.join();

    const auto ins = recs.merged(op_kind::insert);
    const auto del = recs.merged(op_kind::delete_min);
    EXPECT_EQ(ins.count() + del.count(), threads * per_thread);
    EXPECT_EQ(ins.count(), del.count());
    std::uint64_t expected_sum = 0;
    for (auto s : sums)
        expected_sum += s;
    EXPECT_EQ(ins.sum() + del.sum(), expected_sum);
}

TEST(LatencyRecorder, SampledTimingsAreNonzeroAndSane) {
    // End-to-end through now_ns(): stamping a trivial operation must
    // produce plausible nanosecond readings, not zeros (the
    // sub-microsecond granularity the timer satellite exists for).
    latency_recorder_set recs{1, 1};
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 1000; ++i) {
        op_sample s{&recs, 0, op_kind::insert};
        for (int j = 0; j < 50; ++j)
            sink = sink + static_cast<std::uint64_t>(j);
        s.commit();
    }
    const auto h = recs.merged(op_kind::insert);
    EXPECT_EQ(h.count(), 1000u);
    // 50 adds cannot take longer than 10ms even under a sanitizer.
    EXPECT_LT(h.max(), 10'000'000u);
    // A steady_clock with real nanosecond granularity yields a nonzero
    // mean for any loop body; a coarse (e.g. microsecond-rounded) source
    // would report mostly zeros.
    EXPECT_GT(h.mean(), 0.0);
}

TEST(LatencyRecorder, StallsCountAsDroppedIntervals) {
    latency_recorder_set recs{1, 1};
    auto &slot = recs.slot(0);
    // Steady 100ns samples seed the streaming p99 estimate near 100ns.
    for (int i = 0; i < 200; ++i)
        slot.record(op_kind::insert, 100);
    EXPECT_EQ(slot.dropped_intervals[0], 0u);
    // A 100us stall is far beyond 10x the estimate: coordinated
    // omission made visible.
    slot.record(op_kind::insert, 100000);
    EXPECT_EQ(slot.dropped_intervals[0], 1u);
    EXPECT_EQ(recs.dropped_intervals(op_kind::insert), 1u);
    EXPECT_EQ(recs.dropped_intervals(op_kind::delete_min), 0u);
}

TEST(LatencyRecorder, UniformSamplesDropNothing) {
    latency_recorder_set recs{1, 1};
    auto &slot = recs.slot(0);
    xoroshiro128 rng{99};
    // 2x jitter around 1us never crosses the 10x stall factor.
    for (int i = 0; i < 5000; ++i)
        slot.record(op_kind::delete_min, 1000 + rng.bounded(1000));
    EXPECT_EQ(slot.dropped_intervals[1], 0u);
}

TEST(LatencyRecorder, StallDetectionHasWarmup) {
    latency_recorder_set recs{1, 1};
    auto &slot = recs.slot(0);
    // The very first samples cannot be judged against an unseeded
    // estimate, however wild they look.
    slot.record(op_kind::insert, 50);
    slot.record(op_kind::insert, 5000000);
    EXPECT_EQ(slot.dropped_intervals[0], 0u);
}

TEST(LatencyRecorder, P99EstimateTracksTheTail) {
    latency_recorder_set recs{1, 1};
    auto &slot = recs.slot(0);
    // 99% of samples at 100ns, 1% at 10us: the estimate must settle
    // between the bulk and the tail (loose factor-of-2 band around
    // them), not at either extreme.
    xoroshiro128 rng{7};
    for (int i = 0; i < 50000; ++i)
        slot.record(op_kind::insert,
                    rng.bounded(100) == 0 ? 10000 : 100);
    // Loose band: above most of the bulk, at most 2x the tail.
    EXPECT_GE(slot.p99_estimate[0], 90u);
    EXPECT_LE(slot.p99_estimate[0], 20000u);
}

TEST(LatencyRecorder, EarlyOutlierSeedRecoversWithinWarmup) {
    latency_recorder_set recs{1, 1};
    auto &slot = recs.slot(0);
    // A 5ms page-fault stall as the very first sample must not wedge
    // the estimate so high that later genuine stalls go uncounted.
    slot.record(op_kind::insert, 5000000);
    for (int i = 0; i < 100; ++i)
        slot.record(op_kind::insert, 500);
    EXPECT_LE(slot.p99_estimate[0], 8 * 500u)
        << "estimate stuck at the outlier seed";
    slot.record(op_kind::insert, 50000); // a real 100x stall
    EXPECT_EQ(slot.dropped_intervals[0], 1u);
}

TEST(LatencyRecorder, FastEarlySampleDoesNotFlagTheBulkAsStalls) {
    latency_recorder_set recs{1, 1};
    auto &slot = recs.slot(0);
    // Bulk ~1ms with one anomalously fast early sample (cache hit):
    // the estimate must not collapse and brand the ordinary bulk as
    // phantom dropped intervals.
    slot.record(op_kind::insert, 1000000);
    slot.record(op_kind::insert, 10);
    for (int i = 0; i < 500; ++i)
        slot.record(op_kind::insert, 1000000);
    EXPECT_EQ(slot.dropped_intervals[0], 0u);
}

TEST(LatencyRecorder, DroppedIntervalsSumAcrossSlots) {
    latency_recorder_set recs{2, 1};
    for (unsigned t = 0; t < 2; ++t) {
        auto &slot = recs.slot(t);
        for (int i = 0; i < 100; ++i)
            slot.record(op_kind::delete_min, 200);
        slot.record(op_kind::delete_min, 1000000);
    }
    EXPECT_EQ(recs.dropped_intervals(op_kind::delete_min), 2u);
}

TEST(LatencyReport, JsonShapeIsParseable) {
    latency_recorder_set recs{2, 1};
    recs.slot(0).record(op_kind::insert, 120);
    recs.slot(0).record(op_kind::delete_min, 80);
    recs.slot(1).record(op_kind::insert, 3000000);
    const std::string json = latency_json(recs);
    // Structural spot-checks (full parse validation lives in the smoke
    // stage, which runs every report through python json.load).
    EXPECT_NE(json.find("\"unit\":\"ns\""), std::string::npos);
    EXPECT_NE(json.find("\"sample_stride\":1"), std::string::npos);
    EXPECT_NE(json.find("\"sub_bucket_bits\":5"), std::string::npos);
    EXPECT_NE(json.find("\"insert\":{\"count\":2"), std::string::npos);
    EXPECT_NE(json.find("\"delete_min\":{\"count\":1"), std::string::npos);
    EXPECT_NE(json.find("\"dropped_intervals\":0"), std::string::npos);
    EXPECT_NE(json.find("\"buckets\":[["), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(LatencyReport, EmptyHistogramsSerializeCleanly) {
    latency_recorder_set recs{1, 8};
    const std::string json = latency_json(recs);
    EXPECT_NE(json.find("\"insert\":{\"count\":0"), std::string::npos);
    EXPECT_NE(json.find("\"buckets\":[]"), std::string::npos);
}

} // namespace
} // namespace stats
} // namespace klsm
