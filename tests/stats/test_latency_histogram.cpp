#include "stats/latency_histogram.hpp"

#include "util/rng.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace klsm {
namespace stats {
namespace {

using hist = latency_histogram;

TEST(LatencyHistogram, LinearHeadIsExact) {
    // Values below 2^(sub_bits+1) get width-1 buckets: index == value.
    for (std::uint64_t v = 0; v < 2 * hist::sub_count; ++v) {
        EXPECT_EQ(hist::bucket_index(v), v);
        EXPECT_EQ(hist::bucket_lower(v), v);
        EXPECT_EQ(hist::bucket_upper(v), v);
    }
}

TEST(LatencyHistogram, BucketBoundariesRoundTrip) {
    // Every bucket's lower and upper edge must map back to that bucket,
    // and consecutive buckets must tile the range with no gap/overlap.
    const std::size_t top = hist::bucket_index(hist::max_trackable);
    for (std::size_t i = 0; i <= top; ++i) {
        EXPECT_EQ(hist::bucket_index(hist::bucket_lower(i)), i)
            << "lower edge of bucket " << i;
        EXPECT_EQ(hist::bucket_index(hist::bucket_upper(i)), i)
            << "upper edge of bucket " << i;
        if (i > 0) {
            EXPECT_EQ(hist::bucket_lower(i), hist::bucket_upper(i - 1) + 1)
                << "gap/overlap between buckets " << i - 1 << " and " << i;
        }
    }
}

TEST(LatencyHistogram, RelativeErrorIsBounded) {
    // The HDR property: bucket width <= lower_edge * 2^-sub_bits for all
    // buckets past the linear head (head buckets have width 1).
    xoroshiro128 rng{42};
    for (int i = 0; i < 100000; ++i) {
        const std::uint64_t v = rng() % hist::max_trackable;
        const std::size_t b = hist::bucket_index(v);
        const std::uint64_t width =
            hist::bucket_upper(b) - hist::bucket_lower(b) + 1;
        EXPECT_LE(width,
                  std::max<std::uint64_t>(1,
                                          hist::bucket_lower(b) >>
                                              hist::sub_bits))
            << "bucket " << b << " too wide for value " << v;
        EXPECT_LE(hist::bucket_lower(b), v);
        EXPECT_GE(hist::bucket_upper(b), v);
    }
}

TEST(LatencyHistogram, EmptyHistogram) {
    hist h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(50), 0u);
    EXPECT_EQ(h.percentile(100), 0u);
    bool any = false;
    h.for_each_nonempty([&](std::size_t, std::uint64_t) { any = true; });
    EXPECT_FALSE(any);
}

TEST(LatencyHistogram, ExactStatsBesideBuckets) {
    hist h;
    h.record(10);
    h.record(20);
    h.record(30);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 60u);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 30u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    // Width-1 buckets in the linear head: percentiles are exact.
    EXPECT_EQ(h.percentile(0), 10u);
    EXPECT_EQ(h.percentile(50), 20u);
    EXPECT_EQ(h.percentile(100), 30u);
}

TEST(LatencyHistogram, SaturatesAboveMaxTrackable) {
    hist h;
    const std::uint64_t huge = hist::max_trackable * 3;
    h.record(huge);
    h.record(100);
    // Bucketing saturates, but the exact max survives and p100 reports it.
    EXPECT_EQ(h.max(), huge);
    EXPECT_EQ(h.percentile(100), huge);
    EXPECT_EQ(h.count(), 2u);
}

TEST(LatencyHistogram, MergeDisjointRanges) {
    hist lo, hi, both;
    for (std::uint64_t v = 0; v < 100; ++v) {
        lo.record(v);
        both.record(v);
    }
    for (std::uint64_t v = 1000000; v < 1000100; ++v) {
        hi.record(v);
        both.record(v);
    }
    hist merged = lo;
    merged.merge(hi);
    EXPECT_EQ(merged.count(), both.count());
    EXPECT_EQ(merged.sum(), both.sum());
    EXPECT_EQ(merged.min(), both.min());
    EXPECT_EQ(merged.max(), both.max());
    for (std::size_t i = 0; i < hist::bucket_count; ++i)
        ASSERT_EQ(merged.bucket(i), both.bucket(i)) << "bucket " << i;
}

TEST(LatencyHistogram, MergeOverlappingRanges) {
    xoroshiro128 rng{7};
    hist a, b, both;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t v = rng() % 100000;
        if (i % 2) {
            a.record(v);
        } else {
            b.record(v);
        }
        both.record(v);
    }
    hist merged = a;
    merged.merge(b);
    EXPECT_EQ(merged.count(), both.count());
    EXPECT_EQ(merged.sum(), both.sum());
    EXPECT_EQ(merged.min(), both.min());
    EXPECT_EQ(merged.max(), both.max());
    for (std::size_t i = 0; i < hist::bucket_count; ++i)
        ASSERT_EQ(merged.bucket(i), both.bucket(i)) << "bucket " << i;
    // Percentiles of the merge match the all-in-one histogram exactly
    // (same buckets, same counts).
    for (double p : {50.0, 90.0, 99.0, 99.9})
        EXPECT_EQ(merged.percentile(p), both.percentile(p));
}

TEST(LatencyHistogram, MergeWithEmpty) {
    hist empty, h;
    h.record(17);
    hist merged = h;
    merged.merge(empty);
    EXPECT_EQ(merged.count(), 1u);
    EXPECT_EQ(merged.min(), 17u);
    hist merged2 = empty;
    merged2.merge(h);
    EXPECT_EQ(merged2.count(), 1u);
    EXPECT_EQ(merged2.min(), 17u);
    EXPECT_EQ(merged2.max(), 17u);
}

TEST(LatencyHistogram, PercentileAgainstSortedOracle) {
    // Log-uniform samples across the whole range, compared against the
    // sorted-vector nearest-rank oracle: the histogram may only round a
    // value *up*, and by at most one bucket width (2^-sub_bits relative,
    // plus 1 for integer edges).
    xoroshiro128 rng{12345};
    hist h;
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 20000; ++i) {
        const unsigned magnitude = static_cast<unsigned>(rng.bounded(34));
        const std::uint64_t v = rng() & ((std::uint64_t{1} << magnitude) |
                                         ((std::uint64_t{1} << magnitude) -
                                          1));
        samples.push_back(v);
        h.record(v);
    }
    std::sort(samples.begin(), samples.end());
    for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
        // Same rank convention as hist::percentile (round-half-up).
        std::uint64_t rank = static_cast<std::uint64_t>(
            p / 100.0 * static_cast<double>(samples.size()) + 0.5);
        rank = std::max<std::uint64_t>(1,
                                       std::min<std::uint64_t>(
                                           rank, samples.size()));
        const std::uint64_t oracle = samples[rank - 1];
        const std::uint64_t got = h.percentile(p);
        EXPECT_GE(got, oracle) << "p" << p;
        const double rel_slack =
            1.0 + 1.0 / static_cast<double>(hist::sub_count);
        EXPECT_LE(static_cast<double>(got),
                  static_cast<double>(oracle) * rel_slack + 1.0)
            << "p" << p;
    }
    EXPECT_EQ(h.percentile(100), samples.back());
    EXPECT_EQ(h.percentile(0), samples.front());
}

TEST(LatencyHistogram, PrecisionIsConfigurable) {
    // A coarser histogram (fewer sub-buckets) must still round-trip its
    // layout; its relative error degrades to 2^-2.
    using coarse = basic_latency_histogram<2>;
    const std::size_t top = coarse::bucket_index(coarse::max_trackable);
    for (std::size_t i = 0; i <= top; ++i) {
        ASSERT_EQ(coarse::bucket_index(coarse::bucket_lower(i)), i);
        ASSERT_EQ(coarse::bucket_index(coarse::bucket_upper(i)), i);
    }
    // Finer precision means no fewer buckets.
    static_assert(basic_latency_histogram<8>::bucket_count >
                  coarse::bucket_count);
}

} // namespace
} // namespace stats
} // namespace klsm
