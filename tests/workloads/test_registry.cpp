// The workload-registry API contract (harness/workload_registry.hpp):
// duplicate rejection, alias precedence, comma-selection resolution,
// the unknown-workload error listing every registered name, and flag
// group isolation through the CLI parser.

#include <gtest/gtest.h>

#include "harness/workload_registry.hpp"
#include "util/cli.hpp"

namespace {

using klsm::bench::workload_entry;
using klsm::bench::workload_registry;

workload_entry entry(const std::string &name,
                     const std::string &summary = "") {
    workload_entry e;
    e.name = name;
    e.summary = summary;
    return e;
}

TEST(WorkloadRegistry, RegistersInOrder) {
    workload_registry reg;
    EXPECT_TRUE(reg.add(entry("alpha")));
    EXPECT_TRUE(reg.add(entry("beta")));
    EXPECT_EQ(reg.names(), (std::vector<std::string>{"alpha", "beta"}));
    EXPECT_EQ(reg.names_joined(), "alpha, beta");
    ASSERT_NE(reg.find("alpha"), nullptr);
    EXPECT_EQ(reg.find("alpha")->name, "alpha");
    EXPECT_EQ(reg.find("gamma"), nullptr);
}

TEST(WorkloadRegistry, RejectsDuplicateAndEmptyNames) {
    workload_registry reg;
    EXPECT_TRUE(reg.add(entry("alpha")));
    EXPECT_FALSE(reg.add(entry("alpha")));
    EXPECT_FALSE(reg.add(entry("")));
    EXPECT_EQ(reg.names().size(), 1u);
}

TEST(WorkloadRegistry, AliasPrecedence) {
    // The one tested precedence rule: a non-empty --benchmark wins.
    EXPECT_EQ(workload_registry::resolve_alias("bnb", ""), "bnb");
    EXPECT_EQ(workload_registry::resolve_alias("bnb", "des"), "des");
    EXPECT_EQ(workload_registry::resolve_alias("", "des"), "des");
    EXPECT_EQ(workload_registry::resolve_alias("", ""), "");
}

TEST(WorkloadRegistry, ResolvesCommaListInOrderWithDedup) {
    workload_registry reg;
    reg.add(entry("alpha"));
    reg.add(entry("beta"));
    reg.add(entry("gamma"));
    std::string err;
    const auto out = reg.resolve("gamma,alpha,gamma", &err);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0]->name, "gamma");
    EXPECT_EQ(out[1]->name, "alpha");
}

TEST(WorkloadRegistry, UnknownNameListsRegisteredWorkloads) {
    workload_registry reg;
    reg.add(entry("alpha"));
    reg.add(entry("beta"));
    std::string err;
    EXPECT_TRUE(reg.resolve("alpha,nosuch", &err).empty());
    EXPECT_NE(err.find("nosuch"), std::string::npos);
    EXPECT_NE(err.find("alpha"), std::string::npos);
    EXPECT_NE(err.find("beta"), std::string::npos);
}

TEST(WorkloadRegistry, EmptySelectionIsAnError) {
    workload_registry reg;
    reg.add(entry("alpha"));
    std::string err;
    EXPECT_TRUE(reg.resolve("", &err).empty());
    EXPECT_NE(err.find("alpha"), std::string::npos);
    err.clear();
    EXPECT_TRUE(reg.resolve(",,", &err).empty());
    EXPECT_FALSE(err.empty());
}

TEST(WorkloadRegistry, FlagGroupsStayIsolated) {
    workload_registry reg;
    auto a = entry("alpha", "first summary");
    a.register_flags = [](klsm::cli_parser &cli) {
        cli.add_flag("alpha-size", "1", "size");
        cli.add_flag("alpha-mode", "x", "mode");
    };
    auto b = entry("beta");
    b.register_flags = [](klsm::cli_parser &cli) {
        cli.add_flag("beta-rate", "2", "rate");
    };
    reg.add(a);
    reg.add(b);

    klsm::cli_parser cli{"test"};
    cli.add_flag("core-flag", "0", "stays unheaded");
    reg.register_flags(cli);

    const auto &ae = *reg.find("alpha");
    const auto &be = *reg.find("beta");
    EXPECT_EQ(workload_registry::group_title(ae),
              "alpha workload — first summary");
    EXPECT_EQ(workload_registry::group_title(be), "beta workload");
    EXPECT_EQ(cli.group_flags(workload_registry::group_title(ae)),
              (std::vector<std::string>{"alpha-size", "alpha-mode"}));
    EXPECT_EQ(cli.group_flags(workload_registry::group_title(be)),
              (std::vector<std::string>{"beta-rate"}));
    // The pre-group core flag belongs to no group.
    EXPECT_EQ(cli.group_flags(""), (std::vector<std::string>{"core-flag"}));
    EXPECT_EQ(cli.groups(),
              (std::vector<std::string>{
                  workload_registry::group_title(ae),
                  workload_registry::group_title(be)}));
}

TEST(WorkloadRegistryDeathTest, DuplicateFlagNameExits) {
    // Two workloads claiming the same flag is a programming error the
    // parser turns into an immediate exit — a silent collision would
    // leave one workload reading the other's value.
    EXPECT_EXIT(
        {
            klsm::cli_parser cli{"test"};
            cli.add_flag("shared-name", "1", "first owner");
            cli.add_flag("shared-name", "2", "second owner");
        },
        ::testing::ExitedWithCode(2), "registered twice");
}

TEST(WorkloadRegistry, ReclaimSoakDefaultsOff) {
    workload_registry reg;
    auto soak = entry("soak");
    soak.reclaim_soak = true;
    reg.add(soak);
    reg.add(entry("plain"));
    EXPECT_TRUE(reg.find("soak")->reclaim_soak);
    EXPECT_FALSE(reg.find("plain")->reclaim_soak);
}

} // namespace
