// DES workload (src/workloads/des.hpp): the PHOLD model must hit its
// commit target, keep the population causally sane on an exact queue,
// and stay within a generous violation budget even when relaxed.

#include <cstdint>

#include <gtest/gtest.h>

#include "baselines/spin_heap.hpp"
#include "klsm/k_lsm.hpp"
#include "workloads/des.hpp"

namespace {

using namespace klsm::workloads;

des_params small_run(unsigned threads) {
    des_params p;
    p.lps = 64;
    p.population = 1024;
    p.target_events = 20000;
    p.mean_delay = 64;
    p.threads = threads;
    p.seed = 7;
    return p;
}

TEST(DesSearch, SingleThreadExactHeapHasZeroViolations) {
    // One worker on an exact queue pops globally nondecreasing
    // timestamps, so no LP clock can ever run ahead of a popped event.
    klsm::spin_heap<std::uint64_t, std::uint64_t> q;
    const auto res = run_des(q, small_run(1));
    EXPECT_GE(res.committed, 20000u);
    EXPECT_EQ(res.violations, 0u);
    EXPECT_EQ(res.max_lag, 0u);
    EXPECT_GT(res.virtual_time, 0u);
    EXPECT_GT(res.elapsed_s, 0.0);
}

TEST(DesSearch, CommitsReachTargetUnderKlsm) {
    klsm::k_lsm<std::uint64_t, std::uint64_t> q{256};
    auto p = small_run(4);
    // Keep the population above k so the shared (relaxed) component is
    // actually exercised.
    p.population = 2048;
    const auto res = run_des(q, p);
    EXPECT_GE(res.committed, p.target_events);
    EXPECT_LE(res.violations, res.committed);
    // Self-messaging keeps the population constant: every commit except
    // the post-stop stragglers schedules exactly one successor.
    EXPECT_LE(res.scheduled, res.committed);
    EXPECT_GE(res.scheduled + p.threads, res.committed);
}

TEST(DesSearch, LookaheadAbsorbsSmallLag) {
    // With lookahead L every successor is >= L+1 in the future and a
    // commit only counts as a violation beyond L — so an exact queue
    // stays at zero and virtual time advances at least as fast.
    klsm::spin_heap<std::uint64_t, std::uint64_t> q;
    auto p = small_run(1);
    p.lookahead = 32;
    const auto res = run_des(q, p);
    EXPECT_EQ(res.violations, 0u);
    EXPECT_GE(res.committed, p.target_events);
}

TEST(DesSearch, ViolationFractionIsConsistent) {
    klsm::k_lsm<std::uint64_t, std::uint64_t> q{1024};
    auto p = small_run(4);
    p.population = 4096;
    const auto res = run_des(q, p);
    ASSERT_GT(res.committed, 0u);
    const double frac = res.violation_fraction();
    EXPECT_GE(frac, 0.0);
    EXPECT_LE(frac, 1.0);
    EXPECT_DOUBLE_EQ(frac, static_cast<double>(res.violations) /
                               static_cast<double>(res.committed));
    if (res.violations > 0)
        EXPECT_GT(res.max_lag, 0u);
}

} // namespace
