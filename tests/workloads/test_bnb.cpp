// Branch-and-bound workload (src/workloads/bnb.hpp): subproblem
// packing, instance generation/finalization against the DP reference,
// and — the point of the workload — that every structure, exact or
// relaxed, still terminates at the true optimum.

#include <cstdint>

#include <gtest/gtest.h>

#include "baselines/multiqueue.hpp"
#include "baselines/spin_heap.hpp"
#include "klsm/k_lsm.hpp"
#include "workloads/bnb.hpp"

namespace {

using namespace klsm::workloads;

TEST(BnbPacking, RoundTripsAllFields) {
    bnb_subproblem sp;
    sp.depth = 1234;
    sp.remaining = bnb_field_cap - 1;
    sp.value = bnb_field_cap - 2;
    const auto back = unpack_subproblem(pack_subproblem(sp));
    EXPECT_EQ(back.depth, sp.depth);
    EXPECT_EQ(back.remaining, sp.remaining);
    EXPECT_EQ(back.value, sp.value);

    const bnb_subproblem zero;
    const auto zback = unpack_subproblem(pack_subproblem(zero));
    EXPECT_EQ(zback.depth, 0u);
    EXPECT_EQ(zback.remaining, 0u);
    EXPECT_EQ(zback.value, 0u);
}

TEST(BnbInstance, HandBuiltOptimumMatchesDp) {
    // capacity 5: {w2 v3, w3 v4} fit together for 7; any single item
    // is worse, {w2,w4}=6 exceeds nothing better.
    knapsack_instance ks;
    ks.weight = {2, 3, 4, 5};
    ks.value = {3, 4, 5, 6};
    ks.capacity = 5;
    finalize_instance(ks);
    EXPECT_EQ(ks.optimum, 7u);
    // Density order is a permutation of all items.
    ASSERT_EQ(ks.order.size(), 4u);
    std::uint32_t mask = 0;
    for (const auto i : ks.order)
        mask |= 1u << i;
    EXPECT_EQ(mask, 0b1111u);
}

TEST(BnbInstance, FinalizeRejectsUnpackableInstances) {
    knapsack_instance ks;
    ks.weight = {1};
    ks.value = {1};
    ks.capacity = bnb_field_cap; // does not fit the 24-bit field
    EXPECT_THROW(finalize_instance(ks), std::invalid_argument);
}

TEST(BnbInstance, GenerationIsDeterministic) {
    const auto a = make_knapsack(20, 42);
    const auto b = make_knapsack(20, 42);
    const auto c = make_knapsack(20, 43);
    EXPECT_EQ(a.weight, b.weight);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.optimum, b.optimum);
    EXPECT_NE(a.weight, c.weight);
}

TEST(BnbInstance, BoundIsAdmissibleAtRoot) {
    const auto ks = make_knapsack(24, 7);
    const bnb_subproblem root{0, ks.capacity, 0};
    EXPECT_GT(knapsack_upper_bound(ks, root), ks.optimum);
}

// The search must reach the DP optimum no matter how relaxed the pop
// order is — relaxation may only cost wasted expansions.
template <typename PQ>
void expect_finds_optimum(PQ &q, const knapsack_instance &ks,
                          unsigned threads, std::uint32_t seed_depth) {
    bnb_params params;
    params.threads = threads;
    params.seed_frontier_depth = seed_depth;
    const auto res = run_bnb(q, ks, params);
    EXPECT_EQ(res.best, ks.optimum);
    EXPECT_GE(res.time_to_optimum_s, 0.0);
    EXPECT_GE(res.expanded, 1u);
    EXPECT_LE(res.wasted_expansions, res.expanded);
    // Drained: every pushed subproblem was popped (expanded or pruned),
    // plus the leaf completions that were never re-inserted.
    EXPECT_EQ(res.pushed, res.expanded + res.pruned_pops);
}

TEST(BnbSearch, ExactHeapFindsOptimum) {
    const auto ks = make_knapsack(22, 3);
    klsm::spin_heap<std::uint64_t, std::uint64_t> q;
    expect_finds_optimum(q, ks, 2, 0);
}

TEST(BnbSearch, KlsmTightFindsOptimum) {
    const auto ks = make_knapsack(24, 5);
    klsm::k_lsm<std::uint64_t, std::uint64_t> q{16};
    expect_finds_optimum(q, ks, 4, 8);
}

TEST(BnbSearch, KlsmHeavilyRelaxedFindsOptimum) {
    const auto ks = make_knapsack(24, 5);
    klsm::k_lsm<std::uint64_t, std::uint64_t> q{4096};
    expect_finds_optimum(q, ks, 4, 8);
}

TEST(BnbSearch, MultiqueueFindsOptimum) {
    const auto ks = make_knapsack(22, 11);
    klsm::multiqueue<std::uint64_t, std::uint64_t> q{4};
    expect_finds_optimum(q, ks, 4, 8);
}

TEST(BnbSearch, SingleThreadRootOnlySeed) {
    const auto ks = make_knapsack(18, 9);
    klsm::k_lsm<std::uint64_t, std::uint64_t> q{64};
    expect_finds_optimum(q, ks, 1, 0);
}

TEST(BnbSearch, NothingFitsMeansEmptyOptimum) {
    knapsack_instance ks;
    ks.weight = {10, 11};
    ks.value = {5, 6};
    ks.capacity = 4;
    finalize_instance(ks);
    ASSERT_EQ(ks.optimum, 0u);
    klsm::spin_heap<std::uint64_t, std::uint64_t> q;
    bnb_params params;
    params.threads = 1;
    const auto res = run_bnb(q, ks, params);
    EXPECT_EQ(res.best, 0u);
    EXPECT_GE(res.time_to_optimum_s, 0.0);
}

} // namespace
