// The tracing tier (src/trace/): ring semantics, drop accounting, the
// process-wide tracer's multi-producer drain, and the exporter's
// ordering guarantees.
//
// The tracer is a process singleton, so every test that arms it resets
// it afterwards; the fixture enforces that even on assertion failure.

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "trace/metrics_sampler.hpp"
#include "trace/trace_event.hpp"
#include "trace/trace_export.hpp"
#include "trace/trace_ring.hpp"
#include "trace/tracer.hpp"

namespace {

using klsm::trace::kind;
using klsm::trace::trace_event;
using klsm::trace::trace_ring;
using klsm::trace::tracer;

trace_event make_event(std::uint64_t ts, std::uint32_t b) {
    trace_event e;
    e.ts_ns = ts;
    e.kind_ = static_cast<std::uint16_t>(kind::dist_spill);
    e.b = b;
    return e;
}

std::vector<trace_event> drain(const trace_ring &r) {
    std::vector<trace_event> out;
    r.for_each([&out](const trace_event &e) { out.push_back(e); });
    return out;
}

TEST(TraceRing, CapacityRoundsUpToAPowerOfTwo) {
    EXPECT_EQ(trace_ring{1}.capacity(), 2u);
    EXPECT_EQ(trace_ring{2}.capacity(), 2u);
    EXPECT_EQ(trace_ring{3}.capacity(), 4u);
    EXPECT_EQ(trace_ring{1000}.capacity(), 1024u);
    EXPECT_EQ(trace_ring{1024}.capacity(), 1024u);
}

TEST(TraceRing, RetainsEverythingBelowCapacity) {
    trace_ring r{8};
    for (std::uint32_t i = 0; i < 5; ++i)
        r.push(make_event(100 + i, i));
    EXPECT_EQ(r.pushed(), 5u);
    EXPECT_EQ(r.size(), 5u);
    EXPECT_EQ(r.dropped(), 0u);
    const auto events = drain(r);
    ASSERT_EQ(events.size(), 5u);
    for (std::uint32_t i = 0; i < 5; ++i)
        EXPECT_EQ(events[i].b, i);
}

TEST(TraceRing, WrapKeepsTheMostRecentWindowInOrder) {
    trace_ring r{4};
    for (std::uint32_t i = 0; i < 11; ++i)
        r.push(make_event(100 + i, i));
    EXPECT_EQ(r.pushed(), 11u);
    EXPECT_EQ(r.size(), 4u);
    // Exact drop accounting: 11 pushed into capacity 4 loses 7.
    EXPECT_EQ(r.dropped(), 7u);
    const auto events = drain(r);
    ASSERT_EQ(events.size(), 4u);
    // Oldest-first, and precisely the newest four (7, 8, 9, 10).
    for (std::uint32_t i = 0; i < 4; ++i) {
        EXPECT_EQ(events[i].b, 7 + i);
        EXPECT_EQ(events[i].ts_ns, 107u + i);
    }
}

TEST(TraceRing, DropCounterTracksEveryFurtherOverwrite) {
    trace_ring r{2};
    r.push(make_event(1, 0));
    r.push(make_event(2, 1));
    EXPECT_EQ(r.dropped(), 0u);
    for (std::uint32_t i = 2; i < 50; ++i) {
        r.push(make_event(i + 1, i));
        EXPECT_EQ(r.dropped(), i - 1);
    }
}

/// Arms the singleton tracer and guarantees reset on scope exit, so a
/// failing assertion cannot leak an armed tracer into later tests.
struct tracer_guard {
    explicit tracer_guard(std::size_t ring_capacity) {
        tracer::instance().reset();
        tracer::instance().enable(ring_capacity);
    }
    ~tracer_guard() {
        tracer::instance().disable();
        tracer::instance().reset();
    }
};

/// Runs `threads` producers that each emit `per_thread` events, and
/// holds every producer alive until all have finished emitting.
/// Without the hold-open a producer can run to completion and exit
/// before the next one spawns (single-core schedulers do exactly
/// this), releasing its thread_index slot for reuse — and two
/// producers sharing a slot share a ring, which is not the
/// multi-producer shape these tests are about.
template <typename Emit>
void run_producers(unsigned threads, Emit emit_all) {
    std::atomic<unsigned> done{0};
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < threads; ++t) {
        ts.emplace_back([&done, threads, emit_all] {
            emit_all();
            done.fetch_add(1);
            while (done.load() < threads)
                std::this_thread::yield();
        });
    }
    for (auto &t : ts)
        t.join();
}

TEST(Tracer, MultiProducerDrainIsSortedAndPerThreadOrdered) {
    tracer_guard guard{1 << 12};
    constexpr unsigned threads = 4;
    constexpr std::uint32_t per_thread = 2000;

    run_producers(threads, [] {
        for (std::uint32_t i = 0; i < per_thread; ++i)
            klsm::trace::emit(kind::dist_spill, 0, i);
    });

    tracer::drain_stats stats;
    const auto events = tracer::instance().drain_sorted(&stats);
    EXPECT_EQ(stats.recorded, events.size());
    EXPECT_EQ(stats.dropped, 0u);
    EXPECT_EQ(stats.rings, threads);
    ASSERT_EQ(events.size(),
              static_cast<std::size_t>(threads) * per_thread);

    // Globally sorted by timestamp...
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].ev.ts_ns, events[i].ev.ts_ns);
    // ...and within each producer the per-thread program order (the
    // monotone payload sequence) survives the merge: each thread's
    // clock reads are themselves monotone, and the sort is stable.
    std::vector<std::uint32_t> next(klsm::max_registered_threads, 0);
    for (const auto &te : events) {
        ASSERT_LT(te.tid, next.size());
        EXPECT_EQ(te.ev.b, next[te.tid]);
        ++next[te.tid];
    }
}

TEST(Tracer, WrapAcrossThreadsReportsAggregateDrops) {
    tracer_guard guard{64};
    constexpr unsigned threads = 2;
    constexpr std::uint32_t per_thread = 500;
    run_producers(threads, [] {
        for (std::uint32_t i = 0; i < per_thread; ++i)
            klsm::trace::emit(kind::dist_spill, 0, i);
    });
    tracer::drain_stats stats;
    const auto events = tracer::instance().drain_sorted(&stats);
    EXPECT_EQ(events.size(), static_cast<std::size_t>(threads) * 64);
    EXPECT_EQ(stats.recorded, events.size());
    EXPECT_EQ(stats.dropped,
              static_cast<std::uint64_t>(threads) * (per_thread - 64));
    // Each ring retained its newest window.
    for (const auto &te : events)
        EXPECT_GE(te.ev.b, per_thread - 64);
}

TEST(Tracer, InactiveEmitRecordsNothing) {
    tracer::instance().reset();
    ASSERT_FALSE(klsm::trace::active());
    // The macro gate: argument side effects must not run either.
    int evaluated = 0;
    KLSM_TRACE_EVENT(kind::dist_spill, (++evaluated, 1), 2);
    EXPECT_EQ(evaluated, 0);
    tracer::drain_stats stats;
    const auto events = tracer::instance().drain_sorted(&stats);
    EXPECT_TRUE(events.empty());
    EXPECT_EQ(stats.recorded, 0u);
}

TEST(Tracer, SpanRecordsEndTimestampAndDuration) {
    tracer_guard guard{256};
    {
        KLSM_TRACE_SPAN(s, kind::bench_record);
        s.arg(7);
    }
    const auto events = tracer::instance().drain_sorted();
    ASSERT_EQ(events.size(), 1u);
    const trace_event &e = events[0].ev;
    EXPECT_EQ(e.kind_, static_cast<std::uint16_t>(kind::bench_record));
    EXPECT_EQ(e.a, 7u);
    EXPECT_GE(e.ts_ns, tracer::instance().base_ns());
    // The span's start (end - dur) cannot precede the tracer's base.
    EXPECT_GE(e.ts_ns - e.b, tracer::instance().base_ns());
}

TEST(Tracer, CancelledSpanRecordsNothing) {
    tracer_guard guard{256};
    {
        KLSM_TRACE_SPAN(s, kind::bench_record);
        s.cancel();
    }
    EXPECT_TRUE(tracer::instance().drain_sorted().empty());
}

TEST(TraceExport, ChromeTraceIsWellFormedAndMonotone) {
    tracer_guard guard{256};
    klsm::trace::emit(kind::dist_spill, 3, 41);
    {
        KLSM_TRACE_SPAN(s, kind::dist_publish);
        s.arg(2);
    }
    std::vector<klsm::trace::counter_series> counters(1);
    counters[0].name = "ops_per_sec";
    counters[0].points.emplace_back(klsm::now_ns(), 123.0);

    std::ostringstream os;
    klsm::trace::write_chrome_trace(os, tracer::instance(), &counters);
    const std::string doc = os.str();
    // Structural spot checks; the full schema walk lives in
    // scripts/check_trace_schema.py (shared with the CI smoke job).
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"dist.spill\""), std::string::npos);
    EXPECT_NE(doc.find("\"dist.publish\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(doc.find("\"ops_per_sec\""), std::string::npos);
    EXPECT_NE(doc.find("\"dropped_events\": 0"), std::string::npos);
}

TEST(MetricsSampler, CountersAndGaugesLandInRowsAndTracks) {
    klsm::trace::metrics_sampler sampler{0.002, 0.002};
    std::atomic<std::uint64_t> ops{0};
    sampler.add_counter("ops", [&ops] {
        return static_cast<double>(ops.load(std::memory_order_relaxed));
    });
    sampler.add_gauge("level", [] { return 42.0; });
    sampler.start(); // t=0 row sampled immediately
    for (int i = 0; i < 40 && sampler.samples() < 4; ++i) {
        ops += 100;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    sampler.stop(); // final row
    ASSERT_GE(sampler.samples(), 3u);

    const std::string json = sampler.json();
    EXPECT_NE(json.find("\"interval_ms\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"counter\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"gauge\""), std::string::npos);

    const auto tracks = sampler.counter_tracks();
    ASSERT_EQ(tracks.size(), 2u);
    // Counters become rates; gauges keep their name and level.
    EXPECT_EQ(tracks[0].name, "ops_per_sec");
    EXPECT_EQ(tracks[1].name, "level");
    for (const auto &[ts, v] : tracks[1].points)
        EXPECT_EQ(v, 42.0);
    // Rate points are one fewer than rows (no delta for the t=0 row).
    EXPECT_EQ(tracks[0].points.size(), sampler.samples() - 1);
}

} // namespace
