#include "util/slot_directory.hpp"

#include <gtest/gtest.h>

#include <barrier>
#include <set>
#include <thread>
#include <vector>

namespace klsm {
namespace {

TEST(SlotDirectory, RegisterSelfIsIdempotent) {
    slot_directory dir;
    const std::uint32_t a = dir.register_self();
    const std::uint32_t b = dir.register_self();
    EXPECT_EQ(a, b);
    EXPECT_EQ(dir.size(), 1u);
}

TEST(SlotDirectory, VictimExcludesSelfWhenOthersExist) {
    slot_directory dir;
    const std::uint32_t self = dir.register_self();
    std::thread other([&] { dir.register_self(); });
    other.join();
    ASSERT_EQ(dir.size(), 2u);
    for (int i = 0; i < 50; ++i) {
        const std::uint32_t v = dir.random_victim(self);
        ASSERT_LT(v, max_registered_threads);
        EXPECT_NE(v, self);
    }
}

TEST(SlotDirectory, SingleSlotVictimIsSelf) {
    slot_directory dir;
    const std::uint32_t self = dir.register_self();
    EXPECT_EQ(dir.random_victim(self), self);
}

TEST(SlotDirectory, ConcurrentRegistrationCountsEveryThread) {
    // A barrier keeps all threads alive together so thread-id recycling
    // cannot collapse them onto one slot.
    slot_directory dir;
    constexpr int n = 16;
    std::barrier sync{n};
    std::vector<std::thread> ts;
    for (int t = 0; t < n; ++t)
        ts.emplace_back([&] {
            for (int i = 0; i < 100; ++i)
                dir.register_self();
            sync.arrive_and_wait();
        });
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(dir.size(), static_cast<std::uint32_t>(n));

    std::set<std::uint32_t> slots;
    dir.for_each([&](std::uint32_t s) { slots.insert(s); });
    EXPECT_EQ(slots.size(), static_cast<std::size_t>(n));
}

} // namespace
} // namespace klsm
