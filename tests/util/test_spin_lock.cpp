#include "util/spin_lock.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace klsm {
namespace {

TEST(SpinLock, BasicLockUnlock) {
    spin_lock l;
    EXPECT_FALSE(l.is_locked());
    l.lock();
    EXPECT_TRUE(l.is_locked());
    l.unlock();
    EXPECT_FALSE(l.is_locked());
}

TEST(SpinLock, TryLockFailsWhenHeld) {
    spin_lock l;
    ASSERT_TRUE(l.try_lock());
    EXPECT_FALSE(l.try_lock());
    l.unlock();
    EXPECT_TRUE(l.try_lock());
    l.unlock();
}

TEST(SpinLock, MutualExclusionCounter) {
    spin_lock l;
    long counter = 0;
    constexpr int threads = 4, iters = 20000;
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&] {
            for (int i = 0; i < iters; ++i) {
                l.lock();
                ++counter; // data race iff the lock is broken
                l.unlock();
            }
        });
    }
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(counter, long{threads} * iters);
}

TEST(SpinLock, TryLockMutualExclusion) {
    spin_lock l;
    long counter = 0;
    constexpr int threads = 4, goal = 5000;
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&] {
            int done = 0;
            while (done < goal) {
                if (l.try_lock()) {
                    ++counter;
                    ++done;
                    l.unlock();
                }
            }
        });
    }
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(counter, long{threads} * goal);
}

} // namespace
} // namespace klsm
