#include "util/thread_id.hpp"

#include <gtest/gtest.h>

#include <barrier>
#include <set>
#include <thread>
#include <vector>

namespace klsm {
namespace {

TEST(ThreadId, StableWithinThread) {
    const std::uint32_t a = thread_index();
    const std::uint32_t b = thread_index();
    EXPECT_EQ(a, b);
}

TEST(ThreadId, DistinctAcrossConcurrentThreads) {
    // Ids are recycled at thread exit, so the threads must be provably
    // concurrent: a barrier keeps every thread alive until all have
    // claimed their id.
    constexpr int n = 8;
    std::uint32_t ids[n];
    std::barrier sync{n};
    std::vector<std::thread> ts;
    for (int t = 0; t < n; ++t)
        ts.emplace_back([&, t] {
            ids[t] = thread_index();
            sync.arrive_and_wait();
        });
    for (auto &t : ts)
        t.join();
    std::set<std::uint32_t> unique(ids, ids + n);
    EXPECT_EQ(unique.size(), static_cast<std::size_t>(n));
}

// Ids are recycled at thread exit, so thousands of short-lived threads
// must not exhaust the registry.
TEST(ThreadId, RecyclesSlotsAfterThreadExit) {
    for (int round = 0; round < 50; ++round) {
        std::vector<std::thread> ts;
        for (int t = 0; t < 16; ++t)
            ts.emplace_back([] {
                EXPECT_LT(thread_index(), max_registered_threads);
            });
        for (auto &t : ts)
            t.join();
    }
    // 800 threads total, but never more than ~17 concurrently.
    EXPECT_LT(thread_index_high_water(), 64u);
}

} // namespace
} // namespace klsm
