#include "util/tabulation_hash.hpp"

#include <gtest/gtest.h>

#include <set>

namespace klsm {
namespace {

TEST(TabulationHash, Deterministic) {
    tabulation_hash h{123};
    for (std::uint32_t x : {0u, 1u, 255u, 256u, 0xffffffffu})
        EXPECT_EQ(h(x), h(x));
}

TEST(TabulationHash, SeedsProduceDifferentFunctions) {
    tabulation_hash a{1}, b{2};
    int same = 0;
    for (std::uint32_t x = 0; x < 1000; ++x)
        same += (a(x) == b(x));
    EXPECT_LT(same, 3);
}

TEST(TabulationHash, FewCollisionsOnSmallInputs) {
    tabulation_hash h{777};
    std::set<std::uint64_t> seen;
    for (std::uint32_t x = 0; x < 4096; ++x)
        seen.insert(h(x));
    // 64-bit outputs over 4096 inputs should essentially never collide.
    EXPECT_EQ(seen.size(), 4096u);
}

TEST(TabulationHash, LowBitsSpread) {
    // The Bloom filter uses hash & 63; consecutive thread ids should
    // spread over many of the 64 positions.
    const tabulation_hash &h = thread_hash_a();
    std::set<std::uint64_t> positions;
    for (std::uint32_t tid = 0; tid < 64; ++tid)
        positions.insert(h(tid) & 63);
    EXPECT_GE(positions.size(), 32u);
}

TEST(TabulationHash, GlobalInstancesAreIndependent) {
    int same = 0;
    for (std::uint32_t x = 0; x < 256; ++x)
        same += ((thread_hash_a()(x) & 63) == (thread_hash_b()(x) & 63));
    // Two independent hashes agree on 6 bits with p = 1/64.
    EXPECT_LT(same, 24);
}

} // namespace
} // namespace klsm
