#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

namespace klsm {
namespace {

TEST(Rng, Deterministic) {
    xoroshiro128 a{42}, b{42};
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
    xoroshiro128 a{1}, b{2};
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a() == b());
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedInRange) {
    xoroshiro128 rng{7};
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull,
                                (1ull << 33) + 7}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.bounded(bound), bound);
    }
}

TEST(Rng, BoundedOneAlwaysZero) {
    xoroshiro128 rng{9};
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, RangeInclusive) {
    xoroshiro128 rng{11};
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = rng.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        hit_lo |= (v == 5);
        hit_hi |= (v == 8);
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

// chi-square-ish uniformity smoke test: all 16 buckets within 3x of the
// expected count.
TEST(Rng, BoundedRoughlyUniform) {
    xoroshiro128 rng{13};
    constexpr int buckets = 16, draws = 160000;
    int count[buckets] = {};
    for (int i = 0; i < draws; ++i)
        ++count[rng.bounded(buckets)];
    for (int c : count) {
        EXPECT_GT(c, draws / buckets / 3);
        EXPECT_LT(c, draws / buckets * 3);
    }
}

TEST(Rng, ThreadRngIndependentStreams) {
    std::uint64_t first_draws[4];
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back(
            [&, t] { first_draws[t] = thread_rng()(); });
    for (auto &th : threads)
        th.join();
    std::set<std::uint64_t> unique(first_draws, first_draws + 4);
    EXPECT_EQ(unique.size(), 4u);
}

TEST(Rng, SplitMix64KnownSequenceAdvancesState) {
    std::uint64_t s = 0;
    const std::uint64_t a = splitmix64(s);
    const std::uint64_t b = splitmix64(s);
    EXPECT_NE(a, b);
    EXPECT_NE(s, 0u);
}

} // namespace
} // namespace klsm
