// The absolute-schedule ticker (util/ticker.hpp).
//
// The drift fix is pure arithmetic — tick n fires at start + n*period,
// regardless of how late earlier ticks ran — so the bulk of the suite
// drives `tick_schedule` with fake clock values and never sleeps.  One
// real-thread smoke test at the end checks the periodic_ticker wiring
// (ticks happen, destruction is prompt, empty callbacks are no-ops).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include <gtest/gtest.h>

#include "util/ticker.hpp"

namespace {

using klsm::tick_schedule;

TEST(TickSchedule, DeadlinesSitOnTheAbsoluteGrid) {
    const tick_schedule s{1000, 50};
    EXPECT_EQ(s.deadline_ns(1), 1050u);
    EXPECT_EQ(s.deadline_ns(2), 1100u);
    EXPECT_EQ(s.deadline_ns(10), 1500u);
    // The fix in one assertion: tick 1000 is exactly 1000 periods after
    // start.  A relative re-arm scheme accumulates jitter here.
    EXPECT_EQ(s.deadline_ns(1000), 1000u + 1000u * 50u);
}

TEST(TickSchedule, PeriodIsClampedToAtLeastOneNanosecond) {
    const tick_schedule s{0, 0};
    EXPECT_EQ(s.period_ns(), 1u);
    EXPECT_EQ(s.deadline_ns(7), 7u);
}

TEST(TickSchedule, NextIndexBeforeFirstDeadlineIsOne) {
    const tick_schedule s{1000, 50};
    EXPECT_EQ(s.next_index(0), 1u);
    EXPECT_EQ(s.next_index(1000), 1u);
    EXPECT_EQ(s.next_index(1049), 1u);
}

TEST(TickSchedule, OnTimeCallbackAdvancesByOne) {
    const tick_schedule s{1000, 50};
    // Finished tick 1's callback a little after its deadline but well
    // before tick 2's: the next tick to wait for is 2.
    EXPECT_EQ(s.next_index(1051), 2u);
    EXPECT_EQ(s.next_index(1099), 2u);
}

TEST(TickSchedule, OverrunSkipsMissedTicksWithoutBurst) {
    const tick_schedule s{1000, 50};
    // A callback that overran three whole periods (now = 1230, i.e.
    // deadlines 1050/1100/1150/1200 have all passed) resumes at tick 5
    // (deadline 1250) — the missed ticks are skipped, never replayed.
    EXPECT_EQ(s.next_index(1230), 5u);
    EXPECT_EQ(s.deadline_ns(s.next_index(1230)), 1250u);
}

TEST(TickSchedule, ExactDeadlineBelongsToTheNextTick) {
    const tick_schedule s{1000, 50};
    // next_index returns the first tick strictly after `now`: standing
    // exactly on deadline n means tick n just became due, so the next
    // one to wait for is n + 1.
    EXPECT_EQ(s.next_index(1050), 2u);
    EXPECT_EQ(s.next_index(1100), 3u);
}

TEST(TickSchedule, LongHorizonStaysOnGrid) {
    // The drift scenario from the soak runs: a 5 ms control loop whose
    // callback is consistently 1 ms late.  On the absolute schedule the
    // millionth deadline is still exactly 10^6 periods after start.
    const std::uint64_t period = 5'000'000;
    const tick_schedule s{0, period};
    std::uint64_t n = 1;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t fired_at = s.deadline_ns(n) + 1'000'000;
        n = s.next_index(fired_at);
    }
    // 1 ms lateness < one 5 ms period, so no tick is ever skipped and
    // after 1000 rounds we are waiting for exactly tick 1001.
    EXPECT_EQ(n, 1001u);
    EXPECT_EQ(s.deadline_ns(n), 1001u * period);
}

TEST(PeriodicTicker, TicksAndStopsPromptly) {
    std::atomic<int> ticks{0};
    const auto destroy_start = std::chrono::steady_clock::now();
    {
        klsm::periodic_ticker t{[&ticks] { ++ticks; }, 0.002};
        while (ticks.load() < 3)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const int at_destruction = ticks.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    // Destruction joined the thread: no further ticks.
    EXPECT_EQ(ticks.load(), at_destruction);
    // And it did not block for anything like a long interval.
    const auto elapsed = std::chrono::steady_clock::now() - destroy_start;
    EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 5.0);
}

TEST(PeriodicTicker, DestructionDoesNotWaitOutALongInterval) {
    std::atomic<int> ticks{0};
    const auto start = std::chrono::steady_clock::now();
    {
        klsm::periodic_ticker t{[&ticks] { ++ticks; }, 3600.0};
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 5.0);
    EXPECT_EQ(ticks.load(), 0);
}

TEST(PeriodicTicker, EmptyCallbackAndNonPositiveIntervalAreNoOps) {
    klsm::periodic_ticker a{std::function<void()>{}, 0.001};
    std::atomic<int> ticks{0};
    klsm::periodic_ticker b{[&ticks] { ++ticks; }, 0.0};
    klsm::periodic_ticker c{[&ticks] { ++ticks; }, -1.0};
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(ticks.load(), 0);
}

} // namespace
