// Remaining utility coverage: backoff, wall timer, cache alignment.

#include "util/align.hpp"
#include "util/backoff.hpp"
#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace klsm {
namespace {

TEST(Backoff, RunsAndResets) {
    exp_backoff b{16};
    for (int i = 0; i < 10; ++i)
        b(); // must terminate even past the cap
    b.reset();
    b();
    SUCCEED();
}

TEST(Backoff, CpuRelaxIsCallable) {
    for (int i = 0; i < 100; ++i)
        cpu_relax();
    SUCCEED();
}

TEST(Timer, MeasuresElapsedTime) {
    wall_timer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_GE(t.elapsed_s(), 0.015);
    EXPECT_GE(t.elapsed_ns(), 15'000'000u);
    t.reset();
    EXPECT_LT(t.elapsed_s(), 0.015);
}

TEST(Align, CacheAlignedHasLineAlignment) {
    static_assert(alignof(cache_aligned<int>) == cache_line_size);
    static_assert(sizeof(cache_aligned<char>) >= cache_line_size);
    cache_aligned<int> boxes[4];
    for (int i = 0; i < 4; ++i)
        boxes[i].value = i;
    // Adjacent elements must land on distinct cache lines.
    for (int i = 1; i < 4; ++i) {
        const auto a = reinterpret_cast<std::uintptr_t>(&boxes[i - 1]);
        const auto b = reinterpret_cast<std::uintptr_t>(&boxes[i]);
        EXPECT_GE(b - a, cache_line_size);
    }
    EXPECT_EQ(*boxes[2], 2);
    boxes[2].value = 7;
    EXPECT_EQ(boxes[2].value, 7);
}

TEST(Align, AccessorsWork) {
    cache_aligned<std::pair<int, int>> box{{1, 2}};
    EXPECT_EQ(box->first, 1);
    EXPECT_EQ((*box).second, 2);
    const auto &cbox = box;
    EXPECT_EQ(cbox->first, 1);
    EXPECT_EQ((*cbox).second, 2);
}

} // namespace
} // namespace klsm
