#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace klsm {
namespace {

cli_parser make_parser() {
    cli_parser p("test");
    p.add_flag("threads", "4", "thread count");
    p.add_flag("duration", "0.5", "seconds");
    p.add_flag("queues", "a,b,c", "queue list");
    p.add_flag("verbose", "false", "verbosity");
    return p;
}

TEST(Cli, Defaults) {
    cli_parser p = make_parser();
    char prog[] = "prog";
    char *argv[] = {prog};
    p.parse(1, argv);
    EXPECT_EQ(p.get_int("threads"), 4);
    EXPECT_DOUBLE_EQ(p.get_double("duration"), 0.5);
    EXPECT_FALSE(p.get_bool("verbose"));
}

TEST(Cli, SpaceSeparatedValues) {
    cli_parser p = make_parser();
    char prog[] = "prog", f[] = "--threads", v[] = "16";
    char *argv[] = {prog, f, v};
    p.parse(3, argv);
    EXPECT_EQ(p.get_int("threads"), 16);
}

TEST(Cli, EqualsSeparatedValues) {
    cli_parser p = make_parser();
    char prog[] = "prog", f[] = "--duration=2.25";
    char *argv[] = {prog, f};
    p.parse(2, argv);
    EXPECT_DOUBLE_EQ(p.get_double("duration"), 2.25);
}

TEST(Cli, IntListParsing) {
    cli_parser p("test");
    p.add_flag("threads", "1,2,4,8", "sweep");
    char prog[] = "prog";
    char *argv[] = {prog};
    p.parse(1, argv);
    const auto v = p.get_int_list("threads");
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], 1);
    EXPECT_EQ(v[3], 8);
}

TEST(Cli, StringListParsing) {
    cli_parser p = make_parser();
    char prog[] = "prog", f[] = "--queues=klsm256,dlsm";
    char *argv[] = {prog, f};
    p.parse(2, argv);
    const auto v = p.get_list("queues");
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], "klsm256");
    EXPECT_EQ(v[1], "dlsm");
}

TEST(Cli, BoolVariants) {
    for (const char *val : {"1", "true", "yes", "on"}) {
        cli_parser p = make_parser();
        std::string arg = std::string("--verbose=") + val;
        char prog[] = "prog";
        std::vector<char> buf(arg.begin(), arg.end());
        buf.push_back('\0');
        char *argv[] = {prog, buf.data()};
        p.parse(2, argv);
        EXPECT_TRUE(p.get_bool("verbose")) << val;
    }
}

} // namespace
} // namespace klsm
