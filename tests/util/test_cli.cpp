#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace klsm {
namespace {

cli_parser make_parser() {
    cli_parser p("test");
    p.add_flag("threads", "4", "thread count");
    p.add_flag("duration", "0.5", "seconds");
    p.add_flag("queues", "a,b,c", "queue list");
    p.add_flag("verbose", "false", "verbosity");
    return p;
}

TEST(Cli, Defaults) {
    cli_parser p = make_parser();
    char prog[] = "prog";
    char *argv[] = {prog};
    p.parse(1, argv);
    EXPECT_EQ(p.get_int("threads"), 4);
    EXPECT_DOUBLE_EQ(p.get_double("duration"), 0.5);
    EXPECT_FALSE(p.get_bool("verbose"));
}

TEST(Cli, SpaceSeparatedValues) {
    cli_parser p = make_parser();
    char prog[] = "prog", f[] = "--threads", v[] = "16";
    char *argv[] = {prog, f, v};
    p.parse(3, argv);
    EXPECT_EQ(p.get_int("threads"), 16);
}

TEST(Cli, EqualsSeparatedValues) {
    cli_parser p = make_parser();
    char prog[] = "prog", f[] = "--duration=2.25";
    char *argv[] = {prog, f};
    p.parse(2, argv);
    EXPECT_DOUBLE_EQ(p.get_double("duration"), 2.25);
}

TEST(Cli, IntListParsing) {
    cli_parser p("test");
    p.add_flag("threads", "1,2,4,8", "sweep");
    char prog[] = "prog";
    char *argv[] = {prog};
    p.parse(1, argv);
    const auto v = p.get_int_list("threads");
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], 1);
    EXPECT_EQ(v[3], 8);
}

TEST(Cli, StringListParsing) {
    cli_parser p = make_parser();
    char prog[] = "prog", f[] = "--queues=klsm256,dlsm";
    char *argv[] = {prog, f};
    p.parse(2, argv);
    const auto v = p.get_list("queues");
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], "klsm256");
    EXPECT_EQ(v[1], "dlsm");
}

TEST(Cli, Uint64FullRange) {
    // Seeds are full 64-bit hashes; get_int (stoll) cannot represent
    // values above INT64_MAX.  get_uint64 must.
    cli_parser p("test");
    p.add_flag("seed", "1", "rng seed");
    char prog[] = "prog", f[] = "--seed=18446744073709551615";
    char *argv[] = {prog, f};
    p.parse(2, argv);
    EXPECT_EQ(p.get_uint64("seed"), 18446744073709551615ULL);
}

TEST(Cli, Uint64AboveIntMax) {
    cli_parser p("test");
    // 2^31 and 2^63 - 1: both overflow the old int cast path.
    p.add_flag("seed", "9223372036854775807", "rng seed");
    char prog[] = "prog";
    char *argv[] = {prog};
    p.parse(1, argv);
    EXPECT_EQ(p.get_uint64("seed"), 9223372036854775807ULL);
}

TEST(CliDeathTest, Uint64RejectsGarbage) {
    // Strict parse: trailing garbage, scientific notation, negatives
    // and overflow all exit(2) instead of silently truncating/wrapping.
    for (const char *bad : {"1e6", "12abc", "-1", "+1", "", " -1", " 5",
                            "18446744073709551616"}) {
        cli_parser p("test");
        p.add_flag("seed", "1", "rng seed");
        std::string arg = std::string("--seed=") + bad;
        std::vector<char> buf(arg.begin(), arg.end());
        buf.push_back('\0');
        char prog[] = "prog";
        char *argv[] = {prog, buf.data()};
        p.parse(2, argv);
        EXPECT_EXIT(p.get_uint64("seed"), ::testing::ExitedWithCode(2),
                    "--seed")
            << "input: " << bad;
    }
}

TEST(CliDeathTest, IntStillRejectsTrailingGarbage) {
    cli_parser p = make_parser();
    char prog[] = "prog", f[] = "--threads=1e6";
    char *argv[] = {prog, f};
    p.parse(2, argv);
    EXPECT_EXIT(p.get_int("threads"), ::testing::ExitedWithCode(2),
                "--threads");
}

TEST(Cli, BoolVariants) {
    for (const char *val : {"1", "true", "yes", "on"}) {
        cli_parser p = make_parser();
        std::string arg = std::string("--verbose=") + val;
        char prog[] = "prog";
        std::vector<char> buf(arg.begin(), arg.end());
        buf.push_back('\0');
        char *argv[] = {prog, buf.data()};
        p.parse(2, argv);
        EXPECT_TRUE(p.get_bool("verbose")) << val;
    }
}

} // namespace
} // namespace klsm
