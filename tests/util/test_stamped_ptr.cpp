#include "util/stamped_ptr.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

namespace klsm {
namespace {

struct alignas(2048) dummy {
    int payload = 0;
};

TEST(StampedPtr, RoundTripPointerAndStamp) {
    auto obj = std::make_unique<dummy>();
    for (std::uint64_t version : {0ull, 1ull, 1023ull, 1024ull, 99999ull}) {
        stamped_ptr<dummy> p(obj.get(), version);
        EXPECT_EQ(p.ptr(), obj.get());
        EXPECT_EQ(p.stamp(), version & 1023);
        EXPECT_TRUE(p.matches(version));
    }
}

TEST(StampedPtr, NullPointer) {
    stamped_ptr<dummy> p;
    EXPECT_EQ(p.ptr(), nullptr);
    EXPECT_EQ(p.stamp(), 0u);
}

TEST(StampedPtr, MismatchDetectsRecycledVersion) {
    auto obj = std::make_unique<dummy>();
    stamped_ptr<dummy> p(obj.get(), 41);
    EXPECT_TRUE(p.matches(41));
    EXPECT_FALSE(p.matches(42)); // object recycled once
    // ... but a full wraparound of the 10-bit stamp aliases — exactly the
    // risk the paper accepts and minimizes with the pre-CAS verify.
    EXPECT_TRUE(p.matches(41 + 1024));
}

TEST(StampedPtr, EqualityIncludesStamp) {
    auto obj = std::make_unique<dummy>();
    stamped_ptr<dummy> a(obj.get(), 1);
    stamped_ptr<dummy> b(obj.get(), 1);
    stamped_ptr<dummy> c(obj.get(), 2);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(StampedPtr, AtomicCompareExchangeStampPreventsABA) {
    auto obj = std::make_unique<dummy>();
    atomic_stamped_ptr<dummy> cell;
    cell.store(stamped_ptr<dummy>(obj.get(), 7));

    // Same pointer, different stamp: CAS must fail (the ABA case).
    stamped_ptr<dummy> stale(obj.get(), 6);
    stamped_ptr<dummy> desired(obj.get(), 8);
    EXPECT_FALSE(cell.compare_exchange(stale, desired));

    stamped_ptr<dummy> current(obj.get(), 7);
    EXPECT_TRUE(cell.compare_exchange(current, desired));
    EXPECT_EQ(cell.load().stamp(), 8u);
}

TEST(StampedPtr, RawRoundTrip) {
    auto obj = std::make_unique<dummy>();
    stamped_ptr<dummy> p(obj.get(), 321);
    auto q = stamped_ptr<dummy>::from_raw(p.raw());
    EXPECT_EQ(p, q);
}

} // namespace
} // namespace klsm
