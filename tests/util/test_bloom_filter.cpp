#include "util/bloom_filter.hpp"

#include <gtest/gtest.h>

namespace klsm {
namespace {

TEST(BloomFilter, EmptyContainsNothing) {
    thread_bloom_filter f;
    EXPECT_TRUE(f.empty());
    for (std::uint32_t id = 0; id < 64; ++id)
        EXPECT_FALSE(f.may_contain(id));
}

// The property local ordering depends on: no false negatives, ever.
TEST(BloomFilter, NoFalseNegatives) {
    for (std::uint32_t id = 0; id < 256; ++id) {
        thread_bloom_filter f;
        f.insert(id);
        EXPECT_TRUE(f.may_contain(id)) << "false negative for id " << id;
    }
}

TEST(BloomFilter, NoFalseNegativesAfterMerge) {
    thread_bloom_filter a, b;
    for (std::uint32_t id = 0; id < 16; ++id)
        a.insert(id);
    for (std::uint32_t id = 16; id < 32; ++id)
        b.insert(id);
    a.merge(b);
    for (std::uint32_t id = 0; id < 32; ++id)
        EXPECT_TRUE(a.may_contain(id));
}

TEST(BloomFilter, FalsePositiveRateIsModerate) {
    thread_bloom_filter f;
    for (std::uint32_t id = 0; id < 4; ++id)
        f.insert(id);
    int fp = 0;
    for (std::uint32_t id = 4; id < 260; ++id)
        fp += f.may_contain(id);
    // 4 inserted ids set <= 8 of 64 bits; two-probe false positive rate is
    // about (8/64)^2 ~ 1.6%, so 256 probes should see only a handful.
    EXPECT_LT(fp, 40);
}

TEST(BloomFilter, ClearResets) {
    thread_bloom_filter f;
    f.insert(7);
    EXPECT_FALSE(f.empty());
    f.clear();
    EXPECT_TRUE(f.empty());
    EXPECT_FALSE(f.may_contain(7));
}

TEST(BloomFilter, MergeIsUnionOfBits) {
    thread_bloom_filter a, b;
    a.insert(3);
    b.insert(5);
    const std::uint64_t expected = a.raw() | b.raw();
    a.merge(b);
    EXPECT_EQ(a.raw(), expected);
}

} // namespace
} // namespace klsm
