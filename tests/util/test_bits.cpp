#include "util/bits.hpp"

#include <gtest/gtest.h>

namespace klsm {
namespace {

TEST(Bits, Log2Floor) {
    EXPECT_EQ(log2_floor(1), 0u);
    EXPECT_EQ(log2_floor(2), 1u);
    EXPECT_EQ(log2_floor(3), 1u);
    EXPECT_EQ(log2_floor(4), 2u);
    EXPECT_EQ(log2_floor(7), 2u);
    EXPECT_EQ(log2_floor(8), 3u);
    EXPECT_EQ(log2_floor(std::uint64_t{1} << 63), 63u);
    EXPECT_EQ(log2_floor((std::uint64_t{1} << 63) + 5), 63u);
}

TEST(Bits, Log2Ceil) {
    EXPECT_EQ(log2_ceil(1), 0u);
    EXPECT_EQ(log2_ceil(2), 1u);
    EXPECT_EQ(log2_ceil(3), 2u);
    EXPECT_EQ(log2_ceil(4), 2u);
    EXPECT_EQ(log2_ceil(5), 3u);
    EXPECT_EQ(log2_ceil(8), 3u);
    EXPECT_EQ(log2_ceil(9), 4u);
}

TEST(Bits, Log2RoundTrip) {
    for (unsigned l = 0; l < 30; ++l) {
        const std::uint64_t p = std::uint64_t{1} << l;
        EXPECT_EQ(log2_floor(p), l);
        EXPECT_EQ(log2_ceil(p), l);
        if (p > 2) {
            EXPECT_EQ(log2_ceil(p - 1), l);
            EXPECT_EQ(log2_floor(p + 1), l);
        }
    }
}

TEST(Bits, NextPow2) {
    EXPECT_EQ(next_pow2(1), 1u);
    EXPECT_EQ(next_pow2(2), 2u);
    EXPECT_EQ(next_pow2(3), 4u);
    EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Bits, IsPow2) {
    EXPECT_FALSE(is_pow2(0));
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(2));
    EXPECT_FALSE(is_pow2(3));
    EXPECT_TRUE(is_pow2(1024));
    EXPECT_FALSE(is_pow2(1025));
}

// The LSM level rule: a block of level l stores n keys with
// 2^(l-1) < n <= 2^l, i.e. level = log2_ceil(n).
TEST(Bits, LevelRule) {
    for (std::uint64_t n = 1; n <= 4096; ++n) {
        const unsigned l = log2_ceil(n);
        EXPECT_LE(n, std::uint64_t{1} << l);
        if (l > 0) {
            EXPECT_GT(n, std::uint64_t{1} << (l - 1));
        }
    }
}

} // namespace
} // namespace klsm
