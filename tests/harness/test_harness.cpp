#include "harness/quality.hpp"
#include "harness/throughput.hpp"
#include "harness/workload.hpp"

#include "baselines/spin_heap.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/parallel_sssp.hpp"
#include "klsm/k_lsm.hpp"
#include "topo/pinning.hpp"
#include "util/thread_id.hpp"

#include <gtest/gtest.h>

namespace klsm {
namespace {

TEST(Workload, PrefillInsertsExactCount) {
    spin_heap<std::uint32_t, std::uint64_t> q;
    prefill_queue(q, 10000, 1, 32, 4);
    EXPECT_EQ(q.size_hint(), 10000u);
}

TEST(Workload, PrefillSingleThreaded) {
    spin_heap<std::uint32_t, std::uint64_t> q;
    prefill_queue(q, 500, 2, 32, 1);
    EXPECT_EQ(q.size_hint(), 500u);
}

TEST(Workload, PrefillRespectsKeyBits) {
    spin_heap<std::uint32_t, std::uint64_t> q;
    prefill_queue(q, 1000, 3, 8, 2);
    std::uint32_t k;
    std::uint64_t v;
    while (q.try_delete_min(k, v))
        EXPECT_LT(k, 256u);
}

TEST(Throughput, CountsAreConsistent) {
    spin_heap<std::uint32_t, std::uint64_t> q;
    prefill_queue(q, 1000, 4);
    throughput_params params;
    params.threads = 2;
    params.duration_s = 0.1;
    auto res = run_throughput(q, params);
    EXPECT_GT(res.total_ops, 0u);
    EXPECT_EQ(res.total_ops,
              res.inserts + res.deletes + res.failed_deletes);
    EXPECT_GE(res.elapsed_s, 0.1);
    EXPECT_GT(res.ops_per_sec(), 0.0);
    EXPECT_GT(res.ops_per_thread_per_sec(2), 0.0);
}

TEST(Throughput, FiftyFiftyMixIsRoughlyBalanced) {
    spin_heap<std::uint32_t, std::uint64_t> q;
    prefill_queue(q, 100000, 5);
    throughput_params params;
    params.threads = 1;
    params.duration_s = 0.2;
    auto res = run_throughput(q, params);
    // With a large prefill, deletes rarely fail; insert/delete counts
    // should be within a few percent of each other.
    const double ratio = static_cast<double>(res.inserts) /
                         static_cast<double>(res.deletes + 1);
    EXPECT_GT(ratio, 0.8);
    EXPECT_LT(ratio, 1.25);
    EXPECT_LT(res.failed_deletes, res.total_ops / 100);
}

TEST(Quality, ExactQueueHasZeroRankError) {
    spin_heap<std::uint32_t, std::uint64_t> q;
    quality_params params;
    params.prefill = 2000;
    params.ops_per_thread = 3000;
    params.threads = 2;
    auto res = measure_rank_error(q, params);
    EXPECT_GT(res.deletes, 0u);
    EXPECT_EQ(res.rank_max, 0u) << "an exact queue never skips keys";
    EXPECT_EQ(res.mean_rank(), 0.0);
}

TEST(Quality, KLsmRankErrorWithinRho) {
    constexpr std::size_t k = 8;
    constexpr unsigned threads = 3;
    k_lsm<std::uint32_t, std::uint64_t> q{k};
    quality_params params;
    params.prefill = 2000;
    params.ops_per_thread = 4000;
    params.threads = threads;
    auto res = measure_rank_error(q, params);
    EXPECT_GT(res.deletes, 0u);
    // The prefill runs on the main thread, so it counts toward T
    // (rank_error_bound = (threads + 1) * k).
    EXPECT_LE(res.rank_max, rank_error_bound(threads, k))
        << "observed rank error beyond the rho = T*k guarantee";
}

TEST(Quality, LargerKGivesLargerObservedRankError) {
    auto run = [](std::size_t k) {
        k_lsm<std::uint32_t, std::uint64_t> q{k};
        quality_params params;
        params.prefill = 5000;
        params.ops_per_thread = 5000;
        params.threads = 2;
        return measure_rank_error(q, params).mean_rank();
    };
    const double small = run(0);
    const double large = run(1024);
    EXPECT_LE(small, large + 0.001)
        << "k = 0 should be at least as exact as k = 1024";
    EXPECT_GT(large, 0.5) << "k = 1024 should show measurable relaxation";
}

TEST(ThreadCapacity, HarnessesFailFastInsteadOfTerminating) {
    // Requesting more worker threads than the thread-id registry can
    // seat used to throw inside a worker std::thread, which terminates
    // the whole process with no diagnostic.  Every harness now rejects
    // the run up front, on the calling thread.
    spin_heap<std::uint32_t, std::uint64_t> q;

    throughput_params tp;
    tp.threads = max_registered_threads;
    EXPECT_THROW(run_throughput(q, tp), std::invalid_argument);

    quality_params qp;
    qp.threads = max_registered_threads + 7;
    EXPECT_THROW(measure_rank_error(q, qp), std::invalid_argument);

    erdos_renyi_params gp;
    gp.nodes = 10;
    gp.edge_probability = 0.3;
    const graph g = make_erdos_renyi(gp);
    sssp_state state{g.num_nodes()};
    spin_heap<std::uint64_t, std::uint32_t> pq;
    EXPECT_THROW(
        parallel_sssp(pq, g, 0, max_registered_threads, state),
        std::invalid_argument);
}

TEST(ThreadCapacity, BoundaryIsOneBelowTheRegistrySize) {
    EXPECT_NO_THROW(check_thread_capacity(0));
    EXPECT_NO_THROW(check_thread_capacity(1));
    EXPECT_NO_THROW(check_thread_capacity(max_registered_threads - 1));
    EXPECT_THROW(check_thread_capacity(max_registered_threads),
                 std::invalid_argument);
    try {
        check_thread_capacity(max_registered_threads);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        // The message must name the limit so users know what to change.
        EXPECT_NE(std::string(e.what()).find(
                      std::to_string(max_registered_threads)),
                  std::string::npos);
    }
}

TEST(Throughput, PinnedWorkersMatchUnpinnedSemantics) {
    // Pinning must not change what the benchmark computes, only where
    // it runs: counts stay consistent with every policy order.
    spin_heap<std::uint32_t, std::uint64_t> q;
    prefill_queue(q, 1000, 6);
    throughput_params params;
    params.threads = 2;
    params.duration_s = 0.05;
    params.pin_cpus =
        topo::cpu_order(topo::topology::system(), topo::pin_policy::compact);
    ASSERT_FALSE(params.pin_cpus.empty());
    const auto res = run_throughput(q, params);
    EXPECT_GT(res.total_ops, 0u);
    EXPECT_EQ(res.total_ops,
              res.inserts + res.deletes + res.failed_deletes);
}

TEST(Throughput, LatencyCaptureCountsMatchSampling) {
    spin_heap<std::uint32_t, std::uint64_t> q;
    prefill_queue(q, 5000, 7);
    throughput_params params;
    params.threads = 2;
    params.duration_s = 0.1;
    stats::latency_recorder_set recs{params.threads, 2};
    params.latency = &recs;
    const auto res = run_throughput(q, params);
    const auto ins = recs.merged(stats::op_kind::insert);
    const auto del = recs.merged(stats::op_kind::delete_min);
    EXPECT_GT(ins.count(), 0u);
    EXPECT_GT(del.count(), 0u);
    // Stride 2 samples every second attempt of each kind; failed deletes
    // consume a sampling tick without recording, hence <=.
    EXPECT_LE(ins.count(), res.inserts / 2 + params.threads);
    EXPECT_LE(del.count(), (res.deletes + res.failed_deletes) / 2 +
                               params.threads);
    EXPECT_GE(ins.count(), res.inserts / 2 - params.threads);
    // Real operations take measurable time; percentile ordering holds.
    EXPECT_GT(ins.mean(), 0.0);
    EXPECT_LE(ins.percentile(50), ins.percentile(99));
    EXPECT_LE(ins.percentile(99), ins.max());
}

TEST(Throughput, NullLatencySetMatchesSeedBehavior) {
    // The default (no recorder set) path must keep working untouched.
    spin_heap<std::uint32_t, std::uint64_t> q;
    prefill_queue(q, 1000, 8);
    throughput_params params;
    params.threads = 2;
    params.duration_s = 0.05;
    EXPECT_EQ(params.latency, nullptr);
    const auto res = run_throughput(q, params);
    EXPECT_GT(res.total_ops, 0u);
}

TEST(Quality, LatencyCaptureSeparatesOpKinds) {
    k_lsm<std::uint32_t, std::uint64_t> q{64};
    quality_params params;
    params.prefill = 1000;
    params.ops_per_thread = 2000;
    params.threads = 2;
    stats::latency_recorder_set recs{params.threads, 1};
    params.latency = &recs;
    const auto res = measure_rank_error(q, params);
    const auto ins = recs.merged(stats::op_kind::insert);
    const auto del = recs.merged(stats::op_kind::delete_min);
    EXPECT_GT(ins.count(), 0u);
    EXPECT_GT(del.count(), 0u);
    // Stride 1 on successful deletes only: recorded deletes can never
    // exceed the harness's delete count.
    EXPECT_LE(del.count(), res.deletes);
    EXPECT_GT(ins.mean(), 0.0);
}

TEST(Sssp, LatencyCaptureRecordsInsertsAndPops) {
    erdos_renyi_params gp;
    gp.nodes = 300;
    gp.edge_probability = 0.1;
    gp.seed = 5;
    const graph g = make_erdos_renyi(gp);
    sssp_state state{g.num_nodes()};
    spin_heap<std::uint64_t, std::uint32_t> pq;
    stats::latency_recorder_set recs{2, 1};
    const auto stats_out =
        parallel_sssp(pq, g, 0, 2, state, {}, &recs);
    const auto ins = recs.merged(stats::op_kind::insert);
    const auto del = recs.merged(stats::op_kind::delete_min);
    EXPECT_GT(ins.count(), 0u);
    EXPECT_GT(del.count(), 0u);
    // Every successful pop is an expansion or a stale skip; only
    // successful pops are recorded.
    EXPECT_LE(del.count(), stats_out.expansions + stats_out.stale_pops);
    // Every queue entry except the seed came from a recorded insert.
    EXPECT_LE(ins.count(),
              stats_out.expansions + stats_out.stale_pops);
}

TEST(Quality, HistogramSumsToDeletes) {
    k_lsm<std::uint32_t, std::uint64_t> q{64};
    quality_params params;
    params.prefill = 1000;
    params.ops_per_thread = 2000;
    params.threads = 2;
    auto res = measure_rank_error(q, params);
    std::uint64_t total = 0;
    for (auto h : res.histogram)
        total += h;
    EXPECT_EQ(total, res.deletes);
}

} // namespace
} // namespace klsm
