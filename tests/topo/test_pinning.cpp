// Pinning policies: exact placement orders against the fixture machine
// (see test_topology.cpp for its shape), plus pin_self on the real host.

#include "topo/pinning.hpp"

#include <thread>

#include <gtest/gtest.h>

namespace klsm::topo {
namespace {

topology fixture() {
    return topology::discover(std::string(KLSM_TOPO_FIXTURE_DIR) +
                              "/fake_sysfs");
}

TEST(PinPolicy, NamesRoundTrip) {
    for (const auto p : {pin_policy::none, pin_policy::compact,
                         pin_policy::scatter, pin_policy::numa_fill}) {
        const auto parsed = parse_pin_policy(pin_policy_name(p));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, p);
    }
    EXPECT_FALSE(parse_pin_policy("").has_value());
    EXPECT_FALSE(parse_pin_policy("Compact").has_value());
    EXPECT_FALSE(parse_pin_policy("numa").has_value());
}

TEST(PinPolicy, NoneIsEmpty) {
    EXPECT_TRUE(cpu_order(fixture(), pin_policy::none).empty());
}

// Fixture layout reminder: package0 = cores {0:(0,4), 1:(1,[5 off])},
// package1 = cores {0:(2,6), 1:(3,7)}; node0 = {0,2,4,6},
// node1 = {1,3,7}.

TEST(PinPolicy, CompactFillsCoreThenPackage) {
    // (package, core, smt_rank) lexicographic: both threads of a core
    // before the next core, all of package0 before package1.
    EXPECT_EQ(cpu_order(fixture(), pin_policy::compact),
              (std::vector<std::uint32_t>{0, 4, 1, 2, 6, 3, 7}));
}

TEST(PinPolicy, ScatterRoundRobinsPackagesCoresFirst) {
    // Physical cores of each package first (smt_rank 0), alternating
    // packages; SMT siblings only after every physical core is used.
    EXPECT_EQ(cpu_order(fixture(), pin_policy::scatter),
              (std::vector<std::uint32_t>{0, 2, 1, 3, 4, 6, 7}));
}

TEST(PinPolicy, NumaFillDrainsNodeZeroFirst) {
    // All of node0 (compact within the node, crossing packages in this
    // interleaved fixture), then node1.
    EXPECT_EQ(cpu_order(fixture(), pin_policy::numa_fill),
              (std::vector<std::uint32_t>{0, 4, 2, 6, 1, 3, 7}));
}

TEST(PinPolicy, AllPoliciesCoverEveryOnlineCpuOnce) {
    const topology t = fixture();
    for (const auto p : {pin_policy::compact, pin_policy::scatter,
                         pin_policy::numa_fill}) {
        auto order = cpu_order(t, p);
        ASSERT_EQ(order.size(), t.num_cpus()) << pin_policy_name(p);
        std::sort(order.begin(), order.end());
        EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 6, 7}))
            << pin_policy_name(p);
    }
}

TEST(PinPolicy, ByNameLookup) {
    const topology t = fixture();
    const auto order = cpu_order(t, std::string("compact"));
    ASSERT_TRUE(order.has_value());
    EXPECT_EQ(order->size(), t.num_cpus());
    EXPECT_FALSE(cpu_order(t, std::string("bogus")).has_value());
}

TEST(PinPolicy, FallbackTopologyOrdersAreIdentity) {
    const topology t = topology::fallback(4);
    const std::vector<std::uint32_t> identity{0, 1, 2, 3};
    EXPECT_EQ(cpu_order(t, pin_policy::compact), identity);
    EXPECT_EQ(cpu_order(t, pin_policy::scatter), identity);
    EXPECT_EQ(cpu_order(t, pin_policy::numa_fill), identity);
}

TEST(PinSelf, PinsASpawnedThreadToARealCpu) {
#if !defined(__linux__)
    GTEST_SKIP() << "pin_self is Linux-only";
#else
    // Pin to a cpu from the process's *allowed* mask, not from the
    // discovered topology: under a restricted cpuset (docker
    // --cpuset-cpus) the fallback topology invents os_ids that the
    // kernel would reject.
    cpu_set_t allowed;
    CPU_ZERO(&allowed);
    ASSERT_EQ(sched_getaffinity(0, sizeof(allowed), &allowed), 0);
    std::uint32_t target = ~0u;
    for (std::uint32_t c = 0; c < CPU_SETSIZE; ++c) {
        if (CPU_ISSET(c, &allowed)) {
            target = c;
            break;
        }
    }
    ASSERT_NE(target, ~0u);
    bool pinned = false;
    std::uint32_t observed = ~0u;
    std::thread t([&] {
        pinned = pin_self(target);
        const auto cpu = current_cpu();
        observed = cpu ? *cpu : ~0u;
    });
    t.join();
    EXPECT_TRUE(pinned);
    EXPECT_EQ(observed, target);
#endif
}

TEST(PinSelf, StaleCpuIdFailsGracefully) {
    // A cpu id far beyond the machine: setaffinity refuses, returns
    // false, and the thread keeps running unpinned.
    std::thread t([] { EXPECT_FALSE(pin_self(100000)); });
    t.join();
}

} // namespace
} // namespace klsm::topo
