// Topology discovery against the checked-in fake sysfs tree
// (tests/topo/fixtures/fake_sysfs) plus generated edge-case trees.
//
// The fixture models a deliberately awkward machine:
//   2 packages x 2 cores x 2 SMT threads = cpus 0-7, with
//   cpu5 offline (a hole: its core keeps one online thread) and an
//   interleaved sub-NUMA-cluster split (node0 = {0,2,4,6},
//   node1 = {1,3,5,7}) so nodes do not coincide with packages.

#include "topo/topology.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace klsm::topo {
namespace {

std::string fixture_root() {
    return std::string(KLSM_TOPO_FIXTURE_DIR) + "/fake_sysfs";
}

TEST(ParseCpulist, RangesAndSingles) {
    std::vector<std::uint32_t> v;
    ASSERT_TRUE(parse_cpulist("0-3,5,8-9", v));
    EXPECT_EQ(v, (std::vector<std::uint32_t>{0, 1, 2, 3, 5, 8, 9}));
    ASSERT_TRUE(parse_cpulist("7", v));
    EXPECT_EQ(v, (std::vector<std::uint32_t>{7}));
    ASSERT_TRUE(parse_cpulist("0-4,6-7\n", v));
    EXPECT_EQ(v, (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 6, 7}));
}

TEST(ParseCpulist, EmptyIsValidAndEmpty) {
    // Memory-only NUMA nodes publish an empty cpulist.
    std::vector<std::uint32_t> v;
    ASSERT_TRUE(parse_cpulist("", v));
    EXPECT_TRUE(v.empty());
    ASSERT_TRUE(parse_cpulist("\n", v));
    EXPECT_TRUE(v.empty());
}

TEST(ParseCpulist, RejectsMalformed) {
    std::vector<std::uint32_t> v;
    EXPECT_FALSE(parse_cpulist("3-1", v)) << "reversed range";
    EXPECT_FALSE(parse_cpulist("a", v));
    EXPECT_FALSE(parse_cpulist("1,,2", v));
    EXPECT_FALSE(parse_cpulist("1,", v)) << "trailing comma";
    EXPECT_FALSE(parse_cpulist("1-", v)) << "open range";
    EXPECT_FALSE(parse_cpulist("-3", v));
    // Ids beyond any real NR_CPUS are rejected outright: a hostile or
    // corrupt cpulist must not be able to balloon the expansion (and
    // 4294967295 once wrapped the uint32 range counter into an
    // infinite loop).
    EXPECT_FALSE(parse_cpulist("4294967295", v));
    EXPECT_FALSE(parse_cpulist("0-100000000", v));
    EXPECT_FALSE(parse_cpulist("65536", v));
    EXPECT_TRUE(v.empty()) << "failed parse must leave the output empty";
}

TEST(ParseCpulist, DeduplicatesAndSorts) {
    std::vector<std::uint32_t> v;
    ASSERT_TRUE(parse_cpulist("5,1-3,2", v));
    EXPECT_EQ(v, (std::vector<std::uint32_t>{1, 2, 3, 5}));
}

TEST(Discover, FixtureCounts) {
    const topology t = topology::discover(fixture_root());
    ASSERT_TRUE(t.from_sysfs());
    EXPECT_EQ(t.num_cpus(), 7u) << "cpu5 is offline";
    EXPECT_EQ(t.num_packages(), 2u);
    EXPECT_EQ(t.num_nodes(), 2u);
    EXPECT_EQ(t.num_cores(), 4u);
    EXPECT_TRUE(t.smt());
    EXPECT_EQ(t.node_ids(), (std::vector<std::uint32_t>{0, 1}));
}

TEST(Discover, FixturePerCpuRecords) {
    const topology t = topology::discover(fixture_root());
    ASSERT_EQ(t.cpus().size(), 7u);
    // {os_id, package, core, node, smt_rank}, sorted by os_id.
    const std::vector<logical_cpu> expected{
        {0, 0, 0, 0, 0}, {1, 0, 1, 1, 0}, {2, 1, 0, 0, 0},
        {3, 1, 1, 1, 0}, {4, 0, 0, 0, 1}, {6, 1, 0, 0, 1},
        {7, 1, 1, 1, 1},
    };
    EXPECT_EQ(t.cpus(), expected);
}

TEST(Discover, FixtureOfflineHole) {
    const topology t = topology::discover(fixture_root());
    for (const auto &c : t.cpus())
        EXPECT_NE(c.os_id, 5u);
    // cpu1's core nominally holds {1,5}; with 5 offline the core has one
    // online thread and cpu1 keeps rank 0.
    EXPECT_EQ(t.cpus()[1].os_id, 1u);
    EXPECT_EQ(t.cpus()[1].smt_rank, 0u);
    // node_of on the offline cpu falls back to the first node.
    EXPECT_EQ(t.node_of(5), 0u);
}

TEST(Discover, NodeLookups) {
    const topology t = topology::discover(fixture_root());
    EXPECT_EQ(t.node_of(0), 0u);
    EXPECT_EQ(t.node_of(1), 1u);
    EXPECT_EQ(t.node_of(6), 0u);
    EXPECT_EQ(t.node_of(7), 1u);
    EXPECT_EQ(t.node_index(0), 0u);
    EXPECT_EQ(t.node_index(1), 1u);
    const auto n0 = t.cpus_of_node(0);
    ASSERT_EQ(n0.size(), 4u);
    EXPECT_EQ(n0[0].os_id, 0u);
    EXPECT_EQ(n0[1].os_id, 2u);
    EXPECT_EQ(n0[2].os_id, 4u);
    EXPECT_EQ(n0[3].os_id, 6u);
    EXPECT_EQ(t.cpus_of_node(1).size(), 3u) << "cpu5 offline";
}

TEST(Discover, MissingTreeFallsBack) {
    const topology t = topology::discover("/nonexistent/sysfs/root");
    EXPECT_FALSE(t.from_sysfs());
    EXPECT_GE(t.num_cpus(), 1u);
    EXPECT_EQ(t.num_packages(), 1u);
    EXPECT_EQ(t.num_nodes(), 1u);
    EXPECT_FALSE(t.smt());
}

TEST(Discover, MalformedOnlineFallsBack) {
    namespace fs = std::filesystem;
    const fs::path root =
        fs::temp_directory_path() / "klsm_topo_malformed_XXXX";
    fs::create_directories(root / "cpu");
    std::ofstream(root / "cpu" / "online") << "not a cpulist";
    const topology t = topology::discover(root.string());
    EXPECT_FALSE(t.from_sysfs());
    EXPECT_GE(t.num_cpus(), 1u);
    fs::remove_all(root);
}

TEST(Discover, NoNodeDirMeansSingleNode) {
    namespace fs = std::filesystem;
    const fs::path root =
        fs::temp_directory_path() / "klsm_topo_nonuma_XXXX";
    for (int cpu = 0; cpu < 2; ++cpu) {
        const fs::path tdir =
            root / "cpu" / ("cpu" + std::to_string(cpu)) / "topology";
        fs::create_directories(tdir);
        // Deliberately the legacy short name: discovery must accept it
        // when physical_package_id (the kernel's name, used by the
        // checked-in fixture) is absent.
        std::ofstream(tdir / "package_id") << "0\n";
        std::ofstream(tdir / "core_id") << cpu << "\n";
        std::ofstream(tdir / "thread_siblings_list") << cpu << "\n";
    }
    std::ofstream(root / "cpu" / "online") << "0-1\n";
    const topology t = topology::discover(root.string());
    EXPECT_TRUE(t.from_sysfs());
    EXPECT_EQ(t.num_cpus(), 2u);
    EXPECT_EQ(t.num_nodes(), 1u);
    EXPECT_EQ(t.node_of(1), 0u);
    fs::remove_all(root);
}

TEST(Fallback, ShapesAsRequested) {
    const topology t = topology::fallback(4);
    EXPECT_FALSE(t.from_sysfs());
    EXPECT_EQ(t.num_cpus(), 4u);
    EXPECT_EQ(t.num_packages(), 1u);
    EXPECT_EQ(t.num_nodes(), 1u);
    EXPECT_EQ(t.num_cores(), 4u) << "fallback assumes no SMT";
    for (std::uint32_t i = 0; i < 4; ++i) {
        EXPECT_EQ(t.cpus()[i].os_id, i);
        EXPECT_EQ(t.node_of(i), 0u);
    }
    EXPECT_EQ(topology::fallback(0).num_cpus(), 1u)
        << "zero clamps to one cpu";
}

TEST(System, DiscoversSomething) {
    const topology &t = topology::system();
    EXPECT_GE(t.num_cpus(), 1u);
    EXPECT_GE(t.num_nodes(), 1u);
    EXPECT_EQ(&t, &topology::system()) << "system() is cached";
}

} // namespace
} // namespace klsm::topo
