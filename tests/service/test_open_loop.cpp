#include "service/open_loop.hpp"

#include "harness/workload.hpp"
#include "klsm/k_lsm.hpp"
#include "service/arrival_schedule.hpp"
#include "service/slo.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <queue>
#include <thread>

namespace klsm {
namespace service {
namespace {

using queue_t = k_lsm<std::uint32_t, std::uint64_t>;

arrival_config quick_config(arrival_kind kind, double rate,
                            unsigned threads, double duration_s = 0.1) {
    arrival_config cfg;
    cfg.kind = kind;
    cfg.rate = rate;
    cfg.duration_s = duration_s;
    cfg.threads = threads;
    cfg.seed = 7;
    return cfg;
}

std::uint64_t worst_p99(const stats::latency_recorder_set &recs) {
    std::uint64_t worst = 0;
    for (unsigned op = 0; op < stats::op_kinds; ++op) {
        const auto h = recs.merged(static_cast<stats::op_kind>(op));
        if (h.count() > 0 && h.percentile(99) > worst)
            worst = h.percentile(99);
    }
    return worst;
}

TEST(OpenLoop, ServesEveryScheduledArrival) {
    queue_t q{256};
    prefill_queue(q, 2000, 1);
    const auto acfg = quick_config(arrival_kind::poisson, 100000, 4);
    const auto schedule = make_arrival_schedule(acfg);
    service_params params;
    params.threads = 4;
    params.seed = 7;
    const auto res = run_service(q, params, schedule);
    EXPECT_EQ(res.scheduled_ops, scheduled_ops(schedule));
    EXPECT_EQ(res.completed_ops, res.scheduled_ops);
    EXPECT_EQ(res.inserts + res.deletes + res.failed_deletes,
              res.completed_ops);
    EXPECT_GT(res.elapsed_s, 0.0);
    EXPECT_GT(res.achieved_rate(), 0.0);
    // Both distributions hold exactly the served (non-failed) ops.
    for (unsigned op = 0; op < stats::op_kinds; ++op) {
        const auto kind = static_cast<stats::op_kind>(op);
        EXPECT_EQ(res.intended.merged(kind).count(),
                  res.completion.merged(kind).count());
    }
    const auto served =
        res.intended.merged(stats::op_kind::insert).count() +
        res.intended.merged(stats::op_kind::delete_min).count();
    EXPECT_EQ(served, res.completed_ops - res.failed_deletes);
}

TEST(OpenLoop, IntendedDominatesCompletionPercentiles) {
    queue_t q{256};
    prefill_queue(q, 2000, 1);
    const auto acfg = quick_config(arrival_kind::steady, 50000, 2);
    const auto schedule = make_arrival_schedule(acfg);
    service_params params;
    params.threads = 2;
    const auto res = run_service(q, params, schedule);
    for (unsigned op = 0; op < stats::op_kinds; ++op) {
        const auto kind = static_cast<stats::op_kind>(op);
        const auto intended = res.intended.merged(kind);
        const auto completion = res.completion.merged(kind);
        if (intended.count() == 0)
            continue;
        for (const double p : {50.0, 90.0, 99.0}) {
            EXPECT_GE(intended.percentile(p), completion.percentile(p))
                << stats::op_name(kind) << " p" << p;
        }
        EXPECT_GE(intended.max(), completion.max());
    }
}

TEST(OpenLoop, InsertOnlyMixRecordsNoDeletes) {
    queue_t q{256};
    const auto acfg = quick_config(arrival_kind::steady, 20000, 1, 0.05);
    service_params params;
    params.threads = 1;
    params.insert_percent = 100;
    const auto res = run_service(q, params, make_arrival_schedule(acfg));
    EXPECT_EQ(res.inserts, res.completed_ops);
    EXPECT_EQ(res.deletes, 0u);
    EXPECT_EQ(res.intended.merged(stats::op_kind::delete_min).count(),
              0u);
}

TEST(OpenLoop, SchedulePerThreadMismatchThrows) {
    queue_t q{256};
    const auto acfg = quick_config(arrival_kind::steady, 10000, 2, 0.05);
    service_params params;
    params.threads = 3;
    EXPECT_THROW(run_service(q, params, make_arrival_schedule(acfg)),
                 std::invalid_argument);
}

// A consumer that periodically stalls: the scenario where closed-loop
// (start-to-completion) latency lies and the intended-start
// distribution tells the truth.  Only the stalled ops themselves carry
// a slow service time (far below the 1% tail), but every arrival queued
// behind a stall carries real queueing delay into intended-start — so
// intended p99 inflates while completion p99 stays flat.
struct stalling_pq {
    using key_type = std::uint32_t;
    using value_type = std::uint64_t;
    std::mutex mu;
    std::priority_queue<key_type, std::vector<key_type>,
                        std::greater<key_type>>
        heap;
    std::uint64_t served = 0;
    std::uint64_t stall_every;
    std::chrono::milliseconds stall{8};

    explicit stalling_pq(std::uint64_t every) : stall_every(every) {}

    void insert(key_type key, value_type) {
        std::lock_guard<std::mutex> lock(mu);
        heap.push(key);
    }
    bool try_delete_min(key_type &key, value_type &value) {
        std::lock_guard<std::mutex> lock(mu);
        if (++served % stall_every == 0)
            std::this_thread::sleep_for(stall);
        if (heap.empty())
            return false;
        key = heap.top();
        heap.pop();
        value = 0;
        return true;
    }
};

TEST(OpenLoop, StalledConsumerInflatesIntendedNotCompletion) {
    stalling_pq q{400}; // ~12 stalls of 8ms across 5000 ops
    for (std::uint32_t i = 0; i < 6000; ++i)
        q.insert(i, 0);
    const auto acfg = quick_config(arrival_kind::steady, 25000, 1, 0.2);
    const auto schedule = make_arrival_schedule(acfg);
    service_params params;
    params.threads = 1;
    params.insert_percent = 0; // consume only
    const auto res = run_service(q, params, schedule);
    ASSERT_EQ(res.completed_ops, res.scheduled_ops);
    ASSERT_EQ(res.failed_deletes, 0u);
    const auto intended_p99 = worst_p99(res.intended);
    const auto completion_p99 = worst_p99(res.completion);
    // Each 8ms stall backs up ~200 arrivals (40us spacing): well over
    // 1% of ops carry multi-ms queueing delay, while the stalled ops
    // themselves are ~0.25% — under the completion p99's tail.
    EXPECT_GE(intended_p99, 2000000u) << "stalls not visible in "
                                         "intended-start p99";
    EXPECT_GE(intended_p99, 4 * completion_p99)
        << "intended p99 " << intended_p99 << " vs completion p99 "
        << completion_p99;
    // The harness booked the stall fallout as lateness and backlog.
    EXPECT_GT(res.late_ops, 0u);
    EXPECT_GE(res.max_lateness_ns, 2000000u);
    EXPECT_GT(res.backlog_max, 50u);
}

TEST(Slo, VerdictCombinesLatencyAndRate) {
    service_result res;
    stats::latency_recorder_set intended{1, 1};
    for (int i = 0; i < 100; ++i)
        intended.record(0, stats::op_kind::insert, 1000);
    intended.record(0, stats::op_kind::delete_min, 9000000);
    res.intended = std::move(intended);
    res.completed_ops = 101;
    res.elapsed_s = 1.0;

    slo_config cfg;
    cfg.p99_ns = 10000000; // 10ms, above the worst op
    cfg.min_achieved_fraction = 0.9;
    auto v = evaluate_slo(cfg, res, 100.0);
    EXPECT_TRUE(v.latency_ok);
    EXPECT_TRUE(v.rate_ok);
    EXPECT_TRUE(v.pass);
    // observed is the WORST op kind's intended p99.
    EXPECT_GE(v.observed_p99_ns, 9000000u);

    cfg.p99_ns = 1000000; // 1ms, below the delete_min tail
    v = evaluate_slo(cfg, res, 100.0);
    EXPECT_FALSE(v.latency_ok);
    EXPECT_TRUE(v.rate_ok);
    EXPECT_FALSE(v.pass);

    cfg.p99_ns = 0; // no latency objective: rate floor alone decides
    v = evaluate_slo(cfg, res, 1000.0); // achieved 101 < 0.9 * 1000
    EXPECT_TRUE(v.latency_ok);
    EXPECT_FALSE(v.rate_ok);
    EXPECT_FALSE(v.pass);
}

TEST(Sustainable, ConvergesIntoTheBracket) {
    // Synthetic SLO edge at 37k ops/s, starting below it.
    const auto run = [](double rate) { return rate <= 37000.0; };
    const auto result = find_sustainable_rate(run, 10000.0);
    EXPECT_GE(result.rate, 20000.0);
    EXPECT_LE(result.rate, 37000.0);
    // Converged: the bracket around the edge is within 5%.
    EXPECT_GE(result.rate, 37000.0 * 0.9);
    EXPECT_LE(result.probes.size(), 10u);
    for (const auto &probe : result.probes)
        EXPECT_EQ(probe.pass, run(probe.rate));
}

TEST(Sustainable, ConvergesFromAbove) {
    const auto run = [](double rate) { return rate <= 37000.0; };
    const auto result = find_sustainable_rate(run, 320000.0);
    EXPECT_LE(result.rate, 37000.0);
    EXPECT_GE(result.rate, 37000.0 * 0.9);
}

TEST(Sustainable, AllFailReportsZero) {
    const auto result =
        find_sustainable_rate([](double) { return false; }, 100000.0);
    EXPECT_EQ(result.rate, 0.0);
    EXPECT_LE(result.probes.size(), 10u);
}

TEST(Sustainable, AllPassStopsAtTheGrowthBudget) {
    const auto result =
        find_sustainable_rate([](double) { return true; }, 1000.0);
    // initial * 2^max_doublings with the default budget of 4.
    EXPECT_EQ(result.rate, 16000.0);
    EXPECT_EQ(result.probes.size(), 5u);
}

} // namespace
} // namespace service
} // namespace klsm
