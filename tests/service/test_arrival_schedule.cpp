#include "service/arrival_schedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace klsm {
namespace service {
namespace {

arrival_config base_config(arrival_kind kind, double rate = 100000,
                           unsigned threads = 4) {
    arrival_config cfg;
    cfg.kind = kind;
    cfg.rate = rate;
    cfg.duration_s = 1.0;
    cfg.threads = threads;
    cfg.seed = 42;
    return cfg;
}

TEST(ArrivalSchedule, DeterministicAcrossCalls) {
    for (auto kind : {arrival_kind::steady, arrival_kind::poisson,
                      arrival_kind::spike, arrival_kind::diurnal}) {
        const auto cfg = base_config(kind);
        EXPECT_EQ(make_arrival_schedule(cfg), make_arrival_schedule(cfg))
            << arrival_name(kind);
    }
}

TEST(ArrivalSchedule, SeedChangesRandomSchedules) {
    auto cfg = base_config(arrival_kind::poisson);
    const auto a = make_arrival_schedule(cfg);
    cfg.seed = 43;
    EXPECT_NE(a, make_arrival_schedule(cfg));
}

TEST(ArrivalSchedule, SteadyIgnoresSeed) {
    auto cfg = base_config(arrival_kind::steady);
    const auto a = make_arrival_schedule(cfg);
    cfg.seed = 43;
    EXPECT_EQ(a, make_arrival_schedule(cfg));
}

TEST(ArrivalSchedule, SortedAndBounded) {
    for (auto kind : {arrival_kind::steady, arrival_kind::poisson,
                      arrival_kind::spike, arrival_kind::diurnal}) {
        const auto cfg = base_config(kind);
        const auto schedule = make_arrival_schedule(cfg);
        ASSERT_EQ(schedule.size(), cfg.threads);
        for (const auto &sched : schedule) {
            EXPECT_TRUE(std::is_sorted(sched.begin(), sched.end()));
            ASSERT_FALSE(sched.empty());
            EXPECT_LT(sched.back(),
                      static_cast<std::uint64_t>(cfg.duration_s * 1e9));
        }
    }
}

TEST(ArrivalSchedule, SteadyHitsExactCountAndSpacing) {
    const auto cfg = base_config(arrival_kind::steady, 40000, 4);
    const auto schedule = make_arrival_schedule(cfg);
    // 10000 per thread at exactly 100us apart.
    for (const auto &sched : schedule) {
        ASSERT_EQ(sched.size(), 10000u);
        for (std::size_t i = 1; i < sched.size(); ++i)
            EXPECT_NEAR(static_cast<double>(sched[i] - sched[i - 1]),
                        100000.0, 1.0);
    }
    // Threads are phase-offset, not in lockstep.
    EXPECT_NE(schedule[0][0], schedule[1][0]);
}

TEST(ArrivalSchedule, PoissonMeanRateWithinTolerance) {
    const auto cfg = base_config(arrival_kind::poisson, 200000, 4);
    const auto n = scheduled_ops(make_arrival_schedule(cfg));
    // 200k expected arrivals; 5 sigma of a Poisson count is ~0.1%.
    EXPECT_NEAR(static_cast<double>(n), 200000.0, 5 * std::sqrt(200000.0));
}

TEST(ArrivalSchedule, SteadyMeanRateIsExact) {
    const auto cfg = base_config(arrival_kind::steady, 200000, 4);
    EXPECT_EQ(scheduled_ops(make_arrival_schedule(cfg)), 200000u);
}

TEST(ArrivalSchedule, SpikeWindowIsDenser) {
    auto cfg = base_config(arrival_kind::spike, 100000, 2);
    cfg.spike_fraction = 0.2;
    cfg.spike_multiplier = 8.0;
    const auto schedule = make_arrival_schedule(cfg);
    // Count arrivals inside the centered window vs a same-width slice
    // of the off-window baseline.
    const auto ns = [](double s) {
        return static_cast<std::uint64_t>(s * 1e9);
    };
    std::uint64_t in_window = 0, baseline = 0;
    for (const auto &sched : schedule) {
        for (const auto at : sched) {
            if (at >= ns(0.4) && at < ns(0.6))
                ++in_window;
            else if (at < ns(0.2))
                ++baseline;
        }
    }
    // The window runs at 8x the base rate; thinning noise is well under
    // the 2x slack this asserts.
    EXPECT_GT(in_window, 4 * baseline);
    EXPECT_GT(baseline, 0u);
}

TEST(ArrivalSchedule, DiurnalHalvesAreAsymmetric) {
    auto cfg = base_config(arrival_kind::diurnal, 100000, 2);
    cfg.diurnal_amplitude = 0.75;
    cfg.diurnal_periods = 1.0;
    const auto schedule = make_arrival_schedule(cfg);
    // sin is positive over the first half cycle, negative over the
    // second: the first half must carry well more than half the load.
    std::uint64_t first = 0, second = 0;
    for (const auto &sched : schedule)
        for (const auto at : sched)
            (at < 500000000u ? first : second) += 1;
    EXPECT_GT(first, second + second / 2);
}

TEST(ArrivalSchedule, OfferedMatchesTheRateIntegral) {
    // spike offers rate * (1 + frac * (mult - 1)); diurnal's sinusoid
    // integrates to zero over whole periods, so it offers ~rate.
    auto spike = base_config(arrival_kind::spike, 100000, 2);
    spike.spike_fraction = 0.1;
    spike.spike_multiplier = 8.0;
    const double spike_expected = 100000 * (1 + 0.1 * 7);
    EXPECT_NEAR(static_cast<double>(
                    scheduled_ops(make_arrival_schedule(spike))),
                spike_expected, 5 * std::sqrt(spike_expected));
    const auto diurnal = base_config(arrival_kind::diurnal, 100000, 2);
    EXPECT_NEAR(static_cast<double>(
                    scheduled_ops(make_arrival_schedule(diurnal))),
                100000.0, 5 * std::sqrt(100000.0));
}

TEST(ArrivalSchedule, ParseRoundTrips) {
    for (auto kind : {arrival_kind::steady, arrival_kind::poisson,
                      arrival_kind::spike, arrival_kind::diurnal}) {
        const auto parsed = parse_arrival(arrival_name(kind));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, kind);
    }
    EXPECT_FALSE(parse_arrival("bursty").has_value());
    EXPECT_FALSE(parse_arrival("").has_value());
}

TEST(ArrivalSchedule, InvalidConfigsThrow) {
    auto bad = [](auto mutate) {
        auto cfg = base_config(arrival_kind::poisson);
        mutate(cfg);
        EXPECT_THROW(make_arrival_schedule(cfg), std::invalid_argument);
    };
    bad([](arrival_config &c) { c.rate = 0; });
    bad([](arrival_config &c) { c.rate = -1; });
    bad([](arrival_config &c) { c.duration_s = 0; });
    bad([](arrival_config &c) { c.threads = 0; });
    bad([](arrival_config &c) {
        c.kind = arrival_kind::spike;
        c.spike_fraction = 1.5;
    });
    bad([](arrival_config &c) {
        c.kind = arrival_kind::spike;
        c.spike_multiplier = 0.5;
    });
    bad([](arrival_config &c) {
        c.kind = arrival_kind::diurnal;
        c.diurnal_amplitude = 2.0;
    });
    bad([](arrival_config &c) { c.rate = 1e12; }); // schedule cap
}

} // namespace
} // namespace service
} // namespace klsm
