// Property tests: the sequential LSM against a std::multiset oracle over
// randomized operation sequences, parameterized over seeds and op mixes.

#include "lsm/lsm_pq.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace klsm {
namespace {

struct mix_param {
    std::uint64_t seed;
    int insert_percent; // remainder are delete-mins
    int ops;
    std::uint32_t key_range;
};

class LsmPqOracle : public ::testing::TestWithParam<mix_param> {};

TEST_P(LsmPqOracle, MatchesMultisetOracle) {
    const mix_param p = GetParam();
    xoroshiro128 rng{p.seed};
    lsm_pq<std::uint32_t, std::uint64_t> q;
    std::multiset<std::uint32_t> oracle;

    for (int i = 0; i < p.ops; ++i) {
        if (static_cast<int>(rng.bounded(100)) < p.insert_percent ||
            oracle.empty()) {
            const auto key =
                static_cast<std::uint32_t>(rng.bounded(p.key_range));
            q.insert(key, key);
            oracle.insert(key);
        } else {
            std::uint32_t k;
            std::uint64_t v;
            ASSERT_TRUE(q.try_delete_min(k, v));
            ASSERT_FALSE(oracle.empty());
            ASSERT_EQ(k, *oracle.begin());
            oracle.erase(oracle.begin());
        }
        ASSERT_EQ(q.size(), oracle.size());
    }
    ASSERT_TRUE(q.check_invariants());
    // Drain and compare the complete remaining contents.
    while (!oracle.empty()) {
        std::uint32_t k;
        std::uint64_t v;
        ASSERT_TRUE(q.try_delete_min(k, v));
        ASSERT_EQ(k, *oracle.begin());
        oracle.erase(oracle.begin());
    }
    EXPECT_TRUE(q.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, LsmPqOracle,
    ::testing::Values(mix_param{1, 50, 4000, 1000},
                      mix_param{2, 80, 4000, 100},
                      mix_param{3, 30, 4000, 10},
                      mix_param{4, 50, 4000, 5},
                      mix_param{5, 95, 4000, 1u << 31},
                      mix_param{6, 50, 8000, 2},
                      mix_param{7, 60, 4000, 1}),
    [](const auto &info) {
        return "seed" + std::to_string(info.param.seed) + "_ins" +
               std::to_string(info.param.insert_percent) + "_range" +
               std::to_string(info.param.key_range);
    });

struct relaxed_param {
    std::uint64_t seed;
    std::size_t k;
};

class LsmPqRelaxed : public ::testing::TestWithParam<relaxed_param> {};

// Mixed workload where every relaxed deletion must respect the k+1 bound
// against a value-count oracle.
TEST_P(LsmPqRelaxed, RelaxedDeletionBoundHolds) {
    const auto [seed, k] = GetParam();
    xoroshiro128 rng{seed};
    lsm_pq<std::uint32_t, std::uint64_t> q;
    std::map<std::uint32_t, int> oracle; // key -> multiplicity

    auto rank_of = [&](std::uint32_t key) {
        std::size_t rank = 0;
        for (const auto &[ok, cnt] : oracle) {
            if (ok >= key)
                break;
            rank += static_cast<std::size_t>(cnt);
        }
        return rank;
    };

    for (int i = 0; i < 3000; ++i) {
        if (rng.bounded(100) < 55 || oracle.empty()) {
            const auto key = static_cast<std::uint32_t>(rng.bounded(500));
            q.insert(key, key);
            ++oracle[key];
        } else {
            std::uint32_t key;
            std::uint64_t v;
            ASSERT_TRUE(q.try_delete_relaxed(key, v, k, rng));
            auto it = oracle.find(key);
            ASSERT_NE(it, oracle.end()) << "deleted a non-existent key";
            ASSERT_LE(rank_of(key), k) << "relaxation bound violated";
            if (--it->second == 0)
                oracle.erase(it);
        }
    }
    ASSERT_TRUE(q.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(
    Ks, LsmPqRelaxed,
    ::testing::Values(relaxed_param{11, 0}, relaxed_param{12, 1},
                      relaxed_param{13, 4}, relaxed_param{14, 16},
                      relaxed_param{15, 64}, relaxed_param{16, 256},
                      relaxed_param{17, 100000}),
    [](const auto &info) {
        return "seed" + std::to_string(info.param.seed) + "_k" +
               std::to_string(info.param.k);
    });

} // namespace
} // namespace klsm
