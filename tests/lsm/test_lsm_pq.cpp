#include "lsm/lsm_pq.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace klsm {
namespace {

using pq = lsm_pq<std::uint32_t, std::uint64_t>;

TEST(LsmPq, EmptyBehaviour) {
    pq q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    std::uint32_t k;
    std::uint64_t v;
    EXPECT_FALSE(q.try_delete_min(k, v));
    EXPECT_FALSE(q.try_find_min(k, v));
}

TEST(LsmPq, SingleElement) {
    pq q;
    q.insert(7, 70);
    EXPECT_EQ(q.size(), 1u);
    std::uint32_t k;
    std::uint64_t v;
    ASSERT_TRUE(q.try_find_min(k, v));
    EXPECT_EQ(k, 7u);
    EXPECT_EQ(v, 70u);
    ASSERT_TRUE(q.try_delete_min(k, v));
    EXPECT_EQ(k, 7u);
    EXPECT_TRUE(q.empty());
}

TEST(LsmPq, DeletesInSortedOrder) {
    pq q;
    std::vector<std::uint32_t> keys = {5, 3, 9, 1, 7, 3, 8, 2, 6, 4, 0};
    for (auto key : keys)
        q.insert(key, key);
    std::vector<std::uint32_t> sorted = keys;
    std::sort(sorted.begin(), sorted.end());
    for (auto expect : sorted) {
        std::uint32_t k;
        std::uint64_t v;
        ASSERT_TRUE(q.try_delete_min(k, v));
        EXPECT_EQ(k, expect);
        EXPECT_TRUE(q.check_invariants());
    }
    EXPECT_TRUE(q.empty());
}

TEST(LsmPq, DuplicateKeysAllSurvive) {
    pq q;
    for (int i = 0; i < 10; ++i)
        q.insert(42, static_cast<std::uint64_t>(i));
    EXPECT_EQ(q.size(), 10u);
    for (int i = 0; i < 10; ++i) {
        std::uint32_t k;
        std::uint64_t v;
        ASSERT_TRUE(q.try_delete_min(k, v));
        EXPECT_EQ(k, 42u);
    }
    EXPECT_TRUE(q.empty());
}

TEST(LsmPq, LogarithmicBlockCount) {
    pq q;
    for (std::uint32_t i = 0; i < 1000; ++i)
        q.insert(i, i);
    // 1000 items fit into at most log2(1000)+1 ~ 10 blocks.
    EXPECT_LE(q.block_count(), 10u);
    EXPECT_TRUE(q.check_invariants());
}

TEST(LsmPq, AscendingAndDescendingInsertion) {
    for (bool ascending : {true, false}) {
        pq q;
        for (std::uint32_t i = 0; i < 200; ++i)
            q.insert(ascending ? i : 199 - i, i);
        for (std::uint32_t i = 0; i < 200; ++i) {
            std::uint32_t k;
            std::uint64_t v;
            ASSERT_TRUE(q.try_delete_min(k, v));
            EXPECT_EQ(k, i);
        }
    }
}

TEST(LsmPq, RelaxedDeleteReturnsOneOfKPlus1Smallest) {
    xoroshiro128 rng{17};
    for (std::size_t k : {0u, 1u, 3u, 7u}) {
        pq q;
        for (std::uint32_t i = 0; i < 100; ++i)
            q.insert(i, i);
        // Track what's deleted; every delete must come from the current
        // k+1 smallest remaining keys.
        std::vector<bool> deleted(100, false);
        for (int step = 0; step < 100; ++step) {
            std::uint32_t key;
            std::uint64_t v;
            ASSERT_TRUE(q.try_delete_relaxed(key, v, k, rng));
            ASSERT_FALSE(deleted[key]) << "double delete of " << key;
            // Rank of `key` among remaining keys must be <= k.
            std::size_t rank = 0;
            for (std::uint32_t j = 0; j < key; ++j)
                rank += deleted[j] ? 0 : 1;
            EXPECT_LE(rank, k) << "k=" << k << " key=" << key;
            deleted[key] = true;
            ASSERT_TRUE(q.check_invariants());
        }
        EXPECT_TRUE(q.empty());
    }
}

TEST(LsmPq, RelaxedDeleteWithZeroKIsExact) {
    xoroshiro128 rng{23};
    pq q;
    for (std::uint32_t i : {9u, 4u, 6u, 1u, 8u})
        q.insert(i, i);
    std::uint32_t k;
    std::uint64_t v;
    ASSERT_TRUE(q.try_delete_relaxed(k, v, 0, rng));
    EXPECT_EQ(k, 1u);
    ASSERT_TRUE(q.try_delete_relaxed(k, v, 0, rng));
    EXPECT_EQ(k, 4u);
}

TEST(LsmPq, RelaxedDeleteActuallySpreads) {
    // With k = 31 on keys 0..99, the first deletion should not always be
    // key 0 across repetitions.
    xoroshiro128 rng{31};
    int nonzero_first = 0;
    for (int rep = 0; rep < 50; ++rep) {
        pq q;
        for (std::uint32_t i = 0; i < 100; ++i)
            q.insert(i, i);
        std::uint32_t k;
        std::uint64_t v;
        ASSERT_TRUE(q.try_delete_relaxed(k, v, 31, rng));
        nonzero_first += (k != 0);
    }
    EXPECT_GT(nonzero_first, 25);
}

TEST(LsmPq, InterleavedInsertDelete) {
    pq q;
    std::uint32_t k;
    std::uint64_t v;
    for (std::uint32_t round = 0; round < 50; ++round) {
        q.insert(round * 2, round);
        q.insert(round * 2 + 1, round);
        ASSERT_TRUE(q.try_delete_min(k, v));
        ASSERT_TRUE(q.check_invariants());
    }
    EXPECT_EQ(q.size(), 50u);
}

} // namespace
} // namespace klsm
