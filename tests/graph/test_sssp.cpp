// SSSP correctness: the parallel label-correcting driver must produce
// exactly Dijkstra's distances on every queue type, thread count, and
// relaxation parameter — relaxation affects work, never the result.

#include "baselines/centralized_k.hpp"
#include "baselines/hybrid_k.hpp"
#include "baselines/linden.hpp"
#include "baselines/multiqueue.hpp"
#include "baselines/spin_heap.hpp"
#include "baselines/spraylist.hpp"
#include "graph/dijkstra.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/parallel_sssp.hpp"
#include "klsm/k_lsm.hpp"

#include <gtest/gtest.h>

namespace klsm {
namespace {

graph test_graph(std::uint32_t nodes, double p, std::uint64_t seed) {
    erdos_renyi_params params;
    params.nodes = nodes;
    params.edge_probability = p;
    params.max_weight = 100000000;
    params.seed = seed;
    return make_erdos_renyi(params);
}

void expect_dijkstra_equal(const graph &g, const sssp_state &state,
                           const dijkstra_result &ref) {
    for (std::uint32_t u = 0; u < g.num_nodes(); ++u)
        ASSERT_EQ(state.dist(u), ref.dist[u]) << "node " << u;
}

TEST(Dijkstra, TinyHandComputedGraph) {
    //   0 --1--> 1 --1--> 2
    //   0 ------5-------> 2
    std::vector<edge> edges = {{0, 1, 1}, {1, 2, 1}, {0, 2, 5}};
    graph g{3, edges};
    auto res = dijkstra(g, 0);
    EXPECT_EQ(res.dist[0], 0u);
    EXPECT_EQ(res.dist[1], 1u);
    EXPECT_EQ(res.dist[2], 2u);
    EXPECT_EQ(res.settled, 3u);
}

TEST(Dijkstra, UnreachableNodes) {
    graph g{4, {{0, 1, 3}}};
    auto res = dijkstra(g, 0);
    EXPECT_EQ(res.dist[1], 3u);
    EXPECT_EQ(res.dist[2], sssp_unreached);
    EXPECT_EQ(res.dist[3], sssp_unreached);
    EXPECT_EQ(res.settled, 2u);
}

struct sssp_case {
    const char *queue;
    unsigned threads;
    std::size_t k;
};

class ParallelSsspMatchesDijkstra
    : public ::testing::TestWithParam<sssp_case> {};

TEST_P(ParallelSsspMatchesDijkstra, OnRandomGraph) {
    const auto [queue, threads, k] = GetParam();
    graph g = test_graph(500, 0.05, 12345);
    auto ref = dijkstra(g, 0);

    sssp_state state{g.num_nodes()};
    sssp_stats stats;
    const std::string name = queue;
    if (name == "klsm") {
        k_lsm<std::uint64_t, std::uint32_t, sssp_lazy> pq{
            k, sssp_lazy{&state}};
        stats = parallel_sssp(pq, g, 0, threads, state);
    } else if (name == "centralized") {
        centralized_k_pq<std::uint64_t, std::uint32_t> pq{k};
        stats = parallel_sssp(pq, g, 0, threads, state);
    } else if (name == "hybrid") {
        hybrid_k_pq<std::uint64_t, std::uint32_t> pq{k};
        stats = parallel_sssp(pq, g, 0, threads, state);
    } else if (name == "multiq") {
        multiqueue<std::uint64_t, std::uint32_t> pq{threads};
        stats = parallel_sssp(pq, g, 0, threads, state);
    } else if (name == "linden") {
        linden_pq<std::uint64_t, std::uint32_t> pq{32};
        stats = parallel_sssp(pq, g, 0, threads, state);
    } else if (name == "spray") {
        spray_pq<std::uint64_t, std::uint32_t> pq{threads};
        stats = parallel_sssp(pq, g, 0, threads, state);
    } else if (name == "spinheap") {
        spin_heap<std::uint64_t, std::uint32_t> pq;
        stats = parallel_sssp(pq, g, 0, threads, state);
    } else if (name == "dlsm") {
        dist_pq<std::uint64_t, std::uint32_t> pq;
        stats = parallel_sssp(pq, g, 0, threads, state);
    } else {
        FAIL() << "unknown queue " << name;
    }

    expect_dijkstra_equal(g, state, ref);
    EXPECT_EQ(stats.settled, ref.settled);
    EXPECT_GE(stats.expansions, ref.settled)
        << "every reachable node is expanded at least once";
}

INSTANTIATE_TEST_SUITE_P(
    Queues, ParallelSsspMatchesDijkstra,
    ::testing::Values(sssp_case{"klsm", 1, 256}, sssp_case{"klsm", 4, 0},
                      sssp_case{"klsm", 4, 256},
                      sssp_case{"klsm", 4, 4096},
                      sssp_case{"centralized", 4, 256},
                      sssp_case{"hybrid", 4, 256},
                      sssp_case{"multiq", 4, 0},
                      sssp_case{"linden", 4, 0},
                      sssp_case{"spray", 4, 0},
                      sssp_case{"spinheap", 4, 0},
                      sssp_case{"dlsm", 4, 0}),
    [](const auto &info) {
        return std::string(info.param.queue) + "_" +
               std::to_string(info.param.threads) + "t_k" +
               std::to_string(info.param.k);
    });

TEST(ParallelSssp, SingleThreadExactQueueDoesMinimalWork) {
    graph g = test_graph(300, 0.05, 777);
    auto ref = dijkstra(g, 0);
    sssp_state state{g.num_nodes()};
    spin_heap<std::uint64_t, std::uint32_t> pq;
    auto stats = parallel_sssp(pq, g, 0, 1, state);
    expect_dijkstra_equal(g, state, ref);
    // An exact queue processed sequentially expands each node once.
    EXPECT_EQ(stats.expansions, ref.settled);
}

TEST(ParallelSssp, LazyDeletionReducesStalePops) {
    graph g = test_graph(400, 0.1, 31);
    auto ref = dijkstra(g, 0);

    sssp_state lazy_state{g.num_nodes()};
    k_lsm<std::uint64_t, std::uint32_t, sssp_lazy> lazy_q{
        256, sssp_lazy{&lazy_state}};
    auto lazy_stats = parallel_sssp(lazy_q, g, 0, 2, lazy_state);
    expect_dijkstra_equal(g, lazy_state, ref);

    sssp_state plain_state{g.num_nodes()};
    k_lsm<std::uint64_t, std::uint32_t> plain_q{256};
    auto plain_stats = parallel_sssp(plain_q, g, 0, 2, plain_state);
    expect_dijkstra_equal(g, plain_state, ref);

    // Lazy deletion drops superseded entries during merges, so fewer of
    // them surface as stale pops.  (Both runs are still correct; this is
    // a statistical expectation on a seed chosen to be stable.)
    EXPECT_LE(lazy_stats.stale_pops, plain_stats.stale_pops);
}

} // namespace
} // namespace klsm
