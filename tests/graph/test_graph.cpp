#include "graph/erdos_renyi.hpp"
#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace klsm {
namespace {

TEST(Graph, CsrLayout) {
    std::vector<edge> edges = {
        {0, 1, 10}, {0, 2, 20}, {1, 2, 5}, {2, 0, 1}};
    graph g{3, edges};
    EXPECT_EQ(g.num_nodes(), 3u);
    EXPECT_EQ(g.num_edges(), 4u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_EQ(g.degree(2), 1u);
    // Adjacency content (order within a node is unspecified).
    std::map<std::uint32_t, std::uint32_t> adj0;
    for (std::size_t i = 0; i < g.degree(0); ++i)
        adj0[g.neighbors(0)[i]] = g.weights(0)[i];
    EXPECT_EQ(adj0.at(1), 10u);
    EXPECT_EQ(adj0.at(2), 20u);
}

TEST(Graph, EmptyGraph) {
    graph g{0, {}};
    EXPECT_EQ(g.num_nodes(), 0u);
    EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, IsolatedNodes) {
    graph g{5, {{1, 3, 7}}};
    EXPECT_EQ(g.degree(0), 0u);
    EXPECT_EQ(g.degree(4), 0u);
    EXPECT_EQ(g.degree(1), 1u);
}

TEST(ErdosRenyi, EdgeCountMatchesExpectation) {
    erdos_renyi_params params;
    params.nodes = 400;
    params.edge_probability = 0.5;
    params.seed = 7;
    graph g = make_erdos_renyi(params);
    // Expected directed arcs: 2 * p * n(n-1)/2 = 0.5 * 400 * 399 = 79800.
    const double expected = 0.5 * 400 * 399;
    EXPECT_GT(static_cast<double>(g.num_edges()), expected * 0.9);
    EXPECT_LT(static_cast<double>(g.num_edges()), expected * 1.1);
}

TEST(ErdosRenyi, SymmetricArcs) {
    erdos_renyi_params params;
    params.nodes = 100;
    params.edge_probability = 0.2;
    params.seed = 3;
    graph g = make_erdos_renyi(params);
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> arcs;
    for (std::uint32_t u = 0; u < g.num_nodes(); ++u)
        for (std::size_t i = 0; i < g.degree(u); ++i)
            arcs[{u, g.neighbors(u)[i]}] = g.weights(u)[i];
    for (const auto &[arc, w] : arcs) {
        auto rev = arcs.find({arc.second, arc.first});
        ASSERT_NE(rev, arcs.end()) << "missing reverse arc";
        EXPECT_EQ(rev->second, w) << "asymmetric weight";
    }
}

TEST(ErdosRenyi, NoSelfLoopsOrDuplicates) {
    erdos_renyi_params params;
    params.nodes = 200;
    params.edge_probability = 0.3;
    params.seed = 11;
    graph g = make_erdos_renyi(params);
    std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
    for (std::uint32_t u = 0; u < g.num_nodes(); ++u)
        for (auto v : g.neighbors(u)) {
            EXPECT_NE(u, v) << "self loop";
            EXPECT_TRUE(seen.insert({u, v}).second) << "duplicate arc";
        }
}

TEST(ErdosRenyi, WeightsInRange) {
    erdos_renyi_params params;
    params.nodes = 100;
    params.edge_probability = 0.5;
    params.max_weight = 1000;
    graph g = make_erdos_renyi(params);
    for (std::uint32_t u = 0; u < g.num_nodes(); ++u)
        for (auto w : g.weights(u)) {
            EXPECT_GE(w, 1u);
            EXPECT_LE(w, 1000u);
        }
}

TEST(ErdosRenyi, DeterministicForSeed) {
    erdos_renyi_params params;
    params.nodes = 50;
    params.edge_probability = 0.4;
    params.seed = 99;
    graph a = make_erdos_renyi(params);
    graph b = make_erdos_renyi(params);
    ASSERT_EQ(a.num_edges(), b.num_edges());
    for (std::uint32_t u = 0; u < a.num_nodes(); ++u) {
        ASSERT_EQ(a.degree(u), b.degree(u));
        for (std::size_t i = 0; i < a.degree(u); ++i) {
            EXPECT_EQ(a.neighbors(u)[i], b.neighbors(u)[i]);
            EXPECT_EQ(a.weights(u)[i], b.weights(u)[i]);
        }
    }
}

TEST(ErdosRenyi, FullProbabilityGivesCompleteGraph) {
    erdos_renyi_params params;
    params.nodes = 20;
    params.edge_probability = 1.0;
    graph g = make_erdos_renyi(params);
    EXPECT_EQ(g.num_edges(), 20u * 19u);
}

} // namespace
} // namespace klsm
