// SSSP on adversarial topologies: long chains (deep dependency, worst
// case for relaxed ordering), stars, disconnected components, zero-ish
// weights, and parallel-edge multigraphs.

#include "graph/dijkstra.hpp"
#include "graph/parallel_sssp.hpp"
#include "klsm/k_lsm.hpp"

#include <gtest/gtest.h>

namespace klsm {
namespace {

void run_and_check(const graph &g, unsigned threads, std::size_t k) {
    const auto ref = dijkstra(g, 0);
    sssp_state state{g.num_nodes()};
    k_lsm<std::uint64_t, std::uint32_t, sssp_lazy> q{k,
                                                     sssp_lazy{&state}};
    const auto stats = parallel_sssp(q, g, 0, threads, state);
    for (std::uint32_t u = 0; u < g.num_nodes(); ++u)
        ASSERT_EQ(state.dist(u), ref.dist[u]) << "node " << u;
    ASSERT_EQ(stats.settled, ref.settled);
}

graph line_graph(std::uint32_t n) {
    std::vector<edge> edges;
    for (std::uint32_t i = 0; i + 1 < n; ++i) {
        edges.push_back({i, i + 1, i % 97 + 1});
        edges.push_back({i + 1, i, i % 97 + 1});
    }
    return graph{n, edges};
}

TEST(SsspTopologies, LongChain) {
    // A 2000-node path: distances build strictly sequentially, so any
    // premature expansion must be corrected by re-relaxation.
    run_and_check(line_graph(2000), 4, 256);
}

TEST(SsspTopologies, LongChainHighRelaxation) {
    run_and_check(line_graph(1000), 4, 16384);
}

TEST(SsspTopologies, Star) {
    constexpr std::uint32_t n = 2000;
    std::vector<edge> edges;
    for (std::uint32_t i = 1; i < n; ++i) {
        edges.push_back({0, i, i});
        edges.push_back({i, 0, i});
    }
    run_and_check(graph{n, edges}, 4, 256);
}

TEST(SsspTopologies, DisconnectedComponents) {
    // Nodes 0..49 form a ring; 50..99 form a separate ring.
    std::vector<edge> edges;
    for (std::uint32_t i = 0; i < 50; ++i) {
        edges.push_back({i, (i + 1) % 50, 3});
        edges.push_back({(i + 1) % 50, i, 3});
        edges.push_back({50 + i, 50 + (i + 1) % 50, 3});
        edges.push_back({50 + (i + 1) % 50, 50 + i, 3});
    }
    graph g{100, edges};
    const auto ref = dijkstra(g, 0);
    sssp_state state{g.num_nodes()};
    k_lsm<std::uint64_t, std::uint32_t> q{64};
    const auto stats = parallel_sssp(q, g, 0, 2, state);
    for (std::uint32_t u = 0; u < 50; ++u)
        ASSERT_NE(state.dist(u), sssp_unreached);
    for (std::uint32_t u = 50; u < 100; ++u)
        ASSERT_EQ(state.dist(u), sssp_unreached);
    EXPECT_EQ(stats.settled, 50u);
    EXPECT_EQ(ref.settled, 50u);
}

TEST(SsspTopologies, ParallelEdgesKeepMinimum) {
    // Multigraph: three parallel arcs 0 -> 1 with different weights.
    std::vector<edge> edges = {{0, 1, 10}, {0, 1, 3}, {0, 1, 7}};
    graph g{2, edges};
    const auto ref = dijkstra(g, 0);
    EXPECT_EQ(ref.dist[1], 3u);
    run_and_check(g, 2, 16);
}

TEST(SsspTopologies, UnitWeights) {
    // BFS-like: all weights 1 on a grid-ish graph.
    constexpr std::uint32_t side = 30;
    std::vector<edge> edges;
    auto id = [&](std::uint32_t r, std::uint32_t c) {
        return r * side + c;
    };
    for (std::uint32_t r = 0; r < side; ++r)
        for (std::uint32_t c = 0; c < side; ++c) {
            if (c + 1 < side) {
                edges.push_back({id(r, c), id(r, c + 1), 1});
                edges.push_back({id(r, c + 1), id(r, c), 1});
            }
            if (r + 1 < side) {
                edges.push_back({id(r, c), id(r + 1, c), 1});
                edges.push_back({id(r + 1, c), id(r, c), 1});
            }
        }
    graph g{side * side, edges};
    const auto ref = dijkstra(g, 0);
    EXPECT_EQ(ref.dist[id(side - 1, side - 1)], 2u * (side - 1));
    run_and_check(g, 4, 64);
}

TEST(SsspTopologies, SingleNode) {
    graph g{1, {}};
    run_and_check(g, 2, 4);
}

} // namespace
} // namespace klsm
