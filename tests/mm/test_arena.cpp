#include "mm/arena.hpp"

#include <gtest/gtest.h>

#include <set>

namespace klsm {
namespace {

TEST(Arena, AllocateReturnsDistinctStablePointers) {
    arena<int> a{4};
    std::set<int *> ptrs;
    std::vector<int *> order;
    for (int i = 0; i < 100; ++i) {
        int *p = a.allocate();
        *p = i;
        ptrs.insert(p);
        order.push_back(p);
    }
    EXPECT_EQ(ptrs.size(), 100u);
    // Type stability: earlier pointers still hold their values after
    // later chunk growth.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(*order[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(a.size(), 100u);
}

TEST(Arena, SizeTracksAllocations) {
    arena<double> a{2};
    EXPECT_EQ(a.size(), 0u);
    a.allocate();
    EXPECT_EQ(a.size(), 1u);
    for (int i = 0; i < 9; ++i)
        a.allocate();
    EXPECT_EQ(a.size(), 10u);
}

TEST(Arena, ForEachVisitsAllInAllocationOrder) {
    arena<int> a{3};
    for (int i = 0; i < 20; ++i)
        *a.allocate() = i;
    int expect = 0;
    a.for_each([&](int &v) { EXPECT_EQ(v, expect++); });
    EXPECT_EQ(expect, 20);
}

TEST(Arena, AtIndexesAcrossChunks) {
    arena<int> a{2};
    for (int i = 0; i < 15; ++i)
        *a.allocate() = i * i;
    for (int i = 0; i < 15; ++i)
        EXPECT_EQ(a.at(static_cast<std::size_t>(i)), i * i);
    EXPECT_THROW(a.at(15), std::out_of_range);
}

TEST(Arena, DefaultConstructsObjects) {
    struct boxed {
        int v = 41;
    };
    arena<boxed> a;
    EXPECT_EQ(a.allocate()->v, 41);
}

} // namespace
} // namespace klsm
