// Allocation-placement telemetry wired through the pools and the
// queues (mm/alloc_stats.hpp consumers).
//
// The concurrent case doubles as the paper-bound check the block-pool
// header promises: a mixed insert/delete run across every placement
// policy must never grow a DistLSM pool beyond the paper's
// four-blocks-per-level bound (growth_beyond_bound stays 0 there),
// whichever node the pages went to.  The shared-LSM pools' safety
// valve may fire under churn by design and is only bounded loosely.

#include "mm/alloc_stats.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "klsm/block_pool.hpp"
#include "klsm/k_lsm.hpp"
#include "mm/item_pool.hpp"
#include "util/rng.hpp"

namespace klsm {
namespace {

TEST(PoolStats, ItemPoolCountsReuseSweepHits) {
    item_pool<std::uint32_t, std::uint32_t> pool;
    // allocate/take cycles: after the first allocation every further
    // one should be satisfied by the reuse sweep.
    for (std::uint32_t i = 0; i < 100; ++i) {
        auto ref = pool.allocate(i, i);
        ref.take();
    }
    const auto snap = pool.stats().snapshot();
    EXPECT_EQ(snap.reuse_hits + snap.fresh_allocs, 100u);
    EXPECT_LE(snap.fresh_allocs, 2u);
    EXPECT_GE(snap.reuse_hits, 98u);
    EXPECT_GT(snap.reuse_hit_rate(), 0.9);
    EXPECT_GE(snap.chunks, 1u);
    EXPECT_GT(snap.bytes, 0u);
    EXPECT_EQ(snap.growth_beyond_bound, 0u)
        << "item pools have no paper bound to exceed";
}

TEST(PoolStats, BlockPoolCountsReuseFreshAndGrowth) {
    block_pool<std::uint32_t, std::uint32_t> pool;
    using pool_t = block_pool<std::uint32_t, std::uint32_t>;
    std::vector<block<std::uint32_t, std::uint32_t> *> held;
    for (int i = 0; i < 6; ++i)
        held.push_back(pool.acquire(0, 0, pool_t::always_recyclable));
    const auto snap = pool.stats().snapshot();
    // Acquires 1 (eager batch) and 5, 6 (overflow) allocated; 2-4 hit.
    EXPECT_EQ(snap.reuse_hits, 3u);
    EXPECT_EQ(snap.fresh_allocs, 3u);
    EXPECT_EQ(snap.growth_beyond_bound, 2u);
    EXPECT_EQ(snap.growth_beyond_bound, pool.overflow_allocations());
    EXPECT_EQ(snap.chunks, 6u) << "4 eager + 2 overflow blocks";
    EXPECT_GT(snap.bytes, 0u);
    for (auto *b : held)
        pool.release(b);
}

TEST(PoolStats, KLsmAggregatesItemAndBlockPools) {
    k_lsm<std::uint32_t, std::uint32_t> q{8};
    for (std::uint32_t i = 0; i < 1000; ++i)
        q.insert(i, i);
    const auto m = q.memory_stats();
    EXPECT_GT(m.items.chunks, 0u);
    EXPECT_GT(m.items.fresh_allocs, 0u);
    EXPECT_GT(m.dist_blocks.chunks, 0u);
    EXPECT_GT(m.dist_blocks.bytes, 0u);
    EXPECT_EQ(m.dist_blocks.growth_beyond_bound, 0u);
    EXPECT_GT(m.shared_blocks.chunks, 0u)
        << "k=8 forces spills into the shared component";
    EXPECT_FALSE(m.resident_queried)
        << "residency is opt-in, not a side effect";
}

TEST(PoolStats, ResidencyQueryCoversTheBackingPages) {
    if (!mm::residency_query_supported())
        GTEST_SKIP() << "move_pages not available on this platform";
    k_lsm<std::uint32_t, std::uint32_t> q{
        8, {}, {mm::numa_alloc_policy::bind, 0}};
    for (std::uint32_t i = 0; i < 1000; ++i)
        q.insert(i, i);
    const auto m = q.memory_stats(true);
    EXPECT_TRUE(m.resident_queried);
    EXPECT_GT(m.items_resident.total_pages(), 0u);
    EXPECT_GT(m.dist_blocks_resident.total_pages(), 0u);
    // Placed chunks are page-rounded and pre-faulted, so the counted
    // bytes fully convert into countable pages.
    EXPECT_EQ(m.items_resident.total_pages(),
              m.items.bytes / mm::page_size());
    EXPECT_EQ(m.dist_blocks_resident.total_pages(),
              m.dist_blocks.bytes / mm::page_size());
    EXPECT_EQ(m.shared_blocks_resident.total_pages(),
              m.shared_blocks.bytes / mm::page_size());
}

TEST(PoolStats, ResidencySkipsUnplacedStorage) {
    if (!mm::residency_query_supported())
        GTEST_SKIP() << "move_pages not available on this platform";
    // `none`-policy storage shares heap pages with unrelated
    // allocations, so per-page attribution would double-count; the
    // region walk must skip it rather than report inflated totals.
    k_lsm<std::uint32_t, std::uint32_t> q{8};
    for (std::uint32_t i = 0; i < 1000; ++i)
        q.insert(i, i);
    const auto m = q.memory_stats(true);
    EXPECT_TRUE(m.resident_queried);
    EXPECT_GT(m.items.bytes, 0u);
    EXPECT_EQ(m.items_resident.total_pages(), 0u);
    EXPECT_EQ(m.dist_blocks_resident.total_pages(), 0u);
    EXPECT_EQ(m.shared_blocks_resident.total_pages(), 0u);
}

// The paper's four-blocks-per-level bound (Section 4.4) holds in a
// concurrent mixed run, for every placement policy: growth beyond the
// bound would mean the pool's safety valve fired, i.e. a code path
// holds more blocks than the reasoning allows.
TEST(PoolStats, ConcurrentRunStaysWithinPaperBlockBound) {
    for (const auto policy :
         {mm::numa_alloc_policy::none, mm::numa_alloc_policy::bind,
          mm::numa_alloc_policy::firsttouch}) {
        k_lsm<std::uint32_t, std::uint32_t> q{16, {}, {policy, 0}};
        constexpr unsigned threads = 4;
        constexpr std::uint32_t per_thread = 20000;
        std::vector<std::thread> ts;
        for (unsigned w = 0; w < threads; ++w) {
            ts.emplace_back([&, w] {
                xoroshiro128 rng{42 + w};
                std::uint32_t k, v;
                for (std::uint32_t i = 0; i < per_thread; ++i) {
                    if (rng.bounded(2) == 0)
                        q.insert(static_cast<std::uint32_t>(
                                     rng.bounded(1 << 20)),
                                 w);
                    else
                        q.try_delete_min(k, v);
                }
            });
        }
        for (auto &t : ts)
            t.join();
        const auto m = q.memory_stats();
        EXPECT_EQ(m.dist_blocks.growth_beyond_bound, 0u)
            << "policy " << mm::numa_alloc_policy_name(policy);
        // The shared pool's valve may fire by design (see
        // mm/alloc_stats.hpp), but runaway growth would mean broken
        // reclamation: a handful of events across 80k ops is the
        // expected order of magnitude.
        EXPECT_LE(m.shared_blocks.growth_beyond_bound, 64u)
            << "policy " << mm::numa_alloc_policy_name(policy);
        EXPECT_GT(m.dist_blocks.chunks, 0u);
        EXPECT_GT(m.items.chunks, 0u);
        if (policy != mm::numa_alloc_policy::none) {
            EXPECT_EQ(m.dist_blocks.prefaulted_chunks,
                      m.dist_blocks.chunks);
            EXPECT_EQ(m.items.prefaulted_chunks, m.items.chunks);
        }
    }
}

} // namespace
} // namespace klsm
