// The reclamation tier end to end at the item_pool level: chunk
// lifecycle (active -> quarantined -> released -> revived), split
// reuse counters, ghost-push discarding, version monotonicity across a
// release/regrow cycle, and the none-policy "byte-identical to seed"
// contract.  The concurrent churn test at the bottom is the
// ASan/TSan/UBSan no-use-after-reclaim witness for the whole stack.

#include "mm/item_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "klsm/k_lsm.hpp"
#include "mm/reclaim/shrink.hpp"

namespace klsm {
namespace {

using pool_t = item_pool<std::uint32_t, std::uint64_t>;
using ref_t = item_ref<std::uint32_t, std::uint64_t>;

mm::mem_placement with_policy(mm::reclaim_policy p,
                              std::uint32_t period = 512,
                              std::uint32_t grace = 2) {
    mm::mem_placement place;
    place.reclaim.policy = p;
    place.reclaim.maintenance_period = period;
    place.reclaim.grace_inspections = grace;
    return place;
}

TEST(Reclaim, FreelistHitCountedSeparatelyFromSweepAndFresh) {
    pool_t pool{with_policy(mm::reclaim_policy::freelist)};
    auto a = pool.allocate(1, 1);
    ASSERT_TRUE(a.take()); // winner's take pushes onto the freelist
    auto b = pool.allocate(2, 2);
    EXPECT_EQ(b.it, a.it) << "freelist pop must recycle the dead item";
    const auto snap = pool.stats().snapshot();
    EXPECT_EQ(snap.fresh_allocs, 1u);
    EXPECT_EQ(snap.freelist_hits, 1u);
    EXPECT_EQ(snap.reuse_hits, 0u)
        << "a freelist recycle must not masquerade as a sweep hit";
    EXPECT_EQ(pool.freelist().pushes(), 1u);
}

TEST(Reclaim, SweepStillCountsWhenFreelistMisses) {
    // Freelist off: the same churn pattern must route through the
    // sweep counter instead.
    pool_t pool{with_policy(mm::reclaim_policy::shrink)};
    auto a = pool.allocate(1, 1);
    ASSERT_TRUE(a.take());
    auto b = pool.allocate(2, 2);
    EXPECT_EQ(b.it, a.it);
    const auto snap = pool.stats().snapshot();
    EXPECT_EQ(snap.freelist_hits, 0u);
    EXPECT_EQ(snap.reuse_hits, 1u);
}

TEST(Reclaim, NonePolicyBehavesExactlyLikeSeed) {
    pool_t pool; // default placement: reclamation off
    std::vector<ref_t> refs;
    for (std::uint32_t i = 0; i < 100; ++i) {
        auto r = pool.allocate(i, i);
        // With no tier attached the reclaim word must stay 0 — the
        // take path's only overhead is one relaxed load and a branch.
        EXPECT_EQ(r.it->reclaim_word().load(), 0u);
        ASSERT_TRUE(r.take());
    }
    const auto snap = pool.stats().snapshot();
    EXPECT_EQ(snap.freelist_hits, 0u);
    EXPECT_EQ(snap.freelist_drops, 0u);
    EXPECT_EQ(snap.shrink_events, 0u);
    EXPECT_EQ(snap.reclaimed_chunks, 0u);
    EXPECT_EQ(snap.released_bytes, 0u);
    EXPECT_GT(snap.reuse_hits, 0u) << "sweep recycling is seed behavior";
    EXPECT_TRUE(pool.freelist().empty());
    EXPECT_EQ(pool.quiescent_shrink(), 0u)
        << "shrink is a no-op when the policy does not enable it";
}

TEST(Reclaim, QuiescentShrinkReleasesFullyDeadChunks) {
    if (!mm::reclaim::release_pages_supported())
        GTEST_SKIP() << "madvise(MADV_DONTNEED) unavailable";
    pool_t pool{with_policy(mm::reclaim_policy::full)};
    // Chunks double: 256 + 512 fill the first two; 800 live items also
    // open (but do not fill) the third.
    std::vector<ref_t> refs;
    for (std::uint32_t i = 0; i < 800; ++i)
        refs.push_back(pool.allocate(i, i));
    for (auto &r : refs)
        ASSERT_TRUE(r.take());
    const std::size_t released = pool.quiescent_shrink();
    EXPECT_GE(released, 2u) << "both full, all-dead chunks must release";
    const auto census = pool.census();
    EXPECT_EQ(census.released, released);
    EXPECT_EQ(census.active + census.quarantined, 0u);
    const auto snap = pool.stats().snapshot();
    EXPECT_EQ(snap.reclaimed_chunks, released) << "gauge tracks census";
    EXPECT_EQ(snap.shrink_events, released);
    EXPECT_GT(snap.released_bytes, 0u);
    EXPECT_LE(snap.reclaimed_chunks, snap.chunks)
        << "the memory-schema invariant must hold at the source";
    EXPECT_LE(snap.released_bytes, snap.bytes);
}

TEST(Reclaim, StaleTakeAgainstReleasedChunkFailsSafely) {
    if (!mm::reclaim::release_pages_supported())
        GTEST_SKIP() << "madvise(MADV_DONTNEED) unavailable";
    pool_t pool{with_policy(mm::reclaim_policy::full)};
    std::vector<ref_t> refs;
    for (std::uint32_t i = 0; i < 256; ++i)
        refs.push_back(pool.allocate(i, i));
    // A stale reference as a block would hold it: alive version.
    ref_t stale = refs[7];
    for (auto &r : refs)
        ASSERT_TRUE(r.take());
    ASSERT_GE(pool.quiescent_shrink(), 1u);
    // The chunk's pages were zeroed; the item reads version 0 (even =
    // dead).  Type stability holds: the dereference is safe and the
    // stale take fails exactly like any other version mismatch.
    EXPECT_EQ(stale.it->version(), 0u);
    EXPECT_FALSE(stale.alive());
    EXPECT_FALSE(stale.take());
}

TEST(Reclaim, RevivedChunkRestoresVersionFloor) {
    if (!mm::reclaim::release_pages_supported())
        GTEST_SKIP() << "madvise(MADV_DONTNEED) unavailable";
    pool_t pool{with_policy(mm::reclaim_policy::full)};
    std::vector<ref_t> refs;
    for (std::uint32_t i = 0; i < 256; ++i)
        refs.push_back(pool.allocate(i, i));
    item<std::uint32_t, std::uint64_t> *tracked = refs[0].it;
    const std::uint64_t alive_version = refs[0].version;
    for (auto &r : refs)
        ASSERT_TRUE(r.take());
    const std::uint64_t dead_version = tracked->version();
    ASSERT_GE(pool.quiescent_shrink(), 1u);
    // Demand returns: allocations must revive the released chunk (the
    // pool has nothing else) and every republished version must exceed
    // everything the chunk held before the zeroing — the monotone-
    // version ABA defense survives release/regrow.
    bool found = false;
    for (std::uint32_t i = 0; i < 256; ++i) {
        auto r = pool.allocate(1000 + i, 0);
        EXPECT_EQ(r.version & 1, 1u);
        EXPECT_GT(r.version, alive_version);
        if (r.it == tracked) {
            found = true;
            EXPECT_GT(r.version, dead_version);
        }
    }
    EXPECT_TRUE(found) << "revived chunk must serve its items again";
    const auto census = pool.census();
    EXPECT_EQ(census.released, 0u);
    EXPECT_GE(census.active, 1u);
    const auto snap = pool.stats().snapshot();
    EXPECT_GE(snap.reactivated_chunks, 1u);
    EXPECT_EQ(snap.reclaimed_chunks, 0u)
        << "the reclaimed gauge must fall back on reactivation";
}

TEST(Reclaim, GhostPushOntoColdChunkIsDiscarded) {
    if (!mm::reclaim::release_pages_supported())
        GTEST_SKIP() << "madvise(MADV_DONTNEED) unavailable";
    pool_t pool{with_policy(mm::reclaim_policy::full)};
    std::vector<ref_t> refs;
    for (std::uint32_t i = 0; i < 256; ++i)
        refs.push_back(pool.allocate(i, i));
    item<std::uint32_t, std::uint64_t> *ghost_target = refs[3].it;
    for (auto &r : refs)
        ASSERT_TRUE(r.take());
    ASSERT_GE(pool.quiescent_shrink(), 1u);
    // A delayed deleter ("ghost") re-links an item of the now-cold
    // chunk.  The write refaults a zero page — benign — and the link
    // succeeds; pop-side validation must discard it rather than hand
    // out an item from an out-of-circulation chunk.
    ghost_target->attach_reclaim_sink(pool.freelist().sink_word());
    ASSERT_TRUE(pool.freelist().push(ghost_target));
    auto r = pool.allocate(42, 42);
    ASSERT_NE(r.it, nullptr);
    const auto snap = pool.stats().snapshot();
    EXPECT_GE(snap.freelist_drops, 1u)
        << "the ghost-linked cold item must be dropped, not recycled";
}

TEST(Reclaim, MaintenanceQuarantinesBeforeReleasing) {
    // Shrink-only policy (no freelist recycling to re-warm the chunk):
    // with maintenance every allocation and a 3-inspection grace, a
    // fully dead chunk must pass through quarantine before release.
    // Chunks 0 (256 items) and 1 (512) both fill; keeping one live item
    // in chunk 0 pins it active, so the round-robin inspection can only
    // ever take chunk 1 through the lifecycle.
    pool_t pool{with_policy(mm::reclaim_policy::shrink, 1, 3)};
    std::vector<ref_t> refs;
    for (std::uint32_t i = 0; i < 768; ++i)
        refs.push_back(pool.allocate(i, i));
    for (auto &r : refs)
        ASSERT_TRUE(r.take());
    // Allocation #1 republishes chunk-0 item 0 (kept live) and inspects
    // chunk 0, which its own publish just pinned; allocation #2 inspects
    // chunk 1: fully dead, quarantined.
    std::vector<ref_t> live;
    live.push_back(pool.allocate(1000, 0));
    {
        auto r = pool.allocate(1001, 0);
        ASSERT_TRUE(r.take());
    }
    EXPECT_EQ(pool.census().quarantined, 1u);
    EXPECT_EQ(pool.census().active, 1u);
    // Six more inspections alternate between the chunks; the third cold
    // inspection of chunk 1 ends its grace and releases it.
    for (std::uint32_t i = 0; i < 6; ++i) {
        auto r = pool.allocate(2000 + i, 0);
        ASSERT_TRUE(r.take());
    }
    const auto census = pool.census();
    if (mm::reclaim::release_pages_supported())
        EXPECT_EQ(census.released, 1u)
            << "grace elapsed: the quarantined chunk must release";
    else
        EXPECT_EQ(census.quarantined, 1u)
            << "platform refused: the chunk must stay quarantined";
}

TEST(Reclaim, ShrinkThenRegrowKeepsNodeBinding) {
    if (!mm::reclaim::release_pages_supported())
        GTEST_SKIP() << "madvise(MADV_DONTNEED) unavailable";
    mm::mem_placement place = with_policy(mm::reclaim_policy::full);
    place.policy = mm::numa_alloc_policy::bind;
    place.node = 0;
    pool_t pool{place};
    std::vector<ref_t> refs;
    for (std::uint32_t i = 0; i < 256; ++i)
        refs.push_back(pool.allocate(i, i));
    for (auto &r : refs)
        ASSERT_TRUE(r.take());
    ASSERT_GE(pool.quiescent_shrink(), 1u);
    // Regrow: revival refaults the released pages.  The mbind VMA
    // policy outlives MADV_DONTNEED, so the refaulted pages must land
    // back on the bound node.
    std::vector<ref_t> regrown;
    for (std::uint32_t i = 0; i < 256; ++i)
        regrown.push_back(pool.allocate(i, i));
    if (mm::residency_query_supported()) {
        mm::resident_histogram hist;
        bool queried = true;
        pool.for_each_region([&](const void *p, std::size_t bytes) {
            queried &= mm::query_resident_nodes(p, bytes, hist);
        });
        if (queried && !hist.empty()) {
            EXPECT_GT(hist.pages_on(0), 0u);
            for (const auto &[node, pages] : hist.pairs())
                EXPECT_EQ(node, 0u)
                    << pages << " refaulted pages landed off-node";
        }
    }
}

TEST(Reclaim, ConcurrentChurnThroughKlsmWithFullReclaim) {
    // The sanitizer witness: hammer a k_lsm whose pools run the full
    // reclamation tier from several threads, with maintenance forced
    // often, then verify counter coherence and that the queue still
    // drains correctly.  Under ASan/TSan this is the no-use-after-
    // reclaim / no-race proof for the freelist + shrink machinery.
    mm::mem_placement place = with_policy(mm::reclaim_policy::full,
                                          /*period=*/64, /*grace=*/1);
    k_lsm<std::uint32_t, std::uint32_t> q{64, {}, place};
    constexpr unsigned threads = 4;
    constexpr std::uint32_t ops = 8000;
    std::atomic<std::uint32_t> next_key{0};
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            std::uint32_t key, value;
            for (std::uint32_t i = 0; i < ops; ++i) {
                // Phase-shifted mix: the first half inserts twice as
                // often as it deletes, the second half the reverse, so
                // chunks fill, die, and revive under contention.
                const bool ins = (i < ops / 2) ? (i % 3) != 0
                                               : (i % 3) == 0;
                if (ins)
                    q.insert(next_key.fetch_add(1,
                                                std::memory_order_relaxed),
                             t);
                else
                    q.try_delete_min(key, value);
            }
        });
    }
    for (auto &w : workers)
        w.join();
    const std::size_t released = q.quiescent_shrink();
    (void)released; // platform-dependent; coherence checked below
    const auto stats = q.memory_stats();
    const auto &s = stats.items;
    EXPECT_LE(s.reclaimed_chunks, s.chunks);
    EXPECT_LE(s.released_bytes, s.bytes);
    EXPECT_GT(s.fresh_allocs, 0u);
    EXPECT_GT(s.freelist_hits + s.reuse_hits, 0u)
        << "sustained churn must recycle, not only grow";
    // Drain: keys must still come out plausibly (no duplicates beyond
    // what relaxation allows, no crash, no sanitizer report).
    std::uint32_t key, value;
    std::size_t drained = 0;
    while (q.try_delete_min(key, value))
        ++drained;
    EXPECT_FALSE(q.try_delete_min(key, value));
    (void)drained;
}

} // namespace
} // namespace klsm
