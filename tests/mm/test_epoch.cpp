#include "mm/epoch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace klsm {
namespace {

struct tracked {
    static std::atomic<int> live;
    tracked() { live.fetch_add(1); }
    ~tracked() { live.fetch_sub(1); }
};
std::atomic<int> tracked::live{0};

TEST(Epoch, RetiredNodesFreeEventually) {
    {
        epoch_manager mgr;
        {
            epoch_manager::guard g(mgr);
            for (int i = 0; i < 300; ++i)
                mgr.retire(new tracked);
        }
        // Unpinned: a few reclaim attempts must free everything retired
        // at least two epochs ago.
        for (int i = 0; i < 4; ++i) {
            epoch_manager::guard g(mgr);
            mgr.try_reclaim();
        }
    } // destructor frees the rest
    EXPECT_EQ(tracked::live.load(), 0);
}

TEST(Epoch, PinPreventsReclamation) {
    epoch_manager mgr;
    std::atomic<bool> pinned{false}, release{false};
    std::thread reader([&] {
        epoch_manager::guard g(mgr);
        pinned.store(true);
        while (!release.load())
            std::this_thread::yield();
    });
    while (!pinned.load())
        std::this_thread::yield();

    {
        epoch_manager::guard g(mgr);
        for (int i = 0; i < 300; ++i)
            mgr.retire(new tracked);
        // The reader is pinned in the epoch in which we retired; nothing
        // retired in this epoch may be freed yet.
        mgr.try_reclaim();
        mgr.try_reclaim();
    }
    EXPECT_EQ(static_cast<std::uint64_t>(tracked::live.load()),
              mgr.pending_count());
    EXPECT_GT(tracked::live.load(), 0);

    release.store(true);
    reader.join();
    for (int i = 0; i < 4; ++i) {
        epoch_manager::guard g(mgr);
        mgr.try_reclaim();
    }
    EXPECT_EQ(tracked::live.load(), 0);
}

TEST(Epoch, NestedGuardsCount) {
    epoch_manager mgr;
    {
        epoch_manager::guard outer(mgr);
        {
            epoch_manager::guard inner(mgr);
            mgr.retire(new tracked);
        }
        // Still pinned by the outer guard: the node must survive.
        mgr.try_reclaim();
        EXPECT_EQ(tracked::live.load(), 1);
    }
}

namespace churn {
std::atomic<long> node_live{0};
struct node {
    std::atomic<int> canary{12345};
    node() { node_live.fetch_add(1); }
    ~node() { node_live.fetch_sub(1); }
};
} // namespace churn

TEST(Epoch, ConcurrentChurnNeverUsesAfterFree) {
    using churn::node;
    epoch_manager mgr;
    std::atomic<node *> shared_node{new node};
    std::atomic<bool> stop{false};
    std::atomic<long> checks{0};

    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
        readers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                epoch_manager::guard g(mgr);
                node *n = shared_node.load(std::memory_order_acquire);
                // If the manager ever freed a node while readable, the
                // canary (poisoned in the deleter) would differ.
                ASSERT_EQ(n->canary.load(std::memory_order_relaxed), 12345);
                checks.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    std::thread writer([&] {
        for (int i = 0; i < 3000; ++i) {
            epoch_manager::guard g(mgr);
            node *fresh = new node;
            node *old = shared_node.exchange(fresh,
                                             std::memory_order_acq_rel);
            // The deleter poisons the canary just before freeing, so a
            // reader that could still reach a freed node would observe
            // the poison (and sanitizers would flag the access itself).
            mgr.retire_raw(old, [](void *p) {
                static_cast<node *>(p)->canary.store(-1,
                                                     std::memory_order_relaxed);
                delete static_cast<node *>(p);
            });
        }
        stop.store(true);
    });
    writer.join();
    for (auto &t : readers)
        t.join();
    EXPECT_GT(checks.load(), 0);
    // Accounting: every retired node is either freed already or still in
    // limbo (limbo of exited threads drains at manager destruction).
    EXPECT_EQ(mgr.freed_count() + mgr.pending_count(), 3000u);
    delete shared_node.load();
}

TEST(Epoch, DestructorDrainsExitedThreadsLimbo) {
    using churn::node;
    churn::node_live.store(0);
    {
        epoch_manager mgr;
        std::thread worker([&] {
            epoch_manager::guard g(mgr);
            for (int i = 0; i < 50; ++i)
                mgr.retire(new node);
        });
        worker.join();
        EXPECT_EQ(churn::node_live.load(), 50);
    }
    EXPECT_EQ(churn::node_live.load(), 0)
        << "destructor must free limbo of exited threads";
}

} // namespace
} // namespace klsm
