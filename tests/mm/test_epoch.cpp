#include "mm/epoch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace klsm {
namespace {

struct tracked {
    static std::atomic<int> live;
    tracked() { live.fetch_add(1); }
    ~tracked() { live.fetch_sub(1); }
};
std::atomic<int> tracked::live{0};

TEST(Epoch, RetiredNodesFreeEventually) {
    {
        epoch_manager mgr;
        {
            epoch_manager::guard g(mgr);
            for (int i = 0; i < 300; ++i)
                mgr.retire(new tracked);
        }
        // Unpinned: a few reclaim attempts must free everything retired
        // at least two epochs ago.
        for (int i = 0; i < 4; ++i) {
            epoch_manager::guard g(mgr);
            mgr.try_reclaim();
        }
    } // destructor frees the rest
    EXPECT_EQ(tracked::live.load(), 0);
}

TEST(Epoch, PinPreventsReclamation) {
    epoch_manager mgr;
    std::atomic<bool> pinned{false}, release{false};
    std::thread reader([&] {
        epoch_manager::guard g(mgr);
        pinned.store(true);
        while (!release.load())
            std::this_thread::yield();
    });
    while (!pinned.load())
        std::this_thread::yield();

    {
        epoch_manager::guard g(mgr);
        for (int i = 0; i < 300; ++i)
            mgr.retire(new tracked);
        // The reader is pinned in the epoch in which we retired; nothing
        // retired in this epoch may be freed yet.
        mgr.try_reclaim();
        mgr.try_reclaim();
    }
    EXPECT_EQ(static_cast<std::uint64_t>(tracked::live.load()),
              mgr.pending_count());
    EXPECT_GT(tracked::live.load(), 0);

    release.store(true);
    reader.join();
    for (int i = 0; i < 4; ++i) {
        epoch_manager::guard g(mgr);
        mgr.try_reclaim();
    }
    EXPECT_EQ(tracked::live.load(), 0);
}

TEST(Epoch, NestedGuardsCount) {
    epoch_manager mgr;
    {
        epoch_manager::guard outer(mgr);
        {
            epoch_manager::guard inner(mgr);
            mgr.retire(new tracked);
        }
        // Still pinned by the outer guard: the node must survive.
        mgr.try_reclaim();
        EXPECT_EQ(tracked::live.load(), 1);
    }
}

namespace churn {
std::atomic<long> node_live{0};
struct node {
    std::atomic<int> canary{12345};
    node() { node_live.fetch_add(1); }
    ~node() { node_live.fetch_sub(1); }
};
} // namespace churn

TEST(Epoch, ConcurrentChurnNeverUsesAfterFree) {
    using churn::node;
    epoch_manager mgr;
    std::atomic<node *> shared_node{new node};
    std::atomic<bool> stop{false};
    std::atomic<long> checks{0};

    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
        readers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                epoch_manager::guard g(mgr);
                node *n = shared_node.load(std::memory_order_acquire);
                // If the manager ever freed a node while readable, the
                // canary (poisoned in the deleter) would differ.
                ASSERT_EQ(n->canary.load(std::memory_order_relaxed), 12345);
                checks.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    std::thread writer([&] {
        for (int i = 0; i < 3000; ++i) {
            epoch_manager::guard g(mgr);
            node *fresh = new node;
            node *old = shared_node.exchange(fresh,
                                             std::memory_order_acq_rel);
            // The deleter poisons the canary just before freeing, so a
            // reader that could still reach a freed node would observe
            // the poison (and sanitizers would flag the access itself).
            mgr.retire_raw(old, [](void *p) {
                static_cast<node *>(p)->canary.store(-1,
                                                     std::memory_order_relaxed);
                delete static_cast<node *>(p);
            });
        }
        stop.store(true);
    });
    writer.join();
    for (auto &t : readers)
        t.join();
    EXPECT_GT(checks.load(), 0);
    // Accounting: every retired node is either freed already or still in
    // limbo (limbo of exited threads drains at manager destruction).
    EXPECT_EQ(mgr.freed_count() + mgr.pending_count(), 3000u);
    delete shared_node.load();
}

TEST(Epoch, DestructorDrainsExitedThreadsLimbo) {
    using churn::node;
    churn::node_live.store(0);
    {
        epoch_manager mgr;
        std::thread worker([&] {
            epoch_manager::guard g(mgr);
            for (int i = 0; i < 50; ++i)
                mgr.retire(new node);
        });
        worker.join();
        EXPECT_EQ(churn::node_live.load(), 50);
    }
    EXPECT_EQ(churn::node_live.load(), 0)
        << "destructor must free limbo of exited threads";
}

TEST(Epoch, AdvancementSurvivesThreadExit) {
    // A thread that pins, retires, and exits must never stall epoch
    // advancement: its pinned word returns to 0 at unpin, and the
    // advance scan skips unpinned slots.
    epoch_manager mgr;
    std::thread worker([&] {
        epoch_manager::guard g(mgr);
        mgr.retire(new tracked);
    });
    worker.join();
    const std::uint64_t before = mgr.current_epoch();
    for (int i = 0; i < 6; ++i) {
        epoch_manager::guard g(mgr);
        mgr.try_reclaim();
    }
    EXPECT_GT(mgr.current_epoch(), before)
        << "an exited thread must not pin the epoch forever";
    EXPECT_EQ(tracked::live.load(), 0)
        << "the exited thread's retired node must be freed";
}

TEST(Epoch, OrphanSweepDrainsExitedThreadsWithoutNewOwner) {
    // Nodes retired by exited threads must be freed by reclaim_orphans
    // (reachable from any thread's try_reclaim) — not wait for manager
    // destruction and not require the slot to be recycled first.
    epoch_manager mgr;
    for (int round = 0; round < 3; ++round) {
        std::thread worker([&] {
            epoch_manager::guard g(mgr);
            for (int i = 0; i < 40; ++i)
                mgr.retire(new tracked);
        });
        worker.join();
    }
    EXPECT_GT(tracked::live.load(), 0);
    for (int i = 0; i < 6; ++i) {
        epoch_manager::guard g(mgr);
        mgr.try_reclaim();
    }
    EXPECT_EQ(tracked::live.load(), 0);
    EXPECT_EQ(mgr.pending_count(), 0u);
}

TEST(Epoch, RecycledSlotAdoptsPredecessorsLimbo) {
    // Sequential short-lived threads recycle the same dense id
    // (util/thread_id.hpp hands out the smallest free slot).  Each new
    // owner that retires through a recycled slot must detect the
    // generation change and adopt what its predecessor left behind —
    // the limbo list survives the handoff, no node is lost or doubly
    // tracked, and the epoch tags keep reclamation exact.
    epoch_manager mgr;
    constexpr int rounds = 8, per_round = 10;
    for (int round = 0; round < rounds; ++round) {
        std::thread worker([&] {
            epoch_manager::guard g(mgr);
            for (int i = 0; i < per_round; ++i)
                mgr.retire(new tracked);
        });
        worker.join();
    }
    EXPECT_GT(mgr.limbo_adoptions(), 0u)
        << "sequential workers share a slot; adoption must trigger";
    EXPECT_EQ(mgr.freed_count() + mgr.pending_count(),
              static_cast<std::uint64_t>(rounds * per_round))
        << "adoption must neither lose nor duplicate retired nodes";
    for (int i = 0; i < 6; ++i) {
        epoch_manager::guard g(mgr);
        mgr.try_reclaim();
    }
    EXPECT_EQ(tracked::live.load(), 0);
}

TEST(Epoch, StalledReaderBoundsReclaimToItsEpoch) {
    // A stalled reader delays reclamation of nodes retired while it is
    // pinned, but must not block nodes retired at least two epochs
    // before its pin — the bound is the reader's pinned epoch, not a
    // global freeze.
    epoch_manager mgr;
    {
        epoch_manager::guard g(mgr);
        for (int i = 0; i < 30; ++i)
            mgr.retire(new tracked);
    }
    // Let the old batch become reclaimable (advance at least twice).
    for (int i = 0; i < 3; ++i) {
        epoch_manager::guard g(mgr);
        mgr.try_reclaim();
    }
    std::atomic<bool> pinned{false}, release{false};
    std::thread reader([&] {
        epoch_manager::guard g(mgr);
        pinned.store(true);
        while (!release.load())
            std::this_thread::yield();
    });
    while (!pinned.load())
        std::this_thread::yield();
    {
        epoch_manager::guard g(mgr);
        for (int i = 0; i < 30; ++i)
            mgr.retire(new tracked);
        mgr.try_reclaim();
    }
    // The pre-pin batch must be gone even though the reader stalls;
    // only the batch retired under the reader's pin may linger.
    EXPECT_LE(mgr.pending_count(), 30u)
        << "a stalled reader must only hold back its own epoch's nodes";
    release.store(true);
    reader.join();
    for (int i = 0; i < 6; ++i) {
        epoch_manager::guard g(mgr);
        mgr.try_reclaim();
    }
    EXPECT_EQ(tracked::live.load(), 0);
}

TEST(Epoch, ConcurrentRetireAndOrphanSweepStaysCoherent) {
    // Retiring threads, exiting threads, and orphan sweeps all touch
    // the per-slot limbo lists concurrently; under TSan this is the
    // witness that the per-slot locking covers every access.
    epoch_manager mgr;
    constexpr int writers = 3, per_writer = 400;
    std::atomic<bool> stop{false};
    std::thread sweeper([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            mgr.reclaim_orphans();
            std::this_thread::yield();
        }
    });
    std::vector<std::thread> threads;
    for (int t = 0; t < writers; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < per_writer; ++i) {
                epoch_manager::guard g(mgr);
                mgr.retire(new tracked);
                if (i % 64 == 0)
                    mgr.try_reclaim();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    stop.store(true);
    sweeper.join();
    EXPECT_EQ(mgr.freed_count() + mgr.pending_count(),
              static_cast<std::uint64_t>(writers * per_writer));
}

} // namespace
} // namespace klsm
