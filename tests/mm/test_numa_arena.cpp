// Node-bound arena / placement layer (mm/placement.hpp, mm/arena.hpp,
// mm/alloc_stats.hpp).
//
// This container is single-node, so what can be asserted hard is the
// ISSUE's fallback contract: the bind policy must be behavior-identical
// to the plain arena (same chunk pattern, same stable pointers, same
// values), binding to the only real node must succeed where the kernel
// allows mbind, and binding to a nonexistent node must degrade to
// pre-faulted allocation instead of failing.  Residency assertions are
// gated on move_pages being queryable.

#include "mm/arena.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mm/alloc_stats.hpp"
#include "mm/placement.hpp"

namespace klsm {
namespace {

TEST(Placement, PolicyNamesRoundTrip) {
    using mm::numa_alloc_policy;
    for (const auto p :
         {numa_alloc_policy::none, numa_alloc_policy::bind,
          numa_alloc_policy::firsttouch}) {
        const auto parsed =
            mm::parse_numa_alloc_policy(mm::numa_alloc_policy_name(p));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, p);
    }
    EXPECT_FALSE(mm::parse_numa_alloc_policy("interleave").has_value());
    EXPECT_FALSE(mm::parse_numa_alloc_policy("").has_value());
}

TEST(PlacedArray, NonePolicyIsPlainAllocation) {
    auto a = mm::placed_array<int>::allocate(100, {});
    ASSERT_NE(a.get(), nullptr);
    EXPECT_EQ(a.size(), 100u);
    EXPECT_EQ(a.bytes(), 100 * sizeof(int));
    EXPECT_FALSE(a.how_placed().bound);
    EXPECT_FALSE(a.how_placed().prefaulted);
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_EQ(a[i], 0) << "value-initialized like make_unique<T[]>";
}

TEST(PlacedArray, PlacedPoliciesPrefaultPageAlignedStorage) {
    for (const auto policy : {mm::numa_alloc_policy::bind,
                              mm::numa_alloc_policy::firsttouch}) {
        auto a = mm::placed_array<int>::allocate(
            100, {policy, 0});
        ASSERT_NE(a.get(), nullptr);
        EXPECT_EQ(a.size(), 100u);
        EXPECT_TRUE(a.how_placed().prefaulted);
        EXPECT_EQ(a.bytes() % mm::page_size(), 0u);
        EXPECT_GE(a.bytes(), 100 * sizeof(int));
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.region()) %
                      mm::page_size(),
                  0u);
        for (std::size_t i = 0; i < 100; ++i) {
            EXPECT_EQ(a[i], 0);
            a[i] = static_cast<int>(i);
        }
        // Pre-faulted pages are immediately resident and countable.
        if (mm::residency_query_supported()) {
            mm::resident_histogram hist;
            ASSERT_TRUE(
                mm::query_resident_nodes(a.region(), a.bytes(), hist));
            EXPECT_EQ(hist.total_pages(),
                      a.bytes() / mm::page_size());
        }
    }
}

TEST(PlacedArray, MoveTransfersOwnership) {
    auto a = mm::placed_array<int>::allocate(
        8, {mm::numa_alloc_policy::bind, 0});
    int *data = a.get();
    data[3] = 42;
    mm::placed_array<int> b = std::move(a);
    EXPECT_EQ(a.get(), nullptr);
    EXPECT_EQ(b.get(), data) << "elements never move (type stability)";
    EXPECT_EQ(b[3], 42);
}

// The ISSUE's single-node acceptance contract: bind behaves exactly
// like the plain arena — identical chunk pattern, identical allocation
// order, stable distinct pointers, identical observable content.
TEST(NumaArena, BindBehaviorIdenticalToPlainArenaFallback) {
    mm::alloc_counters plain_counters, bound_counters;
    arena<int> plain{4, {}, &plain_counters};
    numa_arena<int> bound{0, mm::numa_alloc_policy::bind, 4,
                          &bound_counters};
    std::vector<int *> plain_ptrs, bound_ptrs;
    for (int i = 0; i < 100; ++i) {
        int *p = plain.allocate();
        int *q = bound.allocate();
        *p = i;
        *q = i;
        plain_ptrs.push_back(p);
        bound_ptrs.push_back(q);
    }
    EXPECT_EQ(plain.size(), bound.size());
    EXPECT_EQ(std::set<int *>(bound_ptrs.begin(), bound_ptrs.end()).size(),
              100u);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(*plain_ptrs[static_cast<std::size_t>(i)],
                  *bound_ptrs[static_cast<std::size_t>(i)]);
        EXPECT_EQ(bound.at(static_cast<std::size_t>(i)), i);
    }
    int expect = 0;
    bound.for_each([&](int &v) { EXPECT_EQ(v, expect++); });
    EXPECT_EQ(expect, 100);
    // Identical geometric chunk pattern (4, 8, 16, 32, 64 => 5 chunks).
    EXPECT_EQ(plain_counters.snapshot().chunks,
              bound_counters.snapshot().chunks);
    EXPECT_EQ(plain_counters.snapshot().chunks, 5u);
    // The residency walk covers exactly the page-managed chunks:
    // all of bound's, none of plain's (heap-shared pages would double
    // count; see placed_array::page_managed).
    std::size_t plain_regions = 0, bound_regions = 0;
    plain.for_each_region(
        [&](const void *, std::size_t) { ++plain_regions; });
    bound.for_each_region(
        [&](const void *, std::size_t) { ++bound_regions; });
    EXPECT_EQ(plain_regions, 0u);
    EXPECT_EQ(bound_regions, 5u);
}

TEST(NumaArena, BindToRealNodeBindsEveryChunk) {
    mm::alloc_counters counters;
    numa_arena<std::uint64_t> a{0, mm::numa_alloc_policy::bind, 16,
                                &counters};
    for (int i = 0; i < 200; ++i)
        *a.allocate() = 7;
    const auto snap = counters.snapshot();
    EXPECT_GT(snap.chunks, 1u);
    EXPECT_GE(snap.bytes, 200 * sizeof(std::uint64_t));
    EXPECT_EQ(snap.prefaulted_chunks, snap.chunks);
    // Every Linux kernel we run on accepts mbind to node 0; a seccomp
    // filter that rejects it is the documented fallback, in which case
    // nothing is bound rather than some things.
    EXPECT_TRUE(snap.bound_chunks == snap.chunks ||
                snap.bound_chunks == 0);
    if (mm::residency_query_supported() &&
        snap.bound_chunks == snap.chunks) {
        mm::resident_histogram hist;
        a.for_each_region([&](const void *p, std::size_t bytes) {
            mm::query_resident_nodes(p, bytes, hist);
        });
        EXPECT_EQ(hist.total_pages(), snap.bytes / mm::page_size());
        EXPECT_EQ(hist.pages_on(0), hist.total_pages())
            << "bound chunks must be resident on the target node";
    }
}

TEST(NumaArena, BindToNonexistentNodeDegradesGracefully) {
    mm::alloc_counters counters;
    numa_arena<int> a{999, mm::numa_alloc_policy::bind, 8, &counters};
    for (int i = 0; i < 50; ++i)
        *a.allocate() = i;
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.at(static_cast<std::size_t>(i)), i);
    const auto snap = counters.snapshot();
    EXPECT_EQ(snap.bound_chunks, 0u)
        << "mbind to a nonexistent node must be refused, not faked";
    EXPECT_EQ(snap.prefaulted_chunks, snap.chunks)
        << "the fallback still pre-faults";
}

TEST(NumaArena, FirstTouchNeverCallsMbind) {
    mm::alloc_counters counters;
    numa_arena<int> a{0, mm::numa_alloc_policy::firsttouch, 8, &counters};
    for (int i = 0; i < 50; ++i)
        a.allocate();
    const auto snap = counters.snapshot();
    EXPECT_EQ(snap.bound_chunks, 0u);
    EXPECT_EQ(snap.prefaulted_chunks, snap.chunks);
}

TEST(AllocCounters, ArenaChunkAccountingMatchesRegions) {
    mm::alloc_counters counters;
    // firsttouch: every chunk is page-managed, so the region walk must
    // cover exactly what the counters recorded.
    arena<int> a{4, {mm::numa_alloc_policy::firsttouch, 0}, &counters};
    for (int i = 0; i < 30; ++i)
        a.allocate();
    std::uint64_t region_bytes = 0, regions = 0;
    a.for_each_region([&](const void *, std::size_t bytes) {
        region_bytes += bytes;
        ++regions;
    });
    const auto snap = counters.snapshot();
    EXPECT_EQ(snap.chunks, regions);
    EXPECT_EQ(snap.bytes, region_bytes);
}

TEST(ResidentHistogram, AccumulatesAndMerges) {
    mm::resident_histogram a;
    a.add(0, 3);
    a.add(2, 1);
    a.add_unknown(2);
    mm::resident_histogram b;
    b.add(2, 4);
    a.merge(b);
    EXPECT_EQ(a.pages_on(0), 3u);
    EXPECT_EQ(a.pages_on(2), 5u);
    EXPECT_EQ(a.pages_on(1), 0u);
    EXPECT_EQ(a.unknown_pages(), 2u);
    EXPECT_EQ(a.total_pages(), 10u);
    const auto pairs = a.pairs();
    ASSERT_EQ(pairs.size(), 2u);
    EXPECT_EQ(pairs[0], (std::pair<std::uint32_t, std::uint64_t>{0, 3}));
    EXPECT_EQ(pairs[1], (std::pair<std::uint32_t, std::uint64_t>{2, 5}));
}

TEST(MemoryJson, CarriesTheDocumentedSchema) {
    mm::memory_stats m;
    m.items.chunks = 2;
    m.items.bytes = 8192;
    m.items.reuse_hits = 10;
    m.items.fresh_allocs = 30;
    m.dist_blocks.chunks = 8;
    m.dist_blocks.bytes = 65536;
    m.shared_blocks.chunks = 4;
    m.shared_blocks.growth_beyond_bound = 1;
    m.resident_queried = true;
    m.items_resident.add(0, 2);
    m.dist_blocks_resident.add(1, 16);
    const std::string json =
        mm::memory_json(m, mm::numa_alloc_policy::bind);
    for (const char *needle :
         {"\"policy\":\"bind\"", "\"resident_queried\":true",
          "\"pools\":{", "\"items\":{", "\"dist_blocks\":{",
          "\"shared_blocks\":{", "\"chunks\":2", "\"bytes\":8192",
          "\"reuse_hits\":10", "\"fresh_allocs\":30",
          "\"reuse_hit_rate\":0.25", "\"growth_beyond_bound\":1",
          "\"resident_nodes\":[[0,2]]", "\"resident_nodes\":[[1,16]]"})
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle << " in " << json;
    // Without residency the histogram fields are omitted entirely.
    m.resident_queried = false;
    const std::string no_resident =
        mm::memory_json(m, mm::numa_alloc_policy::none);
    EXPECT_EQ(no_resident.find("resident_nodes"), std::string::npos);
    EXPECT_NE(no_resident.find("\"policy\":\"none\""),
              std::string::npos);
}

} // namespace
} // namespace klsm
