#include "mm/item_pool.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace klsm {
namespace {

using pool_t = item_pool<std::uint32_t, std::uint64_t>;

TEST(ItemPool, AllocatePublishesPayload) {
    pool_t pool;
    auto ref = pool.allocate(42, 99);
    ASSERT_NE(ref.it, nullptr);
    EXPECT_EQ(ref.key, 42u);
    EXPECT_EQ(ref.it->key(), 42u);
    EXPECT_EQ(ref.it->value(), 99u);
    EXPECT_TRUE(ref.alive());
    EXPECT_EQ(ref.version & 1, 1u) << "alive versions are odd";
}

TEST(ItemPool, TakeMakesItemDeadAndRefusesDoubleTake) {
    pool_t pool;
    auto ref = pool.allocate(1, 2);
    EXPECT_TRUE(ref.take());
    EXPECT_FALSE(ref.alive());
    EXPECT_FALSE(ref.take()) << "double delete must fail";
}

TEST(ItemPool, ReusesTakenItems) {
    pool_t pool;
    // 64 concurrently live items force the pool to 64 distinct slots.
    std::vector<item_ref<std::uint32_t, std::uint64_t>> refs;
    for (std::uint32_t i = 0; i < 64; ++i)
        refs.push_back(pool.allocate(i, i));
    for (auto &ref : refs)
        ref.take();
    const std::size_t cap_before = pool.capacity();
    EXPECT_GE(cap_before, 64u);
    // All 64 are reusable; the next 64 allocations should not grow the
    // pool much (the sweep has a bounded budget, so allow slack).
    for (std::uint32_t i = 0; i < 64; ++i)
        pool.allocate(1000 + i, 0);
    EXPECT_LE(pool.capacity(), cap_before + 8);
}

TEST(ItemPool, ImmediateTakeReusesSingleSlot) {
    pool_t pool;
    for (std::uint32_t i = 0; i < 100; ++i) {
        auto ref = pool.allocate(i, i);
        ref.take();
    }
    EXPECT_LE(pool.capacity(), 2u)
        << "allocate-take cycles should recycle one slot";
}

TEST(ItemPool, StaleReferenceCannotTakeReusedItem) {
    pool_t pool;
    auto ref = pool.allocate(5, 5);
    auto stale = ref;
    ASSERT_TRUE(ref.take());
    // Force reuse of the same item.
    item<std::uint32_t, std::uint64_t> *recycled = nullptr;
    for (int i = 0; i < 10000 && recycled != stale.it; ++i) {
        auto r = pool.allocate(100, 100);
        recycled = r.it;
        if (recycled != stale.it)
            r.take();
    }
    ASSERT_EQ(recycled, stale.it) << "sweep should eventually recycle";
    EXPECT_FALSE(stale.alive());
    EXPECT_FALSE(stale.take()) << "ABA: stale version must not take";
}

TEST(ItemPool, VersionsStrictlyIncreasePerItem) {
    pool_t pool;
    auto ref = pool.allocate(1, 1);
    const std::uint64_t v1 = ref.version;
    ref.take();
    // Recycle the same physical item.
    item<std::uint32_t, std::uint64_t> *it = ref.it;
    std::uint64_t v2 = 0;
    for (int i = 0; i < 10000; ++i) {
        auto r = pool.allocate(2, 2);
        if (r.it == it) {
            v2 = r.version;
            break;
        }
        r.take();
    }
    ASSERT_NE(v2, 0u);
    EXPECT_GT(v2, v1);
}

TEST(ItemPool, GrowsWhenEverythingIsAlive) {
    pool_t pool;
    std::set<item<std::uint32_t, std::uint64_t> *> live;
    for (std::uint32_t i = 0; i < 1000; ++i) {
        auto ref = pool.allocate(i, i);
        EXPECT_TRUE(live.insert(ref.it).second)
            << "live item handed out twice";
    }
    EXPECT_GE(pool.capacity(), 1000u);
}

} // namespace
} // namespace klsm
