#include "mm/reclaim/freelist.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "klsm/item.hpp"

namespace klsm {
namespace {

using node = item<std::uint32_t, std::uint64_t>;
using list = mm::reclaim::tagged_freelist<node>;

// Fresh default-constructed items: version 0 (even, dead), reclaim
// word 0 (no sink).
std::unique_ptr<node[]> make_nodes(std::size_t n) {
    return std::unique_ptr<node[]>(new node[n]);
}

TEST(Freelist, PushPopRoundTripLifo) {
    list fl;
    auto nodes = make_nodes(3);
    for (int i = 0; i < 3; ++i) {
        nodes[i].attach_reclaim_sink(fl.sink_word());
        EXPECT_TRUE(fl.push(&nodes[i]));
    }
    EXPECT_EQ(fl.pushes(), 3u);
    // Treiber stack: LIFO order.
    EXPECT_EQ(fl.pop(), &nodes[2]);
    EXPECT_EQ(fl.pop(), &nodes[1]);
    EXPECT_EQ(fl.pop(), &nodes[0]);
    EXPECT_EQ(fl.pop(), nullptr);
    EXPECT_TRUE(fl.empty());
}

TEST(Freelist, PopRestoresAttachedUnlinkedWord) {
    list fl;
    auto nodes = make_nodes(1);
    nodes[0].attach_reclaim_sink(fl.sink_word());
    ASSERT_TRUE(fl.push(&nodes[0]));
    EXPECT_TRUE(nodes[0].freelist_linked());
    ASSERT_EQ(fl.pop(), &nodes[0]);
    EXPECT_FALSE(nodes[0].freelist_linked());
    EXPECT_EQ(nodes[0].reclaim_word().load(), fl.sink_word());
}

TEST(Freelist, PushWithoutSinkIsSkipped) {
    list fl;
    auto nodes = make_nodes(1);
    // Word is 0 (no sink attached): the claim CAS must fail and the
    // list must stay empty — list integrity over completeness.
    EXPECT_FALSE(fl.push(&nodes[0]));
    EXPECT_EQ(fl.push_skips(), 1u);
    EXPECT_TRUE(fl.empty());
}

TEST(Freelist, SecondPushOfLinkedNodeIsSkipped) {
    list fl;
    auto nodes = make_nodes(1);
    nodes[0].attach_reclaim_sink(fl.sink_word());
    ASSERT_TRUE(fl.push(&nodes[0]));
    // A ghost pusher arriving late finds the word already in linked
    // state and must lose the claim — this is what prevents a node
    // from appearing twice in the chain.
    EXPECT_FALSE(fl.push(&nodes[0]));
    EXPECT_EQ(fl.pushes(), 1u);
    EXPECT_EQ(fl.push_skips(), 1u);
    EXPECT_EQ(fl.pop(), &nodes[0]);
    EXPECT_EQ(fl.pop(), nullptr);
}

TEST(Freelist, DetachAllWalksWholeChain) {
    list fl;
    auto nodes = make_nodes(4);
    for (int i = 0; i < 4; ++i) {
        nodes[i].attach_reclaim_sink(fl.sink_word());
        ASSERT_TRUE(fl.push(&nodes[i]));
    }
    node *head = fl.detach_all();
    EXPECT_TRUE(fl.empty());
    std::vector<node *> seen;
    for (node *x = head; x != nullptr; x = list::linked_next(x))
        seen.push_back(x);
    ASSERT_EQ(seen.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(seen[i], &nodes[3 - i]) << "LIFO walk order";
    // Detached nodes keep linked-state words until re-pointed; after
    // re-attaching they are pushable again.
    for (node *x : seen)
        x->attach_reclaim_sink(fl.sink_word());
    for (node *x : seen)
        EXPECT_TRUE(fl.push(x));
}

TEST(Freelist, ConcurrentProducersSingleConsumer) {
    constexpr int producers = 4;
    constexpr int per_producer = 5000;
    list fl;
    auto nodes = make_nodes(producers * per_producer);
    for (int i = 0; i < producers * per_producer; ++i)
        nodes[i].attach_reclaim_sink(fl.sink_word());

    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    for (int p = 0; p < producers; ++p) {
        workers.emplace_back([&, p] {
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            for (int i = 0; i < per_producer; ++i)
                ASSERT_TRUE(fl.push(&nodes[p * per_producer + i]));
        });
    }
    std::set<node *> received;
    std::thread consumer([&] {
        while (received.size() <
               static_cast<std::size_t>(producers * per_producer)) {
            node *x = fl.pop();
            if (x == nullptr) {
                std::this_thread::yield();
                continue;
            }
            ASSERT_TRUE(received.insert(x).second)
                << "node popped twice";
        }
    });
    go.store(true, std::memory_order_release);
    for (auto &w : workers)
        w.join();
    consumer.join();
    EXPECT_EQ(received.size(),
              static_cast<std::size_t>(producers * per_producer));
    EXPECT_EQ(fl.pushes(),
              static_cast<std::uint64_t>(producers * per_producer));
    EXPECT_EQ(fl.push_skips(), 0u);
    EXPECT_TRUE(fl.empty());
}

} // namespace
} // namespace klsm
