// contention_monitor: per-thread counter slots, windowed merge, EWMA
// folding, and concurrent counting (the slots are the src/stats/
// recorder-slot pattern, so the merge must be exact after joins).

#include "adapt/contention_monitor.hpp"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace klsm {
namespace adapt {
namespace {

TEST(ContentionMonitor, CountsShowUpInTotals) {
    contention_monitor mon;
    mon.count(event::shared_publish);
    mon.count(event::shared_publish);
    mon.count(event::shared_publish_retry);
    mon.count(event::delete_hit_shared);
    mon.count(event::delete_hit_local);
    mon.count(event::spy);
    const contention_window t = mon.totals();
    EXPECT_EQ(t.publishes, 2u);
    EXPECT_EQ(t.publish_retries, 1u);
    EXPECT_EQ(t.shared_hits, 1u);
    EXPECT_EQ(t.local_hits, 1u);
    EXPECT_EQ(t.spies, 1u);
    EXPECT_FALSE(t.idle());
}

TEST(ContentionMonitor, WindowsAreDeltas) {
    contention_monitor mon;
    for (int i = 0; i < 3; ++i)
        mon.count(event::shared_publish);
    mon.count(event::shared_publish_retry);
    const contention_window w1 = mon.sample_window();
    EXPECT_EQ(w1.publishes, 3u);
    EXPECT_EQ(w1.publish_retries, 1u);
    EXPECT_DOUBLE_EQ(w1.fail_rate(), 0.25);

    // Nothing happened since: the next window is empty, totals are not.
    const contention_window w2 = mon.sample_window();
    EXPECT_TRUE(w2.idle());
    EXPECT_EQ(w2.publishes, 0u);
    EXPECT_EQ(mon.totals().publishes, 3u);
}

TEST(ContentionMonitor, EwmaFoldsWindowRates) {
    contention_monitor mon{0.25};
    // Window 1: fail rate 0.5 -> EWMA 0.25 * 0.5 = 0.125.
    mon.count(event::shared_publish);
    mon.count(event::shared_publish_retry);
    const contention_window w1 = mon.sample_window();
    EXPECT_DOUBLE_EQ(w1.fail_rate_ewma, 0.125);
    // Window 2: identical -> 0.25 * 0.5 + 0.75 * 0.125 = 0.21875.
    mon.count(event::shared_publish);
    mon.count(event::shared_publish_retry);
    const contention_window w2 = mon.sample_window();
    EXPECT_DOUBLE_EQ(w2.fail_rate_ewma, 0.21875);
}

TEST(ContentionMonitor, IdleWindowsFreezeTheEwma) {
    contention_monitor mon{0.5};
    mon.count(event::shared_publish_retry);
    mon.count(event::shared_publish);
    const double after_activity = mon.sample_window().fail_rate_ewma;
    EXPECT_GT(after_activity, 0.0);
    // Idle windows carry the EWMA forward instead of decaying it into
    // a phantom all-quiet signal.
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(mon.sample_window().fail_rate_ewma,
                         after_activity);
}

TEST(ContentionMonitor, ActivePublishFreeWindowsDecayTheFailEwma) {
    contention_monitor mon{0.5};
    mon.count(event::shared_publish);
    mon.count(event::shared_publish_retry);
    const double contended = mon.sample_window().fail_rate_ewma;
    ASSERT_GT(contended, 0.0);
    // A delete-heavy phase: hits keep arriving but publishes stop.
    // That is evidence of a zero fail rate, and must decay the EWMA so
    // the controller can shrink k (only fully idle windows freeze it).
    mon.count(event::delete_hit_local);
    const double after = mon.sample_window().fail_rate_ewma;
    EXPECT_LT(after, contended);
    EXPECT_DOUBLE_EQ(after, 0.5 * contended);
}

TEST(ContentionMonitor, SharedFractionTracksHitMix) {
    contention_monitor mon{1.0}; // undamped: window rate == EWMA
    for (int i = 0; i < 3; ++i)
        mon.count(event::delete_hit_shared);
    mon.count(event::delete_hit_local);
    const contention_window w = mon.sample_window();
    EXPECT_DOUBLE_EQ(w.shared_fraction(), 0.75);
    EXPECT_DOUBLE_EQ(w.shared_fraction_ewma, 0.75);
}

TEST(ContentionMonitor, EmptyRatesAreZeroNotNan) {
    const contention_window w;
    EXPECT_DOUBLE_EQ(w.fail_rate(), 0.0);
    EXPECT_DOUBLE_EQ(w.shared_fraction(), 0.0);
    EXPECT_TRUE(w.idle());
}

TEST(ContentionMonitor, ConcurrentCountsMergeExactly) {
    contention_monitor mon;
    constexpr unsigned threads = 8;
    constexpr std::uint64_t per_thread = 20000;
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < threads; ++t) {
        ts.emplace_back([&] {
            for (std::uint64_t i = 0; i < per_thread; ++i) {
                mon.count(event::shared_publish);
                if (i % 4 == 0)
                    mon.count(event::delete_hit_local);
            }
        });
    }
    for (auto &t : ts)
        t.join();
    const contention_window w = mon.totals();
    EXPECT_EQ(w.publishes, threads * per_thread);
    EXPECT_EQ(w.local_hits, threads * (per_thread / 4));
}

} // namespace
} // namespace adapt
} // namespace klsm
