// k_controller: trace-driven unit tests of the control law — the
// controller is purely functional over (window, threads), so scripted
// contention traces exercise every decision path deterministically.

#include "adapt/k_controller.hpp"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace klsm {
namespace adapt {
namespace {

/// A non-idle window whose EWMA fail rate is scripted.
contention_window window(double fail_rate_ewma) {
    contention_window w;
    w.publishes = 100;
    w.publish_retries = 0;
    w.shared_hits = 50;
    w.local_hits = 50;
    w.fail_rate_ewma = fail_rate_ewma;
    w.shared_fraction_ewma = 0.5;
    return w;
}

k_controller_config config(std::size_t k_min = 16,
                           std::size_t k_max = 4096) {
    k_controller_config cfg;
    cfg.k_min = k_min;
    cfg.k_max = k_max;
    cfg.grow_fail_rate = 0.05;
    cfg.shrink_fail_rate = 0.01;
    cfg.cooldown_ticks = 2;
    return cfg;
}

TEST(KController, InitialKIsClampedIntoRange) {
    EXPECT_EQ(k_controller(config(16, 4096), 4).k(), 16u);
    EXPECT_EQ(k_controller(config(16, 4096), 100000).k(), 4096u);
    EXPECT_EQ(k_controller(config(16, 4096), 256).k(), 256u);
}

TEST(KController, SustainedContentionGrowsMonotonicallyToKMax) {
    k_controller ctrl{config(), 16};
    std::size_t prev = ctrl.k();
    for (int i = 0; i < 64; ++i) {
        const std::size_t k = ctrl.tick(window(0.5), 8);
        ASSERT_GE(k, prev) << "growth trace shrank k at tick " << i;
        ASSERT_LE(k, 4096u);
        prev = k;
    }
    EXPECT_EQ(ctrl.k(), 4096u);
    EXPECT_EQ(ctrl.max_k_seen(), 4096u);
    for (const k_decision &d : ctrl.log()) {
        EXPECT_STREQ(d.reason, "grow");
        EXPECT_EQ(d.new_k, d.old_k * 2);
    }
}

TEST(KController, QuietTraceShrinksMonotonicallyToKMin) {
    k_controller ctrl{config(), 4096};
    std::size_t prev = ctrl.k();
    for (int i = 0; i < 64; ++i) {
        const std::size_t k = ctrl.tick(window(0.0), 8);
        ASSERT_LE(k, prev) << "shrink trace grew k at tick " << i;
        prev = k;
    }
    EXPECT_EQ(ctrl.k(), 16u);
    // max_k_seen never decays: the rank bound covers the whole run.
    EXPECT_EQ(ctrl.max_k_seen(), 4096u);
}

TEST(KController, DeadBandHoldsK) {
    k_controller ctrl{config(), 256};
    // Between shrink (0.01) and grow (0.05): hysteresis, no decision.
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(ctrl.tick(window(0.03), 8), 256u);
    EXPECT_TRUE(ctrl.log().empty());
}

TEST(KController, CooldownLimitsChangeRate) {
    auto cfg = config();
    cfg.cooldown_ticks = 4;
    k_controller ctrl{cfg, 16};
    std::vector<std::uint64_t> change_ticks;
    for (int i = 0; i < 20; ++i)
        ctrl.tick(window(0.9), 8);
    for (const k_decision &d : ctrl.log())
        change_ticks.push_back(d.tick);
    ASSERT_GE(change_ticks.size(), 2u);
    for (std::size_t i = 1; i < change_ticks.size(); ++i)
        EXPECT_GE(change_ticks[i] - change_ticks[i - 1], 4u)
            << "two changes inside one cooldown window";
}

TEST(KController, IdleWindowsChangeNothing) {
    k_controller ctrl{config(), 256};
    contention_window idle; // all zero
    idle.fail_rate_ewma = 0.9; // stale EWMA must not fire on idle
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(ctrl.tick(idle, 8), 256u);
    EXPECT_TRUE(ctrl.log().empty());
}

TEST(KController, RankBudgetCapsGrowth) {
    auto cfg = config();
    // rho = T*k + k <= 1024 with T = 7 workers + 1 -> k <= 113.
    cfg.rank_budget = 1024;
    k_controller ctrl{cfg, 16};
    for (int i = 0; i < 32; ++i)
        ctrl.tick(window(0.9), 8);
    EXPECT_LE(ctrl.k() * (8 + 1), 1024u + ctrl.k())
        << "budget clamp violated";
    EXPECT_LE(ctrl.k(), 113u);
    EXPECT_GT(ctrl.k(), 16u) << "budget should still allow some growth";
}

TEST(KController, RankBudgetForcesShrinkWhenThreadsRise) {
    auto cfg = config();
    cfg.rank_budget = 1024;
    k_controller ctrl{cfg, 64};
    // With 255 participants the budget allows only k <= 4 -> k_min.
    ctrl.tick(window(0.03), 255);
    EXPECT_EQ(ctrl.k(), 16u); // k_min wins over an impossible budget
    ASSERT_FALSE(ctrl.log().empty());
    EXPECT_STREQ(ctrl.log().back().reason, "budget");
}

TEST(KController, BudgetOverridesCooldown) {
    // A violated budget must be corrected on the very next tick, even
    // under an extreme cooldown.
    auto cfg = config();
    cfg.cooldown_ticks = 100;
    cfg.rank_budget = 2048; // T = 15 + 1 -> k <= 128
    k_controller ctrl{cfg, 4096};
    ctrl.tick(window(0.03), 15);
    EXPECT_LE(ctrl.k(), 128u) << "budget correction waited for cooldown";
}

TEST(KController, SanitizesDegenerateConfig) {
    k_controller_config cfg;
    cfg.k_min = 0;
    cfg.k_max = 0;
    cfg.grow_fail_rate = 0.01;
    cfg.shrink_fail_rate = 0.5; // inverted band
    k_controller ctrl{cfg, 8};
    EXPECT_EQ(ctrl.k(), 1u);
    EXPECT_EQ(ctrl.config().k_min, 1u);
    EXPECT_GE(ctrl.config().k_max, ctrl.config().k_min);
    EXPECT_LE(ctrl.config().shrink_fail_rate,
              ctrl.config().grow_fail_rate);
}

TEST(KController, DecisionLogCarriesTheWindowContext) {
    k_controller ctrl{config(), 16};
    ctrl.tick(window(0.8), 8);
    ctrl.tick(window(0.8), 8);
    ASSERT_FALSE(ctrl.log().empty());
    const k_decision &d = ctrl.log().front();
    EXPECT_EQ(d.old_k, 16u);
    EXPECT_EQ(d.new_k, 32u);
    EXPECT_DOUBLE_EQ(d.fail_rate_ewma, 0.8);
    EXPECT_DOUBLE_EQ(d.shared_fraction_ewma, 0.5);
    EXPECT_GE(d.tick, 1u);
}

} // namespace
} // namespace adapt
} // namespace klsm
