// Lindén & Jonsson and SprayList specifics: prefix batching, spray
// relaxation envelope, reclamation safety under churn.

#include "baselines/linden.hpp"
#include "baselines/spraylist.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <vector>

namespace klsm {
namespace {

using key_t = std::uint32_t;
using val_t = std::uint64_t;

TEST(Linden, ExactOrderAcrossBoundOffsets) {
    for (unsigned bound : {1u, 2u, 32u, 1024u}) {
        linden_pq<key_t, val_t> q{bound};
        xoroshiro128 rng{bound};
        std::vector<key_t> keys;
        for (int i = 0; i < 500; ++i) {
            keys.push_back(static_cast<key_t>(rng.bounded(1 << 16)));
            q.insert(keys.back(), keys.back());
        }
        std::sort(keys.begin(), keys.end());
        key_t k;
        val_t v;
        for (auto expect : keys) {
            ASSERT_TRUE(q.try_delete_min(k, v)) << "bound=" << bound;
            ASSERT_EQ(k, expect) << "bound=" << bound;
        }
        EXPECT_FALSE(q.try_delete_min(k, v));
    }
}

TEST(Linden, FindMinDoesNotRemove) {
    linden_pq<key_t, val_t> q{32};
    q.insert(9, 90);
    q.insert(4, 40);
    key_t k;
    val_t v;
    ASSERT_TRUE(q.try_find_min(k, v));
    EXPECT_EQ(k, 4u);
    ASSERT_TRUE(q.try_find_min(k, v));
    EXPECT_EQ(k, 4u);
    ASSERT_TRUE(q.try_delete_min(k, v));
    EXPECT_EQ(k, 4u);
}

TEST(Linden, InsertSmallerThanDeletedPrefix) {
    // Regression guard for the classic front-insertion hazard: keys
    // smaller than already-deleted keys must still be delivered.
    linden_pq<key_t, val_t> q{64}; // large bound: prefix lingers
    for (key_t i = 100; i < 120; ++i)
        q.insert(i, i);
    key_t k;
    val_t v;
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(q.try_delete_min(k, v)); // deleted prefix 100..109
    q.insert(5, 5); // smaller than everything, dead or alive
    ASSERT_TRUE(q.try_delete_min(k, v));
    EXPECT_EQ(k, 5u);
    ASSERT_TRUE(q.try_delete_min(k, v));
    EXPECT_EQ(k, 110u);
}

TEST(Linden, ConcurrentMixedChurn) {
    linden_pq<key_t, val_t> q{32};
    constexpr int threads = 4, per_thread = 3000;
    std::atomic<std::uint64_t> deleted{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&, t] {
            xoroshiro128 rng{static_cast<std::uint64_t>(t) * 17 + 1};
            key_t k;
            val_t v;
            for (int i = 0; i < per_thread; ++i) {
                q.insert(static_cast<key_t>(rng.bounded(1 << 14)), 1);
                if (q.try_delete_min(k, v))
                    deleted.fetch_add(1);
            }
        });
    }
    for (auto &t : ts)
        t.join();
    key_t k;
    val_t v;
    std::uint64_t drained = 0;
    while (q.try_delete_min(k, v))
        ++drained;
    EXPECT_EQ(deleted.load() + drained,
              std::uint64_t{threads} * per_thread);
}

TEST(Spray, DrainsCompletely) {
    spray_pq<key_t, val_t> q{4};
    for (key_t i = 0; i < 1000; ++i)
        q.insert(i, i);
    std::vector<bool> seen(1000, false);
    key_t k;
    val_t v;
    for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(q.try_delete_min(k, v));
        ASSERT_LT(k, 1000u);
        ASSERT_FALSE(seen[k]);
        seen[k] = true;
    }
    EXPECT_FALSE(q.try_delete_min(k, v));
}

TEST(Spray, DeletionsAreFrontBiased) {
    // A spray must return keys near the front: with 10000 keys and T=4,
    // the spray range is O(T log^3 T) << 10000, so deletions should
    // almost never touch the upper half of the key space.
    spray_pq<key_t, val_t> q{4};
    for (key_t i = 0; i < 10000; ++i)
        q.insert(i, i);
    key_t k;
    val_t v;
    int high = 0;
    for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(q.try_delete_min(k, v));
        high += (k > 5000);
    }
    EXPECT_LT(high, 10) << "sprays landed far beyond the front region";
}

TEST(Spray, SpreadsOverFrontRegion) {
    // Unlike an exact queue, consecutive deletions by concurrent-style
    // usage should hit *different* front keys; sequentially, the first
    // delete is frequently not the exact minimum.
    int not_min = 0;
    for (int rep = 0; rep < 40; ++rep) {
        spray_pq<key_t, val_t> q{8};
        for (key_t i = 0; i < 1000; ++i)
            q.insert(i, i);
        key_t k;
        val_t v;
        ASSERT_TRUE(q.try_delete_min(k, v));
        not_min += (k != 0);
    }
    // The 1/T cleaner path takes the exact min; sprays usually don't.
    EXPECT_GT(not_min, 10);
}

TEST(Spray, ConcurrentConservationSmallKeyRange) {
    spray_pq<key_t, val_t> q{4};
    constexpr int threads = 4, per_thread = 2500;
    std::atomic<std::uint64_t> deleted{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&, t] {
            xoroshiro128 rng{static_cast<std::uint64_t>(t) * 13 + 5};
            key_t k;
            val_t v;
            for (int i = 0; i < per_thread; ++i) {
                q.insert(static_cast<key_t>(rng.bounded(64)), 1);
                if (rng.bounded(2) == 0 && q.try_delete_min(k, v))
                    deleted.fetch_add(1);
            }
        });
    }
    for (auto &t : ts)
        t.join();
    key_t k;
    val_t v;
    std::uint64_t drained = 0;
    while (q.try_delete_min(k, v))
        ++drained;
    EXPECT_EQ(deleted.load() + drained,
              std::uint64_t{threads} * per_thread);
}

TEST(Spray, ParametersScaleWithThreads) {
    spray_pq<key_t, val_t> small{2}, large{64};
    EXPECT_LT(small.spray_height_param(), large.spray_height_param());
    EXPECT_LE(small.jump_length_param(), large.jump_length_param());
}

} // namespace
} // namespace klsm
