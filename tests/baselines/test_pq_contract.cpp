// The shared priority-queue contract, run against EVERY queue in the
// library (typed tests): the paper's external interface semantics plus
// conservation under concurrency.  Exactness of delete-min order is
// checked only for the exact queues; relaxed queues are checked against
// their respective relaxation envelopes in their own test files.

#include "baselines/centralized_k.hpp"
#include "baselines/hybrid_k.hpp"
#include "baselines/linden.hpp"
#include "baselines/multiqueue.hpp"
#include "baselines/spin_heap.hpp"
#include "baselines/spraylist.hpp"
#include "klsm/k_lsm.hpp"
#include "klsm/pq_concept.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

namespace klsm {
namespace {

using key_t = std::uint32_t;
using val_t = std::uint64_t;

// Uniform construction across heterogeneous constructors.
template <typename PQ>
std::unique_ptr<PQ> create_queue() {
    if constexpr (std::is_same_v<PQ, multiqueue<key_t, val_t>>)
        return std::make_unique<PQ>(/*threads=*/4);
    else if constexpr (std::is_same_v<PQ, spray_pq<key_t, val_t>>)
        return std::make_unique<PQ>(/*threads=*/4);
    else if constexpr (std::is_same_v<PQ, linden_pq<key_t, val_t>>)
        return std::make_unique<PQ>(/*bound_offset=*/32);
    else if constexpr (std::is_same_v<PQ, k_lsm<key_t, val_t>> ||
                       std::is_same_v<PQ, centralized_k_pq<key_t, val_t>> ||
                       std::is_same_v<PQ, hybrid_k_pq<key_t, val_t>>)
        return std::make_unique<PQ>(/*k=*/16);
    else
        return std::make_unique<PQ>();
}

template <typename PQ>
class PqContract : public ::testing::Test {};

using all_queues = ::testing::Types<
    spin_heap<key_t, val_t>, multiqueue<key_t, val_t>,
    linden_pq<key_t, val_t>, spray_pq<key_t, val_t>,
    centralized_k_pq<key_t, val_t>, hybrid_k_pq<key_t, val_t>,
    k_lsm<key_t, val_t>, dist_pq<key_t, val_t>>;
TYPED_TEST_SUITE(PqContract, all_queues);

TYPED_TEST(PqContract, SatisfiesConcept) {
    static_assert(relaxed_priority_queue<TypeParam>);
}

TYPED_TEST(PqContract, EmptyQueueDeleteFails) {
    auto q = create_queue<TypeParam>();
    key_t k;
    val_t v;
    EXPECT_FALSE(q->try_delete_min(k, v));
}

TYPED_TEST(PqContract, SingleItemRoundTrip) {
    auto q = create_queue<TypeParam>();
    q->insert(42, 4242);
    key_t k;
    val_t v;
    ASSERT_TRUE(q->try_delete_min(k, v));
    EXPECT_EQ(k, 42u);
    EXPECT_EQ(v, 4242u);
    EXPECT_FALSE(q->try_delete_min(k, v));
}

TYPED_TEST(PqContract, EverythingInsertedComesBackOnce) {
    auto q = create_queue<TypeParam>();
    constexpr int n = 2000;
    xoroshiro128 rng{11};
    for (int i = 0; i < n; ++i)
        q->insert(static_cast<key_t>(rng.bounded(1000)),
                  static_cast<val_t>(i));
    std::vector<bool> seen(n, false);
    key_t k;
    val_t v;
    int got = 0, misses = 0;
    while (got < n && misses < 100) {
        if (q->try_delete_min(k, v)) {
            ASSERT_LT(v, static_cast<val_t>(n));
            ASSERT_FALSE(seen[v]) << "duplicate delivery of value " << v;
            seen[v] = true;
            ++got;
            misses = 0;
        } else {
            ++misses;
        }
    }
    EXPECT_EQ(got, n);
}

TYPED_TEST(PqContract, DeliveredKeysRespectInsertedKeys) {
    auto q = create_queue<TypeParam>();
    // All keys equal: any order is fine, but keys must be preserved.
    for (int i = 0; i < 100; ++i)
        q->insert(7, static_cast<val_t>(i));
    key_t k;
    val_t v;
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(q->try_delete_min(k, v));
        EXPECT_EQ(k, 7u);
    }
}

// The hybrid queue's thread-local buffers are private (no spying), so
// worker threads must drain them before exiting; every other queue keeps
// all items reachable from any thread.
template <typename PQ>
inline constexpr bool buffers_are_thread_private =
    std::is_same_v<PQ, hybrid_k_pq<key_t, val_t>>;

TYPED_TEST(PqContract, ConcurrentConservation) {
    auto q = create_queue<TypeParam>();
    constexpr int threads = 4;
    constexpr int per_thread = 2000;
    std::atomic<std::uint64_t> deleted{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&, t] {
            xoroshiro128 rng{static_cast<std::uint64_t>(t) + 1};
            key_t k;
            val_t v;
            for (int i = 0; i < per_thread; ++i) {
                q->insert(static_cast<key_t>(rng.bounded(1 << 16)), 0);
                if (rng.bounded(2) == 0 && q->try_delete_min(k, v))
                    deleted.fetch_add(1);
            }
            if constexpr (buffers_are_thread_private<TypeParam>) {
                while (q->try_delete_min(k, v))
                    deleted.fetch_add(1);
            }
        });
    }
    for (auto &t : ts)
        t.join();
    key_t k;
    val_t v;
    std::uint64_t drained = 0;
    int misses = 0;
    while (misses < 100) {
        if (q->try_delete_min(k, v)) {
            ++drained;
            misses = 0;
        } else {
            ++misses;
        }
    }
    EXPECT_EQ(deleted.load() + drained,
              std::uint64_t{threads} * per_thread)
        << "items lost or invented under concurrency";
}

// Exact queues must drain in sorted order from a single thread.
template <typename PQ>
class ExactPqContract : public ::testing::Test {};

using exact_queues =
    ::testing::Types<spin_heap<key_t, val_t>, linden_pq<key_t, val_t>>;
TYPED_TEST_SUITE(ExactPqContract, exact_queues);

TYPED_TEST(ExactPqContract, SortedDrain) {
    auto q = create_queue<TypeParam>();
    xoroshiro128 rng{5};
    std::vector<key_t> keys;
    for (int i = 0; i < 3000; ++i) {
        keys.push_back(static_cast<key_t>(rng.bounded(1 << 20)));
        q->insert(keys.back(), keys.back());
    }
    std::sort(keys.begin(), keys.end());
    key_t k;
    val_t v;
    for (auto expect : keys) {
        ASSERT_TRUE(q->try_delete_min(k, v));
        ASSERT_EQ(k, expect);
    }
    EXPECT_FALSE(q->try_delete_min(k, v));
}

TYPED_TEST(ExactPqContract, InterleavedMixMatchesOracle) {
    auto q = create_queue<TypeParam>();
    std::multiset<key_t> oracle;
    xoroshiro128 rng{6};
    key_t k;
    val_t v;
    for (int i = 0; i < 5000; ++i) {
        if (rng.bounded(100) < 60 || oracle.empty()) {
            const auto key = static_cast<key_t>(rng.bounded(500));
            q->insert(key, key);
            oracle.insert(key);
        } else {
            ASSERT_TRUE(q->try_delete_min(k, v));
            ASSERT_EQ(k, *oracle.begin());
            oracle.erase(oracle.begin());
        }
    }
}

} // namespace
} // namespace klsm
