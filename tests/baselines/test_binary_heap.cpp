#include "baselines/binary_heap.hpp"

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace klsm {
namespace {

using heap_t = binary_heap<std::uint32_t, std::uint64_t>;

TEST(BinaryHeap, EmptyBehaviour) {
    heap_t h;
    EXPECT_TRUE(h.empty());
    std::uint32_t k;
    std::uint64_t v;
    EXPECT_FALSE(h.try_delete_min(k, v));
    EXPECT_FALSE(h.try_find_min(k, v));
}

TEST(BinaryHeap, HeapSort) {
    heap_t h;
    xoroshiro128 rng{3};
    std::vector<std::uint32_t> keys;
    for (int i = 0; i < 1000; ++i) {
        keys.push_back(static_cast<std::uint32_t>(rng.bounded(10000)));
        h.insert(keys.back(), keys.back());
        ASSERT_TRUE(h.check_invariants());
    }
    std::sort(keys.begin(), keys.end());
    for (auto expect : keys) {
        std::uint32_t k;
        std::uint64_t v;
        ASSERT_TRUE(h.try_delete_min(k, v));
        ASSERT_EQ(k, expect);
    }
    EXPECT_TRUE(h.empty());
}

TEST(BinaryHeap, MinKeyMatchesFindMin) {
    heap_t h;
    h.insert(5, 1);
    h.insert(3, 2);
    h.insert(9, 3);
    EXPECT_EQ(h.min_key(), 3u);
    std::uint32_t k;
    std::uint64_t v;
    ASSERT_TRUE(h.try_find_min(k, v));
    EXPECT_EQ(k, 3u);
    EXPECT_EQ(v, 2u);
    EXPECT_EQ(h.size(), 3u) << "find must not remove";
}

TEST(BinaryHeap, DrainMovesEverythingOut) {
    heap_t h;
    for (std::uint32_t i = 0; i < 10; ++i)
        h.insert(i, i);
    auto items = h.drain();
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(items.size(), 10u);
}

TEST(BinaryHeap, DuplicatesSurvive) {
    heap_t h;
    for (int i = 0; i < 5; ++i)
        h.insert(7, static_cast<std::uint64_t>(i));
    std::vector<bool> seen(5, false);
    for (int i = 0; i < 5; ++i) {
        std::uint32_t k;
        std::uint64_t v;
        ASSERT_TRUE(h.try_delete_min(k, v));
        EXPECT_EQ(k, 7u);
        seen[v] = true;
    }
    EXPECT_EQ(std::count(seen.begin(), seen.end(), true), 5);
}

} // namespace
} // namespace klsm
