#include "baselines/centralized_k.hpp"
#include "baselines/hybrid_k.hpp"

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

namespace klsm {
namespace {

using key_t = std::uint32_t;
using val_t = std::uint64_t;

TEST(CentralizedK, WindowCapacityIsKPlus1) {
    centralized_k_pq<key_t, val_t> q{16};
    EXPECT_EQ(q.window_capacity(), 17u);
    centralized_k_pq<key_t, val_t> q0{0};
    EXPECT_EQ(q0.window_capacity(), 1u);
}

TEST(CentralizedK, KZeroIsExact) {
    centralized_k_pq<key_t, val_t> q{0};
    xoroshiro128 rng{2};
    std::vector<key_t> keys;
    for (int i = 0; i < 500; ++i) {
        keys.push_back(static_cast<key_t>(rng.bounded(10000)));
        q.insert(keys.back(), keys.back());
    }
    std::sort(keys.begin(), keys.end());
    key_t k;
    val_t v;
    for (auto expect : keys) {
        ASSERT_TRUE(q.try_delete_min(k, v));
        ASSERT_EQ(k, expect);
    }
}

TEST(CentralizedK, DeletionsStayWithinWindowBound) {
    // Sequentially, a delete must return one of the k+1 smallest keys
    // alive at refill time; with no interleaved inserts this means rank
    // <= k at delete time.
    constexpr std::size_t k = 7;
    centralized_k_pq<key_t, val_t> q{k};
    for (key_t i = 0; i < 200; ++i)
        q.insert(i, i);
    std::vector<bool> deleted(200, false);
    key_t got;
    val_t v;
    for (int step = 0; step < 200; ++step) {
        ASSERT_TRUE(q.try_delete_min(got, v));
        ASSERT_FALSE(deleted[got]);
        std::size_t rank = 0;
        for (key_t j = 0; j < got; ++j)
            rank += deleted[j] ? 0 : 1;
        EXPECT_LE(rank, k);
        deleted[got] = true;
    }
}

TEST(CentralizedK, RelaxedSelectionSpreads) {
    centralized_k_pq<key_t, val_t> q{15};
    std::map<key_t, int> firsts;
    for (int rep = 0; rep < 60; ++rep) {
        centralized_k_pq<key_t, val_t> fresh{15};
        for (key_t i = 0; i < 100; ++i)
            fresh.insert(i, i);
        key_t k;
        val_t v;
        ASSERT_TRUE(fresh.try_delete_min(k, v));
        ++firsts[k];
    }
    EXPECT_GE(firsts.size(), 4u)
        << "random window claims should spread over the k+1 smallest";
}

TEST(CentralizedK, ConcurrentConservation) {
    centralized_k_pq<key_t, val_t> q{16};
    constexpr int threads = 4, per_thread = 3000;
    std::atomic<std::uint64_t> deleted{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&, t] {
            xoroshiro128 rng{static_cast<std::uint64_t>(t) + 40};
            key_t k;
            val_t v;
            for (int i = 0; i < per_thread; ++i) {
                q.insert(static_cast<key_t>(rng.bounded(1 << 18)), 1);
                if (rng.bounded(2) == 0 && q.try_delete_min(k, v))
                    deleted.fetch_add(1);
            }
        });
    }
    for (auto &t : ts)
        t.join();
    key_t k;
    val_t v;
    std::uint64_t drained = 0;
    while (q.try_delete_min(k, v))
        ++drained;
    EXPECT_EQ(deleted.load() + drained,
              std::uint64_t{threads} * per_thread);
}

TEST(HybridK, LocalBufferSpillsAtBound) {
    hybrid_k_pq<key_t, val_t> q{8};
    // 8 inserts stay local; the 9th spills all into the global queue.
    for (key_t i = 0; i < 9; ++i)
        q.insert(i, i);
    EXPECT_EQ(q.size_hint(), 9u);
    key_t k;
    val_t v;
    std::vector<bool> seen(9, false);
    for (int i = 0; i < 9; ++i) {
        ASSERT_TRUE(q.try_delete_min(k, v));
        seen[k] = true;
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(HybridK, SingleThreadDrainWithinRelaxation) {
    constexpr std::size_t k = 4;
    hybrid_k_pq<key_t, val_t> q{k};
    for (key_t i = 0; i < 100; ++i)
        q.insert(i, i);
    std::vector<bool> deleted(100, false);
    key_t got;
    val_t v;
    for (int step = 0; step < 100; ++step) {
        ASSERT_TRUE(q.try_delete_min(got, v));
        ASSERT_FALSE(deleted[got]);
        std::size_t rank = 0;
        for (key_t j = 0; j < got; ++j)
            rank += deleted[j] ? 0 : 1;
        // One local buffer (k) plus the global window (k+1).
        EXPECT_LE(rank, 2 * k + 1);
        deleted[got] = true;
    }
}

TEST(HybridK, ConcurrentConservation) {
    hybrid_k_pq<key_t, val_t> q{16};
    constexpr int threads = 4, per_thread = 3000;
    std::atomic<std::uint64_t> deleted{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&, t] {
            xoroshiro128 rng{static_cast<std::uint64_t>(t) + 90};
            key_t k;
            val_t v;
            for (int i = 0; i < per_thread; ++i) {
                q.insert(static_cast<key_t>(rng.bounded(1 << 18)), 1);
                if (rng.bounded(2) == 0 && q.try_delete_min(k, v))
                    deleted.fetch_add(1);
            }
            // Threads must drain their own local buffers before exiting:
            // hybrid buffers are private (no spying).
            while (q.try_delete_min(k, v))
                deleted.fetch_add(1);
        });
    }
    for (auto &t : ts)
        t.join();
    key_t k;
    val_t v;
    std::uint64_t drained = 0;
    while (q.try_delete_min(k, v))
        ++drained;
    EXPECT_EQ(deleted.load() + drained,
              std::uint64_t{threads} * per_thread);
}

} // namespace
} // namespace klsm
