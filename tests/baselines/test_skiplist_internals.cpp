// White-box tests of the lock-free skiplist substrate, via a probe
// subclass that exposes the protected machinery: tower height
// distribution, sequence uniqueness, logical-deletion ownership,
// physical completion, and reclamation accounting.

#include "baselines/skiplist_pq.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>
#include <vector>

namespace klsm {
namespace {

class probe : public skiplist_pq_base<std::uint32_t, std::uint64_t> {
public:
    using base = skiplist_pq_base<std::uint32_t, std::uint64_t>;
    using node_t = base::node;

    node_t *insert(std::uint32_t key) {
        epoch_manager::guard g(mm_);
        node_t *n = do_insert(key, 0);
        drain_pending();
        return n;
    }

    bool own(node_t *n) {
        epoch_manager::guard g(mm_);
        return try_own(n);
    }

    void complete(node_t *n) {
        epoch_manager::guard g(mm_);
        complete_delete(n);
        drain_pending();
    }

    std::size_t alive() { return count_alive(); }

    unsigned probe_height() { return random_height(); }
    std::uint64_t probe_seq() { return next_seq(); }

    bool reachable_at(node_t *target, unsigned lvl) {
        epoch_manager::guard g(mm_);
        node_t *curr = ptr(head_->next[lvl].load());
        while (curr != tail_) {
            if (curr == target)
                return true;
            curr = ptr(curr->next[lvl].load());
        }
        return false;
    }

    std::uint64_t freed() { return mm_.freed_count(); }
    epoch_manager &mm() { return mm_; }
};

TEST(SkiplistInternals, HeightDistributionIsGeometric) {
    probe p;
    std::map<unsigned, int> counts;
    constexpr int draws = 20000;
    for (int i = 0; i < draws; ++i)
        ++counts[p.probe_height()];
    // P(h = 1) = 1/2, P(h = 2) = 1/4, ...
    EXPECT_NEAR(counts[1] / double(draws), 0.5, 0.05);
    EXPECT_NEAR(counts[2] / double(draws), 0.25, 0.04);
    EXPECT_NEAR(counts[3] / double(draws), 0.125, 0.03);
    for (const auto &[h, c] : counts)
        EXPECT_LE(h, probe::max_height);
}

TEST(SkiplistInternals, SequenceNumbersAreUnique) {
    probe p;
    std::set<std::uint64_t> seqs;
    for (int i = 0; i < 10000; ++i)
        EXPECT_TRUE(seqs.insert(p.probe_seq()).second);
    // Across threads too.
    std::mutex mtx;
    std::vector<std::thread> ts;
    for (int t = 0; t < 4; ++t) {
        ts.emplace_back([&] {
            std::vector<std::uint64_t> mine;
            for (int i = 0; i < 5000; ++i)
                mine.push_back(p.probe_seq());
            std::lock_guard<std::mutex> g(mtx);
            for (auto s : mine)
                EXPECT_TRUE(seqs.insert(s).second);
        });
    }
    for (auto &t : ts)
        t.join();
}

TEST(SkiplistInternals, OwnershipIsExclusive) {
    probe p;
    auto *n = p.insert(5);
    EXPECT_TRUE(p.own(n));
    EXPECT_FALSE(p.own(n)) << "second logical delete must fail";
}

TEST(SkiplistInternals, CompleteDeleteUnlinksEveryLevel) {
    probe p;
    // Insert until we get a tall node.
    probe::node_t *tall = nullptr;
    for (std::uint32_t i = 0; i < 512 && !tall; ++i) {
        auto *n = p.insert(i);
        if (n->height >= 4)
            tall = n;
    }
    ASSERT_NE(tall, nullptr);
    const unsigned height = tall->height;
    for (unsigned lvl = 0; lvl < height; ++lvl)
        EXPECT_TRUE(p.reachable_at(tall, lvl)) << "level " << lvl;

    ASSERT_TRUE(p.own(tall));
    p.complete(tall);
    for (unsigned lvl = 0; lvl < height; ++lvl)
        EXPECT_FALSE(p.reachable_at(tall, lvl))
            << "still linked at level " << lvl;
}

TEST(SkiplistInternals, CompleteDeleteIsIdempotent) {
    probe p;
    auto *n = p.insert(9);
    ASSERT_TRUE(p.own(n));
    p.complete(n);
    p.complete(n); // second completion must be a no-op (claim flag)
    EXPECT_EQ(p.alive(), 0u);
}

TEST(SkiplistInternals, AliveCountTracksOwnership) {
    probe p;
    std::vector<probe::node_t *> nodes;
    for (std::uint32_t i = 0; i < 100; ++i)
        nodes.push_back(p.insert(i));
    EXPECT_EQ(p.alive(), 100u);
    for (int i = 0; i < 40; ++i)
        ASSERT_TRUE(p.own(nodes[static_cast<std::size_t>(i)]));
    EXPECT_EQ(p.alive(), 60u);
}

TEST(SkiplistInternals, NodesAreReclaimedThroughEpochs) {
    probe p;
    std::vector<probe::node_t *> nodes;
    for (std::uint32_t i = 0; i < 1000; ++i)
        nodes.push_back(p.insert(i));
    for (auto *n : nodes) {
        ASSERT_TRUE(p.own(n));
        p.complete(n);
    }
    // Completion retires; a few unpinned reclaim cycles must free most.
    for (int i = 0; i < 4; ++i) {
        epoch_manager::guard g(p.mm());
        p.mm().try_reclaim();
    }
    EXPECT_GT(p.freed(), 500u);
}

TEST(SkiplistInternals, InsertAfterHeavyDeletionStillSorted) {
    probe p;
    std::vector<probe::node_t *> nodes;
    for (std::uint32_t i = 0; i < 200; i += 2)
        nodes.push_back(p.insert(i));
    for (auto *n : nodes) {
        ASSERT_TRUE(p.own(n));
        p.complete(n);
    }
    // Interleave odd keys into the gap-riddled structure.
    for (std::uint32_t i = 1; i < 200; i += 2)
        p.insert(i);
    EXPECT_EQ(p.alive(), 100u);
}

} // namespace
} // namespace klsm
