// The engineered-MultiQueue refinements (stickiness, handle buffers,
// 4-ary backing heap) on top of the classic two-choice contract that
// test_multiqueue.cpp covers.

#include "baselines/multiqueue.hpp"

#include "baselines/dary_heap.hpp"
#include "harness/quality.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

namespace klsm {
namespace {

using mq_t = multiqueue<std::uint32_t, std::uint64_t>;

TEST(DaryHeap, SortsAndKeepsInvariants) {
    dary_heap<std::uint32_t, std::uint32_t, 4> h;
    xoroshiro128 rng{42};
    for (int i = 0; i < 5000; ++i) {
        h.insert(static_cast<std::uint32_t>(rng.bounded(1 << 20)), 0);
        if (i % 257 == 0) {
            ASSERT_TRUE(h.check_invariants());
        }
    }
    EXPECT_EQ(h.size(), 5000u);
    std::uint32_t k, prev = 0;
    std::uint32_t v;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(h.try_delete_min(k, v));
        ASSERT_GE(k, prev) << "4-ary heap emitted out of order";
        prev = k;
    }
    EXPECT_FALSE(h.try_delete_min(k, v));
}

TEST(EngineeredMultiQueue, CtorExposesTuning) {
    mq_t q{4, 2, 16, 32};
    EXPECT_EQ(q.queue_count(), 8u);
    EXPECT_EQ(q.stickiness(), 16u);
    EXPECT_EQ(q.buffer_size(), 32u);
    // The two-arg 2014 construction still compiles with defaults.
    mq_t legacy{8, 2};
    EXPECT_EQ(legacy.stickiness(), 8u);
    EXPECT_EQ(legacy.buffer_size(), 16u);
}

TEST(EngineeredMultiQueue, StickinessPeriodHonored) {
    // buffer = 1 makes every handle insert exactly one queue access, so
    // with stickiness S the sticky index must be constant within each
    // run of S accesses and may only change at period boundaries
    // (single thread: try_lock never fails, so no early resample).
    constexpr std::size_t S = 4;
    mq_t q{4, 2, S, 1};
    auto h = q.get_handle();
    std::vector<std::size_t> idx;
    for (std::uint32_t i = 0; i < 3 * S; ++i) {
        h.insert(i, i);
        idx.push_back(h.sticky_insert_queue());
    }
    for (std::size_t i = 0; i < idx.size(); ++i) {
        ASSERT_NE(idx[i], mq_t::npos);
        if (i % S != 0) {
            EXPECT_EQ(idx[i], idx[i - 1])
                << "resampled mid-period at access " << i;
        }
    }
}

TEST(EngineeredMultiQueue, InsertionBufferStagesThenFlushes) {
    mq_t q{2, 2, 8, 16};
    {
        auto h = q.get_handle();
        for (std::uint32_t i = 0; i < 5; ++i)
            h.insert(i, i);
        EXPECT_EQ(h.inserts_buffered(), 5u);
        // Staged inserts are invisible to the heaps until flush.
        EXPECT_EQ(q.size_hint(), 0u);
        h.flush();
        EXPECT_EQ(h.inserts_buffered(), 0u);
        EXPECT_EQ(q.size_hint(), 5u);
        // Filling to the buffer capacity flushes automatically.
        for (std::uint32_t i = 100; i < 116; ++i)
            h.insert(i, i);
        EXPECT_EQ(h.inserts_buffered(), 0u);
        EXPECT_EQ(q.size_hint(), 21u);
    }
    std::uint32_t k;
    std::uint64_t v;
    std::set<std::uint32_t> seen;
    while (q.try_delete_min(k, v))
        seen.insert(k);
    EXPECT_EQ(seen.size(), 21u);
}

TEST(EngineeredMultiQueue, BuffersFlushOnHandleDestruction) {
    mq_t q{2, 2, 8, 8};
    for (std::uint32_t i = 0; i < 20; ++i)
        q.insert(i, i);
    {
        auto h = q.get_handle();
        // Stage some inserts and pull one delete so the deletion buffer
        // holds unserved cached keys.
        for (std::uint32_t i = 100; i < 105; ++i)
            h.insert(i, i);
        std::uint32_t k;
        std::uint64_t v;
        ASSERT_TRUE(h.try_delete_min(k, v));
        EXPECT_GT(h.deletes_cached(), 0u);
        // Handle destroyed here: staged inserts and the unserved cache
        // must both reach the heaps.
    }
    std::uint32_t k;
    std::uint64_t v;
    std::set<std::uint32_t> seen;
    while (q.try_delete_min(k, v))
        seen.insert(k);
    // 20 prefilled + 5 staged - 1 served via the handle.
    EXPECT_EQ(seen.size(), 24u);
}

TEST(EngineeredMultiQueue, HandleNeverSkipsOwnStagedInserts) {
    mq_t q{2, 2, 8, 16};
    q.insert(50, 0);
    auto h = q.get_handle();
    h.insert(3, 0); // staged, smaller than everything published
    std::uint32_t k;
    std::uint64_t v;
    ASSERT_TRUE(h.try_delete_min(k, v));
    EXPECT_EQ(k, 3u) << "delete served a published key over the "
                        "handle's own smaller staged insert";
}

TEST(EngineeredMultiQueue, EmptyQueueSelfServesThenReportsEmpty) {
    mq_t q{2, 2, 8, 16};
    auto h = q.get_handle();
    h.insert(7, 70);
    std::uint32_t k;
    std::uint64_t v;
    ASSERT_TRUE(h.try_delete_min(k, v));
    EXPECT_EQ(k, 7u);
    EXPECT_EQ(v, 70u);
    EXPECT_FALSE(h.try_delete_min(k, v));
}

TEST(EngineeredMultiQueue, ConcurrentHandleConservation) {
    mq_t q{4, 2, 8, 16};
    constexpr int threads = 4, per_thread = 3000;
    std::atomic<std::uint64_t> deleted{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&, t] {
            xoroshiro128 rng{static_cast<std::uint64_t>(t) * 7 + 3};
            auto h = q.get_handle();
            std::uint32_t k;
            std::uint64_t v;
            for (int i = 0; i < per_thread; ++i) {
                h.insert(
                    static_cast<std::uint32_t>(rng.bounded(1 << 20)), 1);
                if (rng.bounded(2) == 0 && h.try_delete_min(k, v))
                    deleted.fetch_add(1);
            }
            // ~handle flushes staged inserts + unserved cached deletes.
        });
    }
    for (auto &t : ts)
        t.join();
    std::uint32_t k;
    std::uint64_t v;
    std::uint64_t drained = 0;
    while (q.try_delete_min(k, v))
        ++drained;
    EXPECT_EQ(deleted.load() + drained,
              std::uint64_t{threads} * per_thread);
}

TEST(EngineeredMultiQueue, EmpiricalRankErrorStaysOrderTC) {
    // Two-choice over c*T queues keeps the expected rank error O(c*T)
    // per delete; handle buffers add O(T*buffer).  With T=4, c=2,
    // buffer=8 both terms are tiny against the 64k key range, so the
    // mean must stay small and the max far below a quality collapse.
    mq_t q{4, 2, 8, 8};
    quality_params params;
    params.threads = 4;
    params.prefill = 4000;
    params.ops_per_thread = 5000;
    params.key_range = 1 << 16;
    const quality_result res = measure_rank_error(q, params);
    ASSERT_GT(res.deletes, 0u);
    EXPECT_LT(res.mean_rank(), 200.0) << "mean rank error collapsed";
    EXPECT_LT(res.rank_max, 5000u) << "max rank error collapsed";
}

} // namespace
} // namespace klsm
