#include "baselines/multiqueue.hpp"

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace klsm {
namespace {

using mq_t = multiqueue<std::uint32_t, std::uint64_t>;

TEST(MultiQueue, QueueCountIsCTimesThreads) {
    mq_t q{8, 2};
    EXPECT_EQ(q.queue_count(), 16u);
    mq_t q3{4, 3};
    EXPECT_EQ(q3.queue_count(), 12u);
}

TEST(MultiQueue, SingleItem) {
    mq_t q{4};
    q.insert(5, 50);
    std::uint32_t k;
    std::uint64_t v;
    ASSERT_TRUE(q.try_delete_min(k, v));
    EXPECT_EQ(k, 5u);
    EXPECT_EQ(v, 50u);
    EXPECT_FALSE(q.try_delete_min(k, v));
}

TEST(MultiQueue, DrainsEverythingDespiteScatter) {
    mq_t q{4};
    for (std::uint32_t i = 0; i < 5000; ++i)
        q.insert(i, i);
    EXPECT_EQ(q.size_hint(), 5000u);
    std::vector<bool> seen(5000, false);
    std::uint32_t k;
    std::uint64_t v;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(q.try_delete_min(k, v));
        ASSERT_FALSE(seen[k]);
        seen[k] = true;
    }
    EXPECT_FALSE(q.try_delete_min(k, v));
}

TEST(MultiQueue, TwoChoiceQualityIsFrontBiased) {
    // With two-choice sampling over 2T queues, the expected rank error
    // per deletion is O(#queues); with 8 queues and 10000 keys, deletes
    // should stay well inside the front of the key space.
    mq_t q{4, 2};
    for (std::uint32_t i = 0; i < 10000; ++i)
        q.insert(i, i);
    std::uint32_t k;
    std::uint64_t v;
    std::uint32_t worst = 0;
    for (std::uint32_t i = 0; i < 1000; ++i) {
        ASSERT_TRUE(q.try_delete_min(k, v));
        // Rank error of this delete is at most k - i (i keys already
        // gone, all smaller-ranked).
        if (k > worst)
            worst = k;
    }
    EXPECT_LT(worst, 3000u) << "two-choice quality collapsed";
}

TEST(MultiQueue, ConcurrentConservation) {
    mq_t q{4};
    constexpr int threads = 4, per_thread = 3000;
    std::atomic<std::uint64_t> deleted{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&, t] {
            xoroshiro128 rng{static_cast<std::uint64_t>(t) * 7 + 3};
            std::uint32_t k;
            std::uint64_t v;
            for (int i = 0; i < per_thread; ++i) {
                q.insert(static_cast<std::uint32_t>(rng.bounded(1 << 20)),
                         1);
                if (rng.bounded(2) == 0 && q.try_delete_min(k, v))
                    deleted.fetch_add(1);
            }
        });
    }
    for (auto &t : ts)
        t.join();
    std::uint32_t k;
    std::uint64_t v;
    std::uint64_t drained = 0;
    while (q.try_delete_min(k, v))
        ++drained;
    EXPECT_EQ(deleted.load() + drained,
              std::uint64_t{threads} * per_thread);
}

} // namespace
} // namespace klsm
