#include "klsm/block_pool.hpp"

#include <gtest/gtest.h>

#include <set>

namespace klsm {
namespace {

using pool_t = block_pool<std::uint32_t, std::uint64_t>;
using block_t = block<std::uint32_t, std::uint64_t>;

TEST(BlockPool, AcquireReturnsMutatingBlockOfRequestedShape) {
    pool_t pool;
    block_t *b = pool.acquire(3, 2, pool_t::always_recyclable);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->capacity_pow(), 3u);
    EXPECT_EQ(b->capacity(), 8u);
    EXPECT_EQ(b->level(), 2u);
    EXPECT_EQ(b->generation() & 1, 1u) << "acquired block is mutating";
    EXPECT_EQ(b->pool_state(), block_state::held);
    pool.release(b);
    EXPECT_EQ(b->pool_state(), block_state::free);
}

TEST(BlockPool, FourBlocksPerLevelPreallocated) {
    pool_t pool;
    std::set<block_t *> distinct;
    block_t *held[4];
    for (int i = 0; i < 4; ++i) {
        held[i] = pool.acquire(2, 2, pool_t::always_recyclable);
        distinct.insert(held[i]);
    }
    EXPECT_EQ(distinct.size(), 4u);
    EXPECT_EQ(pool.overflow_allocations(), 0u);
    for (auto *b : held)
        pool.release(b);
}

TEST(BlockPool, RecyclesFreedBlocksWithoutGrowth) {
    pool_t pool;
    std::set<block_t *> seen;
    for (int i = 0; i < 100; ++i) {
        block_t *b = pool.acquire(1, 1, pool_t::always_recyclable);
        seen.insert(b);
        pool.release(b);
    }
    EXPECT_LE(seen.size(), 4u);
    EXPECT_EQ(pool.overflow_allocations(), 0u);
}

TEST(BlockPool, OverflowAllocatesInsteadOfFailing) {
    pool_t pool;
    std::vector<block_t *> held;
    for (int i = 0; i < 6; ++i)
        held.push_back(pool.acquire(0, 0, pool_t::always_recyclable));
    EXPECT_EQ(pool.overflow_allocations(), 2u);
    std::set<block_t *> distinct(held.begin(), held.end());
    EXPECT_EQ(distinct.size(), 6u);
    for (auto *b : held)
        pool.release(b);
}

TEST(BlockPool, GenerationAdvancesAcrossReuse) {
    pool_t pool;
    block_t *b = pool.acquire(0, 0, pool_t::always_recyclable);
    b->seal();
    const std::uint64_t g1 = b->generation();
    pool.release(b);
    // Cycle through the bucket until the same block comes back.
    for (int i = 0; i < 8; ++i) {
        block_t *c = pool.acquire(0, 0, pool_t::always_recyclable);
        const bool same = (c == b);
        c->seal();
        pool.release(c);
        if (same) {
            EXPECT_GT(c->generation(), g1);
            return;
        }
    }
    FAIL() << "released block never recycled";
}

TEST(BlockPool, PublishedBlocksNeedPredicateApproval) {
    pool_t pool;
    block_t *b = pool.acquire(0, 0, pool_t::always_recyclable);
    b->seal();
    pool.mark_published(b);
    EXPECT_EQ(b->pool_state(), block_state::published);

    // Predicate says "still referenced": pool must not recycle b.
    std::set<block_t *> got;
    block_t *held[5];
    int n = 0;
    for (int i = 0; i < 5; ++i) {
        held[n++] = pool.acquire(
            0, 0, [&](block_t *x) { return x != b; });
        got.insert(held[n - 1]);
    }
    EXPECT_EQ(got.count(b), 0u);

    for (int i = 0; i < n; ++i)
        pool.release(held[i]);

    // Now the predicate approves: b becomes acquirable again.
    std::set<block_t *> got2;
    for (int i = 0; i < 4; ++i) {
        block_t *x = pool.acquire(0, 0, pool_t::always_recyclable);
        got2.insert(x);
        pool.release(x);
    }
    EXPECT_EQ(got2.count(b), 1u);
}

TEST(BlockPool, SeparateBucketsPerCapacity) {
    pool_t pool;
    block_t *a = pool.acquire(0, 0, pool_t::always_recyclable);
    block_t *b = pool.acquire(5, 5, pool_t::always_recyclable);
    EXPECT_NE(a, b);
    EXPECT_EQ(a->capacity(), 1u);
    EXPECT_EQ(b->capacity(), 32u);
    EXPECT_EQ(pool.total_blocks(), 8u) << "4 per touched level";
    pool.release(a);
    pool.release(b);
}

} // namespace
} // namespace klsm
