// Concurrent correctness of the combined k-LSM:
//   * conservation: every inserted item deleted exactly once, nothing
//     lost, nothing invented;
//   * local ordering: each thread's own keys come back in nondecreasing
//     key order (paper Sections 1-2);
//   * relaxation: deleted keys stay within the rho = T*k bound, checked
//     conservatively against a mirror multiset.

#include "klsm/k_lsm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace klsm {
namespace {

using queue_t = k_lsm<std::uint32_t, std::uint64_t>;

struct conc_param {
    int threads;
    std::size_t k;
    std::uint32_t per_thread;
};

class KLsmConcurrent : public ::testing::TestWithParam<conc_param> {};

// Values encode (thread, sequence) so ownership is recoverable.
std::uint64_t encode(int thread, std::uint32_t seq) {
    return (std::uint64_t{static_cast<std::uint32_t>(thread)} << 32) | seq;
}

TEST_P(KLsmConcurrent, ConservationUnderChurn) {
    const auto [threads, k, per_thread] = GetParam();
    queue_t q{k};
    std::atomic<std::uint64_t> deleted_count{0};
    std::vector<std::vector<std::uint64_t>> deleted_values(
        static_cast<std::size_t>(threads));

    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&, t] {
            auto &mine = deleted_values[static_cast<std::size_t>(t)];
            xoroshiro128 rng{static_cast<std::uint64_t>(t) + 100};
            for (std::uint32_t i = 0; i < per_thread; ++i) {
                q.insert(static_cast<std::uint32_t>(rng.bounded(1 << 20)),
                         encode(t, i));
                if (rng.bounded(2) == 0) {
                    std::uint32_t key;
                    std::uint64_t val;
                    if (q.try_delete_min(key, val)) {
                        mine.push_back(val);
                        deleted_count.fetch_add(1);
                    }
                }
            }
        });
    }
    for (auto &t : ts)
        t.join();

    // Drain the remainder single-threaded.  try_delete_min may fail
    // spuriously (randomized spying), so only several consecutive
    // failures count as empty.
    std::vector<std::uint64_t> drained;
    std::uint32_t key;
    std::uint64_t val;
    int misses = 0;
    while (misses < 50) {
        if (q.try_delete_min(key, val)) {
            drained.push_back(val);
            misses = 0;
        } else {
            ++misses;
        }
    }

    std::vector<std::uint64_t> all = drained;
    for (const auto &v : deleted_values)
        all.insert(all.end(), v.begin(), v.end());
    ASSERT_EQ(all.size(),
              static_cast<std::size_t>(threads) * per_thread)
        << "lost or duplicated items";
    std::sort(all.begin(), all.end());
    EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
        << "an item was deleted twice";
    // Every expected (thread, seq) pair present exactly once.
    std::size_t idx = 0;
    for (int t = 0; t < threads; ++t)
        for (std::uint32_t i = 0; i < per_thread; ++i)
            ASSERT_EQ(all[idx++], encode(t, i));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KLsmConcurrent,
    ::testing::Values(conc_param{2, 0, 4000}, conc_param{4, 0, 2000},
                      conc_param{2, 4, 4000}, conc_param{4, 16, 3000},
                      conc_param{4, 256, 3000}, conc_param{8, 256, 1500},
                      conc_param{4, 4096, 3000}),
    [](const auto &info) {
        return std::to_string(info.param.threads) + "t_k" +
               std::to_string(info.param.k);
    });

// Local ordering semantics: keys inserted and deleted by the same thread
// are deleted in nondecreasing key order, as long as the thread inserts a
// monotonically increasing sequence and nobody else interferes with those
// exact items... which other threads may: they can delete our keys.  The
// testable guarantee is on what *we* delete of *our own* keys: the
// sequence of own-keys each thread deletes must be nondecreasing when the
// thread inserts nondecreasing keys.
TEST(KLsmLocalOrdering, OwnKeysComeBackInOrder) {
    constexpr int threads = 4;
    constexpr std::uint32_t per_thread = 4000;
    queue_t q{1024};
    std::atomic<bool> violation{false};

    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&, t] {
            std::uint32_t last_own = 0;
            for (std::uint32_t i = 0; i < per_thread; ++i) {
                // Strictly increasing keys per thread, tagged by thread.
                const std::uint32_t key =
                    i * threads + static_cast<std::uint32_t>(t);
                q.insert(key, encode(t, key));
                if (i % 2 == 1) {
                    std::uint32_t got;
                    std::uint64_t val;
                    if (q.try_delete_min(got, val)) {
                        const int owner = static_cast<int>(val >> 32);
                        if (owner == t) {
                            const auto own_key =
                                static_cast<std::uint32_t>(val);
                            if (own_key < last_own)
                                violation.store(true);
                            last_own = own_key;
                        }
                    }
                }
            }
        });
    }
    for (auto &t : ts)
        t.join();
    EXPECT_FALSE(violation.load())
        << "a thread deleted its own keys out of order";
}

// Relaxation bound rho = T*k: every successful delete-min returns one of
// the rho+1 smallest alive keys.  To make the rank check sound (not just
// statistical) every queue operation is serialized together with its
// mirror update under one mutex.  The queue still carries relaxed state
// *across* operations — T DistLSMs holding up to k keys each, plus the
// randomized shared selection — so the relaxation machinery is fully
// exercised; only operation interleaving is removed.
TEST(KLsmRelaxation, DeleteMinStaysWithinRhoBound) {
    constexpr int threads = 4;
    constexpr std::size_t k = 16;
    constexpr std::uint32_t per_thread = 2500;
    constexpr std::size_t rho = threads * k;

    queue_t q{k};
    std::multiset<std::uint32_t> mirror;
    std::mutex op_mutex;
    std::atomic<std::uint64_t> violations{0};
    std::atomic<std::uint64_t> deletes{0};

    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&, t] {
            xoroshiro128 rng{static_cast<std::uint64_t>(t) * 31 + 1};
            for (std::uint32_t i = 0; i < per_thread; ++i) {
                const auto key =
                    static_cast<std::uint32_t>(rng.bounded(1 << 16));
                {
                    std::lock_guard<std::mutex> g(op_mutex);
                    q.insert(key, key);
                    mirror.insert(key);
                }
                std::uint32_t got;
                std::uint64_t val;
                std::lock_guard<std::mutex> g(op_mutex);
                if (q.try_delete_min(got, val)) {
                    deletes.fetch_add(1);
                    auto it = mirror.find(got);
                    ASSERT_NE(it, mirror.end());
                    const auto rank = static_cast<std::size_t>(
                        std::distance(mirror.begin(), it));
                    if (rank > rho)
                        violations.fetch_add(1);
                    mirror.erase(it);
                }
            }
        });
    }
    for (auto &t : ts)
        t.join();
    EXPECT_GT(deletes.load(), 0u);
    EXPECT_EQ(violations.load(), 0u)
        << "delete-min returned keys beyond the rho = T*k bound";
}

// Spying: items inserted by one thread must be deletable by another even
// after the inserter goes idle.
TEST(KLsmSpy, IdleOwnersItemsRemainReachable) {
    queue_t q{8};
    std::thread producer([&] {
        for (std::uint32_t i = 0; i < 100; ++i)
            q.insert(i, i);
    });
    producer.join(); // producer thread is gone; its DistLSM persists

    std::thread consumer([&] {
        std::uint32_t key;
        std::uint64_t val;
        std::vector<bool> seen(100, false);
        for (int i = 0; i < 100; ++i) {
            bool ok = false;
            for (int attempt = 0; attempt < 1000 && !ok; ++attempt)
                ok = q.try_delete_min(key, val);
            ASSERT_TRUE(ok) << "items unreachable after owner exit";
            ASSERT_LT(key, 100u);
            EXPECT_FALSE(seen[key]);
            seen[key] = true;
        }
    });
    consumer.join();
}

TEST(KLsmStress, HighContentionSmallKeyRange) {
    constexpr int threads = 8;
    constexpr std::uint32_t per_thread = 1500;
    queue_t q{4};
    std::atomic<std::uint64_t> deletes{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&, t] {
            xoroshiro128 rng{static_cast<std::uint64_t>(t) + 7};
            std::uint32_t key;
            std::uint64_t val;
            for (std::uint32_t i = 0; i < per_thread; ++i) {
                q.insert(static_cast<std::uint32_t>(rng.bounded(4)), i);
                if (q.try_delete_min(key, val))
                    deletes.fetch_add(1);
            }
        });
    }
    for (auto &t : ts)
        t.join();
    std::uint32_t key;
    std::uint64_t val;
    std::uint64_t drained = 0;
    int misses = 0;
    while (misses < 50) {
        if (q.try_delete_min(key, val)) {
            ++drained;
            misses = 0;
        } else {
            ++misses;
        }
    }
    EXPECT_EQ(deletes.load() + drained,
              std::uint64_t{threads} * per_thread);
}

} // namespace
} // namespace klsm
