// Buffered k-LSM: per-thread insert buffers flushing into dist_lsm as
// pre-sorted blocks, the delete-side peek cache, and the extended rank
// bound rho = (T+1)*k + T*buffer_total those buffers must stay inside.

#include "klsm/k_lsm.hpp"

#include "harness/quality.hpp"
#include "klsm/pq_concept.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

namespace klsm {
namespace {

using pq_t = k_lsm<std::uint32_t, std::uint32_t>;

TEST(BufferedKlsm, SatisfiesBufferingConcepts) {
    static_assert(relaxed_priority_queue<pq_t>);
    static_assert(handle_pq<pq_t>);
    static_assert(dynamic_buffering<pq_t>);
    static_assert(dynamic_relaxation<pq_t>);
}

TEST(BufferedKlsm, BufferTotalAccounting) {
    pq_t q{16};
    EXPECT_EQ(q.buffer_total(), 0u);
    q.set_buffer_depth(16);
    // Insert buffering without a peek cache still needs the +1 carry
    // slot for an unserved popped item.
    EXPECT_EQ(q.buffer_total(), 17u);
    q.set_peek_cache_depth(4);
    EXPECT_EQ(q.buffer_total(), 20u);
    q.set_buffer_depth(0);
    EXPECT_EQ(q.buffer_total(), 4u);
    // High-water mark survives shrinking the knobs back down.
    EXPECT_EQ(q.max_buffer_depth_seen(), 20u);
}

TEST(BufferedKlsm, InsertBatchPublishesSortedBlock) {
    pq_t q{8};
    // insert_batch takes keys pre-sorted in decreasing order (block
    // storage order, min at the top).
    std::vector<std::pair<std::uint32_t, std::uint32_t>> kv;
    for (std::uint32_t i = 0; i < 10; ++i)
        kv.push_back({90 - 10 * i, i});
    q.insert_batch(kv.data(), kv.size());
    std::uint32_t k, v, prev = 0;
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(q.try_delete_min(k, v));
        ASSERT_GE(k, prev) << "single-threaded k-LSM drains in order";
        prev = k;
    }
    EXPECT_FALSE(q.try_delete_min(k, v));
}

TEST(BufferedKlsm, StagedInsertsInvisibleUntilFlush) {
    pq_t q{16};
    q.set_buffer_depth(8);
    auto h = q.get_handle();
    for (std::uint32_t i = 0; i < 5; ++i)
        h.insert(10 * i, i);
    EXPECT_EQ(h.inserts_buffered(), 5u);
    std::uint32_t k, v;
    // Direct delete-min sees nothing: the ops are staged in the handle.
    EXPECT_FALSE(q.try_delete_min(k, v));
    // Flush-on-quiesce: after flush every staged op is visible to any
    // other accessor of the queue.
    h.flush();
    EXPECT_EQ(h.inserts_buffered(), 0u);
    std::set<std::uint32_t> seen;
    while (q.try_delete_min(k, v))
        seen.insert(k);
    EXPECT_EQ(seen.size(), 5u);
}

TEST(BufferedKlsm, BufferFillsThenAutoFlushes) {
    pq_t q{16};
    q.set_buffer_depth(4);
    auto h = q.get_handle();
    for (std::uint32_t i = 0; i < 4; ++i)
        h.insert(i, i);
    // Depth reached: the handle flushed the block on its own.
    EXPECT_EQ(h.inserts_buffered(), 0u);
    EXPECT_EQ(q.size_hint(), 4u);
}

TEST(BufferedKlsm, HandleDestructionFlushes) {
    pq_t q{16};
    q.set_buffer_depth(8);
    q.set_peek_cache_depth(4);
    for (std::uint32_t i = 0; i < 12; ++i)
        q.insert(i, i);
    {
        auto h = q.get_handle();
        for (std::uint32_t i = 100; i < 105; ++i)
            h.insert(i, i);
        std::uint32_t k, v;
        ASSERT_TRUE(h.try_delete_min(k, v));
        EXPECT_EQ(k, 0u);
        EXPECT_GT(h.deletes_cached(), 0u);
        // Destructor must republish the unserved cache and flush the
        // staged inserts.
    }
    std::uint32_t k, v;
    std::set<std::uint32_t> seen;
    while (q.try_delete_min(k, v))
        seen.insert(k);
    EXPECT_EQ(seen.size(), 16u); // 12 prefilled + 5 staged - 1 served
}

TEST(BufferedKlsm, HandleNeverSkipsOwnStagedInserts) {
    pq_t q{16};
    q.set_buffer_depth(8);
    q.insert(50, 0);
    auto h = q.get_handle();
    h.insert(3, 30); // staged, smaller than the published 50
    std::uint32_t k, v;
    ASSERT_TRUE(h.try_delete_min(k, v));
    EXPECT_EQ(k, 3u) << "delete served a published key over the "
                        "handle's own smaller staged insert";
    ASSERT_TRUE(h.try_delete_min(k, v));
    EXPECT_EQ(k, 50u);
    EXPECT_FALSE(h.try_delete_min(k, v));
}

TEST(BufferedKlsm, PeekCacheServesAscendingBurst) {
    pq_t q{16};
    q.set_peek_cache_depth(4);
    for (std::uint32_t i = 0; i < 12; ++i)
        q.insert(i, i);
    auto h = q.get_handle();
    std::uint32_t k, v, prev = 0;
    ASSERT_TRUE(h.try_delete_min(k, v));
    EXPECT_GT(h.deletes_cached(), 0u) << "burst refill did not cache";
    prev = k;
    for (int i = 1; i < 12; ++i) {
        ASSERT_TRUE(h.try_delete_min(k, v));
        ASSERT_GE(k, prev) << "cache served out of order";
        prev = k;
    }
    EXPECT_FALSE(h.try_delete_min(k, v));
}

TEST(BufferedKlsm, ConcurrentHandleConservation) {
    pq_t q{16};
    q.set_buffer_depth(8);
    q.set_peek_cache_depth(4);
    constexpr unsigned threads = 8;
    constexpr std::uint32_t per_thread = 4000;
    std::atomic<std::uint64_t> deleted{0};
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < threads; ++t) {
        ts.emplace_back([&, t] {
            xoroshiro128 rng{311 + 17 * t};
            auto h = q.get_handle();
            std::uint32_t k, v;
            for (std::uint32_t i = 0; i < per_thread; ++i) {
                h.insert(static_cast<std::uint32_t>(rng.bounded(1 << 20)),
                         0);
                if (rng.bounded(2) == 0 && h.try_delete_min(k, v))
                    deleted.fetch_add(1);
            }
            // ~handle flushes: staged inserts + unserved cache.
        });
    }
    for (auto &th : ts)
        th.join();
    std::uint32_t k, v;
    std::uint64_t drained = 0;
    while (q.try_delete_min(k, v))
        ++drained;
    EXPECT_EQ(deleted.load() + drained,
              std::uint64_t{threads} * per_thread);
}

// The acceptance-shaped claim: under 8-thread concurrent churn through
// buffered handles, the measured max rank error stays inside the
// extended bound rho = (T+1)*k + T*buffer_total.
TEST(BufferedKlsm, RankErrorWithinExtendedBoundUnderChurn) {
    pq_t q{16};
    q.set_buffer_depth(8);
    q.set_peek_cache_depth(4);
    quality_params params;
    params.threads = 8;
    params.prefill = 5000;
    params.ops_per_thread = 5000;
    params.key_range = 1 << 20;
    const quality_result res = measure_rank_error(q, params);
    ASSERT_GT(res.deletes, 0u);
    const std::uint64_t rho = rank_error_bound(
        params.threads, q.relaxation(), q.max_buffer_depth_seen());
    EXPECT_LE(res.rank_max, rho)
        << "rank error beyond the buffered bound";
}

} // namespace
} // namespace klsm
