// Dynamic k on live queues: concurrent set_relaxation against 8-thread
// insert/delete traffic (run under TSan via the `concurrent` label),
// the telemetry wiring end to end, and relaxation quality under
// adaptation checked against the max-k bound.

#include <atomic>
#include <iterator>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "adapt/adaptive.hpp"
#include "harness/quality.hpp"
#include "klsm/k_lsm.hpp"
#include "klsm/numa_klsm.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace klsm {
namespace {

TEST(AdaptiveKlsm, SetRelaxationIsVisibleAndMonotoneInMaxSeen) {
    k_lsm<std::uint32_t, std::uint32_t> q{64};
    EXPECT_EQ(q.relaxation(), 64u);
    EXPECT_EQ(q.max_relaxation_seen(), 64u);
    q.set_relaxation(256);
    EXPECT_EQ(q.relaxation(), 256u);
    EXPECT_EQ(q.max_relaxation_seen(), 256u);
    q.set_relaxation(16);
    EXPECT_EQ(q.relaxation(), 16u);
    // The high-water mark never decays: bounds cover the whole run.
    EXPECT_EQ(q.max_relaxation_seen(), 256u);
    EXPECT_EQ(q.shared_component().relaxation(), 16u);
}

TEST(AdaptiveKlsm, NumaForwardsToEveryShard) {
    const auto t = topo::topology::discover(
        std::string(KLSM_TOPO_FIXTURE_DIR) + "/fake_sysfs_4node");
    ASSERT_EQ(t.num_nodes(), 4u);
    numa_klsm<std::uint32_t, std::uint32_t> q{32, t};
    q.set_relaxation(512);
    EXPECT_EQ(q.relaxation(), 512u);
    for (std::uint32_t s = 0; s < q.num_shards(); ++s)
        EXPECT_EQ(q.shard(s).relaxation(), 512u);
    q.shard(0).set_relaxation(8);
    // relaxation() reports the largest shard k; the high-water mark
    // keeps the peak.
    EXPECT_EQ(q.relaxation(), 512u);
    EXPECT_EQ(q.max_relaxation_seen(), 512u);
}

// The TSan target: one thread walks k up and down as fast as it can
// while 8 workers insert and delete.  Item conservation proves no
// operation was lost across any k transition.
TEST(AdaptiveKlsm, ConcurrentKChangesConserveItems) {
    k_lsm<std::uint32_t, std::uint32_t> q{16};
    constexpr unsigned threads = 8;
    constexpr std::uint32_t per_thread = 20000;
    std::atomic<std::uint64_t> deleted{0};

    // Fixed-count walk (not stop-flag-driven) so the full k cycle runs
    // even when the scheduler starves this thread until the workers
    // finish — max_relaxation_seen is then deterministic.
    std::thread tuner([&] {
        std::size_t ks[] = {16, 1024, 64, 4096, 1, 256};
        for (std::size_t i = 0; i < 30000; ++i) {
            q.set_relaxation(ks[i % 6]);
            std::this_thread::yield();
        }
    });

    std::vector<std::thread> ts;
    for (unsigned w = 0; w < threads; ++w) {
        ts.emplace_back([&, w] {
            xoroshiro128 rng{4242 + w};
            std::uint32_t k, v;
            std::uint64_t my_deleted = 0;
            for (std::uint32_t i = 0; i < per_thread; ++i) {
                if (rng.bounded(2) == 0)
                    q.insert(static_cast<std::uint32_t>(
                                 rng.bounded(1 << 20)),
                             w);
                else if (q.try_delete_min(k, v))
                    ++my_deleted;
            }
            deleted.fetch_add(my_deleted);
        });
    }
    for (auto &t : ts)
        t.join();
    tuner.join();

    // Count the inserts deterministically from the same RNG streams.
    std::uint64_t inserted = 0;
    for (unsigned w = 0; w < threads; ++w) {
        xoroshiro128 rng{4242 + w};
        for (std::uint32_t i = 0; i < per_thread; ++i) {
            if (rng.bounded(2) == 0) {
                rng.bounded(1 << 20);
                ++inserted;
            }
        }
    }
    std::uint32_t k, v;
    std::uint64_t drained = 0;
    while (q.try_delete_min(k, v))
        ++drained;
    EXPECT_EQ(deleted.load() + drained, inserted);
    EXPECT_EQ(q.max_relaxation_seen(), 4096u);
}

TEST(AdaptiveKlsm, MonitorSeesPublishesHitsAndSpies) {
    k_lsm<std::uint32_t, std::uint32_t> q{4}; // tiny k: spills early
    adapt::contention_monitor mon;
    q.set_monitor(&mon);
    // Another thread feeds the queue and exits, leaving its items
    // reachable only through the shared component or spying.
    std::thread feeder([&] {
        for (std::uint32_t i = 0; i < 100; ++i)
            q.insert(i, i);
    });
    feeder.join();
    std::uint32_t k, v;
    std::uint32_t count = 0;
    while (q.try_delete_min(k, v))
        ++count;
    EXPECT_EQ(count, 100u);
    const adapt::contention_window t = mon.totals();
    EXPECT_GT(t.publishes, 0u) << "k=4 inserts must spill and publish";
    EXPECT_EQ(t.shared_hits + t.local_hits, 100u)
        << "every successful delete reports its hit source";
    q.set_monitor(nullptr);
    q.insert(1, 1);
    ASSERT_TRUE(q.try_delete_min(k, v));
    EXPECT_EQ(mon.totals().shared_hits + mon.totals().local_hits, 100u)
        << "detached monitor still receiving events";
}

TEST(AdaptiveKlsm, SpyEventsAreCounted) {
    k_lsm<std::uint32_t, std::uint32_t> q{1000}; // large k: no spills
    adapt::contention_monitor mon;
    q.set_monitor(&mon);
    std::thread other([&] {
        for (std::uint32_t i = 0; i < 10; ++i)
            q.insert(i, i);
    });
    other.join();
    // This thread's DistLSM and the shared LSM are both empty: the
    // delete must go through spying.
    std::uint32_t k, v;
    ASSERT_TRUE(q.try_delete_min(k, v));
    EXPECT_GE(mon.totals().spies, 1u);
}

// End-to-end through the adaptor: a single-threaded burst workload has
// a zero failed-CAS rate, so the controller must walk k down to k_min
// — a deterministic trajectory on any machine.
TEST(AdaptiveKlsm, AdaptorShrinksKOnUncontendedQueue) {
    k_lsm<std::uint32_t, std::uint32_t> q{256};
    adapt::k_controller_config cfg;
    cfg.k_min = 16;
    cfg.k_max = 64; // also checks the ctor clamp: 256 -> 64
    cfg.cooldown_ticks = 1;
    adapt::queue_adaptor<k_lsm<std::uint32_t, std::uint32_t>> adaptor{
        q, cfg, 1};
    EXPECT_EQ(q.relaxation(), 64u);
    for (int round = 0; round < 8; ++round) {
        std::uint32_t k, v;
        for (std::uint32_t i = 0; i < 500; ++i)
            q.insert(i, i);
        for (std::uint32_t i = 0; i < 500; ++i)
            ASSERT_TRUE(q.try_delete_min(k, v));
        adaptor.tick();
    }
    EXPECT_EQ(q.relaxation(), 16u);
    EXPECT_GE(adaptor.trajectory().size(), 3u)
        << "64 -> 32 -> 16 must appear as trajectory points";
    EXPECT_EQ(adaptor.max_k_seen(), 64u);
    const std::string json = adaptor.json();
    EXPECT_NE(json.find("\"k_trajectory\":[[0,64]"), std::string::npos);
    EXPECT_NE(json.find("\"contention\":{"), std::string::npos);
    EXPECT_NE(json.find("\"reason\":\"shrink\""), std::string::npos);
}

TEST(AdaptiveKlsm, AdaptorRunsOneControllerPerShard) {
    const auto t = topo::topology::discover(
        std::string(KLSM_TOPO_FIXTURE_DIR) + "/fake_sysfs");
    ASSERT_EQ(t.num_nodes(), 2u);
    using Q = numa_klsm<std::uint32_t, std::uint32_t>;
    Q q{256, t};
    adapt::k_controller_config cfg;
    cfg.k_min = 16;
    cfg.k_max = 4096;
    adapt::queue_adaptor<Q> adaptor{q, cfg, 4};
    EXPECT_EQ(adaptor.shards(), q.num_shards());
    adaptor.tick(); // idle windows: no changes, no crash
    EXPECT_EQ(adaptor.current_k(), 256u);
}

// Quality under adaptation: rank error measured against an exact
// mirror stays within rho = T * max_relaxation_seen while a tuner
// walks k across two orders of magnitude mid-run.
TEST(AdaptiveKlsm, RankErrorStaysWithinMaxKBoundUnderAdaptation) {
    k_lsm<std::uint32_t, std::uint32_t> q{16};
    constexpr unsigned threads = 4;

    // Fixed-count walk so every k in the cycle is guaranteed to have
    // been set regardless of scheduling (see the conservation test).
    std::thread tuner([&] {
        std::size_t ks[] = {16, 128, 1024, 64};
        for (std::size_t i = 0; i < 20000; ++i) {
            q.set_relaxation(ks[i % 4]);
            std::this_thread::yield();
        }
    });

    std::multiset<std::uint32_t> mirror;
    std::mutex mtx;
    std::uint64_t rank_max = 0;
    std::atomic<std::uint64_t> deletes{0};
    std::vector<std::thread> ts;
    for (unsigned w = 0; w < threads; ++w) {
        ts.emplace_back([&, w] {
            xoroshiro128 rng{1337 + 31 * w};
            std::uint32_t key, value;
            for (std::uint32_t i = 0; i < 10000; ++i) {
                if (rng.bounded(2) == 0) {
                    const auto key_in =
                        static_cast<std::uint32_t>(rng.bounded(1 << 20));
                    std::lock_guard<std::mutex> g(mtx);
                    q.insert(key_in, 0);
                    mirror.insert(key_in);
                } else {
                    std::lock_guard<std::mutex> g(mtx);
                    if (!q.try_delete_min(key, value))
                        continue;
                    const auto it = mirror.find(key);
                    ASSERT_NE(it, mirror.end());
                    const auto rank = static_cast<std::uint64_t>(
                        std::distance(mirror.begin(), it));
                    if (rank > rank_max)
                        rank_max = rank;
                    deletes.fetch_add(1);
                    mirror.erase(it);
                }
            }
        });
    }
    for (auto &th : ts)
        th.join();
    tuner.join();

    EXPECT_GT(deletes.load(), 0u);
    EXPECT_EQ(q.max_relaxation_seen(), 1024u);
    const std::uint64_t rho =
        rank_error_bound(threads, q.max_relaxation_seen());
    EXPECT_LE(rank_max, rho)
        << "rank error beyond the max-k bound under adaptation";
}

} // namespace
} // namespace klsm
