// Sequential (single-thread) semantics of the combined k-LSM.

#include "klsm/k_lsm.hpp"

#include "klsm/pq_concept.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace klsm {
namespace {

using queue_t = k_lsm<std::uint32_t, std::uint64_t>;

static_assert(relaxed_priority_queue<queue_t>);
static_assert(relaxed_priority_queue<dist_pq<std::uint32_t, std::uint64_t>>);

TEST(KLsm, EmptyQueue) {
    queue_t q{4};
    std::uint32_t k;
    std::uint64_t v;
    EXPECT_FALSE(q.try_delete_min(k, v));
    EXPECT_FALSE(q.try_find_min(k, v));
    EXPECT_EQ(q.size_hint(), 0u);
}

TEST(KLsm, SingleElementRoundTrip) {
    queue_t q{4};
    q.insert(99, 1234);
    std::uint32_t k;
    std::uint64_t v;
    ASSERT_TRUE(q.try_delete_min(k, v));
    EXPECT_EQ(k, 99u);
    EXPECT_EQ(v, 1234u);
    EXPECT_FALSE(q.try_delete_min(k, v));
}

// Paper Section 1: "the behavior is identical to a non-relaxed priority
// queue for items added and removed by the same thread."  With a single
// thread, every k must therefore give exact heap order.
class KLsmSingleThreadExact : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(KLsmSingleThreadExact, DrainsInSortedOrder) {
    const std::size_t k = GetParam();
    queue_t q{k};
    std::vector<std::uint32_t> keys;
    xoroshiro128 rng{k * 7919 + 3};
    for (int i = 0; i < 500; ++i)
        keys.push_back(static_cast<std::uint32_t>(rng.bounded(10000)));
    for (auto key : keys)
        q.insert(key, key);
    std::sort(keys.begin(), keys.end());
    for (auto expect : keys) {
        std::uint32_t got;
        std::uint64_t v;
        ASSERT_TRUE(q.try_delete_min(got, v));
        ASSERT_EQ(got, expect) << "local ordering broken at k=" << k;
    }
    std::uint32_t got;
    std::uint64_t v;
    EXPECT_FALSE(q.try_delete_min(got, v));
}

INSTANTIATE_TEST_SUITE_P(Ks, KLsmSingleThreadExact,
                         ::testing::Values(0, 1, 4, 16, 256, 4096),
                         [](const auto &info) {
                             // Built with += because string operator+
                             // trips gcc 12's -Wrestrict false positive
                             // (PR 105651) in release builds.
                             std::string name = "k";
                             name += std::to_string(info.param);
                             return name;
                         });

TEST(KLsm, InterleavedInsertDeleteStaysExactSingleThread) {
    queue_t q{256};
    std::multiset<std::uint32_t> oracle;
    xoroshiro128 rng{1234};
    for (int i = 0; i < 5000; ++i) {
        if (rng.bounded(100) < 60 || oracle.empty()) {
            const auto key = static_cast<std::uint32_t>(rng.bounded(1000));
            q.insert(key, key);
            oracle.insert(key);
        } else {
            std::uint32_t k;
            std::uint64_t v;
            ASSERT_TRUE(q.try_delete_min(k, v));
            ASSERT_FALSE(oracle.empty());
            ASSERT_EQ(k, *oracle.begin());
            oracle.erase(oracle.begin());
        }
    }
}

TEST(KLsm, SizeHintTracksContents) {
    queue_t q{8};
    EXPECT_EQ(q.size_hint(), 0u);
    for (std::uint32_t i = 0; i < 100; ++i)
        q.insert(i, i);
    // size() may over-count by untrimmed deleted items, never undercount
    // alive ones.
    EXPECT_GE(q.size_hint(), 100u);
    std::uint32_t k;
    std::uint64_t v;
    for (int i = 0; i < 50; ++i)
        ASSERT_TRUE(q.try_delete_min(k, v));
    EXPECT_GE(q.size_hint(), 50u);
}

TEST(KLsm, FindMinDoesNotRemove) {
    queue_t q{4};
    q.insert(5, 50);
    std::uint32_t k;
    std::uint64_t v;
    ASSERT_TRUE(q.try_find_min(k, v));
    EXPECT_EQ(k, 5u);
    ASSERT_TRUE(q.try_find_min(k, v));
    ASSERT_TRUE(q.try_delete_min(k, v));
    EXPECT_FALSE(q.try_find_min(k, v));
}

TEST(KLsm, ValuesTravelWithKeys) {
    queue_t q{16};
    for (std::uint32_t i = 0; i < 200; ++i)
        q.insert(i, std::uint64_t{i} * 31 + 7);
    for (std::uint32_t i = 0; i < 200; ++i) {
        std::uint32_t k;
        std::uint64_t v;
        ASSERT_TRUE(q.try_delete_min(k, v));
        EXPECT_EQ(v, std::uint64_t{k} * 31 + 7);
    }
}

TEST(KLsm, DuplicateKeysConserved) {
    queue_t q{64};
    for (int i = 0; i < 128; ++i)
        q.insert(7, static_cast<std::uint64_t>(i));
    std::vector<bool> seen(128, false);
    for (int i = 0; i < 128; ++i) {
        std::uint32_t k;
        std::uint64_t v;
        ASSERT_TRUE(q.try_delete_min(k, v));
        EXPECT_EQ(k, 7u);
        ASSERT_LT(v, 128u);
        EXPECT_FALSE(seen[v]) << "value returned twice";
        seen[v] = true;
    }
}

TEST(KLsm, LargeVolumeSingleThread) {
    queue_t q{256};
    constexpr std::uint32_t n = 50000;
    xoroshiro128 rng{5};
    std::vector<std::uint32_t> keys(n);
    for (auto &key : keys) {
        key = static_cast<std::uint32_t>(rng());
        q.insert(key, key);
    }
    std::sort(keys.begin(), keys.end());
    for (std::uint32_t i = 0; i < n; ++i) {
        std::uint32_t k;
        std::uint64_t v;
        ASSERT_TRUE(q.try_delete_min(k, v));
        ASSERT_EQ(k, keys[i]);
    }
}

TEST(DistPq, SingleThreadExactOrder) {
    dist_pq<std::uint32_t, std::uint64_t> q;
    std::vector<std::uint32_t> keys = {5, 1, 9, 1, 3, 8};
    for (auto key : keys)
        q.insert(key, key);
    std::sort(keys.begin(), keys.end());
    for (auto expect : keys) {
        std::uint32_t k;
        std::uint64_t v;
        ASSERT_TRUE(q.try_delete_min(k, v));
        EXPECT_EQ(k, expect);
    }
}

} // namespace
} // namespace klsm
