// Property sweeps for the combined k-LSM: randomized mixed workloads
// against oracles, parameterized over relaxation, key ranges, operation
// mixes and seeds.

#include "klsm/k_lsm.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace klsm {
namespace {

using queue_t = k_lsm<std::uint32_t, std::uint64_t>;

struct seq_param {
    std::uint64_t seed;
    std::size_t k;
    std::uint32_t key_range;
    int insert_percent;
    int ops;
};

class KLsmSequentialOracle : public ::testing::TestWithParam<seq_param> {};

// Single-threaded, the k-LSM must behave exactly like a multiset for any
// k (local ordering semantics).
TEST_P(KLsmSequentialOracle, ExactAgainstMultiset) {
    const auto p = GetParam();
    queue_t q{p.k};
    std::multiset<std::uint32_t> oracle;
    xoroshiro128 rng{p.seed};
    std::uint32_t key;
    std::uint64_t value;
    for (int i = 0; i < p.ops; ++i) {
        if (static_cast<int>(rng.bounded(100)) < p.insert_percent ||
            oracle.empty()) {
            const auto k =
                static_cast<std::uint32_t>(rng.bounded(p.key_range));
            q.insert(k, k);
            oracle.insert(k);
        } else {
            ASSERT_TRUE(q.try_delete_min(key, value));
            ASSERT_EQ(key, *oracle.begin());
            oracle.erase(oracle.begin());
        }
    }
    while (!oracle.empty()) {
        ASSERT_TRUE(q.try_delete_min(key, value));
        ASSERT_EQ(key, *oracle.begin());
        oracle.erase(oracle.begin());
    }
    EXPECT_FALSE(q.try_delete_min(key, value));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KLsmSequentialOracle,
    ::testing::Values(
        seq_param{1, 0, 1000, 50, 4000},
        seq_param{2, 0, 3, 60, 4000},
        seq_param{3, 1, 1000, 50, 4000},
        seq_param{4, 4, 100, 70, 4000},
        seq_param{5, 16, 1u << 30, 50, 4000},
        seq_param{6, 64, 10, 40, 4000},
        seq_param{7, 256, 1000, 50, 6000},
        seq_param{8, 256, 1, 55, 4000},
        seq_param{9, 1024, 1u << 20, 90, 6000},
        seq_param{10, 4096, 1000, 50, 8000},
        seq_param{11, 16384, 1u << 16, 65, 8000},
        seq_param{12, 3, 7, 50, 4000}),
    [](const auto &info) {
        return "seed" + std::to_string(info.param.seed) + "_k" +
               std::to_string(info.param.k) + "_range" +
               std::to_string(info.param.key_range) + "_ins" +
               std::to_string(info.param.insert_percent);
    });

struct churn_param {
    int threads;
    std::size_t k;
    std::uint32_t key_range;
    std::uint32_t per_thread;
};

class KLsmChurn : public ::testing::TestWithParam<churn_param> {};

// Concurrent churn with payload conservation: each value delivered at
// most once, all values delivered by the end.
TEST_P(KLsmChurn, PayloadConservation) {
    const auto p = GetParam();
    queue_t q{p.k};
    std::atomic<std::uint64_t> delivered{0};
    std::vector<std::uint8_t> seen(
        static_cast<std::size_t>(p.threads) * p.per_thread, 0);
    std::mutex seen_mutex;

    std::vector<std::thread> ts;
    for (int t = 0; t < p.threads; ++t) {
        ts.emplace_back([&, t] {
            xoroshiro128 rng{static_cast<std::uint64_t>(t) * 6151 + 11};
            std::vector<std::uint64_t> got;
            std::uint32_t key;
            std::uint64_t value;
            for (std::uint32_t i = 0; i < p.per_thread; ++i) {
                q.insert(static_cast<std::uint32_t>(
                             rng.bounded(p.key_range)),
                         static_cast<std::uint64_t>(t) * p.per_thread + i);
                if (rng.bounded(3) != 0 && q.try_delete_min(key, value))
                    got.push_back(value);
            }
            std::lock_guard<std::mutex> g(seen_mutex);
            for (auto v : got) {
                ASSERT_EQ(seen[v], 0) << "value " << v << " seen twice";
                seen[v] = 1;
                delivered.fetch_add(1);
            }
        });
    }
    for (auto &t : ts)
        t.join();

    std::uint32_t key;
    std::uint64_t value;
    int misses = 0;
    while (misses < 50) {
        if (q.try_delete_min(key, value)) {
            ASSERT_EQ(seen[value], 0);
            seen[value] = 1;
            delivered.fetch_add(1);
            misses = 0;
        } else {
            ++misses;
        }
    }
    EXPECT_EQ(delivered.load(),
              std::uint64_t{static_cast<unsigned>(p.threads)} *
                  p.per_thread);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KLsmChurn,
    ::testing::Values(churn_param{2, 0, 1 << 16, 2500},
                      churn_param{3, 4, 16, 2500},
                      churn_param{4, 16, 1 << 16, 2000},
                      churn_param{4, 256, 4, 2000},
                      churn_param{6, 256, 1 << 20, 1200},
                      churn_param{4, 1024, 1 << 8, 2000},
                      churn_param{8, 4096, 1 << 16, 800},
                      churn_param{2, 16384, 1 << 4, 2500}),
    [](const auto &info) {
        return std::to_string(info.param.threads) + "t_k" +
               std::to_string(info.param.k) + "_range" +
               std::to_string(info.param.key_range);
    });

// Bounded inversions: threads insert strictly increasing dense keys; a
// third-party drain may deliver a given owner's keys out of order (local
// ordering only binds the deleting thread to its OWN keys), but the
// relaxation bound still limits how far: when key b of an owner is
// delivered, at most rho = T*k smaller alive keys were skipped, so any
// of that owner's keys delivered later satisfies seq >= max_seen - rho.
TEST(KLsmProperty, ThirdPartyDrainInversionsBoundedByRho) {
    constexpr int threads = 4;
    constexpr std::size_t k = 512;
    constexpr std::uint32_t per_thread = 3000;
    constexpr std::uint32_t rho = threads * k;
    queue_t q{k};
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&, t] {
            for (std::uint32_t i = 0; i < per_thread; ++i)
                q.insert(i, (std::uint64_t{static_cast<unsigned>(t)}
                             << 32) |
                                i);
        });
    }
    for (auto &t : ts)
        t.join();

    std::uint32_t max_seen[threads] = {};
    std::uint32_t key;
    std::uint64_t value;
    std::uint64_t count = 0;
    int misses = 0;
    while (misses < 50) {
        if (!q.try_delete_min(key, value)) {
            ++misses;
            continue;
        }
        misses = 0;
        ++count;
        const int owner = static_cast<int>(value >> 32);
        const auto seq = static_cast<std::uint32_t>(value);
        ASSERT_LT(owner, threads);
        ASSERT_GE(seq + rho, max_seen[owner])
            << "owner " << owner << " inversion beyond rho";
        if (seq > max_seen[owner])
            max_seen[owner] = seq;
    }
    EXPECT_EQ(count, std::uint64_t{threads} * per_thread);
}

// size_hint never undercounts alive items (single-threaded invariant).
TEST(KLsmProperty, SizeHintNeverUndercounts) {
    queue_t q{64};
    xoroshiro128 rng{77};
    std::size_t alive = 0;
    std::uint32_t key;
    std::uint64_t value;
    for (int i = 0; i < 5000; ++i) {
        if (rng.bounded(2) == 0 || alive == 0) {
            q.insert(static_cast<std::uint32_t>(rng.bounded(1000)), 1);
            ++alive;
        } else {
            ASSERT_TRUE(q.try_delete_min(key, value));
            --alive;
        }
        ASSERT_GE(q.size_hint(), alive);
    }
}

// Alternating fill/drain cycles exercise pool recycling heavily; the
// queue must stay exact (single thread) across many generations.
TEST(KLsmProperty, RepeatedFillDrainCycles) {
    queue_t q{256};
    xoroshiro128 rng{99};
    for (int cycle = 0; cycle < 30; ++cycle) {
        std::vector<std::uint32_t> keys;
        const int n = 200 + static_cast<int>(rng.bounded(800));
        for (int i = 0; i < n; ++i) {
            keys.push_back(static_cast<std::uint32_t>(rng()));
            q.insert(keys.back(), cycle);
        }
        std::sort(keys.begin(), keys.end());
        std::uint32_t key;
        std::uint64_t value;
        for (auto expect : keys) {
            ASSERT_TRUE(q.try_delete_min(key, value));
            ASSERT_EQ(key, expect) << "cycle " << cycle;
        }
        ASSERT_FALSE(q.try_delete_min(key, value));
    }
}

// Extreme key values must round-trip unharmed.
TEST(KLsmProperty, BoundaryKeys) {
    queue_t q{16};
    const std::uint32_t keys[] = {0, 1, 0x7fffffff, 0x80000000,
                                  0xfffffffe, 0xffffffff};
    for (auto k : keys)
        q.insert(k, k);
    std::uint32_t key;
    std::uint64_t value;
    for (auto expect : keys) {
        ASSERT_TRUE(q.try_delete_min(key, value));
        EXPECT_EQ(key, expect);
        EXPECT_EQ(value, expect);
    }
}

} // namespace
} // namespace klsm
