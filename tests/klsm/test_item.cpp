#include "klsm/item.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace klsm {
namespace {

using item_t = item<std::uint32_t, std::uint64_t>;

TEST(Item, FreshItemIsFreeAndReusable) {
    item_t it;
    EXPECT_TRUE(it.reusable());
    EXPECT_EQ(it.version(), 0u);
}

TEST(Item, PublishMakesAliveWithOddVersion) {
    item_t it;
    const std::uint64_t v = it.publish(10, 20);
    EXPECT_EQ(v, 1u);
    EXPECT_EQ(v & 1, 1u);
    EXPECT_TRUE(it.is_alive(v));
    EXPECT_FALSE(it.reusable());
    EXPECT_EQ(it.key(), 10u);
    EXPECT_EQ(it.value(), 20u);
}

TEST(Item, TakeSucceedsOnceWithCorrectVersion) {
    item_t it;
    const std::uint64_t v = it.publish(1, 1);
    EXPECT_FALSE(it.take(v + 2)) << "wrong expected version";
    EXPECT_TRUE(it.take(v));
    EXPECT_FALSE(it.take(v)) << "second take must fail";
    EXPECT_TRUE(it.reusable());
    EXPECT_FALSE(it.is_alive(v));
}

TEST(Item, VersionMonotonicAcrossLives) {
    item_t it;
    std::uint64_t prev = 0;
    for (int life = 0; life < 10; ++life) {
        const std::uint64_t v = it.publish(static_cast<std::uint32_t>(life),
                                           static_cast<std::uint64_t>(life));
        EXPECT_GT(v, prev);
        EXPECT_EQ(it.key(), static_cast<std::uint32_t>(life));
        EXPECT_TRUE(it.take(v));
        prev = v;
    }
}

TEST(Item, StaleVersionNeverTakesLaterLife) {
    item_t it;
    const std::uint64_t v1 = it.publish(1, 1);
    ASSERT_TRUE(it.take(v1));
    const std::uint64_t v2 = it.publish(2, 2);
    EXPECT_FALSE(it.take(v1)) << "stale reference took a reused item";
    EXPECT_TRUE(it.is_alive(v2));
    EXPECT_EQ(it.key(), 2u);
}

// The central concurrency property: exactly one of many concurrent takers
// wins, for every life of the item.
TEST(Item, ExactlyOneConcurrentTakeWins) {
    item_t it;
    constexpr int threads = 8, rounds = 200;
    for (int round = 0; round < rounds; ++round) {
        const std::uint64_t v =
            it.publish(static_cast<std::uint32_t>(round), 0);
        std::atomic<int> winners{0};
        std::vector<std::thread> ts;
        for (int t = 0; t < threads; ++t)
            ts.emplace_back([&] {
                if (it.take(v))
                    winners.fetch_add(1);
            });
        for (auto &t : ts)
            t.join();
        EXPECT_EQ(winners.load(), 1) << "round " << round;
    }
}

TEST(ItemRef, EmptyAndAliveSemantics) {
    item_ref<std::uint32_t, std::uint64_t> ref;
    EXPECT_TRUE(ref.empty());
    EXPECT_FALSE(ref.alive());

    item_t it;
    ref.it = &it;
    ref.version = it.publish(3, 4);
    ref.key = 3;
    EXPECT_FALSE(ref.empty());
    EXPECT_TRUE(ref.alive());
    EXPECT_TRUE(ref.take());
    EXPECT_FALSE(ref.alive());
}

} // namespace
} // namespace klsm
