#include "klsm/shared_lsm.hpp"

#include "mm/item_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

namespace klsm {
namespace {

using shared_t = shared_lsm<std::uint32_t, std::uint64_t>;
using block_t = block<std::uint32_t, std::uint64_t>;
using pool_t = item_pool<std::uint32_t, std::uint64_t>;

/// Build a standalone sealed source block (as a DistLSM spill would).
struct source_block {
    explicit source_block(pool_t &pool, std::vector<std::uint32_t> keys,
                          std::uint32_t tid = 0)
        : blk(block_t::level_for(static_cast<std::uint32_t>(keys.size()))) {
        std::sort(keys.rbegin(), keys.rend());
        blk.reuse_begin(blk.capacity_pow());
        for (auto k : keys)
            blk.append(pool.allocate(k, k));
        blk.bloom_insert(tid);
        blk.seal();
    }
    block_t blk;
};

TEST(SharedLsm, EmptyFindMin) {
    shared_t s{4};
    EXPECT_TRUE(s.find_min(0).empty());
    EXPECT_EQ(s.item_count_estimate(), 0u);
}

TEST(SharedLsm, InsertThenFindSingleBlock) {
    pool_t items;
    shared_t s{4};
    source_block src{items, {30, 10, 20}};
    s.insert(&src.blk, src.blk.filled());
    EXPECT_EQ(s.item_count_estimate(), 3u);
    auto ref = s.find_min(0);
    ASSERT_FALSE(ref.empty());
    // k = 4: any of the 3 keys is a legal candidate.
    EXPECT_TRUE(ref.key == 10 || ref.key == 20 || ref.key == 30);
}

TEST(SharedLsm, KZeroAlwaysReturnsExactMin) {
    pool_t items;
    shared_t s{0};
    source_block a{items, {50, 40}};
    source_block b{items, {35, 45}};
    s.insert(&a.blk, a.blk.filled());
    s.insert(&b.blk, b.blk.filled());
    for (int i = 0; i < 20; ++i) {
        auto ref = s.find_min(0);
        ASSERT_FALSE(ref.empty());
        EXPECT_EQ(ref.key, 35u) << "k=0 must always surface the minimum";
    }
}

TEST(SharedLsm, CandidatesStayWithinKPlus1Smallest) {
    pool_t items;
    constexpr std::size_t k = 3;
    shared_t s{k};
    std::vector<std::uint32_t> keys;
    for (std::uint32_t i = 0; i < 40; ++i)
        keys.push_back(i);
    source_block src{items, keys};
    s.insert(&src.blk, src.blk.filled());
    for (int i = 0; i < 200; ++i) {
        auto ref = s.find_min(0);
        ASSERT_FALSE(ref.empty());
        EXPECT_LE(ref.key, k) << "candidate outside the k+1 smallest";
    }
}

TEST(SharedLsm, RandomSelectionSpreadsOverCandidates) {
    pool_t items;
    shared_t s{7};
    std::vector<std::uint32_t> keys;
    for (std::uint32_t i = 0; i < 64; ++i)
        keys.push_back(i);
    source_block src{items, keys, /*tid=*/55};
    s.insert(&src.blk, src.blk.filled());
    std::map<std::uint32_t, int> histogram;
    for (int i = 0; i < 500; ++i)
        ++histogram[s.find_min(0).key]; // tid 0 has no own items
    EXPECT_GE(histogram.size(), 3u)
        << "relaxed selection should hit several of the 8 candidates";
}

TEST(SharedLsm, DeleteDrainsInRelaxedOrder) {
    pool_t items;
    constexpr std::size_t k = 2;
    shared_t s{k};
    std::vector<std::uint32_t> keys;
    for (std::uint32_t i = 0; i < 30; ++i)
        keys.push_back(i);
    source_block src{items, keys};
    s.insert(&src.blk, src.blk.filled());

    std::vector<bool> deleted(30, false);
    for (int step = 0; step < 30; ++step) {
        item_ref<std::uint32_t, std::uint64_t> ref;
        do {
            ref = s.find_min(0);
            ASSERT_FALSE(ref.empty()) << "step " << step;
        } while (!ref.take());
        ASSERT_LT(ref.key, 30u);
        ASSERT_FALSE(deleted[ref.key]);
        // Rank among remaining keys must be <= k.
        std::size_t rank = 0;
        for (std::uint32_t j = 0; j < ref.key; ++j)
            rank += deleted[j] ? 0 : 1;
        EXPECT_LE(rank, k);
        deleted[ref.key] = true;
    }
    EXPECT_TRUE(s.find_min(0).empty()) << "drained shared LSM is empty";
    EXPECT_EQ(s.item_count_estimate(), 0u);
}

TEST(SharedLsm, MultipleInsertsMergeLevels) {
    pool_t items;
    shared_t s{1};
    std::vector<std::unique_ptr<source_block>> sources;
    for (std::uint32_t i = 0; i < 20; ++i) {
        sources.push_back(
            std::make_unique<source_block>(items,
                                           std::vector<std::uint32_t>{i}));
        s.insert(&sources.back()->blk, 1);
    }
    EXPECT_EQ(s.item_count_estimate(), 20u);
    item_ref<std::uint32_t, std::uint64_t> ref;
    do {
        ref = s.find_min(0);
        ASSERT_FALSE(ref.empty());
    } while (!ref.take());
    EXPECT_LE(ref.key, 1u);
}

TEST(SharedLsm, LocalOrderingPrefersOwnMinimum) {
    pool_t items;
    // Large k so the random candidate is usually NOT the global minimum.
    shared_t s{63};
    std::vector<std::uint32_t> keys;
    for (std::uint32_t i = 0; i < 64; ++i)
        keys.push_back(i);
    source_block src{items, keys, /*tid=*/7};
    s.insert(&src.blk, src.blk.filled());
    // Thread 7 contributed every key, so its own minimum (0) must always
    // win the comparison against the random candidate.
    for (int i = 0; i < 50; ++i) {
        auto ref = s.find_min(/*tid=*/7);
        ASSERT_FALSE(ref.empty());
        EXPECT_EQ(ref.key, 0u);
    }
}

TEST(SharedLsm, TwoArraysPerThreadSuffice) {
    pool_t items;
    shared_t s{2};
    std::vector<std::unique_ptr<source_block>> sources;
    for (std::uint32_t i = 0; i < 200; ++i) {
        sources.push_back(std::make_unique<source_block>(
            items, std::vector<std::uint32_t>{i, i + 1000}));
        s.insert(&sources.back()->blk, 2);
        if (i % 3 == 0) {
            auto ref = s.find_min(0);
            if (!ref.empty())
                ref.take();
        }
    }
    EXPECT_EQ(s.extra_array_allocations(), 0u)
        << "paper bound of two BlockArrays per thread violated";
}

TEST(SharedLsm, ConcurrentInsertDeleteConservation) {
    constexpr int threads = 4;
    constexpr std::uint32_t per_thread = 3000;
    shared_t s{16};
    std::atomic<std::uint64_t> deletes{0};
    // Pools and source blocks must outlive every thread: items stay
    // referenced by the shared LSM until the final drain.
    pool_t items_by_thread[threads];
    std::vector<std::unique_ptr<source_block>> sources_by_thread[threads];
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&, t] {
            pool_t &items = items_by_thread[t];
            auto &sources = sources_by_thread[t];
            const std::uint32_t tid = thread_index();
            for (std::uint32_t i = 0; i < per_thread; ++i) {
                sources.push_back(std::make_unique<source_block>(
                    items,
                    std::vector<std::uint32_t>{
                        static_cast<std::uint32_t>(t) * per_thread + i},
                    tid));
                s.insert(&sources.back()->blk, 1);
                auto ref = s.find_min(tid);
                if (!ref.empty() && ref.take())
                    deletes.fetch_add(1);
            }
            // Drain whatever is left visible to this thread.
            for (;;) {
                auto ref = s.find_min(tid);
                if (ref.empty())
                    break;
                if (ref.take())
                    deletes.fetch_add(1);
            }
        });
    }
    for (auto &t : ts)
        t.join();
    // Every inserted item is deleted exactly once; nothing is lost or
    // duplicated.
    EXPECT_EQ(deletes.load(), std::uint64_t{threads} * per_thread);
    EXPECT_TRUE(s.find_min(thread_index()).empty());
}

} // namespace
} // namespace klsm
