#include "klsm/block.hpp"

#include "mm/item_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace klsm {
namespace {

using block_t = block<std::uint32_t, std::uint64_t>;
using pool_t = item_pool<std::uint32_t, std::uint64_t>;

// Build a sealed block holding `keys` (given in any order; appended in
// decreasing order as the block contract requires).  Blocks are pinned in
// place (non-copyable), so the helper hands back a unique_ptr.
std::unique_ptr<block_t> make_block(pool_t &pool,
                                    std::vector<std::uint32_t> keys,
                                    std::uint32_t capacity_pow) {
    std::sort(keys.rbegin(), keys.rend());
    auto b = std::make_unique<block_t>(capacity_pow);
    b->reuse_begin(capacity_pow);
    for (auto k : keys)
        b->append(pool.allocate(k, k));
    b->seal();
    return b;
}

TEST(Block, AppendStoresDecreasingRun) {
    pool_t pool;
    auto bp = make_block(pool, {5, 3, 9, 1}, 2);
    block_t &b = *bp;
    EXPECT_EQ(b.filled(), 4u);
    std::uint32_t prev = 0xffffffff;
    for (std::uint32_t i = 0; i < b.filled(); ++i) {
        const auto e = b.load_entry(i);
        EXPECT_LE(e.key, prev);
        prev = e.key;
    }
    EXPECT_EQ(b.load_entry(b.filled() - 1).key, 1u) << "min at the end";
}

TEST(Block, AppendSkipsDeadItems) {
    pool_t pool;
    block_t b{2};
    b.reuse_begin(2);
    auto alive = pool.allocate(9, 9);
    auto dead = pool.allocate(5, 5);
    dead.take();
    EXPECT_TRUE(b.append(alive));
    EXPECT_FALSE(b.append(dead));
    b.seal();
    EXPECT_EQ(b.filled(), 1u);
}

TEST(Block, AppendAppliesLazyDeletion) {
    pool_t pool;
    block_t b{2};
    b.reuse_begin(2);
    auto ref = pool.allocate(7, 7);
    auto expired = [](const std::uint32_t &key, const auto *) {
        return key == 7;
    };
    EXPECT_FALSE(b.append(ref, expired));
    b.seal();
    EXPECT_EQ(b.filled(), 0u);
    EXPECT_FALSE(ref.alive()) << "lazily expired items must be taken";
}

TEST(Block, PeekMinSkipsDeadSuffix) {
    pool_t pool;
    block_t b{3};
    b.reuse_begin(3);
    auto r9 = pool.allocate(9, 9);
    auto r5 = pool.allocate(5, 5);
    auto r2 = pool.allocate(2, 2);
    b.append(r9);
    b.append(r5);
    b.append(r2);
    b.seal();

    EXPECT_EQ(b.peek_min(b.filled()).key, 2u);
    r2.take();
    EXPECT_EQ(b.peek_min(b.filled()).key, 5u);
    r5.take();
    EXPECT_EQ(b.peek_min(b.filled()).key, 9u);
    r9.take();
    EXPECT_TRUE(b.peek_min(b.filled()).empty());
}

TEST(Block, TrimOwnerDropsDeadSuffixAndLowersLevel) {
    pool_t pool;
    std::vector<std::uint32_t> keys;
    std::vector<item_ref<std::uint32_t, std::uint64_t>> refs;
    block_t b{3};
    b.reuse_begin(3);
    for (std::uint32_t k : {80u, 70u, 60u, 50u, 40u, 30u, 20u, 10u}) {
        auto r = pool.allocate(k, k);
        b.append(r);
        refs.push_back(r);
    }
    b.seal();
    EXPECT_EQ(b.level(), 3u);
    // Kill the smallest five (the suffix).
    for (std::size_t i = 3; i < 8; ++i)
        refs[i].take();
    b.trim_owner();
    EXPECT_EQ(b.filled(), 3u);
    EXPECT_EQ(b.level(), 2u) << "3 items need level 2";
    EXPECT_EQ(b.peek_min(b.filled()).key, 60u);
}

TEST(Block, MergePreservesOrderAndFiltersDead) {
    pool_t pool;
    auto ap = make_block(pool, {1, 5, 9}, 2);
    auto cp = make_block(pool, {2, 6, 10, 14}, 2);
    block_t &a = *ap;
    block_t &c = *cp;
    // Kill key 6.
    for (std::uint32_t i = 0; i < c.filled(); ++i) {
        auto e = c.load_entry(i);
        if (e.key == 6)
            e.take();
    }
    block_t m{3};
    m.reuse_begin(3);
    m.merge_from(a, a.filled(), c, c.filled());
    m.seal();
    ASSERT_EQ(m.filled(), 6u);
    const std::uint32_t expect[] = {14, 10, 9, 5, 2, 1};
    for (std::uint32_t i = 0; i < 6; ++i)
        EXPECT_EQ(m.load_entry(i).key, expect[i]);
}

TEST(Block, MergeCombinesBloomFilters) {
    pool_t pool;
    auto ap = make_block(pool, {1}, 0);
    auto cp = make_block(pool, {2}, 0);
    block_t &a = *ap;
    block_t &c = *cp;
    // Simulate two contributing threads.
    a.bloom_insert(3);
    c.bloom_insert(14);
    block_t m{1};
    m.reuse_begin(1);
    m.merge_from(a, a.filled(), c, c.filled());
    m.seal();
    EXPECT_TRUE(m.bloom_may_contain(3));
    EXPECT_TRUE(m.bloom_may_contain(14));
}

TEST(Block, CopyFromFiltersDeadAndKeepsOrder) {
    pool_t pool;
    auto srcp = make_block(pool, {8, 6, 4, 2}, 2);
    block_t &src = *srcp;
    auto mid = src.load_entry(1); // key 6
    mid.take();
    block_t dst{2};
    dst.reuse_begin(2);
    dst.copy_from(src, src.filled());
    dst.seal();
    ASSERT_EQ(dst.filled(), 3u);
    EXPECT_EQ(dst.load_entry(0).key, 8u);
    EXPECT_EQ(dst.load_entry(1).key, 4u);
    EXPECT_EQ(dst.load_entry(2).key, 2u);
}

TEST(Block, GenerationParityTracksMutationWindow) {
    block_t b{1};
    EXPECT_EQ(b.generation() & 1, 0u);
    b.reuse_begin(1);
    EXPECT_EQ(b.generation() & 1, 1u);
    b.seal();
    EXPECT_EQ(b.generation() & 1, 0u);
}

TEST(Block, SpyCopySucceedsOnStableBlock) {
    pool_t pool;
    auto victimp = make_block(pool, {30, 20, 10}, 2);
    block_t &victim = *victimp;
    block_t mine{2};
    mine.reuse_begin(2);
    EXPECT_TRUE(mine.spy_copy_from(victim));
    mine.seal();
    EXPECT_EQ(mine.filled(), 3u);
    EXPECT_EQ(mine.peek_min(mine.filled()).key, 10u);
}

TEST(Block, SpyCopyFailsOnMutatingBlock) {
    pool_t pool;
    auto victimp = make_block(pool, {30, 20, 10}, 2);
    block_t &victim = *victimp;
    victim.reuse_begin(2); // recycling started
    block_t mine{2};
    mine.reuse_begin(2);
    EXPECT_FALSE(mine.spy_copy_from(victim));
}

TEST(Block, SpyCopyFailsWhenVictimRecycledMidway) {
    pool_t pool;
    auto victimp = make_block(pool, {30, 20, 10}, 2);
    block_t &victim = *victimp;
    block_t mine{2};
    mine.reuse_begin(2);
    // Simulate "recycled between generation reads": read generation,
    // then recycle, then validate.
    const std::uint64_t g1 = victim.generation();
    victim.reuse_begin(2);
    victim.seal();
    EXPECT_NE(victim.generation(), g1)
        << "generation must change across recycling";
    EXPECT_FALSE(mine.spy_copy_from(victim) &&
                 victim.generation() == g1);
}

TEST(Block, LevelForMatchesPaperRule) {
    EXPECT_EQ(block_t::level_for(0), 0u);
    EXPECT_EQ(block_t::level_for(1), 0u);
    EXPECT_EQ(block_t::level_for(2), 1u);
    EXPECT_EQ(block_t::level_for(3), 2u);
    EXPECT_EQ(block_t::level_for(4), 2u);
    EXPECT_EQ(block_t::level_for(5), 3u);
    EXPECT_EQ(block_t::level_for(1024), 10u);
    EXPECT_EQ(block_t::level_for(1025), 11u);
}

} // namespace
} // namespace klsm
