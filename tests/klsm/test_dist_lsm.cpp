#include "klsm/dist_lsm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

namespace klsm {
namespace {

using dist_t = dist_lsm_local<std::uint32_t, std::uint64_t>;

constexpr auto no_spill = [](block<std::uint32_t, std::uint64_t> *,
                             std::uint32_t) {};

void insert_local(dist_t &d, std::uint32_t key) {
    d.insert(key, std::uint64_t{key}, /*tid=*/0, dist_t::unbounded,
             no_lazy{}, no_spill);
}

TEST(DistLsm, EmptyFindMin) {
    dist_t d;
    EXPECT_TRUE(d.find_min().empty());
    EXPECT_TRUE(d.empty_hint());
    EXPECT_EQ(d.item_count_estimate(), 0u);
}

TEST(DistLsm, SingleInsertFind) {
    dist_t d;
    insert_local(d, 42);
    auto ref = d.find_min();
    ASSERT_FALSE(ref.empty());
    EXPECT_EQ(ref.key, 42u);
    EXPECT_EQ(d.item_count_estimate(), 1u);
}

TEST(DistLsm, SequentialDeleteOrderIsExact) {
    // A single-thread DistLSM is an exact priority queue (the paper
    // compares it against a binary heap at one thread).
    dist_t d;
    std::vector<std::uint32_t> keys = {9, 2, 7, 4, 4, 11, 0, 6, 3};
    for (auto k : keys)
        insert_local(d, k);
    std::sort(keys.begin(), keys.end());
    for (auto expect : keys) {
        auto ref = d.find_min();
        ASSERT_FALSE(ref.empty());
        EXPECT_EQ(ref.key, expect);
        ASSERT_TRUE(ref.take());
    }
    EXPECT_TRUE(d.find_min().empty());
}

TEST(DistLsm, ManyItemsMergeChainKeepsLevelsDecreasing) {
    dist_t d;
    for (std::uint32_t i = 0; i < 300; ++i)
        insert_local(d, 299 - i);
    EXPECT_EQ(d.item_count_estimate(), 300u);
    // Drain in order.
    for (std::uint32_t i = 0; i < 300; ++i) {
        auto ref = d.find_min();
        ASSERT_FALSE(ref.empty()) << "at " << i;
        ASSERT_EQ(ref.key, i);
        ASSERT_TRUE(ref.take());
    }
    EXPECT_TRUE(d.find_min().empty());
    EXPECT_TRUE(d.empty_hint()) << "drained LSM consolidates to empty";
}

TEST(DistLsm, PoolStaysWithinPaperBound) {
    dist_t d;
    for (std::uint32_t i = 0; i < 2000; ++i)
        insert_local(d, i);
    for (int i = 0; i < 1000; ++i) {
        auto ref = d.find_min();
        ASSERT_FALSE(ref.empty());
        ref.take();
    }
    for (std::uint32_t i = 0; i < 500; ++i)
        insert_local(d, i);
    EXPECT_EQ(d.pool().overflow_allocations(), 0u)
        << "more than four blocks per level were needed";
}

TEST(DistLsm, SpillTriggersWhenBoundExceeded) {
    dist_t d;
    std::vector<std::uint32_t> spilled_sizes;
    auto spill = [&](block<std::uint32_t, std::uint64_t> *b,
                     std::uint32_t filled) {
        spilled_sizes.push_back(filled);
        // Consume the items as the shared LSM would (take them so the
        // count oracle below stays simple).
        for (std::uint32_t i = 0; i < filled; ++i)
            b->load_entry(i).take();
    };
    constexpr std::size_t bound = 8;
    for (std::uint32_t i = 0; i < 100; ++i)
        d.insert(i, i, 0, bound, no_lazy{}, spill);
    ASSERT_FALSE(spilled_sizes.empty());
    for (auto s : spilled_sizes) {
        EXPECT_GT(s, 0u);
        EXPECT_LE(s, bound + 1) << "spilled batch exceeds k+1";
    }
    EXPECT_LE(d.item_count_estimate(), bound);
}

TEST(DistLsm, SpillZeroBoundPublishesEverySingleInsert) {
    dist_t d;
    int spills = 0;
    auto spill = [&](block<std::uint32_t, std::uint64_t> *b,
                     std::uint32_t filled) {
        ++spills;
        EXPECT_EQ(filled, 1u);
        b->load_entry(0).take();
    };
    for (std::uint32_t i = 0; i < 10; ++i)
        d.insert(i, i, 0, 0, no_lazy{}, spill);
    EXPECT_EQ(spills, 10);
    EXPECT_TRUE(d.empty_hint());
}

TEST(DistLsm, SpyCopiesVictimItems) {
    dist_t victim, thief;
    for (std::uint32_t i = 0; i < 20; ++i)
        insert_local(victim, i);
    ASSERT_TRUE(thief.spy_from(victim, dist_t::unbounded));
    // Non-destructive: victim still has everything.
    EXPECT_EQ(victim.find_min().key, 0u);
    // Thief sees the same minimum.
    auto ref = thief.find_min();
    ASSERT_FALSE(ref.empty());
    EXPECT_EQ(ref.key, 0u);
}

TEST(DistLsm, SpyRespectsItemCap) {
    dist_t victim, thief;
    for (std::uint32_t i = 0; i < 64; ++i)
        insert_local(victim, i);
    ASSERT_TRUE(thief.spy_from(victim, 8));
    // The cap is approximate (whole blocks are copied), but must not copy
    // everything.
    EXPECT_LE(thief.item_count_estimate(), 64u + 8u);
    EXPECT_GT(thief.item_count_estimate(), 0u);
}

TEST(DistLsm, SpiedItemsAreSharedNotDuplicated) {
    dist_t victim, thief;
    insert_local(victim, 5);
    ASSERT_TRUE(thief.spy_from(victim, dist_t::unbounded));
    auto a = victim.find_min();
    auto b = thief.find_min();
    ASSERT_FALSE(a.empty());
    ASSERT_FALSE(b.empty());
    EXPECT_EQ(a.it, b.it) << "spy copies references, not items";
    // Only one take can win.
    EXPECT_TRUE(a.take());
    EXPECT_FALSE(b.take());
}

TEST(DistLsm, SpyFromEmptyVictimFails) {
    dist_t victim, thief;
    EXPECT_FALSE(thief.spy_from(victim, dist_t::unbounded));
}

// Concurrent spying against an active owner: spies must never crash, and
// every item they obtain must be genuine (take at most once).
TEST(DistLsm, ConcurrentSpyWhileOwnerChurns) {
    dist_t owner;
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> spied_takes{0};
    std::atomic<std::uint64_t> owner_takes{0};
    constexpr std::uint32_t total = 20000;

    std::thread owner_thread([&] {
        for (std::uint32_t i = 0; i < total; ++i) {
            insert_local(owner, i);
            if (i % 3 == 0) {
                auto ref = owner.find_min();
                if (!ref.empty() && ref.take())
                    owner_takes.fetch_add(1);
            }
        }
        stop.store(true);
    });

    std::vector<std::thread> spies;
    for (int t = 0; t < 3; ++t) {
        spies.emplace_back([&] {
            dist_t mine;
            while (!stop.load()) {
                if (mine.spy_from(owner, 64)) {
                    auto ref = mine.find_min();
                    if (!ref.empty() && ref.take())
                        spied_takes.fetch_add(1);
                    // Drain local copy so the next spy starts empty.
                    while (!(ref = mine.find_min()).empty())
                        ref.take();
                    while (!mine.empty_hint())
                        mine.consolidate();
                }
            }
        });
    }
    owner_thread.join();
    for (auto &t : spies)
        t.join();

    // Conservation: every take corresponds to a distinct item; total
    // takes can never exceed the number of inserts.
    EXPECT_LE(owner_takes.load() + spied_takes.load(), total);
}

} // namespace
} // namespace klsm
