// numa_klsm: NUMA-sharded k-LSM.
//
// Multi-node behavior is modeled on any host by discovering the
// checked-in 2-node fake sysfs tree and routing threads explicitly with
// set_home_shard; the single-node path is exercised with a fallback
// topology (the shape every container CI host has).

#include "klsm/numa_klsm.hpp"

#include <atomic>
#include <iterator>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace klsm {
namespace {

topo::topology two_node_topology() {
    auto t = topo::topology::discover(
        std::string(KLSM_TOPO_FIXTURE_DIR) + "/fake_sysfs");
    EXPECT_EQ(t.num_nodes(), 2u);
    return t;
}

TEST(NumaKlsm, SingleNodeFallbackHasOneShard) {
    const auto t = topo::topology::fallback(4);
    numa_klsm<std::uint32_t, std::uint32_t> q{8, t};
    EXPECT_EQ(q.num_shards(), 1u);
    q.insert(3, 30);
    q.insert(1, 10);
    q.insert(2, 20);
    std::uint32_t k, v;
    std::set<std::uint32_t> seen;
    while (q.try_delete_min(k, v)) {
        EXPECT_EQ(v, k * 10);
        seen.insert(k);
    }
    EXPECT_EQ(seen, (std::set<std::uint32_t>{1, 2, 3}));
    EXPECT_FALSE(q.try_delete_min(k, v));
}

TEST(NumaKlsm, TwoShardsEveryItemRecoveredExactlyOnce) {
    const auto t = two_node_topology();
    numa_klsm<std::uint32_t, std::uint32_t> q{16, t};
    ASSERT_EQ(q.num_shards(), 2u);
    constexpr std::uint32_t n = 4000;
    // Route half the inserts to each shard from this one thread.
    for (std::uint32_t i = 0; i < n; ++i) {
        q.set_home_shard(i % 2);
        q.insert(i, i + 1);
    }
    EXPECT_GE(q.size_hint(), n);
    std::vector<bool> seen(n, false);
    std::uint32_t k, v;
    std::uint32_t count = 0;
    while (q.try_delete_min(k, v)) {
        ASSERT_LT(k, n);
        ASSERT_EQ(v, k + 1);
        ASSERT_FALSE(seen[k]) << "duplicate delivery of key " << k;
        seen[k] = true;
        ++count;
    }
    EXPECT_EQ(count, n);
}

TEST(NumaKlsm, DrainsRemoteShardWhenLocalIsEmpty) {
    const auto t = two_node_topology();
    numa_klsm<std::uint32_t, std::uint32_t> q{8, t};
    // Fill only shard 1, then consume with home shard 0: every delete
    // goes through the local-miss sweep and must still find the items.
    q.set_home_shard(1);
    for (std::uint32_t i = 0; i < 500; ++i)
        q.insert(i, i);
    q.set_home_shard(0);
    std::uint32_t k, v;
    std::uint32_t count = 0;
    while (q.try_delete_min(k, v))
        ++count;
    EXPECT_EQ(count, 500u);
}

TEST(NumaKlsm, TryFindMinSeesAllShards) {
    const auto t = two_node_topology();
    numa_klsm<std::uint32_t, std::uint32_t> q{8, t};
    std::uint32_t k, v;
    EXPECT_FALSE(q.try_find_min(k, v));
    q.set_home_shard(0);
    q.insert(50, 1);
    q.set_home_shard(1);
    q.insert(7, 2);
    ASSERT_TRUE(q.try_find_min(k, v));
    // The smaller key lives in shard 1; a global find-min must see it.
    EXPECT_EQ(k, 7u);
    EXPECT_EQ(v, 2u);
}

TEST(NumaKlsm, ConcurrentInsertDeleteConservesItems) {
    const auto t = two_node_topology();
    numa_klsm<std::uint32_t, std::uint32_t> q{64, t};
    constexpr unsigned threads = 4;
    constexpr std::uint32_t per_thread = 20000;
    std::atomic<std::uint64_t> deleted{0};
    std::vector<std::thread> ts;
    for (unsigned w = 0; w < threads; ++w) {
        ts.emplace_back([&, w] {
            q.set_home_shard(w % 2);
            xoroshiro128 rng{1234 + w};
            std::uint32_t k, v;
            std::uint64_t my_deleted = 0;
            for (std::uint32_t i = 0; i < per_thread; ++i) {
                if (rng.bounded(2) == 0) {
                    const auto key_in = static_cast<std::uint32_t>(
                        rng.bounded(1 << 20));
                    q.insert(key_in, w);
                } else if (q.try_delete_min(k, v)) {
                    ++my_deleted;
                }
            }
            deleted.fetch_add(my_deleted);
        });
    }
    std::uint64_t inserted = 0;
    for (unsigned w = 0; w < threads; ++w) {
        ts[w].join();
    }
    // Count inserts deterministically from the same RNG streams.
    for (unsigned w = 0; w < threads; ++w) {
        xoroshiro128 rng{1234 + w};
        for (std::uint32_t i = 0; i < per_thread; ++i) {
            if (rng.bounded(2) == 0) {
                rng.bounded(1 << 20);
                ++inserted;
            }
        }
    }
    // Drain the remainder single-threadedly.
    std::uint32_t k, v;
    std::uint64_t drained = 0;
    while (q.try_delete_min(k, v))
        ++drained;
    EXPECT_EQ(deleted.load() + drained, inserted);
    EXPECT_FALSE(q.try_delete_min(k, v));
}

// The composed bound rho <= nodes * (T*k + k) under balanced routing
// (the regime the structure is designed for — each worker inserts and
// deletes on its own home shard): a serialized mirror workload as in
// harness/quality.hpp, with workers split across both shards so
// cross-shard skew is actually exercised.  See numa_klsm.hpp for why
// adversarially skewed routing is excluded from the guarantee: on a
// multi-node topology the bound is a design property of balanced
// routing, not a structural worst case (the quality harness checks it
// advisorily there), so one scheduler-starved run can graze past it.
// The test therefore allows up to three independent attempts and fails
// only when the bound misses systematically.
TEST(NumaKlsm, RankErrorWithinComposedBound) {
    const auto t = two_node_topology();
    constexpr std::size_t k = 32;
    constexpr unsigned threads = 4;
    const std::uint64_t rho =
        numa_rank_error_bound(t.num_nodes(), threads, k);

    const auto run_once = [&](std::uint64_t seed_base) {
        numa_klsm<std::uint32_t, std::uint32_t> q{k, t};
        std::multiset<std::uint32_t> mirror;
        std::mutex mtx;
        std::atomic<std::uint64_t> rank_max{0};
        std::atomic<std::uint64_t> deletes{0};

        std::vector<std::thread> ts;
        for (unsigned w = 0; w < threads; ++w) {
            ts.emplace_back([&, w] {
                q.set_home_shard(w % 2);
                xoroshiro128 rng{seed_base + 31 * w};
                std::uint32_t key, value;
                for (std::uint32_t i = 0; i < 10000; ++i) {
                    if (rng.bounded(2) == 0) {
                        const auto key_in = static_cast<std::uint32_t>(
                            rng.bounded(1 << 20));
                        std::lock_guard<std::mutex> g(mtx);
                        q.insert(key_in, 0);
                        mirror.insert(key_in);
                    } else {
                        std::lock_guard<std::mutex> g(mtx);
                        if (!q.try_delete_min(key, value))
                            continue;
                        const auto it = mirror.find(key);
                        ASSERT_NE(it, mirror.end());
                        const auto rank = static_cast<std::uint64_t>(
                            std::distance(mirror.begin(), it));
                        std::uint64_t cur = rank_max.load();
                        while (rank > cur &&
                               !rank_max.compare_exchange_weak(cur,
                                                               rank)) {
                        }
                        deletes.fetch_add(1);
                        mirror.erase(it);
                    }
                }
            });
        }
        for (auto &th : ts)
            th.join();
        EXPECT_GT(deletes.load(), 0u);
        return rank_max.load();
    };

    std::uint64_t observed = 0;
    for (int attempt = 0; attempt < 3; ++attempt) {
        observed = run_once(977 + 7919u * static_cast<unsigned>(attempt));
        if (observed <= rho)
            break;
    }
    EXPECT_LE(observed, rho)
        << "observed rank error beyond the composed nodes*(T*k + k) "
           "bound on three independent runs";
}

TEST(NumaKlsm, HomeShardPinDoesNotSurviveSlotRecycling) {
    const auto t = two_node_topology();
    numa_klsm<std::uint32_t, std::uint32_t> q{8, t};
    // Thread A pins itself to shard 1 and exits, releasing its dense
    // thread-id slot.
    std::thread a([&] {
        q.set_home_shard(1);
        q.insert(100, 0);
    });
    a.join();
    ASSERT_GE(q.shard(1).size_hint(), 1u);
    // Thread B reuses a recycled slot (ids are handed out
    // smallest-free-first).  Its insert must be routed from its own
    // cpu, not inherit A's stale pin to shard 1.
    std::uint32_t expected = 0;
    std::thread b([&] {
        const auto cpu = topo::current_cpu();
        expected = t.node_index(t.node_of(cpu ? *cpu : 0));
        q.insert(200, 0);
    });
    b.join();
    // Only discriminating when B's own cpu maps to shard 0 (true on
    // single-cpu CI hosts; on exotic hosts the check is vacuous).
    if (expected == 0) {
        EXPECT_GE(q.shard(0).size_hint(), 1u)
            << "recycled slot inherited the dead thread's pin";
    }
}

topo::topology four_node_topology() {
    auto t = topo::topology::discover(
        std::string(KLSM_TOPO_FIXTURE_DIR) + "/fake_sysfs_4node");
    EXPECT_EQ(t.num_nodes(), 4u);
    return t;
}

TEST(NumaKlsm, FourNodeFixtureDiscovers) {
    const auto t = four_node_topology();
    EXPECT_EQ(t.num_cpus(), 4u);
    numa_klsm<std::uint32_t, std::uint32_t> q{8, t};
    EXPECT_EQ(q.num_shards(), 4u);
}

// Best-of-two remote polling: with remote minima 10 < 20 < 30 in
// shards 1..3 and home shard 0, every sampled pair contains a shard
// whose observed minimum beats 30 ({1,2}->10, {1,3}->10, {2,3}->20),
// so the poll may return 10 or 20 but never 30 — the distinguishing
// property versus uniform-random victim choice, which returns 30 a
// third of the time.
TEST(NumaKlsm, BestOfTwoPollNeverTakesTheWorstRemote) {
    const auto t = four_node_topology();
    for (int trial = 0; trial < 200; ++trial) {
        numa_klsm<std::uint32_t, std::uint32_t> q{8, t};
        for (std::uint32_t s = 1; s < 4; ++s) {
            q.set_home_shard(s);
            q.insert(s * 10, s);
        }
        q.set_home_shard(0);
        std::uint32_t k = 0, v = 0;
        ASSERT_TRUE(q.poll_remote_best_of_two(0, k, v));
        EXPECT_NE(k, 30u) << "poll took the worst of three remotes";
        EXPECT_TRUE(k == 10u || k == 20u);
    }
}

TEST(NumaKlsm, BestOfTwoPollDrainsTheSingleRemote) {
    const auto t = two_node_topology();
    numa_klsm<std::uint32_t, std::uint32_t> q{8, t};
    q.set_home_shard(1);
    q.insert(42, 7);
    q.set_home_shard(0);
    std::uint32_t k = 0, v = 0;
    // One remote shard: best-of-two degenerates to polling it.
    ASSERT_TRUE(q.poll_remote_best_of_two(0, k, v));
    EXPECT_EQ(k, 42u);
    EXPECT_EQ(v, 7u);
    EXPECT_FALSE(q.poll_remote_best_of_two(0, k, v));
}

TEST(NumaKlsm, BestOfTwoPollIgnoresTheLocalShard) {
    const auto t = four_node_topology();
    numa_klsm<std::uint32_t, std::uint32_t> q{8, t};
    q.set_home_shard(0);
    q.insert(1, 1); // only the local shard holds anything
    std::uint32_t k = 0, v = 0;
    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(q.poll_remote_best_of_two(0, k, v))
            << "remote poll returned the local shard's key";
    // The ordinary delete path still reaches the local item.
    EXPECT_TRUE(q.try_delete_min(k, v));
    EXPECT_EQ(k, 1u);
}

// Placement threading (ROADMAP "Per-node block pools"): with the bind
// policy every shard's pools must target exactly the NUMA node that
// shard serves, in node_ids() order — the plumbing the real multi-node
// win depends on, provable on the fake-sysfs fixture without NUMA
// hardware.
TEST(NumaKlsm, ShardPoolsTargetTheirOwnNode) {
    const auto t = four_node_topology();
    numa_klsm<std::uint32_t, std::uint32_t> q{
        8, t, {}, mm::numa_alloc_policy::bind};
    EXPECT_EQ(q.alloc_policy(), mm::numa_alloc_policy::bind);
    ASSERT_EQ(q.num_shards(), t.num_nodes());
    for (std::uint32_t s = 0; s < q.num_shards(); ++s) {
        const auto &place = q.shard(s).placement();
        EXPECT_EQ(place.policy, mm::numa_alloc_policy::bind);
        EXPECT_EQ(place.node, t.node_ids()[s])
            << "shard " << s << " bound to the wrong node";
    }
}

TEST(NumaKlsm, DefaultPolicyLeavesPoolsUnplaced) {
    const auto t = two_node_topology();
    numa_klsm<std::uint32_t, std::uint32_t> q{8, t};
    EXPECT_EQ(q.alloc_policy(), mm::numa_alloc_policy::none);
    for (std::uint32_t s = 0; s < q.num_shards(); ++s)
        EXPECT_EQ(q.shard(s).placement().policy,
                  mm::numa_alloc_policy::none);
}

TEST(NumaKlsm, MemoryStatsAggregateAcrossShards) {
    const auto t = two_node_topology();
    numa_klsm<std::uint32_t, std::uint32_t> q{
        8, t, {}, mm::numa_alloc_policy::firsttouch};
    for (std::uint32_t s = 0; s < 2; ++s) {
        q.set_home_shard(s);
        for (std::uint32_t i = 0; i < 500; ++i)
            q.insert(i, i);
    }
    const auto total = q.memory_stats();
    const auto shard0 = q.shard(0).memory_stats();
    EXPECT_GT(shard0.items.fresh_allocs, 0u);
    EXPECT_GT(total.items.fresh_allocs, shard0.items.fresh_allocs)
        << "the aggregate must cover both shards";
    EXPECT_EQ(total.dist_blocks.growth_beyond_bound, 0u);
}

// Hot-shard hinting: a thread publishes its home shard as the shared
// hint every hint_update_period of its own inserts when that shard
// looks fuller than the hinted one — so after a burst into one shard
// the hint names it.
TEST(NumaKlsm, HotShardHintTracksFullestShard) {
    const auto t = four_node_topology();
    numa_klsm<std::uint32_t, std::uint32_t> q{8, t};
    using q_t = decltype(q);
    q.set_home_shard(2);
    for (std::uint32_t i = 0; i < 4 * q_t::hint_update_period; ++i)
        q.insert(1000 + i, i);
    EXPECT_EQ(q.hot_shard_hint(), 2u);
    // A bigger burst elsewhere moves the hint.
    q.set_home_shard(1);
    for (std::uint32_t i = 0; i < 12 * q_t::hint_update_period; ++i)
        q.insert(5000 + i, i);
    EXPECT_EQ(q.hot_shard_hint(), 1u);
}

// With the hint naming the shard that holds the globally smallest
// keys, every poll pairs the hint with a random remote and must take
// from the hinted shard (its observed minimum wins the best-of-two) —
// deterministically, where random+random would miss it when neither
// sample landed on it.
TEST(NumaKlsm, BestOfTwoPollPrefersTheHintedShard) {
    const auto t = four_node_topology();
    numa_klsm<std::uint32_t, std::uint32_t> q{8, t};
    using q_t = decltype(q);
    // Shards 1 and 2: one large key each.  Shard 3: a burst of small
    // keys that also drives the hint there.
    q.set_home_shard(1);
    q.insert(100000, 1);
    q.set_home_shard(2);
    q.insert(200000, 2);
    q.set_home_shard(3);
    for (std::uint32_t i = 0; i < 4 * q_t::hint_update_period; ++i)
        q.insert(i, 3);
    ASSERT_EQ(q.hot_shard_hint(), 3u);
    q.set_home_shard(0);
    std::uint32_t k = 0, v = 0;
    for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(q.poll_remote_best_of_two(0, k, v));
        EXPECT_LT(k, 100000u)
            << "poll bypassed the hinted hot shard";
    }
}

// The hint never breaks the poll's contract when it goes stale: a hint
// pointing at a drained shard still leaves the random second sample to
// find backlog elsewhere.
TEST(NumaKlsm, StaleHintStillFindsBacklogViaTheRandomProbe) {
    const auto t = four_node_topology();
    numa_klsm<std::uint32_t, std::uint32_t> q{8, t};
    using q_t = decltype(q);
    q.set_home_shard(1);
    for (std::uint32_t i = 0; i < 2 * q_t::hint_update_period; ++i)
        q.insert(i, 1);
    ASSERT_EQ(q.hot_shard_hint(), 1u);
    // Drain shard 1 entirely; the hint now points at an empty shard.
    q.set_home_shard(1);
    std::uint32_t k = 0, v = 0;
    while (q.shard(1).try_delete_min(k, v)) {
    }
    q.set_home_shard(2);
    q.insert(7, 2);
    ASSERT_EQ(q.hot_shard_hint(), 1u) << "hint must still be stale";
    q.set_home_shard(0);
    bool found = false;
    for (int i = 0; i < 200 && !found; ++i)
        found = q.poll_remote_best_of_two(0, k, v);
    EXPECT_TRUE(found) << "random second probe never found shard 2";
    EXPECT_EQ(k, 7u);
}

TEST(NumaKlsm, ComposedBoundFormula) {
    // nodes * ((T+1)*k + k), T = worker threads (prefill counts once).
    EXPECT_EQ(numa_rank_error_bound(1, 3, 8), (4 * 8 + 8) * 1u);
    EXPECT_EQ(numa_rank_error_bound(2, 3, 8), (4 * 8 + 8) * 2u);
    EXPECT_EQ(numa_rank_error_bound(4, 0, 16), (16 + 16) * 4u);
    EXPECT_EQ(numa_rank_error_bound(2, 3, 0), 0u);
}

} // namespace
} // namespace klsm
