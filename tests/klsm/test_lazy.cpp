// Lazy deletion (paper Section 4.5): expired items are dropped whenever
// blocks are copied or merged, replacing an explicit decrease-key — the
// mechanism the SSSP benchmark builds on.

#include "klsm/k_lsm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

namespace klsm {
namespace {

/// SSSP-style policy: an item (key = tentative distance, value = node) is
/// expired once a strictly smaller distance has been recorded for the
/// node.
struct stale_distance {
    const std::atomic<std::uint64_t> *dist;

    bool operator()(const std::uint64_t &key,
                    const item<std::uint64_t, std::uint32_t> *it) const {
        return dist[it->value()].load(std::memory_order_relaxed) < key;
    }
};

using lazy_queue = k_lsm<std::uint64_t, std::uint32_t, stale_distance>;

class LazyDeletionTest : public ::testing::Test {
protected:
    static constexpr std::uint32_t nodes = 64;
    std::unique_ptr<std::atomic<std::uint64_t>[]> dist =
        std::make_unique<std::atomic<std::uint64_t>[]>(nodes);

    void SetUp() override {
        for (std::uint32_t i = 0; i < nodes; ++i)
            dist[i].store(std::uint64_t(-1));
    }
};

TEST_F(LazyDeletionTest, ExpiredItemsAreDroppedDuringMerges) {
    lazy_queue q{4, stale_distance{dist.get()}};
    // Insert many superseded entries for node 3: each new entry improves
    // the recorded distance, expiring all earlier ones.
    for (std::uint64_t d = 100; d > 0; --d) {
        dist[3].store(d);
        q.insert(d, 3);
    }
    // All entries with key > 1 are expired; merges happen during the
    // inserts themselves, so the structure stays small.
    EXPECT_LT(q.size_hint(), 20u)
        << "lazy deletion failed to compact superseded entries";

    std::uint64_t key;
    std::uint32_t node;
    ASSERT_TRUE(q.try_delete_min(key, node));
    EXPECT_EQ(key, 1u);
    EXPECT_EQ(node, 3u);
}

TEST_F(LazyDeletionTest, NonExpiredItemsSurviveCompaction) {
    lazy_queue q{2, stale_distance{dist.get()}};
    for (std::uint32_t n = 0; n < nodes; ++n) {
        dist[n].store(n + 1);
        q.insert(n + 1, n); // exactly at the recorded distance: not stale
    }
    std::uint32_t count = 0;
    std::uint64_t key;
    std::uint32_t node;
    while (q.try_delete_min(key, node)) {
        EXPECT_EQ(key, std::uint64_t{node} + 1);
        ++count;
    }
    EXPECT_EQ(count, nodes) << "lazy deletion dropped non-expired items";
}

TEST_F(LazyDeletionTest, MixedExpiredAndFresh) {
    lazy_queue q{4, stale_distance{dist.get()}};
    // Two entries per node; the larger one expires when the smaller is
    // recorded.
    for (std::uint32_t n = 0; n < nodes; ++n) {
        q.insert(2 * (n + 1), n);
        dist[n].store(n + 1);
        q.insert(n + 1, n);
    }
    std::vector<int> per_node(nodes, 0);
    std::uint64_t key;
    std::uint32_t node;
    while (q.try_delete_min(key, node)) {
        if (key == std::uint64_t{node} + 1)
            ++per_node[node];
        // Stale pops (key == 2(n+1)) are allowed: lazy deletion is best
        // effort; the SSSP driver re-checks on pop.
    }
    for (std::uint32_t n = 0; n < nodes; ++n)
        EXPECT_EQ(per_node[n], 1) << "fresh entry for node " << n
                                  << " lost or duplicated";
}

TEST(LazyDefault, NoLazyNeverExpires) {
    no_lazy policy;
    item<std::uint32_t, std::uint64_t> it;
    it.publish(5, 6);
    EXPECT_FALSE(policy(std::uint32_t{5}, &it));
}

} // namespace
} // namespace klsm
