// The `quality` workload registrant: delete-min rank error vs an exact
// mirror, with the rho bound check (Lemma 2 and the buffered/NUMA
// extensions).

#include <memory>

#include "bench_common.hpp"
#include "harness/quality.hpp"
#include "stats/latency_report.hpp"

namespace klsm::bench {
namespace {

struct quality_config {
    std::uint64_t ops_per_thread = 20000;
};

int run(const quality_config &w, const core_config &cfg,
        klsm::json_reporter &json) {
    klsm::table_reporter report({"structure", "pin", "threads", "deletes",
                                 "mean_rank", "max_rank", "bound"},
                                cfg.csv, table_stream(cfg));
    int status = 0;
    for (const auto &pin : cfg.pins) {
        const auto cpus = pin_order(pin);
        for (const auto threads_i : cfg.threads_list) {
            const auto threads = static_cast<unsigned>(threads_i);
            for (const auto &name : cfg.structures) {
                const bool ok = with_structure<bench_key, bench_val>(
                    name, threads, build_k(cfg, name), cfg,
                    [&](auto &q) {
                        with_adaptation(q, cfg, name, threads, [&](
                                            auto adaptor) {
                        klsm::quality_params params;
                        params.threads = threads;
                        params.prefill = cfg.prefill;
                        params.ops_per_thread = w.ops_per_thread;
                        params.seed = cfg.seed;
                        params.pin_cpus = cpus;
                        klsm::stats::latency_recorder_set recs{
                            threads, cfg.latency_sample};
                        params.latency = &recs;
                        if constexpr (is_adaptor_v<decltype(adaptor)>) {
                            params.on_adapt_tick = [adaptor] {
                                adaptor->tick();
                            };
                            params.adapt_tick_s =
                                cfg.adapt_interval_ms / 1000.0;
                        }
                        record_sampling sampling{cfg, threads,
                                                 /*duration_hint_s=*/0};
                        sampling.wire(q, adaptor);
                        params.progress = sampling.progress();
                        // Quality-only probes: the sampled online rank
                        // accumulator makes rank error observable *while*
                        // the run (and any k controller) moves.
                        klsm::online_rank_stats online_rank;
                        if (sampling.enabled()) {
                            params.online_rank = &online_rank;
                            sampling.sampler().add_counter(
                                "rank_samples", [&online_rank] {
                                    return static_cast<double>(
                                        online_rank.samples.load(
                                            std::memory_order_relaxed));
                                });
                            sampling.sampler().add_gauge(
                                "rank_mean", [&online_rank] {
                                    return online_rank.mean();
                                });
                            sampling.sampler().add_gauge(
                                "rank_max", [&online_rank] {
                                    return static_cast<double>(
                                        online_rank.rank_max.load(
                                            std::memory_order_relaxed));
                                });
                        }
                        KLSM_TRACE_SPAN(rec_span,
                                        klsm::trace::kind::bench_record);
                        rec_span.arg(
                            klsm::trace::clamp16(g_record_index++));
                        sampling.start();
                        const auto res = klsm::measure_rank_error(q, params);
                        // Lemma 2: the k-LSM guarantees at most T*k
                        // smaller keys are skipped.  numa_klsm's
                        // composed bound nodes*(T*k + k) is structural
                        // only with one shard (see numa_klsm.hpp): on a
                        // multi-node machine local-first deletes trade
                        // it for locality, so there it is reported and
                        // checked advisorily, without failing the run.
                        // The relaxed comparators offer no bound at all.
                        // Adaptive runs check against the *maximum* k
                        // the controller ever set — correct for every
                        // delete that completed under that k, advisory
                        // for the run as a whole (ops in flight across
                        // a k change straddle two bounds), mirroring
                        // the rho_hard split.
                        const std::uint32_t numa_nodes =
                            klsm::topo::topology::system().num_nodes();
                        const bool has_rho =
                            name == "klsm" || name == "numa_klsm";
                        std::uint64_t k_bound = cfg.k;
                        bool adaptive_run = false;
                        if constexpr (is_adaptor_v<decltype(adaptor)>) {
                            k_bound = adaptor->max_k_seen();
                            adaptive_run = true;
                        }
                        const bool hard =
                            !adaptive_run &&
                            (name == "klsm" ||
                             (name == "numa_klsm" && numa_nodes == 1));
                        // Buffered handles hide up to buffer_total items
                        // per worker; the extended rho (quality.hpp)
                        // charges T * max_buffer_depth_seen() on top of
                        // Lemma 2's relaxation term.
                        std::uint64_t buffer_total = 0;
                        if constexpr (klsm::dynamic_buffering<
                                          std::remove_reference_t<
                                              decltype(q)>>)
                            buffer_total = q.max_buffer_depth_seen();
                        const std::uint64_t rho =
                            name == "numa_klsm"
                                ? klsm::numa_rank_error_bound(
                                      numa_nodes, threads, k_bound)
                                : klsm::rank_error_bound(threads, k_bound,
                                                         buffer_total);
                        std::string bound_cell = "none";
                        if (has_rho)
                            bound_cell = "rho=" + std::to_string(rho) +
                                         (hard ? "" : " (advisory)");
                        report.row(name, pin, threads, res.deletes,
                                   res.mean_rank(), res.rank_max,
                                   bound_cell);
                        auto &rec = json.add_record();
                        rec.set("workload", "quality");
                        rec.set("structure", name);
                        rec.set("pin", pin);
                        rec.set("threads", threads);
                        rec.set("deletes", res.deletes);
                        rec.set("mean_rank", res.mean_rank());
                        rec.set("max_rank", res.rank_max);
                        rec.set("pin_failures", res.pin_failures);
                        if (recs.enabled())
                            rec.set_raw("latency",
                                        klsm::stats::latency_json(recs));
                        sampling.finish(rec,
                                        record_label(name, pin, threads));
                        if constexpr (is_adaptor_v<decltype(adaptor)>)
                            rec.set_raw("adaptation", adaptor->json());
                        attach_memory(rec, q, cfg);
                        if (has_rho) {
                            rec.set("rho", rho);
                            rec.set("rho_hard", hard);
                            rec.set("buffer_total", buffer_total);
                            if (res.rank_max > rho) {
                                std::cerr
                                    << (hard ? "BOUND VIOLATION: "
                                             : "advisory bound "
                                               "exceeded: ")
                                    << name << " k=" << k_bound
                                    << " max rank " << res.rank_max
                                    << " > " << rho << "\n";
                                if (hard)
                                    status = 1;
                            }
                        }
                        });
                    });
                if (!ok)
                    return 2;
            }
        }
    }
    return status;
}

} // namespace

workload_entry quality_workload() {
    auto w = std::make_shared<quality_config>();
    workload_entry e;
    e.name = "quality";
    e.summary = "delete-min rank error vs an exact mirror, rho-checked";
    e.register_flags = [](cli_parser &cli) {
        cli.add_flag("ops", "20000", "operations per thread");
    };
    e.configure = [w](const cli_parser &cli, const core_config &core) {
        w->ops_per_thread =
            core.smoke ? 2000
                       : static_cast<std::uint64_t>(cli.get_int("ops"));
        return true;
    };
    e.annotate_meta = [w](const core_config &core,
                          klsm::json_record &meta) {
        meta.set("prefill", core.prefill);
        meta.set("ops_per_thread", w->ops_per_thread);
    };
    e.run = [w](const core_config &core, klsm::json_reporter &json) {
        return run(*w, core, json);
    };
    return e;
}

} // namespace klsm::bench
