// The `bnb` workload registrant: best-first 0/1-knapsack
// branch-and-bound (src/workloads/bnb.hpp).  The scalar outputs are
// the expanded-node count and the time until the incumbent reaches
// the DP optimum — both grow with relaxation, so they price queue
// ordering quality in end-to-end terms.  A run whose best value
// disagrees with the DP reference exits nonzero.

#include <memory>
#include <sstream>
#include <stdexcept>

#include "bench_common.hpp"
#include "stats/latency_report.hpp"
#include "workloads/bnb.hpp"

namespace klsm::bench {
namespace {

struct bnb_config {
    std::uint32_t items = 34;
    std::uint32_t seed_depth = 13;
};

std::string bnb_json(const klsm::workloads::knapsack_instance &ks,
                     const klsm::workloads::bnb_result &res) {
    std::ostringstream out;
    out << "{\"items\":" << ks.items()
        << ",\"capacity\":" << ks.capacity
        << ",\"optimum\":" << ks.optimum
        << ",\"best\":" << res.best
        << ",\"match\":" << (res.best == ks.optimum ? "true" : "false")
        << ",\"expanded\":" << res.expanded
        << ",\"wasted_expansions\":" << res.wasted_expansions
        << ",\"pruned_pops\":" << res.pruned_pops
        << ",\"pushed\":" << res.pushed
        << ",\"failed_pops\":" << res.failed_pops
        << ",\"time_to_optimum_s\":" << res.time_to_optimum_s << "}";
    return out.str();
}

int run(const bnb_config &w, const core_config &cfg,
        klsm::json_reporter &json) {
    // One instance per invocation: every (structure, pin, threads)
    // point searches the same deterministic tree, so expanded-node
    // counts are comparable across the sweep.
    const auto ks = klsm::workloads::make_knapsack(w.items, cfg.seed);
    klsm::table_reporter report({"structure", "pin", "threads",
                                 "expanded", "wasted", "t_opt_ms",
                                 "time_s", "match"},
                                cfg.csv, table_stream(cfg));
    int status = 0;
    for (const auto &pin : cfg.pins) {
        const auto cpus = pin_order(pin);
        for (const auto threads_i : cfg.threads_list) {
            const auto threads = static_cast<unsigned>(threads_i);
            for (const auto &name : cfg.structures) {
                const bool ok = with_structure<std::uint64_t,
                                               std::uint64_t>(
                    name, threads, build_k(cfg, name), cfg,
                    [&](auto &q) {
                        with_adaptation(q, cfg, name, threads, [&](
                                            auto adaptor) {
                        klsm::workloads::bnb_params params;
                        params.threads = threads;
                        params.seed_frontier_depth = w.seed_depth;
                        params.pin_cpus = cpus;
                        klsm::stats::latency_recorder_set recs{
                            threads, cfg.latency_sample};
                        params.latency = &recs;
                        if constexpr (is_adaptor_v<decltype(adaptor)>) {
                            params.on_adapt_tick = [adaptor] {
                                adaptor->tick();
                            };
                            params.adapt_tick_s =
                                cfg.adapt_interval_ms / 1000.0;
                        }
                        record_sampling sampling{cfg, threads,
                                                 /*duration_hint_s=*/0};
                        sampling.wire(q, adaptor);
                        params.progress = sampling.progress();
                        KLSM_TRACE_SPAN(rec_span,
                                        klsm::trace::kind::bench_record);
                        rec_span.arg(
                            klsm::trace::clamp16(g_record_index++));
                        sampling.start();
                        const auto res =
                            klsm::workloads::run_bnb(q, ks, params);
                        const bool match = res.best == ks.optimum;
                        report.row(name, pin, threads, res.expanded,
                                   res.wasted_expansions,
                                   res.time_to_optimum_s * 1000.0,
                                   res.elapsed_s,
                                   match ? "ok" : "FAIL");
                        auto &rec = json.add_record();
                        rec.set("workload", "bnb");
                        rec.set("structure", name);
                        rec.set("pin", pin);
                        rec.set("threads", threads);
                        rec.set("expanded", res.expanded);
                        rec.set("pin_failures", res.pin_failures);
                        rec.set("elapsed_s", res.elapsed_s);
                        rec.set("time_to_optimum_s",
                                res.time_to_optimum_s);
                        rec.set("ops_per_sec", res.ops_per_sec());
                        rec.set_raw("bnb", bnb_json(ks, res));
                        if (recs.enabled())
                            rec.set_raw("latency",
                                        klsm::stats::latency_json(recs));
                        sampling.finish(rec,
                                        record_label(name, pin, threads));
                        if constexpr (is_adaptor_v<decltype(adaptor)>)
                            rec.set_raw("adaptation", adaptor->json());
                        attach_memory(rec, q, cfg);
                        if (!match) {
                            std::cerr << "BNB MISMATCH: " << name
                                      << " with " << threads
                                      << " threads found " << res.best
                                      << ", DP optimum is " << ks.optimum
                                      << "\n";
                            status = 1;
                        }
                        });
                    });
                if (!ok)
                    return 2;
            }
        }
    }
    return status;
}

} // namespace

workload_entry bnb_workload() {
    auto w = std::make_shared<bnb_config>();
    workload_entry e;
    e.name = "bnb";
    e.summary = "best-first 0/1-knapsack branch-and-bound to optimality";
    e.register_flags = [](cli_parser &cli) {
        cli.add_flag("bnb-items", "34",
                     "knapsack items in the generated instance "
                     "(uncorrelated weights and values)");
        cli.add_flag("bnb-seed-depth", "13",
                     "pre-enumerate the tree to this depth and seed "
                     "the queue with the whole frontier (~2^depth "
                     "nodes); keep it above log2(k) so pops exercise "
                     "the relaxed shared ordering");
    };
    e.configure = [w](const cli_parser &cli, const core_config &core) {
        const auto items = cli.get_int("bnb-items");
        if (items < 4 || items > 2000) {
            std::cerr << "--bnb-items " << items
                      << " must be in [4, 2000]\n";
            return false;
        }
        const auto depth = cli.get_int("bnb-seed-depth");
        if (depth < 0 || depth > 20) {
            std::cerr << "--bnb-seed-depth " << depth
                      << " must be in [0, 20]\n";
            return false;
        }
        w->items = static_cast<std::uint32_t>(items);
        w->seed_depth = static_cast<std::uint32_t>(depth);
        if (core.smoke)
            w->items = std::min<std::uint32_t>(w->items, 30);
        return true;
    };
    e.annotate_meta = [w](const core_config &core,
                          klsm::json_record &meta) {
        meta.set("bnb_items", w->items);
        meta.set("bnb_seed_depth", w->seed_depth);
        (void)core;
    };
    e.run = [w](const core_config &core, klsm::json_reporter &json) {
        return run(*w, core, json);
    };
    return e;
}

} // namespace klsm::bench
