// Definitions for the shared bench layer: trace-track globals, the
// core CLI group, and the built-in workload registry.

#include "bench_common.hpp"

#include <stdexcept>

#include "util/thread_id.hpp"

namespace klsm::bench {

std::vector<klsm::trace::counter_series> g_counter_tracks;
std::uint32_t g_record_index = 0;

std::optional<double> parse_interval_ms(const std::string &text) {
    if (text.empty())
        return 0.0;
    std::string num = text;
    double scale = 1.0;
    const auto strip = [&num](const char *suffix) {
        const std::size_t n = std::char_traits<char>::length(suffix);
        if (num.size() > n &&
            num.compare(num.size() - n, n, suffix) == 0) {
            num.resize(num.size() - n);
            return true;
        }
        return false;
    };
    if (strip("ms"))
        scale = 1.0;
    else if (strip("us"))
        scale = 1e-3;
    else if (strip("s"))
        scale = 1e3;
    try {
        std::size_t pos = 0;
        const double v = std::stod(num, &pos);
        if (pos != num.size() || !(v >= 0))
            return std::nullopt;
        return v * scale;
    } catch (const std::exception &) {
        return std::nullopt;
    }
}

std::vector<std::uint32_t> pin_order(const std::string &policy) {
    const auto order =
        klsm::topo::cpu_order(klsm::topo::topology::system(), policy);
    return order ? *order : std::vector<std::uint32_t>{};
}

std::string record_label(const std::string &name, const std::string &pin,
                         unsigned threads) {
    return name + "/" + pin + "/t" + std::to_string(threads);
}

void register_core_flags(cli_parser &cli,
                         const workload_registry &registry) {
    cli.begin_group("core");
    cli.add_flag("workload", "throughput",
                 "workload(s), comma-separable: " +
                     registry.names_joined());
    cli.add_flag("benchmark", "",
                 "alias for --workload (overrides it when set)");
    cli.add_flag("structure", "klsm",
                 "comma-separated: klsm,dlsm,multiqueue,linden,"
                 "spraylist,heap,centralized,hybrid,numa_klsm");
    cli.add_flag("pin", "none",
                 "comma-separated pinning policies: none,compact,"
                 "scatter,numa_fill");
    cli.add_flag("threads", "4", "comma-separated thread counts");
    cli.add_flag("k", "256", "k-LSM relaxation parameter");
    cli.add_flag("mq-stickiness", "8",
                 "multiqueue: handle queue accesses between resamples "
                 "(1 = classic two-choice resampling every access)");
    cli.add_flag("mq-buffer", "16",
                 "multiqueue: per-handle insertion/deletion buffer "
                 "capacity (0 = unbuffered handles)");
    cli.add_flag("insert-buffer", "0",
                 "klsm: per-thread handle insert-buffer depth; staged "
                 "inserts flush into the DistLSM as one pre-sorted "
                 "block (0 = off, the paper's immediate visibility)");
    cli.add_flag("peek-cache", "0",
                 "klsm: per-thread delete-side peek-cache depth; "
                 "delete-min refills in bursts of this many pops "
                 "(0 = off)");
    cli.add_flag("prefill", "100000", "keys inserted before timing");
    cli.add_flag("seed", "1", "base RNG seed");
    cli.add_flag("latency-sample", "0",
                 "per-op latency sampling stride: 0 = off, 1 = every "
                 "op, N = every Nth op (--smoke raises 0 to 4)");
    cli.add_bool_flag("adaptive", false,
                      "adapt k online from observed contention "
                      "(klsm/numa_klsm; others run fixed)");
    cli.add_flag("k-min", "16",
                 "adaptive: lower bound on k (the walk starts at --k "
                 "clamped into [k-min, k-max])");
    cli.add_flag("k-max", "4096", "adaptive: upper bound on k");
    cli.add_flag("rank-budget", "0",
                 "adaptive: keep rho = T*k + k within this budget "
                 "(0 = unconstrained)");
    cli.add_flag("adapt-interval-ms", "5",
                 "adaptive: controller tick period in milliseconds");
    cli.add_flag("numa-alloc", "none",
                 "pool page placement for the k-LSM family: none | "
                 "bind (mbind each shard's pools to its node) | "
                 "firsttouch (pre-fault on the allocating thread)");
    cli.add_bool_flag("alloc-stats", false,
                      "emit a `memory` allocation-telemetry object per "
                      "record (chunks/bytes/reuse per pool, resident-"
                      "node histogram where move_pages is queryable)");
    cli.add_flag("reclaim", "auto",
                 "pool reclamation tier for the k-LSM family: auto "
                 "(full for churn, none otherwise) | none | freelist "
                 "(cross-thread recycling) | shrink (return cold "
                 "chunks to the OS) | full (both)");
    cli.add_flag("reclaim-period", "512",
                 "reclaim: allocations between pool maintenance steps");
    cli.add_flag("reclaim-grace", "2",
                 "reclaim: maintenance inspections a chunk must stay "
                 "cold before its pages are released");
    cli.add_bool_flag("huge-pages", false,
                      "back pool chunks with explicit huge pages "
                      "(MAP_HUGETLB), falling back to transparent-huge-"
                      "page advice, then to normal pages");
    cli.add_bool_flag("trace", false,
                      "arm the runtime tracer (src/trace/): per-thread "
                      "event rings drained at exit to --trace-out as "
                      "Chrome-trace JSON (chrome://tracing / Perfetto)");
    cli.add_flag("trace-out", "trace.json",
                 "where --trace writes the Chrome-trace JSON");
    cli.add_flag("trace-ring", "65536",
                 "trace: per-thread ring capacity in events (rounded "
                 "up to a power of two; on overflow the oldest events "
                 "are overwritten and counted as dropped)");
    cli.add_flag("metrics-interval", "",
                 "in-run metrics sampling period, e.g. 50ms, 0.5s "
                 "(bare numbers are milliseconds; empty or 0 = off): "
                 "each record gains a `timeseries` block, and traces "
                 "gain counter tracks");
    cli.add_bool_flag("smoke", false,
                      "tiny parameters, all checks on: the CI smoke mode");
    cli.add_flag("json-out", "",
                 "write the JSON report here ('-' for stdout)");
    cli.add_bool_flag("csv", false, "emit CSV instead of a table");
}

bool parse_core_config(const cli_parser &cli,
                       const std::vector<const workload_entry *> &selected,
                       core_config &cfg) {
    cfg.structures = cli.get_list("structure");
    cfg.pins = cli.get_list("pin");
    cfg.threads_list = cli.get_int_list("threads");
    cfg.k = static_cast<std::size_t>(cli.get_int("k"));
    cfg.mq_stickiness =
        static_cast<std::size_t>(cli.get_uint64("mq-stickiness"));
    cfg.mq_buffer = static_cast<std::size_t>(cli.get_uint64("mq-buffer"));
    cfg.insert_buffer =
        static_cast<std::size_t>(cli.get_uint64("insert-buffer"));
    cfg.peek_cache =
        static_cast<std::size_t>(cli.get_uint64("peek-cache"));
    if (cfg.mq_stickiness == 0) {
        std::cerr << "--mq-stickiness must be positive\n";
        return false;
    }
    cfg.prefill = static_cast<std::size_t>(cli.get_int("prefill"));
    cfg.seed = cli.get_uint64("seed");
    cfg.latency_sample = cli.get_uint64("latency-sample");
    cfg.adaptive = cli.get_bool("adaptive");
    cfg.k_min = static_cast<std::size_t>(cli.get_uint64("k-min"));
    cfg.k_max = static_cast<std::size_t>(cli.get_uint64("k-max"));
    cfg.rank_budget = cli.get_uint64("rank-budget");
    cfg.adapt_interval_ms = cli.get_double("adapt-interval-ms");
    const auto numa_alloc =
        klsm::mm::parse_numa_alloc_policy(cli.get("numa-alloc"));
    if (!numa_alloc) {
        std::cerr << "unknown --numa-alloc policy: "
                  << cli.get("numa-alloc")
                  << " (expected none, bind, or firsttouch)\n";
        return false;
    }
    cfg.numa_alloc = *numa_alloc;
    cfg.alloc_stats = cli.get_bool("alloc-stats");
    if (cli.get("reclaim") == "auto") {
        // Reclamation soaks (churn) exercise the full tier by default;
        // everywhere else the tier defaults off so perf baselines keep
        // their exact pre-reclaim allocation behavior.  The workloads
        // themselves declare which side they are on (reclaim_soak).
        const bool all_soak =
            !selected.empty() &&
            std::all_of(selected.begin(), selected.end(),
                        [](const workload_entry *e) {
                            return e->reclaim_soak;
                        });
        cfg.reclaim.policy = all_soak ? klsm::mm::reclaim_policy::full
                                      : klsm::mm::reclaim_policy::none;
    } else {
        klsm::mm::reclaim_policy rp;
        if (!klsm::mm::reclaim::parse_reclaim_policy(
                cli.get("reclaim").c_str(), rp)) {
            std::cerr << "unknown --reclaim policy: " << cli.get("reclaim")
                      << " (expected auto, none, freelist, shrink, or "
                         "full)\n";
            return false;
        }
        cfg.reclaim.policy = rp;
    }
    cfg.reclaim.maintenance_period =
        static_cast<std::uint32_t>(cli.get_uint64("reclaim-period"));
    cfg.reclaim.grace_inspections =
        static_cast<std::uint32_t>(cli.get_uint64("reclaim-grace"));
    if (cfg.reclaim.maintenance_period == 0) {
        std::cerr << "--reclaim-period must be positive\n";
        return false;
    }
    cfg.huge_pages = cli.get_bool("huge-pages");
    cfg.smoke = cli.get_bool("smoke");
    cfg.csv = cli.get_bool("csv");
    cfg.json_to_stdout = cli.get("json-out") == "-";
    cfg.trace = cli.get_bool("trace");
    cfg.trace_out = cli.get("trace-out");
    cfg.trace_ring =
        static_cast<std::size_t>(cli.get_uint64("trace-ring"));
    if (cfg.trace && cfg.trace_out.empty()) {
        std::cerr << "--trace-out must name a file when --trace is on\n";
        return false;
    }
    if (cfg.trace_ring == 0) {
        std::cerr << "--trace-ring must be positive\n";
        return false;
    }
    const auto metrics_ms =
        parse_interval_ms(cli.get("metrics-interval"));
    if (!metrics_ms) {
        std::cerr << "--metrics-interval: cannot parse '"
                  << cli.get("metrics-interval")
                  << "' (expected e.g. 50ms, 0.5s, or a bare "
                     "millisecond count)\n";
        return false;
    }
    cfg.metrics_interval_ms = *metrics_ms;

    if (cfg.adaptive) {
        if (cfg.k_min < 1 || cfg.k_min > cfg.k_max) {
            std::cerr << "--k-min " << cfg.k_min << " must be in [1, "
                         "--k-max] (" << cfg.k_max << ")\n";
            return false;
        }
        if (cfg.adapt_interval_ms <= 0) {
            std::cerr << "--adapt-interval-ms must be positive\n";
            return false;
        }
    }
    for (const auto &pin : cfg.pins) {
        if (!klsm::topo::parse_pin_policy(pin)) {
            std::cerr << "unknown pin policy: " << pin
                      << " (expected none, compact, scatter, or "
                         "numa_fill)\n";
            return false;
        }
    }
    for (const auto t : cfg.threads_list) {
        if (t < 1) {
            std::cerr << "--threads: " << t << " must be at least 1\n";
            return false;
        }
        try {
            // Same check the harnesses apply, surfaced as a CLI error
            // instead of an exception mid-benchmark.  Clamp before the
            // narrowing cast: a value above UINT32_MAX must reach the
            // check as "too large", not wrap to a small count.
            klsm::check_thread_capacity(static_cast<unsigned>(
                std::min<std::int64_t>(t, 0xffffffffLL)));
        } catch (const std::invalid_argument &e) {
            std::cerr << "--threads: " << e.what() << "\n";
            return false;
        }
    }

    if (cfg.smoke) {
        // Small enough for a sanitizer build on a one-core CI runner,
        // large enough to exercise merges, spills, and spying.  The
        // workload-owned fields shrink in each workload's configure().
        cfg.prefill = 2000;
        if (cfg.threads_list.size() > 2)
            cfg.threads_list.resize(2);
        for (auto &t : cfg.threads_list)
            t = std::min<std::int64_t>(t, 4);
        // Smoke doubles as the CI perf probe: latency capture is on by
        // default so every smoke JSON carries a `latency` object.
        if (cfg.latency_sample == 0)
            cfg.latency_sample = 4;
    }
    return true;
}

void annotate_core_meta(const core_config &cfg, json_reporter &json) {
    json.meta().set("k", cfg.k);
    json.meta().set("trace", cfg.trace);
    json.meta().set("metrics_interval_ms", cfg.metrics_interval_ms);
    json.meta().set("mq_stickiness", cfg.mq_stickiness);
    json.meta().set("mq_buffer", cfg.mq_buffer);
    json.meta().set("insert_buffer", cfg.insert_buffer);
    json.meta().set("peek_cache", cfg.peek_cache);
    json.meta().set("seed", cfg.seed);
    json.meta().set("smoke", cfg.smoke);
    json.meta().set("latency_sample", cfg.latency_sample);
    json.meta().set("adaptive", cfg.adaptive);
    json.meta().set("numa_alloc",
                    klsm::mm::numa_alloc_policy_name(cfg.numa_alloc));
    json.meta().set("alloc_stats", cfg.alloc_stats);
    json.meta().set("reclaim",
                    klsm::mm::reclaim::reclaim_policy_name(
                        cfg.reclaim.policy));
    json.meta().set("reclaim_period", cfg.reclaim.maintenance_period);
    json.meta().set("reclaim_grace", cfg.reclaim.grace_inspections);
    json.meta().set("huge_pages", cfg.huge_pages);
    if (cfg.adaptive) {
        json.meta().set("k_min", cfg.k_min);
        json.meta().set("k_max", cfg.k_max);
        json.meta().set("adapt_interval_ms", cfg.adapt_interval_ms);
        if (cfg.rank_budget)
            json.meta().set("rank_budget", cfg.rank_budget);
    }
    // The discovered machine layout: without it, cross-machine JSON
    // reports are not comparable (arXiv:1603.05047's central lesson).
    const auto &sys = klsm::topo::topology::system();
    json.meta().set("topology_source",
                    sys.from_sysfs() ? "sysfs" : "fallback");
    json.meta().set("cpus", sys.num_cpus());
    json.meta().set("packages", sys.num_packages());
    json.meta().set("numa_nodes", sys.num_nodes());
    json.meta().set("cores", sys.num_cores());
    json.meta().set("smt", sys.smt());
}

void register_builtin_workloads(workload_registry &registry) {
    registry.add(throughput_workload());
    registry.add(quality_workload());
    registry.add(sssp_workload());
    registry.add(service_workload());
    registry.add(churn_workload());
    registry.add(bnb_workload());
    registry.add(des_workload());
}

} // namespace klsm::bench
