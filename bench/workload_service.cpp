// The `service` workload registrant: open-loop arrival traffic
// (src/service/) with intended-start latency accounting and SLO
// verdicts.  A failed verdict is *reported* but only fails the run
// under --slo-enforce — CI judges verdicts through compare_bench
// against a baseline, where flips (pass -> fail) are what matter.

#include <memory>
#include <optional>
#include <stdexcept>

#include "bench_common.hpp"
#include "harness/throughput.hpp"
#include "service/arrival_schedule.hpp"
#include "service/open_loop.hpp"
#include "service/service_report.hpp"
#include "service/slo.hpp"
#include "stats/latency_report.hpp"

namespace klsm::bench {
namespace {

struct service_config {
    double duration_s = 0.1;
    unsigned insert_percent = 50;
    klsm::service::arrival_kind arrival =
        klsm::service::arrival_kind::poisson;
    double rate = 100000;
    double spike_frac = 0.1;
    double spike_mult = 8.0;
    double diurnal_amplitude = 0.75;
    double diurnal_periods = 1.0;
    std::uint64_t slo_p99_ns = 0; ///< 0 = no latency objective
    double slo_min_rate = 0.9;
    bool slo_enforce = false;
    bool find_sustainable = false;
};

int run(const service_config &w, const core_config &cfg,
        klsm::json_reporter &json) {
    klsm::table_reporter report(
        {"structure", "pin", "threads", "offered/s", "achieved/s",
         "intent_p99_us", "svc_p99_us", "late", "slo"},
        cfg.csv, table_stream(cfg));
    int status = 0;
    for (const auto &pin : cfg.pins) {
        const auto cpus = pin_order(pin);
        for (const auto threads_i : cfg.threads_list) {
            const auto threads = static_cast<unsigned>(threads_i);
            for (const auto &name : cfg.structures) {
                const bool ok = with_structure<bench_key, bench_val>(
                    name, threads, build_k(cfg, name), cfg,
                    [&](auto &q) {
                        klsm::prefill_queue(q, cfg.prefill, cfg.seed);
                        with_adaptation(q, cfg, name, threads, [&](
                                            auto adaptor) {
                        klsm::service::arrival_config acfg;
                        acfg.kind = w.arrival;
                        acfg.rate = w.rate;
                        acfg.duration_s = w.duration_s;
                        acfg.threads = threads;
                        acfg.seed = cfg.seed;
                        acfg.spike_fraction = w.spike_frac;
                        acfg.spike_multiplier = w.spike_mult;
                        acfg.diurnal_amplitude = w.diurnal_amplitude;
                        acfg.diurnal_periods = w.diurnal_periods;
                        const auto schedule =
                            klsm::service::make_arrival_schedule(acfg);
                        klsm::service::service_params params;
                        params.threads = threads;
                        params.insert_percent = w.insert_percent;
                        params.seed = cfg.seed;
                        params.pin_cpus = cpus;
                        klsm::stats::latency_recorder_set recs{
                            threads, cfg.latency_sample};
                        params.latency = &recs;
                        if constexpr (is_adaptor_v<decltype(adaptor)>) {
                            params.on_adapt_tick = [adaptor] {
                                adaptor->tick();
                            };
                            params.adapt_tick_s =
                                cfg.adapt_interval_ms / 1000.0;
                        }
                        record_sampling sampling{cfg, threads,
                                                 w.duration_s};
                        sampling.wire(q, adaptor);
                        params.progress = sampling.progress();
                        KLSM_TRACE_SPAN(rec_span,
                                        klsm::trace::kind::bench_record);
                        rec_span.arg(
                            klsm::trace::clamp16(g_record_index++));
                        sampling.start();
                        const auto res =
                            klsm::service::run_service(q, params,
                                                       schedule);
                        klsm::service::slo_config slo;
                        slo.p99_ns = w.slo_p99_ns;
                        slo.min_achieved_fraction = w.slo_min_rate;
                        const auto verdict = klsm::service::evaluate_slo(
                            slo, res,
                            klsm::service::offered_rate(res, acfg));
                        // --find-sustainable: short probe runs on the
                        // same (already warm) queue, without polluting
                        // the main record's latency capture.
                        std::optional<klsm::service::sustainable_result>
                            sustainable;
                        if (w.find_sustainable) {
                            auto probe_params = params;
                            probe_params.latency = nullptr;
                            // Probe tallies restart from zero each run,
                            // which would drag the cumulative `ops`
                            // counter backwards — keep the probes out
                            // of the sampled slots.
                            probe_params.progress = nullptr;
                            sustainable =
                                klsm::service::find_sustainable_rate(
                                    [&](double rate) {
                                        auto pcfg = acfg;
                                        pcfg.rate = rate;
                                        const auto psched = klsm::
                                            service::
                                                make_arrival_schedule(
                                                    pcfg);
                                        const auto pres =
                                            klsm::service::run_service(
                                                q, probe_params, psched);
                                        return klsm::service::
                                            evaluate_slo(
                                                slo, pres,
                                                klsm::service::
                                                    offered_rate(pres,
                                                                 pcfg))
                                                .pass;
                                    },
                                    w.rate);
                        }
                        std::uint64_t svc_p99 = 0;
                        for (unsigned op = 0; op < klsm::stats::op_kinds;
                             ++op) {
                            const auto h = res.completion.merged(
                                static_cast<klsm::stats::op_kind>(op));
                            if (h.count() > 0 &&
                                h.percentile(99) > svc_p99)
                                svc_p99 = h.percentile(99);
                        }
                        report.row(
                            name, pin, threads,
                            klsm::service::offered_rate(res, acfg),
                            res.achieved_rate(),
                            verdict.observed_p99_ns / 1000.0,
                            svc_p99 / 1000.0, res.late_ops,
                            verdict.pass ? "pass" : "FAIL");
                        auto &rec = json.add_record();
                        rec.set("workload", "service");
                        rec.set("structure", name);
                        rec.set("pin", pin);
                        rec.set("threads", threads);
                        rec.set("prefill", cfg.prefill);
                        rec.set("ops", res.completed_ops);
                        rec.set("inserts", res.inserts);
                        rec.set("deletes", res.deletes);
                        rec.set("failed_deletes", res.failed_deletes);
                        rec.set("pin_failures", res.pin_failures);
                        rec.set("elapsed_s", res.elapsed_s);
                        rec.set("ops_per_sec", res.achieved_rate());
                        if (recs.enabled())
                            rec.set_raw("latency",
                                        klsm::stats::latency_json(recs));
                        sampling.finish(rec,
                                        record_label(name, pin, threads));
                        rec.set_raw("service",
                                    klsm::service::service_json(
                                        res, acfg, params));
                        rec.set_raw(
                            "slo",
                            klsm::service::slo_json(
                                verdict, slo,
                                sustainable ? &*sustainable : nullptr));
                        if constexpr (is_adaptor_v<decltype(adaptor)>)
                            rec.set_raw("adaptation", adaptor->json());
                        attach_memory(rec, q, cfg);
                        if (!verdict.pass) {
                            KLSM_TRACE_EVENT(
                                klsm::trace::kind::slo_violation, 0,
                                verdict.observed_p99_ns / 1000);
                            std::cerr
                                << (w.slo_enforce ? "SLO FAIL: "
                                                  : "slo verdict: ")
                                << name << " pin=" << pin << " t="
                                << threads << " p99="
                                << verdict.observed_p99_ns << "ns"
                                << (verdict.latency_ok ? ""
                                                       : " (> threshold)")
                                << " achieved="
                                << static_cast<std::uint64_t>(
                                       verdict.achieved_rate)
                                << "/s"
                                << (verdict.rate_ok ? ""
                                                    : " (< floor)")
                                << "\n";
                            if (w.slo_enforce)
                                status = 1;
                        }
                        });
                    });
                if (!ok)
                    return 2;
            }
        }
    }
    return status;
}

} // namespace

workload_entry service_workload() {
    auto w = std::make_shared<service_config>();
    workload_entry e;
    e.name = "service";
    e.summary = "open-loop arrival traffic with SLO verdicts";
    e.register_flags = [](cli_parser &cli) {
        cli.add_flag("arrival", "poisson",
                     "arrival process: steady | poisson | spike | "
                     "diurnal");
        cli.add_flag("rate", "100000",
                     "offered arrival rate in total ops/s across all "
                     "threads");
        cli.add_flag("spike-frac", "0.1",
                     "fraction of the run the spike covers");
        cli.add_flag("spike-mult", "8",
                     "rate multiplier inside the spike window");
        cli.add_flag("diurnal-amplitude", "0.75",
                     "sinusoid amplitude as a fraction of the base "
                     "rate, in [0, 1]");
        cli.add_flag("diurnal-periods", "1",
                     "full sinusoid cycles over the run");
        cli.add_flag("slo-p99-us", "0",
                     "intended-start p99 objective in microseconds "
                     "(0 = no latency objective)");
        cli.add_flag("slo-min-rate", "0.9",
                     "fail the SLO when achieved/offered rate falls "
                     "below this fraction, in (0, 1]");
        cli.add_bool_flag("slo-enforce", false,
                          "exit nonzero when any record's SLO verdict "
                          "fails (default: report only)");
        cli.add_bool_flag("find-sustainable", false,
                          "binary-search the highest offered rate that "
                          "still passes the SLO, from --rate");
    };
    e.configure = [w](const cli_parser &cli, const core_config &core) {
        w->duration_s =
            core.smoke ? 0.05 : cli.get_double("duration");
        const auto pct = cli.get_int("insert-pct");
        if (pct < 0 || pct > 100) {
            std::cerr << "--insert-pct " << pct
                      << " must be in [0, 100]\n";
            return false;
        }
        w->insert_percent = static_cast<unsigned>(pct);
        const auto arrival =
            klsm::service::parse_arrival(cli.get("arrival"));
        if (!arrival) {
            std::cerr << "unknown --arrival process: "
                      << cli.get("arrival")
                      << " (expected steady, poisson, spike, or "
                         "diurnal)\n";
            return false;
        }
        w->arrival = *arrival;
        w->rate = cli.get_double("rate");
        w->spike_frac = cli.get_double("spike-frac");
        w->spike_mult = cli.get_double("spike-mult");
        w->diurnal_amplitude = cli.get_double("diurnal-amplitude");
        w->diurnal_periods = cli.get_double("diurnal-periods");
        w->slo_p99_ns = static_cast<std::uint64_t>(
            cli.get_double("slo-p99-us") * 1000.0);
        w->slo_min_rate = cli.get_double("slo-min-rate");
        w->slo_enforce = cli.get_bool("slo-enforce");
        w->find_sustainable = cli.get_bool("find-sustainable");
        if (!(w->slo_min_rate > 0) || w->slo_min_rate > 1) {
            std::cerr << "--slo-min-rate " << w->slo_min_rate
                      << " must be in (0, 1]\n";
            return false;
        }
        // Validate the arrival process once up front (post --smoke
        // shrinking, so the cap sees the real duration) instead of
        // throwing mid-benchmark.  --find-sustainable doubles the rate
        // up to 2^4 times, so its ceiling must clear the cap too.
        for (const auto t : core.threads_list) {
            klsm::service::arrival_config acfg;
            acfg.kind = w->arrival;
            acfg.rate =
                w->find_sustainable ? w->rate * 16 : w->rate;
            acfg.duration_s = w->duration_s;
            acfg.threads = static_cast<unsigned>(t);
            acfg.spike_fraction = w->spike_frac;
            acfg.spike_multiplier = w->spike_mult;
            acfg.diurnal_amplitude = w->diurnal_amplitude;
            acfg.diurnal_periods = w->diurnal_periods;
            try {
                klsm::service::validate_arrival_config(acfg);
            } catch (const std::invalid_argument &ex) {
                std::cerr << "service workload: " << ex.what() << "\n";
                return false;
            }
        }
        return true;
    };
    e.annotate_meta = [w](const core_config &core,
                          klsm::json_record &meta) {
        meta.set("arrival", klsm::service::arrival_name(w->arrival));
        meta.set("rate", w->rate);
        meta.set("duration_s", w->duration_s);
        meta.set("insert_percent", w->insert_percent);
        meta.set("prefill", core.prefill);
        meta.set("slo_p99_ns", w->slo_p99_ns);
        meta.set("slo_min_achieved_fraction", w->slo_min_rate);
        meta.set("find_sustainable", w->find_sustainable);
    };
    e.run = [w](const core_config &core, klsm::json_reporter &json) {
        return run(*w, core, json);
    };
    return e;
}

} // namespace klsm::bench
