// Relaxation quality (Lemma 2 / Section 5): observed delete-min rank
// errors versus the rho = T*k worst-case guarantee, for the k-LSM and
// the relaxed comparators (which provide no worst-case bound — the
// paper's key qualitative contrast with the SprayList and MultiQueue).
//
// Operations are serialized against an exact mirror (see
// harness/quality.hpp), so every measurement is exact.

#include <iostream>
#include <string>

#include "baselines/multiqueue.hpp"
#include "baselines/spraylist.hpp"
#include "harness/quality.hpp"
#include "harness/reporter.hpp"
#include "klsm/k_lsm.hpp"
#include "util/cli.hpp"

namespace {

using bench_key = std::uint32_t;
using bench_val = std::uint32_t;

void report_result(klsm::table_reporter &report, const std::string &name,
                   unsigned threads, const std::string &bound,
                   const klsm::quality_result &res) {
    report.row(name, threads, bound, res.deletes, res.mean_rank(),
               res.rank_max);
}

} // namespace

int main(int argc, char **argv) {
    klsm::cli_parser cli("Observed delete-min rank error vs rho = T*k");
    cli.add_flag("threads", "4", "worker threads");
    cli.add_flag("prefill", "10000", "initial keys");
    cli.add_flag("ops", "20000", "operations per thread");
    cli.add_flag("k-list", "0,4,256,4096", "k values for the k-LSM");
    cli.add_flag("csv", "false", "emit CSV instead of a table");
    cli.parse(argc, argv);

    const auto threads = static_cast<unsigned>(cli.get_int("threads"));
    klsm::quality_params params;
    params.threads = threads;
    params.prefill = static_cast<std::size_t>(cli.get_int("prefill"));
    params.ops_per_thread =
        static_cast<std::uint64_t>(cli.get_int("ops"));

    std::cout << "# Observed rank error (exact mirror, serialized ops); "
                 "rho = T*k is the k-LSM worst case\n";
    klsm::table_reporter report(
        {"queue", "threads", "worst_case", "deletes", "mean_rank",
         "max_rank"},
        cli.get_bool("csv"));

    for (const auto k : cli.get_int_list("k-list")) {
        klsm::k_lsm<bench_key, bench_val> q{static_cast<std::size_t>(k)};
        const auto res = klsm::measure_rank_error(q, params);
        const auto rho = klsm::rank_error_bound(
            threads, static_cast<std::uint64_t>(k));
        report_result(report, "klsm" + std::to_string(k), threads,
                      "rho=" + std::to_string(rho), res);
        if (res.rank_max > rho) {
            std::cerr << "BOUND VIOLATION: k-LSM k=" << k << " max rank "
                      << res.rank_max << " > " << rho << "\n";
            return 1;
        }
    }
    {
        klsm::spray_pq<bench_key, bench_val> q{threads};
        report_result(report, "spraylist", threads, "none (whp only)",
                      klsm::measure_rank_error(q, params));
    }
    {
        klsm::multiqueue<bench_key, bench_val> q{threads, 2};
        report_result(report, "multiq", threads, "none (expected only)",
                      klsm::measure_rank_error(q, params));
    }
    {
        klsm::dist_pq<bench_key, bench_val> q;
        report_result(report, "dlsm", threads, "none (local order only)",
                      klsm::measure_rank_error(q, params));
    }
    return 0;
}
