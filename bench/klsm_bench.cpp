// Unified benchmark driver: every structure x workload combination the
// figure benchmarks cover, behind one CLI, emitting one JSON report.
//
// CI runs `klsm_bench --smoke --structure <s>` for each structure; perf
// work sweeps full scenarios through the same entry point, e.g.
//   klsm_bench --workload throughput --structure klsm,linden,multiqueue
//              --threads 1,2,4,8 --prefill 1000000 --duration 10
//              --json-out report.json
//
// Workloads:
//   throughput — the paper's 50/50 insert/delete-min mix (Figure 3)
//   quality    — delete-min rank error vs an exact mirror; fails on a
//                rho = T*k bound violation for the k-LSM (Lemma 2)
//   sssp       — label-correcting parallel SSSP on an Erdős–Rényi graph,
//                verified against sequential Dijkstra (Figure 4)
//
// Exit status is nonzero on any correctness failure, so the smoke stage
// doubles as an end-to-end test.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/centralized_k.hpp"
#include "baselines/hybrid_k.hpp"
#include "baselines/linden.hpp"
#include "baselines/multiqueue.hpp"
#include "baselines/spin_heap.hpp"
#include "baselines/spraylist.hpp"
#include "graph/dijkstra.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/parallel_sssp.hpp"
#include "harness/quality.hpp"
#include "harness/reporter.hpp"
#include "harness/throughput.hpp"
#include "klsm/k_lsm.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using bench_key = std::uint32_t;
using bench_val = std::uint32_t;

struct bench_config {
    std::string workload;
    std::vector<std::string> structures;
    std::vector<std::int64_t> threads_list;
    std::size_t k = 256;
    std::size_t prefill = 100000;
    double duration_s = 0.1;
    std::uint64_t ops_per_thread = 20000;
    unsigned insert_percent = 50;
    std::uint32_t nodes = 1000;
    double edge_prob = 0.05;
    std::uint64_t seed = 1;
    bool smoke = false;
    bool csv = false;
    /// --json-out '-': the JSON report owns stdout, tables go to stderr.
    bool json_to_stdout = false;
};

/// Construct the structure named `name` for key/value types K, V and
/// invoke `fn(queue)`.  Returns false (after printing to stderr) for an
/// unknown name so the caller can exit with a usage error.
template <typename K, typename V, typename Fn>
bool with_structure(const std::string &name, unsigned threads,
                    std::size_t k, Fn &&fn) {
    if (name == "klsm") {
        klsm::k_lsm<K, V> q{k};
        fn(q);
    } else if (name == "dlsm") {
        klsm::dist_pq<K, V> q;
        fn(q);
    } else if (name == "multiqueue") {
        klsm::multiqueue<K, V> q{threads, 2};
        fn(q);
    } else if (name == "linden") {
        klsm::linden_pq<K, V> q{32};
        fn(q);
    } else if (name == "spraylist") {
        klsm::spray_pq<K, V> q{threads};
        fn(q);
    } else if (name == "heap") {
        klsm::spin_heap<K, V> q;
        fn(q);
    } else if (name == "centralized") {
        klsm::centralized_k_pq<K, V> q{k};
        fn(q);
    } else if (name == "hybrid") {
        klsm::hybrid_k_pq<K, V> q{k};
        fn(q);
    } else {
        std::cerr << "unknown structure: " << name
                  << " (expected klsm, dlsm, multiqueue, linden, "
                     "spraylist, heap, centralized, or hybrid)\n";
        return false;
    }
    return true;
}

int run_throughput_workload(const bench_config &cfg,
                            klsm::json_reporter &json) {
    klsm::table_reporter report({"structure", "threads", "prefill",
                                 "ops/s", "ops/thread/s", "failed_dels"},
                                cfg.csv,
                                cfg.json_to_stdout ? std::cerr : std::cout);
    for (const auto threads_i : cfg.threads_list) {
        const auto threads = static_cast<unsigned>(threads_i);
        for (const auto &name : cfg.structures) {
            const bool ok = with_structure<bench_key, bench_val>(
                name, threads, cfg.k, [&](auto &q) {
                    klsm::prefill_queue(q, cfg.prefill, cfg.seed);
                    klsm::throughput_params params;
                    params.prefill = cfg.prefill;
                    params.threads = threads;
                    params.duration_s = cfg.duration_s;
                    params.insert_percent = cfg.insert_percent;
                    params.seed = cfg.seed;
                    const auto res = klsm::run_throughput(q, params);
                    report.row(name, threads, cfg.prefill,
                               res.ops_per_sec(),
                               res.ops_per_thread_per_sec(threads),
                               res.failed_deletes);
                    auto &rec = json.add_record();
                    rec.set("structure", name);
                    rec.set("threads", threads);
                    rec.set("prefill", cfg.prefill);
                    rec.set("ops", res.total_ops);
                    rec.set("inserts", res.inserts);
                    rec.set("deletes", res.deletes);
                    rec.set("failed_deletes", res.failed_deletes);
                    rec.set("elapsed_s", res.elapsed_s);
                    rec.set("ops_per_sec", res.ops_per_sec());
                });
            if (!ok)
                return 2;
        }
    }
    return 0;
}

int run_quality_workload(const bench_config &cfg,
                         klsm::json_reporter &json) {
    klsm::table_reporter report({"structure", "threads", "deletes",
                                 "mean_rank", "max_rank", "bound"},
                                cfg.csv,
                                cfg.json_to_stdout ? std::cerr : std::cout);
    int status = 0;
    for (const auto threads_i : cfg.threads_list) {
        const auto threads = static_cast<unsigned>(threads_i);
        for (const auto &name : cfg.structures) {
            const bool ok = with_structure<bench_key, bench_val>(
                name, threads, cfg.k, [&](auto &q) {
                    klsm::quality_params params;
                    params.threads = threads;
                    params.prefill = cfg.prefill;
                    params.ops_per_thread = cfg.ops_per_thread;
                    params.seed = cfg.seed;
                    const auto res = klsm::measure_rank_error(q, params);
                    // Lemma 2: the k-LSM guarantees at most T*k smaller
                    // keys are skipped; the relaxed comparators offer no
                    // worst-case bound.
                    const bool bounded = name == "klsm";
                    const std::uint64_t rho =
                        klsm::rank_error_bound(threads, cfg.k);
                    report.row(name, threads, res.deletes,
                               res.mean_rank(), res.rank_max,
                               bounded ? "rho=" + std::to_string(rho)
                                       : std::string("none"));
                    auto &rec = json.add_record();
                    rec.set("structure", name);
                    rec.set("threads", threads);
                    rec.set("deletes", res.deletes);
                    rec.set("mean_rank", res.mean_rank());
                    rec.set("max_rank", res.rank_max);
                    if (bounded) {
                        rec.set("rho", rho);
                        if (res.rank_max > rho) {
                            std::cerr << "BOUND VIOLATION: klsm k="
                                      << cfg.k << " max rank "
                                      << res.rank_max << " > " << rho
                                      << "\n";
                            status = 1;
                        }
                    }
                });
            if (!ok)
                return 2;
        }
    }
    return status;
}

int run_sssp_workload(const bench_config &cfg, klsm::json_reporter &json) {
    klsm::erdos_renyi_params gp;
    gp.nodes = cfg.nodes;
    gp.edge_probability = cfg.edge_prob;
    gp.max_weight = 100000000;
    gp.seed = cfg.seed;
    const klsm::graph g = klsm::make_erdos_renyi(gp);
    const auto ref = klsm::dijkstra(g, 0);
    json.meta().set("nodes", g.num_nodes());
    json.meta().set("arcs", static_cast<std::uint64_t>(g.num_edges()));

    klsm::table_reporter report({"structure", "threads", "time_s",
                                 "expansions", "stale_pops",
                                 "mismatches"},
                                cfg.csv,
                                cfg.json_to_stdout ? std::cerr : std::cout);
    int status = 0;
    // Runs one (structure, threads) point on a caller-created state;
    // the k-LSM needs the state before queue construction to wire in
    // lazy deletion, the other structures don't care.
    auto run_one = [&](const std::string &name, unsigned threads,
                       klsm::sssp_state &state, auto &q) {
        klsm::wall_timer timer;
        const auto stats = klsm::parallel_sssp(q, g, 0, threads, state);
        const double seconds = timer.elapsed_s();
        std::uint64_t mismatches = 0;
        for (std::uint32_t u = 0; u < g.num_nodes(); ++u)
            mismatches += (state.dist(u) != ref.dist[u]);
        report.row(name, threads, seconds, stats.expansions,
                   stats.stale_pops, mismatches);
        auto &rec = json.add_record();
        rec.set("structure", name);
        rec.set("threads", threads);
        rec.set("time_s", seconds);
        rec.set("expansions", stats.expansions);
        rec.set("stale_pops", stats.stale_pops);
        rec.set("mismatches", mismatches);
        if (mismatches) {
            std::cerr << "SSSP MISMATCH: " << name << " with " << threads
                      << " threads disagrees with Dijkstra on "
                      << mismatches << " nodes\n";
            status = 1;
        }
    };
    for (const auto threads_i : cfg.threads_list) {
        const auto threads = static_cast<unsigned>(threads_i);
        for (const auto &name : cfg.structures) {
            if (name == "klsm") {
                // Paper Section 4.5: superseded (distance, node) entries
                // are dropped when the k-LSM rebuilds blocks.
                klsm::sssp_state state{g.num_nodes()};
                klsm::k_lsm<std::uint64_t, std::uint32_t,
                            klsm::sssp_lazy>
                    q{cfg.k, klsm::sssp_lazy{&state}};
                run_one(name, threads, state, q);
                continue;
            }
            klsm::sssp_state state{g.num_nodes()};
            const bool ok = with_structure<std::uint64_t, std::uint32_t>(
                name, threads, cfg.k,
                [&](auto &q) { run_one(name, threads, state, q); });
            if (!ok)
                return 2;
        }
    }
    return status;
}

} // namespace

int main(int argc, char **argv) {
    klsm::cli_parser cli(
        "Unified k-LSM benchmark driver: one CLI for every structure and "
        "workload, one JSON report per invocation");
    cli.add_flag("workload", "throughput",
                 "workload: throughput | quality | sssp");
    cli.add_flag("structure", "klsm",
                 "comma-separated: klsm,dlsm,multiqueue,linden,"
                 "spraylist,heap,centralized,hybrid");
    cli.add_flag("threads", "4", "comma-separated thread counts");
    cli.add_flag("k", "256", "k-LSM relaxation parameter");
    cli.add_flag("prefill", "100000", "keys inserted before timing");
    cli.add_flag("duration", "0.1", "seconds per throughput measurement");
    cli.add_flag("ops", "20000", "quality: operations per thread");
    cli.add_flag("insert-pct", "50", "throughput: percent inserts");
    cli.add_flag("nodes", "1000", "sssp: graph size");
    cli.add_flag("edge-prob", "0.05", "sssp: edge probability");
    cli.add_flag("seed", "1", "base RNG seed");
    cli.add_bool_flag("smoke", false,
                      "tiny parameters, all checks on: the CI smoke mode");
    cli.add_flag("json-out", "",
                 "write the JSON report here ('-' for stdout)");
    cli.add_bool_flag("csv", false, "emit CSV instead of a table");
    cli.parse(argc, argv);

    bench_config cfg;
    cfg.workload = cli.get("workload");
    cfg.structures = cli.get_list("structure");
    cfg.threads_list = cli.get_int_list("threads");
    cfg.k = static_cast<std::size_t>(cli.get_int("k"));
    cfg.prefill = static_cast<std::size_t>(cli.get_int("prefill"));
    cfg.duration_s = cli.get_double("duration");
    cfg.ops_per_thread = static_cast<std::uint64_t>(cli.get_int("ops"));
    cfg.insert_percent = static_cast<unsigned>(cli.get_int("insert-pct"));
    cfg.nodes = static_cast<std::uint32_t>(cli.get_int("nodes"));
    cfg.edge_prob = cli.get_double("edge-prob");
    cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    cfg.smoke = cli.get_bool("smoke");
    cfg.csv = cli.get_bool("csv");
    cfg.json_to_stdout = cli.get("json-out") == "-";

    if (cfg.smoke) {
        // Small enough for a sanitizer build on a one-core CI runner,
        // large enough to exercise merges, spills, and spying.
        cfg.prefill = 2000;
        cfg.duration_s = 0.05;
        cfg.ops_per_thread = 2000;
        cfg.nodes = 200;
        cfg.edge_prob = 0.1;
        if (cfg.threads_list.size() > 2)
            cfg.threads_list.resize(2);
        for (auto &t : cfg.threads_list)
            t = std::min<std::int64_t>(t, 4);
    }

    klsm::json_reporter json(cfg.workload);
    json.meta().set("k", cfg.k);
    json.meta().set("seed", cfg.seed);
    json.meta().set("smoke", cfg.smoke);

    int status;
    if (cfg.workload == "throughput") {
        json.meta().set("insert_percent", cfg.insert_percent);
        json.meta().set("duration_s", cfg.duration_s);
        status = run_throughput_workload(cfg, json);
    } else if (cfg.workload == "quality") {
        json.meta().set("prefill", cfg.prefill);
        json.meta().set("ops_per_thread", cfg.ops_per_thread);
        status = run_quality_workload(cfg, json);
    } else if (cfg.workload == "sssp") {
        status = run_sssp_workload(cfg, json);
    } else {
        std::cerr << "unknown workload: " << cfg.workload
                  << " (expected throughput, quality, or sssp)\n";
        return 2;
    }
    if (status == 2)
        return 2;

    const std::string json_out = cli.get("json-out");
    if (json_out == "-") {
        json.write(std::cout);
    } else if (!json_out.empty()) {
        std::ofstream out(json_out);
        if (!out) {
            std::cerr << "cannot open " << json_out << " for writing\n";
            return 2;
        }
        json.write(out);
    }
    return status;
}
