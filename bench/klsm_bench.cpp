// Unified benchmark driver: every structure x workload combination the
// figure benchmarks cover, behind one CLI, emitting one JSON report.
//
// CI runs `klsm_bench --smoke --structure <s>` for each structure; perf
// work sweeps full scenarios through the same entry point, e.g.
//   klsm_bench --workload throughput --structure klsm,linden,multiqueue
//              --threads 1,2,4,8 --prefill 1000000 --duration 10
//              --pin none,compact,scatter --json-out report.json
//
// Workloads:
//   throughput — the paper's 50/50 insert/delete-min mix (Figure 3)
//   quality    — delete-min rank error vs an exact mirror; fails on a
//                bound violation: rho = T*k for the k-LSM (Lemma 2),
//                nodes*(T*k + k) for the NUMA-sharded numa_klsm
//   sssp       — label-correcting parallel SSSP on an Erdős–Rényi graph,
//                verified against sequential Dijkstra (Figure 4)
//   service    — open-loop arrival traffic (src/service/): workers
//                follow precomputed arrival schedules (steady, poisson,
//                spike, diurnal), latency is measured from the intended
//                start so coordinated omission is visible, and every
//                record carries a `service` telemetry object plus an
//                `slo` verdict (p99 <= X at Y ops/s)
//
// --pin sweeps thread-placement policies (src/topo/pinning.hpp); the
// discovered machine topology is recorded in the JSON meta either way.
//
// Exit status is nonzero on any correctness failure, so the smoke stage
// doubles as an end-to-end test.

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "adapt/adaptive.hpp"
#include "baselines/centralized_k.hpp"
#include "baselines/hybrid_k.hpp"
#include "baselines/linden.hpp"
#include "baselines/multiqueue.hpp"
#include "baselines/spin_heap.hpp"
#include "baselines/spraylist.hpp"
#include "graph/dijkstra.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/parallel_sssp.hpp"
#include "harness/churn.hpp"
#include "harness/quality.hpp"
#include "harness/reporter.hpp"
#include "harness/throughput.hpp"
#include "klsm/k_lsm.hpp"
#include "klsm/numa_klsm.hpp"
#include "klsm/pq_concept.hpp"
#include "mm/alloc_stats.hpp"
#include "mm/placement.hpp"
#include "service/arrival_schedule.hpp"
#include "service/open_loop.hpp"
#include "service/service_report.hpp"
#include "service/slo.hpp"
#include "stats/latency_recorder.hpp"
#include "stats/latency_report.hpp"
#include "topo/pinning.hpp"
#include "topo/topology.hpp"
#include "trace/metrics_sampler.hpp"
#include "trace/progress.hpp"
#include "trace/trace_export.hpp"
#include "trace/tracer.hpp"
#include "util/cli.hpp"
#include "util/thread_id.hpp"
#include "util/timer.hpp"

namespace {

using bench_key = std::uint32_t;
using bench_val = std::uint32_t;

struct bench_config {
    std::string workload;
    std::vector<std::string> structures;
    std::vector<std::string> pins; ///< pinning policies to sweep
    std::vector<std::int64_t> threads_list;
    std::size_t k = 256;
    /// Engineered-MultiQueue tuning: queue accesses between handle
    /// resamples and per-handle insertion/deletion buffer capacity.
    std::size_t mq_stickiness = 8;
    std::size_t mq_buffer = 16;
    /// Buffered k-LSM handle knobs: per-thread insert-buffer depth and
    /// delete-side peek-cache depth (0 = off; the paper's unbuffered
    /// immediate-visibility behavior).
    std::size_t insert_buffer = 0;
    std::size_t peek_cache = 0;
    std::size_t prefill = 100000;
    double duration_s = 0.1;
    std::uint64_t ops_per_thread = 20000;
    unsigned insert_percent = 50;
    std::uint32_t nodes = 1000;
    double edge_prob = 0.05;
    std::uint64_t seed = 1;
    /// Per-op latency sampling stride: 0 = off, 1 = every op, N = every
    /// Nth op.  --smoke turns it on (stride 4) when left unset.
    std::uint64_t latency_sample = 0;
    /// Adaptive relaxation (src/adapt/): walk k online in
    /// [k_min, k_max] from observed contention, one controller per
    /// shard.  Structures without dynamic k run fixed as before.
    bool adaptive = false;
    std::size_t k_min = 16;
    std::size_t k_max = 4096;
    std::uint64_t rank_budget = 0; ///< 0 = no budget clamp
    double adapt_interval_ms = 5.0;
    /// Pool page placement (mm/placement.hpp) for the k-LSM family:
    /// numa_klsm binds each shard's pools to that shard's node;
    /// klsm/dlsm bind to the constructing thread's node.
    klsm::mm::numa_alloc_policy numa_alloc =
        klsm::mm::numa_alloc_policy::none;
    /// Emit a `memory` telemetry object per record (README "Memory
    /// placement").
    bool alloc_stats = false;
    /// Reclamation tier (mm/reclaim/): cross-thread freelist recycling
    /// and/or epoch-driven pool shrink inside the k-LSM family's pools.
    klsm::mm::reclaim_config reclaim{};
    /// Back pool chunks with explicit huge pages (MAP_HUGETLB, with
    /// transparent-huge-page fallback) where the platform allows.
    bool huge_pages = false;
    /// Churn workload (harness/churn.hpp): ops per thread per phase and
    /// the timeline sampling cadence.
    std::uint64_t churn_ops = 50000;
    double sample_interval_ms = 50.0;
    /// Service workload (src/service/): open-loop arrival process,
    /// offered rate, SLO thresholds, sustainable-rate search.
    klsm::service::arrival_kind arrival =
        klsm::service::arrival_kind::poisson;
    double rate = 100000;
    double spike_frac = 0.1;
    double spike_mult = 8.0;
    double diurnal_amplitude = 0.75;
    double diurnal_periods = 1.0;
    std::uint64_t slo_p99_ns = 0; ///< 0 = no latency objective
    double slo_min_rate = 0.9;
    bool slo_enforce = false;
    bool find_sustainable = false;
    bool smoke = false;
    bool csv = false;
    /// --json-out '-': the JSON report owns stdout, tables go to stderr.
    bool json_to_stdout = false;
    /// Runtime tracing (src/trace/): --trace arms the per-thread event
    /// rings; the drained Chrome-trace JSON is written to trace_out
    /// after the last workload record.
    bool trace = false;
    std::string trace_out = "trace.json";
    std::size_t trace_ring = klsm::trace::tracer::default_ring_capacity;
    /// In-run metrics sampling period in milliseconds (0 = sampler
    /// off).  Parsed from --metrics-interval, which accepts "50ms",
    /// "0.5s", "500us", or a bare millisecond count.
    double metrics_interval_ms = 0.0;
};

/// Parse a --metrics-interval value into milliseconds.  A bare number
/// is milliseconds; "us" / "ms" / "s" suffixes rescale.  Empty or zero
/// disables the sampler.  nullopt: malformed.
std::optional<double> parse_interval_ms(const std::string &text) {
    if (text.empty())
        return 0.0;
    std::string num = text;
    double scale = 1.0;
    const auto strip = [&num](const char *suffix) {
        const std::size_t n = std::char_traits<char>::length(suffix);
        if (num.size() > n &&
            num.compare(num.size() - n, n, suffix) == 0) {
            num.resize(num.size() - n);
            return true;
        }
        return false;
    };
    if (strip("ms"))
        scale = 1.0;
    else if (strip("us"))
        scale = 1e-3;
    else if (strip("s"))
        scale = 1e3;
    try {
        std::size_t pos = 0;
        const double v = std::stod(num, &pos);
        if (pos != num.size() || !(v >= 0))
            return std::nullopt;
        return v * scale;
    } catch (const std::exception &) {
        return std::nullopt;
    }
}

/// The sampling period one record actually runs with: the requested
/// period, clamped so a duration-bounded run still yields ~16 rows
/// (smoke runs last 50 ms; a 50 ms period would sample them twice).
/// `duration_hint_s` <= 0 means the run length is op-bounded and
/// unknown, so the request stands.
double effective_metrics_interval_s(const bench_config &cfg,
                                    double duration_hint_s) {
    double s = cfg.metrics_interval_ms / 1000.0;
    if (duration_hint_s > 0)
        s = std::min(s, duration_hint_s / 16.0);
    return std::max(s, 1e-4);
}

/// Counter tracks accumulated across every record of the run, merged
/// into the Chrome-trace export as ph:"C" series.  Track names carry
/// the record label so sweep points stay distinguishable on one
/// timeline.
std::vector<klsm::trace::counter_series> g_counter_tracks;

/// Dense index of the measured record currently running, carried as
/// the `bench_record` span argument so the trace timeline shows which
/// sweep point each burst of events belongs to.
std::uint32_t g_record_index = 0;

/// The placement the non-sharded k-LSM structures use: the configured
/// policy targeted at the constructing thread's current node (the only
/// sensible single target; numa_klsm overrides per shard).  Reclamation
/// and huge-page settings ride inside the placement.
klsm::mm::mem_placement family_placement(const bench_config &cfg) {
    return {cfg.numa_alloc,
            klsm::topo::current_node(klsm::topo::topology::system()),
            cfg.huge_pages, cfg.reclaim};
}

/// Construct the structure named `name` for key/value types K, V and
/// invoke `fn(queue)`.  Returns false (after printing to stderr) for an
/// unknown name so the caller can exit with a usage error.
template <typename K, typename V, typename Fn>
bool with_structure(const std::string &name, unsigned threads,
                    std::size_t k, const bench_config &cfg, Fn &&fn) {
    if (name == "klsm") {
        klsm::k_lsm<K, V> q{k, {}, family_placement(cfg)};
        q.set_buffer_depth(cfg.insert_buffer);
        q.set_peek_cache_depth(cfg.peek_cache);
        fn(q);
    } else if (name == "dlsm") {
        klsm::dist_pq<K, V> q{family_placement(cfg)};
        fn(q);
    } else if (name == "multiqueue") {
        klsm::multiqueue<K, V> q{threads, 2, cfg.mq_stickiness,
                                 cfg.mq_buffer};
        fn(q);
    } else if (name == "linden") {
        klsm::linden_pq<K, V> q{32};
        fn(q);
    } else if (name == "spraylist") {
        klsm::spray_pq<K, V> q{threads};
        fn(q);
    } else if (name == "heap") {
        klsm::spin_heap<K, V> q;
        fn(q);
    } else if (name == "centralized") {
        klsm::centralized_k_pq<K, V> q{k};
        fn(q);
    } else if (name == "hybrid") {
        klsm::hybrid_k_pq<K, V> q{k};
        fn(q);
    } else if (name == "numa_klsm") {
        klsm::numa_klsm<K, V> q{k, klsm::topo::topology::system(), {},
                                cfg.numa_alloc, cfg.reclaim,
                                cfg.huge_pages};
        fn(q);
    } else {
        std::cerr << "unknown structure: " << name
                  << " (expected klsm, dlsm, multiqueue, linden, "
                     "spraylist, heap, centralized, hybrid, or "
                     "numa_klsm)\n";
        return false;
    }
    return true;
}

/// Resolve a pinning-policy name against the live machine topology;
/// empty order means "do not pin".
std::vector<std::uint32_t> pin_order(const std::string &policy) {
    const auto order =
        klsm::topo::cpu_order(klsm::topo::topology::system(), policy);
    return order ? *order : std::vector<std::uint32_t>{};
}

/// The k the structure is constructed with: adaptive runs start
/// dynamic-k structures at --k clamped into [k_min, k_max] and walk
/// from there — up under publish contention, down when the contention
/// signal stays quiet (so the trajectory moves in both regimes); every
/// other combination keeps the fixed --k.
std::size_t build_k(const bench_config &cfg, const std::string &name) {
    const bool dynamic = name == "klsm" || name == "numa_klsm";
    if (!cfg.adaptive || !dynamic)
        return cfg.k;
    return std::clamp(cfg.k, cfg.k_min, cfg.k_max);
}

/// Run `body(adaptor)` with an adaptive-k control loop attached when
/// --adaptive is on and the structure supports dynamic k; `body`
/// receives a queue_adaptor pointer, or nullptr (as std::nullptr_t)
/// when running fixed-k.  The adaptor outlives the body, so hooks that
/// capture it (harness tickers) stay valid for the whole run.
template <typename PQ, typename Body>
void with_adaptation(PQ &q, const bench_config &cfg,
                     const std::string &name, unsigned threads,
                     Body &&body) {
    if constexpr (klsm::adapt::adaptive_capable<PQ>) {
        if (cfg.adaptive) {
            klsm::adapt::k_controller_config acfg;
            acfg.k_min = cfg.k_min;
            acfg.k_max = cfg.k_max;
            acfg.rank_budget = cfg.rank_budget;
            klsm::adapt::queue_adaptor<PQ> adaptor{q, acfg, threads};
            body(&adaptor);
            return;
        }
    } else {
        // Once per structure, not once per (pin, threads) sweep point:
        // the note would otherwise drown real warnings in a big sweep.
        static std::set<std::string> noted;
        if (cfg.adaptive && noted.insert(name).second)
            std::cerr << "note: " << name
                      << " has no dynamic k; --adaptive runs it fixed\n";
    }
    body(nullptr);
}

/// True iff `adaptor` (from with_adaptation) is a live adaptor rather
/// than the fixed-k nullptr.
template <typename A>
constexpr bool is_adaptor_v =
    !std::is_same_v<std::decay_t<A>, std::nullptr_t>;

/// Attach the `memory` telemetry object to a record when --alloc-stats
/// is on and the structure exposes pool telemetry (the k-LSM family).
/// Residency is queried here, after the harness joined its workers, so
/// the quiescent-only region walk is safe.
template <typename PQ>
void attach_memory(klsm::json_record &rec, PQ &q,
                   const bench_config &cfg) {
    if (!cfg.alloc_stats)
        return;
    if constexpr (klsm::pool_backed<PQ>) {
        rec.set_raw("memory", klsm::mm::memory_json(q.memory_stats(true),
                                                    cfg.numa_alloc));
    }
}

/// One record's metrics-sampling machinery (src/trace/): the progress
/// slots the harness workers publish into, the ticker-driven sampler,
/// and — for k-LSM-family runs without an adaptive controller — a
/// standalone contention monitor attached for the record's duration.
/// Construct, wire(q, adaptor), point the harness params at
/// progress(), run between start() and finish(rec, label).
///
/// Every probe reads only concurrent-safe state (relaxed atomics,
/// monitor totals, quiescence-free memory_stats(false)), so the
/// sampler thread can run while the workers do.
class record_sampling {
public:
    record_sampling(const bench_config &cfg, unsigned threads,
                    double duration_hint_s)
        : enabled_(cfg.metrics_interval_ms > 0), trace_(cfg.trace),
          progress_(threads),
          sampler_(effective_metrics_interval_s(cfg, duration_hint_s),
                   cfg.metrics_interval_ms / 1000.0) {}

    ~record_sampling() {
        if (detach_)
            detach_();
    }

    record_sampling(const record_sampling &) = delete;
    record_sampling &operator=(const record_sampling &) = delete;

    bool enabled() const { return enabled_; }
    klsm::trace::progress_counters *progress() {
        return enabled_ ? &progress_ : nullptr;
    }
    klsm::trace::metrics_sampler &sampler() { return sampler_; }

    /// Wire the probe set that makes sense for this structure:
    /// queue-agnostic op counters from the progress slots; the k-LSM
    /// family's contention hit mix (the adaptor's monitors when one is
    /// live, a standalone monitor otherwise); current-k and pool-size
    /// gauges where the structure exposes them.
    template <typename PQ, typename Adaptor>
    void wire(PQ &q, Adaptor adaptor) {
        if (!enabled_)
            return;
        sampler_.add_counter("ops", [this] {
            return static_cast<double>(progress_.total_ops());
        });
        sampler_.add_counter("failed_deletes", [this] {
            return static_cast<double>(progress_.total_failed());
        });
        if constexpr (is_adaptor_v<Adaptor>) {
            auto *a = adaptor;
            const auto win = [a] {
                klsm::adapt::contention_window sum;
                for (std::uint32_t s = 0; s < a->shards(); ++s) {
                    const auto t = a->shard_window(s);
                    sum.publishes += t.publishes;
                    sum.publish_retries += t.publish_retries;
                    sum.shared_hits += t.shared_hits;
                    sum.local_hits += t.local_hits;
                    sum.spies += t.spies;
                    sum.fail_rate_ewma =
                        std::max(sum.fail_rate_ewma, t.fail_rate_ewma);
                    sum.shared_fraction_ewma =
                        std::max(sum.shared_fraction_ewma,
                                 t.shared_fraction_ewma);
                }
                return sum;
            };
            add_contention_probes(win);
            sampler_.add_gauge("current_k", [a] {
                return static_cast<double>(a->current_k());
            });
        } else if constexpr (klsm::adapt::adaptable<PQ>) {
            monitor_ =
                std::make_unique<klsm::adapt::contention_monitor>();
            q.set_monitor(monitor_.get());
            detach_ = [&q] { q.set_monitor(nullptr); };
            wire_standalone_monitor();
        } else if constexpr (klsm::adapt::sharded_adaptable<PQ>) {
            // One aggregate monitor across shards: count() only ever
            // touches the calling thread's private slot, so sharing
            // the monitor merely merges the shard mixes — which is
            // the queue-wide view the sampler wants anyway.
            monitor_ =
                std::make_unique<klsm::adapt::contention_monitor>();
            for (std::uint32_t s = 0; s < q.num_shards(); ++s)
                q.shard(s).set_monitor(monitor_.get());
            detach_ = [&q] {
                for (std::uint32_t s = 0; s < q.num_shards(); ++s)
                    q.shard(s).set_monitor(nullptr);
            };
            wire_standalone_monitor();
        }
        if constexpr (klsm::pool_backed<PQ>) {
            const auto pools = [&q] {
                const klsm::mm::memory_stats m = q.memory_stats(false);
                klsm::mm::pool_alloc_snapshot all = m.items;
                all.merge(m.dist_blocks);
                all.merge(m.shared_blocks);
                return all;
            };
            sampler_.add_gauge("pool_bytes", [pools] {
                return static_cast<double>(pools().bytes);
            });
            sampler_.add_gauge("released_bytes", [pools] {
                return static_cast<double>(pools().released_bytes);
            });
        }
    }

    void start() {
        if (enabled_)
            sampler_.start();
    }

    /// Stop sampling, detach any standalone monitor, embed the
    /// `timeseries` block, and (under --trace) hand the counter
    /// tracks to the end-of-run Chrome-trace export.
    void finish(klsm::json_record &rec, const std::string &label) {
        if (!enabled_)
            return;
        sampler_.stop();
        if (detach_) {
            detach_();
            detach_ = nullptr;
        }
        rec.set_raw("timeseries", sampler_.json());
        if (trace_) {
            auto tracks = sampler_.counter_tracks();
            for (auto &cs : tracks) {
                cs.name = label + " " + cs.name;
                g_counter_tracks.push_back(std::move(cs));
            }
        }
    }

private:
    template <typename WindowFn>
    void add_contention_probes(WindowFn win) {
        sampler_.add_counter("publishes", [win] {
            return static_cast<double>(win().publishes);
        });
        sampler_.add_counter("publish_retries", [win] {
            return static_cast<double>(win().publish_retries);
        });
        sampler_.add_counter("shared_hits", [win] {
            return static_cast<double>(win().shared_hits);
        });
        sampler_.add_counter("local_hits", [win] {
            return static_cast<double>(win().local_hits);
        });
        sampler_.add_counter("spies", [win] {
            return static_cast<double>(win().spies);
        });
        sampler_.add_gauge("fail_rate_ewma", [win] {
            return win().fail_rate_ewma;
        });
        sampler_.add_gauge("shared_fraction_ewma", [win] {
            return win().shared_fraction_ewma;
        });
    }

    void wire_standalone_monitor() {
        auto *m = monitor_.get();
        // No controller owns this monitor's ticker, so fold the EWMA
        // window once per sample row instead.
        sampler_.add_tick_hook([m] { m->sample_window(); });
        add_contention_probes([m] { return m->totals(); });
    }

    bool enabled_;
    bool trace_;
    klsm::trace::progress_counters progress_;
    klsm::trace::metrics_sampler sampler_;
    std::unique_ptr<klsm::adapt::contention_monitor> monitor_;
    std::function<void()> detach_;
};

/// Human-readable sweep-point label for counter-track names.
std::string record_label(const std::string &name, const std::string &pin,
                         unsigned threads) {
    return name + "/" + pin + "/t" + std::to_string(threads);
}

int run_throughput_workload(const bench_config &cfg,
                            klsm::json_reporter &json) {
    klsm::table_reporter report({"structure", "pin", "threads", "prefill",
                                 "ops/s", "ops/thread/s", "failed_dels"},
                                cfg.csv,
                                cfg.json_to_stdout ? std::cerr : std::cout);
    for (const auto &pin : cfg.pins) {
        const auto cpus = pin_order(pin);
        for (const auto threads_i : cfg.threads_list) {
            const auto threads = static_cast<unsigned>(threads_i);
            for (const auto &name : cfg.structures) {
                const bool ok = with_structure<bench_key, bench_val>(
                    name, threads, build_k(cfg, name), cfg,
                    [&](auto &q) {
                        klsm::prefill_queue(q, cfg.prefill, cfg.seed);
                        with_adaptation(q, cfg, name, threads, [&](
                                            auto adaptor) {
                        klsm::throughput_params params;
                        params.prefill = cfg.prefill;
                        params.threads = threads;
                        params.duration_s = cfg.duration_s;
                        params.insert_percent = cfg.insert_percent;
                        params.seed = cfg.seed;
                        params.pin_cpus = cpus;
                        klsm::stats::latency_recorder_set recs{
                            threads, cfg.latency_sample};
                        params.latency = &recs;
                        if constexpr (is_adaptor_v<decltype(adaptor)>) {
                            params.on_adapt_tick = [adaptor] {
                                adaptor->tick();
                            };
                            params.adapt_tick_s =
                                cfg.adapt_interval_ms / 1000.0;
                        }
                        record_sampling sampling{cfg, threads,
                                                 cfg.duration_s};
                        sampling.wire(q, adaptor);
                        params.progress = sampling.progress();
                        KLSM_TRACE_SPAN(rec_span,
                                        klsm::trace::kind::bench_record);
                        rec_span.arg(
                            klsm::trace::clamp16(g_record_index++));
                        sampling.start();
                        const auto res = klsm::run_throughput(q, params);
                        report.row(name, pin, threads, cfg.prefill,
                                   res.ops_per_sec(),
                                   res.ops_per_thread_per_sec(threads),
                                   res.failed_deletes);
                        auto &rec = json.add_record();
                        rec.set("structure", name);
                        rec.set("pin", pin);
                        rec.set("threads", threads);
                        rec.set("prefill", cfg.prefill);
                        rec.set("ops", res.total_ops);
                        rec.set("inserts", res.inserts);
                        rec.set("deletes", res.deletes);
                        rec.set("failed_deletes", res.failed_deletes);
                        rec.set("pin_failures", res.pin_failures);
                        rec.set("elapsed_s", res.elapsed_s);
                        rec.set("ops_per_sec", res.ops_per_sec());
                        if (recs.enabled())
                            rec.set_raw("latency",
                                        klsm::stats::latency_json(recs));
                        sampling.finish(rec,
                                        record_label(name, pin, threads));
                        if constexpr (is_adaptor_v<decltype(adaptor)>)
                            rec.set_raw("adaptation", adaptor->json());
                        attach_memory(rec, q, cfg);
                        });
                    });
                if (!ok)
                    return 2;
            }
        }
    }
    return 0;
}

/// The churn soak workload (harness/churn.hpp): a four-phase program of
/// key-range shifts, an insert surge, and bursty drains, with the queue
/// quiesced and shrunk at every phase boundary.  Each record carries a
/// `memory_timeline` object — RSS and pool-counter samples over the run
/// plus the derived plateau verdict.  The timeline is reported here and
/// *enforced* by scripts/check_memory_schema.py --bench-churn (shrink
/// events observed, final RSS on the steady-phase plateau), so a soak
/// regression fails CI without making every local bench run brittle.
int run_churn_workload(const bench_config &cfg,
                       klsm::json_reporter &json) {
    klsm::table_reporter report({"structure", "pin", "threads", "ops",
                                 "ops/s", "shrinks", "rss_hw_mb",
                                 "plateau"},
                                cfg.csv,
                                cfg.json_to_stdout ? std::cerr : std::cout);
    for (const auto &pin : cfg.pins) {
        const auto cpus = pin_order(pin);
        for (const auto threads_i : cfg.threads_list) {
            const auto threads = static_cast<unsigned>(threads_i);
            for (const auto &name : cfg.structures) {
                const bool ok = with_structure<bench_key, bench_val>(
                    name, threads, build_k(cfg, name), cfg,
                    [&](auto &q) {
                        klsm::churn_params params;
                        params.threads = threads;
                        params.ops_per_phase = cfg.churn_ops;
                        params.prefill = cfg.prefill;
                        params.seed = cfg.seed;
                        params.sample_interval_s =
                            cfg.sample_interval_ms / 1000.0;
                        params.pin_cpus = cpus;
                        record_sampling sampling{cfg, threads,
                                                 /*duration_hint_s=*/0};
                        sampling.wire(q, nullptr);
                        params.progress = sampling.progress();
                        KLSM_TRACE_SPAN(rec_span,
                                        klsm::trace::kind::bench_record);
                        rec_span.arg(
                            klsm::trace::clamp16(g_record_index++));
                        sampling.start();
                        const auto res = klsm::run_churn(q, params);
                        const auto &tl = res.timeline;
                        const double ops_per_sec =
                            res.elapsed_s > 0
                                ? static_cast<double>(res.total_ops()) /
                                      res.elapsed_s
                                : 0.0;
                        report.row(
                            name, pin, threads, res.total_ops(),
                            ops_per_sec, tl.shrink_events,
                            static_cast<double>(tl.rss_high_water_bytes) /
                                (1024.0 * 1024.0),
                            !tl.rss_reliable ? "n/a"
                            : tl.plateau_ok  ? "ok"
                                             : "FAIL");
                        auto &rec = json.add_record();
                        rec.set("structure", name);
                        rec.set("pin", pin);
                        rec.set("threads", threads);
                        rec.set("prefill", cfg.prefill);
                        rec.set("ops", res.total_ops());
                        rec.set("inserts", res.inserts);
                        rec.set("deletes", res.deletes);
                        rec.set("failed_deletes", res.failed_deletes);
                        rec.set("pin_failures", res.pin_failures);
                        rec.set("elapsed_s", res.elapsed_s);
                        rec.set("ops_per_sec", ops_per_sec);
                        rec.set_raw("memory_timeline", tl.to_json());
                        sampling.finish(rec,
                                        record_label(name, pin, threads));
                        attach_memory(rec, q, cfg);
                    });
                if (!ok)
                    return 2;
            }
        }
    }
    return 0;
}

/// The open-loop service workload: one record per (structure, pin,
/// threads) point, each carrying `service` telemetry and an `slo`
/// verdict.  A failed verdict is *reported* but only fails the run
/// under --slo-enforce — CI judges verdicts through compare_bench
/// against a baseline, where flips (pass -> fail) are what matter.
int run_service_workload(const bench_config &cfg,
                         klsm::json_reporter &json) {
    klsm::table_reporter report(
        {"structure", "pin", "threads", "offered/s", "achieved/s",
         "intent_p99_us", "svc_p99_us", "late", "slo"},
        cfg.csv, cfg.json_to_stdout ? std::cerr : std::cout);
    int status = 0;
    for (const auto &pin : cfg.pins) {
        const auto cpus = pin_order(pin);
        for (const auto threads_i : cfg.threads_list) {
            const auto threads = static_cast<unsigned>(threads_i);
            for (const auto &name : cfg.structures) {
                const bool ok = with_structure<bench_key, bench_val>(
                    name, threads, build_k(cfg, name), cfg,
                    [&](auto &q) {
                        klsm::prefill_queue(q, cfg.prefill, cfg.seed);
                        with_adaptation(q, cfg, name, threads, [&](
                                            auto adaptor) {
                        klsm::service::arrival_config acfg;
                        acfg.kind = cfg.arrival;
                        acfg.rate = cfg.rate;
                        acfg.duration_s = cfg.duration_s;
                        acfg.threads = threads;
                        acfg.seed = cfg.seed;
                        acfg.spike_fraction = cfg.spike_frac;
                        acfg.spike_multiplier = cfg.spike_mult;
                        acfg.diurnal_amplitude = cfg.diurnal_amplitude;
                        acfg.diurnal_periods = cfg.diurnal_periods;
                        const auto schedule =
                            klsm::service::make_arrival_schedule(acfg);
                        klsm::service::service_params params;
                        params.threads = threads;
                        params.insert_percent = cfg.insert_percent;
                        params.seed = cfg.seed;
                        params.pin_cpus = cpus;
                        klsm::stats::latency_recorder_set recs{
                            threads, cfg.latency_sample};
                        params.latency = &recs;
                        if constexpr (is_adaptor_v<decltype(adaptor)>) {
                            params.on_adapt_tick = [adaptor] {
                                adaptor->tick();
                            };
                            params.adapt_tick_s =
                                cfg.adapt_interval_ms / 1000.0;
                        }
                        record_sampling sampling{cfg, threads,
                                                 cfg.duration_s};
                        sampling.wire(q, adaptor);
                        params.progress = sampling.progress();
                        KLSM_TRACE_SPAN(rec_span,
                                        klsm::trace::kind::bench_record);
                        rec_span.arg(
                            klsm::trace::clamp16(g_record_index++));
                        sampling.start();
                        const auto res =
                            klsm::service::run_service(q, params,
                                                       schedule);
                        klsm::service::slo_config slo;
                        slo.p99_ns = cfg.slo_p99_ns;
                        slo.min_achieved_fraction = cfg.slo_min_rate;
                        const auto verdict = klsm::service::evaluate_slo(
                            slo, res,
                            klsm::service::offered_rate(res, acfg));
                        // --find-sustainable: short probe runs on the
                        // same (already warm) queue, without polluting
                        // the main record's latency capture.
                        std::optional<klsm::service::sustainable_result>
                            sustainable;
                        if (cfg.find_sustainable) {
                            auto probe_params = params;
                            probe_params.latency = nullptr;
                            // Probe tallies restart from zero each run,
                            // which would drag the cumulative `ops`
                            // counter backwards — keep the probes out
                            // of the sampled slots.
                            probe_params.progress = nullptr;
                            sustainable =
                                klsm::service::find_sustainable_rate(
                                    [&](double rate) {
                                        auto pcfg = acfg;
                                        pcfg.rate = rate;
                                        const auto psched = klsm::
                                            service::
                                                make_arrival_schedule(
                                                    pcfg);
                                        const auto pres =
                                            klsm::service::run_service(
                                                q, probe_params, psched);
                                        return klsm::service::
                                            evaluate_slo(
                                                slo, pres,
                                                klsm::service::
                                                    offered_rate(pres,
                                                                 pcfg))
                                                .pass;
                                    },
                                    cfg.rate);
                        }
                        std::uint64_t svc_p99 = 0;
                        for (unsigned op = 0; op < klsm::stats::op_kinds;
                             ++op) {
                            const auto h = res.completion.merged(
                                static_cast<klsm::stats::op_kind>(op));
                            if (h.count() > 0 &&
                                h.percentile(99) > svc_p99)
                                svc_p99 = h.percentile(99);
                        }
                        report.row(
                            name, pin, threads,
                            klsm::service::offered_rate(res, acfg),
                            res.achieved_rate(),
                            verdict.observed_p99_ns / 1000.0,
                            svc_p99 / 1000.0, res.late_ops,
                            verdict.pass ? "pass" : "FAIL");
                        auto &rec = json.add_record();
                        rec.set("structure", name);
                        rec.set("pin", pin);
                        rec.set("threads", threads);
                        rec.set("prefill", cfg.prefill);
                        rec.set("ops", res.completed_ops);
                        rec.set("inserts", res.inserts);
                        rec.set("deletes", res.deletes);
                        rec.set("failed_deletes", res.failed_deletes);
                        rec.set("pin_failures", res.pin_failures);
                        rec.set("elapsed_s", res.elapsed_s);
                        rec.set("ops_per_sec", res.achieved_rate());
                        if (recs.enabled())
                            rec.set_raw("latency",
                                        klsm::stats::latency_json(recs));
                        sampling.finish(rec,
                                        record_label(name, pin, threads));
                        rec.set_raw("service",
                                    klsm::service::service_json(
                                        res, acfg, params));
                        rec.set_raw(
                            "slo",
                            klsm::service::slo_json(
                                verdict, slo,
                                sustainable ? &*sustainable : nullptr));
                        if constexpr (is_adaptor_v<decltype(adaptor)>)
                            rec.set_raw("adaptation", adaptor->json());
                        attach_memory(rec, q, cfg);
                        if (!verdict.pass) {
                            KLSM_TRACE_EVENT(
                                klsm::trace::kind::slo_violation, 0,
                                verdict.observed_p99_ns / 1000);
                            std::cerr
                                << (cfg.slo_enforce ? "SLO FAIL: "
                                                    : "slo verdict: ")
                                << name << " pin=" << pin << " t="
                                << threads << " p99="
                                << verdict.observed_p99_ns << "ns"
                                << (verdict.latency_ok ? ""
                                                       : " (> threshold)")
                                << " achieved="
                                << static_cast<std::uint64_t>(
                                       verdict.achieved_rate)
                                << "/s"
                                << (verdict.rate_ok ? ""
                                                    : " (< floor)")
                                << "\n";
                            if (cfg.slo_enforce)
                                status = 1;
                        }
                        });
                    });
                if (!ok)
                    return 2;
            }
        }
    }
    return status;
}

int run_quality_workload(const bench_config &cfg,
                         klsm::json_reporter &json) {
    klsm::table_reporter report({"structure", "pin", "threads", "deletes",
                                 "mean_rank", "max_rank", "bound"},
                                cfg.csv,
                                cfg.json_to_stdout ? std::cerr : std::cout);
    int status = 0;
    for (const auto &pin : cfg.pins) {
        const auto cpus = pin_order(pin);
        for (const auto threads_i : cfg.threads_list) {
            const auto threads = static_cast<unsigned>(threads_i);
            for (const auto &name : cfg.structures) {
                const bool ok = with_structure<bench_key, bench_val>(
                    name, threads, build_k(cfg, name), cfg,
                    [&](auto &q) {
                        with_adaptation(q, cfg, name, threads, [&](
                                            auto adaptor) {
                        klsm::quality_params params;
                        params.threads = threads;
                        params.prefill = cfg.prefill;
                        params.ops_per_thread = cfg.ops_per_thread;
                        params.seed = cfg.seed;
                        params.pin_cpus = cpus;
                        klsm::stats::latency_recorder_set recs{
                            threads, cfg.latency_sample};
                        params.latency = &recs;
                        if constexpr (is_adaptor_v<decltype(adaptor)>) {
                            params.on_adapt_tick = [adaptor] {
                                adaptor->tick();
                            };
                            params.adapt_tick_s =
                                cfg.adapt_interval_ms / 1000.0;
                        }
                        record_sampling sampling{cfg, threads,
                                                 /*duration_hint_s=*/0};
                        sampling.wire(q, adaptor);
                        params.progress = sampling.progress();
                        // Quality-only probes: the sampled online rank
                        // accumulator makes rank error observable *while*
                        // the run (and any k controller) moves.
                        klsm::online_rank_stats online_rank;
                        if (sampling.enabled()) {
                            params.online_rank = &online_rank;
                            sampling.sampler().add_counter(
                                "rank_samples", [&online_rank] {
                                    return static_cast<double>(
                                        online_rank.samples.load(
                                            std::memory_order_relaxed));
                                });
                            sampling.sampler().add_gauge(
                                "rank_mean", [&online_rank] {
                                    return online_rank.mean();
                                });
                            sampling.sampler().add_gauge(
                                "rank_max", [&online_rank] {
                                    return static_cast<double>(
                                        online_rank.rank_max.load(
                                            std::memory_order_relaxed));
                                });
                        }
                        KLSM_TRACE_SPAN(rec_span,
                                        klsm::trace::kind::bench_record);
                        rec_span.arg(
                            klsm::trace::clamp16(g_record_index++));
                        sampling.start();
                        const auto res = klsm::measure_rank_error(q, params);
                        // Lemma 2: the k-LSM guarantees at most T*k
                        // smaller keys are skipped.  numa_klsm's
                        // composed bound nodes*(T*k + k) is structural
                        // only with one shard (see numa_klsm.hpp): on a
                        // multi-node machine local-first deletes trade
                        // it for locality, so there it is reported and
                        // checked advisorily, without failing the run.
                        // The relaxed comparators offer no bound at all.
                        // Adaptive runs check against the *maximum* k
                        // the controller ever set — correct for every
                        // delete that completed under that k, advisory
                        // for the run as a whole (ops in flight across
                        // a k change straddle two bounds), mirroring
                        // the rho_hard split.
                        const std::uint32_t numa_nodes =
                            klsm::topo::topology::system().num_nodes();
                        const bool has_rho =
                            name == "klsm" || name == "numa_klsm";
                        std::uint64_t k_bound = cfg.k;
                        bool adaptive_run = false;
                        if constexpr (is_adaptor_v<decltype(adaptor)>) {
                            k_bound = adaptor->max_k_seen();
                            adaptive_run = true;
                        }
                        const bool hard =
                            !adaptive_run &&
                            (name == "klsm" ||
                             (name == "numa_klsm" && numa_nodes == 1));
                        // Buffered handles hide up to buffer_total items
                        // per worker; the extended rho (quality.hpp)
                        // charges T * max_buffer_depth_seen() on top of
                        // Lemma 2's relaxation term.
                        std::uint64_t buffer_total = 0;
                        if constexpr (klsm::dynamic_buffering<
                                          std::remove_reference_t<
                                              decltype(q)>>)
                            buffer_total = q.max_buffer_depth_seen();
                        const std::uint64_t rho =
                            name == "numa_klsm"
                                ? klsm::numa_rank_error_bound(
                                      numa_nodes, threads, k_bound)
                                : klsm::rank_error_bound(threads, k_bound,
                                                         buffer_total);
                        std::string bound_cell = "none";
                        if (has_rho)
                            bound_cell = "rho=" + std::to_string(rho) +
                                         (hard ? "" : " (advisory)");
                        report.row(name, pin, threads, res.deletes,
                                   res.mean_rank(), res.rank_max,
                                   bound_cell);
                        auto &rec = json.add_record();
                        rec.set("structure", name);
                        rec.set("pin", pin);
                        rec.set("threads", threads);
                        rec.set("deletes", res.deletes);
                        rec.set("mean_rank", res.mean_rank());
                        rec.set("max_rank", res.rank_max);
                        rec.set("pin_failures", res.pin_failures);
                        if (recs.enabled())
                            rec.set_raw("latency",
                                        klsm::stats::latency_json(recs));
                        sampling.finish(rec,
                                        record_label(name, pin, threads));
                        if constexpr (is_adaptor_v<decltype(adaptor)>)
                            rec.set_raw("adaptation", adaptor->json());
                        attach_memory(rec, q, cfg);
                        if (has_rho) {
                            rec.set("rho", rho);
                            rec.set("rho_hard", hard);
                            rec.set("buffer_total", buffer_total);
                            if (res.rank_max > rho) {
                                std::cerr
                                    << (hard ? "BOUND VIOLATION: "
                                             : "advisory bound "
                                               "exceeded: ")
                                    << name << " k=" << k_bound
                                    << " max rank " << res.rank_max
                                    << " > " << rho << "\n";
                                if (hard)
                                    status = 1;
                            }
                        }
                        });
                    });
                if (!ok)
                    return 2;
            }
        }
    }
    return status;
}

int run_sssp_workload(const bench_config &cfg, klsm::json_reporter &json) {
    klsm::erdos_renyi_params gp;
    gp.nodes = cfg.nodes;
    gp.edge_probability = cfg.edge_prob;
    gp.max_weight = 100000000;
    gp.seed = cfg.seed;
    const klsm::graph g = klsm::make_erdos_renyi(gp);
    const auto ref = klsm::dijkstra(g, 0);
    json.meta().set("nodes", g.num_nodes());
    json.meta().set("arcs", static_cast<std::uint64_t>(g.num_edges()));

    klsm::table_reporter report({"structure", "pin", "threads", "time_s",
                                 "expansions", "stale_pops",
                                 "mismatches"},
                                cfg.csv,
                                cfg.json_to_stdout ? std::cerr : std::cout);
    int status = 0;
    // Runs one (structure, pin, threads) point on a caller-created state;
    // the k-LSM needs the state before queue construction to wire in
    // lazy deletion, the other structures don't care.
    auto run_one = [&](const std::string &name, const std::string &pin,
                       const std::vector<std::uint32_t> &cpus,
                       unsigned threads, klsm::sssp_state &state,
                       auto &q, auto adaptor) {
        klsm::stats::latency_recorder_set recs{threads,
                                               cfg.latency_sample};
        std::function<void()> adapt_tick;
        if constexpr (is_adaptor_v<decltype(adaptor)>)
            adapt_tick = [adaptor] { adaptor->tick(); };
        klsm::wall_timer timer;
        const auto stats = klsm::parallel_sssp(
            q, g, 0, threads, state, cpus, &recs, adapt_tick,
            cfg.adapt_interval_ms / 1000.0);
        const double seconds = timer.elapsed_s();
        std::uint64_t mismatches = 0;
        for (std::uint32_t u = 0; u < g.num_nodes(); ++u)
            mismatches += (state.dist(u) != ref.dist[u]);
        report.row(name, pin, threads, seconds, stats.expansions,
                   stats.stale_pops, mismatches);
        auto &rec = json.add_record();
        rec.set("structure", name);
        rec.set("pin", pin);
        rec.set("threads", threads);
        rec.set("time_s", seconds);
        rec.set("expansions", stats.expansions);
        rec.set("stale_pops", stats.stale_pops);
        rec.set("pin_failures", stats.pin_failures);
        rec.set("mismatches", mismatches);
        if (recs.enabled())
            rec.set_raw("latency", klsm::stats::latency_json(recs));
        if constexpr (is_adaptor_v<decltype(adaptor)>)
            rec.set_raw("adaptation", adaptor->json());
        attach_memory(rec, q, cfg);
        if (mismatches) {
            std::cerr << "SSSP MISMATCH: " << name << " with " << threads
                      << " threads disagrees with Dijkstra on "
                      << mismatches << " nodes\n";
            status = 1;
        }
    };
    for (const auto &pin : cfg.pins) {
        const auto cpus = pin_order(pin);
        for (const auto threads_i : cfg.threads_list) {
            const auto threads = static_cast<unsigned>(threads_i);
            for (const auto &name : cfg.structures) {
                if (name == "klsm") {
                    // Paper Section 4.5: superseded (distance, node)
                    // entries are dropped when the k-LSM rebuilds blocks.
                    klsm::sssp_state state{g.num_nodes()};
                    klsm::k_lsm<std::uint64_t, std::uint32_t,
                                klsm::sssp_lazy>
                        q{build_k(cfg, name), klsm::sssp_lazy{&state},
                          family_placement(cfg)};
                    with_adaptation(q, cfg, name, threads,
                                    [&](auto adaptor) {
                                        run_one(name, pin, cpus, threads,
                                                state, q, adaptor);
                                    });
                    continue;
                }
                klsm::sssp_state state{g.num_nodes()};
                const bool ok =
                    with_structure<std::uint64_t, std::uint32_t>(
                        name, threads, build_k(cfg, name),
                        cfg, [&](auto &q) {
                            with_adaptation(
                                q, cfg, name, threads, [&](auto adaptor) {
                                    run_one(name, pin, cpus, threads,
                                            state, q, adaptor);
                                });
                        });
                if (!ok)
                    return 2;
            }
        }
    }
    return status;
}

} // namespace

int main(int argc, char **argv) {
    klsm::cli_parser cli(
        "Unified k-LSM benchmark driver: one CLI for every structure and "
        "workload, one JSON report per invocation");
    cli.add_flag("workload", "throughput",
                 "workload: throughput | quality | sssp | service | "
                 "churn");
    cli.add_flag("benchmark", "",
                 "alias for --workload (overrides it when set)");
    cli.add_flag("structure", "klsm",
                 "comma-separated: klsm,dlsm,multiqueue,linden,"
                 "spraylist,heap,centralized,hybrid,numa_klsm");
    cli.add_flag("pin", "none",
                 "comma-separated pinning policies: none,compact,"
                 "scatter,numa_fill");
    cli.add_flag("threads", "4", "comma-separated thread counts");
    cli.add_flag("k", "256", "k-LSM relaxation parameter");
    cli.add_flag("mq-stickiness", "8",
                 "multiqueue: handle queue accesses between resamples "
                 "(1 = classic two-choice resampling every access)");
    cli.add_flag("mq-buffer", "16",
                 "multiqueue: per-handle insertion/deletion buffer "
                 "capacity (0 = unbuffered handles)");
    cli.add_flag("insert-buffer", "0",
                 "klsm: per-thread handle insert-buffer depth; staged "
                 "inserts flush into the DistLSM as one pre-sorted "
                 "block (0 = off, the paper's immediate visibility)");
    cli.add_flag("peek-cache", "0",
                 "klsm: per-thread delete-side peek-cache depth; "
                 "delete-min refills in bursts of this many pops "
                 "(0 = off)");
    cli.add_flag("prefill", "100000", "keys inserted before timing");
    cli.add_flag("duration", "0.1", "seconds per throughput measurement");
    cli.add_flag("ops", "20000", "quality: operations per thread");
    cli.add_flag("insert-pct", "50", "throughput: percent inserts");
    cli.add_flag("nodes", "1000", "sssp: graph size");
    cli.add_flag("edge-prob", "0.05", "sssp: edge probability");
    cli.add_flag("arrival", "poisson",
                 "service: arrival process: steady | poisson | spike | "
                 "diurnal");
    cli.add_flag("rate", "100000",
                 "service: offered arrival rate in total ops/s across "
                 "all threads");
    cli.add_flag("spike-frac", "0.1",
                 "service: fraction of the run the spike covers");
    cli.add_flag("spike-mult", "8",
                 "service: rate multiplier inside the spike window");
    cli.add_flag("diurnal-amplitude", "0.75",
                 "service: sinusoid amplitude as a fraction of the base "
                 "rate, in [0, 1]");
    cli.add_flag("diurnal-periods", "1",
                 "service: full sinusoid cycles over the run");
    cli.add_flag("slo-p99-us", "0",
                 "service: intended-start p99 objective in microseconds "
                 "(0 = no latency objective)");
    cli.add_flag("slo-min-rate", "0.9",
                 "service: fail the SLO when achieved/offered rate "
                 "falls below this fraction, in (0, 1]");
    cli.add_bool_flag("slo-enforce", false,
                      "service: exit nonzero when any record's SLO "
                      "verdict fails (default: report only)");
    cli.add_bool_flag("find-sustainable", false,
                      "service: binary-search the highest offered rate "
                      "that still passes the SLO, from --rate");
    cli.add_flag("seed", "1", "base RNG seed");
    cli.add_flag("latency-sample", "0",
                 "per-op latency sampling stride: 0 = off, 1 = every "
                 "op, N = every Nth op (--smoke raises 0 to 4)");
    cli.add_bool_flag("adaptive", false,
                      "adapt k online from observed contention "
                      "(klsm/numa_klsm; others run fixed)");
    cli.add_flag("k-min", "16",
                 "adaptive: lower bound on k (the walk starts at --k "
                 "clamped into [k-min, k-max])");
    cli.add_flag("k-max", "4096", "adaptive: upper bound on k");
    cli.add_flag("rank-budget", "0",
                 "adaptive: keep rho = T*k + k within this budget "
                 "(0 = unconstrained)");
    cli.add_flag("adapt-interval-ms", "5",
                 "adaptive: controller tick period in milliseconds");
    cli.add_flag("numa-alloc", "none",
                 "pool page placement for the k-LSM family: none | "
                 "bind (mbind each shard's pools to its node) | "
                 "firsttouch (pre-fault on the allocating thread)");
    cli.add_bool_flag("alloc-stats", false,
                      "emit a `memory` allocation-telemetry object per "
                      "record (chunks/bytes/reuse per pool, resident-"
                      "node histogram where move_pages is queryable)");
    cli.add_flag("reclaim", "auto",
                 "pool reclamation tier for the k-LSM family: auto "
                 "(full for churn, none otherwise) | none | freelist "
                 "(cross-thread recycling) | shrink (return cold "
                 "chunks to the OS) | full (both)");
    cli.add_flag("reclaim-period", "512",
                 "reclaim: allocations between pool maintenance steps");
    cli.add_flag("reclaim-grace", "2",
                 "reclaim: maintenance inspections a chunk must stay "
                 "cold before its pages are released");
    cli.add_bool_flag("huge-pages", false,
                      "back pool chunks with explicit huge pages "
                      "(MAP_HUGETLB), falling back to transparent-huge-"
                      "page advice, then to normal pages");
    cli.add_flag("churn-ops", "50000",
                 "churn: operations per thread per phase");
    cli.add_flag("sample-interval-ms", "50",
                 "churn: memory-timeline sampling period in "
                 "milliseconds");
    cli.add_bool_flag("trace", false,
                      "arm the runtime tracer (src/trace/): per-thread "
                      "event rings drained at exit to --trace-out as "
                      "Chrome-trace JSON (chrome://tracing / Perfetto)");
    cli.add_flag("trace-out", "trace.json",
                 "where --trace writes the Chrome-trace JSON");
    cli.add_flag("trace-ring", "65536",
                 "trace: per-thread ring capacity in events (rounded "
                 "up to a power of two; on overflow the oldest events "
                 "are overwritten and counted as dropped)");
    cli.add_flag("metrics-interval", "",
                 "in-run metrics sampling period, e.g. 50ms, 0.5s "
                 "(bare numbers are milliseconds; empty or 0 = off): "
                 "each record gains a `timeseries` block, and traces "
                 "gain counter tracks (throughput/quality/service/"
                 "churn workloads)");
    cli.add_bool_flag("smoke", false,
                      "tiny parameters, all checks on: the CI smoke mode");
    cli.add_flag("json-out", "",
                 "write the JSON report here ('-' for stdout)");
    cli.add_bool_flag("csv", false, "emit CSV instead of a table");
    cli.parse(argc, argv);

    bench_config cfg;
    cfg.workload = cli.get("benchmark").empty() ? cli.get("workload")
                                                : cli.get("benchmark");
    cfg.structures = cli.get_list("structure");
    cfg.pins = cli.get_list("pin");
    cfg.threads_list = cli.get_int_list("threads");
    cfg.k = static_cast<std::size_t>(cli.get_int("k"));
    cfg.mq_stickiness =
        static_cast<std::size_t>(cli.get_uint64("mq-stickiness"));
    cfg.mq_buffer = static_cast<std::size_t>(cli.get_uint64("mq-buffer"));
    cfg.insert_buffer =
        static_cast<std::size_t>(cli.get_uint64("insert-buffer"));
    cfg.peek_cache =
        static_cast<std::size_t>(cli.get_uint64("peek-cache"));
    if (cfg.mq_stickiness == 0) {
        std::cerr << "--mq-stickiness must be positive\n";
        return 2;
    }
    cfg.prefill = static_cast<std::size_t>(cli.get_int("prefill"));
    cfg.duration_s = cli.get_double("duration");
    cfg.ops_per_thread = static_cast<std::uint64_t>(cli.get_int("ops"));
    cfg.insert_percent = static_cast<unsigned>(cli.get_int("insert-pct"));
    cfg.nodes = static_cast<std::uint32_t>(cli.get_int("nodes"));
    cfg.edge_prob = cli.get_double("edge-prob");
    const auto arrival = klsm::service::parse_arrival(cli.get("arrival"));
    if (!arrival) {
        std::cerr << "unknown --arrival process: " << cli.get("arrival")
                  << " (expected steady, poisson, spike, or diurnal)\n";
        return 2;
    }
    cfg.arrival = *arrival;
    cfg.rate = cli.get_double("rate");
    cfg.spike_frac = cli.get_double("spike-frac");
    cfg.spike_mult = cli.get_double("spike-mult");
    cfg.diurnal_amplitude = cli.get_double("diurnal-amplitude");
    cfg.diurnal_periods = cli.get_double("diurnal-periods");
    cfg.slo_p99_ns = static_cast<std::uint64_t>(
        cli.get_double("slo-p99-us") * 1000.0);
    cfg.slo_min_rate = cli.get_double("slo-min-rate");
    cfg.slo_enforce = cli.get_bool("slo-enforce");
    cfg.find_sustainable = cli.get_bool("find-sustainable");
    cfg.seed = cli.get_uint64("seed");
    cfg.latency_sample = cli.get_uint64("latency-sample");
    cfg.adaptive = cli.get_bool("adaptive");
    cfg.k_min = static_cast<std::size_t>(cli.get_uint64("k-min"));
    cfg.k_max = static_cast<std::size_t>(cli.get_uint64("k-max"));
    cfg.rank_budget = cli.get_uint64("rank-budget");
    cfg.adapt_interval_ms = cli.get_double("adapt-interval-ms");
    const auto numa_alloc =
        klsm::mm::parse_numa_alloc_policy(cli.get("numa-alloc"));
    if (!numa_alloc) {
        std::cerr << "unknown --numa-alloc policy: "
                  << cli.get("numa-alloc")
                  << " (expected none, bind, or firsttouch)\n";
        return 2;
    }
    cfg.numa_alloc = *numa_alloc;
    cfg.alloc_stats = cli.get_bool("alloc-stats");
    if (cli.get("reclaim") == "auto") {
        // Churn is the reclamation soak: exercising the full tier is
        // the point.  Everywhere else the tier defaults off so perf
        // baselines keep their exact pre-reclaim allocation behavior.
        cfg.reclaim.policy = cfg.workload == "churn"
                                 ? klsm::mm::reclaim_policy::full
                                 : klsm::mm::reclaim_policy::none;
    } else {
        klsm::mm::reclaim_policy rp;
        if (!klsm::mm::reclaim::parse_reclaim_policy(
                cli.get("reclaim").c_str(), rp)) {
            std::cerr << "unknown --reclaim policy: " << cli.get("reclaim")
                      << " (expected auto, none, freelist, shrink, or "
                         "full)\n";
            return 2;
        }
        cfg.reclaim.policy = rp;
    }
    cfg.reclaim.maintenance_period =
        static_cast<std::uint32_t>(cli.get_uint64("reclaim-period"));
    cfg.reclaim.grace_inspections =
        static_cast<std::uint32_t>(cli.get_uint64("reclaim-grace"));
    if (cfg.reclaim.maintenance_period == 0) {
        std::cerr << "--reclaim-period must be positive\n";
        return 2;
    }
    cfg.huge_pages = cli.get_bool("huge-pages");
    cfg.churn_ops = cli.get_uint64("churn-ops");
    cfg.sample_interval_ms = cli.get_double("sample-interval-ms");
    if (cfg.workload == "churn") {
        if (cfg.churn_ops == 0) {
            std::cerr << "--churn-ops must be positive\n";
            return 2;
        }
        if (cfg.sample_interval_ms <= 0) {
            std::cerr << "--sample-interval-ms must be positive\n";
            return 2;
        }
    }
    cfg.smoke = cli.get_bool("smoke");
    cfg.csv = cli.get_bool("csv");
    cfg.json_to_stdout = cli.get("json-out") == "-";
    cfg.trace = cli.get_bool("trace");
    cfg.trace_out = cli.get("trace-out");
    cfg.trace_ring =
        static_cast<std::size_t>(cli.get_uint64("trace-ring"));
    if (cfg.trace && cfg.trace_out.empty()) {
        std::cerr << "--trace-out must name a file when --trace is on\n";
        return 2;
    }
    if (cfg.trace_ring == 0) {
        std::cerr << "--trace-ring must be positive\n";
        return 2;
    }
    const auto metrics_ms =
        parse_interval_ms(cli.get("metrics-interval"));
    if (!metrics_ms) {
        std::cerr << "--metrics-interval: cannot parse '"
                  << cli.get("metrics-interval")
                  << "' (expected e.g. 50ms, 0.5s, or a bare "
                     "millisecond count)\n";
        return 2;
    }
    cfg.metrics_interval_ms = *metrics_ms;

    if (cfg.adaptive) {
        if (cfg.k_min < 1 || cfg.k_min > cfg.k_max) {
            std::cerr << "--k-min " << cfg.k_min << " must be in [1, "
                         "--k-max] (" << cfg.k_max << ")\n";
            return 2;
        }
        if (cfg.adapt_interval_ms <= 0) {
            std::cerr << "--adapt-interval-ms must be positive\n";
            return 2;
        }
    }
    for (const auto &pin : cfg.pins) {
        if (!klsm::topo::parse_pin_policy(pin)) {
            std::cerr << "unknown pin policy: " << pin
                      << " (expected none, compact, scatter, or "
                         "numa_fill)\n";
            return 2;
        }
    }
    for (const auto t : cfg.threads_list) {
        if (t < 1) {
            std::cerr << "--threads: " << t << " must be at least 1\n";
            return 2;
        }
        try {
            // Same check the harnesses apply, surfaced as a CLI error
            // instead of an exception mid-benchmark.  Clamp before the
            // narrowing cast: a value above UINT32_MAX must reach the
            // check as "too large", not wrap to a small count.
            klsm::check_thread_capacity(static_cast<unsigned>(
                std::min<std::int64_t>(t, 0xffffffffLL)));
        } catch (const std::invalid_argument &e) {
            std::cerr << "--threads: " << e.what() << "\n";
            return 2;
        }
    }

    if (cfg.smoke) {
        // Small enough for a sanitizer build on a one-core CI runner,
        // large enough to exercise merges, spills, and spying.
        cfg.prefill = 2000;
        cfg.duration_s = 0.05;
        cfg.ops_per_thread = 2000;
        cfg.churn_ops = std::min<std::uint64_t>(cfg.churn_ops, 5000);
        cfg.sample_interval_ms = std::min(cfg.sample_interval_ms, 10.0);
        cfg.nodes = 200;
        cfg.edge_prob = 0.1;
        if (cfg.threads_list.size() > 2)
            cfg.threads_list.resize(2);
        for (auto &t : cfg.threads_list)
            t = std::min<std::int64_t>(t, 4);
        // Smoke doubles as the CI perf probe: latency capture is on by
        // default so every smoke JSON carries a `latency` object.
        if (cfg.latency_sample == 0)
            cfg.latency_sample = 4;
    }

    if (cfg.workload == "service") {
        if (!(cfg.slo_min_rate > 0) || cfg.slo_min_rate > 1) {
            std::cerr << "--slo-min-rate " << cfg.slo_min_rate
                      << " must be in (0, 1]\n";
            return 2;
        }
        // Validate the arrival process once up front (post --smoke
        // shrinking, so the cap sees the real duration) instead of
        // throwing mid-benchmark.  --find-sustainable doubles the rate
        // up to 2^4 times, so its ceiling must clear the cap too.
        for (const auto t : cfg.threads_list) {
            klsm::service::arrival_config acfg;
            acfg.kind = cfg.arrival;
            acfg.rate = cfg.find_sustainable ? cfg.rate * 16 : cfg.rate;
            acfg.duration_s = cfg.duration_s;
            acfg.threads = static_cast<unsigned>(t);
            acfg.spike_fraction = cfg.spike_frac;
            acfg.spike_multiplier = cfg.spike_mult;
            acfg.diurnal_amplitude = cfg.diurnal_amplitude;
            acfg.diurnal_periods = cfg.diurnal_periods;
            try {
                klsm::service::validate_arrival_config(acfg);
            } catch (const std::invalid_argument &e) {
                std::cerr << "service workload: " << e.what() << "\n";
                return 2;
            }
        }
    }

    if (cfg.trace)
        klsm::trace::tracer::instance().enable(cfg.trace_ring);

    klsm::json_reporter json(cfg.workload);
    json.meta().set("k", cfg.k);
    json.meta().set("trace", cfg.trace);
    json.meta().set("metrics_interval_ms", cfg.metrics_interval_ms);
    json.meta().set("mq_stickiness", cfg.mq_stickiness);
    json.meta().set("mq_buffer", cfg.mq_buffer);
    json.meta().set("insert_buffer", cfg.insert_buffer);
    json.meta().set("peek_cache", cfg.peek_cache);
    json.meta().set("seed", cfg.seed);
    json.meta().set("smoke", cfg.smoke);
    json.meta().set("latency_sample", cfg.latency_sample);
    json.meta().set("adaptive", cfg.adaptive);
    json.meta().set("numa_alloc",
                    klsm::mm::numa_alloc_policy_name(cfg.numa_alloc));
    json.meta().set("alloc_stats", cfg.alloc_stats);
    json.meta().set("reclaim",
                    klsm::mm::reclaim::reclaim_policy_name(
                        cfg.reclaim.policy));
    json.meta().set("reclaim_period", cfg.reclaim.maintenance_period);
    json.meta().set("reclaim_grace", cfg.reclaim.grace_inspections);
    json.meta().set("huge_pages", cfg.huge_pages);
    if (cfg.adaptive) {
        json.meta().set("k_min", cfg.k_min);
        json.meta().set("k_max", cfg.k_max);
        json.meta().set("adapt_interval_ms", cfg.adapt_interval_ms);
        if (cfg.rank_budget)
            json.meta().set("rank_budget", cfg.rank_budget);
    }
    // The discovered machine layout: without it, cross-machine JSON
    // reports are not comparable (arXiv:1603.05047's central lesson).
    const auto &sys = klsm::topo::topology::system();
    json.meta().set("topology_source",
                    sys.from_sysfs() ? "sysfs" : "fallback");
    json.meta().set("cpus", sys.num_cpus());
    json.meta().set("packages", sys.num_packages());
    json.meta().set("numa_nodes", sys.num_nodes());
    json.meta().set("cores", sys.num_cores());
    json.meta().set("smt", sys.smt());

    int status;
    if (cfg.workload == "throughput") {
        json.meta().set("insert_percent", cfg.insert_percent);
        json.meta().set("duration_s", cfg.duration_s);
        status = run_throughput_workload(cfg, json);
    } else if (cfg.workload == "quality") {
        json.meta().set("prefill", cfg.prefill);
        json.meta().set("ops_per_thread", cfg.ops_per_thread);
        status = run_quality_workload(cfg, json);
    } else if (cfg.workload == "sssp") {
        status = run_sssp_workload(cfg, json);
    } else if (cfg.workload == "churn") {
        json.meta().set("churn_ops", cfg.churn_ops);
        json.meta().set("sample_interval_ms", cfg.sample_interval_ms);
        json.meta().set("prefill", cfg.prefill);
        status = run_churn_workload(cfg, json);
    } else if (cfg.workload == "service") {
        json.meta().set("arrival",
                        klsm::service::arrival_name(cfg.arrival));
        json.meta().set("rate", cfg.rate);
        json.meta().set("duration_s", cfg.duration_s);
        json.meta().set("insert_percent", cfg.insert_percent);
        json.meta().set("prefill", cfg.prefill);
        json.meta().set("slo_p99_ns", cfg.slo_p99_ns);
        json.meta().set("slo_min_achieved_fraction", cfg.slo_min_rate);
        json.meta().set("find_sustainable", cfg.find_sustainable);
        status = run_service_workload(cfg, json);
    } else {
        std::cerr << "unknown workload: " << cfg.workload
                  << " (expected throughput, quality, sssp, service, "
                     "or churn)\n";
        return 2;
    }
    if (status == 2)
        return 2;

    if (cfg.trace) {
        // Stop recording before draining: the export walks the rings,
        // which is only safe once every instrumented thread is gone.
        klsm::trace::tracer::instance().disable();
        std::ofstream tout(cfg.trace_out);
        if (!tout) {
            std::cerr << "cannot open " << cfg.trace_out
                      << " for writing\n";
            return 2;
        }
        klsm::trace::write_chrome_trace(
            tout, klsm::trace::tracer::instance(), &g_counter_tracks);
    }

    const std::string json_out = cli.get("json-out");
    if (json_out == "-") {
        json.write(std::cout);
    } else if (!json_out.empty()) {
        std::ofstream out(json_out);
        if (!out) {
            std::cerr << "cannot open " << json_out << " for writing\n";
            return 2;
        }
        json.write(out);
    }
    return status;
}
