// Unified benchmark driver.  This translation unit owns only the
// driver skeleton: build the workload registry, register flags (core
// group first, then each workload's own group), resolve the selection,
// hand the core config and reporter to each selected workload, and
// export the trace/JSON artifacts at the end.
//
// Everything workload-specific — flags, validation, smoke shrinking,
// meta annotation, the sweep itself — lives with its registrant in
// bench/workload_*.cpp behind the harness/workload_registry.hpp API.
// Dispatch is a registry lookup; this file compares no workload names.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/workload_registry.hpp"
#include "trace/trace_export.hpp"
#include "trace/tracer.hpp"
#include "util/cli.hpp"

int main(int argc, char **argv) {
    using namespace klsm::bench;

    workload_registry registry;
    register_builtin_workloads(registry);

    klsm::cli_parser cli(
        "Unified k-LSM benchmark driver: one CLI for every structure and "
        "workload, one JSON report per invocation");
    register_core_flags(cli, registry);
    registry.register_flags(cli);
    cli.parse(argc, argv);

    const std::string selection = workload_registry::resolve_alias(
        cli.get("workload"), cli.get("benchmark"));
    std::string resolve_error;
    const auto selected = registry.resolve(selection, &resolve_error);
    if (selected.empty()) {
        std::cerr << resolve_error << "\n";
        return 2;
    }

    core_config cfg;
    cfg.workload = selection;
    if (!parse_core_config(cli, selected, cfg))
        return 2;
    for (const auto *entry : selected)
        if (entry->configure && !entry->configure(cli, cfg))
            return 2;

    if (cfg.trace)
        klsm::trace::tracer::instance().enable(cfg.trace_ring);

    klsm::json_reporter json(selection);
    annotate_core_meta(cfg, json);
    // A comma selection shares one meta block; per-workload settings
    // would collide there, so each record's "workload" field carries
    // the attribution instead.
    if (selected.size() == 1 && selected.front()->annotate_meta)
        selected.front()->annotate_meta(cfg, json.meta());

    int status = 0;
    for (const auto *entry : selected) {
        const int s = entry->run(cfg, json);
        if (s == 2)
            return 2;
        status = std::max(status, s);
    }

    if (cfg.trace) {
        // Stop recording before draining: the export walks the rings,
        // which is only safe once every instrumented thread is gone.
        klsm::trace::tracer::instance().disable();
        std::ofstream tout(cfg.trace_out);
        if (!tout) {
            std::cerr << "cannot open " << cfg.trace_out
                      << " for writing\n";
            return 2;
        }
        klsm::trace::write_chrome_trace(
            tout, klsm::trace::tracer::instance(), &g_counter_tracks);
    }

    const std::string json_out = cli.get("json-out");
    if (json_out == "-") {
        json.write(std::cout);
    } else if (!json_out.empty()) {
        std::ofstream out(json_out);
        if (!out) {
            std::cerr << "cannot open " << json_out << " for writing\n";
            return 2;
        }
        json.write(out);
    }
    return status;
}
