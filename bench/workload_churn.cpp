// The `churn` workload registrant (harness/churn.hpp): a four-phase
// program of key-range shifts, an insert surge, and bursty drains,
// with the queue quiesced and shrunk at every phase boundary.  Each
// record carries a `memory_timeline` object — RSS and pool-counter
// samples over the run plus the derived plateau verdict.  The timeline
// is reported here and *enforced* by scripts/check_memory_schema.py
// --bench-churn (shrink events observed, final RSS on the steady-phase
// plateau), so a soak regression fails CI without making every local
// bench run brittle.

#include <memory>

#include "bench_common.hpp"
#include "harness/churn.hpp"

namespace klsm::bench {
namespace {

struct churn_config {
    std::uint64_t churn_ops = 50000;
    double sample_interval_ms = 50.0;
};

int run(const churn_config &w, const core_config &cfg,
        klsm::json_reporter &json) {
    klsm::table_reporter report({"structure", "pin", "threads", "ops",
                                 "ops/s", "shrinks", "rss_hw_mb",
                                 "plateau"},
                                cfg.csv, table_stream(cfg));
    for (const auto &pin : cfg.pins) {
        const auto cpus = pin_order(pin);
        for (const auto threads_i : cfg.threads_list) {
            const auto threads = static_cast<unsigned>(threads_i);
            for (const auto &name : cfg.structures) {
                const bool ok = with_structure<bench_key, bench_val>(
                    name, threads, build_k(cfg, name), cfg,
                    [&](auto &q) {
                        klsm::churn_params params;
                        params.threads = threads;
                        params.ops_per_phase = w.churn_ops;
                        params.prefill = cfg.prefill;
                        params.seed = cfg.seed;
                        params.sample_interval_s =
                            w.sample_interval_ms / 1000.0;
                        params.pin_cpus = cpus;
                        record_sampling sampling{cfg, threads,
                                                 /*duration_hint_s=*/0};
                        sampling.wire(q, nullptr);
                        params.progress = sampling.progress();
                        KLSM_TRACE_SPAN(rec_span,
                                        klsm::trace::kind::bench_record);
                        rec_span.arg(
                            klsm::trace::clamp16(g_record_index++));
                        sampling.start();
                        const auto res = klsm::run_churn(q, params);
                        const auto &tl = res.timeline;
                        const double ops_per_sec =
                            res.elapsed_s > 0
                                ? static_cast<double>(res.total_ops()) /
                                      res.elapsed_s
                                : 0.0;
                        report.row(
                            name, pin, threads, res.total_ops(),
                            ops_per_sec, tl.shrink_events,
                            static_cast<double>(tl.rss_high_water_bytes) /
                                (1024.0 * 1024.0),
                            !tl.rss_reliable ? "n/a"
                            : tl.plateau_ok  ? "ok"
                                             : "FAIL");
                        auto &rec = json.add_record();
                        rec.set("workload", "churn");
                        rec.set("structure", name);
                        rec.set("pin", pin);
                        rec.set("threads", threads);
                        rec.set("prefill", cfg.prefill);
                        rec.set("ops", res.total_ops());
                        rec.set("inserts", res.inserts);
                        rec.set("deletes", res.deletes);
                        rec.set("failed_deletes", res.failed_deletes);
                        rec.set("pin_failures", res.pin_failures);
                        rec.set("elapsed_s", res.elapsed_s);
                        rec.set("ops_per_sec", ops_per_sec);
                        rec.set_raw("memory_timeline", tl.to_json());
                        sampling.finish(rec,
                                        record_label(name, pin, threads));
                        attach_memory(rec, q, cfg);
                    });
                if (!ok)
                    return 2;
            }
        }
    }
    return 0;
}

} // namespace

workload_entry churn_workload() {
    auto w = std::make_shared<churn_config>();
    workload_entry e;
    e.name = "churn";
    e.summary = "four-phase allocation soak with a memory timeline";
    e.reclaim_soak = true;
    e.register_flags = [](cli_parser &cli) {
        cli.add_flag("churn-ops", "50000",
                     "operations per thread per phase");
        cli.add_flag("sample-interval-ms", "50",
                     "memory-timeline sampling period in milliseconds");
    };
    e.configure = [w](const cli_parser &cli, const core_config &core) {
        w->churn_ops = cli.get_uint64("churn-ops");
        w->sample_interval_ms = cli.get_double("sample-interval-ms");
        if (w->churn_ops == 0) {
            std::cerr << "--churn-ops must be positive\n";
            return false;
        }
        if (w->sample_interval_ms <= 0) {
            std::cerr << "--sample-interval-ms must be positive\n";
            return false;
        }
        if (core.smoke) {
            w->churn_ops = std::min<std::uint64_t>(w->churn_ops, 5000);
            w->sample_interval_ms =
                std::min(w->sample_interval_ms, 10.0);
        }
        return true;
    };
    e.annotate_meta = [w](const core_config &core,
                          klsm::json_record &meta) {
        meta.set("churn_ops", w->churn_ops);
        meta.set("sample_interval_ms", w->sample_interval_ms);
        meta.set("prefill", core.prefill);
    };
    e.run = [w](const core_config &core, klsm::json_reporter &json) {
        return run(*w, core, json);
    };
    return e;
}

} // namespace klsm::bench
