// Figure 4 reproduction: "Execution times for SSSP benchmark for varying
// numbers of threads (k = 256) and values for k (10 threads)" on
// Erdős–Rényi random graphs, comparing the k-LSM against the centralized
// and hybrid k-priority queues of Wimmer et al. [29].
//
// Also reports the paper's Section 6.1 wasted-work metric: "additional
// iterations needed to be performed compared to a sequential execution"
// (expansions beyond the number of reachable nodes).
//
// Paper parameters: --nodes 10000 --edge-prob 0.5 --reps 30
//   left plot:  --sweep threads --threads 1,2,3,5,10,20,40,80 --k 256
//   right plot: --sweep k --k-list 0,1,4,16,64,256,1024,4096,16384
//               --threads 10
// Defaults are scaled down to finish quickly on small machines.

#include <functional>
#include <iostream>
#include <memory>
#include <string>

#include "baselines/centralized_k.hpp"
#include "baselines/hybrid_k.hpp"
#include "graph/dijkstra.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/parallel_sssp.hpp"
#include "harness/reporter.hpp"
#include "klsm/k_lsm.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

struct sssp_run {
    double seconds = 0;
    klsm::sssp_stats stats;
};

template <typename MakeQueue>
sssp_run run_once(const klsm::graph &g, unsigned threads,
                  MakeQueue &&make) {
    klsm::sssp_state state{g.num_nodes()};
    auto pq = make(state);
    klsm::wall_timer timer;
    sssp_run out;
    out.stats = klsm::parallel_sssp(*pq, g, 0, threads, state);
    out.seconds = timer.elapsed_s();
    return out;
}

void report_runs(klsm::table_reporter &report, const std::string &queue,
                 unsigned threads, std::size_t k, const klsm::graph &g,
                 std::uint64_t sequential_settled, int reps,
                 const std::function<sssp_run()> &run) {
    double total = 0, best = -1;
    std::uint64_t extra = 0, stale = 0;
    for (int rep = 0; rep < reps; ++rep) {
        const sssp_run r = run();
        total += r.seconds;
        if (best < 0 || r.seconds < best)
            best = r.seconds;
        extra += r.stats.expansions - sequential_settled;
        stale += r.stats.stale_pops;
    }
    report.row(queue, threads, k, total / reps, best,
               static_cast<double>(extra) / reps,
               static_cast<double>(stale) / reps,
               static_cast<std::uint64_t>(g.num_edges()));
}

} // namespace

int main(int argc, char **argv) {
    klsm::cli_parser cli("Figure 4: parallel SSSP execution time");
    cli.add_flag("nodes", "1000", "graph size n");
    cli.add_flag("edge-prob", "0.5", "Erdos-Renyi edge probability");
    cli.add_flag("max-weight", "100000000", "edge weights in [1, w]");
    cli.add_flag("sweep", "threads", "sweep dimension: threads | k");
    cli.add_flag("threads", "1,2,4", "thread counts (sweep=threads)");
    cli.add_flag("fixed-threads", "4", "thread count (sweep=k)");
    cli.add_flag("k", "256", "relaxation (sweep=threads)");
    cli.add_flag("k-list", "0,1,4,16,64,256,1024,4096,16384",
                 "k values (sweep=k)");
    cli.add_flag("queues", "centralized,hybrid,klsm", "queues to run");
    cli.add_flag("reps", "1", "repetitions");
    cli.add_flag("seed", "42", "graph seed");
    cli.add_flag("csv", "false", "emit CSV instead of a table");
    cli.parse(argc, argv);

    klsm::erdos_renyi_params gp;
    gp.nodes = static_cast<std::uint32_t>(cli.get_int("nodes"));
    gp.edge_probability = cli.get_double("edge-prob");
    gp.max_weight = static_cast<std::uint32_t>(cli.get_int("max-weight"));
    gp.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const klsm::graph g = klsm::make_erdos_renyi(gp);

    const auto ref = klsm::dijkstra(g, 0);
    std::cout << "# Figure 4: SSSP on G(" << gp.nodes << ", "
              << gp.edge_probability << "), " << g.num_edges()
              << " arcs, " << ref.settled
              << " reachable nodes; sequential Dijkstra settles each "
                 "once\n";

    klsm::table_reporter report({"queue", "threads", "k", "time_s",
                                 "best_s", "extra_iter", "stale_pops",
                                 "arcs"},
                                cli.get_bool("csv"));

    const int reps = static_cast<int>(cli.get_int("reps"));
    const auto queues = cli.get_list("queues");

    auto run_point = [&](const std::string &queue, unsigned threads,
                         std::size_t k) {
        if (queue == "centralized") {
            report_runs(report, queue, threads, k, g, ref.settled, reps,
                        [&] {
                            return run_once(g, threads, [&](auto &) {
                                return std::make_unique<
                                    klsm::centralized_k_pq<std::uint64_t,
                                                           std::uint32_t>>(
                                    k);
                            });
                        });
        } else if (queue == "hybrid") {
            report_runs(report, queue, threads, k, g, ref.settled, reps,
                        [&] {
                            return run_once(g, threads, [&](auto &) {
                                return std::make_unique<
                                    klsm::hybrid_k_pq<std::uint64_t,
                                                      std::uint32_t>>(k);
                            });
                        });
        } else if (queue == "klsm") {
            report_runs(
                report, queue, threads, k, g, ref.settled, reps, [&] {
                    return run_once(g, threads, [&](auto &state) {
                        return std::make_unique<klsm::k_lsm<
                            std::uint64_t, std::uint32_t,
                            klsm::sssp_lazy>>(k,
                                              klsm::sssp_lazy{&state});
                    });
                });
        } else {
            std::cerr << "unknown queue: " << queue << "\n";
            std::exit(2);
        }
    };

    if (cli.get("sweep") == "threads") {
        const auto k = static_cast<std::size_t>(cli.get_int("k"));
        for (const auto threads : cli.get_int_list("threads"))
            for (const auto &queue : queues)
                run_point(queue, static_cast<unsigned>(threads), k);
    } else {
        const auto threads =
            static_cast<unsigned>(cli.get_int("fixed-threads"));
        for (const auto k : cli.get_int_list("k-list"))
            for (const auto &queue : queues)
                run_point(queue, threads, static_cast<std::size_t>(k));
    }
    return 0;
}
