// Micro-benchmarks (google-benchmark) for the design choices DESIGN.md
// calls out: versioned item allocation/reuse, block two-way merges,
// Bloom-filter local-ordering checks, stamped-pointer CAS, DistLSM
// insert/merge chains, spying, and single-thread k-LSM operation costs
// across k.  These quantify the component costs behind Figure 3's
// single-thread ordering (DLSM ~ binary heap >> k-LSM(0)).

#include <benchmark/benchmark.h>

#include "baselines/binary_heap.hpp"
#include "klsm/block.hpp"
#include "klsm/dist_lsm.hpp"
#include "klsm/k_lsm.hpp"
#include "mm/item_pool.hpp"
#include "util/bloom_filter.hpp"
#include "util/rng.hpp"
#include "util/stamped_ptr.hpp"

namespace {

using namespace klsm;
using bench_key = std::uint32_t;
using bench_val = std::uint32_t;

void BM_item_pool_alloc_take(benchmark::State &state) {
    item_pool<bench_key, bench_val> pool;
    std::uint32_t i = 0;
    for (auto _ : state) {
        auto ref = pool.allocate(i++, 0);
        benchmark::DoNotOptimize(ref.it);
        ref.take();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_item_pool_alloc_take);

void BM_block_merge(benchmark::State &state) {
    const auto n = static_cast<std::uint32_t>(state.range(0));
    const std::uint32_t pow = block<bench_key, bench_val>::level_for(n);
    item_pool<bench_key, bench_val> pool;
    block<bench_key, bench_val> a{pow}, b{pow}, dst{pow + 1};
    a.reuse_begin(pow);
    b.reuse_begin(pow);
    for (std::uint32_t i = n; i-- > 0;) {
        a.append(pool.allocate(2 * i, 0));
        b.append(pool.allocate(2 * i + 1, 0));
    }
    a.seal();
    b.seal();
    for (auto _ : state) {
        dst.reuse_begin(pow + 1);
        dst.merge_from(a, a.filled(), b, b.filled());
        dst.seal();
        benchmark::DoNotOptimize(dst.filled());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 2 * n);
}
BENCHMARK(BM_block_merge)->Arg(64)->Arg(1024)->Arg(16384);

void BM_bloom_check(benchmark::State &state) {
    block<bench_key, bench_val> b{0};
    b.reuse_begin(0);
    for (std::uint32_t tid = 0; tid < 8; ++tid)
        b.bloom_insert(tid);
    b.seal();
    std::uint32_t tid = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(b.bloom_may_contain(tid));
        tid = (tid + 1) & 63;
    }
}
BENCHMARK(BM_bloom_check);

void BM_stamped_ptr_cas(benchmark::State &state) {
    struct alignas(2048) target {
        int x;
    };
    static target t;
    atomic_stamped_ptr<target> cell;
    std::uint64_t version = 0;
    cell.store({&t, version});
    for (auto _ : state) {
        const stamped_ptr<target> expected{&t, version};
        ++version;
        benchmark::DoNotOptimize(
            cell.compare_exchange(expected, {&t, version}));
    }
}
BENCHMARK(BM_stamped_ptr_cas);

void BM_dist_lsm_insert(benchmark::State &state) {
    dist_lsm_local<bench_key, bench_val> dist;
    xoroshiro128 rng{7};
    auto no_spill = [](block<bench_key, bench_val> *, std::uint32_t) {};
    std::size_t pending = 0;
    for (auto _ : state) {
        dist.insert(static_cast<bench_key>(rng()), 0, 0,
                    dist_lsm_local<bench_key, bench_val>::unbounded, no_lazy{},
                    no_spill);
        if (++pending >= 4096) {
            // Keep the structure bounded: drain.
            state.PauseTiming();
            item_ref<bench_key, bench_val> ref;
            while (!(ref = dist.find_min()).empty())
                ref.take();
            dist.consolidate();
            pending = 0;
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_dist_lsm_insert);

void BM_spy(benchmark::State &state) {
    const auto n = static_cast<std::uint32_t>(state.range(0));
    dist_lsm_local<bench_key, bench_val> victim;
    auto no_spill = [](block<bench_key, bench_val> *, std::uint32_t) {};
    for (std::uint32_t i = 0; i < n; ++i)
        victim.insert(i, 0, 0, dist_lsm_local<bench_key, bench_val>::unbounded,
                      no_lazy{}, no_spill);
    for (auto _ : state) {
        dist_lsm_local<bench_key, bench_val> thief;
        benchmark::DoNotOptimize(
            thief.spy_from(victim, dist_lsm_local<bench_key, bench_val>::unbounded));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_spy)->Arg(256)->Arg(4096);

// Single-thread cost of the full k-LSM vs a plain binary heap — the
// paper's intro comparison (Section 6.1: "the performance of the DLSM is
// close to the binary heap ... k = 0 is significantly slower").
template <typename Q>
void run_pq_churn(benchmark::State &state, Q &q) {
    xoroshiro128 rng{11};
    bench_key k;
    bench_val v;
    // Warm with 4096 elements so deletes hit a populated structure.
    for (int i = 0; i < 4096; ++i)
        q.insert(static_cast<bench_key>(rng()), 0);
    for (auto _ : state) {
        q.insert(static_cast<bench_key>(rng()), 0);
        benchmark::DoNotOptimize(q.try_delete_min(k, v));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 2);
}

void BM_single_thread_binary_heap(benchmark::State &state) {
    struct wrap {
        binary_heap<bench_key, bench_val> h;
        void insert(bench_key k, bench_val v) { h.insert(k, v); }
        bool try_delete_min(bench_key &k, bench_val &v) {
            return h.try_delete_min(k, v);
        }
    } q;
    run_pq_churn(state, q);
}
BENCHMARK(BM_single_thread_binary_heap);

void BM_single_thread_dlsm(benchmark::State &state) {
    dist_pq<bench_key, bench_val> q;
    run_pq_churn(state, q);
}
BENCHMARK(BM_single_thread_dlsm);

void BM_single_thread_klsm(benchmark::State &state) {
    k_lsm<bench_key, bench_val> q{static_cast<std::size_t>(state.range(0))};
    run_pq_churn(state, q);
}
BENCHMARK(BM_single_thread_klsm)->Arg(0)->Arg(4)->Arg(256)->Arg(4096);

} // namespace

BENCHMARK_MAIN();
