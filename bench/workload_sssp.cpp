// The `sssp` workload registrant: label-correcting parallel SSSP on an
// Erdős–Rényi graph, verified against sequential Dijkstra (Figure 4).

#include <memory>

#include "bench_common.hpp"
#include "graph/dijkstra.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/parallel_sssp.hpp"
#include "stats/latency_report.hpp"
#include "util/timer.hpp"

namespace klsm::bench {
namespace {

struct sssp_config {
    std::uint32_t nodes = 1000;
    double edge_prob = 0.05;
};

int run(const sssp_config &w, const core_config &cfg,
        klsm::json_reporter &json) {
    klsm::erdos_renyi_params gp;
    gp.nodes = w.nodes;
    gp.edge_probability = w.edge_prob;
    gp.max_weight = 100000000;
    gp.seed = cfg.seed;
    const klsm::graph g = klsm::make_erdos_renyi(gp);
    const auto ref = klsm::dijkstra(g, 0);
    json.meta().set("nodes", g.num_nodes());
    json.meta().set("arcs", static_cast<std::uint64_t>(g.num_edges()));

    klsm::table_reporter report({"structure", "pin", "threads", "time_s",
                                 "expansions", "stale_pops",
                                 "mismatches"},
                                cfg.csv, table_stream(cfg));
    int status = 0;
    // Runs one (structure, pin, threads) point on a caller-created state;
    // the k-LSM needs the state before queue construction to wire in
    // lazy deletion, the other structures don't care.
    auto run_one = [&](const std::string &name, const std::string &pin,
                       const std::vector<std::uint32_t> &cpus,
                       unsigned threads, klsm::sssp_state &state,
                       auto &q, auto adaptor) {
        klsm::stats::latency_recorder_set recs{threads,
                                               cfg.latency_sample};
        std::function<void()> adapt_tick;
        if constexpr (is_adaptor_v<decltype(adaptor)>)
            adapt_tick = [adaptor] { adaptor->tick(); };
        klsm::wall_timer timer;
        const auto stats = klsm::parallel_sssp(
            q, g, 0, threads, state, cpus, &recs, adapt_tick,
            cfg.adapt_interval_ms / 1000.0);
        const double seconds = timer.elapsed_s();
        std::uint64_t mismatches = 0;
        for (std::uint32_t u = 0; u < g.num_nodes(); ++u)
            mismatches += (state.dist(u) != ref.dist[u]);
        report.row(name, pin, threads, seconds, stats.expansions,
                   stats.stale_pops, mismatches);
        auto &rec = json.add_record();
        rec.set("workload", "sssp");
        rec.set("structure", name);
        rec.set("pin", pin);
        rec.set("threads", threads);
        rec.set("time_s", seconds);
        rec.set("expansions", stats.expansions);
        rec.set("stale_pops", stats.stale_pops);
        rec.set("pin_failures", stats.pin_failures);
        rec.set("mismatches", mismatches);
        if (recs.enabled())
            rec.set_raw("latency", klsm::stats::latency_json(recs));
        if constexpr (is_adaptor_v<decltype(adaptor)>)
            rec.set_raw("adaptation", adaptor->json());
        attach_memory(rec, q, cfg);
        if (mismatches) {
            std::cerr << "SSSP MISMATCH: " << name << " with " << threads
                      << " threads disagrees with Dijkstra on "
                      << mismatches << " nodes\n";
            status = 1;
        }
    };
    for (const auto &pin : cfg.pins) {
        const auto cpus = pin_order(pin);
        for (const auto threads_i : cfg.threads_list) {
            const auto threads = static_cast<unsigned>(threads_i);
            for (const auto &name : cfg.structures) {
                if (name == "klsm") {
                    // Paper Section 4.5: superseded (distance, node)
                    // entries are dropped when the k-LSM rebuilds blocks.
                    klsm::sssp_state state{g.num_nodes()};
                    klsm::k_lsm<std::uint64_t, std::uint32_t,
                                klsm::sssp_lazy>
                        q{build_k(cfg, name), klsm::sssp_lazy{&state},
                          family_placement(cfg)};
                    with_adaptation(q, cfg, name, threads,
                                    [&](auto adaptor) {
                                        run_one(name, pin, cpus, threads,
                                                state, q, adaptor);
                                    });
                    continue;
                }
                klsm::sssp_state state{g.num_nodes()};
                const bool ok =
                    with_structure<std::uint64_t, std::uint32_t>(
                        name, threads, build_k(cfg, name),
                        cfg, [&](auto &q) {
                            with_adaptation(
                                q, cfg, name, threads, [&](auto adaptor) {
                                    run_one(name, pin, cpus, threads,
                                            state, q, adaptor);
                                });
                        });
                if (!ok)
                    return 2;
            }
        }
    }
    return status;
}

} // namespace

workload_entry sssp_workload() {
    auto w = std::make_shared<sssp_config>();
    workload_entry e;
    e.name = "sssp";
    e.summary = "parallel SSSP vs sequential Dijkstra (Figure 4)";
    e.register_flags = [](cli_parser &cli) {
        cli.add_flag("nodes", "1000", "graph size");
        cli.add_flag("edge-prob", "0.05", "edge probability");
    };
    e.configure = [w](const cli_parser &cli, const core_config &core) {
        if (core.smoke) {
            w->nodes = 200;
            w->edge_prob = 0.1;
        } else {
            w->nodes = static_cast<std::uint32_t>(cli.get_int("nodes"));
            w->edge_prob = cli.get_double("edge-prob");
        }
        return true;
    };
    e.run = [w](const core_config &core, klsm::json_reporter &json) {
        return run(*w, core, json);
    };
    return e;
}

} // namespace klsm::bench
