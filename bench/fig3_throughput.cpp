// Figure 3 reproduction: "Throughput per Thread per second for priority
// queues prefilled with 10^6 (left) and 10^7 (right) elements", 50/50
// insert/delete-min mix of uniform random keys.
//
// Queues benchmarked, as in the paper: Heap + Lock, Lindén & Jonsson,
// SprayList, MultiQueue (c = 2), k-LSM with k in {0, 4, 256, 4096}, and
// the standalone DLSM.
//
// Defaults are scaled down so the binary terminates in about a minute on
// a laptop-class machine; reproduce the paper's axes with
//   fig3_throughput --prefill 1000000  --duration 10 --reps 30 --threads 1,2,3,5,10,20,40,80
//   fig3_throughput --prefill 10000000 --duration 10 --reps 30 --threads 1,2,3,5,10,20,40,80

#include <functional>
#include <iostream>
#include <memory>

#include "baselines/linden.hpp"
#include "baselines/multiqueue.hpp"
#include "baselines/spin_heap.hpp"
#include "baselines/spraylist.hpp"
#include "harness/reporter.hpp"
#include "harness/throughput.hpp"
#include "klsm/k_lsm.hpp"
#include "util/cli.hpp"

namespace {

using bench_key = std::uint32_t;
using bench_val = std::uint32_t;

struct run_config {
    std::size_t prefill;
    unsigned threads;
    double duration;
    int reps;
    std::uint64_t seed;
};

template <typename PQ, typename Make>
void run_queue(const std::string &name, const run_config &cfg,
               klsm::table_reporter &report, Make &&make) {
    double best_per_thread = 0;
    double sum_per_thread = 0;
    std::uint64_t failed = 0;
    for (int rep = 0; rep < cfg.reps; ++rep) {
        std::unique_ptr<PQ> q = make();
        klsm::prefill_queue(*q, cfg.prefill, cfg.seed + rep);
        klsm::throughput_params params;
        params.prefill = cfg.prefill;
        params.threads = cfg.threads;
        params.duration_s = cfg.duration;
        params.seed = cfg.seed + 1000 * rep;
        const auto res = klsm::run_throughput(*q, params);
        const double per_thread = res.ops_per_thread_per_sec(cfg.threads);
        sum_per_thread += per_thread;
        if (per_thread > best_per_thread)
            best_per_thread = per_thread;
        failed += res.failed_deletes;
    }
    report.row(name, cfg.threads, cfg.prefill,
               sum_per_thread / cfg.reps, best_per_thread, failed);
}

} // namespace

int main(int argc, char **argv) {
    klsm::cli_parser cli(
        "Figure 3: 50/50 throughput benchmark on prefilled queues");
    cli.add_flag("prefill", "100000", "keys inserted before timing");
    cli.add_flag("threads", "1,2,4", "comma-separated thread counts");
    cli.add_flag("duration", "0.1", "seconds per measurement");
    cli.add_flag("reps", "1", "repetitions per configuration");
    cli.add_flag("queues",
                 "heap_lock,linden,spray,multiq,klsm0,klsm4,klsm256,"
                 "klsm4096,dlsm",
                 "queues to benchmark");
    cli.add_flag("seed", "1", "base RNG seed");
    cli.add_flag("csv", "false", "emit CSV instead of a table");
    cli.parse(argc, argv);

    const auto threads_list = cli.get_int_list("threads");
    const auto queues = cli.get_list("queues");

    std::cout << "# Figure 3: throughput/thread/s, insert:delete = 50:50, "
                 "prefill = "
              << cli.get_int("prefill") << "\n";
    klsm::table_reporter report({"queue", "threads", "prefill",
                                 "ops/thread/s", "best", "failed_dels"},
                                cli.get_bool("csv"));

    for (const auto threads : threads_list) {
        run_config cfg{};
        cfg.prefill = static_cast<std::size_t>(cli.get_int("prefill"));
        cfg.threads = static_cast<unsigned>(threads);
        cfg.duration = cli.get_double("duration");
        cfg.reps = static_cast<int>(cli.get_int("reps"));
        cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

        for (const auto &name : queues) {
            if (name == "heap_lock") {
                run_queue<klsm::spin_heap<bench_key, bench_val>>(
                    name, cfg, report, [] {
                        return std::make_unique<
                            klsm::spin_heap<bench_key, bench_val>>();
                    });
            } else if (name == "linden") {
                run_queue<klsm::linden_pq<bench_key, bench_val>>(
                    name, cfg, report, [] {
                        return std::make_unique<
                            klsm::linden_pq<bench_key, bench_val>>(32);
                    });
            } else if (name == "spray") {
                run_queue<klsm::spray_pq<bench_key, bench_val>>(
                    name, cfg, report, [&] {
                        return std::make_unique<
                            klsm::spray_pq<bench_key, bench_val>>(cfg.threads);
                    });
            } else if (name == "multiq") {
                run_queue<klsm::multiqueue<bench_key, bench_val>>(
                    name, cfg, report, [&] {
                        return std::make_unique<
                            klsm::multiqueue<bench_key, bench_val>>(cfg.threads,
                                                            2);
                    });
            } else if (name.rfind("klsm", 0) == 0) {
                const std::size_t k = std::stoull(name.substr(4));
                run_queue<klsm::k_lsm<bench_key, bench_val>>(
                    name, cfg, report, [k] {
                        return std::make_unique<
                            klsm::k_lsm<bench_key, bench_val>>(k);
                    });
            } else if (name == "dlsm") {
                run_queue<klsm::dist_pq<bench_key, bench_val>>(
                    name, cfg, report, [] {
                        return std::make_unique<
                            klsm::dist_pq<bench_key, bench_val>>();
                    });
            } else {
                std::cerr << "unknown queue: " << name << "\n";
                return 2;
            }
        }
    }
    return 0;
}
