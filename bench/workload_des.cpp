// The `des` workload registrant: PHOLD-style parallel discrete-event
// simulation (src/workloads/des.hpp).  Each committed event schedules a
// successor, so the queue stays at a fixed population while virtual
// time advances.  The scalar is events/sec at a fixed
// causality-violation budget: relaxation trades commit rate against
// out-of-timestamp-order executions, and the record carries both sides
// of that trade.

#include <memory>
#include <sstream>
#include <stdexcept>

#include "bench_common.hpp"
#include "stats/latency_report.hpp"
#include "workloads/des.hpp"

namespace klsm::bench {
namespace {

struct des_config {
    std::uint32_t lps = 256;
    // Above the adaptive k ceiling (4096): a population the local
    // components can absorb whole never exercises the shared ordering,
    // which flattens the k-vs-violations curve the workload exists to
    // measure.
    std::uint64_t population = 8192;
    std::uint64_t target_events = 200000;
    std::uint64_t lookahead = 0;
    std::uint64_t mean_delay = 64;
    // Sized so the k-LSM's default operating point (k=256) passes with
    // margin while the heavily relaxed regimes (k >= 1024) flip the
    // verdict — see the k sweep in tests/workloads.
    double budget = 0.15;
};

std::string des_json(const des_config &w,
                     const klsm::workloads::des_result &res,
                     bool budget_ok) {
    std::ostringstream out;
    out << "{\"lps\":" << w.lps
        << ",\"population\":" << w.population
        << ",\"target_events\":" << w.target_events
        << ",\"committed\":" << res.committed
        << ",\"scheduled\":" << res.scheduled
        << ",\"failed_pops\":" << res.failed_pops
        << ",\"violations\":" << res.violations
        << ",\"violation_fraction\":" << res.violation_fraction()
        << ",\"lookahead\":" << w.lookahead
        << ",\"mean_delay\":" << w.mean_delay
        << ",\"budget\":" << w.budget
        << ",\"budget_ok\":" << (budget_ok ? "true" : "false")
        << ",\"max_lag\":" << res.max_lag
        << ",\"virtual_time\":" << res.virtual_time << "}";
    return out.str();
}

int run(const des_config &w, const core_config &cfg,
        klsm::json_reporter &json) {
    klsm::table_reporter report({"structure", "pin", "threads", "events/s",
                                 "violations", "viol_frac", "max_lag",
                                 "budget"},
                                cfg.csv, table_stream(cfg));
    for (const auto &pin : cfg.pins) {
        const auto cpus = pin_order(pin);
        for (const auto threads_i : cfg.threads_list) {
            const auto threads = static_cast<unsigned>(threads_i);
            for (const auto &name : cfg.structures) {
                const bool ok = with_structure<std::uint64_t,
                                               std::uint64_t>(
                    name, threads, build_k(cfg, name), cfg,
                    [&](auto &q) {
                        with_adaptation(q, cfg, name, threads, [&](
                                            auto adaptor) {
                        klsm::workloads::des_params params;
                        params.lps = w.lps;
                        params.population = w.population;
                        params.target_events = w.target_events;
                        params.lookahead = w.lookahead;
                        params.mean_delay = w.mean_delay;
                        params.threads = threads;
                        params.seed = cfg.seed;
                        params.pin_cpus = cpus;
                        klsm::stats::latency_recorder_set recs{
                            threads, cfg.latency_sample};
                        params.latency = &recs;
                        if constexpr (is_adaptor_v<decltype(adaptor)>) {
                            params.on_adapt_tick = [adaptor] {
                                adaptor->tick();
                            };
                            params.adapt_tick_s =
                                cfg.adapt_interval_ms / 1000.0;
                        }
                        record_sampling sampling{cfg, threads,
                                                 /*duration_hint_s=*/0};
                        sampling.wire(q, adaptor);
                        params.progress = sampling.progress();
                        KLSM_TRACE_SPAN(rec_span,
                                        klsm::trace::kind::bench_record);
                        rec_span.arg(
                            klsm::trace::clamp16(g_record_index++));
                        sampling.start();
                        const auto res =
                            klsm::workloads::run_des(q, params);
                        // The budget is a reporting threshold, not a
                        // correctness gate: PHOLD stays valid under
                        // reordering, so the verdict is recorded here
                        // and *enforced* by compare_bench.py (an
                        // ok→fail flip between baseline and candidate
                        // is a regression).
                        const bool budget_ok =
                            res.violation_fraction() <= w.budget;
                        report.row(name, pin, threads,
                                   res.events_per_sec(), res.violations,
                                   res.violation_fraction(), res.max_lag,
                                   budget_ok ? "ok" : "over");
                        auto &rec = json.add_record();
                        rec.set("workload", "des");
                        rec.set("structure", name);
                        rec.set("pin", pin);
                        rec.set("threads", threads);
                        rec.set("ops", res.committed);
                        rec.set("pin_failures", res.pin_failures);
                        rec.set("elapsed_s", res.elapsed_s);
                        rec.set("events_per_sec", res.events_per_sec());
                        rec.set("ops_per_sec", res.events_per_sec());
                        rec.set_raw("des", des_json(w, res, budget_ok));
                        if (recs.enabled())
                            rec.set_raw("latency",
                                        klsm::stats::latency_json(recs));
                        sampling.finish(rec,
                                        record_label(name, pin, threads));
                        if constexpr (is_adaptor_v<decltype(adaptor)>)
                            rec.set_raw("adaptation", adaptor->json());
                        attach_memory(rec, q, cfg);
                        });
                    });
                if (!ok)
                    return 2;
            }
        }
    }
    return 0;
}

} // namespace

workload_entry des_workload() {
    auto w = std::make_shared<des_config>();
    workload_entry e;
    e.name = "des";
    e.summary = "PHOLD discrete-event simulation at a violation budget";
    e.register_flags = [](cli_parser &cli) {
        cli.add_flag("des-lps", "256",
                     "logical processes (independent simulated clocks)");
        cli.add_flag("des-population", "8192",
                     "event population kept in flight (keep above k so "
                     "relaxation is actually exercised)");
        cli.add_flag("des-events", "200000",
                     "committed events before the run stops");
        cli.add_flag("des-lookahead", "0",
                     "timestamp slack tolerated before a pop counts as "
                     "a causality violation");
        cli.add_flag("des-mean-delay", "64",
                     "mean virtual-time increment per scheduled event");
        cli.add_flag("des-budget", "0.15",
                     "violation fraction at or under which the record "
                     "reports budget_ok");
    };
    e.configure = [w](const cli_parser &cli, const core_config &core) {
        const auto lps = cli.get_int("des-lps");
        if (lps < 1 || lps > 65535) {
            std::cerr << "--des-lps " << lps
                      << " must be in [1, 65535]\n";
            return false;
        }
        w->lps = static_cast<std::uint32_t>(lps);
        w->population = cli.get_uint64("des-population");
        w->target_events = cli.get_uint64("des-events");
        w->lookahead = cli.get_uint64("des-lookahead");
        w->mean_delay = cli.get_uint64("des-mean-delay");
        w->budget = cli.get_double("des-budget");
        if (w->population == 0 || w->target_events == 0) {
            std::cerr << "--des-population and --des-events must be "
                         "positive\n";
            return false;
        }
        if (w->mean_delay == 0) {
            std::cerr << "--des-mean-delay must be positive\n";
            return false;
        }
        if (w->budget < 0.0 || w->budget > 1.0) {
            std::cerr << "--des-budget must be in [0, 1]\n";
            return false;
        }
        if (core.smoke) {
            w->target_events =
                std::min<std::uint64_t>(w->target_events, 20000);
            // Not shrunk below the k ceiling: a sub-k population makes
            // every k look perfect (nothing spills to the shared
            // component), and seeding 8192 events is cheap anyway.
            w->population = std::min<std::uint64_t>(w->population, 8192);
        }
        return true;
    };
    e.annotate_meta = [w](const core_config &core,
                          klsm::json_record &meta) {
        meta.set("des_lps", w->lps);
        meta.set("des_population", w->population);
        meta.set("des_target_events", w->target_events);
        meta.set("des_lookahead", w->lookahead);
        meta.set("des_mean_delay", w->mean_delay);
        meta.set("des_budget", w->budget);
        (void)core;
    };
    e.run = [w](const core_config &core, klsm::json_reporter &json) {
        return run(*w, core, json);
    };
    return e;
}

} // namespace klsm::bench
