// The `throughput` workload registrant: the paper's 50/50
// insert/delete-min mix (Section 6, Figure 3) behind the workload
// registry.

#include <memory>

#include "bench_common.hpp"
#include "harness/throughput.hpp"
#include "stats/latency_report.hpp"

namespace klsm::bench {
namespace {

struct throughput_config {
    double duration_s = 0.1;
    unsigned insert_percent = 50;
};

int run(const throughput_config &w, const core_config &cfg,
        klsm::json_reporter &json) {
    klsm::table_reporter report({"structure", "pin", "threads", "prefill",
                                 "ops/s", "ops/thread/s", "failed_dels"},
                                cfg.csv, table_stream(cfg));
    for (const auto &pin : cfg.pins) {
        const auto cpus = pin_order(pin);
        for (const auto threads_i : cfg.threads_list) {
            const auto threads = static_cast<unsigned>(threads_i);
            for (const auto &name : cfg.structures) {
                const bool ok = with_structure<bench_key, bench_val>(
                    name, threads, build_k(cfg, name), cfg,
                    [&](auto &q) {
                        klsm::prefill_queue(q, cfg.prefill, cfg.seed);
                        with_adaptation(q, cfg, name, threads, [&](
                                            auto adaptor) {
                        klsm::throughput_params params;
                        params.prefill = cfg.prefill;
                        params.threads = threads;
                        params.duration_s = w.duration_s;
                        params.insert_percent = w.insert_percent;
                        params.seed = cfg.seed;
                        params.pin_cpus = cpus;
                        klsm::stats::latency_recorder_set recs{
                            threads, cfg.latency_sample};
                        params.latency = &recs;
                        if constexpr (is_adaptor_v<decltype(adaptor)>) {
                            params.on_adapt_tick = [adaptor] {
                                adaptor->tick();
                            };
                            params.adapt_tick_s =
                                cfg.adapt_interval_ms / 1000.0;
                        }
                        record_sampling sampling{cfg, threads,
                                                 w.duration_s};
                        sampling.wire(q, adaptor);
                        params.progress = sampling.progress();
                        KLSM_TRACE_SPAN(rec_span,
                                        klsm::trace::kind::bench_record);
                        rec_span.arg(
                            klsm::trace::clamp16(g_record_index++));
                        sampling.start();
                        const auto res = klsm::run_throughput(q, params);
                        report.row(name, pin, threads, cfg.prefill,
                                   res.ops_per_sec(),
                                   res.ops_per_thread_per_sec(threads),
                                   res.failed_deletes);
                        auto &rec = json.add_record();
                        rec.set("workload", "throughput");
                        rec.set("structure", name);
                        rec.set("pin", pin);
                        rec.set("threads", threads);
                        rec.set("prefill", cfg.prefill);
                        rec.set("ops", res.total_ops);
                        rec.set("inserts", res.inserts);
                        rec.set("deletes", res.deletes);
                        rec.set("failed_deletes", res.failed_deletes);
                        rec.set("pin_failures", res.pin_failures);
                        rec.set("elapsed_s", res.elapsed_s);
                        rec.set("ops_per_sec", res.ops_per_sec());
                        if (recs.enabled())
                            rec.set_raw("latency",
                                        klsm::stats::latency_json(recs));
                        sampling.finish(rec,
                                        record_label(name, pin, threads));
                        if constexpr (is_adaptor_v<decltype(adaptor)>)
                            rec.set_raw("adaptation", adaptor->json());
                        attach_memory(rec, q, cfg);
                        });
                    });
                if (!ok)
                    return 2;
            }
        }
    }
    return 0;
}

} // namespace

workload_entry throughput_workload() {
    auto w = std::make_shared<throughput_config>();
    workload_entry e;
    e.name = "throughput";
    e.summary = "the paper's 50/50 insert/delete-min mix (Figure 3)";
    e.register_flags = [](cli_parser &cli) {
        cli.add_flag("duration", "0.1",
                     "seconds per measurement window (the service "
                     "workload reads this too)");
        cli.add_flag("insert-pct", "50",
                     "percent inserts (the service workload reads this "
                     "too)");
    };
    e.configure = [w](const cli_parser &cli, const core_config &core) {
        w->duration_s =
            core.smoke ? 0.05 : cli.get_double("duration");
        const auto pct = cli.get_int("insert-pct");
        if (pct < 0 || pct > 100) {
            std::cerr << "--insert-pct " << pct
                      << " must be in [0, 100]\n";
            return false;
        }
        w->insert_percent = static_cast<unsigned>(pct);
        return true;
    };
    e.annotate_meta = [w](const core_config &core,
                          klsm::json_record &meta) {
        meta.set("insert_percent", w->insert_percent);
        meta.set("duration_s", w->duration_s);
        (void)core;
    };
    e.run = [w](const core_config &core, klsm::json_reporter &json) {
        return run(*w, core, json);
    };
    return e;
}

} // namespace klsm::bench
