#pragma once

// Shared machinery for the klsm_bench workload registrants
// (bench/workload_*.cpp): structure construction, pinning, adaptive-k
// attachment, per-record metrics sampling, and the core CLI layer.
//
// The driver (klsm_bench.cpp) owns none of this — it builds the
// registry, parses flags, and dispatches; every workload-specific
// decision lives with the workload that owns it (see
// harness/workload_registry.hpp for the API contract).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <type_traits>
#include <vector>

#include "adapt/adaptive.hpp"
#include "baselines/centralized_k.hpp"
#include "baselines/hybrid_k.hpp"
#include "baselines/linden.hpp"
#include "baselines/multiqueue.hpp"
#include "baselines/spin_heap.hpp"
#include "baselines/spraylist.hpp"
#include "harness/bench_config.hpp"
#include "harness/reporter.hpp"
#include "harness/workload_registry.hpp"
#include "klsm/k_lsm.hpp"
#include "klsm/numa_klsm.hpp"
#include "klsm/pq_concept.hpp"
#include "mm/alloc_stats.hpp"
#include "mm/placement.hpp"
#include "topo/pinning.hpp"
#include "topo/topology.hpp"
#include "trace/metrics_sampler.hpp"
#include "trace/progress.hpp"
#include "trace/tracer.hpp"
#include "util/cli.hpp"

namespace klsm::bench {

using bench_key = std::uint32_t;
using bench_val = std::uint32_t;

/// Parse a --metrics-interval value into milliseconds.  A bare number
/// is milliseconds; "us" / "ms" / "s" suffixes rescale.  Empty or zero
/// disables the sampler.  nullopt: malformed.
std::optional<double> parse_interval_ms(const std::string &text);

/// Counter tracks accumulated across every record of the run, merged
/// into the Chrome-trace export as ph:"C" series.  Track names carry
/// the record label so sweep points stay distinguishable on one
/// timeline.
extern std::vector<klsm::trace::counter_series> g_counter_tracks;

/// Dense index of the measured record currently running, carried as
/// the `bench_record` span argument so the trace timeline shows which
/// sweep point each burst of events belongs to.
extern std::uint32_t g_record_index;

/// The sampling period one record actually runs with: the requested
/// period, clamped so a duration-bounded run still yields ~16 rows
/// (smoke runs last 50 ms; a 50 ms period would sample them twice).
/// `duration_hint_s` <= 0 means the run length is op-bounded and
/// unknown, so the request stands.
inline double effective_metrics_interval_s(const core_config &cfg,
                                           double duration_hint_s) {
    double s = cfg.metrics_interval_ms / 1000.0;
    if (duration_hint_s > 0)
        s = std::min(s, duration_hint_s / 16.0);
    return std::max(s, 1e-4);
}

/// The placement the non-sharded k-LSM structures use: the configured
/// policy targeted at the constructing thread's current node (the only
/// sensible single target; numa_klsm overrides per shard).  Reclamation
/// and huge-page settings ride inside the placement.
inline klsm::mm::mem_placement family_placement(const core_config &cfg) {
    return {cfg.numa_alloc,
            klsm::topo::current_node(klsm::topo::topology::system()),
            cfg.huge_pages, cfg.reclaim};
}

/// Construct the structure named `name` for key/value types K, V and
/// invoke `fn(queue)`.  Returns false (after printing to stderr) for an
/// unknown name so the caller can exit with a usage error.
template <typename K, typename V, typename Fn>
bool with_structure(const std::string &name, unsigned threads,
                    std::size_t k, const core_config &cfg, Fn &&fn) {
    if (name == "klsm") {
        klsm::k_lsm<K, V> q{k, {}, family_placement(cfg)};
        q.set_buffer_depth(cfg.insert_buffer);
        q.set_peek_cache_depth(cfg.peek_cache);
        fn(q);
    } else if (name == "dlsm") {
        klsm::dist_pq<K, V> q{family_placement(cfg)};
        fn(q);
    } else if (name == "multiqueue") {
        klsm::multiqueue<K, V> q{threads, 2, cfg.mq_stickiness,
                                 cfg.mq_buffer};
        fn(q);
    } else if (name == "linden") {
        klsm::linden_pq<K, V> q{32};
        fn(q);
    } else if (name == "spraylist") {
        klsm::spray_pq<K, V> q{threads};
        fn(q);
    } else if (name == "heap") {
        klsm::spin_heap<K, V> q;
        fn(q);
    } else if (name == "centralized") {
        klsm::centralized_k_pq<K, V> q{k};
        fn(q);
    } else if (name == "hybrid") {
        klsm::hybrid_k_pq<K, V> q{k};
        fn(q);
    } else if (name == "numa_klsm") {
        klsm::numa_klsm<K, V> q{k, klsm::topo::topology::system(), {},
                                cfg.numa_alloc, cfg.reclaim,
                                cfg.huge_pages};
        fn(q);
    } else {
        std::cerr << "unknown structure: " << name
                  << " (expected klsm, dlsm, multiqueue, linden, "
                     "spraylist, heap, centralized, hybrid, or "
                     "numa_klsm)\n";
        return false;
    }
    return true;
}

/// Resolve a pinning-policy name against the live machine topology;
/// empty order means "do not pin".
std::vector<std::uint32_t> pin_order(const std::string &policy);

/// The k the structure is constructed with: adaptive runs start
/// dynamic-k structures at --k clamped into [k_min, k_max] and walk
/// from there — up under publish contention, down when the contention
/// signal stays quiet (so the trajectory moves in both regimes); every
/// other combination keeps the fixed --k.
inline std::size_t build_k(const core_config &cfg,
                           const std::string &name) {
    const bool dynamic = name == "klsm" || name == "numa_klsm";
    if (!cfg.adaptive || !dynamic)
        return cfg.k;
    return std::clamp(cfg.k, cfg.k_min, cfg.k_max);
}

/// Run `body(adaptor)` with an adaptive-k control loop attached when
/// --adaptive is on and the structure supports dynamic k; `body`
/// receives a queue_adaptor pointer, or nullptr (as std::nullptr_t)
/// when running fixed-k.  The adaptor outlives the body, so hooks that
/// capture it (harness tickers) stay valid for the whole run.
template <typename PQ, typename Body>
void with_adaptation(PQ &q, const core_config &cfg,
                     const std::string &name, unsigned threads,
                     Body &&body) {
    if constexpr (klsm::adapt::adaptive_capable<PQ>) {
        if (cfg.adaptive) {
            klsm::adapt::k_controller_config acfg;
            acfg.k_min = cfg.k_min;
            acfg.k_max = cfg.k_max;
            acfg.rank_budget = cfg.rank_budget;
            klsm::adapt::queue_adaptor<PQ> adaptor{q, acfg, threads};
            body(&adaptor);
            return;
        }
    } else {
        // Once per structure, not once per (pin, threads) sweep point:
        // the note would otherwise drown real warnings in a big sweep.
        static std::set<std::string> noted;
        if (cfg.adaptive && noted.insert(name).second)
            std::cerr << "note: " << name
                      << " has no dynamic k; --adaptive runs it fixed\n";
    }
    body(nullptr);
}

/// True iff `adaptor` (from with_adaptation) is a live adaptor rather
/// than the fixed-k nullptr.
template <typename A>
constexpr bool is_adaptor_v =
    !std::is_same_v<std::decay_t<A>, std::nullptr_t>;

/// Attach the `memory` telemetry object to a record when --alloc-stats
/// is on and the structure exposes pool telemetry (the k-LSM family).
/// Residency is queried here, after the harness joined its workers, so
/// the quiescent-only region walk is safe.
template <typename PQ>
void attach_memory(klsm::json_record &rec, PQ &q,
                   const core_config &cfg) {
    if (!cfg.alloc_stats)
        return;
    if constexpr (klsm::pool_backed<PQ>) {
        rec.set_raw("memory", klsm::mm::memory_json(q.memory_stats(true),
                                                    cfg.numa_alloc));
    }
}

/// One record's metrics-sampling machinery (src/trace/): the progress
/// slots the harness workers publish into, the ticker-driven sampler,
/// and — for k-LSM-family runs without an adaptive controller — a
/// standalone contention monitor attached for the record's duration.
/// Construct, wire(q, adaptor), point the harness params at
/// progress(), run between start() and finish(rec, label).
///
/// Every probe reads only concurrent-safe state (relaxed atomics,
/// monitor totals, quiescence-free memory_stats(false)), so the
/// sampler thread can run while the workers do.
class record_sampling {
public:
    record_sampling(const core_config &cfg, unsigned threads,
                    double duration_hint_s)
        : enabled_(cfg.metrics_interval_ms > 0), trace_(cfg.trace),
          progress_(threads),
          sampler_(effective_metrics_interval_s(cfg, duration_hint_s),
                   cfg.metrics_interval_ms / 1000.0) {}

    ~record_sampling() {
        if (detach_)
            detach_();
    }

    record_sampling(const record_sampling &) = delete;
    record_sampling &operator=(const record_sampling &) = delete;

    bool enabled() const { return enabled_; }
    klsm::trace::progress_counters *progress() {
        return enabled_ ? &progress_ : nullptr;
    }
    klsm::trace::metrics_sampler &sampler() { return sampler_; }

    /// Wire the probe set that makes sense for this structure:
    /// queue-agnostic op counters from the progress slots; the k-LSM
    /// family's contention hit mix (the adaptor's monitors when one is
    /// live, a standalone monitor otherwise); current-k and pool-size
    /// gauges where the structure exposes them.
    template <typename PQ, typename Adaptor>
    void wire(PQ &q, Adaptor adaptor) {
        if (!enabled_)
            return;
        sampler_.add_counter("ops", [this] {
            return static_cast<double>(progress_.total_ops());
        });
        sampler_.add_counter("failed_deletes", [this] {
            return static_cast<double>(progress_.total_failed());
        });
        if constexpr (is_adaptor_v<Adaptor>) {
            auto *a = adaptor;
            const auto win = [a] {
                klsm::adapt::contention_window sum;
                for (std::uint32_t s = 0; s < a->shards(); ++s) {
                    const auto t = a->shard_window(s);
                    sum.publishes += t.publishes;
                    sum.publish_retries += t.publish_retries;
                    sum.shared_hits += t.shared_hits;
                    sum.local_hits += t.local_hits;
                    sum.spies += t.spies;
                    sum.fail_rate_ewma =
                        std::max(sum.fail_rate_ewma, t.fail_rate_ewma);
                    sum.shared_fraction_ewma =
                        std::max(sum.shared_fraction_ewma,
                                 t.shared_fraction_ewma);
                }
                return sum;
            };
            add_contention_probes(win);
            sampler_.add_gauge("current_k", [a] {
                return static_cast<double>(a->current_k());
            });
        } else if constexpr (klsm::adapt::adaptable<PQ>) {
            monitor_ =
                std::make_unique<klsm::adapt::contention_monitor>();
            q.set_monitor(monitor_.get());
            detach_ = [&q] { q.set_monitor(nullptr); };
            wire_standalone_monitor();
        } else if constexpr (klsm::adapt::sharded_adaptable<PQ>) {
            // One aggregate monitor across shards: count() only ever
            // touches the calling thread's private slot, so sharing
            // the monitor merely merges the shard mixes — which is
            // the queue-wide view the sampler wants anyway.
            monitor_ =
                std::make_unique<klsm::adapt::contention_monitor>();
            for (std::uint32_t s = 0; s < q.num_shards(); ++s)
                q.shard(s).set_monitor(monitor_.get());
            detach_ = [&q] {
                for (std::uint32_t s = 0; s < q.num_shards(); ++s)
                    q.shard(s).set_monitor(nullptr);
            };
            wire_standalone_monitor();
        }
        if constexpr (klsm::pool_backed<PQ>) {
            const auto pools = [&q] {
                const klsm::mm::memory_stats m = q.memory_stats(false);
                klsm::mm::pool_alloc_snapshot all = m.items;
                all.merge(m.dist_blocks);
                all.merge(m.shared_blocks);
                return all;
            };
            sampler_.add_gauge("pool_bytes", [pools] {
                return static_cast<double>(pools().bytes);
            });
            sampler_.add_gauge("released_bytes", [pools] {
                return static_cast<double>(pools().released_bytes);
            });
        }
    }

    void start() {
        if (enabled_)
            sampler_.start();
    }

    /// Stop sampling, detach any standalone monitor, embed the
    /// `timeseries` block, and (under --trace) hand the counter
    /// tracks to the end-of-run Chrome-trace export.
    void finish(klsm::json_record &rec, const std::string &label) {
        if (!enabled_)
            return;
        sampler_.stop();
        if (detach_) {
            detach_();
            detach_ = nullptr;
        }
        rec.set_raw("timeseries", sampler_.json());
        if (trace_) {
            auto tracks = sampler_.counter_tracks();
            for (auto &cs : tracks) {
                cs.name = label + " " + cs.name;
                g_counter_tracks.push_back(std::move(cs));
            }
        }
    }

private:
    template <typename WindowFn>
    void add_contention_probes(WindowFn win) {
        sampler_.add_counter("publishes", [win] {
            return static_cast<double>(win().publishes);
        });
        sampler_.add_counter("publish_retries", [win] {
            return static_cast<double>(win().publish_retries);
        });
        sampler_.add_counter("shared_hits", [win] {
            return static_cast<double>(win().shared_hits);
        });
        sampler_.add_counter("local_hits", [win] {
            return static_cast<double>(win().local_hits);
        });
        sampler_.add_counter("spies", [win] {
            return static_cast<double>(win().spies);
        });
        sampler_.add_gauge("fail_rate_ewma", [win] {
            return win().fail_rate_ewma;
        });
        sampler_.add_gauge("shared_fraction_ewma", [win] {
            return win().shared_fraction_ewma;
        });
    }

    void wire_standalone_monitor() {
        auto *m = monitor_.get();
        // No controller owns this monitor's ticker, so fold the EWMA
        // window once per sample row instead.
        sampler_.add_tick_hook([m] { m->sample_window(); });
        add_contention_probes([m] { return m->totals(); });
    }

    bool enabled_;
    bool trace_;
    klsm::trace::progress_counters progress_;
    klsm::trace::metrics_sampler sampler_;
    std::unique_ptr<klsm::adapt::contention_monitor> monitor_;
    std::function<void()> detach_;
};

/// Human-readable sweep-point label for counter-track names.
std::string record_label(const std::string &name, const std::string &pin,
                         unsigned threads);

/// The stream per-record tables go to: stderr when the JSON report
/// owns stdout.
inline std::ostream &table_stream(const core_config &cfg) {
    return cfg.json_to_stdout ? std::cerr : std::cout;
}

// --- core CLI layer (definitions in bench_common.cpp) ---------------

/// Register the cross-cutting flags (structure/pin/threads, relaxation
/// and handle knobs, placement, tracing, output) under the "core"
/// group.  The registry is consulted only to name the registered
/// workloads in --workload's help text.
void register_core_flags(cli_parser &cli,
                         const workload_registry &registry);

/// Parse and validate the core flags into `cfg` (including the --smoke
/// shrink of the shared fields).  `selected` drives the one
/// selection-dependent default: `--reclaim auto` resolves to the full
/// tier iff every selected workload declares itself a reclamation
/// soak.  Prints to stderr and returns false on a usage error.
bool parse_core_config(const cli_parser &cli,
                       const std::vector<const workload_entry *> &selected,
                       core_config &cfg);

/// Write the core meta block (knobs + discovered machine topology).
void annotate_core_meta(const core_config &cfg, json_reporter &json);

/// Build the registry of built-in workloads (bench/workload_*.cpp).
void register_builtin_workloads(workload_registry &registry);

// Entry factories, one per translation unit.
workload_entry throughput_workload();
workload_entry quality_workload();
workload_entry sssp_workload();
workload_entry churn_workload();
workload_entry service_workload();
workload_entry bnb_workload();
workload_entry des_workload();

} // namespace klsm::bench
