#pragma once

// SprayList (Alistarh, Kopinsky, Li, Shavit, PPoPP 2015) — the relaxed
// lock-free priority queue the k-LSM paper compares against in Figure 3.
//
// delete-min performs a "spray": a random walk that starts near the head
// at height ~log T and at each descending level jumps forward a uniform
// random number of steps, landing on one of the first O(T log^3 T)
// elements roughly uniformly.  The landed node is deleted with a CAS
// (ownership mark); collisions walk forward.  With probability ~1/T the
// caller instead becomes a *cleaner*, linearly deleting from the very
// front like Lindén's queue, which bounds the garbage prefix.
//
// Relaxation: a spray returns one of the O(T log^3 T) smallest keys with
// high probability, but — as the k-LSM paper points out — no worst-case
// bound exists (concurrent modification can push the walk arbitrarily
// far), and there are no local ordering semantics.  Parameters below use
// the shapes published in the SprayList paper; exact constants were
// tuned empirically there and are configurable here.

#include <cmath>
#include <cstdint>

#include "baselines/skiplist_pq.hpp"
#include "util/bits.hpp"

namespace klsm {

template <typename K, typename V>
class spray_pq : private skiplist_pq_base<K, V> {
    using base = skiplist_pq_base<K, V>;
    using node = typename base::node;

public:
    using key_type = K;
    using value_type = V;

    /// `threads` = expected thread count T, which parameterizes the spray
    /// dimensions (height ~ log T, per-level jump length ~ M * log T).
    explicit spray_pq(unsigned threads, unsigned jump_mult = 1)
        : threads_(threads < 1 ? 1 : threads),
          spray_height_(spray_height(threads_)),
          jump_len_(jump_length(threads_, jump_mult)) {}

    void insert(const K &key, const V &value) {
        epoch_manager::guard g(this->mm_);
        this->do_insert(key, value);
        this->drain_pending();
    }

    bool try_delete_min(K &key, V &value) {
        epoch_manager::guard g(this->mm_);
        // With probability 1/T act as a cleaner: delete from the exact
        // front and physically collect the garbage prefix.
        if (thread_rng().bounded(threads_) == 0) {
            const bool ok = delete_front(key, value);
            this->drain_pending();
            return ok;
        }

        for (int attempt = 0; attempt < 3; ++attempt) {
            node *n = spray();
            // Walk forward from the landing point to the first node we
            // manage to own.
            unsigned steps = 0;
            while (n != this->tail_ && steps < 2 * jump_len_) {
                const std::uintptr_t w =
                    n->next[0].load(std::memory_order_acquire);
                if (!base::marked(w) && this->try_own(n)) {
                    key = n->key;
                    value = n->value;
                    this->complete_delete(n);
                    this->drain_pending();
                    return true;
                }
                n = base::ptr(w);
                ++steps;
            }
        }
        // Contention or an almost-empty list: fall back to exact front
        // deletion so the operation only fails when the list is empty.
        const bool ok = delete_front(key, value);
        this->drain_pending();
        return ok;
    }

    bool try_find_min(K &key, V &value) {
        epoch_manager::guard g(this->mm_);
        node *curr =
            base::ptr(this->head_->next[0].load(std::memory_order_acquire));
        while (curr != this->tail_) {
            const std::uintptr_t w =
                curr->next[0].load(std::memory_order_acquire);
            if (!base::marked(w)) {
                key = curr->key;
                value = curr->value;
                return true;
            }
            curr = base::ptr(w);
        }
        return false;
    }

    std::size_t size_hint() { return this->count_alive(); }

    unsigned spray_height_param() const { return spray_height_; }
    unsigned jump_length_param() const { return jump_len_; }

private:
    static unsigned spray_height(unsigned threads) {
        const unsigned h = log2_floor(threads) + 1;
        return h < base::max_height ? h : base::max_height - 1;
    }

    /// Per-level jump bound; the total spray range is roughly
    /// jump_len^(height+1) / ... ~ O(T log^3 T) as published.
    static unsigned jump_length(unsigned threads, unsigned mult) {
        const double logt = std::log2(static_cast<double>(threads)) + 1.0;
        return static_cast<unsigned>(mult * logt) + 1;
    }

    /// The spray walk: from the head, descend from spray_height_ to 0,
    /// jumping uniform[0, jump_len_] nodes at each level.
    node *spray() {
        node *curr = this->head_;
        for (int lvl = static_cast<int>(spray_height_); lvl >= 0; --lvl) {
            std::uint64_t jump = thread_rng().bounded(jump_len_ + 1);
            while (jump-- > 0) {
                const std::uintptr_t w =
                    curr->next[lvl].load(std::memory_order_acquire);
                node *next = base::ptr(w);
                if (next == this->tail_ || next == nullptr)
                    break;
                curr = next;
            }
        }
        if (curr == this->head_)
            curr = base::ptr(
                this->head_->next[0].load(std::memory_order_acquire));
        return curr;
    }

    /// Lindén-style exact front deletion with physical cleanup; used by
    /// the cleaner role and as the fallback path.
    bool delete_front(K &key, V &value) {
        node *curr =
            base::ptr(this->head_->next[0].load(std::memory_order_acquire));
        while (curr != this->tail_) {
            std::uintptr_t w = curr->next[0].load(std::memory_order_acquire);
            if (base::marked(w)) {
                this->complete_delete(curr);
                curr = base::ptr(
                    this->head_->next[0].load(std::memory_order_acquire));
                continue;
            }
            if (curr->next[0].compare_exchange_weak(
                    w, w | 1, std::memory_order_acq_rel,
                    std::memory_order_acquire)) {
                key = curr->key;
                value = curr->value;
                this->complete_delete(curr);
                return true;
            }
        }
        return false;
    }

    const unsigned threads_;
    const unsigned spray_height_;
    const unsigned jump_len_;
};

} // namespace klsm
