#pragma once

// Centralized k-priority queue — clean-room reconstruction of the
// comparator from Wimmer et al. [29] used in the paper's Figure 4.
//
// The original lives inside the Pheet task scheduler and "cannot be used
// as [a] standalone data structure" (paper Section 6); we rebuild the
// data-structure layer: one global priority queue whose delete-min is
// k-relaxed through a *claim window* — an array of up to k+1 items that
// were the smallest keys when the window was last refilled from the
// backing heap.  Threads claim window slots with a single CAS
// (contention-free for distinct slots); only refills and inserts take
// the global lock.
//
// Matching the paper's observation: performance is essentially
// independent of k (a delete-min costs one CAS plus an amortized
// O((log n) ) share of the refill) but the single lock and shared window
// keep it centralized, so it does not scale with threads — exactly the
// flat-in-k, poor-in-T shape of Figure 4.

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "baselines/binary_heap.hpp"
#include "util/align.hpp"
#include "util/rng.hpp"
#include "util/spin_lock.hpp"

namespace klsm {

template <typename K, typename V>
class centralized_k_pq {
public:
    using key_type = K;
    using value_type = V;

    explicit centralized_k_pq(std::size_t k)
        : window_size_(cap_window(k + 1)),
          window_(std::make_unique<slot[]>(window_size_)) {}

    void insert(const K &key, const V &value) {
        lock_->lock();
        heap_.insert(key, value);
        lock_->unlock();
    }

    /// Bulk insert under one lock acquisition (used by the hybrid queue's
    /// spill).
    void insert_bulk(const std::vector<std::pair<K, V>> &items) {
        lock_->lock();
        for (const auto &[k, v] : items)
            heap_.insert(k, v);
        lock_->unlock();
    }

    bool try_delete_min(K &key, V &value) {
        for (;;) {
            if (occupancy_.load(std::memory_order_acquire) > 0) {
                if (claim_random(key, value))
                    return true;
                if (claim_scan(key, value))
                    return true;
            }
            // Window exhausted: refill from the heap.
            lock_->lock();
            if (occupancy_.load(std::memory_order_acquire) > 0) {
                // Someone else refilled while we waited.
                lock_->unlock();
                continue;
            }
            std::size_t filled = 0;
            for (std::size_t i = 0; i < window_size_; ++i) {
                slot &s = window_[i];
                if (s.state.load(std::memory_order_relaxed) != slot_empty)
                    continue;
                K k;
                V v;
                if (!heap_.try_delete_min(k, v))
                    break;
                s.key = k;
                s.value = v;
                s.state.store(slot_full, std::memory_order_release);
                ++filled;
            }
            occupancy_.fetch_add(static_cast<std::int64_t>(filled),
                                 std::memory_order_acq_rel);
            const bool empty = (filled == 0) && heap_.empty();
            lock_->unlock();
            if (empty)
                return false;
        }
    }

    std::size_t size_hint() {
        lock_->lock();
        const std::size_t n =
            heap_.size() +
            static_cast<std::size_t>(
                std::max<std::int64_t>(0, occupancy_.load()));
        lock_->unlock();
        return n;
    }

    std::size_t window_capacity() const { return window_size_; }

private:
    static constexpr std::uint8_t slot_empty = 0;
    static constexpr std::uint8_t slot_full = 1;
    static constexpr std::uint8_t slot_claimed = 2;
    static constexpr std::size_t max_window = std::size_t{1} << 20;

    static std::size_t cap_window(std::size_t n) {
        return n > max_window ? max_window : (n < 1 ? 1 : n);
    }

    struct slot {
        std::atomic<std::uint8_t> state{slot_empty};
        K key{};
        V value{};
    };

    bool try_claim(slot &s, K &key, V &value) {
        std::uint8_t expected = slot_full;
        if (!s.state.compare_exchange_strong(expected, slot_claimed,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire))
            return false;
        key = s.key;
        value = s.value;
        s.state.store(slot_empty, std::memory_order_release);
        occupancy_.fetch_sub(1, std::memory_order_acq_rel);
        return true;
    }

    bool claim_random(K &key, V &value) {
        for (int probe = 0; probe < 4; ++probe) {
            slot &s = window_[thread_rng().bounded(window_size_)];
            if (try_claim(s, key, value))
                return true;
        }
        return false;
    }

    bool claim_scan(K &key, V &value) {
        const std::size_t start = thread_rng().bounded(window_size_);
        for (std::size_t i = 0; i < window_size_; ++i) {
            slot &s = window_[(start + i) % window_size_];
            if (try_claim(s, key, value))
                return true;
        }
        return false;
    }

    const std::size_t window_size_;
    cache_aligned<spin_lock> lock_;
    binary_heap<K, V> heap_;
    std::unique_ptr<slot[]> window_;
    std::atomic<std::int64_t> occupancy_{0};
};

} // namespace klsm
