#pragma once

// MultiQueue baseline (Rihani, Sanders, Dementiev 2014; paper Section 6).
//
// c * T sequential binary heaps, each behind its own try-lock.
//   * insert: lock a uniformly random queue (retrying with fresh random
//     picks on contention) and push.
//   * delete-min: sample TWO random queues, compare their cached minima,
//     lock the one with the smaller top and pop it ("power of two
//     choices" — the expected rank error stays O(T)).
//
// Each queue caches its current minimum in an atomic so the two-choice
// comparison runs without taking locks.  The paper notes the MultiQueue's
// quality matches roughly k-LSM with k = 4 in expectation, but a stalled
// thread holding a lock can block access to an arbitrary number of keys,
// so no worst-case relaxation bound exists (Section 6.1) — the structural
// contrast to the k-LSM that Figure 3 discusses.

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "baselines/binary_heap.hpp"
#include "util/align.hpp"
#include "util/rng.hpp"
#include "util/spin_lock.hpp"

namespace klsm {

template <typename K, typename V>
class multiqueue {
public:
    using key_type = K;
    using value_type = V;

    /// `threads` = expected number of worker threads T, `c` = queues per
    /// thread (the paper's experiments use c = 2).
    explicit multiqueue(std::size_t threads, std::size_t c = 2)
        : queues_(std::max<std::size_t>(1, threads * c)) {
        for (auto &q : queues_)
            q = std::make_unique<padded_queue>();
    }

    void insert(const K &key, const V &value) {
        for (;;) {
            padded_queue &q = random_queue();
            if (!q.lock.try_lock())
                continue;
            q.heap.insert(key, value);
            q.publish_top();
            q.lock.unlock();
            return;
        }
    }

    bool try_delete_min(K &key, V &value) {
        // Two-choice sampling with a bounded number of rounds; an empty
        // result after inspecting every queue is a genuine (or at worst
        // spurious, which the interface allows) empty.
        for (std::size_t attempt = 0; attempt < queues_.size() + 2;
             ++attempt) {
            padded_queue &a = random_queue();
            padded_queue &b = random_queue();
            padded_queue *pick = better(a, b);
            if (pick == nullptr)
                continue; // both look empty; resample
            if (!pick->lock.try_lock())
                continue;
            const bool ok = pick->heap.try_delete_min(key, value);
            pick->publish_top();
            pick->lock.unlock();
            if (ok)
                return true;
        }
        // Deterministic sweep so "false" means every queue was empty at
        // inspection time.  approx_size is republished under the lock
        // after every heap operation, so it is an exact emptiness test
        // here (unlike cached_top, which a key equal to empty_marker
        // would alias) — reading the heap itself without the lock would
        // race.
        for (auto &qp : queues_) {
            padded_queue &q = *qp;
            if (q.approx_size.load(std::memory_order_acquire) == 0)
                continue;
            q.lock.lock();
            const bool ok = q.heap.try_delete_min(key, value);
            q.publish_top();
            q.lock.unlock();
            if (ok)
                return true;
        }
        return false;
    }

    std::size_t size_hint() const {
        std::size_t n = 0;
        for (const auto &q : queues_)
            n += q->approx_size.load(std::memory_order_relaxed);
        return n;
    }

    std::size_t queue_count() const { return queues_.size(); }

private:
    static constexpr std::uint64_t empty_marker =
        std::numeric_limits<std::uint64_t>::max();

    struct alignas(cache_line_size) padded_queue {
        spin_lock lock;
        binary_heap<K, V> heap;
        /// Minimum key widened to 64 bits, or empty_marker; read lock-free
        /// by the two-choice comparison.
        std::atomic<std::uint64_t> top{empty_marker};
        /// Heap size as of the last publish; read lock-free by size_hint.
        std::atomic<std::size_t> approx_size{0};

        std::uint64_t cached_top() const {
            return top.load(std::memory_order_acquire);
        }

        void publish_top() {
            approx_size.store(heap.size(), std::memory_order_relaxed);
            top.store(heap.empty()
                          ? empty_marker
                          : static_cast<std::uint64_t>(heap.min_key()),
                      std::memory_order_release);
        }
    };

    padded_queue &random_queue() {
        return *queues_[thread_rng().bounded(queues_.size())];
    }

    padded_queue *better(padded_queue &a, padded_queue &b) {
        const std::uint64_t ta = a.cached_top();
        const std::uint64_t tb = b.cached_top();
        if (ta == empty_marker && tb == empty_marker)
            return nullptr;
        return ta <= tb ? &a : &b;
    }

    std::vector<std::unique_ptr<padded_queue>> queues_;
};

} // namespace klsm
