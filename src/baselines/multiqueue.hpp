#pragma once

// Engineered MultiQueue baseline (Williams, Sanders et al.,
// arXiv 2107.01350 / 2504.11652), grown out of the 2014 two-choice
// MultiQueue (Rihani, Sanders, Dementiev) the paper's Section 6
// compares against.
//
// c * T sequential 4-ary heaps, each behind its own try-lock.  The
// classic core is unchanged:
//   * insert: lock a uniformly random queue (with bounded exponential
//     backoff between failed try_locks) and push.
//   * delete-min: sample TWO random queues, compare their cached minima,
//     lock the one with the smaller top and pop it ("power of two
//     choices" — the expected rank error stays O(c*T)).
//
// The engineered refinements all live in the per-thread `handle`
// (get_handle()):
//   * stickiness: a handle reuses its sampled queue (insert side) and
//     queue pair (delete side) for `stickiness` consecutive queue
//     accesses before resampling, so a thread keeps hitting cache-warm
//     heaps and uncontended locks;
//   * insertion buffer: up to `buffer` pending inserts are staged
//     locally and pushed under ONE lock acquisition, amortizing the
//     lock + heap traffic;
//   * deletion buffer: a delete-min refill pops up to `buffer` smallest
//     keys from the chosen heap under one lock and serves them locally.
//
// Buffering weakens the "every insert is immediately visible" contract:
// staged inserts and locally cached deletions are invisible to other
// threads until `flush()` (handle destruction flushes).  Each handle
// hides at most 2*buffer items, so the expected rank error stays
// O(c*T + T*buffer) — the same budget-style accounting the k-LSM's rho
// gets, though (as in 2014) a stalled lock holder still voids any
// worst-case bound.
//
// Each queue caches its current minimum in an atomic so the two-choice
// comparison runs without taking locks.

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "baselines/dary_heap.hpp"
#include "util/align.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"
#include "util/spin_lock.hpp"

namespace klsm {

template <typename K, typename V>
class multiqueue {
public:
    using key_type = K;
    using value_type = V;

    static constexpr std::size_t npos =
        std::numeric_limits<std::size_t>::max();

    /// `threads` = expected number of worker threads T, `c` = queues per
    /// thread (the paper's experiments use c = 2), `stickiness` = queue
    /// accesses between resamples (1 = classic resample-every-access),
    /// `buffer` = insertion/deletion buffer capacity per handle
    /// (0 = unbuffered handles: every handle op hits the heaps).
    explicit multiqueue(std::size_t threads, std::size_t c = 2,
                        std::size_t stickiness = 8,
                        std::size_t buffer = 16)
        : stickiness_(stickiness > 0 ? stickiness : 1), buffer_(buffer),
          queues_(std::max<std::size_t>(1, threads * c)) {
        for (auto &q : queues_)
            q = std::make_unique<padded_queue>();
    }

    std::size_t stickiness() const { return stickiness_; }
    std::size_t buffer_size() const { return buffer_; }

    /// Direct (handle-free) insert: the 2014 path, kept for the plain
    /// relaxed_priority_queue contract.  Bounded exponential backoff
    /// between failed try_locks keeps a contended insert from spinning
    /// the coherence fabric flat.
    void insert(const K &key, const V &value) {
        exp_backoff backoff;
        for (;;) {
            padded_queue &q = random_queue();
            if (!q.lock.try_lock()) {
                backoff();
                continue;
            }
            q.heap.insert(key, value);
            q.publish_top();
            q.lock.unlock();
            return;
        }
    }

    /// Direct two-choice delete-min (unbuffered).
    bool try_delete_min(K &key, V &value) {
        // Two-choice sampling with a bounded number of rounds; an empty
        // result after inspecting every queue is a genuine (or at worst
        // spurious, which the interface allows) empty.
        exp_backoff backoff;
        for (std::size_t attempt = 0; attempt < queues_.size() + 2;
             ++attempt) {
            padded_queue *pick = better(random_queue(), random_queue());
            if (pick == nullptr)
                continue; // both look empty; resample
            if (!pick->lock.try_lock()) {
                backoff();
                continue;
            }
            const bool ok = pick->heap.try_delete_min(key, value);
            pick->publish_top();
            pick->lock.unlock();
            if (ok)
                return true;
        }
        return sweep_delete(key, value);
    }

    /// Per-thread operation handle: stickiness + insertion/deletion
    /// buffers.  One handle per thread; not thread-safe.  Destruction
    /// flushes, so no op is ever lost — at worst it becomes visible
    /// late, which the relaxed contract permits.
    class handle {
    public:
        using key_type = K;
        using value_type = V;

        explicit handle(multiqueue &q) : q_(&q) {
            ins_buf_.reserve(q.buffer_);
            del_buf_.reserve(q.buffer_);
        }

        handle(handle &&other) noexcept
            : q_(other.q_), ins_sticky_(other.ins_sticky_),
              ins_left_(other.ins_left_),
              del_sticky_a_(other.del_sticky_a_),
              del_sticky_b_(other.del_sticky_b_),
              del_left_(other.del_left_),
              ins_buf_(std::move(other.ins_buf_)),
              del_buf_(std::move(other.del_buf_)),
              del_head_(other.del_head_) {
            other.q_ = nullptr;
        }
        handle(const handle &) = delete;
        handle &operator=(const handle &) = delete;
        handle &operator=(handle &&) = delete;

        ~handle() {
            if (q_ != nullptr)
                flush();
        }

        void insert(const K &key, const V &value) {
            if (q_->buffer_ == 0) {
                const std::pair<K, V> kv{key, value};
                sticky_insert(&kv, 1);
                return;
            }
            ins_buf_.emplace_back(key, value);
            if (ins_buf_.size() >= q_->buffer_)
                flush_inserts();
        }

        bool try_delete_min(K &key, V &value) {
            for (;;) {
                if (del_head_ < del_buf_.size()) {
                    // Cached pops are ascending, so the head is the
                    // smallest; serve the insertion buffer instead when
                    // it holds something smaller (a handle never skips
                    // its own staged keys).
                    const std::size_t m = ins_min_index();
                    if (m != npos &&
                        ins_buf_[m].first < del_buf_[del_head_].first) {
                        serve_ins(m, key, value);
                        return true;
                    }
                    key = del_buf_[del_head_].first;
                    value = del_buf_[del_head_].second;
                    ++del_head_;
                    if (del_head_ == del_buf_.size()) {
                        del_buf_.clear();
                        del_head_ = 0;
                    }
                    return true;
                }
                if (refill())
                    continue;
                // Heaps look empty; the staged inserts are all that is
                // left.
                const std::size_t m = ins_min_index();
                if (m == npos)
                    return false;
                serve_ins(m, key, value);
                return true;
            }
        }

        /// Publish every buffered effect: staged inserts reach a heap,
        /// cached-but-unserved deletions go back to a heap.  Cheap
        /// no-op when both buffers are empty.
        void flush() {
            flush_inserts();
            if (del_head_ < del_buf_.size()) {
                sticky_insert(del_buf_.data() + del_head_,
                              del_buf_.size() - del_head_);
            }
            del_buf_.clear();
            del_head_ = 0;
        }

        // White-box observability for tests.
        std::size_t sticky_insert_queue() const { return ins_sticky_; }
        std::size_t inserts_buffered() const { return ins_buf_.size(); }
        std::size_t deletes_cached() const {
            return del_buf_.size() - del_head_;
        }

    private:
        /// Index of the smallest staged insert, or npos.  Linear scan:
        /// the buffer is tiny (<= `buffer`) and usually cold.
        std::size_t ins_min_index() const {
            std::size_t best = npos;
            for (std::size_t i = 0; i < ins_buf_.size(); ++i)
                if (best == npos ||
                    ins_buf_[i].first < ins_buf_[best].first)
                    best = i;
            return best;
        }

        void serve_ins(std::size_t i, K &key, V &value) {
            key = ins_buf_[i].first;
            value = ins_buf_[i].second;
            ins_buf_[i] = ins_buf_.back();
            ins_buf_.pop_back();
        }

        void flush_inserts() {
            if (!ins_buf_.empty()) {
                sticky_insert(ins_buf_.data(), ins_buf_.size());
                ins_buf_.clear();
            }
        }

        /// Push `n` pairs into the sticky insert queue under one lock
        /// acquisition (resampling per the stickiness policy).
        void sticky_insert(const std::pair<K, V> *kv, std::size_t n) {
            exp_backoff backoff;
            for (;;) {
                if (ins_sticky_ == npos || ins_left_ == 0) {
                    ins_sticky_ =
                        thread_rng().bounded(q_->queues_.size());
                    ins_left_ = q_->stickiness_;
                }
                padded_queue &q = *q_->queues_[ins_sticky_];
                if (!q.lock.try_lock()) {
                    // A contended sticky queue is a bad queue to stick
                    // to: back off once, then resample.
                    backoff();
                    ins_left_ = 0;
                    continue;
                }
                for (std::size_t i = 0; i < n; ++i)
                    q.heap.insert(kv[i].first, kv[i].second);
                q.publish_top();
                q.lock.unlock();
                --ins_left_;
                return;
            }
        }

        /// Pop up to max(buffer, 1) keys from the better of the sticky
        /// queue pair into the deletion buffer (ascending by
        /// construction).  False only after the deterministic sweep
        /// also found nothing.
        bool refill() {
            const std::size_t cap =
                q_->buffer_ > 0 ? q_->buffer_ : std::size_t{1};
            exp_backoff backoff;
            K k;
            V v;
            for (std::size_t attempt = 0;
                 attempt < q_->queues_.size() + 2; ++attempt) {
                if (del_sticky_a_ == npos || del_left_ == 0) {
                    del_sticky_a_ =
                        thread_rng().bounded(q_->queues_.size());
                    del_sticky_b_ =
                        thread_rng().bounded(q_->queues_.size());
                    del_left_ = q_->stickiness_;
                }
                padded_queue *pick =
                    q_->better(*q_->queues_[del_sticky_a_],
                               *q_->queues_[del_sticky_b_]);
                if (pick == nullptr) {
                    del_left_ = 0; // the pair ran dry; resample
                    continue;
                }
                if (!pick->lock.try_lock()) {
                    backoff();
                    del_left_ = 0;
                    continue;
                }
                while (del_buf_.size() < cap &&
                       pick->heap.try_delete_min(k, v))
                    del_buf_.emplace_back(k, v);
                pick->publish_top();
                pick->lock.unlock();
                --del_left_;
                if (!del_buf_.empty())
                    return true;
            }
            if (q_->sweep_pop(del_buf_, cap))
                return true;
            return false;
        }

        multiqueue *q_;
        std::size_t ins_sticky_ = npos;
        std::size_t ins_left_ = 0;
        std::size_t del_sticky_a_ = npos;
        std::size_t del_sticky_b_ = npos;
        std::size_t del_left_ = 0;
        std::vector<std::pair<K, V>> ins_buf_;
        std::vector<std::pair<K, V>> del_buf_;
        std::size_t del_head_ = 0;
    };

    handle get_handle() { return handle(*this); }

    std::size_t size_hint() const {
        std::size_t n = 0;
        for (const auto &q : queues_)
            n += q->approx_size.load(std::memory_order_relaxed);
        return n;
    }

    std::size_t queue_count() const { return queues_.size(); }

private:
    friend class handle;

    static constexpr std::uint64_t empty_marker =
        std::numeric_limits<std::uint64_t>::max();

    struct alignas(cache_line_size) padded_queue {
        spin_lock lock;
        dary_heap<K, V, 4> heap;
        /// Minimum key widened to 64 bits, or empty_marker; read lock-free
        /// by the two-choice comparison.
        std::atomic<std::uint64_t> top{empty_marker};
        /// Heap size as of the last publish; read lock-free by size_hint.
        std::atomic<std::size_t> approx_size{0};

        std::uint64_t cached_top() const {
            return top.load(std::memory_order_acquire);
        }

        void publish_top() {
            approx_size.store(heap.size(), std::memory_order_relaxed);
            top.store(heap.empty()
                          ? empty_marker
                          : static_cast<std::uint64_t>(heap.min_key()),
                      std::memory_order_release);
        }
    };

    padded_queue &random_queue() {
        return *queues_[thread_rng().bounded(queues_.size())];
    }

    padded_queue *better(padded_queue &a, padded_queue &b) {
        const std::uint64_t ta = a.cached_top();
        const std::uint64_t tb = b.cached_top();
        if (ta == empty_marker && tb == empty_marker)
            return nullptr;
        return ta <= tb ? &a : &b;
    }

    /// Deterministic sweep so "false" means every queue was empty at
    /// inspection time.  approx_size is republished under the lock
    /// after every heap operation, so it is an exact emptiness test
    /// here (unlike cached_top, which a key equal to empty_marker
    /// would alias) — reading the heap itself without the lock would
    /// race.
    bool sweep_delete(K &key, V &value) {
        for (auto &qp : queues_) {
            padded_queue &q = *qp;
            if (q.approx_size.load(std::memory_order_acquire) == 0)
                continue;
            q.lock.lock();
            const bool ok = q.heap.try_delete_min(key, value);
            q.publish_top();
            q.lock.unlock();
            if (ok)
                return true;
        }
        return false;
    }

    /// Sweep variant for handle refills: batch-pop up to `cap` keys
    /// from the first non-empty queue.
    bool sweep_pop(std::vector<std::pair<K, V>> &out, std::size_t cap) {
        K k;
        V v;
        for (auto &qp : queues_) {
            padded_queue &q = *qp;
            if (q.approx_size.load(std::memory_order_acquire) == 0)
                continue;
            q.lock.lock();
            while (out.size() < cap && q.heap.try_delete_min(k, v))
                out.emplace_back(k, v);
            q.publish_top();
            q.lock.unlock();
            if (!out.empty())
                return true;
        }
        return false;
    }

    const std::size_t stickiness_;
    const std::size_t buffer_;
    std::vector<std::unique_ptr<padded_queue>> queues_;
};

} // namespace klsm
