#pragma once

// Hybrid k-priority queue — clean-room reconstruction of the second
// comparator from Wimmer et al. [29] in the paper's Figure 4.
//
// Combines thread-local buffering with the centralized k-queue: each
// thread accumulates inserts in a private binary heap bounded by k
// items; when the bound is exceeded the whole buffer spills into the
// global queue under a single lock acquisition (amortizing the lock to
// ~1/k acquisitions per insert — the same batching idea the k-LSM
// realizes with sorted blocks).  delete-min prefers the local buffer
// when its minimum is no larger than a (racily read) hint of the global
// minimum, otherwise claims from the global window.
//
// Relaxation: up to k keys can hide in each of the T local buffers plus
// k+1 in the global window — the same rho ~ T*k contract family as the
// k-LSM, without its local ordering guarantee for spilled keys.

#include <cstdint>
#include <limits>
#include <memory>

#include "baselines/binary_heap.hpp"
#include "baselines/centralized_k.hpp"
#include "util/align.hpp"
#include "util/thread_id.hpp"

namespace klsm {

template <typename K, typename V>
class hybrid_k_pq {
public:
    using key_type = K;
    using value_type = V;

    explicit hybrid_k_pq(std::size_t k) : k_(k), global_(k) {
        for (auto &l : locals_)
            l = std::make_unique<local_buffer>();
    }

    void insert(const K &key, const V &value) {
        local_buffer &mine = *locals_[thread_index()];
        mine.heap.insert(key, value);
        if (mine.heap.size() > k_) {
            const K spilled_min = mine.heap.min_key();
            global_.insert_bulk(mine.heap.drain());
            update_global_hint(spilled_min);
        }
    }

    bool try_delete_min(K &key, V &value) {
        local_buffer &mine = *locals_[thread_index()];
        if (!mine.heap.empty()) {
            const std::uint64_t gmin =
                global_min_hint_.load(std::memory_order_acquire);
            if (static_cast<std::uint64_t>(mine.heap.min_key()) <= gmin)
                return mine.heap.try_delete_min(key, value);
        }
        if (global_.try_delete_min(key, value))
            return true;
        // Global empty: fall back to whatever is buffered locally.
        return mine.heap.try_delete_min(key, value);
    }

    std::size_t size_hint() {
        std::size_t n = global_.size_hint();
        for (const auto &l : locals_)
            n += l->heap.size();
        return n;
    }

private:
    static constexpr std::uint64_t empty_hint =
        std::numeric_limits<std::uint64_t>::max();

    struct alignas(cache_line_size) local_buffer {
        binary_heap<K, V> heap;
    };

    /// Monotone-decreasing global minimum hint; purely advisory (routing
    /// quality), reset opportunistically when the global drains.
    void update_global_hint(const K &key) {
        std::uint64_t cur = global_min_hint_.load(std::memory_order_relaxed);
        const auto k64 = static_cast<std::uint64_t>(key);
        while (k64 < cur &&
               !global_min_hint_.compare_exchange_weak(
                   cur, k64, std::memory_order_acq_rel,
                   std::memory_order_relaxed)) {
        }
    }

    const std::size_t k_;
    centralized_k_pq<K, V> global_;
    std::unique_ptr<local_buffer> locals_[max_registered_threads];
    std::atomic<std::uint64_t> global_min_hint_{empty_hint};
};

} // namespace klsm
