#pragma once

// "Heap + Lock" baseline (paper Section 6.1): a sequential binary heap
// protected by a single test-and-test-and-set spin lock.  The classic
// strawman — excellent single-thread performance (the paper's Figure 3
// shows it near the top at one thread), collapsing under contention as
// every operation serializes on one cache line.

#include "baselines/binary_heap.hpp"
#include "util/align.hpp"
#include "util/spin_lock.hpp"

namespace klsm {

template <typename K, typename V>
class spin_heap {
public:
    using key_type = K;
    using value_type = V;

    void insert(const K &key, const V &value) {
        lock_->lock();
        heap_.insert(key, value);
        lock_->unlock();
    }

    bool try_delete_min(K &key, V &value) {
        lock_->lock();
        const bool ok = heap_.try_delete_min(key, value);
        lock_->unlock();
        return ok;
    }

    bool try_find_min(K &key, V &value) {
        lock_->lock();
        const bool ok = heap_.try_find_min(key, value);
        lock_->unlock();
        return ok;
    }

    std::size_t size_hint() {
        lock_->lock();
        const std::size_t n = heap_.size();
        lock_->unlock();
        return n;
    }

private:
    cache_aligned<spin_lock> lock_;
    binary_heap<K, V> heap_;
};

} // namespace klsm
