#pragma once

// Lindén & Jonsson priority queue (OPODIS 2013) — the paper's
// representative exact (non-relaxed) lock-free priority queue in
// Figure 3.
//
// Key idea: delete-min only *logically* deletes (one CAS that marks the
// first live node's next pointer), leaving a growing prefix of deleted
// nodes at the head of the skiplist.  Physical cleanup is deferred until
// the prefix exceeds `bound_offset` nodes, and then performed as a batch
// by whichever deleter crossed the bound.  This minimizes the memory
// contention per delete-min — the property their paper is named for.
//
// On this substrate (see skiplist_pq.hpp) the batch cleanup walks the
// prefix and physically deletes each node under the claim-protected
// discipline, so racing cleaners are safe.  insert is the substrate's
// lock-free skiplist insert; a key smaller than every live key simply
// becomes the new first live node.

#include <cstdint>

#include "baselines/skiplist_pq.hpp"

namespace klsm {

template <typename K, typename V>
class linden_pq : private skiplist_pq_base<K, V> {
    using base = skiplist_pq_base<K, V>;
    using node = typename base::node;

public:
    using key_type = K;
    using value_type = V;

    /// `bound_offset`: deleted-prefix length that triggers batched
    /// physical cleanup; Lindén & Jonsson report 32-128 as a good range.
    explicit linden_pq(unsigned bound_offset = 32)
        : bound_offset_(bound_offset) {}

    void insert(const K &key, const V &value) {
        epoch_manager::guard g(this->mm_);
        this->do_insert(key, value);
        this->drain_pending();
    }

    bool try_delete_min(K &key, V &value) {
        epoch_manager::guard g(this->mm_);
        node *curr =
            base::ptr(this->head_->next[0].load(std::memory_order_acquire));
        unsigned offset = 0;
        while (curr != this->tail_) {
            std::uintptr_t succ_word =
                curr->next[0].load(std::memory_order_acquire);
            if (base::marked(succ_word)) {
                // Part of the deleted prefix: walk past it (no CAS).
                ++offset;
                curr = base::ptr(succ_word);
                continue;
            }
            // First live node: one CAS decides ownership.
            if (curr->next[0].compare_exchange_weak(
                    succ_word, succ_word | 1, std::memory_order_acq_rel,
                    std::memory_order_acquire)) {
                key = curr->key;
                value = curr->value;
                if (++offset >= bound_offset_)
                    cleanup_prefix();
                this->drain_pending();
                return true;
            }
            // CAS failed: either someone marked curr (walk past it next
            // iteration) or an insert linked in front — re-read, stay.
        }
        return false;
    }

    bool try_find_min(K &key, V &value) {
        epoch_manager::guard g(this->mm_);
        node *curr =
            base::ptr(this->head_->next[0].load(std::memory_order_acquire));
        while (curr != this->tail_) {
            const std::uintptr_t w =
                curr->next[0].load(std::memory_order_acquire);
            if (!base::marked(w)) {
                key = curr->key;
                value = curr->value;
                return true;
            }
            curr = base::ptr(w);
        }
        return false;
    }

    std::size_t size_hint() { return this->count_alive(); }

private:
    /// Batched physical deletion of the marked prefix.
    void cleanup_prefix() {
        for (;;) {
            node *first = base::ptr(
                this->head_->next[0].load(std::memory_order_acquire));
            if (first == this->tail_ || !base::is_logically_deleted(first))
                return;
            this->complete_delete(first);
        }
    }

    const unsigned bound_offset_;
};

} // namespace klsm
