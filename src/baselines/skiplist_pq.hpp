#pragma once

// Lock-free skiplist substrate for the two skiplist-based comparators of
// Figure 3: the Lindén & Jonsson priority queue and the SprayList.
//
// Design (Fraser-style, with per-level deletion marks):
//   * Keys are made unique by pairing the user key with a per-insert
//     sequence number (lexicographic order), so every node has a
//     deterministic position at every level — required for the targeted
//     unlink argument below, and the standard way skiplist PQs support
//     duplicate priorities.
//   * Every next pointer carries a deletion mark in bit 0.  A node is
//     logically deleted once next[0] is marked; that marking CAS is the
//     ownership point (exactly one deleter wins).  A node's *deletedness*
//     is always judged by its next[0] mark, at every level — judging by
//     the per-level mark alone would let a search advance onto a node
//     that is dead at level 0 but not yet marked higher up, where the
//     subsequent level-0 unlink CAS on the dead predecessor's marked
//     pointer can never succeed (a deterministic livelock).
//   * Physical unlinking happens inside search (helping): any dead node
//     on the path is spliced out of the current level.  A successful
//     *level-0* splice makes the node unreachable, so the splicer records
//     it in a per-thread pending list and, still inside its epoch guard,
//     runs `complete_delete`: mark all tower levels (fetch_or), re-search
//     until the node appears among no successors (unique keys make its
//     position deterministic, so reachable == returned-by-search), then
//     retire.  A per-node claim flag makes completion idempotent across
//     helpers, so nodes are retired exactly once and only after they are
//     verifiably unlinked from every level.
//   * The tower-link handshake: an insert links level lvl by first CASing
//     its *own* next[lvl] from the previously published value; the
//     deleter's fetch_or on the same atomic totally orders the two, so no
//     new link to a dying node's tower can be created after that level
//     was marked.
//   * Memory reclamation: epoch-based (mm/epoch.hpp); every operation
//     runs under a guard, and pending completions are always drained
//     before the guard is released.

#include <atomic>
#include <cassert>
#include <cstdint>
#include <new>
#include <vector>

#include "mm/epoch.hpp"
#include "util/align.hpp"
#include "util/rng.hpp"
#include "util/thread_id.hpp"

namespace klsm {

template <typename K, typename V>
class skiplist_pq_base {
public:
    static constexpr unsigned max_height = 24;

    skiplist_pq_base() {
        head_ = node::create(K{}, 0, V{}, max_height);
        tail_ = node::create(K{}, 0, V{}, max_height);
        for (unsigned lvl = 0; lvl < max_height; ++lvl)
            head_->next[lvl].store(pack(tail_, false),
                                   std::memory_order_relaxed);
    }

    ~skiplist_pq_base() {
        node *n = head_;
        while (n != nullptr) {
            node *next = ptr(n->next[0].load(std::memory_order_relaxed));
            node::destroy(n);
            n = (n == tail_) ? nullptr : (next == nullptr ? tail_ : next);
        }
    }

    skiplist_pq_base(const skiplist_pq_base &) = delete;
    skiplist_pq_base &operator=(const skiplist_pq_base &) = delete;

protected:
    struct node {
        K key;
        std::uint64_t seq; ///< uniquifier; (key, seq) is totally ordered
        V value;
        std::uint8_t height;
        std::atomic<std::uint8_t> retire_claimed{0};
        std::atomic<std::uintptr_t> next[1]; // flexible tower

        static node *create(const K &key, std::uint64_t seq, const V &value,
                            unsigned height) {
            const std::size_t bytes =
                sizeof(node) +
                (height - 1) * sizeof(std::atomic<std::uintptr_t>);
            void *mem = ::operator new(bytes);
            node *n = new (mem) node{};
            n->key = key;
            n->seq = seq;
            n->value = value;
            n->height = static_cast<std::uint8_t>(height);
            for (unsigned lvl = 0; lvl < height; ++lvl)
                new (&n->next[lvl]) std::atomic<std::uintptr_t>{0};
            return n;
        }

        static void destroy(node *n) {
            n->~node();
            ::operator delete(n);
        }
    };

    // ---- marked pointer helpers -------------------------------------------

    static std::uintptr_t pack(node *n, bool mark) {
        return reinterpret_cast<std::uintptr_t>(n) |
               static_cast<std::uintptr_t>(mark);
    }
    static node *ptr(std::uintptr_t p) {
        return reinterpret_cast<node *>(p & ~std::uintptr_t{1});
    }
    static bool marked(std::uintptr_t p) { return (p & 1) != 0; }

    static bool is_logically_deleted(node *n) {
        return marked(n->next[0].load(std::memory_order_acquire));
    }

    /// Strict (key, seq) order; head/tail are handled by pointer checks.
    bool less(const node *a, const K &key, std::uint64_t seq) const {
        if (a == head_)
            return true;
        if (a == tail_)
            return false;
        if (a->key < key)
            return true;
        if (key < a->key)
            return false;
        return a->seq < seq;
    }

    // ---- search ------------------------------------------------------------

    /// Locate preds/succs for (key, seq) on all levels, splicing dead
    /// nodes off the path (helping).  Level-0 splices are recorded in the
    /// calling thread's pending list for completion.  Must run pinned;
    /// callers must drain_pending() before unpinning.
    void search(const K &key, std::uint64_t seq, node *preds[max_height],
                node *succs[max_height]) {
    retry:
        node *pred = head_;
        for (int lvl = max_height - 1; lvl >= 0; --lvl) {
            std::uintptr_t curr_word =
                pred->next[lvl].load(std::memory_order_acquire);
            node *curr = ptr(curr_word);
            for (;;) {
                if (curr == tail_)
                    break;
                const std::uintptr_t succ_word =
                    curr->next[lvl].load(std::memory_order_acquire);
                if (is_logically_deleted(curr)) {
                    // Splice the dead node out of this level.  The
                    // expected value is unmarked: if pred died in the
                    // meantime its pointer is marked, the CAS fails and
                    // the retry walks a path without it.
                    std::uintptr_t expected = pack(curr, false);
                    if (!pred->next[lvl].compare_exchange_strong(
                            expected, pack(ptr(succ_word), false),
                            std::memory_order_acq_rel,
                            std::memory_order_acquire))
                        goto retry;
                    if (lvl == 0)
                        pending().push_back(curr);
                    curr = ptr(succ_word);
                    continue;
                }
                if (!less(curr, key, seq))
                    break;
                pred = curr;
                curr = ptr(succ_word);
            }
            preds[lvl] = pred;
            succs[lvl] = curr;
        }
    }

    // ---- insert -------------------------------------------------------------

    /// Insert a node with a fresh unique (key, seq).  Lock-free.  Caller
    /// must be pinned and drain_pending() afterwards.
    node *do_insert(const K &key, const V &value) {
        const std::uint64_t seq = next_seq();
        const unsigned height = random_height();
        node *n = node::create(key, seq, value, height);

        node *preds[max_height], *succs[max_height];
        for (;;) {
            search(key, seq, preds, succs);
            n->next[0].store(pack(succs[0], false),
                             std::memory_order_relaxed);
            std::uintptr_t expected = pack(succs[0], false);
            if (preds[0]->next[0].compare_exchange_strong(
                    expected, pack(n, false), std::memory_order_acq_rel,
                    std::memory_order_acquire))
                break;
        }
        // Link upper levels.  The CAS on our *own* next[lvl] is the
        // synchronization point with a concurrent deleter's fetch_or: if
        // the level is already marked we must not link it anywhere.
        for (unsigned lvl = 1; lvl < height; ++lvl) {
            std::uintptr_t own = n->next[lvl].load(std::memory_order_acquire);
            for (;;) {
                if (marked(own))
                    return n; // being deleted: abandon remaining levels
                search(key, seq, preds, succs);
                if (succs[lvl] == n)
                    break; // already linked here
                if (!n->next[lvl].compare_exchange_strong(
                        own, pack(succs[lvl], false),
                        std::memory_order_acq_rel,
                        std::memory_order_acquire))
                    continue; // own changed: re-check the mark
                std::uintptr_t expected = pack(succs[lvl], false);
                if (preds[lvl]->next[lvl].compare_exchange_strong(
                        expected, pack(n, false), std::memory_order_acq_rel,
                        std::memory_order_acquire))
                    break;
                own = n->next[lvl].load(std::memory_order_acquire);
            }
        }
        return n;
    }

    // ---- delete -------------------------------------------------------------

    /// Try to become the logical deleter of `n` (mark next[0]).
    bool try_own(node *n) {
        std::uintptr_t w = n->next[0].load(std::memory_order_acquire);
        while (!marked(w)) {
            if (n->next[0].compare_exchange_weak(w, w | 1,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire))
                return true;
        }
        return false;
    }

    /// Complete the physical deletion of a logically deleted node: mark
    /// every tower level, re-search until it is unlinked from all levels
    /// (the searches themselves do the splicing), and retire exactly
    /// once.  Idempotent; safe from any thread; must run pinned.
    void complete_delete(node *n) {
        for (unsigned lvl = 1; lvl < n->height; ++lvl)
            n->next[lvl].fetch_or(1, std::memory_order_acq_rel);
        node *preds[max_height], *succs[max_height];
        for (;;) {
            search(n->key, n->seq, preds, succs);
            bool still_linked = false;
            for (unsigned lvl = 0; lvl < n->height; ++lvl) {
                if (succs[lvl] == n) {
                    still_linked = true;
                    break;
                }
            }
            if (!still_linked)
                break;
        }
        if (n->retire_claimed.exchange(1, std::memory_order_acq_rel) == 0)
            mm_.retire_raw(n, [](void *p) {
                node::destroy(static_cast<node *>(p));
            });
    }

    /// Complete every node this thread spliced out of level 0.  New
    /// splices triggered by the completions themselves are processed too.
    /// Must run pinned, before the epoch guard is released.
    void drain_pending() {
        auto &list = pending();
        while (!list.empty()) {
            node *n = list.back();
            list.pop_back();
            complete_delete(n);
        }
    }

    // ---- misc ---------------------------------------------------------------

    unsigned random_height() {
        const std::uint64_t r = thread_rng()();
        unsigned h = 1;
        while (h < max_height && (r >> h) % 2 == 1)
            ++h;
        return h;
    }

    /// Process-unique sequence numbers without a hot shared counter.
    /// Dense thread ids are recycled when threads exit (and the
    /// thread_local counter restarts), so the id itself cannot be the
    /// uniquifier; instead every thread draws a process-unique 32-bit
    /// prefix once and counts locally below it.
    static std::uint64_t next_seq() {
        static std::atomic<std::uint64_t> next_prefix{1};
        thread_local const std::uint64_t prefix =
            next_prefix.fetch_add(1, std::memory_order_relaxed);
        thread_local std::uint64_t counter = 0;
        return (prefix << 32) | ++counter;
    }

    std::vector<node *> &pending() {
        return pending_[thread_index()].value;
    }

    /// Diagnostics: alive (unmarked) node count at level 0. O(n).
    std::size_t count_alive() {
        epoch_manager::guard g(mm_);
        std::size_t n = 0;
        node *curr = ptr(head_->next[0].load(std::memory_order_acquire));
        while (curr != tail_) {
            const std::uintptr_t w =
                curr->next[0].load(std::memory_order_acquire);
            if (!marked(w))
                ++n;
            curr = ptr(w);
        }
        return n;
    }

    node *head_;
    node *tail_;
    epoch_manager mm_;
    cache_aligned<std::vector<node *>> pending_[max_registered_threads];
};

} // namespace klsm
