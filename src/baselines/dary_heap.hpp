#pragma once

// Sequential d-ary min-heap.
//
// The engineered MultiQueue (Williams & Sanders, arXiv 2107.01350)
// replaces the classic binary heap under each per-queue lock with a
// c-ary heap (c = 4 in their tuned configuration): the wider node
// trades a few extra key comparisons on sift-down for a tree only half
// as deep, so a delete-min touches half as many cache lines — the right
// trade once the two-choice rule keeps every heap small and the lock
// hold time is dominated by memory traffic, not comparisons.
//
// Interface-compatible with binary_heap (insert, try_delete_min,
// min_key, drain, ...) so either can back a MultiQueue.

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace klsm {

template <typename K, typename V, unsigned Arity = 4>
class dary_heap {
    static_assert(Arity >= 2, "a heap needs at least two children");

public:
    using key_type = K;
    using value_type = V;

    bool empty() const { return data_.empty(); }
    std::size_t size() const { return data_.size(); }

    void reserve(std::size_t n) { data_.reserve(n); }

    void insert(const K &key, const V &value) {
        data_.emplace_back(key, value);
        sift_up(data_.size() - 1);
    }

    /// Minimum key without removing it; undefined on empty heap.
    const K &min_key() const {
        assert(!data_.empty());
        return data_.front().first;
    }

    bool try_find_min(K &key, V &value) const {
        if (data_.empty())
            return false;
        key = data_.front().first;
        value = data_.front().second;
        return true;
    }

    bool try_delete_min(K &key, V &value) {
        if (data_.empty())
            return false;
        key = data_.front().first;
        value = data_.front().second;
        data_.front() = data_.back();
        data_.pop_back();
        if (!data_.empty())
            sift_down(0);
        return true;
    }

    void clear() { data_.clear(); }

    /// Move all elements out (bulk spill / handle flush).
    std::vector<std::pair<K, V>> drain() {
        std::vector<std::pair<K, V>> out = std::move(data_);
        data_.clear();
        return out;
    }

    /// Heap-property check for tests.
    bool check_invariants() const {
        for (std::size_t i = 1; i < data_.size(); ++i)
            if (data_[i].first < data_[(i - 1) / Arity].first)
                return false;
        return true;
    }

private:
    void sift_up(std::size_t i) {
        while (i > 0) {
            const std::size_t parent = (i - 1) / Arity;
            if (!(data_[i].first < data_[parent].first))
                break;
            std::swap(data_[i], data_[parent]);
            i = parent;
        }
    }

    void sift_down(std::size_t i) {
        const std::size_t n = data_.size();
        for (;;) {
            std::size_t smallest = i;
            const std::size_t first = Arity * i + 1;
            const std::size_t last =
                first + Arity < n ? first + Arity : n;
            for (std::size_t c = first; c < last; ++c)
                if (data_[c].first < data_[smallest].first)
                    smallest = c;
            if (smallest == i)
                return;
            std::swap(data_[i], data_[smallest]);
            i = smallest;
        }
    }

    std::vector<std::pair<K, V>> data_;
};

} // namespace klsm
