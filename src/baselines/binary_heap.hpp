#pragma once

// Sequential binary min-heap.
//
// Substrate for three baselines: the paper's "Heap + Lock" comparator
// (Figure 3), the MultiQueue's per-queue heaps, and the hybrid
// k-priority-queue's thread-local buffers.  Plain array layout, sift
// up/down, O(log n) operations.

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace klsm {

template <typename K, typename V>
class binary_heap {
public:
    using key_type = K;
    using value_type = V;

    bool empty() const { return data_.empty(); }
    std::size_t size() const { return data_.size(); }

    void reserve(std::size_t n) { data_.reserve(n); }

    void insert(const K &key, const V &value) {
        data_.emplace_back(key, value);
        sift_up(data_.size() - 1);
    }

    /// Minimum key without removing it; undefined on empty heap.
    const K &min_key() const {
        assert(!data_.empty());
        return data_.front().first;
    }

    bool try_find_min(K &key, V &value) const {
        if (data_.empty())
            return false;
        key = data_.front().first;
        value = data_.front().second;
        return true;
    }

    bool try_delete_min(K &key, V &value) {
        if (data_.empty())
            return false;
        key = data_.front().first;
        value = data_.front().second;
        data_.front() = data_.back();
        data_.pop_back();
        if (!data_.empty())
            sift_down(0);
        return true;
    }

    void clear() { data_.clear(); }

    /// Move all elements out (used by the hybrid queue's bulk spill).
    std::vector<std::pair<K, V>> drain() {
        std::vector<std::pair<K, V>> out = std::move(data_);
        data_.clear();
        return out;
    }

    /// Heap-property check for tests.
    bool check_invariants() const {
        for (std::size_t i = 1; i < data_.size(); ++i)
            if (data_[i].first < data_[(i - 1) / 2].first)
                return false;
        return true;
    }

private:
    void sift_up(std::size_t i) {
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!(data_[i].first < data_[parent].first))
                break;
            std::swap(data_[i], data_[parent]);
            i = parent;
        }
    }

    void sift_down(std::size_t i) {
        const std::size_t n = data_.size();
        for (;;) {
            std::size_t smallest = i;
            const std::size_t l = 2 * i + 1, r = 2 * i + 2;
            if (l < n && data_[l].first < data_[smallest].first)
                smallest = l;
            if (r < n && data_[r].first < data_[smallest].first)
                smallest = r;
            if (smallest == i)
                return;
            std::swap(data_[i], data_[smallest]);
            i = smallest;
        }
    }

    std::vector<std::pair<K, V>> data_;
};

} // namespace klsm
