#pragma once

// Version-stamped pointers (paper Section 4.4).
//
// The shared k-LSM publishes its BlockArray through a single atomic
// pointer that is replaced with compare-and-swap.  Because BlockArray
// instances are *reused* (two per thread, never freed), a plain pointer
// CAS would be ABA-unsafe: the same address can reappear with different
// contents.  The paper's fix:
//
//   "We allocate these instances aligned to 2048-Byte boundaries, allowing
//    us to steal the ten least significant bits of a pointer to BlockArray,
//    and work around the ABA problem by stamping the pointer with a
//    truncated version number."
//
// This header implements exactly that: a 64-bit word holding a pointer to
// a 2048-byte-aligned object in the high bits and a 10-bit (configurable)
// truncated version stamp in the low bits.  The full version number lives
// in the pointee and is verified directly before each CAS to shrink the
// window in which a 1024-generation wraparound could alias.

#include <atomic>
#include <cstdint>

namespace klsm {

template <typename T, unsigned StampBits = 10>
class stamped_ptr {
public:
    static constexpr std::uintptr_t alignment = std::uintptr_t{1}
                                                << StampBits;
    static constexpr std::uintptr_t stamp_mask = alignment - 1;

    constexpr stamped_ptr() = default;

    stamped_ptr(T *ptr, std::uint64_t version)
        : bits_(reinterpret_cast<std::uintptr_t>(ptr) |
                (version & stamp_mask)) {}

    T *ptr() const { return reinterpret_cast<T *>(bits_ & ~stamp_mask); }

    /// The truncated version stamp carried in the low bits.
    std::uint64_t stamp() const { return bits_ & stamp_mask; }

    /// True if `full_version`'s truncation matches the carried stamp.
    bool matches(std::uint64_t full_version) const {
        return (full_version & stamp_mask) == stamp();
    }

    std::uintptr_t raw() const { return bits_; }
    static stamped_ptr from_raw(std::uintptr_t raw) {
        stamped_ptr p;
        p.bits_ = raw;
        return p;
    }

    bool operator==(const stamped_ptr &) const = default;

private:
    std::uintptr_t bits_ = 0;
};

/// Atomic cell holding a stamped pointer; a thin, checked wrapper around
/// std::atomic<uintptr_t> so the CAS-on-shared in the k-LSM reads like the
/// paper's pseudocode.
template <typename T, unsigned StampBits = 10>
class atomic_stamped_ptr {
public:
    using value_type = stamped_ptr<T, StampBits>;

    atomic_stamped_ptr() : bits_(0) {}

    value_type load(std::memory_order order = std::memory_order_acquire)
        const {
        return value_type::from_raw(bits_.load(order));
    }

    void store(value_type v,
               std::memory_order order = std::memory_order_release) {
        bits_.store(v.raw(), order);
    }

    bool compare_exchange(value_type expected, value_type desired) {
        std::uintptr_t e = expected.raw();
        return bits_.compare_exchange_strong(e, desired.raw(),
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire);
    }

private:
    std::atomic<std::uintptr_t> bits_;
};

} // namespace klsm
