#pragma once

// Bounded exponential backoff for CAS retry loops.  On contended compare-
// and-swap failure, spinning immediately again only generates coherence
// traffic; pausing for an exponentially growing (bounded) number of cycles
// lets the winner finish.

#include <atomic>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace klsm {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class exp_backoff {
public:
    explicit exp_backoff(std::uint32_t max_spins = 1024)
        : limit_(1), max_(max_spins) {}

    void operator()() {
        for (std::uint32_t i = 0; i < limit_; ++i)
            cpu_relax();
        if (limit_ < max_)
            limit_ *= 2;
    }

    void reset() { limit_ = 1; }

private:
    std::uint32_t limit_;
    std::uint32_t max_;
};

} // namespace klsm
