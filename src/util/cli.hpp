#pragma once

// Minimal command-line flag parser shared by the benchmark binaries.
// Flags look like `--threads 4` or `--threads=4`; unrecognized flags abort
// with a usage message so typos in experiment scripts fail loudly.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace klsm {

class cli_parser {
public:
    cli_parser(std::string description) : description_(std::move(description)) {}

    void add_flag(const std::string &name, const std::string &default_value,
                  const std::string &help) {
        values_[name] = default_value;
        help_.emplace_back(name, help + " (default: " + default_value + ")");
    }

    /// Parse argv; exits with usage on `--help` or unknown flags.
    void parse(int argc, char **argv) {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                usage(argv[0]);
                std::exit(0);
            }
            if (arg.rfind("--", 0) != 0) {
                std::cerr << "unexpected argument: " << arg << "\n";
                usage(argv[0]);
                std::exit(2);
            }
            std::string name, value;
            auto eq = arg.find('=');
            if (eq != std::string::npos) {
                name = arg.substr(2, eq - 2);
                value = arg.substr(eq + 1);
            } else {
                name = arg.substr(2);
                if (i + 1 >= argc) {
                    std::cerr << "flag --" << name << " needs a value\n";
                    std::exit(2);
                }
                value = argv[++i];
            }
            auto it = values_.find(name);
            if (it == values_.end()) {
                std::cerr << "unknown flag --" << name << "\n";
                usage(argv[0]);
                std::exit(2);
            }
            it->second = value;
        }
    }

    std::string get(const std::string &name) const { return values_.at(name); }

    std::int64_t get_int(const std::string &name) const {
        return std::stoll(values_.at(name));
    }

    double get_double(const std::string &name) const {
        return std::stod(values_.at(name));
    }

    bool get_bool(const std::string &name) const {
        const auto &v = values_.at(name);
        return v == "1" || v == "true" || v == "yes" || v == "on";
    }

    /// Comma-separated integer list, e.g. "--threads 1,2,4".
    std::vector<std::int64_t> get_int_list(const std::string &name) const {
        std::vector<std::int64_t> out;
        std::stringstream ss(values_.at(name));
        std::string tok;
        while (std::getline(ss, tok, ','))
            if (!tok.empty())
                out.push_back(std::stoll(tok));
        return out;
    }

    std::vector<std::string> get_list(const std::string &name) const {
        std::vector<std::string> out;
        std::stringstream ss(values_.at(name));
        std::string tok;
        while (std::getline(ss, tok, ','))
            if (!tok.empty())
                out.push_back(tok);
        return out;
    }

private:
    void usage(const char *prog) const {
        std::cerr << description_ << "\n\nusage: " << prog << " [flags]\n";
        for (const auto &[name, help] : help_)
            std::cerr << "  --" << name << "  " << help << "\n";
    }

    std::string description_;
    std::map<std::string, std::string> values_;
    std::vector<std::pair<std::string, std::string>> help_;
};

} // namespace klsm
