#pragma once

// Minimal command-line flag parser shared by the benchmark binaries.
// Flags look like `--threads 4` or `--threads=4`; unrecognized flags abort
// with a usage message so typos in experiment scripts fail loudly.
//
// Flags can be organised into named groups (`begin_group`): `--help`
// prints one section per group, which is how klsm_bench shows each
// workload's flags under its own heading.  Re-registering a flag name
// exits immediately — with many workloads contributing flags to one
// parser, a silent collision would leave one of them reading the
// other's value.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace klsm {

class cli_parser {
public:
    cli_parser(std::string description) : description_(std::move(description)) {}

    void add_flag(const std::string &name, const std::string &default_value,
                  const std::string &help) {
        if (values_.count(name)) {
            std::cerr << "internal error: flag --" << name
                      << " registered twice\n";
            std::exit(2);
        }
        values_[name] = default_value;
        help_.push_back({name, help + " (default: " + default_value + ")",
                         current_group_});
    }

    /// Flags added after this call belong to `title`; `usage()` prints
    /// one section per group in first-registration order.  Flags added
    /// before any begin_group() render first, unheaded.
    void begin_group(const std::string &title) { current_group_ = title; }

    /// Names of the flags registered under `title`, in registration
    /// order.  Lets tests assert that a workload's flags stay inside
    /// its own group.
    std::vector<std::string> group_flags(const std::string &title) const {
        std::vector<std::string> out;
        for (const auto &e : help_)
            if (e.group == title)
                out.push_back(e.name);
        return out;
    }

    /// Group titles in first-registration order (the unheaded group is
    /// the empty string and is omitted).
    std::vector<std::string> groups() const {
        std::vector<std::string> out;
        for (const auto &e : help_)
            if (!e.group.empty() &&
                std::find(out.begin(), out.end(), e.group) == out.end())
                out.push_back(e.group);
        return out;
    }

    /// A boolean flag: bare `--name` means true; `--name=false` and
    /// `--name false` still work.
    void add_bool_flag(const std::string &name, bool default_value,
                       const std::string &help) {
        add_flag(name, default_value ? "true" : "false", help);
        bool_flags_.insert(name);
    }

    /// Parse argv; exits with usage on `--help` or unknown flags.
    void parse(int argc, char **argv) {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                usage(argv[0]);
                std::exit(0);
            }
            if (arg.rfind("--", 0) != 0) {
                std::cerr << "unexpected argument: " << arg << "\n";
                usage(argv[0]);
                std::exit(2);
            }
            std::string name, value;
            auto eq = arg.find('=');
            if (eq != std::string::npos) {
                name = arg.substr(2, eq - 2);
                value = arg.substr(eq + 1);
            } else {
                name = arg.substr(2);
                const bool is_bool = bool_flags_.count(name) != 0;
                // A bare boolean flag (last argument, or followed by
                // another flag) means true.
                if (is_bool &&
                    (i + 1 >= argc ||
                     std::string(argv[i + 1]).rfind("--", 0) == 0)) {
                    value = "true";
                } else if (i + 1 >= argc) {
                    std::cerr << "flag --" << name << " needs a value\n";
                    std::exit(2);
                } else {
                    value = argv[++i];
                }
            }
            auto it = values_.find(name);
            if (it == values_.end()) {
                std::cerr << "unknown flag --" << name << "\n";
                usage(argv[0]);
                std::exit(2);
            }
            it->second = value;
        }
    }

    std::string get(const std::string &name) const { return values_.at(name); }

    std::int64_t get_int(const std::string &name) const {
        return parse_number(name, values_.at(name),
                            [](const std::string &s, std::size_t &pos) {
                                return std::stoll(s, &pos);
                            });
    }

    /// Full-range unsigned 64-bit accessor.  `get_int` goes through
    /// stoll and cannot represent values above INT64_MAX (RNG seeds are
    /// commonly full 64-bit hashes); this parses the whole uint64 range
    /// strictly — rejecting negatives, which stoull would silently wrap.
    std::uint64_t get_uint64(const std::string &name) const {
        const std::string &v = values_.at(name);
        // Require a leading digit: stoull would skip whitespace and then
        // accept a sign, silently wrapping negatives.
        if (v.empty() || !std::isdigit(static_cast<unsigned char>(v[0]))) {
            std::cerr << "flag --" << name
                      << ": not an unsigned integer: " << v << "\n";
            std::exit(2);
        }
        return parse_number(name, v,
                            [](const std::string &s, std::size_t &pos) {
                                return std::stoull(s, &pos);
                            });
    }

    double get_double(const std::string &name) const {
        return parse_number(name, values_.at(name),
                            [](const std::string &s, std::size_t &pos) {
                                return std::stod(s, &pos);
                            });
    }

    bool get_bool(const std::string &name) const {
        const auto &v = values_.at(name);
        return v == "1" || v == "true" || v == "yes" || v == "on";
    }

    /// Comma-separated integer list, e.g. "--threads 1,2,4".
    std::vector<std::int64_t> get_int_list(const std::string &name) const {
        std::vector<std::int64_t> out;
        std::stringstream ss(values_.at(name));
        std::string tok;
        while (std::getline(ss, tok, ','))
            if (!tok.empty())
                out.push_back(
                    parse_number(name, tok,
                                 [](const std::string &s, std::size_t &pos) {
                                     return std::stoll(s, &pos);
                                 }));
        return out;
    }

    std::vector<std::string> get_list(const std::string &name) const {
        std::vector<std::string> out;
        std::stringstream ss(values_.at(name));
        std::string tok;
        while (std::getline(ss, tok, ','))
            if (!tok.empty())
                out.push_back(tok);
        return out;
    }

private:
    /// stoll/stod throw on fully non-numeric input but silently stop at
    /// trailing garbage ("1e6" parses as 1); exit with the flag name in
    /// both cases instead of truncating or aborting.
    template <typename Parse>
    static auto parse_number(const std::string &name, const std::string &v,
                             Parse &&parse)
        -> decltype(parse(v, std::declval<std::size_t &>())) {
        try {
            std::size_t pos = 0;
            auto out = parse(v, pos);
            if (pos == v.size())
                return out;
        } catch (const std::exception &) {
        }
        std::cerr << "flag --" << name << ": not a number: " << v << "\n";
        std::exit(2);
    }

    void usage(const char *prog) const {
        std::cerr << description_ << "\n\nusage: " << prog << " [flags]\n";
        // One pass per group keeps each group's flags contiguous even
        // if registration interleaved; groups print in first-seen
        // order, the unheaded group first.
        std::vector<std::string> order{""};
        for (const auto &g : groups())
            order.push_back(g);
        for (const auto &group : order) {
            bool any = false;
            for (const auto &e : help_) {
                if (e.group != group)
                    continue;
                if (!any && !group.empty())
                    std::cerr << "\n" << group << ":\n";
                any = true;
                std::cerr << "  --" << e.name << "  " << e.help << "\n";
            }
        }
    }

    struct flag_help {
        std::string name;
        std::string help;
        std::string group;
    };

    std::string description_;
    std::string current_group_;
    std::map<std::string, std::string> values_;
    std::set<std::string> bool_flags_;
    std::vector<flag_help> help_;
};

} // namespace klsm
