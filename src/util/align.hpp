#pragma once

// Cache-line alignment helpers.
//
// Concurrent priority queues are extremely sensitive to false sharing:
// per-thread counters, per-queue locks and atomic head pointers must each
// live on their own cache line.  `cache_aligned<T>` wraps a value in a
// cache-line-sized, cache-line-aligned box.

#include <cstddef>
#include <new>

namespace klsm {

// Fixed at 64 bytes (x86-64, common AArch64): using
// std::hardware_destructive_interference_size would make the ABI depend
// on tuning flags (gcc warns about exactly this).
inline constexpr std::size_t cache_line_size = 64;

/// A value padded out to (a multiple of) a cache line, preventing false
/// sharing between adjacent array elements.
template <typename T>
struct alignas(cache_line_size) cache_aligned {
    T value{};

    cache_aligned() = default;
    explicit cache_aligned(const T &v) : value(v) {}

    T &operator*() { return value; }
    const T &operator*() const { return value; }
    T *operator->() { return &value; }
    const T *operator->() const { return &value; }
};

} // namespace klsm
