#pragma once

// Dense thread identifiers.
//
// Every concurrent queue in this library keeps per-thread state (thread-
// local LSMs, item pools, block pools) in arrays indexed by a small dense
// id, exactly as the paper's implementation does inside Pheet.  This
// registry hands out the smallest free id to each thread on first use and
// recycles the id when the thread exits, so long-running test suites that
// spawn thousands of short-lived threads stay within `max_threads` of any
// queue as long as no more than that many threads are *concurrently*
// alive.

#include <cstdint>

namespace klsm {

/// Hard process-wide cap on concurrently registered threads.
inline constexpr std::uint32_t max_registered_threads = 256;

/// Dense id of the calling thread; assigned on first call, released at
/// thread exit.  Never throws once assigned.
std::uint32_t thread_index();

/// Number of ids ever concurrently live (high-water mark); test helper.
std::uint32_t thread_index_high_water();

} // namespace klsm
