#pragma once

// Dense thread identifiers.
//
// Every concurrent queue in this library keeps per-thread state (thread-
// local LSMs, item pools, block pools) in arrays indexed by a small dense
// id, exactly as the paper's implementation does inside Pheet.  This
// registry hands out the smallest free id to each thread on first use and
// recycles the id when the thread exits, so long-running test suites that
// spawn thousands of short-lived threads stay within `max_threads` of any
// queue as long as no more than that many threads are *concurrently*
// alive.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace klsm {

/// Hard process-wide cap on concurrently registered threads.
inline constexpr std::uint32_t max_registered_threads = 256;

/// Fail fast when a run would exhaust the thread-id registry.  Without
/// this, the first queue operation past the cap throws inside a worker
/// std::thread, which std::terminate()s the whole process with no
/// indication of why.  Call before spawning `workers` threads that will
/// touch a queue; one slot is reserved for the calling thread (it
/// typically registers during prefill or verification).
inline void check_thread_capacity(unsigned workers) {
    if (workers >= max_registered_threads)
        throw std::invalid_argument(
            "klsm: " + std::to_string(workers) +
            " worker threads requested, but at most " +
            std::to_string(max_registered_threads - 1) +
            " are supported (max_registered_threads = " +
            std::to_string(max_registered_threads) +
            " per-thread slots, one reserved for the calling thread)");
}

/// Dense id of the calling thread; assigned on first call, released at
/// thread exit.  Never throws once assigned.
std::uint32_t thread_index();

/// Incarnation counter of the calling thread's slot: bumped every time
/// the slot is (re)assigned, never zero.  Structures that cache
/// per-slot state across operations compare this against the stored
/// value to detect that a slot was recycled to a different thread and
/// the cached state must be reset.
std::uint32_t thread_generation();

/// Number of ids ever concurrently live (high-water mark); test helper.
std::uint32_t thread_index_high_water();

/// True iff `slot` is currently assigned to a live thread.  Advisory by
/// nature — the answer can be stale by the time the caller acts on it —
/// but sufficient for orphan sweeps that re-verify under their own
/// locking (mm/epoch.cpp reclaims limbo lists abandoned by exited
/// threads; a false "in use" merely defers that reclaim, and a false
/// "free" races only against a fresh owner that takes the same per-slot
/// lock).  Slots >= max_registered_threads report false.
bool thread_slot_in_use(std::uint32_t slot);

} // namespace klsm
