#include "util/thread_id.hpp"

#include <atomic>
#include <mutex>
#include <stdexcept>

namespace klsm {
namespace {

// Bitmap of ids in use, protected by a mutex: registration happens once
// per thread lifetime, so this is nowhere near any fast path.
std::mutex registry_mutex;
bool in_use[max_registered_threads];
std::atomic<std::uint32_t> high_water{0};

std::uint32_t acquire_slot() {
    std::lock_guard<std::mutex> lock(registry_mutex);
    for (std::uint32_t i = 0; i < max_registered_threads; ++i) {
        if (!in_use[i]) {
            in_use[i] = true;
            std::uint32_t hw = high_water.load(std::memory_order_relaxed);
            while (i + 1 > hw &&
                   !high_water.compare_exchange_weak(hw, i + 1)) {
            }
            return i;
        }
    }
    throw std::runtime_error("klsm: more than max_registered_threads "
                             "threads concurrently registered");
}

void release_slot(std::uint32_t id) {
    std::lock_guard<std::mutex> lock(registry_mutex);
    in_use[id] = false;
}

struct slot_holder {
    std::uint32_t id = acquire_slot();
    ~slot_holder() { release_slot(id); }
};

} // namespace

std::uint32_t thread_index() {
    thread_local slot_holder holder;
    return holder.id;
}

std::uint32_t thread_index_high_water() {
    return high_water.load(std::memory_order_relaxed);
}

} // namespace klsm
