#include "util/thread_id.hpp"

#include <atomic>
#include <mutex>
#include <stdexcept>

namespace klsm {
namespace {

// Bitmap of ids in use, protected by a mutex: registration happens once
// per thread lifetime, so this is nowhere near any fast path.
std::mutex registry_mutex;
bool in_use[max_registered_threads];
std::uint32_t generations[max_registered_threads];
std::atomic<std::uint32_t> high_water{0};

struct slot_assignment {
    std::uint32_t id;
    std::uint32_t generation;
};

slot_assignment acquire_slot() {
    std::lock_guard<std::mutex> lock(registry_mutex);
    for (std::uint32_t i = 0; i < max_registered_threads; ++i) {
        if (!in_use[i]) {
            in_use[i] = true;
            std::uint32_t hw = high_water.load(std::memory_order_relaxed);
            while (i + 1 > hw &&
                   !high_water.compare_exchange_weak(hw, i + 1)) {
            }
            return {i, ++generations[i]}; // generations start at 1
        }
    }
    throw std::runtime_error("klsm: more than max_registered_threads "
                             "threads concurrently registered");
}

void release_slot(std::uint32_t id) {
    std::lock_guard<std::mutex> lock(registry_mutex);
    in_use[id] = false;
}

struct slot_holder {
    slot_assignment slot = acquire_slot();
    ~slot_holder() { release_slot(slot.id); }
};

slot_holder &holder() {
    thread_local slot_holder h;
    return h;
}

} // namespace

std::uint32_t thread_index() { return holder().slot.id; }

std::uint32_t thread_generation() { return holder().slot.generation; }

std::uint32_t thread_index_high_water() {
    return high_water.load(std::memory_order_relaxed);
}

bool thread_slot_in_use(std::uint32_t slot) {
    if (slot >= max_registered_threads)
        return false;
    std::lock_guard<std::mutex> lock(registry_mutex);
    return in_use[slot];
}

} // namespace klsm
