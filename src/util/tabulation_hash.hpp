#pragma once

// Tabulation hashing (Zobrist hashing).
//
// The paper's shared k-LSM uses per-block Bloom filters over thread ids,
// with "two hash-values obtained by tabular hashing" (Section 4.1).
// Tabulation hashing is 3-independent, extremely fast (four table lookups
// for a 32-bit key), and its tables are filled once at start-up.

#include <array>
#include <cstdint>

namespace klsm {

/// A single tabulation hash function over 32-bit inputs producing 64-bit
/// outputs.  Two independent instances (seeded differently) provide the two
/// Bloom-filter probes.
class tabulation_hash {
public:
    explicit tabulation_hash(std::uint64_t seed);

    std::uint64_t operator()(std::uint32_t x) const {
        return table_[0][x & 0xff] ^ table_[1][(x >> 8) & 0xff] ^
               table_[2][(x >> 16) & 0xff] ^ table_[3][(x >> 24) & 0xff];
    }

private:
    std::array<std::array<std::uint64_t, 256>, 4> table_;
};

/// The two process-wide hash functions used for thread-id Bloom filters.
const tabulation_hash &thread_hash_a();
const tabulation_hash &thread_hash_b();

} // namespace klsm
