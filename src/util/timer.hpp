#pragma once

// Wall-clock timing helpers for the benchmark harness.

#include <chrono>
#include <cstdint>

namespace klsm {

class wall_timer {
public:
    wall_timer() : start_(clock::now()) {}

    void reset() { start_ = clock::now(); }

    double elapsed_s() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    std::uint64_t elapsed_ns() const {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                clock::now() - start_)
                .count());
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

} // namespace klsm
