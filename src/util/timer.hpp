#pragma once

// Wall-clock timing helpers for the benchmark harness.

#include <chrono>
#include <cstdint>

namespace klsm {

/// Raw monotonic nanosecond stamp, for per-operation latency recording.
//
// This is deliberately a free function returning an integer, not a
// timer object: the latency recorders (src/stats/) stamp the start and
// end of individual queue operations, where constructing a time_point
// pair and converting through double seconds — as wall_timer's
// elapsed_s() does — both costs more and rounds away the sub-microsecond
// differences that p50 insert latencies live in.  steady_clock on Linux
// is clock_gettime(CLOCK_MONOTONIC), ~20ns per call with nanosecond
// resolution; the uint64 difference of two stamps is exact.
inline std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

class wall_timer {
public:
    wall_timer() : start_ns_(now_ns()) {}

    void reset() { start_ns_ = now_ns(); }

    std::uint64_t elapsed_ns() const { return now_ns() - start_ns_; }

    double elapsed_s() const {
        return static_cast<double>(elapsed_ns()) * 1e-9;
    }

private:
    std::uint64_t start_ns_;
};

} // namespace klsm
