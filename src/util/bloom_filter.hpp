#pragma once

// 64-bit Bloom filter over thread ids, as used by the shared k-LSM to
// preserve local ordering semantics (paper Section 4.1):
//
//   "We use 64-bit Bloom filters with two hash-values obtained by tabular
//    hashing.  Since the Bloom filters are only updated when two blocks
//    are merged, no synchronization mechanism is necessary."
//
// The filter may report false positives (a thread that never contributed
// to a block), which costs only an extra key comparison, but it never
// reports false negatives, which is what the local-ordering proof needs.

#include <cstdint>

#include "util/tabulation_hash.hpp"

namespace klsm {

class thread_bloom_filter {
public:
    constexpr thread_bloom_filter() = default;

    void insert(std::uint32_t thread_id) { bits_ |= mask(thread_id); }

    /// True if `thread_id` may have contributed; never a false negative.
    bool may_contain(std::uint32_t thread_id) const {
        const std::uint64_t m = mask(thread_id);
        return (bits_ & m) == m;
    }

    /// Union of two filters; used when two blocks are merged.
    void merge(const thread_bloom_filter &other) { bits_ |= other.bits_; }

    void clear() { bits_ = 0; }
    bool empty() const { return bits_ == 0; }
    std::uint64_t raw() const { return bits_; }

private:
    static std::uint64_t mask(std::uint32_t id) {
        return (std::uint64_t{1} << (thread_hash_a()(id) & 63)) |
               (std::uint64_t{1} << (thread_hash_b()(id) & 63));
    }

    std::uint64_t bits_ = 0;
};

} // namespace klsm
