#pragma once

// Test-and-test-and-set spin lock with exponential backoff.
//
// Used by the "Heap + Lock" baseline of Figure 3 and by the MultiQueue's
// per-queue locks.  TTAS spins on a plain load (cache-local) and only
// attempts the atomic exchange when the lock looks free, which keeps the
// lock's cache line mostly shared instead of ping-ponging in M state.

#include <atomic>

#include "util/backoff.hpp"

namespace klsm {

class spin_lock {
public:
    void lock() {
        exp_backoff backoff;
        for (;;) {
            if (!locked_.exchange(true, std::memory_order_acquire))
                return;
            do {
                backoff();
            } while (locked_.load(std::memory_order_relaxed));
        }
    }

    /// Single attempt; the MultiQueue relies on this to skip contended
    /// queues instead of waiting on them.
    bool try_lock() {
        return !locked_.load(std::memory_order_relaxed) &&
               !locked_.exchange(true, std::memory_order_acquire);
    }

    void unlock() { locked_.store(false, std::memory_order_release); }

    bool is_locked() const {
        return locked_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<bool> locked_{false};
};

} // namespace klsm
