#pragma once

// Fast pseudo-random number generation for the hot paths of the relaxed
// priority queues (random candidate selection in the shared k-LSM, victim
// selection for spying, spray walks, MultiQueue two-choice sampling).
//
// std::mt19937 is far too slow to sit inside a delete-min; we use
// xoroshiro128++ (Blackman & Vigna) seeded via splitmix64, which passes
// BigCrush and costs a handful of cycles per draw.

#include <cstdint>
#include <limits>

namespace klsm {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t &state) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoroshiro128++ generator.  Satisfies std::uniform_random_bit_generator
/// so it can also be plugged into <random> distributions in tests.
class xoroshiro128 {
public:
    using result_type = std::uint64_t;

    explicit xoroshiro128(std::uint64_t seed = 0x853c49e6748fea9bULL) {
        std::uint64_t sm = seed;
        s0_ = splitmix64(sm);
        s1_ = splitmix64(sm);
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1; // the all-zero state is absorbing
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() {
        const std::uint64_t sa = s0_;
        std::uint64_t sb = s1_;
        const std::uint64_t result = rotl(sa + sb, 17) + sa;
        sb ^= sa;
        s0_ = rotl(sa, 49) ^ sb ^ (sb << 21);
        s1_ = rotl(sb, 28);
        return result;
    }

    /// Uniform integer in [0, bound), bound >= 1.  Lemire's multiply-shift
    /// rejection method: unbiased and division-free in the common case.
    std::uint64_t bounded(std::uint64_t bound) {
        __uint128_t m = static_cast<__uint128_t>(operator()()) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            const std::uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                m = static_cast<__uint128_t>(operator()()) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
        return lo + bounded(hi - lo + 1);
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s0_, s1_;
};

/// Per-thread generator, seeded from the thread's address so distinct
/// threads draw independent streams without coordination.
inline xoroshiro128 &thread_rng() {
    thread_local xoroshiro128 rng{
        0x2545f4914f6cdd1dULL ^
        reinterpret_cast<std::uintptr_t>(&rng)};
    return rng;
}

} // namespace klsm
