#pragma once

// Directory of thread slots that have actually touched a queue instance.
//
// Queues keep per-thread state in arrays indexed by the dense thread id
// (util/thread_id.hpp).  Spying must pick *victims* among slots that may
// hold items; picking uniformly over all possible slots would waste most
// attempts in processes that also run other (non-queue) threads.  Each
// slot registers itself on first use; registration is lock-free and
// idempotent.

#include <atomic>
#include <cstdint>

#include "util/rng.hpp"
#include "util/thread_id.hpp"

namespace klsm {

class slot_directory {
public:
    /// Register the calling thread's slot (idempotent, lock-free).
    std::uint32_t register_self() {
        const std::uint32_t slot = thread_index();
        if (!registered_[slot].load(std::memory_order_relaxed)) {
            if (!registered_[slot].exchange(true,
                                            std::memory_order_acq_rel)) {
                const std::uint32_t pos =
                    count_.fetch_add(1, std::memory_order_acq_rel);
                slots_[pos].store(slot, std::memory_order_release);
            }
        }
        return slot;
    }

    /// Number of registered slots.
    std::uint32_t size() const {
        return count_.load(std::memory_order_acquire);
    }

    /// A uniformly random registered slot, excluding `self` when more
    /// than one slot is registered; falls back to a deterministic scan so
    /// an existing victim is always found.  Returns
    /// max_registered_threads iff no slot is registered at all.
    std::uint32_t random_victim(std::uint32_t self) const {
        const std::uint32_t n = size();
        if (n == 0)
            return max_registered_threads;
        for (int attempt = 0; attempt < 4; ++attempt) {
            const std::uint32_t slot = slots_[thread_rng().bounded(n)].load(
                std::memory_order_acquire);
            if (slot != self || n == 1)
                return slot;
        }
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t slot =
                slots_[i].load(std::memory_order_acquire);
            if (slot != self)
                return slot;
        }
        return self; // only self is registered
    }

    /// Registered slot by dense position (pos < size()).
    std::uint32_t at(std::uint32_t pos) const {
        return slots_[pos].load(std::memory_order_acquire);
    }

    /// Visit every registered slot.
    template <typename F>
    void for_each(F &&f) const {
        const std::uint32_t n = size();
        for (std::uint32_t i = 0; i < n; ++i)
            f(slots_[i].load(std::memory_order_acquire));
    }

private:
    std::atomic<std::uint32_t> count_{0};
    std::atomic<bool> registered_[max_registered_threads] = {};
    std::atomic<std::uint32_t> slots_[max_registered_threads] = {};
};

} // namespace klsm
