#pragma once

// Small bit-twiddling helpers used throughout the LSM code, where block
// capacities are powers of two and levels are base-2 logarithms.

#include <bit>
#include <cstdint>

namespace klsm {

/// floor(log2(x)) for x >= 1.
constexpr unsigned log2_floor(std::uint64_t x) {
    return 63u - static_cast<unsigned>(std::countl_zero(x | 1));
}

/// ceil(log2(x)) for x >= 1; log2_ceil(1) == 0.
constexpr unsigned log2_ceil(std::uint64_t x) {
    return x <= 1 ? 0 : log2_floor(x - 1) + 1;
}

/// Smallest power of two >= x (x >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t x) {
    return std::uint64_t{1} << log2_ceil(x);
}

constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

} // namespace klsm
