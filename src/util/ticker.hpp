#pragma once

// A background thread that invokes a callback on a fixed period — the
// drive shaft of the adaptive-relaxation control loop (src/adapt/) and
// the metrics sampler (src/trace/), but deliberately generic: it knows
// nothing about queues or controllers.
//
// Ticks follow an *absolute* schedule anchored to the start timestamp:
// tick n fires at `start + n * period`.  The previous implementation
// re-armed a relative wait_for after each callback, so every tick
// inherited the scheduling jitter and callback latency of all ticks
// before it — over a long soak the "every 5ms" control loop drifted to
// noticeably longer effective periods, and metrics samples were
// unevenly spaced.  With the absolute schedule, jitter in one tick
// cannot move any later deadline; if a callback overruns whole
// periods, the missed ticks are skipped (no burst catch-up) and the
// schedule stays on the original grid.  The schedule arithmetic lives
// in `tick_schedule`, a pure helper unit-tested with fake clock values
// (tests/util/test_ticker.cpp).
//
// RAII: the thread starts on construction (when a callback is given)
// and is stopped and joined by the destructor, so a harness can scope
// the ticker to its measurement window with a local.  The wait is
// interruptible (condition variable, not a bare sleep): destruction
// returns promptly even with a long interval, instead of blocking a
// sweep's teardown for up to one period per benchmark point.  An empty
// callback constructs a no-op ticker, which keeps call sites
// branch-free.

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "util/timer.hpp"

namespace klsm {

/// Pure absolute-schedule arithmetic: deadlines on the fixed grid
/// `start + n * period`, n >= 1.  Clock-free so drift behavior is
/// testable without sleeping.
class tick_schedule {
public:
    tick_schedule(std::uint64_t start_ns, std::uint64_t period_ns)
        : start_ns_(start_ns), period_ns_(period_ns < 1 ? 1 : period_ns)
    {
    }

    std::uint64_t start_ns() const { return start_ns_; }
    std::uint64_t period_ns() const { return period_ns_; }

    /// Absolute deadline of tick `n` (n >= 1).
    std::uint64_t deadline_ns(std::uint64_t n) const
    {
        return start_ns_ + n * period_ns_;
    }

    /// Index of the first tick whose deadline lies strictly after
    /// `now_ns` — i.e. the next tick to wait for.  A callback that
    /// overran whole periods resumes on the original grid with the
    /// missed ticks skipped, never replayed in a burst.
    std::uint64_t next_index(std::uint64_t now_ns) const
    {
        if (now_ns < start_ns_ + period_ns_)
            return 1;
        return (now_ns - start_ns_) / period_ns_ + 1;
    }

private:
    std::uint64_t start_ns_;
    std::uint64_t period_ns_;
};

class periodic_ticker {
public:
    periodic_ticker() = default;

    /// Start calling `fn` every `interval_s` seconds until destruction.
    /// An empty `fn` (or a non-positive interval) starts nothing.
    periodic_ticker(std::function<void()> fn, double interval_s) {
        if (!fn || !(interval_s > 0))
            return;
        thread_ = std::thread([this, fn = std::move(fn), interval_s] {
            const auto period_ns = static_cast<std::uint64_t>(
                std::llround(interval_s * 1e9));
            tick_schedule sched(now_ns(), period_ns);
            std::uint64_t n = 1;
            std::unique_lock<std::mutex> lock(mtx_);
            for (;;) {
                const std::uint64_t deadline = sched.deadline_ns(n);
                std::uint64_t now = now_ns();
                while (now < deadline) {
                    if (cv_.wait_for(
                            lock,
                            std::chrono::nanoseconds(deadline - now),
                            [this] { return stop_; }))
                        return;
                    now = now_ns();
                }
                if (stop_)
                    return;
                // One tick, without holding the lock (the callback
                // may be slow).
                lock.unlock();
                fn();
                lock.lock();
                if (stop_)
                    return;
                n = sched.next_index(now_ns());
            }
        });
    }

    periodic_ticker(const periodic_ticker &) = delete;
    periodic_ticker &operator=(const periodic_ticker &) = delete;

    ~periodic_ticker() {
        {
            std::lock_guard<std::mutex> g(mtx_);
            stop_ = true;
        }
        cv_.notify_all();
        if (thread_.joinable())
            thread_.join();
    }

private:
    std::mutex mtx_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

} // namespace klsm
