#pragma once

// A background thread that invokes a callback on a fixed period — the
// drive shaft of the adaptive-relaxation control loop (src/adapt/), but
// deliberately generic: it knows nothing about queues or controllers.
//
// RAII: the thread starts on construction (when a callback is given)
// and is stopped and joined by the destructor, so a harness can scope
// the ticker to its measurement window with a local.  The wait is
// interruptible (condition variable, not a bare sleep): destruction
// returns promptly even with a long interval, instead of blocking a
// sweep's teardown for up to one period per benchmark point.  An empty
// callback constructs a no-op ticker, which keeps call sites
// branch-free.

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

namespace klsm {

class periodic_ticker {
public:
    periodic_ticker() = default;

    /// Start calling `fn` every `interval_s` seconds until destruction.
    /// An empty `fn` starts nothing.
    periodic_ticker(std::function<void()> fn, double interval_s) {
        if (!fn)
            return;
        thread_ = std::thread([this, fn = std::move(fn), interval_s] {
            std::unique_lock<std::mutex> lock(mtx_);
            while (!cv_.wait_for(
                lock, std::chrono::duration<double>(interval_s),
                [this] { return stop_; })) {
                // Timed out with stop_ still false: one tick, without
                // holding the lock (the callback may be slow).
                lock.unlock();
                fn();
                lock.lock();
            }
        });
    }

    periodic_ticker(const periodic_ticker &) = delete;
    periodic_ticker &operator=(const periodic_ticker &) = delete;

    ~periodic_ticker() {
        {
            std::lock_guard<std::mutex> g(mtx_);
            stop_ = true;
        }
        cv_.notify_all();
        if (thread_.joinable())
            thread_.join();
    }

private:
    std::mutex mtx_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

} // namespace klsm
