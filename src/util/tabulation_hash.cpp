#include "util/tabulation_hash.hpp"

#include "util/rng.hpp"

namespace klsm {

tabulation_hash::tabulation_hash(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto &t : table_)
        for (auto &e : t)
            e = splitmix64(sm);
}

const tabulation_hash &thread_hash_a() {
    static const tabulation_hash h{0x9e3779b97f4a7c15ULL};
    return h;
}

const tabulation_hash &thread_hash_b() {
    static const tabulation_hash h{0xc2b2ae3d27d4eb4fULL};
    return h;
}

} // namespace klsm
