#pragma once

// The cross-cutting benchmark configuration: everything a workload
// driver needs that is not specific to one workload — which structures
// to run, thread counts, pinning, relaxation/handle knobs, memory
// placement, tracing, and output routing.
//
// Workload-specific settings (event counts, arrival processes, graph
// sizes, ...) live in per-workload config structs owned by the
// registrants in bench/workload_*.cpp; each registrant parses and
// validates its own flags (see harness/workload_registry.hpp).  This
// struct is deliberately the *intersection*, not the union, of what
// the workloads consume.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mm/placement.hpp"
#include "mm/reclaim/config.hpp"
#include "trace/tracer.hpp"

namespace klsm::bench {

struct core_config {
    /// The resolved workload selection string (comma-separable), as it
    /// appears in the report's meta "benchmark" field.
    std::string workload = "throughput";

    std::vector<std::string> structures{"klsm"};
    std::vector<std::string> pins{"none"};
    std::vector<std::int64_t> threads_list{4};

    // Relaxation and handle knobs.
    std::size_t k = 256;
    std::size_t mq_stickiness = 8;
    std::size_t mq_buffer = 16;
    std::size_t insert_buffer = 0;
    std::size_t peek_cache = 0;

    // Shared measurement shape.
    std::size_t prefill = 100000;
    std::uint64_t seed = 1;
    std::uint64_t latency_sample = 0;

    // Adaptive-k controller.
    bool adaptive = false;
    std::size_t k_min = 16;
    std::size_t k_max = 4096;
    std::uint64_t rank_budget = 0;
    double adapt_interval_ms = 5.0;

    // Memory placement and reclamation.
    mm::numa_alloc_policy numa_alloc = mm::numa_alloc_policy::none;
    bool alloc_stats = false;
    mm::reclaim_config reclaim{};
    bool huge_pages = false;

    // Observability.
    bool trace = false;
    std::string trace_out = "trace.json";
    std::size_t trace_ring = trace::tracer::default_ring_capacity;
    double metrics_interval_ms = 0.0;

    // Output routing.
    bool smoke = false;
    bool csv = false;
    bool json_to_stdout = false;
};

} // namespace klsm::bench
