#pragma once

// Fixed-width table / CSV output for the benchmark binaries, so every
// figure's data can be read off the terminal or piped into a plotting
// script.

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace klsm {

class table_reporter {
public:
    explicit table_reporter(std::vector<std::string> columns,
                            bool csv = false)
        : columns_(std::move(columns)), csv_(csv) {
        print_row_impl(columns_, true);
    }

    template <typename... Cells>
    void row(Cells &&...cells) {
        std::vector<std::string> out;
        (out.push_back(to_cell(std::forward<Cells>(cells))), ...);
        print_row_impl(out, false);
    }

private:
    static std::string to_cell(const std::string &s) { return s; }
    static std::string to_cell(const char *s) { return s; }
    static std::string to_cell(double v) {
        std::ostringstream os;
        if (v != 0 && (v >= 1e6 || v < 1e-2))
            os << std::scientific << std::setprecision(3) << v;
        else
            os << std::fixed << std::setprecision(3) << v;
        return os.str();
    }
    template <typename T>
    static std::string to_cell(T v) {
        return std::to_string(v);
    }

    void print_row_impl(const std::vector<std::string> &cells, bool header) {
        if (csv_) {
            for (std::size_t i = 0; i < cells.size(); ++i)
                std::cout << (i ? "," : "") << cells[i];
            std::cout << "\n";
            return;
        }
        for (std::size_t i = 0; i < cells.size(); ++i)
            std::cout << std::left << std::setw(i == 0 ? 16 : 14)
                      << cells[i];
        std::cout << "\n";
        if (header) {
            for (std::size_t i = 0; i < cells.size(); ++i)
                std::cout << std::string(i == 0 ? 15 : 13, '-') << " ";
            std::cout << "\n";
        }
        std::cout.flush();
    }

    std::vector<std::string> columns_;
    bool csv_;
};

} // namespace klsm
