#pragma once

// Fixed-width table / CSV output for the benchmark binaries, so every
// figure's data can be read off the terminal or piped into a plotting
// script, plus a JSON reporter so one benchmark invocation emits one
// machine-readable report for CI and regression tracking.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace klsm {

class table_reporter {
public:
    explicit table_reporter(std::vector<std::string> columns,
                            bool csv = false, std::ostream &os = std::cout)
        : columns_(std::move(columns)), csv_(csv), os_(os) {
        print_row_impl(columns_, true);
    }

    template <typename... Cells>
    void row(Cells &&...cells) {
        std::vector<std::string> out;
        (out.push_back(to_cell(std::forward<Cells>(cells))), ...);
        print_row_impl(out, false);
    }

private:
    static std::string to_cell(const std::string &s) { return s; }
    static std::string to_cell(const char *s) { return s; }
    static std::string to_cell(double v) {
        std::ostringstream os;
        if (v != 0 && (v >= 1e6 || v < 1e-2))
            os << std::scientific << std::setprecision(3) << v;
        else
            os << std::fixed << std::setprecision(3) << v;
        return os.str();
    }
    template <typename T>
    static std::string to_cell(T v) {
        return std::to_string(v);
    }

    void print_row_impl(const std::vector<std::string> &cells, bool header) {
        if (csv_) {
            for (std::size_t i = 0; i < cells.size(); ++i)
                os_ << (i ? "," : "") << cells[i];
            os_ << "\n";
            return;
        }
        for (std::size_t i = 0; i < cells.size(); ++i)
            os_ << std::left << std::setw(i == 0 ? 16 : 14) << cells[i];
        os_ << "\n";
        if (header) {
            for (std::size_t i = 0; i < cells.size(); ++i)
                os_ << std::string(i == 0 ? 15 : 13, '-') << " ";
            os_ << "\n";
        }
        os_.flush();
    }

    std::vector<std::string> columns_;
    bool csv_;
    std::ostream &os_;
};

/// An ordered set of name -> JSON-scalar fields.
class json_record {
public:
    void set(const std::string &name, const std::string &v) {
        fields_.emplace_back(name, quote(v));
    }
    void set(const std::string &name, const char *v) {
        fields_.emplace_back(name, quote(v));
    }
    void set(const std::string &name, bool v) {
        fields_.emplace_back(name, v ? "true" : "false");
    }
    void set(const std::string &name, double v) {
        if (!std::isfinite(v)) {
            fields_.emplace_back(name, "null");
            return;
        }
        std::ostringstream os;
        os << std::setprecision(17) << v;
        fields_.emplace_back(name, os.str());
    }
    template <typename T,
              typename = std::enable_if_t<std::is_integral_v<T>>>
    void set(const std::string &name, T v) {
        fields_.emplace_back(name, std::to_string(v));
    }

    /// Attach an already-serialized JSON value (object or array)
    /// verbatim — how records embed nested structure like the `latency`
    /// object (src/stats/latency_report.hpp) without this reporter
    /// growing a full JSON tree model.  The caller owns validity.
    void set_raw(const std::string &name, std::string json_value) {
        fields_.emplace_back(name, std::move(json_value));
    }

    void write(std::ostream &os) const {
        os << "{";
        for (std::size_t i = 0; i < fields_.size(); ++i)
            os << (i ? "," : "") << quote(fields_[i].first) << ":"
               << fields_[i].second;
        os << "}";
    }

private:
    static std::string quote(const std::string &s) {
        std::string out = "\"";
        for (const char c : s) {
            switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
            }
        }
        out += '"';
        return out;
    }

    std::vector<std::pair<std::string, std::string>> fields_;
};

/// Accumulates one record per benchmark scenario and writes a single
/// JSON document: `{"benchmark": ..., <meta fields>, "records": [...]}`.
class json_reporter {
public:
    explicit json_reporter(const std::string &benchmark) {
        meta_.set("benchmark", benchmark);
    }

    /// Top-level metadata (parameters shared by all records).
    json_record &meta() { return meta_; }

    json_record &add_record() {
        records_.emplace_back();
        return records_.back();
    }

    void write(std::ostream &os) const {
        // Meta fields are inlined at the top level (no nested "meta"
        // object) so the document stays flat and easy to query.
        std::ostringstream tmp;
        meta_.write(tmp);
        std::string meta_fields = tmp.str();           // "{...}"
        meta_fields = meta_fields.substr(1, meta_fields.size() - 2);
        os << "{" << meta_fields;
        if (!meta_fields.empty())
            os << ",";
        os << "\"records\":[";
        for (std::size_t i = 0; i < records_.size(); ++i) {
            if (i)
                os << ",";
            records_[i].write(os);
        }
        os << "]}\n";
    }

private:
    json_record meta_;
    // deque: add_record hands out references that must survive later
    // add_record calls.
    std::deque<json_record> records_;
};

} // namespace klsm
