#pragma once

// Workload generation for the throughput benchmark (paper Section 6):
// uniform random 32-bit keys, 50/50 insert/delete-min mix, queues
// prefilled with a given number of keys before timing starts.

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "klsm/pq_concept.hpp"
#include "trace/progress.hpp"
#include "util/rng.hpp"

namespace klsm {

namespace stats {
class latency_recorder_set;
}

/// Insert-vs-delete decision for mixed workloads — shared by the
/// closed-loop throughput harness and the open-loop service harness
/// (src/service/open_loop.hpp) so both draw the producer:consumer mix
/// from the same distribution in the same way: one bounded(100) draw
/// per operation.
struct op_mix {
    unsigned insert_percent = 50;
    template <typename Rng>
    bool is_insert(Rng &rng) const {
        return rng.bounded(100) < insert_percent;
    }
};

struct throughput_params {
    std::size_t prefill = 1000000; ///< keys inserted before timing
    double duration_s = 1.0;       ///< timed benchmark window
    unsigned threads = 1;
    /// Percentage of operations that are inserts (the paper uses 50).
    unsigned insert_percent = 50;
    std::uint64_t seed = 1;
    std::uint32_t key_range_bits = 32;
    /// Placement order from topo::cpu_order: worker t pins itself to
    /// pin_cpus[t % size()] before the start barrier.  Empty: no pinning.
    std::vector<std::uint32_t> pin_cpus;
    /// Optional per-op latency capture (src/stats/): worker t records
    /// into latency->slot(t).  Null or stride-0: no capture, and the
    /// hot loop pays only a branch.  Must be sized for `threads`.
    stats::latency_recorder_set *latency = nullptr;
    /// Optional adaptive-relaxation hook (src/adapt/): when set, a
    /// dedicated ticker thread calls it every `adapt_tick_s` seconds
    /// for the duration of the run (typically queue_adaptor::tick).
    std::function<void()> on_adapt_tick;
    double adapt_tick_s = 0.005;
    /// Optional mid-run progress slots for the metrics sampler
    /// (src/trace/): worker t relaxed-stores its cumulative op and
    /// failed-delete tallies into slot t every iteration.  Null: the
    /// hot loop pays only a branch.
    trace::progress_counters *progress = nullptr;
};

/// Prefill `q` with uniformly random keys using several helper threads
/// (bounded, so the prefill itself doesn't exhaust thread slots).
template <typename PQ>
void prefill_queue(PQ &q, std::size_t n, std::uint64_t seed,
                   std::uint32_t key_bits = 32, unsigned threads = 4) {
    if (n == 0)
        return;
    if (threads <= 1) {
        xoroshiro128 rng{seed};
        const std::uint64_t mask =
            key_bits >= 64 ? ~std::uint64_t{0}
                           : ((std::uint64_t{1} << key_bits) - 1);
        auto h = pq_handle(q);
        for (std::size_t i = 0; i < n; ++i)
            h.insert(static_cast<typename PQ::key_type>(rng() & mask),
                     typename PQ::value_type{});
        h.flush(); // every prefilled key visible before timing starts
        return;
    }
    std::vector<std::thread> ts;
    const std::size_t share = n / threads;
    for (unsigned t = 0; t < threads; ++t) {
        const std::size_t count =
            t + 1 == threads ? n - share * (threads - 1) : share;
        ts.emplace_back([&q, count, seed, t, key_bits] {
            xoroshiro128 rng{seed + t * 7919};
            const std::uint64_t mask =
                key_bits >= 64 ? ~std::uint64_t{0}
                               : ((std::uint64_t{1} << key_bits) - 1);
            auto h = pq_handle(q);
            for (std::size_t i = 0; i < count; ++i)
                h.insert(static_cast<typename PQ::key_type>(rng() & mask),
                         typename PQ::value_type{});
            h.flush(); // before the worker joins: see single-thread path
        });
    }
    for (auto &t : ts)
        t.join();
}

} // namespace klsm
