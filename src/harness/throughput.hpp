#pragma once

// The paper's throughput benchmark (Section 6, Figure 3):
//
//   "a throughput benchmark, which lets all threads randomly insert and
//    delete keys from a priority queue that is prefilled with a given
//    number of keys. ... the ratio between insertions and deletions is
//    50-50. ... run for 10 seconds for each experiment, and the average
//    throughput per second is shown."
//
// Figure 3 plots throughput *per thread* per second, so a flat line is
// linear speedup.

#include <atomic>
#include <barrier>
#include <cstdint>
#include <thread>
#include <vector>

#include "harness/workload.hpp"
#include "klsm/pq_concept.hpp"
#include "stats/latency_recorder.hpp"
#include "topo/pinning.hpp"
#include "util/rng.hpp"
#include "util/thread_id.hpp"
#include "util/ticker.hpp"
#include "util/timer.hpp"

namespace klsm {

struct throughput_result {
    std::uint64_t total_ops = 0;
    std::uint64_t inserts = 0;
    std::uint64_t deletes = 0;
    std::uint64_t failed_deletes = 0;
    /// Workers whose pin_self failed (restricted cpuset, stale cpu id):
    /// they ran unpinned.  Nonzero means the run's placement label lies.
    std::uint64_t pin_failures = 0;
    double elapsed_s = 0;

    double ops_per_sec() const {
        return elapsed_s > 0 ? static_cast<double>(total_ops) / elapsed_s
                             : 0;
    }
    double ops_per_thread_per_sec(unsigned threads) const {
        return threads > 0 ? ops_per_sec() / threads : 0;
    }
};

/// Run the 50/50 benchmark on an already-prefilled queue.
template <typename PQ>
throughput_result run_throughput(PQ &q, const throughput_params &params) {
    check_thread_capacity(params.threads);
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> inserts{0}, deletes{0}, failed{0};
    std::atomic<std::uint64_t> pin_failures{0};
    std::barrier sync{static_cast<std::ptrdiff_t>(params.threads) + 1};

    std::vector<std::thread> ts;
    for (unsigned t = 0; t < params.threads; ++t) {
        ts.emplace_back([&, t] {
            if (!params.pin_cpus.empty() &&
                !topo::pin_self(
                    params.pin_cpus[t % params.pin_cpus.size()]))
                pin_failures.fetch_add(1, std::memory_order_relaxed);
            xoroshiro128 rng{params.seed + 104729 * (t + 1)};
            const op_mix mix{params.insert_percent};
            const std::uint64_t mask =
                params.key_range_bits >= 64
                    ? ~std::uint64_t{0}
                    : ((std::uint64_t{1} << params.key_range_bits) - 1);
            std::uint64_t my_inserts = 0, my_deletes = 0, my_failed = 0;
            typename PQ::key_type key;
            typename PQ::value_type value{};
            auto h = pq_handle(q); // native or pass-through: ONE loop
            trace::progress_counters *const prog = params.progress;
            sync.arrive_and_wait();
            while (!stop.load(std::memory_order_relaxed)) {
                if (mix.is_insert(rng)) {
                    stats::op_sample sample{params.latency, t,
                                            stats::op_kind::insert};
                    h.insert(
                        static_cast<typename PQ::key_type>(rng() & mask),
                        value);
                    sample.commit();
                    ++my_inserts;
                } else {
                    stats::op_sample sample{params.latency, t,
                                            stats::op_kind::delete_min};
                    if (h.try_delete_min(key, value)) {
                        // Only successful deletes are recorded: a failed
                        // probe of an empty queue is a different (much
                        // cheaper) code path and would skew the tail.
                        sample.commit();
                        ++my_deletes;
                    } else {
                        ++my_failed;
                    }
                }
                if (prog != nullptr)
                    prog->publish(t,
                                  my_inserts + my_deletes + my_failed,
                                  my_failed);
            }
            // Publish buffered effects before the counters: the queue's
            // post-run state must reflect every counted op.
            h.flush();
            inserts.fetch_add(my_inserts);
            deletes.fetch_add(my_deletes);
            failed.fetch_add(my_failed);
        });
    }

    // The adaptive-k control loop, when configured: ticks from its own
    // thread for the whole measurement window (scoped so it stops
    // before the function returns).
    periodic_ticker ticker{params.on_adapt_tick, params.adapt_tick_s};

    sync.arrive_and_wait(); // release the workers
    wall_timer timer;
    while (timer.elapsed_s() < params.duration_s)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stop.store(true, std::memory_order_relaxed);
    for (auto &t : ts)
        t.join();
    const double elapsed = timer.elapsed_s();

    throughput_result out;
    out.inserts = inserts.load();
    out.deletes = deletes.load();
    out.failed_deletes = failed.load();
    out.pin_failures = pin_failures.load();
    out.total_ops = out.inserts + out.deletes + out.failed_deletes;
    out.elapsed_s = elapsed;
    return out;
}

} // namespace klsm
