#pragma once

// Relaxation-quality measurement: rank error of delete-min.
//
// The paper's central semantic claim (Lemma 2) is the worst-case bound
// rho = T*k on how many smaller keys a delete-min may skip.  This harness
// measures the *observed* rank-error distribution: every queue operation
// is mirrored into an exact multiset under a global lock, and each
// delete's key is ranked against the mirror.  Serializing operations
// perturbs timing (quality under full concurrency can only be better
// bounded than measured here for lock-based comparators), but it makes
// every individual measurement exact — the standard methodology for
// relaxed-queue quality plots.

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "klsm/pq_concept.hpp"
#include "stats/latency_recorder.hpp"
#include "topo/pinning.hpp"
#include "trace/progress.hpp"
#include "util/rng.hpp"
#include "util/thread_id.hpp"
#include "util/ticker.hpp"

namespace klsm {

struct quality_result {
    std::uint64_t deletes = 0;
    std::uint64_t rank_sum = 0;
    std::uint64_t rank_max = 0;
    /// Workers whose pin_self failed and therefore ran unpinned.
    std::uint64_t pin_failures = 0;
    /// rank histogram, bucketed by powers of two: bucket i counts ranks
    /// in [2^i - 1, 2^(i+1) - 1).
    std::uint64_t histogram[24] = {};

    double mean_rank() const {
        return deletes ? static_cast<double>(rank_sum) / deletes : 0.0;
    }

    void record(std::uint64_t rank) {
        ++deletes;
        rank_sum += rank;
        if (rank > rank_max)
            rank_max = rank;
        unsigned bucket = 0;
        while (bucket + 1 < 24 &&
               rank + 1 >= (std::uint64_t{1} << (bucket + 1)))
            ++bucket;
        ++histogram[bucket];
    }
};

/// Lemma 2's worst-case rank-error bound, extended for buffered handles:
///
///     rho = (T + 1) * k  +  T * buffer_total
///
/// T counts the worker threads; the prefill runs on the calling (main)
/// thread with direct (unbuffered) inserts, hence the +1 on the k term
/// but not on the buffer term.  `buffer_total` is the per-handle
/// hidden-item budget (k_lsm::buffer_total / max_buffer_depth_seen: the
/// insert-buffer depth plus the effective delete-side peek cache): every
/// worker can be hiding that many items from a given delete, each of
/// which may rank below the served key — so the relaxation budget
/// provably absorbs the buffering.  buffer_total = 0 gives the paper's
/// original (T+1)*k.
inline std::uint64_t rank_error_bound(unsigned worker_threads,
                                      std::uint64_t k,
                                      std::uint64_t buffer_total = 0) {
    return (static_cast<std::uint64_t>(worker_threads) + 1) * k +
           static_cast<std::uint64_t>(worker_threads) * buffer_total;
}

/// Concurrent-safe running rank-error accumulator the metrics sampler
/// reads mid-run, fed by a sampled subset of ranked deletes — quality
/// becomes observable *during* a run (e.g. while the adaptive
/// controller moves k) instead of only in the post-hoc aggregate.
struct online_rank_stats {
    std::atomic<std::uint64_t> samples{0};
    std::atomic<std::uint64_t> rank_sum{0};
    std::atomic<std::uint64_t> rank_max{0};

    void record(std::uint64_t rank) {
        samples.fetch_add(1, std::memory_order_relaxed);
        rank_sum.fetch_add(rank, std::memory_order_relaxed);
        std::uint64_t cur = rank_max.load(std::memory_order_relaxed);
        while (rank > cur &&
               !rank_max.compare_exchange_weak(
                   cur, rank, std::memory_order_relaxed))
            ;
    }

    double mean() const {
        const std::uint64_t n = samples.load(std::memory_order_relaxed);
        return n ? static_cast<double>(
                       rank_sum.load(std::memory_order_relaxed)) /
                       static_cast<double>(n)
                 : 0.0;
    }
};

struct quality_params {
    std::size_t prefill = 10000;
    std::uint64_t ops_per_thread = 20000;
    unsigned threads = 4;
    std::uint64_t seed = 17;
    std::uint32_t key_range = 1 << 20;
    /// Placement order from topo::cpu_order: worker t pins itself to
    /// pin_cpus[t % size()] before operating.  Empty: no pinning.
    std::vector<std::uint32_t> pin_cpus;
    /// Optional per-op latency capture (src/stats/).  Only the queue
    /// operation itself is stamped, not the mirror bookkeeping, so the
    /// numbers are comparable with the throughput harness — though the
    /// serializing lock still changes contention, which is this
    /// harness's documented trade-off.  Must be sized for `threads`.
    stats::latency_recorder_set *latency = nullptr;
    /// Optional adaptive-relaxation hook (src/adapt/): a ticker thread
    /// calls it every `adapt_tick_s` seconds while the workers run.
    /// The tick runs concurrently with the serialized queue operations
    /// — deliberately, so adaptive runs exercise set_relaxation racing
    /// real inserts and deletes.
    std::function<void()> on_adapt_tick;
    double adapt_tick_s = 0.005;
    /// Optional mid-run progress slots for the metrics sampler
    /// (src/trace/).
    trace::progress_counters *progress = nullptr;
    /// Optional online rank accumulator: every `rank_sample_stride`-th
    /// ranked delete also feeds this (sampled to keep the extra atomics
    /// off most operations).
    online_rank_stats *online_rank = nullptr;
    std::uint64_t rank_sample_stride = 16;
};

/// Drive `q` with a serialized 50/50 workload and measure delete-min
/// rank errors against an exact mirror.
template <typename PQ>
quality_result measure_rank_error(PQ &q, const quality_params &params) {
    check_thread_capacity(params.threads);
    std::multiset<std::uint64_t> mirror;
    std::mutex mtx;
    quality_result result;

    {
        // Serialized prefill, mirrored.
        xoroshiro128 rng{params.seed};
        for (std::size_t i = 0; i < params.prefill; ++i) {
            const auto key = static_cast<typename PQ::key_type>(
                rng.bounded(params.key_range));
            q.insert(key, typename PQ::value_type{});
            mirror.insert(key);
        }
    }

    std::atomic<std::uint64_t> pin_failures{0};
    periodic_ticker ticker{params.on_adapt_tick, params.adapt_tick_s};
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < params.threads; ++t) {
        ts.emplace_back([&, t] {
            if (!params.pin_cpus.empty() &&
                !topo::pin_self(
                    params.pin_cpus[t % params.pin_cpus.size()]))
                pin_failures.fetch_add(1, std::memory_order_relaxed);
            xoroshiro128 rng{params.seed + 31 * (t + 1)};
            typename PQ::key_type key;
            typename PQ::value_type value{};
            // The mirror tracks the caller-visible contract: a staged
            // insert counts as inserted the moment h.insert returns, so
            // the measured rank error includes any staleness buffering
            // introduces — exactly what the extended rho must absorb.
            auto h = pq_handle(q);
            std::uint64_t my_failed = 0;
            for (std::uint64_t i = 0; i < params.ops_per_thread; ++i) {
                if (params.progress != nullptr)
                    params.progress->publish(t, i, my_failed);
                if (rng.bounded(2) == 0) {
                    const auto k = static_cast<typename PQ::key_type>(
                        rng.bounded(params.key_range));
                    std::lock_guard<std::mutex> g(mtx);
                    stats::op_sample sample{params.latency, t,
                                            stats::op_kind::insert};
                    h.insert(k, value);
                    sample.commit();
                    mirror.insert(k);
                } else {
                    std::lock_guard<std::mutex> g(mtx);
                    stats::op_sample sample{params.latency, t,
                                            stats::op_kind::delete_min};
                    if (!h.try_delete_min(key, value)) {
                        ++my_failed;
                        continue;
                    }
                    sample.commit();
                    auto it = mirror.find(key);
                    if (it == mirror.end())
                        continue; // should not happen; be safe
                    const auto rank = static_cast<std::uint64_t>(
                        std::distance(mirror.begin(), it));
                    result.record(rank);
                    if (params.online_rank != nullptr &&
                        params.rank_sample_stride > 0 &&
                        result.deletes % params.rank_sample_stride == 0)
                        params.online_rank->record(rank);
                    mirror.erase(it);
                }
            }
        });
    }
    for (auto &t : ts)
        t.join();
    result.pin_failures = pin_failures.load();
    return result;
}

} // namespace klsm
