#pragma once

// Long-horizon churn soak harness (ROADMAP "Churn-proof memory").
//
// Compresses hours of resident-service life into op counts: a fixed
// program of phases that shift the key range, flip the insert/delete
// imbalance, and drain in bursts — the access patterns that make
// grow-only pools fatal at day scale.  Between phases the harness
// quiesces the queue (workers joined), forces a shrink pass
// (quiescent_shrink, where the structure supports it), and records a
// boundary sample; inside phases a ticker thread samples RSS and pool
// counters on a wall-clock cadence.  The resulting
// mm::reclaim::memory_timeline carries the enforced soak verdicts: at
// least one shrink event, and final RSS on a plateau relative to the
// steady phase (not the cumulative peak).
//
// Phase program (key bases spread the phases across disjoint ranges, so
// surge-phase items go cold — whole chunks of them — once the range
// shifts):
//
//   0 steady  50/50  base A     — the plateau reference
//   1 surge   85/15  base B     — pools grow hot
//   2 drain   10/90  bursty     — surge items die in bulk
//   3 steady  50/50  base C     — back to equilibrium; RSS must return
//
// Threads re-spawn per phase, which quiesces the queue at every
// boundary *and* exercises thread-id slot recycling under the pools —
// the same churn mm/epoch.cpp is hardened against.

#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "harness/workload.hpp"
#include "klsm/pq_concept.hpp"
#include "mm/alloc_stats.hpp"
#include "mm/reclaim/timeline.hpp"
#include "topo/pinning.hpp"
#include "util/rng.hpp"
#include "util/thread_id.hpp"
#include "util/ticker.hpp"

namespace klsm {

struct churn_phase_spec {
    const char *name;
    unsigned insert_percent; ///< op mix; for bursty phases, burst mix
    std::uint64_t key_base;
    /// Bursty phases run homogeneous micro-bursts (burst_len ops of
    /// pure insert or pure delete) instead of per-op coin flips; the
    /// burst schedule still honors insert_percent, so a 10% bursty
    /// phase is one insert burst followed by nine delete bursts.
    bool bursty;
};

struct churn_params {
    unsigned threads = 4;
    /// Operations per thread per phase — the op-count scale knob that
    /// stands in for wall-clock soak duration.
    std::uint64_t ops_per_phase = 50000;
    std::uint64_t key_range = std::uint64_t{1} << 20;
    std::uint64_t prefill = 20000;
    std::uint64_t seed = 1;
    /// Burst length for bursty phases (ops per burst half-cycle).
    std::uint64_t burst_len = 256;
    /// In-phase sampling cadence for the memory timeline.
    double sample_interval_s = 0.05;
    /// Placement order from topo::cpu_order, as in throughput_params.
    std::vector<std::uint32_t> pin_cpus;
    /// Optional mid-run progress slots for the metrics sampler
    /// (src/trace/).  Slots carry cumulative tallies across phases:
    /// each respawned worker resumes publishing from its slot's
    /// pre-phase value.
    trace::progress_counters *progress = nullptr;
};

/// The four-phase program described in the header comment.  Key bases
/// sit key_range apart so phases occupy disjoint ranges.
inline std::vector<churn_phase_spec>
default_churn_phases(std::uint64_t key_range) {
    return {
        {"steady", 50, 0 * key_range, false},
        {"surge", 85, 1 * key_range, false},
        {"drain", 10, 2 * key_range, true},
        {"steady2", 50, 3 * key_range, false},
    };
}

struct churn_result {
    std::uint64_t inserts = 0;
    std::uint64_t deletes = 0;
    std::uint64_t failed_deletes = 0;
    double elapsed_s = 0.0;
    std::uint64_t pin_failures = 0;
    mm::reclaim::memory_timeline timeline;

    std::uint64_t total_ops() const { return inserts + deletes; }
};

namespace detail {

/// Pool counters folded into the scalar fields one timeline sample
/// carries.  Works on any structure; queues without memory_stats report
/// zeros (the timeline then only tracks RSS).
template <typename PQ>
void fill_pool_fields(PQ &q, mm::reclaim::timeline_sample &s) {
    if constexpr (pool_backed<PQ>) {
        const mm::memory_stats m = q.memory_stats(false);
        mm::pool_alloc_snapshot all = m.items;
        all.merge(m.dist_blocks);
        all.merge(m.shared_blocks);
        s.pool_bytes = all.bytes;
        s.released_bytes = all.released_bytes;
        s.reclaimed_chunks = all.reclaimed_chunks;
        s.shrink_events = all.shrink_events;
        s.freelist_hits = all.freelist_hits;
    }
}

} // namespace detail

/// Run the churn program against `q`.  The queue must be otherwise
/// idle; the caller owns prefill-free construction.
template <typename PQ>
churn_result run_churn(PQ &q, const churn_params &params) {
    using clock = std::chrono::steady_clock;
    check_thread_capacity(params.threads);
    const std::vector<churn_phase_spec> program =
        default_churn_phases(params.key_range);

    churn_result out;
    out.timeline.rss_reliable = mm::reclaim::rss_sampling_reliable();
    const auto start = clock::now();
    const auto now_ns = [&start] {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                clock::now() - start)
                .count());
    };

    // Samples come from the per-phase ticker thread *and* from the main
    // thread at boundaries; the mutex orders them (never contended
    // inside the workers' hot loop — sampling is wall-clock paced).
    std::mutex timeline_mutex;
    std::atomic<std::uint32_t> current_phase{0};
    const auto take_sample = [&] {
        mm::reclaim::timeline_sample s;
        s.t_ns = now_ns();
        s.rss_bytes = mm::reclaim::current_rss_bytes();
        s.phase = current_phase.load(std::memory_order_relaxed);
        detail::fill_pool_fields(q, s);
        std::lock_guard<std::mutex> lock(timeline_mutex);
        out.timeline.samples.push_back(s);
    };

    // Prefill in the steady phase's key range so the prefill population
    // participates in the steady-state equilibrium.
    if (params.prefill > 0) {
        xoroshiro128 rng{params.seed ^ 0x9e3779b97f4a7c15ULL};
        for (std::uint64_t i = 0; i < params.prefill; ++i)
            q.insert(static_cast<typename PQ::key_type>(
                         program[0].key_base + rng.bounded(params.key_range)),
                     typename PQ::value_type{});
    }
    std::atomic<std::uint64_t> pin_failures{0};
    // Spawn the full worker complement for one phase, run `ops` ops per
    // worker, join.  Used for the unrecorded warm-up and every recorded
    // phase alike.
    const auto spawn_phase = [&](const churn_phase_spec &phase,
                                 std::uint64_t ops, std::uint32_t pi,
                                 std::atomic<std::uint64_t> &inserts,
                                 std::atomic<std::uint64_t> &deletes,
                                 std::atomic<std::uint64_t> &failed) {
        std::barrier sync{static_cast<std::ptrdiff_t>(params.threads) + 1};
        std::vector<std::thread> workers;
        for (unsigned t = 0; t < params.threads; ++t) {
            workers.emplace_back([&, t] {
                if (!params.pin_cpus.empty() &&
                    !topo::pin_self(
                        params.pin_cpus[t % params.pin_cpus.size()]))
                    pin_failures.fetch_add(1, std::memory_order_relaxed);
                xoroshiro128 rng{params.seed + 104729 * (t + 1) +
                                 7919 * (pi + 1)};
                const op_mix mix{phase.insert_percent};
                std::uint64_t my_ins = 0, my_del = 0, my_failed = 0;
                typename PQ::key_type key;
                typename PQ::value_type value{};
                auto h = pq_handle(q);
                // Progress slots accumulate across respawns: pick up
                // this slot's tallies from the previous phases.
                trace::progress_counters *const prog = params.progress;
                const std::uint64_t base_ops =
                    prog != nullptr ? prog->ops_of(t) : 0;
                const std::uint64_t base_failed =
                    prog != nullptr ? prog->failed_of(t) : 0;
                sync.arrive_and_wait();
                for (std::uint64_t op = 0; op < ops; ++op) {
                    const bool do_insert =
                        phase.bursty
                            ? ((op / params.burst_len) % 10) * 10 <
                                  phase.insert_percent
                            : mix.is_insert(rng);
                    if (do_insert) {
                        h.insert(static_cast<typename PQ::key_type>(
                                     phase.key_base +
                                     rng.bounded(params.key_range)),
                                 value);
                        ++my_ins;
                    } else if (h.try_delete_min(key, value)) {
                        ++my_del;
                    } else {
                        ++my_failed;
                    }
                    if (prog != nullptr)
                        prog->publish(
                            t, base_ops + my_ins + my_del + my_failed,
                            base_failed + my_failed);
                }
                // Flush before the phase boundary's quiescent shrink and
                // boundary sample: every counted op must be visible.
                h.flush();
                inserts.fetch_add(my_ins, std::memory_order_relaxed);
                deletes.fetch_add(my_del, std::memory_order_relaxed);
                failed.fetch_add(my_failed, std::memory_order_relaxed);
            });
        }
        sync.arrive_and_wait();
        for (auto &w : workers)
            w.join();
    };

    // Warm-up: an unrecorded mini steady phase with the full worker
    // complement.  It pre-creates everything whose *first use*
    // permanently raises RSS — worker stacks, malloc arenas, the
    // structure's per-thread state — so the recorded steady phase
    // measures the warm process and the plateau reference is not an
    // artifact of process start-up.
    {
        std::atomic<std::uint64_t> wi{0}, wd{0}, wf{0};
        spawn_phase(program[0],
                    std::max<std::uint64_t>(params.ops_per_phase / 4, 512),
                    static_cast<std::uint32_t>(program.size()), wi, wd,
                    wf);
        if constexpr (pool_backed<PQ>)
            q.quiescent_shrink();
    }
    take_sample();

    for (std::uint32_t pi = 0; pi < program.size(); ++pi) {
        const churn_phase_spec &phase = program[pi];
        current_phase.store(pi, std::memory_order_relaxed);
        mm::reclaim::timeline_phase_mark mark;
        mark.name = phase.name;
        mark.index = pi;
        mark.insert_percent = phase.insert_percent;
        mark.bursty = phase.bursty;
        mark.start_t_ns = now_ns();

        std::atomic<std::uint64_t> inserts{0}, deletes{0}, failed{0};
        {
            // In-phase sampling from this (otherwise blocked) thread's
            // ticker.  Counter reads are owner-relaxed atomics — safe
            // mid-run; the ticker never walks regions or chunk state.
            periodic_ticker sampler{take_sample,
                                    params.sample_interval_s};
            spawn_phase(phase, params.ops_per_phase, pi, inserts,
                        deletes, failed);
        } // ticker joined: main thread is the only sampler again

        mark.end_t_ns = now_ns();
        mark.inserts = inserts.load();
        mark.deletes = deletes.load();
        mark.failed_deletes = failed.load();
        out.inserts += mark.inserts;
        out.deletes += mark.deletes;
        out.failed_deletes += mark.failed_deletes;
        out.timeline.phases.push_back(mark);

        // Phase boundary: the queue is quiescent (workers joined), so
        // force the shrink tier to release everything that went cold —
        // this is where the surge memory comes back.
        if constexpr (pool_backed<PQ>)
            q.quiescent_shrink();
        if constexpr (requires { q.release_memory(); })
            q.release_memory();
        take_sample();
    }

    out.elapsed_s =
        std::chrono::duration<double>(clock::now() - start).count();
    out.pin_failures = pin_failures.load();
    out.timeline.finalize(/*steady_phase=*/0);
    return out;
}

} // namespace klsm
