#pragma once

// Workload registry: the API that makes benchmark workloads plugins
// instead of branches of an if/else chain in klsm_bench.cpp.
//
// Each workload contributes one `workload_entry`:
//
//   - `register_flags(cli)` adds the workload's own flags inside a
//     named flag group, so `--help` shows them under the workload's
//     heading and tests can assert group isolation;
//   - `configure(cli, core)` parses and validates those flags into the
//     workload's private config struct (closures over a shared_ptr
//     carry it to `run`), printing to stderr and returning false on a
//     usage error;
//   - `annotate_meta(core, meta)` records the workload's settings in
//     the report's meta block (only applied for single-workload runs —
//     with a comma selection the per-record "workload" field
//     disambiguates instead);
//   - `run(core, json)` executes the sweep and appends records,
//     returning the process exit status (0 ok, 1 soft failure such as
//     a quality-bound violation, 2 usage/internal error).
//
// `--workload` resolves through the registry: unknown names fail with
// the full registered list, and the legacy `--benchmark` alias is
// folded into resolution with one tested precedence rule
// (`resolve_alias`).

#include <algorithm>
#include <cstddef>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/bench_config.hpp"
#include "harness/reporter.hpp"
#include "util/cli.hpp"

namespace klsm::bench {

struct workload_entry {
    std::string name;
    /// One-line description, shown in `--help` group headings.
    std::string summary;
    /// True when the workload exercises allocation churn enough that
    /// `--reclaim auto` should resolve to the full reclamation tier
    /// rather than none.  Keeps policy defaults out of string
    /// comparisons against workload names.
    bool reclaim_soak = false;

    std::function<void(cli_parser &)> register_flags;
    std::function<bool(const cli_parser &, const core_config &)> configure;
    std::function<void(const core_config &, json_record &)> annotate_meta;
    std::function<int(const core_config &, json_reporter &)> run;
};

class workload_registry {
public:
    /// Register a workload.  Returns false (and registers nothing) on
    /// an empty or duplicate name.
    bool add(workload_entry entry) {
        if (entry.name.empty() || index_.count(entry.name))
            return false;
        index_[entry.name] = entries_.size();
        entries_.push_back(std::move(entry));
        return true;
    }

    const workload_entry *find(const std::string &name) const {
        auto it = index_.find(name);
        return it == index_.end() ? nullptr : &entries_[it->second];
    }

    /// Registered names, in registration order.
    std::vector<std::string> names() const {
        std::vector<std::string> out;
        out.reserve(entries_.size());
        for (const auto &e : entries_)
            out.push_back(e.name);
        return out;
    }

    std::string names_joined(const char *sep = ", ") const {
        std::string out;
        for (const auto &e : entries_) {
            if (!out.empty())
                out += sep;
            out += e.name;
        }
        return out;
    }

    /// The one precedence rule for the legacy `--benchmark` spelling:
    /// a non-empty `--benchmark` wins over `--workload`.
    static std::string resolve_alias(const std::string &workload,
                                     const std::string &benchmark) {
        return benchmark.empty() ? workload : benchmark;
    }

    /// Resolve a comma-separated selection ("bnb,des") to entries, in
    /// selection order with duplicates dropped.  On any unknown name
    /// returns an empty vector and fills `error` with a message that
    /// lists every registered workload.
    std::vector<const workload_entry *>
    resolve(const std::string &selection, std::string *error) const {
        std::vector<const workload_entry *> out;
        std::stringstream ss(selection);
        std::string tok;
        while (std::getline(ss, tok, ',')) {
            if (tok.empty())
                continue;
            const workload_entry *e = find(tok);
            if (!e) {
                if (error)
                    *error = "unknown workload: " + tok +
                             " (registered: " + names_joined() + ")";
                return {};
            }
            if (std::find(out.begin(), out.end(), e) == out.end())
                out.push_back(e);
        }
        if (out.empty() && error)
            *error = "no workload selected (registered: " + names_joined() +
                     ")";
        return out;
    }

    /// Add every workload's flags to `cli`, each under its own group
    /// heading so `--help` attributes flags to their owner.
    void register_flags(cli_parser &cli) const {
        for (const auto &e : entries_) {
            if (!e.register_flags)
                continue;
            std::string heading = e.name + " workload";
            if (!e.summary.empty())
                heading += " — " + e.summary;
            cli.begin_group(heading);
            e.register_flags(cli);
        }
    }

    /// The group heading `register_flags` files a workload's flags
    /// under (tests use this to check group isolation).
    static std::string group_title(const workload_entry &e) {
        return e.summary.empty() ? e.name + " workload"
                                 : e.name + " workload — " + e.summary;
    }

private:
    std::vector<workload_entry> entries_;
    std::map<std::string, std::size_t> index_;
};

} // namespace klsm::bench
