#pragma once

// JSON serialization of the `service` and `slo` objects every
// service-workload record carries (README "Service mode & SLOs",
// validated by scripts/check_service_schema.py, diffed by
// scripts/compare_bench.py):
//
//   "service": {
//     "arrival": "poisson", "nominal_rate": ..., "offered_rate": ...,
//     "achieved_rate": ..., "duration_s": ...,
//     "scheduled_ops": ..., "completed_ops": ...,
//     "late_ops": ..., "late_grace_ns": ..., "max_lateness_ns": ...,
//     "mean_lateness_ns": ..., "backlog_max": ...,
//     "unit": "ns", "sub_bucket_bits": 5,
//     "intended":   { "insert": {count, mean, min, p50, p90, p99, p999,
//                                max, dropped_intervals, buckets},
//                     "delete_min": {...} },
//     "completion": { same shape }
//   },
//   "slo": {
//     "metric": "intended_p99_ns", "p99_threshold_ns": ...,
//     "min_achieved_fraction": ..., "offered_rate": ...,
//     "achieved_rate": ..., "observed_p99_ns": ...,
//     "latency_ok": bool, "rate_ok": bool, "pass": bool
//     [, "sustainable_rate": ..., "probes": [[rate, pass], ...]]
//   }
//
// `nominal_rate` is the configured --rate; `offered_rate` is what the
// generated schedule actually offered (scheduled_ops / duration —
// different for spike/diurnal, whose mean rate exceeds the base rate,
// and stochastically off-by-sqrt(n) for poisson).  The intended /
// completion blocks reuse the latency_op_json shape so compare_bench's
// bucket math applies unchanged.

#include <iomanip>
#include <sstream>
#include <string>

#include "service/arrival_schedule.hpp"
#include "service/open_loop.hpp"
#include "service/slo.hpp"
#include "stats/latency_report.hpp"

namespace klsm {
namespace service {

namespace detail {

inline void
append_recorder(std::ostringstream &os, const char *name,
                const stats::latency_recorder_set &recs) {
    os << ",\"" << name << "\":{";
    for (unsigned op = 0; op < stats::op_kinds; ++op) {
        const auto kind = static_cast<stats::op_kind>(op);
        os << (op ? "," : "") << "\"" << stats::op_name(kind) << "\":"
           << stats::latency_op_json(recs.merged(kind),
                                     recs.dropped_intervals(kind));
    }
    os << "}";
}

} // namespace detail

/// The offered rate the schedule realized (vs the configured nominal).
inline double offered_rate(const service_result &res,
                           const arrival_config &acfg) {
    return acfg.duration_s > 0
               ? static_cast<double>(res.scheduled_ops) / acfg.duration_s
               : 0;
}

inline std::string service_json(const service_result &res,
                                const arrival_config &acfg,
                                const service_params &params) {
    std::ostringstream os;
    os << std::setprecision(17);
    os << "{\"arrival\":\"" << arrival_name(acfg.kind) << "\"";
    os << ",\"nominal_rate\":" << acfg.rate;
    os << ",\"offered_rate\":" << offered_rate(res, acfg);
    os << ",\"achieved_rate\":" << res.achieved_rate();
    os << ",\"duration_s\":" << acfg.duration_s;
    os << ",\"scheduled_ops\":" << res.scheduled_ops;
    os << ",\"completed_ops\":" << res.completed_ops;
    os << ",\"late_ops\":" << res.late_ops;
    os << ",\"late_grace_ns\":" << params.late_grace_ns;
    os << ",\"max_lateness_ns\":" << res.max_lateness_ns;
    os << ",\"mean_lateness_ns\":" << res.mean_lateness_ns();
    os << ",\"backlog_max\":" << res.backlog_max;
    os << ",\"unit\":\"ns\",\"sub_bucket_bits\":"
       << stats::latency_histogram::sub_bits;
    detail::append_recorder(os, "intended", res.intended);
    detail::append_recorder(os, "completion", res.completion);
    os << "}";
    return os.str();
}

inline std::string slo_json(const slo_verdict &verdict,
                            const slo_config &cfg,
                            const sustainable_result *sustainable) {
    std::ostringstream os;
    os << std::setprecision(17);
    os << "{\"metric\":\"intended_p99_ns\"";
    os << ",\"p99_threshold_ns\":" << cfg.p99_ns;
    os << ",\"min_achieved_fraction\":" << cfg.min_achieved_fraction;
    os << ",\"offered_rate\":" << verdict.offered_rate;
    os << ",\"achieved_rate\":" << verdict.achieved_rate;
    os << ",\"observed_p99_ns\":" << verdict.observed_p99_ns;
    os << ",\"latency_ok\":" << (verdict.latency_ok ? "true" : "false");
    os << ",\"rate_ok\":" << (verdict.rate_ok ? "true" : "false");
    os << ",\"pass\":" << (verdict.pass ? "true" : "false");
    if (sustainable) {
        os << ",\"sustainable_rate\":" << sustainable->rate;
        os << ",\"probes\":[";
        for (std::size_t i = 0; i < sustainable->probes.size(); ++i)
            os << (i ? "," : "") << "[" << sustainable->probes[i].rate
               << "," << (sustainable->probes[i].pass ? "true" : "false")
               << "]";
        os << "]";
    }
    os << "}";
    return os.str();
}

} // namespace service
} // namespace klsm
