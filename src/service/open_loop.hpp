#pragma once

// The open-loop service harness: each worker follows a precomputed
// arrival schedule (arrival_schedule.hpp) and executes one queue
// operation per arrival, measuring latency from the operation's
// *intended* start — the schedule entry — to its completion.
//
// Why intended-start: a closed-loop harness that stalls simply issues
// fewer operations, so the stall's victims never appear in the
// histogram (coordinated omission).  Here the arrival exists whether or
// not the system was ready; an operation issued late carries its whole
// queueing delay into the recorded latency, so stalls are *measured*,
// not hidden.  The start-to-completion (service-time) distribution is
// recorded alongside from the same operations — the gap between the
// two distributions is exactly the queueing delay.
//
// Catch-up semantics: a worker that falls behind issues overdue
// operations back-to-back (never skipping, never re-timing them).  This
// is the standard open-system model — work that arrived during a stall
// is still owed — and it is what lets `achieved_rate` fall below the
// offered rate under overload instead of silently shedding load.

#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harness/workload.hpp"
#include "klsm/pq_concept.hpp"
#include "service/arrival_schedule.hpp"
#include "stats/latency_recorder.hpp"
#include "topo/pinning.hpp"
#include "trace/progress.hpp"
#include "trace/tracer.hpp"
#include "util/rng.hpp"
#include "util/thread_id.hpp"
#include "util/ticker.hpp"
#include "util/timer.hpp"

namespace klsm {
namespace service {

struct service_params {
    unsigned threads = 1;
    /// Producer share of the op mix (inserts); the rest are delete-mins.
    unsigned insert_percent = 50;
    std::uint64_t seed = 1;
    std::uint32_t key_range_bits = 32;
    /// Placement order from topo::cpu_order; empty = no pinning.
    std::vector<std::uint32_t> pin_cpus;
    /// Lateness at or below this is "on time" (scheduling jitter, the
    /// spin-wait's exit granularity); only ops later than this count
    /// toward late_ops / lateness stats.
    std::uint64_t late_grace_ns = 1000;
    /// Optional start-to-completion capture at the caller's stride —
    /// the generic `latency` JSON object, same as every other harness.
    /// The intended/completion recorders below are separate and always
    /// stride 1.
    stats::latency_recorder_set *latency = nullptr;
    /// Optional adaptive-relaxation hook (src/adapt/), same contract as
    /// the other harnesses.
    std::function<void()> on_adapt_tick;
    double adapt_tick_s = 0.005;
    /// Optional mid-run progress slots for the metrics sampler
    /// (src/trace/); each worker publishes its cumulative issued ops
    /// and failed (empty) delete-mins into its own slot.
    trace::progress_counters *progress = nullptr;
};

struct service_result {
    std::uint64_t scheduled_ops = 0;
    /// Always equals scheduled_ops (catch-up semantics never shed
    /// load); kept separate so the JSON states the invariant.
    std::uint64_t completed_ops = 0;
    std::uint64_t inserts = 0;
    std::uint64_t deletes = 0;
    /// Delete-min probes that found the queue empty; they consume their
    /// arrival but are excluded from the latency distributions (the
    /// empty-probe path is not the service being measured).
    std::uint64_t failed_deletes = 0;
    std::uint64_t pin_failures = 0;
    /// Ops issued more than late_grace_ns after their intended start.
    std::uint64_t late_ops = 0;
    std::uint64_t max_lateness_ns = 0;
    std::uint64_t lateness_sum_ns = 0;
    /// Largest number of arrivals simultaneously overdue at any issue
    /// point — the deepest the backlog ever got, in ops.
    std::uint64_t backlog_max = 0;
    /// Run start to the last worker's last completion.
    double elapsed_s = 0;
    /// Arrival-to-completion per op kind, stride 1 (coordinated
    /// omission included by construction).
    stats::latency_recorder_set intended{0, 0};
    /// Start-to-completion of the same operations, stride 1.  Every
    /// sample here is pointwise <= its intended counterpart, so every
    /// percentile is too.
    stats::latency_recorder_set completion{0, 0};

    double achieved_rate() const {
        return elapsed_s > 0
                   ? static_cast<double>(completed_ops) / elapsed_s
                   : 0;
    }
    double mean_lateness_ns() const {
        return late_ops > 0
                   ? static_cast<double>(lateness_sum_ns) / late_ops
                   : 0;
    }
};

/// Run the open-loop workload on an already-prefilled queue.  The
/// schedule must have exactly params.threads streams (one per worker).
template <typename PQ>
service_result run_service(PQ &q, const service_params &params,
                           const std::vector<thread_schedule> &schedule) {
    if (schedule.size() != params.threads)
        throw std::invalid_argument(
            "service schedule has " + std::to_string(schedule.size()) +
            " streams for " + std::to_string(params.threads) + " threads");
    check_thread_capacity(params.threads);

    stats::latency_recorder_set intended{params.threads, 1};
    stats::latency_recorder_set completion{params.threads, 1};

    struct worker_tally {
        std::uint64_t inserts = 0, deletes = 0, failed = 0;
        std::uint64_t late = 0, late_sum = 0, max_late = 0;
        std::uint64_t backlog_max = 0;
        std::uint64_t end_ns = 0;
    };
    std::vector<worker_tally> tallies(params.threads);
    std::atomic<std::uint64_t> pin_failures{0};
    // The run's epoch: stamped by the barrier's completion step, which
    // runs after every thread has arrived and before any is released —
    // so all workers share one t0 with no straggler skew.
    std::atomic<std::uint64_t> t0{0};
    std::barrier sync{
        static_cast<std::ptrdiff_t>(params.threads) + 1,
        [&t0]() noexcept {
            t0.store(now_ns(), std::memory_order_release);
        }};

    std::vector<std::thread> ts;
    for (unsigned t = 0; t < params.threads; ++t) {
        ts.emplace_back([&, t] {
            if (!params.pin_cpus.empty() &&
                !topo::pin_self(
                    params.pin_cpus[t % params.pin_cpus.size()]))
                pin_failures.fetch_add(1, std::memory_order_relaxed);
            xoroshiro128 rng{params.seed + 104729 * (t + 1)};
            const op_mix mix{params.insert_percent};
            const std::uint64_t mask =
                params.key_range_bits >= 64
                    ? ~std::uint64_t{0}
                    : ((std::uint64_t{1} << params.key_range_bits) - 1);
            const auto &sched = schedule[t];
            typename PQ::key_type key;
            typename PQ::value_type value{};
            auto h = pq_handle(q);
            worker_tally tally;
            sync.arrive_and_wait();
            const std::uint64_t start =
                t0.load(std::memory_order_acquire);
            std::size_t due = 0; // arrivals known overdue, for backlog
            for (std::size_t i = 0; i < sched.size(); ++i) {
                const std::uint64_t intended_ns = start + sched[i];
                std::uint64_t now = now_ns();
                if (now < intended_ns) {
                    // Ahead of schedule = quiesced: publish buffered
                    // effects before waiting, so consumers on other
                    // streams see every op this stream has completed and
                    // the SLO verdict is never computed against hidden
                    // work.  Re-read the clock — the flush may have
                    // consumed the slack.
                    h.flush();
                    now = now_ns();
                }
                if (now < intended_ns) {
                    // Sleep off all but the tail of a long wait, yield
                    // through the medium range, spin the last couple of
                    // microseconds for precision.
                    do {
                        const std::uint64_t ahead = intended_ns - now;
                        if (ahead > 200000)
                            std::this_thread::sleep_for(
                                std::chrono::nanoseconds(ahead - 100000));
                        else if (ahead > 2000)
                            std::this_thread::yield();
                        now = now_ns();
                    } while (now < intended_ns);
                } else if (now - intended_ns > params.late_grace_ns) {
                    // Behind: issue immediately (catch-up), book the
                    // lateness and how deep the overdue backlog is.
                    const std::uint64_t lateness = now - intended_ns;
                    KLSM_TRACE_EVENT(trace::kind::service_late, t,
                                     lateness);
                    ++tally.late;
                    tally.late_sum += lateness;
                    if (lateness > tally.max_late)
                        tally.max_late = lateness;
                    if (due <= i)
                        due = i + 1;
                    while (due < sched.size() &&
                           start + sched[due] <= now)
                        ++due;
                    if (due - i > tally.backlog_max)
                        tally.backlog_max = due - i;
                }
                const bool ins = mix.is_insert(rng);
                const auto kind = ins ? stats::op_kind::insert
                                      : stats::op_kind::delete_min;
                stats::op_sample sample{params.latency, t, kind};
                const std::uint64_t op_start = now_ns();
                bool served = true;
                if (ins) {
                    h.insert(
                        static_cast<typename PQ::key_type>(rng() & mask),
                        value);
                    ++tally.inserts;
                } else if (h.try_delete_min(key, value)) {
                    ++tally.deletes;
                } else {
                    served = false;
                    ++tally.failed;
                }
                if (served) {
                    const std::uint64_t end = now_ns();
                    sample.commit();
                    completion.record(t, kind, end - op_start);
                    // end >= op_start >= intended_ns, so each intended
                    // sample dominates its completion twin pointwise —
                    // the percentile ordering the schema checker
                    // enforces.
                    intended.record(t, kind, end - intended_ns);
                }
                if (params.progress != nullptr)
                    params.progress->publish(
                        t, tally.inserts + tally.deletes + tally.failed,
                        tally.failed);
            }
            h.flush(); // the run's last ops count toward its window
            tally.end_ns = now_ns();
            tallies[t] = tally;
        });
    }

    // The adaptive-k control loop, when configured (same contract as
    // the closed-loop harnesses).
    periodic_ticker ticker{params.on_adapt_tick, params.adapt_tick_s};

    sync.arrive_and_wait(); // stamps t0 and releases the workers
    for (auto &th : ts)
        th.join();

    service_result out;
    out.scheduled_ops = scheduled_ops(schedule);
    out.pin_failures = pin_failures.load();
    const std::uint64_t start = t0.load(std::memory_order_acquire);
    std::uint64_t last_end = start;
    for (const auto &tally : tallies) {
        out.inserts += tally.inserts;
        out.deletes += tally.deletes;
        out.failed_deletes += tally.failed;
        out.late_ops += tally.late;
        out.lateness_sum_ns += tally.late_sum;
        if (tally.max_late > out.max_lateness_ns)
            out.max_lateness_ns = tally.max_late;
        if (tally.backlog_max > out.backlog_max)
            out.backlog_max = tally.backlog_max;
        if (tally.end_ns > last_end)
            last_end = tally.end_ns;
    }
    out.completed_ops =
        out.inserts + out.deletes + out.failed_deletes;
    out.elapsed_s = static_cast<double>(last_end - start) * 1e-9;
    out.intended = std::move(intended);
    out.completion = std::move(completion);
    return out;
}

} // namespace service
} // namespace klsm
