#pragma once

// Arrival-schedule generation for the open-loop service harness.
//
// Closed-loop benchmarks (threads issuing as fast as they can) measure
// peak throughput; a service sees arrival *rates*.  This header turns a
// configured arrival process into per-thread, pre-sorted schedules of
// nanosecond offsets from the run's start.  Precomputing the schedule
// keeps the measurement loop allocation-free and — crucially — gives
// every operation an *intended* start time that exists independently of
// when the system got around to issuing it, which is what makes
// coordinated omission measurable (open_loop.hpp records
// arrival-to-completion latency against these timestamps).
//
// Processes (all deterministic given the seed):
//
//   steady  — constant inter-arrival gaps, threads phase-offset so the
//             fleet never arrives in lockstep.  No randomness at all.
//   poisson — exponential inter-arrival gaps (memoryless, the classic
//             open-system model), via inverse-transform sampling.
//   spike   — poisson at the base rate with a window of `spike_fraction`
//             of the duration, centered, running at `spike_multiplier`x.
//   diurnal — poisson with the rate swept sinusoidally by
//             `diurnal_amplitude` over `diurnal_periods` cycles — a
//             compressed day/night load curve.
//
// The time-varying processes use thinning (Lewis & Shedler): candidates
// are drawn from a homogeneous process at the peak rate and accepted
// with probability rate(t)/peak, which preserves Poisson statistics and
// determinism with a counter-free single pass.

#include <cmath>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace klsm {
namespace service {

enum class arrival_kind : unsigned { steady, poisson, spike, diurnal };

inline const char *arrival_name(arrival_kind k) {
    switch (k) {
    case arrival_kind::steady: return "steady";
    case arrival_kind::poisson: return "poisson";
    case arrival_kind::spike: return "spike";
    case arrival_kind::diurnal: return "diurnal";
    }
    return "?";
}

inline std::optional<arrival_kind> parse_arrival(const std::string &name) {
    if (name == "steady")
        return arrival_kind::steady;
    if (name == "poisson")
        return arrival_kind::poisson;
    if (name == "spike")
        return arrival_kind::spike;
    if (name == "diurnal")
        return arrival_kind::diurnal;
    return std::nullopt;
}

struct arrival_config {
    arrival_kind kind = arrival_kind::poisson;
    /// Offered rate in ops/s, TOTAL across all threads (each thread
    /// runs an independent stream at rate / threads).
    double rate = 100000;
    double duration_s = 1.0;
    unsigned threads = 1;
    std::uint64_t seed = 1;
    /// spike: the burst window's width as a fraction of the duration
    /// (centered) and its rate multiplier.
    double spike_fraction = 0.1;
    double spike_multiplier = 8.0;
    /// diurnal: rate(t) = rate * (1 + amplitude * sin(2*pi*periods*t/D)).
    double diurnal_amplitude = 0.75;
    double diurnal_periods = 1.0;
};

/// One thread's arrivals: sorted ns offsets from the run start.
using thread_schedule = std::vector<std::uint64_t>;

/// The highest instantaneous rate the process ever reaches, as a
/// multiple of the base rate — the thinning envelope.
inline double peak_rate_multiplier(const arrival_config &cfg) {
    switch (cfg.kind) {
    case arrival_kind::spike: return cfg.spike_multiplier;
    case arrival_kind::diurnal: return 1.0 + cfg.diurnal_amplitude;
    default: return 1.0;
    }
}

/// Instantaneous rate at absolute time `t_s`, as a multiple of the base
/// rate.
inline double rate_multiplier_at(const arrival_config &cfg, double t_s) {
    switch (cfg.kind) {
    case arrival_kind::spike: {
        const double x = t_s / cfg.duration_s;
        return (x >= 0.5 - cfg.spike_fraction / 2 &&
                x < 0.5 + cfg.spike_fraction / 2)
                   ? cfg.spike_multiplier
                   : 1.0;
    }
    case arrival_kind::diurnal:
        return 1.0 + cfg.diurnal_amplitude *
                         std::sin(2.0 * 3.14159265358979323846 *
                                  cfg.diurnal_periods * t_s /
                                  cfg.duration_s);
    default:
        return 1.0;
    }
}

/// Upper bound on the schedule size (all threads together), so a typo'd
/// --rate fails fast instead of allocating tens of GiB of timestamps.
inline constexpr double max_scheduled_ops = 50e6;

inline void validate_arrival_config(const arrival_config &cfg) {
    if (!(cfg.rate > 0))
        throw std::invalid_argument("arrival rate must be positive");
    if (!(cfg.duration_s > 0))
        throw std::invalid_argument("arrival duration must be positive");
    if (cfg.threads < 1)
        throw std::invalid_argument("arrival schedule needs >= 1 thread");
    if (!(cfg.spike_fraction > 0) || cfg.spike_fraction > 1)
        throw std::invalid_argument("spike fraction must be in (0, 1]");
    if (cfg.spike_multiplier < 1)
        throw std::invalid_argument("spike multiplier must be >= 1");
    if (cfg.diurnal_amplitude < 0 || cfg.diurnal_amplitude > 1)
        throw std::invalid_argument("diurnal amplitude must be in [0, 1]");
    if (!(cfg.diurnal_periods > 0))
        throw std::invalid_argument("diurnal periods must be positive");
    if (cfg.rate * cfg.duration_s * peak_rate_multiplier(cfg) >
        max_scheduled_ops)
        throw std::invalid_argument(
            "arrival schedule would exceed " +
            std::to_string(static_cast<std::uint64_t>(max_scheduled_ops)) +
            " ops; lower --rate or the duration");
}

namespace detail {

/// Uniform double in [0, 1) with 53 random bits.
inline double uniform01(xoroshiro128 &rng) {
    return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Exponential inter-arrival gap at rate `lambda` (ops/s).
inline double exp_gap(xoroshiro128 &rng, double lambda) {
    // 1 - u is in (0, 1], so the log argument is never zero.
    return -std::log(1.0 - uniform01(rng)) / lambda;
}

inline std::uint64_t to_ns(double seconds) {
    return static_cast<std::uint64_t>(seconds * 1e9);
}

} // namespace detail

/// Generate the per-thread schedules.  Deterministic: identical configs
/// (seed included) produce identical schedules on every run and host.
inline std::vector<thread_schedule>
make_arrival_schedule(const arrival_config &cfg) {
    validate_arrival_config(cfg);
    std::vector<thread_schedule> out(cfg.threads);
    const double per_thread = cfg.rate / cfg.threads;
    for (unsigned t = 0; t < cfg.threads; ++t) {
        auto &sched = out[t];
        sched.reserve(static_cast<std::size_t>(
            per_thread * cfg.duration_s * peak_rate_multiplier(cfg) + 16));
        if (cfg.kind == arrival_kind::steady) {
            const double interval = 1.0 / per_thread;
            const double offset = interval * t / cfg.threads; // phase
            // Multiply instead of accumulating: n additions of the
            // (inexact) interval drift enough to squeeze a spurious
            // extra arrival in just under the duration boundary.
            for (std::uint64_t n = 0;; ++n) {
                const double at = offset + interval * n;
                if (at >= cfg.duration_s)
                    break;
                sched.push_back(detail::to_ns(at));
            }
            continue;
        }
        // Distinct deterministic stream per thread; the golden-ratio
        // stride keeps adjacent thread seeds far apart in the
        // splitmix-seeded state space.
        xoroshiro128 rng{cfg.seed + 0x9e3779b97f4a7c15ULL * (t + 1)};
        const double peak = per_thread * peak_rate_multiplier(cfg);
        double at = 0;
        for (;;) {
            at += detail::exp_gap(rng, peak);
            if (at >= cfg.duration_s)
                break;
            if (cfg.kind != arrival_kind::poisson) {
                // Thinning: accept in proportion to the instantaneous
                // rate under the peak envelope.
                const double accept = rate_multiplier_at(cfg, at) *
                                      per_thread / peak;
                if (detail::uniform01(rng) >= accept)
                    continue;
            }
            sched.push_back(detail::to_ns(at));
        }
    }
    return out;
}

/// Total arrivals across all threads of a generated schedule.
inline std::uint64_t
scheduled_ops(const std::vector<thread_schedule> &schedule) {
    std::uint64_t n = 0;
    for (const auto &s : schedule)
        n += s.size();
    return n;
}

} // namespace service
} // namespace klsm
