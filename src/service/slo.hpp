#pragma once

// SLO evaluation over an open-loop service run, and the binary-search
// driver behind `--find-sustainable`.
//
// A service-level objective here is the production question the
// closed-loop benchmarks cannot answer: "does intended-start p99 stay
// under X ns while actually absorbing Y ops/s?".  Both halves matter —
// a queue that falls behind serves its (few) completed ops quickly, so
// a latency check alone would grade overload as a pass; the
// achieved-rate floor closes that hole.

#include <cstdint>
#include <vector>

#include "service/open_loop.hpp"
#include "stats/latency_recorder.hpp"

namespace klsm {
namespace service {

struct slo_config {
    /// Intended-start p99 ceiling in ns; 0 = no latency objective (the
    /// verdict then rests on the achieved-rate floor alone).
    std::uint64_t p99_ns = 0;
    /// The verdict fails when achieved_rate / offered_rate falls below
    /// this fraction — the "at Y ops/s" half of the objective.
    double min_achieved_fraction = 0.9;
};

struct slo_verdict {
    /// Worst-op intended-start p99 across op kinds with samples.
    std::uint64_t observed_p99_ns = 0;
    double offered_rate = 0;
    double achieved_rate = 0;
    bool latency_ok = true;
    bool rate_ok = true;
    bool pass = true;
};

inline slo_verdict evaluate_slo(const slo_config &cfg,
                                const service_result &res,
                                double offered_rate) {
    slo_verdict v;
    v.offered_rate = offered_rate;
    v.achieved_rate = res.achieved_rate();
    for (unsigned op = 0; op < stats::op_kinds; ++op) {
        const auto h = res.intended.merged(static_cast<stats::op_kind>(op));
        if (h.count() > 0 && h.percentile(99) > v.observed_p99_ns)
            v.observed_p99_ns = h.percentile(99);
    }
    v.latency_ok = cfg.p99_ns == 0 || v.observed_p99_ns <= cfg.p99_ns;
    v.rate_ok = offered_rate <= 0 ||
                v.achieved_rate >=
                    cfg.min_achieved_fraction * offered_rate;
    v.pass = v.latency_ok && v.rate_ok;
    return v;
}

struct sustainable_probe {
    double rate = 0;
    bool pass = false;
};

struct sustainable_result {
    /// Highest offered rate that passed the SLO (0 = nothing passed).
    double rate = 0;
    /// Every (rate, verdict) probe, in execution order.
    std::vector<sustainable_probe> probes;
};

/// Find the highest sustainable offered rate by bracketing + bisection.
/// `run` is a callable double -> bool: run a short window at that rate,
/// return the SLO verdict.  From `initial_rate`: grow geometrically
/// (x2, at most `max_doublings`) until a failure brackets the edge, or
/// shrink (/2) until a pass does; then bisect the bracket until the
/// probe budget runs out or it is within 5%.  Deterministic given a
/// deterministic `run`.
template <typename RunAtRate>
sustainable_result find_sustainable_rate(RunAtRate &&run,
                                         double initial_rate,
                                         unsigned max_probes = 10,
                                         unsigned max_doublings = 4) {
    sustainable_result out;
    auto probe = [&](double rate) {
        const bool pass = run(rate);
        out.probes.push_back({rate, pass});
        if (pass && rate > out.rate)
            out.rate = rate;
        return pass;
    };
    double lo = 0, hi = 0;
    if (probe(initial_rate)) {
        lo = initial_rate;
        double rate = initial_rate;
        for (unsigned i = 0;
             i < max_doublings && out.probes.size() < max_probes; ++i) {
            rate *= 2;
            if (!probe(rate)) {
                hi = rate;
                break;
            }
            lo = rate;
        }
        if (hi == 0)
            return out; // never failed within the growth budget
    } else {
        hi = initial_rate;
        double rate = initial_rate;
        while (out.probes.size() < max_probes) {
            rate /= 2;
            if (probe(rate)) {
                lo = rate;
                break;
            }
            hi = rate;
        }
        if (lo == 0)
            return out; // nothing passed within the probe budget
    }
    while (out.probes.size() < max_probes && hi - lo > 0.05 * hi) {
        const double mid = (lo + hi) / 2;
        if (probe(mid))
            lo = mid;
        else
            hi = mid;
    }
    return out;
}

} // namespace service
} // namespace klsm
