#pragma once

// In-run metrics sampler: a ticker thread that snapshots a set of
// named probes every `--metrics-interval` and keeps the rows for two
// consumers — the `timeseries` block of the bench JSON report, and
// ph:"C" counter tracks in the Chrome-trace export (trace_export.hpp)
// so the same numbers render as graphs under the event timeline.
//
// Probes come in two kinds:
//   * counter — cumulative and monotone (total ops, failed CAS count);
//     consumers derive per-interval rates from sample deltas, which is
//     why the sampler stores raw values instead of rates: no precision
//     is lost to the sampling cadence.
//   * gauge   — instantaneous level (current k, pool bytes, EWMA).
//
// Probe callbacks run on the sampler thread concurrently with the
// workload, so they must only read relaxed atomics / concurrent-safe
// accessors (progress_counters totals, contention_monitor::totals(),
// memory_stats(false), adaptor current_k()).  Optional tick hooks run
// before each row is sampled — e.g. folding a standalone contention
// monitor's window when no adaptive controller owns the ticker.
//
// The absolute-schedule periodic_ticker (util/ticker.hpp) keeps rows
// evenly spaced; rows are timestamped with the shared steady clock so
// they line up with trace events.

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace_export.hpp"
#include "util/ticker.hpp"
#include "util/timer.hpp"

namespace klsm::trace {

class metrics_sampler {
public:
    /// `interval_s` is the effective sampling period;
    /// `requested_interval_s` is what the user asked for (the driver
    /// may clamp the effective period so short smoke runs still yield
    /// a useful number of rows — both are reported in the JSON).
    metrics_sampler(double interval_s, double requested_interval_s)
        : interval_s_(interval_s > 0 ? interval_s : 0.05),
          requested_interval_s_(requested_interval_s > 0
                                    ? requested_interval_s
                                    : interval_s_)
    {
    }

    void add_counter(std::string name, std::function<double()> fn)
    {
        columns_.push_back({std::move(name), true, std::move(fn)});
    }

    void add_gauge(std::string name, std::function<double()> fn)
    {
        columns_.push_back({std::move(name), false, std::move(fn)});
    }

    /// Runs before each row on the sampler thread (e.g. fold a
    /// contention window).
    void add_tick_hook(std::function<void()> fn)
    {
        hooks_.push_back(std::move(fn));
    }

    /// Begin sampling: records the t=0 row immediately, then one row
    /// per interval on the ticker thread.
    void start()
    {
        base_ns_ = now_ns();
        sample_once();
        ticker_ = std::make_unique<periodic_ticker>(
            [this] { sample_once(); }, interval_s_);
    }

    /// Stop the ticker and record a final row, so even the shortest
    /// run ends with a complete (start, ..., end) series.
    void stop()
    {
        ticker_.reset();
        sample_once();
    }

    std::size_t samples() const
    {
        const std::lock_guard<std::mutex> lock(rows_mutex_);
        return rows_.size();
    }
    std::size_t columns() const { return columns_.size(); }

    /// The `timeseries` JSON object (no trailing newline):
    /// {"requested_interval_ms":..,"interval_ms":..,
    ///  "columns":[{"name":..,"kind":"counter"|"gauge"},..],
    ///  "samples":[[t_s, v0, v1, ..], ..]}
    std::string json() const
    {
        const std::lock_guard<std::mutex> lock(rows_mutex_);
        std::string out;
        out.reserve(256 + rows_.size() * (16 * (columns_.size() + 1)));
        char buf[64];
        out += "{\"requested_interval_ms\": ";
        std::snprintf(buf, sizeof buf, "%.6g",
                      requested_interval_s_ * 1e3);
        out += buf;
        out += ", \"interval_ms\": ";
        std::snprintf(buf, sizeof buf, "%.6g", interval_s_ * 1e3);
        out += buf;
        out += ", \"columns\": [";
        for (std::size_t c = 0; c < columns_.size(); ++c) {
            if (c != 0)
                out += ", ";
            out += "{\"name\": \"";
            out += columns_[c].name;
            out += "\", \"kind\": \"";
            out += columns_[c].counter ? "counter" : "gauge";
            out += "\"}";
        }
        out += "], \"samples\": [";
        for (std::size_t r = 0; r < rows_.size(); ++r) {
            out += r == 0 ? "\n  [" : ",\n  [";
            std::snprintf(buf, sizeof buf, "%.6f",
                          rows_[r].t_s);
            out += buf;
            for (double v : rows_[r].values) {
                out += ", ";
                if (!(v == v) || v > 1e300 || v < -1e300)
                    v = 0;
                std::snprintf(buf, sizeof buf, "%.6g", v);
                out += buf;
            }
            out += "]";
        }
        out += rows_.empty() ? "]}" : "\n]}";
        return out;
    }

    /// Counter tracks for the Chrome-trace export.  Counters are
    /// emitted as per-interval rates (per second) — the staircase of
    /// a cumulative counter is useless as a Perfetto graph — and
    /// gauges as their raw level.
    std::vector<counter_series> counter_tracks() const
    {
        const std::lock_guard<std::mutex> lock(rows_mutex_);
        std::vector<counter_series> out;
        for (std::size_t c = 0; c < columns_.size(); ++c) {
            counter_series cs;
            cs.name = columns_[c].counter
                          ? columns_[c].name + "_per_sec"
                          : columns_[c].name;
            for (std::size_t r = 0; r < rows_.size(); ++r) {
                double v = rows_[r].values[c];
                if (columns_[c].counter) {
                    if (r == 0)
                        continue;
                    const double dt =
                        rows_[r].t_s - rows_[r - 1].t_s;
                    const double dv =
                        v - rows_[r - 1].values[c];
                    v = dt > 0 ? dv / dt : 0.0;
                }
                cs.points.emplace_back(rows_[r].ts_ns, v);
            }
            if (!cs.points.empty())
                out.push_back(std::move(cs));
        }
        return out;
    }

private:
    struct column {
        std::string name;
        bool counter;
        std::function<double()> fn;
    };

    struct row {
        std::uint64_t ts_ns;
        double t_s;
        std::vector<double> values;
    };

    void sample_once()
    {
        for (const auto &h : hooks_)
            h();
        row r;
        r.ts_ns = now_ns();
        r.t_s = static_cast<double>(r.ts_ns - base_ns_) * 1e-9;
        r.values.reserve(columns_.size());
        for (const auto &c : columns_)
            r.values.push_back(c.fn ? c.fn() : 0.0);
        const std::lock_guard<std::mutex> lock(rows_mutex_);
        rows_.push_back(std::move(r));
    }

    double interval_s_;
    double requested_interval_s_;
    std::uint64_t base_ns_ = 0;
    std::vector<column> columns_;
    std::vector<std::function<void()>> hooks_;
    /// Appended on the ticker thread; the mutex makes samples()/json()
    /// callable while sampling is live (ticks are milliseconds apart,
    /// so the lock is never contended in any way that matters).
    mutable std::mutex rows_mutex_;
    std::vector<row> rows_;
    std::unique_ptr<periodic_ticker> ticker_;
};

} // namespace klsm::trace
