#pragma once

// Quiesce-time trace export in Chrome-trace ("Trace Event") JSON, the
// format both chrome://tracing and ui.perfetto.dev load directly.
//
// Mapping from the 16-byte runtime events (trace_event.hpp):
//
//  * span kinds   -> ph:"X" complete events: `b` is the duration in
//    ns and the recorded timestamp is the span *end*, so the exported
//    ts is `end - dur`;
//  * instant kinds-> ph:"i" thread-scoped instants with both named
//    arguments;
//  * metrics-sampler columns (metrics_sampler.hpp) -> ph:"C" counter
//    tracks, so the in-run ops/s / EWMA / pool gauges render as
//    graphs on the same timeline as the events.
//
// Timestamps are microseconds (double) relative to the tracer's
// enable() base, which keeps them small, positive, and monotone —
// properties scripts/check_trace_schema.py asserts.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace_event.hpp"
#include "trace/tracer.hpp"

namespace klsm::trace {

/// One counter track for the export: (ts_ns, value) points.
struct counter_series {
    std::string name;
    std::vector<std::pair<std::uint64_t, double>> points;
};

namespace detail {

inline void write_counter_value(std::ostream &os, double v)
{
    // JSON has no NaN/Inf; a counter that never sampled writes 0.
    if (!(v == v) || v > 1e300 || v < -1e300) {
        v = 0.0;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    os << buf;
}

/// Events destined for the "traceEvents" array, pre-serialized except
/// for ordering, so spans/instants/counters can be merged ts-sorted.
struct staged_event {
    double ts_us;
    std::string json;
};

} // namespace detail

/// Serialize the tracer's drained rings (plus optional counter
/// tracks) as one Chrome-trace JSON document.  Call only at quiesce.
inline void write_chrome_trace(
    std::ostream &os, tracer &t,
    const std::vector<counter_series> *counters = nullptr,
    const char *process_name = "klsm_bench")
{
    tracer::drain_stats stats;
    const auto events = t.drain_sorted(&stats);
    const std::uint64_t base = t.base_ns();

    const auto rel_us = [base](std::uint64_t ts_ns) {
        return ts_ns >= base
                   ? static_cast<double>(ts_ns - base) * 1e-3
                   : 0.0;
    };

    std::vector<detail::staged_event> staged;
    staged.reserve(events.size() + 64);

    for (const auto &te : events) {
        const kind_info &ki = info(te.ev.kind_);
        const double end_us = rel_us(te.ev.ts_ns);
        std::string j;
        j.reserve(160);
        j += "{\"name\":\"";
        j += ki.name;
        j += "\",\"cat\":\"";
        j += ki.category;
        j += "\",\"pid\":1,\"tid\":";
        j += std::to_string(te.tid);
        char num[64];
        double ts_us = end_us;
        if (ki.span) {
            const double dur_us =
                static_cast<double>(te.ev.b) * 1e-3;
            ts_us = end_us > dur_us ? end_us - dur_us : 0.0;
            std::snprintf(num, sizeof num,
                          ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f",
                          ts_us, dur_us);
            j += num;
            j += ",\"args\":{\"";
            j += (ki.arg_a != nullptr && ki.arg_a[0] != '\0')
                     ? ki.arg_a
                     : "a";
            j += "\":";
            j += std::to_string(te.ev.a);
            j += "}}";
        } else {
            std::snprintf(num, sizeof num,
                          ",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f",
                          ts_us);
            j += num;
            j += ",\"args\":{";
            bool first = true;
            if (ki.arg_a != nullptr && ki.arg_a[0] != '\0') {
                j += "\"";
                j += ki.arg_a;
                j += "\":";
                j += std::to_string(te.ev.a);
                first = false;
            }
            if (ki.arg_b != nullptr && ki.arg_b[0] != '\0') {
                if (!first) {
                    j += ",";
                }
                j += "\"";
                j += ki.arg_b;
                j += "\":";
                j += std::to_string(te.ev.b);
            }
            j += "}}";
        }
        staged.push_back({ts_us, std::move(j)});
    }

    if (counters != nullptr) {
        for (const auto &cs : *counters) {
            for (const auto &[ts_ns, value] : cs.points) {
                const double ts_us = rel_us(ts_ns);
                std::string j;
                j.reserve(120);
                char num[64];
                std::snprintf(num, sizeof num,
                              "\"ph\":\"C\",\"ts\":%.3f", ts_us);
                j += "{\"name\":\"";
                j += cs.name;
                j += "\",\"cat\":\"metrics\",\"pid\":1,\"tid\":0,";
                j += num;
                j += ",\"args\":{\"value\":";
                {
                    std::ostringstream vs;
                    detail::write_counter_value(vs, value);
                    j += vs.str();
                }
                j += "}}";
                staged.push_back({ts_us, std::move(j)});
            }
        }
    }

    std::stable_sort(staged.begin(), staged.end(),
                     [](const detail::staged_event &x,
                        const detail::staged_event &y) {
                         return x.ts_us < y.ts_us;
                     });

    os << "{\n\"traceEvents\": [\n";
    // Process metadata first; viewers use it for track naming.
    os << "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
          "\"tid\":0,\"ts\":0,\"args\":{\"name\":\""
       << process_name << "\"}}";
    {
        // Name each thread track by its dense slot id.
        std::vector<bool> seen(max_registered_threads, false);
        for (const auto &te : events) {
            if (te.tid < seen.size() && !seen[te.tid]) {
                seen[te.tid] = true;
                os << ",\n  {\"name\":\"thread_name\",\"ph\":\"M\","
                      "\"pid\":1,\"tid\":"
                   << te.tid << ",\"ts\":0,\"args\":{\"name\":\"slot-"
                   << te.tid << "\"}}";
            }
        }
    }
    for (const auto &se : staged) {
        os << ",\n  " << se.json;
    }
    os << "\n],\n";
    os << "\"displayTimeUnit\": \"ms\",\n";
    os << "\"otherData\": {"
       << "\"recorded_events\": " << stats.recorded
       << ", \"dropped_events\": " << stats.dropped
       << ", \"threads\": " << stats.rings << "}\n";
    os << "}\n";
}

} // namespace klsm::trace
