#pragma once

// The event vocabulary of the runtime tracer (src/trace/).
//
// One trace event is two machine words: a 64-bit monotonic timestamp
// and a packed (kind, a, b) payload.  Keeping the record this small is
// what lets the hot paths of the k-LSM — block publishes, shared-LSM
// spills, reclamation steps — stay instrumented in every build: an
// enabled tracer pays one clock read and one 16-byte store into a
// thread-private ring; a disabled one pays a single relaxed load and a
// predictable branch.
//
// The kind table below is the single source of truth for how each kind
// renders in the Chrome-trace/Perfetto export (trace_export.hpp) and
// how scripts/trace_report.py attributes events to subsystems: `span`
// kinds carry their duration in `b` (nanoseconds, saturating) and
// export as ph:"X" complete events; instant kinds export as ph:"i"
// with both arguments named.

#include <cstdint>

namespace klsm::trace {

/// Everything the runtime can record.  Append-only: exported traces
/// identify kinds by name, but the ring stores the ordinal.
enum class kind : std::uint16_t {
    none = 0,
    /// DistLSM insert/insert_batch ran Listing 4's merge chain and
    /// published (span; a = blocks merged into the new block).
    dist_publish,
    /// DistLSM exceeded its spill bound and handed one merged block to
    /// the shared LSM (instant; b = items spilled).
    dist_spill,
    /// A buffered handle flushed its staged inserts as one pre-sorted
    /// block (instant; b = batch size).
    dist_batch_flush,
    /// shared_lsm::insert won the publish CAS (span over the whole
    /// copy/pivot/publish loop; a = CAS retries burned first).
    shared_publish,
    /// Adaptive-k controller decisions, split by reason so a trace
    /// viewer and trace_report.py see the direction without decoding
    /// arguments (instant; a = old k, b = new k).
    k_grow,
    k_shrink,
    k_budget,
    /// A pool chunk whose items are all dead left the allocation path
    /// (instant; b = chunk bytes).
    reclaim_quarantine,
    /// A quarantined region's pages went back to the OS via
    /// madvise(MADV_DONTNEED) (instant; b = bytes released).
    reclaim_release,
    /// A quiescent shrink pass over a whole structure (instant;
    /// b = page-release events it triggered).
    reclaim_shrink,
    /// The epoch manager advanced the global epoch (instant;
    /// b = new epoch, low 32 bits).
    epoch_advance,
    /// An open-loop service op was issued later than the grace window
    /// allows (instant; b = lateness in ns, saturating).
    service_late,
    /// A record's SLO verdict failed (instant; b = observed p99 in us,
    /// saturating).
    slo_violation,
    /// One benchmark record's measurement window (span; a = record
    /// index within the invocation's sweep).
    bench_record,
    /// Branch-and-bound expanded a live subproblem node (instant;
    /// a = depth, b = the node's upper bound, saturating).
    bnb_expand,
    /// Discrete-event simulation committed an event (instant; a = the
    /// logical process, b = commit lag in virtual time — how far the
    /// LP's clock was already past the event's timestamp, saturating).
    des_commit,
};
inline constexpr std::uint16_t kind_count = 17;

/// Two words: 8-byte timestamp + 8-byte payload.
struct trace_event {
    std::uint64_t ts_ns = 0; ///< absolute steady-clock ns (span: end)
    std::uint16_t kind_ = 0;
    std::uint16_t a = 0;
    std::uint32_t b = 0;
};
static_assert(sizeof(trace_event) == 16, "trace events are two words");

/// Display metadata for one kind.  `arg_b` is ignored for spans, where
/// `b` is the duration.
struct kind_info {
    const char *name;
    const char *category; ///< subsystem bucket for trace_report.py
    bool span;
    const char *arg_a;
    const char *arg_b;
};

inline constexpr kind_info kind_table[kind_count] = {
    {"none", "misc", false, "a", "b"},
    {"dist.publish", "dist_lsm", true, "merged_blocks", nullptr},
    {"dist.spill", "dist_lsm", false, "level", "items"},
    {"dist.batch_flush", "dist_lsm", false, "", "items"},
    {"shared.publish", "shared_lsm", true, "retries", nullptr},
    {"k.grow", "adapt", false, "from", "to"},
    {"k.shrink", "adapt", false, "from", "to"},
    {"k.budget", "adapt", false, "from", "to"},
    {"reclaim.quarantine", "mm", false, "pool", "bytes"},
    {"reclaim.release", "mm", false, "pool", "bytes"},
    {"reclaim.shrink", "mm", false, "", "released"},
    {"epoch.advance", "mm", false, "", "epoch"},
    {"service.late", "service", false, "", "lateness_ns"},
    {"service.slo_violation", "service", false, "", "p99_us"},
    {"bench.record", "bench", true, "record", nullptr},
    {"bnb.expand", "workload", false, "depth", "bound"},
    {"des.commit", "workload", false, "lp", "lag"},
};

inline const kind_info &info(std::uint16_t k) {
    return kind_table[k < kind_count ? k : 0];
}
inline const kind_info &info(kind k) {
    return info(static_cast<std::uint16_t>(k));
}

/// Saturating narrowing for event payloads: a clamped argument beats a
/// silently wrapped one in a trace meant for debugging.
inline std::uint16_t clamp16(std::uint64_t v) {
    return v > 0xffff ? std::uint16_t{0xffff}
                      : static_cast<std::uint16_t>(v);
}
inline std::uint32_t clamp32(std::uint64_t v) {
    return v > 0xffffffffULL ? std::uint32_t{0xffffffff}
                             : static_cast<std::uint32_t>(v);
}

} // namespace klsm::trace
