#pragma once

// Per-worker progress counters the metrics sampler reads mid-run.
//
// The harness worker loops keep their op tallies in plain locals
// (cheap, no sharing) and publish end-of-run totals — which is exactly
// why nothing could observe throughput *during* a run.  This type is
// the minimal bridge: each worker owns one cache-line-aligned slot and
// relaxed-stores its running totals into it every iteration; the
// sampler thread sums the slots every `--metrics-interval`.  A relaxed
// store to an exclusively-owned line costs on the order of a register
// spill, so the instrument does not perturb what it measures.

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/align.hpp"

namespace klsm::trace {

class progress_counters {
public:
    explicit progress_counters(unsigned threads)
        : n_(threads == 0 ? 1 : threads),
          slots_(std::make_unique<slot[]>(n_))
    {
    }

    unsigned threads() const { return n_; }

    /// Owner-thread publish: cumulative ops and failed delete_mins of
    /// worker `t` so far.
    void publish(unsigned t, std::uint64_t ops, std::uint64_t failed)
    {
        if (t >= n_)
            return;
        slots_[t].ops.store(ops, std::memory_order_relaxed);
        slots_[t].failed.store(failed, std::memory_order_relaxed);
    }

    /// Cumulative ops already published for worker `t` — lets a slot
    /// carry totals across harness phases that respawn workers.
    std::uint64_t ops_of(unsigned t) const
    {
        return t < n_ ? slots_[t].ops.load(std::memory_order_relaxed)
                      : 0;
    }
    std::uint64_t failed_of(unsigned t) const
    {
        return t < n_
                   ? slots_[t].failed.load(std::memory_order_relaxed)
                   : 0;
    }

    std::uint64_t total_ops() const
    {
        std::uint64_t s = 0;
        for (unsigned t = 0; t < n_; ++t)
            s += slots_[t].ops.load(std::memory_order_relaxed);
        return s;
    }

    std::uint64_t total_failed() const
    {
        std::uint64_t s = 0;
        for (unsigned t = 0; t < n_; ++t)
            s += slots_[t].failed.load(std::memory_order_relaxed);
        return s;
    }

private:
    struct alignas(cache_line_size) slot {
        std::atomic<std::uint64_t> ops{0};
        std::atomic<std::uint64_t> failed{0};
    };

    unsigned n_;
    std::unique_ptr<slot[]> slots_;
};

} // namespace klsm::trace
