// Runtime tracer state: ring registry, enable/disable, quiesce drain.
//
// Compiled into klsm_core so the whole process shares one tracer and
// one activity flag, whichever headers a TU pulled in.

#include "trace/tracer.hpp"

#include <algorithm>

namespace klsm::trace {

namespace detail {
std::atomic<bool> g_active{false};
} // namespace detail

tracer &tracer::instance()
{
    static tracer t;
    return t;
}

tracer::~tracer()
{
    for (auto &slot : rings_) {
        delete slot.load(std::memory_order_acquire);
    }
}

void tracer::enable(std::size_t ring_capacity)
{
    {
        std::lock_guard<std::mutex> g(alloc_mtx_);
        ring_capacity_ = ring_capacity < 2 ? 2 : ring_capacity;
    }
    base_ns_.store(now_ns(), std::memory_order_release);
    detail::g_active.store(true, std::memory_order_release);
}

void tracer::disable()
{
    detail::g_active.store(false, std::memory_order_release);
}

void tracer::reset()
{
    disable();
    std::lock_guard<std::mutex> g(alloc_mtx_);
    for (auto &slot : rings_) {
        delete slot.exchange(nullptr, std::memory_order_acq_rel);
    }
}

trace_ring *tracer::ring_for_this_thread()
{
    const std::uint32_t idx = thread_index();
    trace_ring *r = rings_[idx].load(std::memory_order_acquire);
    if (r == nullptr) {
        // One-time allocation per thread slot; every later event on
        // this thread is allocation-free.  The lock only serializes
        // ring construction, never event recording.
        std::lock_guard<std::mutex> g(alloc_mtx_);
        r = rings_[idx].load(std::memory_order_relaxed);
        if (r == nullptr) {
            r = new trace_ring(ring_capacity_);
            rings_[idx].store(r, std::memory_order_release);
        }
    }
    return r;
}

void tracer::record(kind k, std::uint16_t a, std::uint32_t b,
                    std::uint64_t ts_ns)
{
    trace_event e;
    e.ts_ns = ts_ns;
    e.kind_ = static_cast<std::uint16_t>(k);
    e.a = a;
    e.b = b;
    ring_for_this_thread()->push(e);
}

std::vector<tracer::tagged_event>
tracer::drain_sorted(drain_stats *stats)
{
    std::vector<tagged_event> out;
    drain_stats ds;
    std::lock_guard<std::mutex> g(alloc_mtx_);
    for (std::uint32_t tid = 0; tid < max_registered_threads; ++tid) {
        const trace_ring *r = rings_[tid].load(std::memory_order_acquire);
        if (r == nullptr || r->pushed() == 0) {
            continue;
        }
        ds.rings += 1;
        ds.recorded += r->size();
        ds.dropped += r->dropped();
        r->for_each([&](const trace_event &ev) {
            out.push_back({tid, ev});
        });
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const tagged_event &x, const tagged_event &y) {
                         return x.ev.ts_ns < y.ev.ts_ns;
                     });
    if (stats != nullptr) {
        *stats = ds;
    }
    return out;
}

} // namespace klsm::trace
