#pragma once

// Process-wide runtime tracer: per-thread lock-free event rings behind
// one relaxed on/off flag.
//
// Gating is two-level, mirroring how the paper's artifact keeps its
// instrumentation out of measured runs:
//
//  * compile time — building with -DKLSM_TRACE_ENABLED=0 (CMake option
//    KLSM_TRACE=OFF) turns the KLSM_TRACE_* macros into no-ops, so the
//    hot paths carry zero tracing code;
//  * run time — in a tracing build, every instrumentation point is
//    `if (trace::active())`: one relaxed atomic load and a
//    well-predicted branch when the user did not pass `--trace`.  The
//    compare_bench smoke gate enforces that this costs nothing
//    measurable.
//
// When active, an event costs one clock read plus a 16-byte store into
// the calling thread's private ring (trace_ring.hpp).  Rings are
// allocated once per thread slot on first use — after that the hot
// path never allocates.  Draining happens at quiesce, after workers
// have been joined, via `tracer::instance().drain_sorted()` /
// trace_export.hpp.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "trace/trace_event.hpp"
#include "trace/trace_ring.hpp"
#include "util/thread_id.hpp"
#include "util/timer.hpp"

// Compile-time gate; overridable via the KLSM_TRACE CMake option.
#ifndef KLSM_TRACE_ENABLED
#define KLSM_TRACE_ENABLED 1
#endif

namespace klsm::trace {

namespace detail {
/// The one flag every instrumentation point loads.  Kept outside the
/// tracer singleton so the fast path needs no function-local static
/// guard check.
extern std::atomic<bool> g_active;
} // namespace detail

/// True iff tracing was both compiled in and enabled at runtime.
inline bool active()
{
#if KLSM_TRACE_ENABLED
    return detail::g_active.load(std::memory_order_relaxed);
#else
    return false;
#endif
}

class tracer {
public:
    static constexpr std::size_t default_ring_capacity = 1u << 16;

    static tracer &instance();

    /// Arm the tracer: future events are recorded into per-thread
    /// rings of `ring_capacity` events each.  Captures the base
    /// timestamp exported traces are expressed relative to.
    void enable(std::size_t ring_capacity = default_ring_capacity);

    /// Stop recording.  Rings retain their events for draining.
    void disable();

    /// Drop all rings and recorded events (test isolation helper; the
    /// caller must know the producing threads have quiesced).
    void reset();

    std::uint64_t base_ns() const
    {
        return base_ns_.load(std::memory_order_acquire);
    }

    /// Record one event on the calling thread's ring.  Callers should
    /// gate on `trace::active()`; this re-checks only cheaply enough
    /// to tolerate a disable() racing a final event.
    void record(kind k, std::uint16_t a, std::uint32_t b,
                std::uint64_t ts_ns);

    struct tagged_event {
        std::uint32_t tid;
        trace_event ev;
    };

    struct drain_stats {
        std::uint64_t recorded = 0; ///< events retained across rings
        std::uint64_t dropped = 0;  ///< events lost to wrap-around
        std::uint32_t rings = 0;    ///< thread slots that ever traced
    };

    /// Merge every ring's retained events, sorted by timestamp.  Only
    /// valid once producing threads have quiesced (joined or idle).
    std::vector<tagged_event> drain_sorted(drain_stats *stats = nullptr);

private:
    tracer() = default;
    ~tracer();

    trace_ring *ring_for_this_thread();

    std::atomic<trace_ring *> rings_[max_registered_threads] = {};
    std::atomic<std::uint64_t> base_ns_{0};
    std::size_t ring_capacity_ = default_ring_capacity;
    std::mutex alloc_mtx_;
};

/// Record an instant event now.  Call sites gate on trace::active().
inline void emit(kind k, std::uint16_t a = 0, std::uint32_t b = 0)
{
    tracer::instance().record(k, a, b, now_ns());
}

/// RAII duration probe: reads the clock only when tracing is active,
/// and on destruction emits a span event whose `b` is the elapsed
/// nanoseconds (saturating).  `arg()` sets the span's `a` payload
/// after construction (e.g. blocks merged, CAS retries).
class span {
public:
    explicit span(kind k, std::uint16_t a = 0)
        : k_(k), a_(a), armed_(active()),
          start_ns_(armed_ ? now_ns() : 0)
    {
    }

    span(const span &) = delete;
    span &operator=(const span &) = delete;

    void arg(std::uint16_t a) { a_ = a; }
    void cancel() { armed_ = false; }

    ~span()
    {
        if (armed_ && active()) {
            const std::uint64_t end = now_ns();
            tracer::instance().record(k_, a_, clamp32(end - start_ns_),
                                      end);
        }
    }

private:
    kind k_;
    std::uint16_t a_;
    bool armed_;
    std::uint64_t start_ns_;
};

} // namespace klsm::trace

// Instrumentation macros.  Arguments are evaluated only when the
// tracer is active; with KLSM_TRACE_ENABLED=0 they compile away
// entirely.
#if KLSM_TRACE_ENABLED
#define KLSM_TRACE_EVENT(k, a, b)                                        \
    do {                                                                 \
        if (::klsm::trace::active()) {                                   \
            ::klsm::trace::emit((k),                                     \
                                ::klsm::trace::clamp16(                  \
                                    static_cast<std::uint64_t>(a)),      \
                                ::klsm::trace::clamp32(                  \
                                    static_cast<std::uint64_t>(b)));     \
        }                                                                \
    } while (0)
#define KLSM_TRACE_SPAN(var, k) ::klsm::trace::span var { (k) }
#else
#define KLSM_TRACE_EVENT(k, a, b) ((void)0)
#define KLSM_TRACE_SPAN(var, k)                                          \
    ::klsm::trace::span var { (k) }
#endif
