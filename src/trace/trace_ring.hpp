#pragma once

// Fixed-capacity single-producer event ring.
//
// Each registered thread owns exactly one ring (tracer.hpp hands them
// out by `thread_index()` slot), so `push` needs no synchronization
// beyond a relaxed monotone head counter: the owner stores the event
// into `buf_[head & mask]` and bumps the count.  When the ring is
// full the oldest event is overwritten — a trace that keeps the most
// recent window is the useful one when something goes wrong at the
// end of a run, and it is what keeps the hot path allocation-free.
//
// Draining happens only at quiesce, after the producing threads have
// been joined (or, in tests, from the producer itself).  The head
// counter is atomic so a concurrent reader sees a consistent count
// under TSan, but the event payloads themselves are only safe to read
// once the producer has stopped; drain-time code must respect that.

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <memory>

#include "trace/trace_event.hpp"
#include "util/bits.hpp"

namespace klsm::trace {

class trace_ring {
public:
    explicit trace_ring(std::size_t capacity)
        : cap_(next_pow2(capacity < 2 ? 2 : capacity)),
          mask_(cap_ - 1),
          buf_(new trace_event[cap_])
    {
    }

    trace_ring(const trace_ring &) = delete;
    trace_ring &operator=(const trace_ring &) = delete;

    /// Owner-thread only.  One store + one relaxed counter bump.
    void push(const trace_event &e)
    {
        const std::uint64_t h = head_.load(std::memory_order_relaxed);
        buf_[h & mask_] = e;
        head_.store(h + 1, std::memory_order_release);
    }

    std::size_t capacity() const { return cap_; }

    /// Events ever pushed (monotone; not reset by wrap-around).
    std::uint64_t pushed() const
    {
        return head_.load(std::memory_order_acquire);
    }

    /// Events currently retained in the ring.
    std::uint64_t size() const
    {
        const std::uint64_t h = pushed();
        return h < cap_ ? h : cap_;
    }

    /// Events lost to wrap-around overwrites.
    std::uint64_t dropped() const
    {
        const std::uint64_t h = pushed();
        return h < cap_ ? 0 : h - cap_;
    }

    /// Visit retained events oldest-first.  Only valid once the owner
    /// thread has quiesced.
    template <typename Fn> void for_each(Fn &&fn) const
    {
        const std::uint64_t h = pushed();
        for (std::uint64_t i = h < cap_ ? 0 : h - cap_; i < h; ++i) {
            fn(buf_[i & mask_]);
        }
    }

private:
    const std::size_t cap_;
    const std::size_t mask_;
    std::unique_ptr<trace_event[]> buf_;
    std::atomic<std::uint64_t> head_{0};
};

} // namespace klsm::trace
