#pragma once

// Sequential Dijkstra with lazy deletion (decrease-key by reinsertion) —
// the reference both for verifying the parallel SSSP results and for the
// paper's "additional iterations compared to a sequential execution"
// metric (Section 6.1).

#include <cstdint>
#include <limits>
#include <vector>

#include "baselines/binary_heap.hpp"
#include "graph/graph.hpp"

namespace klsm {

inline constexpr std::uint64_t sssp_unreached =
    std::numeric_limits<std::uint64_t>::max();

struct dijkstra_result {
    std::vector<std::uint64_t> dist;
    /// Nodes settled (processed with an up-to-date distance).
    std::uint64_t settled = 0;
    /// Total queue pops, including stale entries skipped lazily.
    std::uint64_t pops = 0;
};

inline dijkstra_result dijkstra(const graph &g, graph::node_id source) {
    dijkstra_result out;
    out.dist.assign(g.num_nodes(), sssp_unreached);
    binary_heap<std::uint64_t, graph::node_id> heap;
    out.dist[source] = 0;
    heap.insert(0, source);
    std::uint64_t d;
    graph::node_id u;
    while (heap.try_delete_min(d, u)) {
        ++out.pops;
        if (d > out.dist[u])
            continue; // stale entry (lazy deletion)
        ++out.settled;
        const auto neighbors = g.neighbors(u);
        const auto weights = g.weights(u);
        for (std::size_t i = 0; i < neighbors.size(); ++i) {
            const std::uint64_t nd = d + weights[i];
            if (nd < out.dist[neighbors[i]]) {
                out.dist[neighbors[i]] = nd;
                heap.insert(nd, neighbors[i]);
            }
        }
    }
    return out;
}

} // namespace klsm
