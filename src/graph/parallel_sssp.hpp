#pragma once

// Parallel label-correcting SSSP (paper Section 6):
//
//   "a label-correcting version of Dijkstra's algorithm, which is
//    parallelized in a straightforward manner using a concurrent
//    priority queue.  It uses a lazy deletion scheme in connection with
//    reinsertion of keys instead of an explicit decrease-key operation."
//
// Each thread pops (distance, node) entries; entries whose distance
// exceeds the node's current tentative distance are stale and skipped.
// Relaxations CAS the tentative-distance array and reinsert.  Because
// relaxed queues may return out-of-order minima, nodes can be expanded
// more than once ("additional iterations"), which the harness reports
// exactly as the paper does.
//
// Termination: `pending` counts queue entries plus entries currently
// being expanded; when it reaches zero the queue is empty and no
// expansion can produce new work.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"
#include "klsm/item.hpp"
#include "stats/latency_recorder.hpp"
#include "topo/pinning.hpp"
#include "util/backoff.hpp"
#include "util/thread_id.hpp"
#include "util/ticker.hpp"

namespace klsm {

struct sssp_stats {
    std::uint64_t expansions = 0; ///< non-stale pops (node expansions)
    std::uint64_t stale_pops = 0; ///< lazy-deleted entries skipped
    std::uint64_t settled = 0;    ///< reachable nodes
    /// Workers whose pin_self failed and therefore ran unpinned.
    std::uint64_t pin_failures = 0;
};

/// Shared tentative-distance state; also serves as the lazy-deletion
/// oracle for the k-LSM (an item is expired iff a strictly smaller
/// distance is already recorded for its node).
class sssp_state {
public:
    explicit sssp_state(std::uint32_t nodes)
        : dist_(std::make_unique<std::atomic<std::uint64_t>[]>(nodes)),
          nodes_(nodes) {
        for (std::uint32_t i = 0; i < nodes; ++i)
            dist_[i].store(sssp_unreached, std::memory_order_relaxed);
    }

    /// In-flight entry counter for termination detection.  Every queue
    /// entry decrements it exactly once: on a stale pop, after an
    /// expansion, or via the lazy-deletion notification below.
    std::atomic<std::int64_t> &pending() { return pending_; }

    void entry_dropped() {
        pending_.fetch_sub(1, std::memory_order_acq_rel);
    }

    std::uint64_t dist(std::uint32_t node) const {
        return dist_[node].load(std::memory_order_relaxed);
    }

    /// CAS-relax: record `nd` for `node` if it improves; returns true if
    /// this call made an improvement.
    bool relax(std::uint32_t node, std::uint64_t nd) {
        std::uint64_t cur = dist_[node].load(std::memory_order_relaxed);
        while (nd < cur) {
            if (dist_[node].compare_exchange_weak(
                    cur, nd, std::memory_order_acq_rel,
                    std::memory_order_relaxed))
                return true;
        }
        return false;
    }

    const std::atomic<std::uint64_t> *raw() const { return dist_.get(); }
    std::uint32_t num_nodes() const { return nodes_; }

    std::vector<std::uint64_t> snapshot() const {
        std::vector<std::uint64_t> out(nodes_);
        for (std::uint32_t i = 0; i < nodes_; ++i)
            out[i] = dist_[i].load(std::memory_order_relaxed);
        return out;
    }

private:
    std::unique_ptr<std::atomic<std::uint64_t>[]> dist_;
    std::atomic<std::int64_t> pending_{0};
    std::uint32_t nodes_;
};

/// The lazy-deletion policy plugged into k_lsm for SSSP (Section 4.5).
struct sssp_lazy {
    sssp_state *state = nullptr;

    bool operator()(const std::uint64_t &key,
                    const item<std::uint64_t, std::uint32_t> *it) const {
        return state->dist(it->value()) < key;
    }

    /// The queue lazily deleted one entry: keep the termination counter
    /// balanced.
    void dropped() const { state->entry_dropped(); }
};

/// Run label-correcting SSSP on `pq` with `threads` workers.  The queue
/// must be empty; keys are distances, values are node ids.  A non-empty
/// `pin_cpus` (a topo::cpu_order placement) pins worker t to
/// pin_cpus[t % size()] before it starts popping.  A non-null `latency`
/// recorder set (sized for `threads`) captures per-op insert and
/// successful-pop latencies at its sampling stride.  A non-empty
/// `adapt_tick` (src/adapt/, typically queue_adaptor::tick) is invoked
/// every `adapt_tick_s` seconds from a dedicated ticker thread while
/// the workers run.
template <typename PQ>
sssp_stats parallel_sssp(PQ &pq, const graph &g, graph::node_id source,
                         unsigned threads, sssp_state &state,
                         const std::vector<std::uint32_t> &pin_cpus = {},
                         stats::latency_recorder_set *latency = nullptr,
                         const std::function<void()> &adapt_tick = {},
                         double adapt_tick_s = 0.005) {
    check_thread_capacity(threads);
    std::atomic<std::int64_t> &pending = state.pending();
    std::atomic<std::uint64_t> expansions{0};
    std::atomic<std::uint64_t> stale{0};
    std::atomic<std::uint64_t> pin_failures{0};

    state.relax(source, 0);
    // `pending` is raised before any worker starts, so no worker can
    // observe 0 before the seed entry exists.
    pending.store(1, std::memory_order_release);

    auto worker = [&](unsigned t, bool seed) {
        if (!pin_cpus.empty() &&
            !topo::pin_self(pin_cpus[t % pin_cpus.size()]))
            pin_failures.fetch_add(1, std::memory_order_relaxed);
        // The seed entry must be inserted by a *worker*: queues with
        // thread-private buffers (hybrid_k_pq) can only pop entries from
        // the inserting thread until they spill.
        if (seed)
            pq.insert(0, source);
        std::uint64_t d;
        graph::node_id u;
        exp_backoff backoff;
        for (;;) {
            stats::op_sample pop_sample{latency, t,
                                        stats::op_kind::delete_min};
            if (!pq.try_delete_min(d, u)) {
                if (pending.load(std::memory_order_acquire) == 0)
                    return;
                backoff();
                continue;
            }
            pop_sample.commit();
            backoff.reset();
            if (d > state.dist(u)) {
                // Stale entry (lazy deletion).
                stale.fetch_add(1, std::memory_order_relaxed);
                pending.fetch_sub(1, std::memory_order_acq_rel);
                continue;
            }
            expansions.fetch_add(1, std::memory_order_relaxed);
            const auto neighbors = g.neighbors(u);
            const auto weights = g.weights(u);
            for (std::size_t i = 0; i < neighbors.size(); ++i) {
                const std::uint64_t nd = d + weights[i];
                if (state.relax(neighbors[i], nd)) {
                    pending.fetch_add(1, std::memory_order_acq_rel);
                    stats::op_sample ins_sample{latency, t,
                                                stats::op_kind::insert};
                    pq.insert(nd, neighbors[i]);
                    ins_sample.commit();
                }
            }
            pending.fetch_sub(1, std::memory_order_acq_rel);
        }
    };

    periodic_ticker ticker{adapt_tick, adapt_tick_s};

    // Inline execution only when unpinned: pinning must happen on a
    // spawned worker so the caller's affinity mask (inherited by every
    // thread it spawns later) is never narrowed as a side effect.
    // Adaptive runs also take the spawned path so the worker/ticker
    // interleaving matches the multi-threaded shape.
    if (threads <= 1 && pin_cpus.empty() && !adapt_tick) {
        worker(0, true);
    } else if (threads <= 1) {
        std::thread t(worker, 0u, true);
        t.join();
    } else {
        std::vector<std::thread> ts;
        ts.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            ts.emplace_back(worker, t, t == 0);
        for (auto &t : ts)
            t.join();
    }

    sssp_stats out;
    out.expansions = expansions.load();
    out.stale_pops = stale.load();
    out.pin_failures = pin_failures.load();
    for (std::uint32_t i = 0; i < state.num_nodes(); ++i)
        out.settled += (state.dist(i) != sssp_unreached);
    return out;
}

} // namespace klsm
