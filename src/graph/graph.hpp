#pragma once

// Compressed-sparse-row directed graph — the substrate for the SSSP
// benchmark (paper Section 6, Figure 4).  Immutable after construction;
// concurrent readers need no synchronization.

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace klsm {

struct edge {
    std::uint32_t from;
    std::uint32_t to;
    std::uint32_t weight;
};

class graph {
public:
    using node_id = std::uint32_t;

    graph() = default;

    /// Build from an edge list (directed arcs as given).
    graph(node_id num_nodes, const std::vector<edge> &edges)
        : offsets_(num_nodes + 1, 0) {
        for (const edge &e : edges) {
            assert(e.from < num_nodes && e.to < num_nodes);
            ++offsets_[e.from + 1];
        }
        for (node_id u = 0; u < num_nodes; ++u)
            offsets_[u + 1] += offsets_[u];
        targets_.resize(edges.size());
        weights_.resize(edges.size());
        std::vector<std::size_t> cursor(offsets_.begin(),
                                        offsets_.end() - 1);
        for (const edge &e : edges) {
            const std::size_t pos = cursor[e.from]++;
            targets_[pos] = e.to;
            weights_[pos] = e.weight;
        }
    }

    node_id num_nodes() const {
        return offsets_.empty()
                   ? 0
                   : static_cast<node_id>(offsets_.size() - 1);
    }

    std::size_t num_edges() const { return targets_.size(); }

    std::size_t degree(node_id u) const {
        return offsets_[u + 1] - offsets_[u];
    }

    std::span<const node_id> neighbors(node_id u) const {
        return {targets_.data() + offsets_[u], degree(u)};
    }

    std::span<const std::uint32_t> weights(node_id u) const {
        return {weights_.data() + offsets_[u], degree(u)};
    }

private:
    std::vector<std::size_t> offsets_;
    std::vector<node_id> targets_;
    std::vector<std::uint32_t> weights_;
};

} // namespace klsm
