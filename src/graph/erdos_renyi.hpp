#pragma once

// Erdős–Rényi G(n, p) generator with uniform random edge weights — the
// paper's SSSP workload: "Erdős–Rényi random graphs with 10000 nodes and
// edge probability 50%; edge weights are randomly chosen integers in the
// range [1, 100000000]" (Section 6).
//
// Each undirected pair {u, v} is present with probability p and stored as
// two directed arcs.  Pairs are sampled with geometric skips, so sparse
// graphs cost O(#edges) rather than O(n^2).

#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace klsm {

struct erdos_renyi_params {
    std::uint32_t nodes = 10000;
    double edge_probability = 0.5;
    std::uint32_t max_weight = 100000000;
    std::uint64_t seed = 42;
};

inline graph make_erdos_renyi(const erdos_renyi_params &params) {
    xoroshiro128 rng{params.seed};
    std::vector<edge> edges;
    const double p = params.edge_probability;
    const std::uint32_t n = params.nodes;
    if (n == 0 || p <= 0.0)
        return graph{n, edges};

    const double expected =
        p * static_cast<double>(n) * (static_cast<double>(n) - 1.0);
    edges.reserve(static_cast<std::size_t>(expected) + 16);

    auto weight = [&] {
        return static_cast<std::uint32_t>(rng.range(1, params.max_weight));
    };

    if (p >= 1.0) {
        for (std::uint32_t u = 0; u < n; ++u)
            for (std::uint32_t v = u + 1; v < n; ++v) {
                const std::uint32_t w = weight();
                edges.push_back({u, v, w});
                edges.push_back({v, u, w});
            }
        return graph{n, edges};
    }

    // Geometric-skip sampling over the n*(n-1)/2 unordered pairs,
    // linearized row-wise as (u, v) with u < v.  The cursor (u, vofs)
    // advances incrementally, so generation is O(#edges + n) in total.
    const double log1mp = std::log(1.0 - p);
    std::uint32_t u = 0;
    std::uint64_t vofs = 0; // v = u + 1 + vofs; vofs in [0, n-2-u]
    for (;;) {
        // Draw skip ~ Geometric(p): number of absent pairs before the
        // next present one; advance the cursor by skip + 1.
        const double u01 =
            (static_cast<double>(rng()) + 1.0) / 18446744073709551616.0;
        std::uint64_t advance =
            static_cast<std::uint64_t>(std::log(u01) / log1mp) + 1;
        while (advance > 0 && u + 1 < n) {
            const std::uint64_t row_left = (n - 1 - u) - vofs;
            if (advance <= row_left) {
                vofs += advance;
                advance = 0;
            } else {
                advance -= row_left;
                ++u;
                vofs = 0;
            }
        }
        if (u + 1 >= n)
            break;
        const auto v = static_cast<std::uint32_t>(u + vofs);
        const std::uint32_t w = weight();
        edges.push_back({u, v, w});
        edges.push_back({v, u, w});
    }
    return graph{n, edges};
}

} // namespace klsm
