#pragma once

// Sequential log-structured-merge-tree priority queue (paper Section 3).
//
// The LSM priority queue keeps a logarithmic number of sorted arrays
// ("blocks"), at most one per level; a block of level l holds n keys with
// 2^(l-1) < n <= 2^l.  Keys within a block are sorted in *decreasing*
// order so the block minimum is a pop_back away.
//
//   * insert: append a level-0 block, then merge equal-level blocks
//     upwards until levels are strictly decreasing again.
//   * find-min: minimum over the block minima (O(log n) blocks).
//   * delete-min: remove that minimum; if the block now has too few
//     elements for its level it drops to a smaller level and is merged
//     with a neighbour if the level invariant broke.
//
// All operations are amortized O(log n), and the sequential layout is
// very cache friendly — in the paper's Figure 3 this structure (as the
// one-thread DLSM) matches a binary heap.
//
// This implementation additionally supports *tombstoned* (lazy) deletion
// and a relaxed delete-min ("delete one of the k+1 smallest, uniformly at
// random"), which the centralized k-priority-queue baseline (Wimmer et
// al. [29]) wraps under a lock.  Tombstones are physically dropped when
// blocks merge, exactly like logically deleted items in the concurrent
// k-LSM.

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/bits.hpp"
#include "util/rng.hpp"

namespace klsm {

template <typename K, typename V>
class lsm_pq {
public:
    using key_type = K;
    using value_type = V;

    lsm_pq() = default;

    bool empty() const { return alive_ == 0; }
    std::size_t size() const { return alive_; }

    void insert(const K &key, const V &value) {
        blk nb;
        nb.level = 0;
        nb.alive = 1;
        nb.data.push_back(node{key, value, false});
        const bool merged = merge_up(std::move(nb));
        ++alive_;
        // Merging moves entries between blocks, invalidating cached
        // candidate positions; a key below the candidate ceiling changes
        // the k+1-smallest set itself.
        if (merged || (!candidates_.empty() && key < candidate_max_key_))
            candidates_.clear();
    }

    /// Exact find-min.  Returns false iff empty.
    bool try_find_min(K &key, V &value) {
        const auto [bi, pos] = locate_min();
        if (bi == npos)
            return false;
        key = blocks_[bi].data[pos].key;
        value = blocks_[bi].data[pos].value;
        return true;
    }

    /// Exact delete-min.  Returns false iff empty.
    bool try_delete_min(K &key, V &value) {
        const auto [bi, pos] = locate_min();
        if (bi == npos)
            return false;
        key = blocks_[bi].data[pos].key;
        value = blocks_[bi].data[pos].value;
        erase_at(bi, pos);
        return true;
    }

    /// Relaxed delete-min: removes one of the min(k+1, size) smallest
    /// keys, chosen uniformly at random.  Returns false iff empty.
    bool try_delete_relaxed(K &key, V &value, std::size_t k,
                            xoroshiro128 &rng) {
        if (alive_ == 0)
            return false;
        if (candidates_.empty() || candidate_k_ != k)
            rebuild_candidates(k);
        // Pick live candidates until one is found; tombstoned entries are
        // swapped out of the cache.
        while (!candidates_.empty()) {
            const std::size_t r = rng.bounded(candidates_.size());
            const auto [bi, pos] = candidates_[r];
            // Dead suffixes may have been popped since the cache was
            // built; an out-of-range position can only have been dead.
            if (bi >= blocks_.size() || pos >= blocks_[bi].data.size()) {
                candidates_[r] = candidates_.back();
                candidates_.pop_back();
                continue;
            }
            node &n = blocks_[bi].data[pos];
            if (!n.dead) {
                key = n.key;
                value = n.value;
                // Remove the cache entry *before* tombstoning: tombstone
                // may trigger structural repair that clears the cache.
                candidates_[r] = candidates_.back();
                candidates_.pop_back();
                tombstone(bi, pos);
                return true;
            }
            candidates_[r] = candidates_.back();
            candidates_.pop_back();
        }
        // Cache went stale (all entries tombstoned by structural churn);
        // rebuild once and fall back to the exact minimum.
        rebuild_candidates(k);
        if (candidates_.empty())
            return try_delete_min(key, value);
        const std::size_t r = rng.bounded(candidates_.size());
        const auto [bi, pos] = candidates_[r];
        key = blocks_[bi].data[pos].key;
        value = blocks_[bi].data[pos].value;
        tombstone(bi, pos);
        candidates_.clear();
        return true;
    }

    /// Number of blocks (test/diagnostic helper).
    std::size_t block_count() const { return blocks_.size(); }

    /// Approximate heap footprint of the structure's backing vectors
    /// (capacity, not size — what release_memory() can give back).
    std::size_t heap_bytes() const {
        std::size_t bytes = blocks_.capacity() * sizeof(blk) +
                            candidates_.capacity() * sizeof(
                                std::pair<std::size_t, std::size_t>);
        for (const blk &b : blocks_)
            bytes += b.data.capacity() * sizeof(node);
        return bytes;
    }

    /// Drop every vector's excess capacity (the sequential analog of
    /// the concurrent pools' shrink tier): after a drain phase the
    /// block vectors keep their surge capacity forever otherwise.  The
    /// candidate cache is cleared outright — it rebuilds on the next
    /// relaxed pop.  Returns the (approximate) bytes released.
    std::size_t release_memory() {
        const std::size_t before = heap_bytes();
        candidates_.clear();
        candidates_.shrink_to_fit();
        for (blk &b : blocks_)
            b.data.shrink_to_fit();
        blocks_.shrink_to_fit();
        const std::size_t after = heap_bytes();
        return before > after ? before - after : 0;
    }

    /// Verify all structural invariants; used by property tests.
    bool check_invariants() const {
        std::size_t alive = 0;
        for (std::size_t i = 0; i < blocks_.size(); ++i) {
            const blk &b = blocks_[i];
            if (b.data.empty() || b.alive == 0)
                return false;
            if (b.data.size() > (std::size_t{1} << b.level))
                return false;
            if (b.level > 0 && b.alive <= (std::size_t{1} << (b.level - 1)))
                return false; // level should have been lowered
            if (i > 0 && blocks_[i - 1].level <= b.level)
                return false; // strictly decreasing levels
            for (std::size_t j = 1; j < b.data.size(); ++j)
                if (b.data[j - 1].key < b.data[j].key)
                    return false; // decreasing key order
            std::size_t a = 0;
            for (const node &n : b.data)
                a += n.dead ? 0 : 1;
            if (a != b.alive)
                return false;
            alive += a;
        }
        return alive == alive_;
    }

private:
    struct node {
        K key;
        V value;
        bool dead;
    };

    struct blk {
        std::vector<node> data; // decreasing key order
        std::uint32_t level = 0;
        std::size_t alive = 0;
    };

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /// Block index and position of the exact minimum alive entry, after
    /// trimming dead tails.  (npos, npos) iff empty.
    std::pair<std::size_t, std::size_t> locate_min() {
        trim_all();
        std::size_t best = npos;
        for (std::size_t i = 0; i < blocks_.size(); ++i) {
            if (blocks_[i].data.empty())
                continue;
            const K &tail = blocks_[i].data.back().key;
            if (best == npos || tail < blocks_[best].data.back().key)
                best = i;
        }
        if (best == npos)
            return {npos, npos};
        return {best, blocks_[best].data.size() - 1};
    }

    void erase_at(std::size_t bi, std::size_t pos) {
        blk &b = blocks_[bi];
        assert(!b.data[pos].dead);
        if (pos + 1 == b.data.size()) {
            b.data.pop_back();
        } else {
            b.data[pos].dead = true;
        }
        --b.alive;
        --alive_;
        restore_block(bi);
        candidates_.clear();
    }

    void tombstone(std::size_t bi, std::size_t pos) {
        blk &b = blocks_[bi];
        assert(!b.data[pos].dead);
        b.data[pos].dead = true;
        --b.alive;
        --alive_;
        // Keep the candidate cache: restore_block may merge/move entries,
        // in which case it clears the cache itself.
        const bool structural = needs_restore(bi);
        restore_block(bi);
        if (structural)
            candidates_.clear();
    }

    bool needs_restore(std::size_t bi) const {
        const blk &b = blocks_[bi];
        if (b.alive == 0)
            return true;
        if (b.level > 0 && b.alive <= (std::size_t{1} << (b.level - 1)))
            return true;
        return false;
    }

    void trim_all() {
        for (std::size_t i = 0; i < blocks_.size();) {
            blk &b = blocks_[i];
            while (!b.data.empty() && b.data.back().dead)
                b.data.pop_back();
            if (b.data.empty()) {
                blocks_.erase(blocks_.begin() + static_cast<std::ptrdiff_t>(i));
                candidates_.clear();
            } else {
                ++i;
            }
        }
    }

    /// Re-establish level/ordering invariants around block bi after a
    /// removal (paper: shrink to next-smaller level and merge if needed).
    void restore_block(std::size_t bi) {
        blk &b = blocks_[bi];
        while (!b.data.empty() && b.data.back().dead) {
            b.data.pop_back();
        }
        if (b.alive == 0) {
            // Fully dead: drop the block.
            blocks_.erase(blocks_.begin() + static_cast<std::ptrdiff_t>(bi));
            candidates_.clear();
            normalize();
            return;
        }
        std::uint32_t lvl = b.level;
        while (lvl > 0 && b.alive <= (std::size_t{1} << (lvl - 1)))
            --lvl;
        if (lvl != b.level) {
            // Shrinking compacts tombstones away (the lazy cleanup point).
            if (b.data.size() > b.alive)
                compact(b);
            b.level = lvl;
            candidates_.clear();
            normalize();
        }
    }

    static void compact(blk &b) {
        std::vector<node> keep;
        keep.reserve(b.alive);
        for (node &n : b.data)
            if (!n.dead)
                keep.push_back(n);
        b.data = std::move(keep);
    }

    /// Append a new block with level <= every existing level, merging
    /// upwards until levels are strictly decreasing (paper Figure 2).
    /// Returns true if any merge happened.
    bool merge_up(blk &&nb) {
        bool merged = false;
        while (!blocks_.empty() && blocks_.back().level <= nb.level) {
            nb = merge_blocks(std::move(blocks_.back()), std::move(nb));
            blocks_.pop_back();
            merged = true;
        }
        blocks_.push_back(std::move(nb));
        return merged;
    }

    /// Restore strictly-decreasing levels anywhere in the array.
    void normalize() {
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t i = 1; i < blocks_.size(); ++i) {
                if (blocks_[i - 1].level <= blocks_[i].level) {
                    blk merged = merge_blocks(std::move(blocks_[i - 1]),
                                              std::move(blocks_[i]));
                    blocks_[i - 1] = std::move(merged);
                    blocks_.erase(blocks_.begin() +
                                  static_cast<std::ptrdiff_t>(i));
                    changed = true;
                    break;
                }
            }
        }
        candidates_.clear();
    }

    static blk merge_blocks(blk &&a, blk &&c) {
        blk out;
        out.data.reserve(a.alive + c.alive);
        std::size_t i = 0, j = 0;
        while (i < a.data.size() && j < c.data.size()) {
            if (a.data[i].dead) {
                ++i;
                continue;
            }
            if (c.data[j].dead) {
                ++j;
                continue;
            }
            if (c.data[j].key < a.data[i].key)
                out.data.push_back(a.data[i++]);
            else
                out.data.push_back(c.data[j++]);
        }
        for (; i < a.data.size(); ++i)
            if (!a.data[i].dead)
                out.data.push_back(a.data[i]);
        for (; j < c.data.size(); ++j)
            if (!c.data[j].dead)
                out.data.push_back(c.data[j]);
        out.alive = out.data.size();
        out.level = out.alive <= 1
                        ? 0
                        : static_cast<std::uint32_t>(log2_ceil(out.alive));
        return out;
    }

    /// Collect positions of the min(k+1, alive) smallest alive entries
    /// via a multiway walk over the block tails.
    void rebuild_candidates(std::size_t k) {
        trim_all();
        candidates_.clear();
        candidate_k_ = k;
        const std::size_t want = alive_ < k + 1 ? alive_ : k + 1;
        // cursors[i]: next position to consider in block i, moving from
        // the tail (minimum) towards the head (maximum).
        std::vector<std::size_t> cursors(blocks_.size());
        for (std::size_t i = 0; i < blocks_.size(); ++i)
            cursors[i] = blocks_[i].data.size();
        while (candidates_.size() < want) {
            std::size_t best = npos;
            for (std::size_t i = 0; i < blocks_.size(); ++i) {
                // Skip dead entries below the cursor.
                std::size_t c = cursors[i];
                while (c > 0 && blocks_[i].data[c - 1].dead)
                    --c;
                cursors[i] = c;
                if (c == 0)
                    continue;
                if (best == npos ||
                    blocks_[i].data[c - 1].key <
                        blocks_[best].data[cursors[best] - 1].key)
                    best = i;
            }
            if (best == npos)
                break;
            candidates_.emplace_back(best, cursors[best] - 1);
            candidate_max_key_ = blocks_[best].data[cursors[best] - 1].key;
            --cursors[best];
        }
    }

    std::vector<blk> blocks_; // strictly decreasing levels
    std::size_t alive_ = 0;

    // Cache of candidate positions for relaxed deletion.
    std::vector<std::pair<std::size_t, std::size_t>> candidates_;
    std::size_t candidate_k_ = 0;
    K candidate_max_key_{};
};

} // namespace klsm
