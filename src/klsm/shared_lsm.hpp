#pragma once

// Shared k-LSM priority queue component (paper Section 4.1, Listings 2-3).
//
// One global version-stamped pointer (`shared_`) to the current immutable
// BlockArray.  Every thread keeps:
//   * two BlockArray instances it alternates between (Section 4.4), used
//     both as private snapshots of `shared_` and as the staging area for
//     updates, plus a growable safety valve;
//   * a block pool whose published blocks are reclaimed once they are no
//     longer referenced by the *current* shared array (see block_pool.hpp
//     for why absence from the current array is a stable criterion);
//   * the stamped pointer (`observed`) and full version under which its
//     snapshot was copied.
//
// delete-min relaxation: find_min picks uniformly at random one of the
// <= k+1 smallest entries, delimited per block by the pivot indices
// (Listing 2), falling back to the block minimum when the pick is
// logically deleted.  A per-block Bloom filter over contributing thread
// ids lets a thread find its own minimal key first, preserving local
// ordering semantics.
//
// Progress: operations retry only when another thread successfully
// replaced the shared array or recycled an array/block we were reading —
// i.e. when someone else made progress — so insert and find_min are
// lock-free (Lemmas 3-4).

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "adapt/contention_monitor.hpp"
#include "klsm/block.hpp"
#include "klsm/block_array.hpp"
#include "klsm/block_pool.hpp"
#include "klsm/item.hpp"
#include "klsm/lazy.hpp"
#include "mm/alloc_stats.hpp"
#include "mm/placement.hpp"
#include "trace/tracer.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"
#include "util/stamped_ptr.hpp"
#include "util/thread_id.hpp"

namespace klsm {

template <typename K, typename V>
class shared_lsm {
public:
    using arr = block_array<K, V>;
    static constexpr std::uint32_t max_blocks = arr::max_blocks;

    /// `place` governs where every thread's shared-pool block pages
    /// live (mm/placement.hpp); numa_klsm passes each shard's node.
    explicit shared_lsm(std::size_t k, mm::mem_placement place = {})
        : k_(k) {
        for (auto &s : threads_)
            s = std::make_unique<thread_state>(place);
    }

    shared_lsm(const shared_lsm &) = delete;
    shared_lsm &operator=(const shared_lsm &) = delete;

    std::size_t relaxation() const {
        return k_.load(std::memory_order_relaxed);
    }

    /// Change the relaxation parameter online (the adaptive-k control
    /// plane, src/adapt/).  Safe against concurrent operations: k is
    /// read once per pivot calculation, so any operation sees either
    /// the old or the new value — both of which are valid relaxations,
    /// and the rank bound during a run is governed by the maximum k
    /// that was ever set (see k_lsm::max_relaxation_seen).
    void set_relaxation(std::size_t k) {
        k_.store(k, std::memory_order_relaxed);
    }

    /// Attach (or detach, with nullptr) a contention monitor; the
    /// publish CAS loop reports publishes and retries to it.
    void set_monitor(adapt::contention_monitor *m) {
        monitor_.store(m, std::memory_order_relaxed);
    }

    /// Insert the contents of `src[0, src_filled)` (a sealed block owned
    /// by the calling thread's DistLSM) as a new block (Listing 3's
    /// insert: build on the private snapshot, then CAS-publish, retrying
    /// on a fresh snapshot until the CAS succeeds).
    template <typename Lazy = no_lazy>
    void insert(const block<K, V> *src, std::uint32_t src_filled,
                const Lazy &lazy = {}) {
        thread_state &ts = self();
        exp_backoff backoff;
        KLSM_TRACE_SPAN(publish_span, trace::kind::shared_publish);
        std::uint16_t publish_retries = 0;
        for (;;) {
            assert(ts.created.empty());
            arr *snap;
            if (refresh_if_needed(ts)) {
                snap = ts.snapshot;
                snap->begin_mutate();
            } else {
                snap = acquire_scratch(ts, nullptr);
                snap->begin_mutate();
                snap->size.store(0, std::memory_order_relaxed);
            }

            // Copy the source into a shared-pool block so DistLSM blocks
            // never escape into the shared structure.
            block<K, V> *nb = acquire_block(
                ts, block<K, V>::level_for(src_filled));
            nb->copy_from(*src, src_filled, lazy);
            nb->seal();
            if (nb->filled() == 0) {
                // Everything was already deleted or lazily expired;
                // nothing to publish.
                ts.pool.release(nb);
                snap->seal();
                publish_span.cancel();
                return;
            }
            ts.created.push_back(nb);

            insert_block_slot(ts, snap, nb, lazy);
            calculate_pivots(snap);
            const std::uint64_t v = snap->seal();

            if (snap->count() == 0) {
                // Cannot happen after inserting a non-empty block.
                assert(false);
            }
            if (push_snapshot(ts, snap, v)) {
                commit_created(ts);
                note(adapt::event::shared_publish);
                publish_span.arg(publish_retries);
                return;
            }
            rollback_created(ts);
            ts.snapshot = nullptr;
            note(adapt::event::shared_publish_retry);
            if (publish_retries != 0xffff)
                ++publish_retries;
            backoff();
        }
    }

    /// Find a candidate among the <= k+1 smallest entries (Listing 3's
    /// find_min).  Returns an empty ref iff the shared LSM is empty.  The
    /// caller attempts item_ref::take and calls again on failure.
    template <typename Lazy = no_lazy>
    item_ref<K, V> find_min(std::uint32_t tid, const Lazy &lazy = {}) {
        thread_state &ts = self();
        for (;;) {
            assert(ts.created.empty());
            if (!refresh_if_needed(ts))
                return {}; // shared is null: empty
            arr *snap = ts.snapshot;
            if (snap->count() == 0) {
                // A published empty array; replace it with null.
                push_null(ts);
                ts.snapshot = nullptr;
                continue;
            }

            item_ref<K, V> cand = select_candidate(snap, tid);
            if (!cand.empty() && cand.alive()) {
                // Lemma 2 linearizes a successful delete at the *last*
                // comparison of shared with observed; re-verify here so
                // the window between verification and the caller's take
                // CAS is as small as the paper's.
                if (shared_.load() != ts.observed) {
                    ts.snapshot = nullptr;
                    continue;
                }
                return cand;
            }

            // The selected candidate (and the block-minimum fallback) was
            // logically deleted: consolidate, and publish if the shape
            // changed (Listing 3).
            snap->begin_mutate();
            const bool merged = consolidate(ts, snap, lazy);
            calculate_pivots(snap);
            const std::uint64_t v = snap->seal();

            if (snap->count() == 0) {
                rollback_created(ts);
                push_null(ts);
                ts.snapshot = nullptr;
                continue;
            }
            if (merged) {
                if (push_snapshot(ts, snap, v)) {
                    commit_created(ts);
                    ts.snapshot = nullptr;
                } else {
                    rollback_created(ts);
                    ts.snapshot = nullptr;
                }
            }
            // Not merged: keep using the locally trimmed snapshot.
        }
    }

    /// Approximate number of entries (including not-yet-trimmed logically
    /// deleted ones) in the current shared array.  May be off by the
    /// relaxation bound, as the paper's size() permits.
    std::size_t item_count_estimate() const {
        for (;;) {
            const auto cur = shared_.load();
            arr *a = cur.ptr();
            if (a == nullptr)
                return 0;
            const std::uint64_t v1 =
                a->version.load(std::memory_order_acquire);
            if ((v1 & 1) != 0 || !cur.matches(v1)) {
                if (shared_.load() == cur)
                    return 0;
                continue;
            }
            std::size_t total = 0;
            std::uint32_t n = a->size.load(std::memory_order_relaxed);
            if (n > max_blocks)
                continue;
            for (std::uint32_t i = 0; i < n; ++i)
                total += a->slots[i].filled.load(std::memory_order_relaxed);
            std::atomic_thread_fence(std::memory_order_acquire);
            if (a->version.load(std::memory_order_relaxed) != v1)
                continue;
            return total;
        }
    }

    /// Diagnostic: number of BlockArray instances allocated beyond the
    /// paper's two-per-thread bound.
    std::size_t extra_array_allocations() const {
        std::size_t n = 0;
        for (const auto &s : threads_)
            n += s->extra_arrays.size();
        return n;
    }

    /// Fold every thread's shared-pool telemetry into `out`
    /// (quiescent-only when `query_residency` walks the regions).
    void collect_memory(mm::memory_stats &out, bool query_residency) const {
        for (const auto &s : threads_) {
            out.shared_blocks.merge(s->pool.stats().snapshot());
            if (query_residency)
                s->pool.for_each_region(
                    [&](const void *p, std::size_t bytes) {
                        mm::query_resident_nodes(
                            p, bytes, out.shared_blocks_resident);
                    });
        }
    }

    /// Release every free block's entry pages across all thread slots
    /// (mm/reclaim/).  PRECONDITION: no concurrent operations on the
    /// queue.  Returns the number of page-release events.
    std::size_t quiescent_shrink() {
        std::size_t released = 0;
        for (const auto &s : threads_)
            released += s->pool.quiescent_shrink();
        return released;
    }

private:
    struct thread_state {
        explicit thread_state(mm::mem_placement place) : pool(place) {}

        std::unique_ptr<arr> arrays[2];
        std::vector<std::unique_ptr<arr>> extra_arrays; // safety valve
        arr *snapshot = nullptr;
        stamped_ptr<arr> observed{};
        std::uint64_t observed_version = 0;
        block_pool<K, V> pool;
        std::vector<block<K, V> *> created;
    };

    thread_state &self() { return *threads_[thread_index()]; }

    /// One predictable branch when no monitor is attached.
    void note(adapt::event e) {
        adapt::contention_monitor *m =
            monitor_.load(std::memory_order_relaxed);
        if (m)
            m->count(e);
    }

    // ---- snapshot management ----------------------------------------------

    /// Ensure ts.snapshot is a valid private copy of the current shared
    /// array.  Returns false iff shared is null (empty shared LSM).
    bool refresh_if_needed(thread_state &ts) {
        if (ts.snapshot != nullptr && shared_.load() == ts.observed)
            return true;
        exp_backoff backoff;
        for (;;) {
            const auto cur = shared_.load();
            arr *src = cur.ptr();
            if (src == nullptr) {
                ts.snapshot = nullptr;
                ts.observed = cur;
                return false;
            }
            const std::uint64_t v1 =
                src->version.load(std::memory_order_acquire);
            if ((v1 & 1) != 0 || !cur.matches(v1)) {
                // Array being recycled: its publication must already have
                // been superseded; retry on the fresh pointer.
                backoff();
                continue;
            }
            arr *dst = acquire_scratch(ts, src);
            dst->begin_mutate();
            const bool ok = dst->copy_from(*src, v1);
            dst->seal();
            if (!ok) {
                backoff();
                continue;
            }
            ts.snapshot = dst;
            ts.observed = cur;
            ts.observed_version = v1;
            return true;
        }
    }

    /// One of my arrays that is neither `avoid` nor the currently
    /// published array.  Such an array always exists (only I can publish
    /// my own arrays, and at most one of them can be the current shared
    /// array); the safety-valve allocation keeps us robust if that
    /// reasoning is ever violated.
    arr *acquire_scratch(thread_state &ts, arr *avoid) {
        arr *shared_now = shared_.load().ptr();
        for (auto &a : ts.arrays) {
            if (a == nullptr)
                a = std::make_unique<arr>();
            if (a.get() != avoid && a.get() != shared_now)
                return a.get();
        }
        for (auto &a : ts.extra_arrays)
            if (a.get() != avoid && a.get() != shared_now)
                return a.get();
        assert(false && "both thread-local BlockArrays unavailable");
        ts.extra_arrays.push_back(std::make_unique<arr>());
        return ts.extra_arrays.back().get();
    }

    /// CAS-publish the sealed snapshot (Listing 3's push_snapshot), with
    /// the paper's pre-CAS full-version verification of `observed` to
    /// minimize the 10-bit stamp wraparound window (Section 4.4).
    bool push_snapshot(thread_state &ts, arr *snap, std::uint64_t version) {
        arr *obs = ts.observed.ptr();
        if (obs != nullptr &&
            obs->version.load(std::memory_order_acquire) !=
                ts.observed_version)
            return false;
        const stamped_ptr<arr> desired(snap, version);
        return shared_.compare_exchange(ts.observed, desired);
    }

    /// Replace a fully empty published array with null.
    void push_null(thread_state &ts) {
        arr *obs = ts.observed.ptr();
        if (obs == nullptr)
            return;
        if (obs->version.load(std::memory_order_acquire) !=
            ts.observed_version)
            return;
        shared_.compare_exchange(ts.observed, stamped_ptr<arr>{});
    }

    void commit_created(thread_state &ts) {
        for (block<K, V> *b : ts.created)
            ts.pool.mark_published(b);
        ts.created.clear();
    }

    void rollback_created(thread_state &ts) {
        for (block<K, V> *b : ts.created)
            ts.pool.release(b);
        ts.created.clear();
    }

    // ---- block recycling --------------------------------------------------

    block<K, V> *acquire_block(thread_state &ts, std::uint32_t level) {
        return ts.pool.acquire(level, level, [this](block<K, V> *b) {
            return unreferenced_by_current(b);
        });
    }

    /// True iff `b` is not referenced by the current shared array — a
    /// stable reclamation criterion: a block absent from the current
    /// array can never be re-published, because any snapshot still
    /// referencing it was copied from a superseded array and its push CAS
    /// must fail.
    bool unreferenced_by_current(block<K, V> *b) const {
        for (int attempt = 0; attempt < 8; ++attempt) {
            const auto cur = shared_.load();
            arr *a = cur.ptr();
            if (a == nullptr)
                return true;
            const std::uint64_t v1 =
                a->version.load(std::memory_order_acquire);
            if ((v1 & 1) != 0 || !cur.matches(v1))
                continue; // stale pointer; retry with a fresh one
            const std::uint32_t n = a->size.load(std::memory_order_relaxed);
            if (n > max_blocks)
                continue;
            bool found = false;
            for (std::uint32_t i = 0; i < n; ++i) {
                if (a->slots[i].blk.load(std::memory_order_relaxed) == b) {
                    found = true;
                    break;
                }
            }
            std::atomic_thread_fence(std::memory_order_acquire);
            if (a->version.load(std::memory_order_relaxed) != v1)
                continue; // torn scan
            return !found;
        }
        return false; // conservatively treat as still referenced
    }

    // ---- snapshot structure maintenance (private arrays) -------------------

    /// Insert block `nb` into the (mutating) snapshot at its level
    /// position, then restore strictly decreasing levels by merging.
    template <typename Lazy>
    void insert_block_slot(thread_state &ts, arr *snap, block<K, V> *nb,
                           const Lazy &lazy) {
        const std::uint32_t filled = nb->filled();
        const std::uint32_t level = block<K, V>::level_for(filled);
        std::uint32_t pos = snap->count();
        while (pos > 0 &&
               snap->slots[pos - 1].level.load(std::memory_order_relaxed) <=
                   level)
            --pos;
        snap->insert_slot(pos, nb, filled, level);
        normalize(ts, snap, lazy);
    }

    /// Trim logically deleted suffixes (against the array-local fill
    /// views), drop empty slots, lower levels, and merge level-order
    /// violations.  Returns true if any blocks were merged (Listing 2's
    /// consolidate return value).
    template <typename Lazy>
    bool consolidate(thread_state &ts, arr *snap, const Lazy &lazy) {
        for (std::uint32_t i = snap->count(); i-- > 0;) {
            trim_slot(snap, i);
            if (snap->slots[i].filled.load(std::memory_order_relaxed) == 0)
                snap->remove_slot(i);
        }
        return normalize(ts, snap, lazy);
    }

    /// Lower a slot's fill view past logically deleted entries and adjust
    /// the slot level.  Purely local: the underlying block is immutable.
    void trim_slot(arr *snap, std::uint32_t i) {
        auto &s = snap->slots[i];
        block<K, V> *b = s.blk.load(std::memory_order_relaxed);
        std::uint32_t f = s.filled.load(std::memory_order_relaxed);
        if (f > b->capacity())
            f = static_cast<std::uint32_t>(b->capacity());
        while (f > 0) {
            item_ref<K, V> ref = b->load_entry(f - 1);
            if (ref.it != nullptr && ref.it->is_alive(ref.version))
                break;
            --f;
        }
        s.filled.store(f, std::memory_order_relaxed);
        s.level.store(block<K, V>::level_for(f), std::memory_order_relaxed);
        if (s.pivot.load(std::memory_order_relaxed) > f)
            s.pivot.store(f, std::memory_order_relaxed);
    }

    /// Merge adjacent slots violating strictly-decreasing levels.
    template <typename Lazy>
    bool normalize(thread_state &ts, arr *snap, const Lazy &lazy) {
        bool merged_any = false;
        bool changed = true;
        while (changed) {
            changed = false;
            const std::uint32_t n = snap->count();
            for (std::uint32_t j = 0; j + 1 < n; ++j) {
                const std::uint32_t la =
                    snap->slots[j].level.load(std::memory_order_relaxed);
                const std::uint32_t lb =
                    snap->slots[j + 1].level.load(std::memory_order_relaxed);
                if (la > lb)
                    continue;
                merge_slots(ts, snap, j, lazy);
                merged_any = true;
                changed = true;
                break;
            }
        }
        return merged_any;
    }

    template <typename Lazy>
    void merge_slots(thread_state &ts, arr *snap, std::uint32_t j,
                     const Lazy &lazy) {
        block<K, V> *a = snap->slots[j].blk.load(std::memory_order_relaxed);
        block<K, V> *c =
            snap->slots[j + 1].blk.load(std::memory_order_relaxed);
        const std::uint32_t fa =
            snap->slots[j].filled.load(std::memory_order_relaxed);
        const std::uint32_t fc =
            snap->slots[j + 1].filled.load(std::memory_order_relaxed);
        const std::uint32_t la =
            snap->slots[j].level.load(std::memory_order_relaxed);
        const std::uint32_t lc =
            snap->slots[j + 1].level.load(std::memory_order_relaxed);
        const std::uint32_t cap = (la > lc ? la : lc) + 1;

        block<K, V> *nb = acquire_block_cap(ts, cap);
        nb->merge_from(*a, fa, *c, fc, lazy);
        nb->seal();

        // Inputs created this attempt (never published) recycle at once.
        release_if_created(ts, a);
        release_if_created(ts, c);

        const std::uint32_t filled = nb->filled();
        if (filled == 0) {
            ts.pool.release(nb);
            snap->remove_slot(j + 1);
            snap->remove_slot(j);
            return;
        }
        ts.created.push_back(nb);
        snap->set_slot(j, nb, filled, block<K, V>::level_for(filled));
        snap->remove_slot(j + 1);
    }

    block<K, V> *acquire_block_cap(thread_state &ts, std::uint32_t cap) {
        block<K, V> *b = ts.pool.acquire(cap, cap, [this](block<K, V> *x) {
            return unreferenced_by_current(x);
        });
        return b;
    }

    void release_if_created(thread_state &ts, block<K, V> *b) {
        for (std::size_t i = 0; i < ts.created.size(); ++i) {
            if (ts.created[i] == b) {
                ts.created.erase(ts.created.begin() +
                                 static_cast<std::ptrdiff_t>(i));
                ts.pool.release(b);
                return;
            }
        }
        // Published block dropped from the snapshot: its owner reclaims
        // it once this snapshot is published (absence from the current
        // array) — nothing to do here.
    }

    // ---- pivots and candidate selection (Listing 2) ------------------------

    /// Compute per-slot pivot indices delimiting the <= k+1 smallest
    /// entries, by a multiway suffix walk over the sorted blocks.
    void calculate_pivots(arr *snap) {
        const std::uint32_t n = snap->count();
        std::uint32_t cur[max_blocks];
        K next_key[max_blocks];
        bool has_next[max_blocks];
        for (std::uint32_t i = 0; i < n; ++i) {
            cur[i] = snap->slots[i].filled.load(std::memory_order_relaxed);
            block<K, V> *b = snap->slots[i].blk.load(std::memory_order_relaxed);
            has_next[i] = cur[i] > 0;
            if (has_next[i])
                next_key[i] = b->load_entry(cur[i] - 1).key;
        }
        std::size_t remaining = k_.load(std::memory_order_relaxed) + 1;
        while (remaining > 0) {
            std::uint32_t best = max_blocks;
            for (std::uint32_t i = 0; i < n; ++i) {
                if (!has_next[i])
                    continue;
                if (best == max_blocks || next_key[i] < next_key[best])
                    best = i;
            }
            if (best == max_blocks)
                break;
            --cur[best];
            --remaining;
            block<K, V> *b =
                snap->slots[best].blk.load(std::memory_order_relaxed);
            has_next[best] = cur[best] > 0;
            if (has_next[best])
                next_key[best] = b->load_entry(cur[best] - 1).key;
        }
        for (std::uint32_t i = 0; i < n; ++i)
            snap->slots[i].pivot.store(cur[i], std::memory_order_relaxed);
    }

    /// Listing 2's find_min: draw uniformly from the candidate ranges,
    /// fall back to the block minimum if the pick is deleted, and prefer
    /// the calling thread's own minimal key (Bloom filter check) when it
    /// is at least as small (local ordering semantics).
    item_ref<K, V> select_candidate(arr *snap, std::uint32_t tid) {
        const std::uint32_t n = snap->count();
        std::uint64_t total = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t f =
                snap->slots[i].filled.load(std::memory_order_relaxed);
            const std::uint32_t p =
                snap->slots[i].pivot.load(std::memory_order_relaxed);
            if (f > p)
                total += f - p;
        }

        item_ref<K, V> chosen{};
        if (total > 0) {
            std::uint64_t r = thread_rng().bounded(total);
            for (std::uint32_t i = 0; i < n; ++i) {
                const std::uint32_t f =
                    snap->slots[i].filled.load(std::memory_order_relaxed);
                const std::uint32_t p =
                    snap->slots[i].pivot.load(std::memory_order_relaxed);
                const std::uint64_t range = f > p ? f - p : 0;
                if (range <= r) {
                    r -= range;
                    continue;
                }
                block<K, V> *b =
                    snap->slots[i].blk.load(std::memory_order_relaxed);
                if (r != range - 1) {
                    item_ref<K, V> ref =
                        b->load_entry(p + static_cast<std::uint32_t>(r));
                    if (ref.it != nullptr && ref.it->is_alive(ref.version)) {
                        chosen = ref;
                        break;
                    }
                }
                // Fall back to the block minimum (possibly deleted; the
                // caller consolidates in that case).
                chosen = b->load_entry(f - 1);
                break;
            }
        }

        // Local ordering: the minimal key among blocks this thread may
        // have contributed to wins — but only when it is at least as
        // small as a *valid* random candidate.  When the candidate is
        // empty or already deleted, the caller must consolidate and
        // retry instead: the own minimum alone carries no rank bound (it
        // may be far from the global minimum when the smallest blocks
        // hold only other threads' items).
        if (chosen.empty() || !chosen.it->is_alive(chosen.version))
            return chosen;
        item_ref<K, V> own{};
        for (std::uint32_t i = 0; i < n; ++i) {
            block<K, V> *b =
                snap->slots[i].blk.load(std::memory_order_relaxed);
            if (!b->bloom_may_contain(tid))
                continue;
            const std::uint32_t f =
                snap->slots[i].filled.load(std::memory_order_relaxed);
            item_ref<K, V> m = b->peek_min(f);
            if (!m.empty() && (own.empty() || m.key < own.key))
                own = m;
        }
        if (!own.empty() && own.key <= chosen.key)
            return own;
        return chosen;
    }

    /// Relaxed-atomic so the adaptive-k controller can retune a live
    /// queue; hot paths read it once per operation.
    std::atomic<std::size_t> k_;
    /// Contention telemetry sink; null when no controller is attached.
    std::atomic<adapt::contention_monitor *> monitor_{nullptr};
    atomic_stamped_ptr<arr> shared_;
    std::unique_ptr<thread_state> threads_[max_registered_threads];
};

} // namespace klsm
