#pragma once

// The shared k-LSM's BlockArray (paper Listing 2, Section 4.4).
//
// A BlockArray is the unit of copy-on-write publication: the shared k-LSM
// is a single atomic (version-stamped) pointer to the current BlockArray;
// every structural update builds a new array privately and swings the
// pointer with CAS.
//
// Differences from the paper's pseudocode, both motivated by the manual
// memory management of Section 4.4:
//
//   * Each slot stores, next to the block pointer, the array's own view
//     of the block's `filled` count and logical `level`.  The paper
//     instead mutates Block::filled in place and accepts benign races;
//     with *recycled* blocks such in-place writes by stale readers could
//     truncate a block's next life, so we move the mutable view into the
//     (private, then immutable-once-published) array and the race
//     disappears entirely.  Published blocks' entries are immutable.
//
//   * The array carries a 64-bit seqlock-style version: odd while its
//     owner mutates/recycles it, even when stable.  The low 10 bits are
//     the stamp embedded in the shared pointer (the paper's 2048-byte
//     alignment trick — note the alignas below), and readers validate
//     their racy copies against the full version.
//
// BlockArray instances are never freed while the queue lives; each thread
// owns exactly two (paper: "Two instances of BlockArray per thread are
// sufficient") plus a safety valve, and recycles them under the version
// protocol above.

#include <atomic>
#include <cassert>
#include <cstdint>

#include "klsm/block.hpp"

namespace klsm {

template <typename K, typename V>
struct alignas(2048) block_array {
    static constexpr std::uint32_t max_blocks = 32;

    struct slot {
        std::atomic<block<K, V> *> blk{nullptr};
        std::atomic<std::uint32_t> filled{0};
        std::atomic<std::uint32_t> level{0};
        /// Start of the candidate range [pivot, filled): entries at these
        /// positions are among the k+1 smallest keys of the whole array.
        std::atomic<std::uint32_t> pivot{0};
    };

    std::atomic<std::uint64_t> version{0}; ///< seqlock; odd = mutating
    std::atomic<std::uint32_t> size{0};
    slot slots[max_blocks];

    // ---- owner-side mutation window --------------------------------------

    void begin_mutate() {
        const std::uint64_t v = version.load(std::memory_order_relaxed);
        assert((v & 1) == 0 && "begin_mutate on an already-mutating array");
        version.store(v + 1, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_release);
    }

    /// Ends the mutation window; returns the new (even) full version,
    /// whose low bits become the pointer stamp on publication.
    std::uint64_t seal() {
        std::atomic_thread_fence(std::memory_order_release);
        const std::uint64_t v = version.load(std::memory_order_relaxed);
        assert((v & 1) == 1 && "seal without begin_mutate");
        version.store(v + 1, std::memory_order_release);
        return v + 1;
    }

    bool mutating() const {
        return (version.load(std::memory_order_relaxed) & 1) != 0;
    }

    // ---- racy snapshot copy (reader side) ---------------------------------

    /// Copy `src`'s contents into this (mutating) array.  The caller read
    /// `expected_version` (even) from `src` beforehand; returns false if
    /// `src` was recycled during the copy, in which case the contents of
    /// this array are garbage and must not be used.
    bool copy_from(const block_array &src, std::uint64_t expected_version) {
        std::uint32_t n = src.size.load(std::memory_order_relaxed);
        if (n > max_blocks)
            return false; // torn read from a recycled array
        size.store(n, std::memory_order_relaxed);
        for (std::uint32_t i = 0; i < n; ++i) {
            slots[i].blk.store(
                src.slots[i].blk.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
            slots[i].filled.store(
                src.slots[i].filled.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
            slots[i].level.store(
                src.slots[i].level.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
            slots[i].pivot.store(
                src.slots[i].pivot.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
        }
        std::atomic_thread_fence(std::memory_order_acquire);
        return src.version.load(std::memory_order_relaxed) ==
               expected_version;
    }

    // ---- owner-side helpers (array must be in its mutation window) -------

    std::uint32_t count() const {
        return size.load(std::memory_order_relaxed);
    }

    void set_slot(std::uint32_t i, block<K, V> *b, std::uint32_t filled,
                  std::uint32_t level) {
        slots[i].blk.store(b, std::memory_order_relaxed);
        slots[i].filled.store(filled, std::memory_order_relaxed);
        slots[i].level.store(level, std::memory_order_relaxed);
        slots[i].pivot.store(filled, std::memory_order_relaxed);
    }

    void copy_slot(std::uint32_t to, std::uint32_t from) {
        set_slot(to, slots[from].blk.load(std::memory_order_relaxed),
                 slots[from].filled.load(std::memory_order_relaxed),
                 slots[from].level.load(std::memory_order_relaxed));
        slots[to].pivot.store(
            slots[from].pivot.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
    }

    /// Remove slot i, shifting the tail left.
    void remove_slot(std::uint32_t i) {
        const std::uint32_t n = count();
        for (std::uint32_t j = i + 1; j < n; ++j)
            copy_slot(j - 1, j);
        size.store(n - 1, std::memory_order_relaxed);
    }

    /// Insert a slot at position i, shifting the tail right.
    void insert_slot(std::uint32_t i, block<K, V> *b, std::uint32_t filled,
                     std::uint32_t level) {
        const std::uint32_t n = count();
        assert(n < max_blocks);
        for (std::uint32_t j = n; j > i; --j)
            copy_slot(j, j - 1);
        size.store(n + 1, std::memory_order_relaxed);
        set_slot(i, b, filled, level);
    }
};

} // namespace klsm
