#pragma once

// The combined k-LSM relaxed priority queue (paper Section 4.3, Listing 5)
// — the paper's primary contribution.
//
// Composition:
//   * one DistLSM per thread slot, bounded to k items; inserts batch
//     locally and spill whole sorted blocks into the shared k-LSM when
//     the bound is exceeded, cutting the shared structure's sequential
//     update frequency by a factor of roughly k;
//   * one shared k-LSM, whose delete-min draws uniformly from the <= k+1
//     smallest keys;
//   * spying: a thread whose local and shared views are both empty copies
//     item references from a random victim's DistLSM.
//
// Guarantees (Section 5): insert and try_delete_min are lock-free;
// try_delete_min is linearizable under structural rho-relaxation with
// rho = T*k (T = number of participating threads), and local ordering
// semantics hold — a thread never skips keys it inserted itself, because
// its own DistLSM is always consulted and the shared find_min prefers the
// thread's own minimum (Bloom filter check).
//
// The Lazy template parameter implements Section 4.5's lazy deletion: a
// stateful predicate consulted whenever items are copied between blocks
// (see lazy.hpp); the default never deletes.

#include <atomic>
#include <cstdint>

#include "adapt/contention_monitor.hpp"
#include "klsm/dist_lsm.hpp"
#include "klsm/item.hpp"
#include "klsm/lazy.hpp"
#include "klsm/shared_lsm.hpp"
#include "mm/alloc_stats.hpp"
#include "mm/placement.hpp"
#include "util/slot_directory.hpp"
#include "util/thread_id.hpp"

namespace klsm {

template <typename K, typename V, typename Lazy = no_lazy>
class k_lsm {
public:
    using key_type = K;
    using value_type = V;

    /// `k` is the relaxation parameter: try_delete_min may return any of
    /// the rho + 1 smallest keys, rho = T*k.  k == 0 degenerates to the
    /// shared LSM alone (every insert publishes immediately).
    /// `place` governs where every pool's pages live (mm/placement.hpp;
    /// numa_klsm constructs each shard with that shard's node).
    explicit k_lsm(std::size_t k, Lazy lazy = {},
                   mm::mem_placement place = {})
        : k_(k), max_k_seen_(k), lazy_(lazy), place_(place),
          shared_(k, place) {
        for (auto &d : dist_)
            d = std::make_unique<dist_lsm_local<K, V>>(place);
    }

    k_lsm(const k_lsm &) = delete;
    k_lsm &operator=(const k_lsm &) = delete;

    std::size_t relaxation() const {
        return k_.load(std::memory_order_relaxed);
    }

    /// Change the relaxation parameter online (src/adapt/'s controller
    /// drives this).  Safe against concurrent inserts/deletes: every
    /// hot path reads k once, and any mix of old and new values is a
    /// valid relaxation.  The worst-case rank bound for a run whose k
    /// changed is rho = T * max_relaxation_seen().
    void set_relaxation(std::size_t k) {
        k_.store(k, std::memory_order_relaxed);
        shared_.set_relaxation(k);
        std::size_t cur = max_k_seen_.load(std::memory_order_relaxed);
        while (k > cur && !max_k_seen_.compare_exchange_weak(
                              cur, k, std::memory_order_relaxed,
                              std::memory_order_relaxed)) {
        }
    }

    /// The largest k this queue has ever run with — what rank-error
    /// bounds must be computed against after an adaptive run.
    std::size_t max_relaxation_seen() const {
        return max_k_seen_.load(std::memory_order_relaxed);
    }

    /// Attach (or detach, with nullptr) contention telemetry: publish
    /// CAS outcomes, the shared/local delete-hit mix, and spy events
    /// are reported to the monitor.
    void set_monitor(adapt::contention_monitor *m) {
        monitor_.store(m, std::memory_order_relaxed);
        shared_.set_monitor(m);
    }

    void insert(const K &key, const V &value) {
        const std::uint32_t slot = dir_.register_self();
        dist_[slot]->insert(
            key, value, slot, k_.load(std::memory_order_relaxed), lazy_,
            [this](block<K, V> *b, std::uint32_t filled) {
                shared_.insert(b, filled, lazy_);
            });
    }

    /// Attempt to delete a minimal key under the relaxed semantics.
    /// Returns false if the queue appears empty (may fail spuriously; the
    /// paper's interface explicitly permits this as long as a key is
    /// eventually returned given enough attempts).
    bool try_delete_min(K &key, V &value) {
        const std::uint32_t slot = dir_.register_self();
        dist_lsm_local<K, V> &mine = *dist_[slot];
        do {
            for (;;) {
                // Listing 5: consult both components, prefer the smaller.
                item_ref<K, V> cand = mine.find_min(lazy_);
                item_ref<K, V> shared_cand = shared_.find_min(slot, lazy_);
                bool from_shared = false;
                if (!shared_cand.empty() &&
                    (cand.empty() || shared_cand.key < cand.key)) {
                    cand = shared_cand;
                    from_shared = true;
                }
                if (cand.empty())
                    break; // both empty: try spying
                // Read the payload before the take; CAS success certifies
                // the payload read (see item.hpp).
                const V v = cand.it->value();
                if (cand.take()) {
                    key = cand.key;
                    value = v;
                    note(from_shared ? adapt::event::delete_hit_shared
                                     : adapt::event::delete_hit_local);
                    return true;
                }
                // Someone else deleted it first; that thread made
                // progress, so retrying keeps us lock-free.
            }
        } while (spy(slot));
        return false;
    }

    /// Best-effort find-min (Section 4's try_find_min extension): returns
    /// a key/value that was among the relaxed minima at some recent
    /// point; false if the queue appears empty.
    bool try_find_min(K &key, V &value) {
        const std::uint32_t slot = dir_.register_self();
        item_ref<K, V> cand = dist_[slot]->find_min(lazy_);
        item_ref<K, V> shared_cand = shared_.find_min(slot, lazy_);
        if (!shared_cand.empty() &&
            (cand.empty() || shared_cand.key < cand.key))
            cand = shared_cand;
        if (cand.empty())
            return false;
        key = cand.key;
        value = cand.it->value();
        return cand.it->is_alive(cand.version);
    }

    /// Approximate size; the paper's size() is allowed to be off by up to
    /// rho, and this estimate additionally counts not-yet-compacted
    /// logically deleted entries.
    std::size_t size_hint() const {
        std::size_t total = shared_.item_count_estimate();
        dir_.for_each([&](std::uint32_t slot) {
            total += dist_[slot]->item_count_estimate();
        });
        return total;
    }

    /// Expose components for white-box tests and diagnostics.
    shared_lsm<K, V> &shared_component() { return shared_; }
    dist_lsm_local<K, V> &dist_component(std::uint32_t slot) {
        return *dist_[slot];
    }

    /// The placement every pool of this queue was constructed with.
    const mm::mem_placement &placement() const { return place_; }

    /// Aggregate allocation-placement telemetry over every pool (item
    /// pools, DistLSM block pools, shared-LSM block pools).  Counter
    /// reads are safe any time; `query_residency` additionally walks
    /// the backing regions through move_pages(2), which requires
    /// quiescence (call after workers have joined).
    mm::memory_stats memory_stats(bool query_residency = false) const {
        mm::memory_stats out;
        const bool query =
            query_residency && mm::residency_query_supported();
        for (const auto &d : dist_)
            d->collect_memory(out, query);
        shared_.collect_memory(out, query);
        out.resident_queried = query;
        return out;
    }

    /// Shrink every pool's cold storage right now (mm/reclaim/); no-op
    /// unless the queue was built with a shrink-enabled placement.
    /// PRECONDITION: no concurrent operations (workers joined) — the
    /// same quiescence memory_stats' residency walk requires.  Returns
    /// the number of page-release events.
    std::size_t quiescent_shrink() {
        std::size_t released = 0;
        for (const auto &d : dist_)
            released += d->quiescent_shrink();
        released += shared_.quiescent_shrink();
        return released;
    }

private:
    bool spy(std::uint32_t slot) {
        // Bound the copy to k items (Section 4.2's space bound); always
        // allow at least one so spying makes progress for k == 0.
        const std::size_t k = k_.load(std::memory_order_relaxed);
        const std::size_t cap = k > 0 ? k : 1;
        // Random victim first (the paper's scheme), then one sweep over
        // all registered slots so a false return means every DistLSM was
        // observed empty — spurious failures stay possible but rare.
        const std::uint32_t victim = dir_.random_victim(slot);
        if (victim < max_registered_threads && victim != slot &&
            dist_[slot]->spy_from(*dist_[victim], cap)) {
            note(adapt::event::spy);
            return true;
        }
        const std::uint32_t n = dir_.size();
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t s = dir_.at(i);
            if (s != slot && s != victim &&
                dist_[slot]->spy_from(*dist_[s], cap)) {
                note(adapt::event::spy);
                return true;
            }
        }
        return false;
    }

    /// One predictable branch when no monitor is attached.
    void note(adapt::event e) {
        adapt::contention_monitor *m =
            monitor_.load(std::memory_order_relaxed);
        if (m)
            m->count(e);
    }

    /// Relaxed-atomic so the adaptive-k controller can retune a live
    /// queue; hot paths load it once per operation.
    std::atomic<std::size_t> k_;
    /// High-water mark of k_ (set_relaxation maintains it): the value
    /// rank bounds are computed from after an adaptive run.
    std::atomic<std::size_t> max_k_seen_;
    /// Contention telemetry sink; null when no controller is attached.
    std::atomic<adapt::contention_monitor *> monitor_{nullptr};
    Lazy lazy_;
    mm::mem_placement place_;
    shared_lsm<K, V> shared_;
    std::unique_ptr<dist_lsm_local<K, V>> dist_[max_registered_threads];
    slot_directory dir_;
};

/// The standalone distributed LSM priority queue ("DLSM" in Figure 3):
/// the k-LSM without the shared component and without relaxation bounds —
/// purely local ordering semantics, maximal scalability.
template <typename K, typename V>
class dist_pq {
public:
    using key_type = K;
    using value_type = V;

    explicit dist_pq(mm::mem_placement place = {}) : place_(place) {
        for (auto &d : dist_)
            d = std::make_unique<dist_lsm_local<K, V>>(place);
    }

    dist_pq(const dist_pq &) = delete;
    dist_pq &operator=(const dist_pq &) = delete;

    void insert(const K &key, const V &value) {
        const std::uint32_t slot = dir_.register_self();
        dist_[slot]->insert(key, value, slot,
                            dist_lsm_local<K, V>::unbounded, no_lazy{},
                            [](block<K, V> *, std::uint32_t) {});
    }

    bool try_delete_min(K &key, V &value) {
        const std::uint32_t slot = dir_.register_self();
        dist_lsm_local<K, V> &mine = *dist_[slot];
        do {
            for (;;) {
                item_ref<K, V> cand = mine.find_min();
                if (cand.empty())
                    break;
                const V v = cand.it->value();
                if (cand.take()) {
                    key = cand.key;
                    value = v;
                    return true;
                }
            }
        } while (spy(slot));
        return false;
    }

    std::size_t size_hint() const {
        std::size_t total = 0;
        dir_.for_each([&](std::uint32_t slot) {
            total += dist_[slot]->item_count_estimate();
        });
        return total;
    }

    const mm::mem_placement &placement() const { return place_; }

    /// Aggregate pool telemetry; see k_lsm::memory_stats.
    mm::memory_stats memory_stats(bool query_residency = false) const {
        mm::memory_stats out;
        const bool query =
            query_residency && mm::residency_query_supported();
        for (const auto &d : dist_)
            d->collect_memory(out, query);
        out.resident_queried = query;
        return out;
    }

    /// See k_lsm::quiescent_shrink (same contract).
    std::size_t quiescent_shrink() {
        std::size_t released = 0;
        for (const auto &d : dist_)
            released += d->quiescent_shrink();
        return released;
    }

private:
    bool spy(std::uint32_t slot) {
        const std::uint32_t victim = dir_.random_victim(slot);
        if (victim < max_registered_threads && victim != slot &&
            dist_[slot]->spy_from(*dist_[victim],
                                  dist_lsm_local<K, V>::unbounded))
            return true;
        const std::uint32_t n = dir_.size();
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t s = dir_.at(i);
            if (s != slot && s != victim &&
                dist_[slot]->spy_from(*dist_[s],
                                      dist_lsm_local<K, V>::unbounded))
                return true;
        }
        return false;
    }

    mm::mem_placement place_;
    std::unique_ptr<dist_lsm_local<K, V>> dist_[max_registered_threads];
    slot_directory dir_;
};

} // namespace klsm
